// Command calibrate probes the model registry and writes the measured
// profile store that drives routing (chatvisd -route, evalrunner
// -route). Each model is probed per task kind — cold writes, edit-intent
// rewrites, plan deltas, plan-document repair — over a task-keyed slice
// of the evaluation grid; records append to a versioned JSON store, so
// re-calibration preserves history and routing always reads the latest
// record per (model, task).
//
// Usage:
//
//	calibrate -data ./data -out ./out -profiles profiles.json
//	calibrate -models gpt-4,codegemma -scenarios iso,slice
//	calibrate -smoke        # deterministic 2-scenario CI gate, writes nothing
//
// -smoke calibrates twice over the iso and slice scenarios and exits
// non-zero unless the two runs measure identically AND the resulting
// routes serve edit-intent from a measurably cheaper profile than cold
// writes — the invariant the routing subsystem exists to deliver.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/route"
)

func main() {
	var (
		dataDir  = flag.String("data", "data", "dataset directory (populated on demand)")
		outDir   = flag.String("out", "out", "working directory for probe screenshots")
		profiles = flag.String("profiles", "profiles.json", "profile store to append to (versioned JSON)")
		models   = flag.String("models", "", "comma-separated models to probe (default: the paper's serving candidates)")
		scns     = flag.String("scenarios", "", "comma-separated probe scenario IDs (default: every registered scenario)")
		width    = flag.Int("width", 480, "render width")
		height   = flag.Int("height", 270, "render height")
		smoke    = flag.Bool("smoke", false, "run the deterministic CI smoke gate instead of writing profiles")
		quiet    = flag.Bool("q", false, "suppress per-probe progress")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := route.CalibrateConfig{
		Eval: eval.Config{
			DataDir: *dataDir,
			OutDir:  *outDir,
			Width:   *width,
			Height:  *height,
		},
		Models:    splitList(*models),
		Scenarios: splitList(*scns),
	}
	if !*quiet {
		cfg.Log = func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		}
	}

	if *smoke {
		if err := runSmoke(ctx, cfg); err != nil {
			fatal(err)
		}
		fmt.Println("calibrate smoke: ok")
		return
	}

	store, err := route.OpenProfileStore(*profiles)
	if err != nil {
		fatal(err)
	}
	records, err := route.Calibrate(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	if err := store.Append(records); err != nil {
		fatal(err)
	}
	fmt.Printf("appended %d records to %s (%d total)\n\n", len(records), store.Path(), store.Len())
	router := route.NewRouter(store.Latest(), nil)
	fmt.Println(route.Report(router, store.Path()).Format())
}

// runSmoke is the CI gate: two calibrations over a fixed 2-scenario
// slice must agree exactly, and the compiled routes must price
// edit-intent below cold writes.
func runSmoke(ctx context.Context, cfg route.CalibrateConfig) error {
	cfg.Scenarios = []string{"iso", "slice"}
	a, err := route.Calibrate(ctx, cfg)
	if err != nil {
		return err
	}
	b, err := route.Calibrate(ctx, cfg)
	if err != nil {
		return err
	}
	if len(a) != len(b) {
		return fmt.Errorf("smoke: record counts differ across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Model != b[i].Model || a[i].Task != b[i].Task ||
			a[i].Score != b[i].Score || a[i].ProbeHash != b[i].ProbeHash {
			return fmt.Errorf("smoke: calibration not deterministic at %s/%s: score %v vs %v, hash %s vs %s",
				a[i].Model, a[i].Task, a[i].Score, b[i].Score, a[i].ProbeHash, b[i].ProbeHash)
		}
	}
	for i := range a {
		a[i].Seq = i + 1
	}
	router := route.NewRouter(route.NewProfileSet(a), nil)
	var editCost, writeCost float64
	var editModel, writeModel string
	for _, v := range router.Routes() {
		switch v.Task {
		case llm.TaskEditIntent:
			editCost, editModel = v.Ladder[0].CostWeight, v.Ladder[0].Model
		case llm.TaskWrite:
			writeCost, writeModel = v.Ladder[0].CostWeight, v.Ladder[0].Model
		}
	}
	if editModel == "" || writeModel == "" {
		return fmt.Errorf("smoke: missing route (edit-intent=%q write=%q)", editModel, writeModel)
	}
	if editCost >= writeCost {
		return fmt.Errorf("smoke: edit-intent routes to %s (cost %.2f), not cheaper than write's %s (%.2f)",
			editModel, editCost, writeModel, writeCost)
	}
	fmt.Printf("smoke: %d records deterministic; edit-intent→%s (%.2f) < write→%s (%.2f)\n",
		len(a), editModel, editCost, writeModel, writeCost)
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
