// Command metriclint is the CI gate for the /metrics contract: it wires
// a fully-attached in-memory daemon (queue, store, sessions, WAL,
// cluster membership, quotas, dataset cache, tracer), scrapes the
// handler in both Prometheus text and OpenMetrics negotiation, and
// fails when any chatvis_* metric name is not snake_case, is missing
// HELP/TYPE metadata, or is registered more than once.
//
// Usage: go run ./cmd/metriclint  (exits non-zero on violations)
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"chatvis/internal/cluster"
	"chatvis/internal/data"
	"chatvis/internal/llm"
	"chatvis/internal/obs"
	"chatvis/internal/route"
	"chatvis/internal/service"
)

var nameRE = regexp.MustCompile(`^chatvis_[a-z][a-z0-9_]*$`)

// requiredFamilies are metric families every scrape must expose; a
// refactor that silently drops one of these fails the lint. The
// chatvis_par_* group is the sweep-scheduler telemetry of the parallel
// compute substrate.
var requiredFamilies = []string{
	// Measured model routing (docs/routing.md).
	"chatvis_route_decisions_total",
	"chatvis_route_escalations_total",
	"chatvis_route_fallbacks_total",
	"chatvis_route_profiles",
	"chatvis_route_task_decisions_total",
	"chatvis_compute_workers",
	"chatvis_par_parallelism",
	"chatvis_par_sweeps_total",
	"chatvis_par_chunks_total",
	"chatvis_par_busy_seconds_total",
	"chatvis_par_imbalance_avg",
}

func main() {
	body, err := scrape()
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(1)
	}
	problems := lint(body)
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "metriclint: %s\n", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Println("metriclint: ok")
}

// scrape builds a daemon with every metrics-bearing subsystem attached
// and returns one /metrics response body (OpenMetrics negotiation, the
// superset: it includes the exemplar syntax and the EOF marker).
func scrape() (string, error) {
	dir, err := os.MkdirTemp("", "metriclint-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)

	store, err := service.NewStore(filepath.Join(dir, "store"))
	if err != nil {
		return "", err
	}
	wal, err := cluster.OpenWAL(filepath.Join(dir, "wal"))
	if err != nil {
		return "", err
	}
	defer wal.Close()
	peers, err := cluster.ParsePeers("n1=127.0.0.1:1,n2=127.0.0.1:2")
	if err != nil {
		return "", err
	}
	cl, err := cluster.New(cluster.Config{NodeID: "n1", Peers: peers})
	if err != nil {
		return "", err
	}

	metrics := &llm.Metrics{}
	pipeline, factory := service.NewServingBackend(service.PipelineConfig{
		DataDir: filepath.Join(dir, "data"),
		OutDir:  filepath.Join(dir, "jobs"),
		Metrics: metrics,
	})
	queue, err := service.NewQueue(service.QueueOptions{
		Workers: 1, Capacity: 4, Pipeline: pipeline, Store: store, WAL: wal,
	})
	if err != nil {
		return "", err
	}
	sessions := service.NewSessions(store, factory)

	// A synthetic two-rung profile set stands in for a calibrated store:
	// the lint checks exposition shape, not measurement.
	router := route.NewRouter(route.NewProfileSet([]route.ModelProfile{
		{Model: "codegemma", Task: llm.TaskEditIntent, Score: 1.0, CostWeight: 0.04, Seq: 1},
		{Model: "gpt-4", Task: llm.TaskEditIntent, Score: 1.0, CostWeight: 1.0, Seq: 2},
		{Model: "gpt-4", Task: llm.TaskWrite, Score: 0.9, CostWeight: 1.0, Seq: 3},
	}), nil)

	server := service.NewServer(queue, store, metrics).
		WithDatasetCache(data.NewCache(1<<20)).
		WithSessions(sessions).
		WithWAL(wal).
		WithCluster(cl).
		WithQuotas(cluster.NewQuotas(cluster.QuotaConfig{RPS: 1, MaxInflight: 1})).
		WithTracer(obs.NewTracer("n1", 0)).
		WithLogger(obs.NewLogger(io.Discard, "error", "text")).
		WithBuildVersion("metriclint").
		WithRouter(router, "profiles.json")

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	rec := httptest.NewRecorder()
	server.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return "", fmt.Errorf("GET /metrics = %d", rec.Code)
	}
	return rec.Body.String(), nil
}

// family maps a sample name to the family its HELP/TYPE metadata is
// declared under (histograms declare under the base name).
func family(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

func lint(body string) []string {
	var problems []string
	helpCount := map[string]int{}
	typeCount := map[string]int{}
	sampleCount := map[string]int{} // full sample identity: name{labels}
	sampleNames := map[string]bool{}

	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "" || line == "# EOF":
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				helpCount[fields[2]]++
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				typeCount[fields[2]]++
			}
		case strings.HasPrefix(line, "#"):
		default:
			// Sample: name[{labels}] value [# exemplar]
			name := line
			identity := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			if j := strings.LastIndex(identity, "}"); j >= 0 {
				identity = identity[:j+1]
			} else if i := strings.Index(identity, " "); i >= 0 {
				identity = identity[:i]
			}
			sampleCount[identity]++
			sampleNames[name] = true
		}
	}

	declared := map[string]bool{}
	for name, n := range helpCount {
		declared[name] = true
		if strings.HasPrefix(name, "chatvis_") && !nameRE.MatchString(name) {
			problems = append(problems, fmt.Sprintf("metric %q is not snake_case", name))
		}
		if n > 1 {
			problems = append(problems, fmt.Sprintf("metric %q has %d HELP lines (want 1)", name, n))
		}
		if typeCount[name] == 0 {
			problems = append(problems, fmt.Sprintf("metric %q has HELP but no TYPE", name))
		}
	}
	for name, n := range typeCount {
		if n > 1 {
			problems = append(problems, fmt.Sprintf("metric %q has %d TYPE lines (want 1)", name, n))
		}
		if helpCount[name] == 0 {
			problems = append(problems, fmt.Sprintf("metric %q has TYPE but no HELP", name))
		}
	}
	for name := range sampleNames {
		if !strings.HasPrefix(name, "chatvis_") {
			problems = append(problems, fmt.Sprintf("sample %q outside the chatvis_ namespace", name))
			continue
		}
		if !nameRE.MatchString(name) {
			problems = append(problems, fmt.Sprintf("sample %q is not snake_case", name))
		}
		if !declared[family(name)] {
			problems = append(problems, fmt.Sprintf("sample %q has no HELP/TYPE metadata", name))
		}
	}
	for identity, n := range sampleCount {
		if n > 1 {
			problems = append(problems, fmt.Sprintf("series %q registered %d times (want 1)", identity, n))
		}
	}
	for _, name := range requiredFamilies {
		if !sampleNames[name] {
			problems = append(problems, fmt.Sprintf("required metric %q missing from scrape", name))
		}
	}
	if len(sampleNames) == 0 {
		problems = append(problems, "no samples scraped — handler wiring broken")
	}
	return problems
}
