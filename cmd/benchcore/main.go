// Command benchcore runs the substrate micro-benchmarks (the
// BenchmarkSubstrate_* suite: isosurfacing, streamline tracing, surface
// rendering, volume ray casting and plane clipping) at serial and
// parallel worker counts and writes a machine-readable perf record,
// BENCH_substrate.json, so future PRs can diff the perf trajectory of
// the hot path instead of eyeballing benchmark logs.
//
// Usage:
//
//	go run ./cmd/benchcore -out BENCH_substrate.json [-workers N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"chatvis/internal/benchkernels"
	"chatvis/internal/par"
)

// benchResult is one (benchmark, worker-count) measurement.
type benchResult struct {
	Name        string `json:"name"`
	Workers     int    `json:"workers"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// SpeedupVsSerial is ns/op(workers=1) / ns/op(this run); 0 for the
	// serial run itself.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// benchFile is the BENCH_substrate.json schema.
type benchFile struct {
	GeneratedUnix int64         `json:"generated_unix"`
	GoVersion     string        `json:"go_version"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	NumCPU        int           `json:"num_cpu"`
	Benchmarks    []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_substrate.json", "output JSON path")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"parallel worker count to compare against the serial (workers=1) baseline")
	flag.Parse()

	kernels := benchkernels.Substrate
	file := benchFile{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
	}
	counts := []int{1}
	if *workers > 1 {
		counts = append(counts, *workers)
	}
	for _, name := range benchkernels.Order {
		fn := kernels[name]
		serialNs := int64(0)
		for _, w := range counts {
			par.SetWorkers(w)
			res := testing.Benchmark(fn)
			r := benchResult{
				Name:        name,
				Workers:     w,
				Iterations:  res.N,
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			if w == 1 {
				serialNs = res.NsPerOp()
			} else if serialNs > 0 && res.NsPerOp() > 0 {
				r.SpeedupVsSerial = float64(serialNs) / float64(res.NsPerOp())
			}
			file.Benchmarks = append(file.Benchmarks, r)
			fmt.Printf("%-26s workers=%-2d %12d ns/op %10d B/op %8d allocs/op",
				name, w, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
			if r.SpeedupVsSerial > 0 {
				fmt.Printf("  %.2fx vs serial", r.SpeedupVsSerial)
			}
			fmt.Println()
		}
	}
	par.SetWorkers(0)

	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatalf("benchcore: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatalf("benchcore: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}
