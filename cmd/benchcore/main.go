// Command benchcore runs the substrate micro-benchmarks (the
// BenchmarkSubstrate_* suite: isosurfacing, streamline tracing, surface
// rendering, volume ray casting and plane clipping) across a ladder of
// worker counts and writes a machine-readable perf record,
// BENCH_substrate.json, so future PRs can diff the perf trajectory of
// the hot path — time, allocations and parallel speedup — instead of
// eyeballing benchmark logs.
//
// Usage:
//
//	go run ./cmd/benchcore -out BENCH_substrate.json [-workers 1,4,8]
//	go run ./cmd/benchcore -diff BENCH_substrate.json [-allow-cpu-mismatch]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"chatvis/internal/benchkernels"
	"chatvis/internal/par"
)

// benchResult is one (benchmark, worker-count) measurement.
type benchResult struct {
	Name        string `json:"name"`
	Workers     int    `json:"workers"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// SpeedupVsSerial is ns/op(workers=1) / ns/op(this run); 0 for the
	// serial run itself.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
	// StaticNsPerOp is the same measurement under the static
	// (fixed-granularity) chunking schedule — the scheduler A/B column.
	// Recorded only for parallel runs in record mode; NsPerOp itself is
	// always the default (adaptive) schedule, and the diff gate compares
	// only NsPerOp.
	StaticNsPerOp int64 `json:"static_ns_per_op,omitempty"`
}

// benchFile is the BENCH_substrate.json schema.
type benchFile struct {
	GeneratedUnix int64         `json:"generated_unix"`
	GoVersion     string        `json:"go_version"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	NumCPU        int           `json:"num_cpu"`
	Benchmarks    []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_substrate.json", "output JSON path")
	workers := flag.String("workers", "1,4,8",
		"comma-separated worker counts to measure; 1 is always included as the serial baseline")
	diff := flag.String("diff", "",
		"baseline JSON to diff against instead of writing: re-run the kernels and fail on >tolerance regressions in ns/op, allocs/op, B/op or parallel speedup")
	tolerance := flag.Float64("tolerance", 0.25,
		"allowed fractional regression per kernel and metric in -diff mode")
	allowCPUMismatch := flag.Bool("allow-cpu-mismatch", false,
		"in -diff mode, compare against a baseline recorded on different num_cpu/gomaxprocs: downgrade the refusal to a warning and gate only allocs/op and B/op (timing and speedup are not comparable across machines)")
	schedulerAB := flag.Bool("scheduler-ab", true,
		"in record mode, also measure each parallel run under the static schedule (static_ns_per_op column); -diff mode never re-measures static")
	flag.Parse()

	counts, err := parseWorkerCounts(*workers)
	if err != nil {
		log.Fatalf("benchcore: -workers: %v", err)
	}

	// Validate the baseline before spending minutes on kernels.
	var baseline benchFile
	if *diff != "" {
		blob, err := os.ReadFile(*diff)
		if err != nil {
			log.Fatalf("benchcore: reading baseline: %v", err)
		}
		if err := json.Unmarshal(blob, &baseline); err != nil {
			log.Fatalf("benchcore: decoding baseline: %v", err)
		}
		// A baseline recorded on a different core count times different
		// machines, not different code: refuse the comparison up front
		// rather than failing (or worse, passing) on meaningless ratios.
		if mismatch := cpuMismatch(baseline); mismatch != "" {
			if !*allowCPUMismatch {
				log.Fatalf("benchcore: %s — timings are not comparable; re-record the baseline on this machine (make bench-core) or pass -allow-cpu-mismatch to gate allocation metrics only", mismatch)
			}
			fmt.Printf("WARNING: %s — gating allocs/op and B/op only; ns/op and speedup are skipped\n", mismatch)
		}
	}

	file := runBenchmarks(counts, *schedulerAB && *diff == "")

	if *diff != "" {
		timingComparable := cpuMismatch(baseline) == ""
		regressions, matched := compareBench(baseline, file, *tolerance, timingComparable)
		if matched == 0 {
			log.Fatalf("benchcore: no (kernel, workers) pair of %s matches this run — the gate compared nothing", *diff)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Println("REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no kernel regressed beyond %.0f%% across %d matched entries vs %s\n",
			*tolerance*100, matched, *diff)
		return
	}

	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatalf("benchcore: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatalf("benchcore: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// cpuMismatch describes how the baseline's recording machine differs
// from this one, or "" when timings are comparable.
func cpuMismatch(baseline benchFile) string {
	if baseline.NumCPU != runtime.NumCPU() || baseline.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		return fmt.Sprintf("baseline was recorded with num_cpu=%d gomaxprocs=%d, this machine has num_cpu=%d gomaxprocs=%d",
			baseline.NumCPU, baseline.GOMAXPROCS, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	return ""
}

// parseWorkerCounts parses "1,4,8" into a sorted, deduplicated ladder
// that always starts at 1 (the serial baseline every speedup is
// relative to).
func parseWorkerCounts(s string) ([]int, error) {
	seen := map[int]bool{1: true}
	counts := []int{1}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid worker count %q", part)
		}
		if !seen[n] {
			seen[n] = true
			counts = append(counts, n)
		}
	}
	for i := 1; i < len(counts); i++ {
		for j := i; j > 1 && counts[j] < counts[j-1]; j-- {
			counts[j], counts[j-1] = counts[j-1], counts[j]
		}
	}
	return counts, nil
}

// runBenchmarks measures every substrate kernel at each worker count,
// serial first so SpeedupVsSerial can be filled in as the ladder runs.
// With schedulerAB, each parallel run is measured a second time under
// the static schedule so the record shows the rebalancing win (or
// cost) of guided chunking per kernel.
func runBenchmarks(counts []int, schedulerAB bool) benchFile {
	file := benchFile{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
	}
	for _, name := range benchkernels.Order {
		serialNs := int64(0)
		for _, w := range counts {
			par.SetWorkers(w)
			par.SetSchedule(par.SchedAdaptive)
			res := testing.Benchmark(func(b *testing.B) { benchkernels.Bench(b, name) })
			r := benchResult{
				Name:        name,
				Workers:     w,
				Iterations:  res.N,
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			if w == 1 {
				serialNs = res.NsPerOp()
			} else if serialNs > 0 && res.NsPerOp() > 0 {
				r.SpeedupVsSerial = float64(serialNs) / float64(res.NsPerOp())
			}
			if schedulerAB && w > 1 {
				par.SetSchedule(par.SchedStatic)
				sres := testing.Benchmark(func(b *testing.B) { benchkernels.Bench(b, name) })
				par.SetSchedule(par.SchedAdaptive)
				r.StaticNsPerOp = sres.NsPerOp()
			}
			file.Benchmarks = append(file.Benchmarks, r)
			fmt.Printf("%-26s workers=%-2d %12d ns/op %10d B/op %8d allocs/op",
				name, w, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
			if r.SpeedupVsSerial > 0 {
				fmt.Printf("  %.2fx vs serial", r.SpeedupVsSerial)
			}
			if r.StaticNsPerOp > 0 && r.NsPerOp > 0 {
				fmt.Printf("  static %.2fx of adaptive", float64(r.StaticNsPerOp)/float64(r.NsPerOp))
			}
			fmt.Println()
		}
	}
	par.SetWorkers(0)
	return file
}
