// Command benchcore runs the substrate micro-benchmarks (the
// BenchmarkSubstrate_* suite: isosurfacing, streamline tracing, surface
// rendering, volume ray casting and plane clipping) at serial and
// parallel worker counts and writes a machine-readable perf record,
// BENCH_substrate.json, so future PRs can diff the perf trajectory of
// the hot path instead of eyeballing benchmark logs.
//
// Usage:
//
//	go run ./cmd/benchcore -out BENCH_substrate.json [-workers N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"chatvis/internal/benchkernels"
	"chatvis/internal/par"
)

// benchResult is one (benchmark, worker-count) measurement.
type benchResult struct {
	Name        string `json:"name"`
	Workers     int    `json:"workers"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// SpeedupVsSerial is ns/op(workers=1) / ns/op(this run); 0 for the
	// serial run itself.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// benchFile is the BENCH_substrate.json schema.
type benchFile struct {
	GeneratedUnix int64         `json:"generated_unix"`
	GoVersion     string        `json:"go_version"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	NumCPU        int           `json:"num_cpu"`
	Benchmarks    []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_substrate.json", "output JSON path")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"parallel worker count to compare against the serial (workers=1) baseline")
	diff := flag.String("diff", "",
		"baseline JSON to diff against instead of writing: re-run the kernels and fail on >tolerance ns/op regressions")
	tolerance := flag.Float64("tolerance", 0.25,
		"allowed fractional ns/op regression per kernel in -diff mode")
	flag.Parse()

	// Validate the baseline before spending minutes on kernels.
	var baseline benchFile
	if *diff != "" {
		blob, err := os.ReadFile(*diff)
		if err != nil {
			log.Fatalf("benchcore: reading baseline: %v", err)
		}
		if err := json.Unmarshal(blob, &baseline); err != nil {
			log.Fatalf("benchcore: decoding baseline: %v", err)
		}
	}

	file := runBenchmarks(*workers)

	if *diff != "" {
		regressions, matched := compareBench(baseline, file, *tolerance)
		if matched == 0 {
			log.Fatalf("benchcore: no (kernel, workers) pair of %s matches this run — the gate compared nothing", *diff)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Println("REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no kernel regressed beyond %.0f%% across %d matched entries vs %s\n",
			*tolerance*100, matched, *diff)
		return
	}

	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatalf("benchcore: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatalf("benchcore: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// runBenchmarks measures every substrate kernel at the serial and
// parallel worker counts.
func runBenchmarks(workers int) benchFile {
	kernels := benchkernels.Substrate
	file := benchFile{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
	}
	counts := []int{1}
	if workers > 1 {
		counts = append(counts, workers)
	}
	for _, name := range benchkernels.Order {
		fn := kernels[name]
		serialNs := int64(0)
		for _, w := range counts {
			par.SetWorkers(w)
			res := testing.Benchmark(fn)
			r := benchResult{
				Name:        name,
				Workers:     w,
				Iterations:  res.N,
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			if w == 1 {
				serialNs = res.NsPerOp()
			} else if serialNs > 0 && res.NsPerOp() > 0 {
				r.SpeedupVsSerial = float64(serialNs) / float64(res.NsPerOp())
			}
			file.Benchmarks = append(file.Benchmarks, r)
			fmt.Printf("%-26s workers=%-2d %12d ns/op %10d B/op %8d allocs/op",
				name, w, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
			if r.SpeedupVsSerial > 0 {
				fmt.Printf("  %.2fx vs serial", r.SpeedupVsSerial)
			}
			fmt.Println()
		}
	}
	par.SetWorkers(0)
	return file
}
