package main

import (
	"strings"
	"testing"
)

func bf(entries ...benchResult) benchFile { return benchFile{Benchmarks: entries} }

func TestCompareBench(t *testing.T) {
	baseline := bf(
		benchResult{Name: "Contour", Workers: 1, NsPerOp: 1000},
		benchResult{Name: "Contour", Workers: 4, NsPerOp: 400},
		benchResult{Name: "Retired", Workers: 1, NsPerOp: 10},
	)
	current := bf(
		benchResult{Name: "Contour", Workers: 1, NsPerOp: 1200},  // +20%: within 25%
		benchResult{Name: "Contour", Workers: 4, NsPerOp: 600},   // +50%: regression
		benchResult{Name: "NewKernel", Workers: 1, NsPerOp: 999}, // no baseline: skipped
	)
	got, matched := compareBench(baseline, current, 0.25)
	if len(got) != 1 || matched != 2 {
		t.Fatalf("regressions = %v matched = %d", got, matched)
	}
	if !strings.Contains(got[0], "Contour (workers=4)") || !strings.Contains(got[0], "50% slower") {
		t.Errorf("unexpected report: %s", got[0])
	}
	// Improvements and equal timings never flag.
	if got, _ := compareBench(baseline, baseline, 0.25); len(got) != 0 {
		t.Errorf("identical runs flagged: %v", got)
	}
	faster := bf(benchResult{Name: "Contour", Workers: 1, NsPerOp: 500})
	if got, _ := compareBench(baseline, faster, 0.25); len(got) != 0 {
		t.Errorf("speedup flagged: %v", got)
	}
	// Zero/corrupt timings are skipped rather than dividing by zero.
	zero := bf(benchResult{Name: "Contour", Workers: 1, NsPerOp: 0})
	if got, _ := compareBench(zero, current, 0.25); len(got) != 0 {
		t.Errorf("zero baseline flagged: %v", got)
	}
	// A disjoint baseline compares nothing — the caller must fail the
	// gate on matched == 0 instead of passing vacuously.
	renamed := bf(benchResult{Name: "ContourV2", Workers: 1, NsPerOp: 1})
	if _, matched := compareBench(baseline, renamed, 0.25); matched != 0 {
		t.Errorf("disjoint kernels reported %d matches", matched)
	}
}
