package main

import (
	"strings"
	"testing"
)

func bf(entries ...benchResult) benchFile { return benchFile{Benchmarks: entries} }

func TestCompareBenchNsPerOp(t *testing.T) {
	baseline := bf(
		benchResult{Name: "Contour", Workers: 1, NsPerOp: 1000},
		benchResult{Name: "Contour", Workers: 4, NsPerOp: 400},
		benchResult{Name: "Retired", Workers: 1, NsPerOp: 10},
	)
	current := bf(
		benchResult{Name: "Contour", Workers: 1, NsPerOp: 1200},  // +20%: within 25%
		benchResult{Name: "Contour", Workers: 4, NsPerOp: 600},   // +50%: regression
		benchResult{Name: "NewKernel", Workers: 1, NsPerOp: 999}, // no baseline: skipped
	)
	got, matched := compareBench(baseline, current, 0.25, true)
	if len(got) != 1 || matched != 2 {
		t.Fatalf("regressions = %v matched = %d", got, matched)
	}
	if !strings.Contains(got[0], "Contour (workers=4)") || !strings.Contains(got[0], "50% slower") {
		t.Errorf("unexpected report: %s", got[0])
	}
	// Improvements and equal timings never flag.
	if got, _ := compareBench(baseline, baseline, 0.25, true); len(got) != 0 {
		t.Errorf("identical runs flagged: %v", got)
	}
	faster := bf(benchResult{Name: "Contour", Workers: 1, NsPerOp: 500})
	if got, _ := compareBench(baseline, faster, 0.25, true); len(got) != 0 {
		t.Errorf("speedup flagged: %v", got)
	}
	// Zero/corrupt timings are skipped rather than dividing by zero.
	zero := bf(benchResult{Name: "Contour", Workers: 1, NsPerOp: 0})
	if got, _ := compareBench(zero, current, 0.25, true); len(got) != 0 {
		t.Errorf("zero baseline flagged: %v", got)
	}
	// A disjoint baseline compares nothing — the caller must fail the
	// gate on matched == 0 instead of passing vacuously.
	renamed := bf(benchResult{Name: "ContourV2", Workers: 1, NsPerOp: 1})
	if _, matched := compareBench(baseline, renamed, 0.25, true); matched != 0 {
		t.Errorf("disjoint kernels reported %d matches", matched)
	}
}

func TestCompareBenchAllocs(t *testing.T) {
	baseline := bf(benchResult{Name: "Iso", Workers: 1, NsPerOp: 1000, AllocsPerOp: 1000, BytesPerOp: 1 << 20})
	// 10x more allocations: a clear leak of the arena discipline.
	leak := bf(benchResult{Name: "Iso", Workers: 1, NsPerOp: 1000, AllocsPerOp: 10_000, BytesPerOp: 1 << 20})
	got, _ := compareBench(baseline, leak, 0.25, true)
	if len(got) != 1 || !strings.Contains(got[0], "allocs/op") {
		t.Fatalf("alloc leak not flagged: %v", got)
	}
	// +50% bytes/op beyond the slack floor.
	bloat := bf(benchResult{Name: "Iso", Workers: 1, NsPerOp: 1000, AllocsPerOp: 1000, BytesPerOp: 3 << 19})
	got, _ = compareBench(baseline, bloat, 0.25, true)
	if len(got) != 1 || !strings.Contains(got[0], "B/op") {
		t.Fatalf("byte bloat not flagged: %v", got)
	}
	// Tiny absolute moves never flag even at huge ratios: 20 -> 60
	// allocs is inside the noise floor.
	tiny := bf(benchResult{Name: "Iso", Workers: 1, NsPerOp: 1000, AllocsPerOp: 20, BytesPerOp: 4096})
	tinyWorse := bf(benchResult{Name: "Iso", Workers: 1, NsPerOp: 1000, AllocsPerOp: 60, BytesPerOp: 40960})
	if got, _ := compareBench(tiny, tinyWorse, 0.25, true); len(got) != 0 {
		t.Errorf("sub-slack deltas flagged: %v", got)
	}
}

func TestCompareBenchSpeedup(t *testing.T) {
	baseline := bf(
		benchResult{Name: "Iso", Workers: 1, NsPerOp: 1000},
		benchResult{Name: "Iso", Workers: 8, NsPerOp: 250, SpeedupVsSerial: 4.0},
	)
	baseline.NumCPU, baseline.GOMAXPROCS = 8, 8
	// Parallel path collapsed to barely-above-serial: speedup gate fires
	// even though the 8-worker entry also regressed in ns/op.
	collapsed := bf(
		benchResult{Name: "Iso", Workers: 1, NsPerOp: 1000},
		benchResult{Name: "Iso", Workers: 8, NsPerOp: 900, SpeedupVsSerial: 1.1},
	)
	got, _ := compareBench(baseline, collapsed, 0.25, true)
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "parallel speedup") {
		t.Fatalf("speedup collapse not flagged: %v", got)
	}
	// A multicore baseline that never sped up (<= 1x) has nothing to
	// hold re-runs to.
	flat := bf(
		benchResult{Name: "Iso", Workers: 1, NsPerOp: 1000},
		benchResult{Name: "Iso", Workers: 8, NsPerOp: 1000, SpeedupVsSerial: 1.0},
	)
	flat.NumCPU, flat.GOMAXPROCS = 8, 8
	got, _ = compareBench(flat, collapsed, 0.25, true)
	if strings.Contains(strings.Join(got, "\n"), "parallel speedup") {
		t.Errorf("flat baseline gated speedup: %v", got)
	}
	// A single-core baseline never arms the speedup gate at all: any
	// recorded >1x there is cache warm-up noise, not parallelism.
	oneCore := bf(
		benchResult{Name: "Iso", Workers: 1, NsPerOp: 1000},
		benchResult{Name: "Iso", Workers: 8, NsPerOp: 250, SpeedupVsSerial: 4.0},
	)
	oneCore.NumCPU, oneCore.GOMAXPROCS = 1, 1
	got, _ = compareBench(oneCore, collapsed, 0.25, true)
	if strings.Contains(strings.Join(got, "\n"), "parallel speedup") {
		t.Errorf("single-core baseline armed the speedup gate: %v", got)
	}
}

func TestCompareBenchCPUMismatchSkipsTiming(t *testing.T) {
	baseline := bf(
		benchResult{Name: "Iso", Workers: 8, NsPerOp: 100, SpeedupVsSerial: 6.0, AllocsPerOp: 100, BytesPerOp: 1 << 20},
	)
	// On a different machine everything timing-shaped looks catastrophic
	// but only the genuine allocation regression may gate.
	current := bf(
		benchResult{Name: "Iso", Workers: 8, NsPerOp: 100_000, SpeedupVsSerial: 1.0, AllocsPerOp: 50_000, BytesPerOp: 1 << 20},
	)
	got, matched := compareBench(baseline, current, 0.25, false)
	if matched != 1 {
		t.Fatalf("matched = %d", matched)
	}
	if len(got) != 1 || !strings.Contains(got[0], "allocs/op") {
		t.Fatalf("want exactly the alloc regression, got %v", got)
	}
}

func TestParseWorkerCounts(t *testing.T) {
	got, err := parseWorkerCounts("8,4,1,4")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("counts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts = %v, want %v", got, want)
		}
	}
	if _, err := parseWorkerCounts("4,zero"); err == nil {
		t.Error("bad count accepted")
	}
	if _, err := parseWorkerCounts("0"); err == nil {
		t.Error("zero workers accepted")
	}
	if got, _ := parseWorkerCounts(""); len(got) != 1 || got[0] != 1 {
		t.Errorf("empty spec = %v, want [1]", got)
	}
}
