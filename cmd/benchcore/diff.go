package main

import "fmt"

// compareBench diffs a fresh benchmark run against a committed baseline
// and reports every kernel whose ns/op regressed beyond the tolerance
// (e.g. 0.25 = 25% slower). Kernels are matched by (name, workers);
// entries present on only one side are skipped — adding a kernel must
// not fail the gate, and a retired kernel cannot regress. matched
// counts the pairs actually compared: the caller must treat zero as a
// gate failure, or a kernel rename would turn the diff green forever.
func compareBench(baseline, current benchFile, tolerance float64) (regressions []string, matched int) {
	base := map[string]int64{}
	for _, b := range baseline.Benchmarks {
		base[fmt.Sprintf("%s@%d", b.Name, b.Workers)] = b.NsPerOp
	}
	for _, c := range current.Benchmarks {
		key := fmt.Sprintf("%s@%d", c.Name, c.Workers)
		old, ok := base[key]
		if !ok || old <= 0 || c.NsPerOp <= 0 {
			fmt.Printf("skipping %s: no comparable baseline entry\n", key)
			continue
		}
		matched++
		ratio := float64(c.NsPerOp) / float64(old)
		if ratio > 1+tolerance {
			regressions = append(regressions, fmt.Sprintf(
				"%s (workers=%d): %d -> %d ns/op (%.0f%% slower, tolerance %.0f%%)",
				c.Name, c.Workers, old, c.NsPerOp, (ratio-1)*100, tolerance*100))
		}
	}
	return regressions, matched
}
