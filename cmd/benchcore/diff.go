package main

import "fmt"

// Absolute slack under which allocation deltas are noise, not
// regressions: a kernel that goes from 20 to 27 allocs/op tripped the
// 25% ratio but moved by a rounding error, while 500k → 700k is a real
// leak of the SoA discipline. Ratios only gate once the absolute move
// also clears these floors.
const (
	allocsSlack = 64        // allocs/op
	bytesSlack  = 64 * 1024 // B/op
)

// compareBench diffs a fresh benchmark run against a committed baseline
// and reports every kernel whose ns/op, allocs/op, B/op or parallel
// speedup regressed beyond the tolerance (e.g. 0.25 = 25% worse).
// timingComparable is false when the baseline was recorded on a
// different num_cpu/gomaxprocs: allocation metrics are machine-
// independent and stay gated, but ns/op and speedup comparisons are
// skipped as meaningless. Kernels are matched by (name, workers);
// entries present on only one side are skipped — adding a kernel must
// not fail the gate, and a retired kernel cannot regress. matched
// counts the pairs actually compared: the caller must treat zero as a
// gate failure, or a kernel rename would turn the diff green forever.
func compareBench(baseline, current benchFile, tolerance float64, timingComparable bool) (regressions []string, matched int) {
	// Speedup only gates against baselines recorded on a multicore
	// machine: on one core a recorded "speedup" is cache warm-up and
	// scheduler noise, not parallelism, so holding re-runs to it would
	// fail PRs on artifacts.
	multicoreBaseline := baseline.NumCPU > 1 && baseline.GOMAXPROCS > 1
	base := map[string]benchResult{}
	for _, b := range baseline.Benchmarks {
		base[fmt.Sprintf("%s@%d", b.Name, b.Workers)] = b
	}
	for _, c := range current.Benchmarks {
		key := fmt.Sprintf("%s@%d", c.Name, c.Workers)
		old, ok := base[key]
		if !ok || old.NsPerOp <= 0 || c.NsPerOp <= 0 {
			fmt.Printf("skipping %s: no comparable baseline entry\n", key)
			continue
		}
		matched++
		flag := func(format string, args ...any) {
			regressions = append(regressions, fmt.Sprintf("%s (workers=%d): ", c.Name, c.Workers)+
				fmt.Sprintf(format, args...))
		}
		if timingComparable {
			if ratio := float64(c.NsPerOp) / float64(old.NsPerOp); ratio > 1+tolerance {
				flag("%d -> %d ns/op (%.0f%% slower, tolerance %.0f%%)",
					old.NsPerOp, c.NsPerOp, (ratio-1)*100, tolerance*100)
			}
			// Parallel speedup only gates where the baseline shows the
			// machine actually speeding up (>1x): sub-serial baselines
			// would invert the gate's meaning.
			if multicoreBaseline && old.SpeedupVsSerial > 1 && c.SpeedupVsSerial > 0 &&
				c.SpeedupVsSerial < old.SpeedupVsSerial*(1-tolerance) {
				flag("parallel speedup %.2fx -> %.2fx vs serial (tolerance %.0f%%)",
					old.SpeedupVsSerial, c.SpeedupVsSerial, tolerance*100)
			}
		}
		if old.AllocsPerOp >= 0 && c.AllocsPerOp-old.AllocsPerOp > allocsSlack {
			if ratio := float64(c.AllocsPerOp) / float64(max64(old.AllocsPerOp, 1)); ratio > 1+tolerance {
				flag("%d -> %d allocs/op (%.0f%% more, tolerance %.0f%%)",
					old.AllocsPerOp, c.AllocsPerOp, (ratio-1)*100, tolerance*100)
			}
		}
		if old.BytesPerOp >= 0 && c.BytesPerOp-old.BytesPerOp > bytesSlack {
			if ratio := float64(c.BytesPerOp) / float64(max64(old.BytesPerOp, 1)); ratio > 1+tolerance {
				flag("%d -> %d B/op (%.0f%% more, tolerance %.0f%%)",
					old.BytesPerOp, c.BytesPerOp, (ratio-1)*100, tolerance*100)
			}
		}
	}
	return regressions, matched
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
