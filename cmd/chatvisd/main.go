// Command chatvisd serves the ChatVis pipeline over HTTP: an async job
// queue with a worker pool, request coalescing (identical concurrent
// submissions share one pipeline execution; repeats are answered from
// the artifact store), and a content-addressed store for generated
// scripts, screenshots and session traces.
//
// Usage:
//
//	chatvisd -addr :8080 -data ./data -out ./out -workers 4 \
//	         -compute-workers 8 -dataset-cache-mb 256
//
// -workers sizes the job queue's worker pool; -compute-workers sizes the
// parallel compute substrate each job executes on (filters, rasterizer,
// pipeline DAG); -dataset-cache-mb bounds the process-wide content-hash
// dataset cache shared across jobs. All three surface in /metrics.
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id}, POST /v1/sessions,
// POST /v1/sessions/{id}/turns, GET /v1/sessions/{id},
// GET /v1/sessions/{id}/events (SSE), GET /v1/artifacts/{hash},
// GET /v1/scenarios, GET /healthz, GET /metrics. See the README and
// docs/sessions.md for curl examples. Sessions are persisted in the
// artifact store and survive restarts. SIGINT/SIGTERM drain in-flight
// jobs and turns before exiting; a second signal exits immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"chatvis/internal/data"
	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/par"
	"chatvis/internal/service"
)

// daemonConfig collects the daemon's tunables.
type daemonConfig struct {
	dataDir  string
	outDir   string
	storeDir string
	workers  int
	queueCap int
	retries  int
	full     bool
	noCache  bool
	// computeWorkers sizes the parallel compute substrate (filters,
	// rasterizer, pipeline DAG); 0 follows GOMAXPROCS.
	computeWorkers int
	// datasetCacheMB bounds the shared in-memory dataset cache; 0
	// disables it.
	datasetCacheMB int
}

// buildDaemon wires store → pipeline/sessions → queue → server, shared
// by main and the smoke test. Persisted sessions are restored from the
// store so conversations survive restarts.
func buildDaemon(cfg daemonConfig) (*service.Queue, *service.Server, *service.Sessions, *llm.Metrics, error) {
	if cfg.storeDir == "" {
		cfg.storeDir = filepath.Join(cfg.outDir, "store")
	}
	par.SetWorkers(cfg.computeWorkers)
	var dsCache *data.Cache
	if cfg.datasetCacheMB > 0 {
		dsCache = data.NewCache(int64(cfg.datasetCacheMB) << 20)
	}
	store, err := service.NewStore(cfg.storeDir)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	metrics := &llm.Metrics{}
	size := eval.DataSmall
	if cfg.full {
		size = eval.DataFull
	}
	pipeCfg := service.PipelineConfig{
		DataDir:      cfg.dataDir,
		OutDir:       filepath.Join(cfg.outDir, "jobs"),
		DataSize:     size,
		Retries:      cfg.retries,
		Metrics:      metrics,
		DisableCache: cfg.noCache,
		DatasetCache: dsCache,
	}
	// One backend for both surfaces: jobs and session turns share the
	// per-model LLM response caches.
	pipeline, factory := service.NewServingBackend(pipeCfg)
	queue, err := service.NewQueue(service.QueueOptions{
		Workers:  cfg.workers,
		Capacity: cfg.queueCap,
		Pipeline: pipeline,
		Store:    store,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	sessions := service.NewSessions(store, factory)
	sessions.Restore()
	server := service.NewServer(queue, store, metrics).
		WithDatasetCache(dsCache).
		WithSessions(sessions)
	return queue, server, sessions, metrics, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		dataDir  = flag.String("data", "data", "directory for input datasets (generated on demand)")
		outDir   = flag.String("out", "out", "root directory for job outputs and the artifact store")
		storeDir = flag.String("store", "", "artifact store directory (default <out>/store)")
		workers  = flag.Int("workers", runtime.NumCPU(), "pipeline worker pool size")
		queueCap = flag.Int("queue-cap", 256, "max queued (not yet running) jobs")
		retries  = flag.Int("retries", 1, "LLM call attempts per stage")
		full     = flag.Bool("full", false, "paper-scale datasets")
		noCache  = flag.Bool("no-cache", false, "disable the shared LLM response cache")
		drainFor = flag.Duration("drain", 30*time.Second, "graceful shutdown budget before in-flight jobs are canceled")

		computeWorkers = flag.Int("compute-workers", 0,
			"worker-pool size for filters/rasterizer/pipeline execution (0 = GOMAXPROCS)")
		datasetCacheMB = flag.Int("dataset-cache-mb", 256,
			"in-memory dataset cache shared across jobs, in MiB (0 disables)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// After the first signal starts the drain, unregister the
		// handler so a second Ctrl-C kills the process immediately.
		<-ctx.Done()
		stop()
	}()

	queue, server, sessions, _, err := buildDaemon(daemonConfig{
		dataDir:        *dataDir,
		outDir:         *outDir,
		storeDir:       *storeDir,
		workers:        *workers,
		queueCap:       *queueCap,
		retries:        *retries,
		full:           *full,
		noCache:        *noCache,
		computeWorkers: *computeWorkers,
		datasetCacheMB: *datasetCacheMB,
	})
	if err != nil {
		log.Fatalf("chatvisd: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: server.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("chatvisd: listening on %s (%d job workers, %d compute workers, %d MiB dataset cache, models: %v)",
			*addr, *workers, par.Workers(), *datasetCacheMB, llm.ModelNames())
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("chatvisd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("chatvisd: shutting down, draining in-flight jobs (budget %v)", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("chatvisd: http shutdown: %v", err)
	}
	drainErr := false
	if err := queue.Shutdown(shutdownCtx); err != nil {
		log.Printf("chatvisd: queue drain incomplete: %v", err)
		drainErr = true
	}
	if err := sessions.Shutdown(shutdownCtx); err != nil {
		log.Printf("chatvisd: session drain incomplete: %v", err)
		drainErr = true
	}
	if drainErr {
		os.Exit(1)
	}
	fmt.Println("chatvisd: drained cleanly")
}
