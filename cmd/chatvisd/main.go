// Command chatvisd serves the ChatVis pipeline over HTTP: an async job
// queue with a worker pool, request coalescing (identical concurrent
// submissions share one pipeline execution; repeats are answered from
// the artifact store), and a content-addressed store for generated
// scripts, screenshots and session traces.
//
// Usage:
//
//	chatvisd -addr :8080 -data ./data -out ./out -workers 4 \
//	         -compute-workers 8 -dataset-cache-mb 256
//
// -workers sizes the job queue's worker pool; -compute-workers sizes the
// parallel compute substrate each job executes on (filters, rasterizer,
// pipeline DAG); -dataset-cache-mb bounds the process-wide content-hash
// dataset cache shared across jobs. All three surface in /metrics.
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id}, POST /v1/sessions,
// POST /v1/sessions/{id}/turns, GET /v1/sessions/{id},
// GET /v1/sessions/{id}/events (SSE), GET /v1/artifacts/{hash},
// GET /v1/scenarios, GET /v1/models, GET /v1/traces,
// GET /v1/traces/{id}, GET /healthz, GET /metrics. See the README and docs/sessions.md for
// curl examples. Sessions are persisted in the artifact store and
// survive restarts. SIGINT/SIGTERM drain in-flight jobs and turns
// before exiting; a second signal exits immediately.
//
// Observability (docs/observability.md): every request is traced end
// to end (across cluster hops) and retained behind /v1/traces;
// -log-level and -log-format select the structured slog output;
// -pprof-addr serves net/http/pprof on a separate listener; -version
// prints the build identity that /metrics exports as
// chatvis_build_info.
//
// Measured model routing (docs/routing.md) serves each assisted LLM
// call from the cheapest profiled model clearing its task's quality
// bar, escalating on repeated validation failure:
//
//	chatvisd -route -profiles-path profiles.json [-calibrate-on-start]
//
// Profiles come from cmd/calibrate (or -calibrate-on-start probes the
// registry at boot); GET /v1/models and the chatvis_route_* metric
// families expose the live route state.
//
// Cluster mode shards one logical service across several daemons:
//
//	chatvisd -addr :8081 -node-id n1 \
//	         -peers n1=127.0.0.1:8081,n2=127.0.0.1:8082,n3=127.0.0.1:8083 \
//	         -store /shared/store -wal-dir /local/n1/wal \
//	         -tenant-rps 5 -tenant-inflight 8
//
// Sessions route to their shard-ring owner by session ID, jobs by
// content key (identical prompts coalesce to one execution
// fleet-wide), and every accepted job or turn is written to a durable
// per-node WAL before it is acknowledged, so a crashed node replays
// exactly its unfinished work on restart. See docs/cluster.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux, served only on -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"chatvis/internal/cluster"
	"chatvis/internal/data"
	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/obs"
	"chatvis/internal/par"
	"chatvis/internal/route"
	"chatvis/internal/service"
)

// version is stamped by the build ("-ldflags -X main.version=v1.2.3");
// the default falls back to module build info in obs.ReadBuildInfo.
var version = ""

// daemonConfig collects the daemon's tunables.
type daemonConfig struct {
	dataDir  string
	outDir   string
	storeDir string
	workers  int
	queueCap int
	retries  int
	full     bool
	noCache  bool
	// computeWorkers sizes the parallel compute substrate (filters,
	// rasterizer, pipeline DAG); 0 follows GOMAXPROCS.
	computeWorkers int
	// datasetCacheMB bounds the shared in-memory dataset cache; 0
	// disables it.
	datasetCacheMB int

	// nodeID and peers enable cluster mode: peers is the static fleet
	// membership ("id=host:port,..."), nodeID names this node in it.
	nodeID string
	peers  string
	// walDir holds the durable job/turn log (default <out>/wal; "none"
	// disables durability).
	walDir string
	// tenantRPS/tenantBurst/tenantInflight are the front-door tenant
	// quotas; zero values disable them.
	tenantRPS      float64
	tenantBurst    int
	tenantInflight int

	// routeOn enables measured model routing of assisted traffic;
	// profilesPath names the calibration store; calibrateOnStart probes
	// the registry at boot when the store is empty.
	routeOn          bool
	profilesPath     string
	calibrateOnStart bool

	// logger is the daemon's root structured logger (nil → slog.Default).
	logger *slog.Logger
	// traceCapacity bounds the in-process ring of retained traces; 0
	// takes the obs default.
	traceCapacity int
}

// daemon is one wired chatvisd instance: every subsystem main (and the
// smoke tests) needs a handle on.
type daemon struct {
	queue    *service.Queue
	server   *service.Server
	sessions *service.Sessions
	metrics  *llm.Metrics
	tracer   *obs.Tracer
	cluster  *cluster.Cluster // nil outside cluster mode
	wal      *cluster.WAL     // nil when durability is disabled
	// replayedJobs/replayedTurns count the WAL re-submissions performed
	// at boot.
	replayedJobs  int
	replayedTurns int
}

// close releases background resources (probe loop, WAL segment); the
// queue and sessions are drained separately so callers control the
// budget.
func (d *daemon) close() {
	if d.cluster != nil {
		d.cluster.Stop()
	}
	if d.wal != nil {
		_ = d.wal.Close()
	}
}

// buildDaemon wires store → pipeline/sessions → queue → server, shared
// by main and the smoke tests. Persisted sessions are restored from the
// store, and the WAL's unfinished jobs and turns are re-submitted, so
// neither a drain nor a crash loses accepted work.
func buildDaemon(cfg daemonConfig) (*daemon, error) {
	if cfg.storeDir == "" {
		cfg.storeDir = filepath.Join(cfg.outDir, "store")
	}
	if cfg.walDir == "" {
		cfg.walDir = filepath.Join(cfg.outDir, "wal")
	}
	// The configured count shapes chunk boundaries (par.Workers) and is
	// honored verbatim; actual goroutine fan-out is clamped to the machine
	// by par.Parallelism — more workers than cores only adds scheduling
	// overhead (the 1-core baseline showed 8 requested workers running
	// 0.74x serial speed), so warn when the two diverge. /metrics reports
	// both (chatvis_compute_workers vs chatvis_par_parallelism).
	if max := runtime.GOMAXPROCS(0); cfg.computeWorkers > max {
		slog.Warn("-compute-workers exceeds GOMAXPROCS; goroutine fan-out is clamped",
			"requested", cfg.computeWorkers, "gomaxprocs", max)
	}
	par.SetWorkers(cfg.computeWorkers)
	var dsCache *data.Cache
	if cfg.datasetCacheMB > 0 {
		dsCache = data.NewCache(int64(cfg.datasetCacheMB) << 20)
	}
	store, err := service.NewStore(cfg.storeDir)
	if err != nil {
		return nil, err
	}

	var cl *cluster.Cluster
	if cfg.peers != "" {
		peers, err := cluster.ParsePeers(cfg.peers)
		if err != nil {
			return nil, err
		}
		cl, err = cluster.New(cluster.Config{NodeID: cfg.nodeID, Peers: peers})
		if err != nil {
			return nil, err
		}
	}
	var wal *cluster.WAL
	if cfg.walDir != "none" {
		wal, err = cluster.OpenWAL(cfg.walDir)
		if err != nil {
			return nil, err
		}
	}

	metrics := &llm.Metrics{}
	size := eval.DataSmall
	if cfg.full {
		size = eval.DataFull
	}
	var router *route.Router
	if cfg.routeOn {
		router, err = buildRouter(cfg)
		if err != nil {
			return nil, err
		}
	}
	pipeCfg := service.PipelineConfig{
		DataDir:      cfg.dataDir,
		OutDir:       filepath.Join(cfg.outDir, "jobs"),
		DataSize:     size,
		Retries:      cfg.retries,
		Metrics:      metrics,
		DisableCache: cfg.noCache,
		DatasetCache: dsCache,
		Router:       router,
	}
	// One backend for both surfaces: jobs and session turns share the
	// per-model LLM response caches.
	pipeline, factory := service.NewServingBackend(pipeCfg)
	qopts := service.QueueOptions{
		Workers:  cfg.workers,
		Capacity: cfg.queueCap,
		Pipeline: pipeline,
		Store:    store,
		WAL:      wal,
	}
	if cl != nil {
		// Namespaced job IDs route status polls home; the remote lookup
		// collapses identical requests fleet-wide before executing.
		qopts.JobIDPrefix = "job-" + cl.Self().ID
		qopts.RemoteLookup = service.ClusterLookup(cl)
	}
	queue, err := service.NewQueue(qopts)
	if err != nil {
		return nil, err
	}
	sessions := service.NewSessions(store, factory)
	if wal != nil {
		sessions.WithWAL(wal)
	}
	if cl != nil {
		sessions.WithOwnership(func(id string) bool {
			owner, ok := cl.Owner(id)
			return ok && cl.IsSelf(owner)
		})
	}
	node := cfg.nodeID
	if node == "" {
		node = "chatvisd"
	}
	tracer := obs.NewTracer(node, cfg.traceCapacity)
	logger := cfg.logger
	if logger == nil {
		logger = slog.Default()
	}

	d := &daemon{
		queue: queue, sessions: sessions, metrics: metrics,
		tracer: tracer, cluster: cl, wal: wal,
	}
	sessions.Restore()
	d.replayedJobs = queue.ReplayWAL()
	d.replayedTurns = sessions.ReplayWAL()
	server := service.NewServer(queue, store, metrics).
		WithDatasetCache(dsCache).
		WithSessions(sessions).
		WithTracer(tracer).
		WithLogger(logger).
		WithBuildVersion(version)
	if router != nil {
		server.WithRouter(router, cfg.profilesPath)
	}
	if wal != nil {
		server.WithWAL(wal)
	}
	if cl != nil {
		server.WithCluster(cl)
	}
	if cfg.tenantRPS > 0 || cfg.tenantInflight > 0 {
		server.WithQuotas(cluster.NewQuotas(cluster.QuotaConfig{
			RPS:         cfg.tenantRPS,
			Burst:       cfg.tenantBurst,
			MaxInflight: cfg.tenantInflight,
		}))
	}
	d.server = server
	return d, nil
}

// buildRouter compiles the routing ladders from the profile store,
// probing the registry first when -calibrate-on-start finds the store
// empty. Routing with an empty store and no calibration mandate is a
// configuration error: silently serving everything from the fallback
// would look like routing while measuring nothing.
func buildRouter(cfg daemonConfig) (*route.Router, error) {
	store, err := route.OpenProfileStore(cfg.profilesPath)
	if err != nil {
		return nil, err
	}
	if store.Len() == 0 {
		if !cfg.calibrateOnStart {
			return nil, fmt.Errorf("routing enabled but profile store %s is empty; run cmd/calibrate or pass -calibrate-on-start", cfg.profilesPath)
		}
		size := eval.DataSmall
		if cfg.full {
			size = eval.DataFull
		}
		records, err := route.Calibrate(context.Background(), route.CalibrateConfig{
			Eval: eval.Config{
				DataDir:  cfg.dataDir,
				OutDir:   filepath.Join(cfg.outDir, "calibration"),
				DataSize: size,
			},
			Log: func(format string, args ...interface{}) {
				slog.Info("calibrate: " + fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			return nil, fmt.Errorf("calibrate-on-start: %w", err)
		}
		if err := store.Append(records); err != nil {
			return nil, err
		}
		slog.Info("calibrated model profiles", "records", len(records), "path", store.Path())
	}
	return route.NewRouter(store.Latest(), nil), nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		dataDir  = flag.String("data", "data", "directory for input datasets (generated on demand)")
		outDir   = flag.String("out", "out", "root directory for job outputs and the artifact store")
		storeDir = flag.String("store", "", "artifact store directory (default <out>/store)")
		workers  = flag.Int("workers", runtime.NumCPU(), "pipeline worker pool size")
		queueCap = flag.Int("queue-cap", 256, "max queued (not yet running) jobs")
		retries  = flag.Int("retries", 1, "LLM call attempts per stage")
		full     = flag.Bool("full", false, "paper-scale datasets")
		noCache  = flag.Bool("no-cache", false, "disable the shared LLM response cache")
		drainFor = flag.Duration("drain", 30*time.Second, "graceful shutdown budget before in-flight jobs are canceled")

		computeWorkers = flag.Int("compute-workers", 0,
			"worker-pool size for filters/rasterizer/pipeline execution (0 = GOMAXPROCS; fan-out clamped to GOMAXPROCS, chunk shaping follows the configured value)")
		datasetCacheMB = flag.Int("dataset-cache-mb", 256,
			"in-memory dataset cache shared across jobs, in MiB (0 disables)")

		nodeID = flag.String("node-id", "", "this node's name in the -peers list (cluster mode)")
		peers  = flag.String("peers", "",
			"static fleet membership as id=host:port,... (enables cluster mode; all nodes must share -store)")
		walDir = flag.String("wal-dir", "",
			"write-ahead log directory for accepted jobs/turns (default <out>/wal; \"none\" disables)")

		tenantRPS = flag.Float64("tenant-rps", 0,
			"per-tenant sustained submissions/sec at the front door (0 disables quotas)")
		tenantBurst = flag.Int("tenant-burst", 0,
			"per-tenant burst allowance (default ceil(tenant-rps))")
		tenantInflight = flag.Int("tenant-inflight", 0,
			"per-tenant cap on concurrently executing submissions (0 = unlimited)")

		routeOn = flag.Bool("route", false,
			"route assisted LLM calls to the cheapest profiled model clearing each task's bar")
		profilesPath = flag.String("profiles-path", "profiles.json",
			"model profile store written by cmd/calibrate (versioned JSON)")
		calibrateOnStart = flag.Bool("calibrate-on-start", false,
			"probe the model registry at boot when -route finds an empty profile store")

		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		pprofAddr = flag.String("pprof-addr", "",
			"listen address for the net/http/pprof profiling endpoints (empty disables)")
		traceCap = flag.Int("trace-capacity", 0,
			"finished traces retained in memory for GET /v1/traces (0 = default)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *showVersion {
		bi := obs.ReadBuildInfo(version)
		fmt.Printf("chatvisd %s %s\n", bi.Version, bi.GoVersion)
		return
	}

	logger := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	slog.SetDefault(logger)

	if *pprofAddr != "" {
		// net/http/pprof registers on DefaultServeMux; serving that mux on
		// a separate listener keeps profiling off the public API port.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, http.DefaultServeMux); err != nil {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// After the first signal starts the drain, unregister the
		// handler so a second Ctrl-C kills the process immediately.
		<-ctx.Done()
		stop()
	}()

	d, err := buildDaemon(daemonConfig{
		dataDir:          *dataDir,
		outDir:           *outDir,
		storeDir:         *storeDir,
		workers:          *workers,
		queueCap:         *queueCap,
		retries:          *retries,
		full:             *full,
		noCache:          *noCache,
		computeWorkers:   *computeWorkers,
		datasetCacheMB:   *datasetCacheMB,
		nodeID:           *nodeID,
		peers:            *peers,
		walDir:           *walDir,
		tenantRPS:        *tenantRPS,
		tenantBurst:      *tenantBurst,
		tenantInflight:   *tenantInflight,
		routeOn:          *routeOn,
		profilesPath:     *profilesPath,
		calibrateOnStart: *calibrateOnStart,
		logger:           logger,
		traceCapacity:    *traceCap,
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	defer d.close()
	if d.replayedJobs+d.replayedTurns > 0 {
		logger.Info("wal replay re-submitted accepted work",
			"jobs", d.replayedJobs, "turns", d.replayedTurns)
	}
	if d.cluster != nil {
		d.cluster.Start()
		logger.Info("cluster mode",
			"node", d.cluster.Self().ID, "peers", len(d.cluster.Peers()))
	}

	srv := &http.Server{Addr: *addr, Handler: d.server.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening",
			"addr", *addr, "job_workers", *workers, "compute_workers", par.Workers(),
			"dataset_cache_mb", *datasetCacheMB, "models", fmt.Sprint(llm.ModelNames()),
			"version", obs.ReadBuildInfo(version).Version)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Error("http server", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight jobs", "budget", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	drainErr := false
	if err := d.queue.Shutdown(shutdownCtx); err != nil {
		logger.Warn("queue drain incomplete", "err", err)
		drainErr = true
	}
	if err := d.sessions.Shutdown(shutdownCtx); err != nil {
		logger.Warn("session drain incomplete", "err", err)
		drainErr = true
	}
	// Close the WAL last: the drains above flushed every terminal
	// transition, so a clean exit replays nothing on the next boot.
	d.close()
	if drainErr {
		os.Exit(1)
	}
	fmt.Println("chatvisd: drained cleanly")
}
