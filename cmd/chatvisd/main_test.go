package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chatvis/internal/par"
	"chatvis/internal/service"
)

// TestDaemonSmoke is the CI smoke step (`make smoke`): it starts the
// daemon wiring on a real listener, lists scenarios, submits a job
// against the stub "oracle" LLM profile, polls it to completion, fetches
// the script and screenshot artifacts by hash, and drains the queue.
func TestDaemonSmoke(t *testing.T) {
	d, err := buildDaemon(daemonConfig{
		dataDir: t.TempDir(),
		outDir:  t.TempDir(),
		workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	queue, server := d.queue, d.server
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	// Health first: the daemon must be alive before anything else.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Pick a scenario prompt off the daemon's own listing.
	resp, err = http.Get(srv.URL + "/v1/scenarios?width=320&height=180")
	if err != nil {
		t.Fatal(err)
	}
	var scns struct {
		Scenarios []struct {
			ID     string `json:"id"`
			Prompt string `json:"prompt"`
		} `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scns); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var prompt string
	for _, s := range scns.Scenarios {
		if s.ID == "iso" {
			prompt = s.Prompt
		}
	}
	if prompt == "" {
		t.Fatal("scenario listing missing iso")
	}

	// Submit against the stub profile and poll to completion.
	body, _ := json.Marshal(service.JobRequest{
		Prompt: prompt, Model: "oracle", Width: 320, Height: 180,
	})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("POST /v1/jobs = %d %+v", resp.StatusCode, sub)
	}

	var view service.View
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", sub.ID, view.Status)
		}
		resp, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.Status.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.Status != service.StatusSucceeded || view.Result == nil {
		t.Fatalf("job finished %s (%s)", view.Status, view.Error)
	}
	if !view.Result.Success {
		t.Fatal("oracle pipeline should produce a working script")
	}
	if len(view.Result.Trace.Stages) == 0 {
		t.Error("job result carries no session trace")
	}

	// Artifacts are retrievable by hash with the right content types.
	fetch := func(hash, wantType string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/artifacts/" + hash)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET artifact %s = %d", hash, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != wantType {
			t.Errorf("artifact %s content type = %q, want %q", hash, ct, wantType)
		}
		b, _ := io.ReadAll(resp.Body)
		return b
	}
	script := fetch(view.Result.ScriptHash, "text/x-python")
	if !strings.Contains(string(script), "from paraview.simple import *") {
		t.Errorf("stored script looks wrong: %.80q", script)
	}
	if len(view.Result.ScreenshotHashes) == 0 {
		t.Fatal("no screenshot artifacts stored")
	}
	png := fetch(view.Result.ScreenshotHashes[0], "image/png")
	if len(png) < 8 || !bytes.HasPrefix(png, []byte("\x89PNG")) {
		t.Error("stored screenshot is not a PNG")
	}

	// An identical resubmission is answered from the store (HTTP 200,
	// no new execution).
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var again struct {
		Submission string `json:"submission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || again.Submission != "store" {
		t.Errorf("resubmit: %d %+v", resp.StatusCode, again)
	}

	// Metrics reflect the run and the daemon drains cleanly.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"chatvis_jobs_executed_total 1",
		"chatvis_jobs_store_hits_total 1",
		"chatvis_llm_calls_total",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := queue.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDaemonConcurrentIdenticalSubmissions verifies the acceptance
// criterion end-to-end: N identical concurrent POSTs against the stub
// profile yield exactly one pipeline execution.
func TestDaemonConcurrentIdenticalSubmissions(t *testing.T) {
	d, err := buildDaemon(daemonConfig{
		dataDir: t.TempDir(),
		outDir:  t.TempDir(),
		workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	queue, server := d.queue, d.server
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	body, _ := json.Marshal(service.JobRequest{
		Prompt: "Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename iso.png. The rendered view and saved screenshot should be 320 x 180 pixels.",
		Model:  "oracle", Width: 320, Height: 180,
	})
	const n = 10
	errs := make(chan error, n)
	ids := make(chan string, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var sub struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				errs <- err
				return
			}
			ids <- sub.ID
			errs <- nil
		}()
	}
	idSet := map[string]bool{}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(ids)
	for id := range ids {
		idSet[id] = true
	}
	// A submission that lands after the (fast) first execution finishes
	// is legitimately answered from the store under a fresh job id, so
	// the id set is not asserted to be exactly 1 — the acceptance
	// criterion is that the burst costs ONE pipeline execution, checked
	// below. (Strict same-id coalescing is pinned deterministically with
	// a gated stub in internal/service.)
	for id := range idSet {
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", id)
			}
			resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var v service.View
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if v.Status.Terminal() {
				if v.Status != service.StatusSucceeded {
					t.Fatalf("job %s = %s (%s)", id, v.Status, v.Error)
				}
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if snap := queue.Snapshot(); snap.Executed != 1 {
		t.Errorf("executed = %d, want 1 (n=%d identical submissions)", snap.Executed, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := queue.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDaemonSessionTwoTurns is the session smoke step (`make smoke`): it
// drives a two-turn conversation against a live daemon — create a
// session, build an isosurface, then edit one value — and asserts the
// second turn re-executed only the changed stage (and its downstream
// subtree), which is the whole point of the session API.
func TestDaemonSessionTwoTurns(t *testing.T) {
	d, err := buildDaemon(daemonConfig{
		dataDir: t.TempDir(),
		outDir:  t.TempDir(),
		workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	queue, server, sessions := d.queue, d.server, d.sessions
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Create a session bound to the stub profile.
	code, body := post("/v1/sessions", `{"model":"oracle","width":320,"height":180}`)
	var created service.SessionView
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusCreated || created.ID == "" {
		t.Fatalf("POST /v1/sessions = %d %s", code, body)
	}

	pollTurn := func(turnID string) service.TurnView {
		t.Helper()
		var tv service.TurnView
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("turn %s stuck in %s", turnID, tv.Status)
			}
			resp, err := http.Get(srv.URL + "/v1/sessions/" + created.ID + "/turns/" + turnID)
			if err != nil {
				t.Fatal(err)
			}
			err = json.NewDecoder(resp.Body).Decode(&tv)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if tv.Status.Terminal() {
				return tv
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Turn 1: build.
	turnBody, _ := json.Marshal(service.TurnRequest{
		Prompt: "Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename iso.png. The rendered view and saved screenshot should be 320 x 180 pixels.",
	})
	code, body = post("/v1/sessions/"+created.ID+"/turns", string(turnBody))
	var t1 struct {
		service.TurnView
		Submission string `json:"submission"`
	}
	if err := json.Unmarshal(body, &t1); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusAccepted {
		t.Fatalf("POST turn 1 = %d %s", code, body)
	}
	v1 := pollTurn(t1.ID)
	if v1.Status != service.StatusSucceeded || !v1.Success {
		t.Fatalf("turn 1 = %s (%s)", v1.Status, v1.Error)
	}

	// Turn 2: edit exactly one stage.
	turnBody, _ = json.Marshal(service.TurnRequest{Prompt: "Raise the isovalue to 0.7."})
	code, body = post("/v1/sessions/"+created.ID+"/turns", string(turnBody))
	var t2 struct {
		service.TurnView
		Submission string `json:"submission"`
	}
	if err := json.Unmarshal(body, &t2); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusAccepted {
		t.Fatalf("POST turn 2 = %d %s", code, body)
	}
	v2 := pollTurn(t2.ID)
	if v2.Status != service.StatusSucceeded || !v2.Success {
		t.Fatalf("turn 2 = %s (%s)", v2.Status, v2.Error)
	}
	if v2.ParentPlanHash != v1.PlanHash {
		t.Errorf("turn 2 parent plan = %s, want %s", v2.ParentPlanHash, v1.PlanHash)
	}
	// THE assertion: only the edited stage (its downstream subtree holds
	// no other pipeline stage) re-executed.
	if v2.ExecutionsDelta != 1 {
		t.Errorf("turn 2 executions delta = %d, want 1 (incremental re-exec)", v2.ExecutionsDelta)
	}
	if len(v2.ChangedStages) == 0 {
		t.Error("turn 2 lists no changed stages")
	}
	if len(v2.ScreenshotHashes) == 0 {
		t.Error("turn 2 stored no screenshot")
	}

	// Session metrics visible on /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"chatvis_sessions_active 1",
		"chatvis_session_turns_total 2",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sessions.Shutdown(ctx); err != nil {
		t.Fatalf("session drain: %v", err)
	}
	if err := queue.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDaemonComputeFlagsAndDatasetCache covers the -compute-workers /
// -dataset-cache-mb plumbing: the worker count lands in the par pool and
// /metrics, and two different jobs over the same input dataset share the
// content-hash dataset cache (the second job's reader is a cache hit).
func TestDaemonComputeFlagsAndDatasetCache(t *testing.T) {
	d, err := buildDaemon(daemonConfig{
		dataDir:        t.TempDir(),
		outDir:         t.TempDir(),
		workers:        2,
		computeWorkers: 3,
		datasetCacheMB: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	queue, server := d.queue, d.server
	defer par.SetWorkers(0)
	if got := par.Workers(); got != 3 {
		t.Fatalf("par.Workers() = %d, want 3 (from -compute-workers)", got)
	}
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	submit := func(iso string) {
		t.Helper()
		body, _ := json.Marshal(service.JobRequest{
			Prompt: "Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value " + iso + ". Save a screenshot of the result in the filename iso.png. The rendered view and saved screenshot should be 320 x 180 pixels.",
			Model:  "oracle", Width: 320, Height: 180,
		})
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", sub.ID)
			}
			resp, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			var v service.View
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if v.Status.Terminal() {
				if v.Status != service.StatusSucceeded {
					t.Fatalf("job %s = %s (%s)", sub.ID, v.Status, v.Error)
				}
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Two distinct prompts (no store/coalescing dedup) over one dataset.
	submit("0.4000")
	submit("0.6000")

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"chatvis_compute_workers 3",
		"chatvis_dataset_cache_entries",
		"chatvis_dataset_cache_capacity_bytes 67108864",
		"chatvis_dataset_cache_hits_total",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The second job re-read the same file: the shared dataset cache must
	// report at least one hit.
	for _, line := range strings.Split(string(metricsBody), "\n") {
		if strings.HasPrefix(line, "chatvis_dataset_cache_hits_total ") {
			if strings.TrimSpace(strings.TrimPrefix(line, "chatvis_dataset_cache_hits_total ")) == "0" {
				t.Errorf("dataset cache saw no hits across two jobs on one input: %s", line)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := queue.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestClusterSmoke3Nodes is the CI cluster smoke step
// (`make smoke-cluster`): it boots three full daemons on loopback
// sharing one artifact store, posts the identical prompt to all three
// at once, and asserts the fleet executed the pipeline exactly once.
// It then creates a session (which lands on its ring owner) and drives
// a turn through a NON-owner node to prove session forwarding.
func TestClusterSmoke3Nodes(t *testing.T) {
	const n = 3
	listeners := make([]*httptest.Server, n)
	peerSpec := make([]string, n)
	for i := range listeners {
		listeners[i] = httptest.NewUnstartedServer(http.NotFoundHandler())
		peerSpec[i] = fmt.Sprintf("n%d=%s", i+1, listeners[i].Listener.Addr().String())
	}
	peers := strings.Join(peerSpec, ",")

	sharedStore := t.TempDir()
	daemons := make([]*daemon, n)
	for i := range daemons {
		d, err := buildDaemon(daemonConfig{
			dataDir:  t.TempDir(),
			outDir:   t.TempDir(),
			storeDir: sharedStore,
			workers:  2,
			nodeID:   fmt.Sprintf("n%d", i+1),
			peers:    peers,
		})
		if err != nil {
			t.Fatal(err)
		}
		daemons[i] = d
		listeners[i].Config.Handler = d.server.Handler()
		listeners[i].Start()
		d.cluster.Start()
	}
	t.Cleanup(func() {
		for i, d := range daemons {
			listeners[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = d.sessions.Shutdown(ctx)
			_ = d.queue.Shutdown(ctx)
			cancel()
			d.close()
		}
	})

	// The same prompt hits every node simultaneously. The ring routes
	// all three to one owner, which coalesces them onto one execution.
	prompt := "Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename iso.png. The rendered view and saved screenshot should be 320 x 180 pixels."
	body, _ := json.Marshal(service.JobRequest{
		Prompt: prompt, Model: "oracle", Width: 320, Height: 180,
	})
	type submitResult struct {
		id   string
		code int
		err  error
	}
	results := make(chan submitResult, n)
	for i := range listeners {
		go func(url string) {
			resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- submitResult{err: err}
				return
			}
			defer resp.Body.Close()
			var sub struct {
				ID string `json:"id"`
			}
			err = json.NewDecoder(resp.Body).Decode(&sub)
			results <- submitResult{id: sub.ID, code: resp.StatusCode, err: err}
		}(listeners[i].URL)
	}
	ids := make([]string, 0, n)
	for range listeners {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.code != http.StatusAccepted && r.code != http.StatusOK {
			t.Fatalf("submit = %d", r.code)
		}
		ids = append(ids, r.id)
	}

	// Every node can resolve every job ID (namespaced IDs route home).
	for _, id := range ids {
		for _, l := range listeners {
			deadline := time.Now().Add(60 * time.Second)
			for {
				resp, err := http.Get(l.URL + "/v1/jobs/" + id)
				if err != nil {
					t.Fatal(err)
				}
				var view struct {
					Status service.JobStatus `json:"status"`
					Error  string            `json:"error"`
				}
				err = json.NewDecoder(resp.Body).Decode(&view)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if view.Status.Terminal() {
					if view.Status != service.StatusSucceeded {
						t.Fatalf("job %s: %s (%s)", id, view.Status, view.Error)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("job %s stuck", id)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}

	// THE fleet-wide assertion: one execution across all three nodes.
	var executed int64
	for _, d := range daemons {
		executed += d.queue.Snapshot().Executed
	}
	if executed != 1 {
		t.Errorf("fleet executed %d times for one prompt, want exactly 1", executed)
	}

	// Session forwarding: the creating node mints an ID it owns, so a
	// turn posted anywhere else must relay to the creator.
	resp, err := http.Post(listeners[0].URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"model":"oracle","width":320,"height":180}`))
	if err != nil {
		t.Fatal(err)
	}
	var created service.SessionView
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("POST /v1/sessions = %d", resp.StatusCode)
	}
	owner, ok := daemons[0].cluster.Owner(created.ID)
	if !ok || !daemons[0].cluster.IsSelf(owner) {
		t.Fatalf("creating node does not own session %s (owner %v)", created.ID, owner)
	}

	turnBody, _ := json.Marshal(service.TurnRequest{Prompt: prompt})
	resp, err = http.Post(listeners[1].URL+"/v1/sessions/"+created.ID+"/turns",
		"application/json", bytes.NewReader(turnBody))
	if err != nil {
		t.Fatal(err)
	}
	var turn service.TurnView
	if err := json.NewDecoder(resp.Body).Decode(&turn); err != nil {
		t.Fatal(err)
	}
	forwardedBy := resp.Header.Get(service.ForwardedHeader)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST turn via non-owner = %d", resp.StatusCode)
	}
	if forwardedBy != "n1" {
		t.Errorf("turn response forwarded-by = %q, want n1", forwardedBy)
	}

	// The turn completes, observable from the third node.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(listeners[2].URL + "/v1/sessions/" + created.ID + "/turns/" + turn.ID)
		if err != nil {
			t.Fatal(err)
		}
		var tv service.TurnView
		err = json.NewDecoder(resp.Body).Decode(&tv)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if tv.Status.Terminal() {
			if tv.Status != service.StatusSucceeded || !tv.Success {
				t.Fatalf("forwarded turn = %s (%s)", tv.Status, tv.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("forwarded turn never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Cluster health is visible on every node's /metrics.
	resp, err = http.Get(listeners[2].URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metricsBody), "chatvis_cluster_peers_healthy 3") {
		t.Errorf("metrics missing healthy peer count:\n%s", metricsBody)
	}
}

// TestClusterTracePropagation is the cross-node tracing smoke
// (`make smoke-cluster`): it boots three daemons, submits one job to a
// node that does NOT own its content key (forcing a forward hop on a
// cold store), and asserts the fleet produced ONE trace — retrievable
// from the third node, which recorded none of it — containing the
// queue wait, an LLM call with token counts, at least one executed
// plan stage, and the cross-node forward, with spans recorded by both
// the entry and owner nodes.
func TestClusterTracePropagation(t *testing.T) {
	const n = 3
	listeners := make([]*httptest.Server, n)
	peerSpec := make([]string, n)
	for i := range listeners {
		listeners[i] = httptest.NewUnstartedServer(http.NotFoundHandler())
		peerSpec[i] = fmt.Sprintf("n%d=%s", i+1, listeners[i].Listener.Addr().String())
	}
	peers := strings.Join(peerSpec, ",")

	sharedStore := t.TempDir()
	daemons := make([]*daemon, n)
	for i := range daemons {
		d, err := buildDaemon(daemonConfig{
			dataDir:  t.TempDir(),
			outDir:   t.TempDir(),
			storeDir: sharedStore,
			workers:  2,
			nodeID:   fmt.Sprintf("n%d", i+1),
			peers:    peers,
		})
		if err != nil {
			t.Fatal(err)
		}
		daemons[i] = d
		listeners[i].Config.Handler = d.server.Handler()
		listeners[i].Start()
		d.cluster.Start()
	}
	t.Cleanup(func() {
		for i, d := range daemons {
			listeners[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = d.sessions.Shutdown(ctx)
			_ = d.queue.Shutdown(ctx)
			cancel()
			d.close()
		}
	})

	req := service.JobRequest{
		Prompt: "Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.3100. Save a screenshot of the result in the filename iso.png. The rendered view and saved screenshot should be 320 x 180 pixels.",
		Model:  "oracle", Width: 320, Height: 180,
	}
	// Enter through a node that does NOT own the job's content key, so
	// acceptance crosses the fleet; read the trace back from the third
	// node, which recorded no span at all.
	ownerPeer, ok := daemons[0].cluster.Owner(service.Key(req))
	if !ok {
		t.Fatal("no ring owner for job key")
	}
	entry, third := -1, -1
	for i, d := range daemons {
		switch d.cluster.Self().ID {
		case ownerPeer.ID:
		default:
			if entry < 0 {
				entry = i
			} else {
				third = i
			}
		}
	}
	if entry < 0 || third < 0 {
		t.Fatalf("could not pick entry/third nodes around owner %s", ownerPeer.ID)
	}

	body, _ := json.Marshal(req)
	resp, err := http.Post(listeners[entry].URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	traceID := resp.Header.Get("X-ChatVis-Trace")
	var sub struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if traceID == "" {
		t.Fatal("submit response missing X-ChatVis-Trace header")
	}

	// The job completes; its result carries the submit's trace ID.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(listeners[entry].URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view service.View
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.Status.Terminal() {
			if view.Status != service.StatusSucceeded {
				t.Fatalf("job %s = %s (%s)", sub.ID, view.Status, view.Error)
			}
			if view.TraceID != traceID {
				t.Errorf("job result trace_id = %q, want %q", view.TraceID, traceID)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck", sub.ID)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One trace, fetched from the node that saw none of the request:
	// the fan-out merge stitches the entry node's forward hop and the
	// owner's execution into a single span list. Late spans (the
	// executor ends its span just after the status flips) get a few
	// retries.
	wanted := []string{"queue.wait", "job.execute", "cluster.forward"}
	var trace struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name  string            `json:"name"`
			Node  string            `json:"node"`
			Attrs map[string]string `json:"attrs"`
		} `json:"spans"`
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(listeners[third].URL + "/v1/traces/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		trace.Spans = nil
		code := resp.StatusCode
		err = json.NewDecoder(resp.Body).Decode(&trace)
		resp.Body.Close()
		names := map[string]bool{}
		llmTokens, planStage := false, false
		if code == http.StatusOK && err == nil {
			for _, sp := range trace.Spans {
				names[sp.Name] = true
				if strings.HasPrefix(sp.Name, "llm.") {
					if _, ok := sp.Attrs["prompt_tokens"]; ok {
						llmTokens = true
					}
				}
				if strings.HasPrefix(sp.Name, "stage.") {
					planStage = true
				}
			}
		}
		complete := llmTokens && planStage
		for _, w := range wanted {
			complete = complete && names[w]
		}
		if complete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s incomplete from node %s: status=%d err=%v spans=%v llmTokens=%v planStage=%v",
				traceID, daemons[third].cluster.Self().ID, code, err, names, llmTokens, planStage)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if trace.TraceID != traceID {
		t.Errorf("merged trace id = %q, want %q", trace.TraceID, traceID)
	}

	// Both sides of the forward hop recorded spans under the one ID.
	nodes := map[string]bool{}
	for _, sp := range trace.Spans {
		nodes[sp.Node] = true
	}
	entryID := daemons[entry].cluster.Self().ID
	if !nodes[entryID] || !nodes[ownerPeer.ID] {
		t.Errorf("trace spans span nodes %v, want both %s (entry) and %s (owner)",
			nodes, entryID, ownerPeer.ID)
	}
}
