// Command evalrunner regenerates the paper's evaluation artifacts:
// Table I (generated scripts), Table II (LLM comparison grid) and the
// image comparisons behind Figures 2-6. Results are printed and written
// to a markdown report.
//
// Usage:
//
//	evalrunner -data ./data -out ./out                 # everything
//	evalrunner -task iso                               # one figure
//	evalrunner -table2                                 # only the grid
//	evalrunner -full -width 1920 -height 1080          # paper scale
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"chatvis/internal/eval"
)

func main() {
	var (
		dataDir = flag.String("data", "data", "dataset directory (populated on demand)")
		outDir  = flag.String("out", "out", "output directory for screenshots and the report")
		width   = flag.Int("width", 480, "render width")
		height  = flag.Int("height", 270, "render height")
		full    = flag.Bool("full", false, "paper-scale datasets")
		task    = flag.String("task", "", "run a single scenario: iso, slice, volume, delaunay, stream")
		table2  = flag.Bool("table2", false, "run only the Table II grid")
		table1  = flag.Bool("table1", false, "run only the Table I script pair")
	)
	flag.Parse()

	cfg := eval.Config{
		DataDir: *dataDir,
		OutDir:  *outDir,
		Width:   *width,
		Height:  *height,
	}
	if *full {
		cfg.DataSize = eval.DataFull
	}

	switch {
	case *task != "":
		scn, ok := eval.ScenarioByID(*task)
		if !ok {
			fatal(fmt.Errorf("unknown task %q", *task))
		}
		fig, err := cfg.RunFigure(scn)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s (%s):\n", fig.Figure, fig.Task)
		fmt.Printf("  ChatVis vs ground truth: %s (match=%v)\n", fig.ChatVis, fig.ChatVisMatches)
		if fig.GPT4 != nil {
			fmt.Printf("  GPT-4  vs ground truth: %s (match=%v)\n", *fig.GPT4, fig.GPT4Matches)
		} else {
			fmt.Println("  GPT-4: no image (script failed)")
		}
	case *table1:
		t1, err := cfg.RunTable1()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t1.Format())
	case *table2:
		t2, err := cfg.RunTable2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t2.Format())
	default:
		fmt.Println("running Table II grid (6 models x 5 tasks)...")
		t2, err := cfg.RunTable2()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t2.Format())
		fmt.Println("running Table I script pair...")
		t1, err := cfg.RunTable1()
		if err != nil {
			fatal(err)
		}
		var figs []*eval.FigureResult
		for _, scn := range eval.Scenarios() {
			fmt.Printf("running %s (%s)...\n", scn.Figure, scn.ID)
			fig, err := cfg.RunFigure(scn)
			if err != nil {
				fatal(err)
			}
			figs = append(figs, fig)
			fmt.Printf("  ChatVis vs GT: %s (match=%v)\n", fig.ChatVis, fig.ChatVisMatches)
		}
		report := filepath.Join(*outDir, "report.md")
		if err := eval.WriteReport(report, t2, t1, figs); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", report)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalrunner:", err)
	os.Exit(1)
}
