// Command evalrunner regenerates the paper's evaluation artifacts:
// Table I (generated scripts), Table II (LLM comparison grid) and the
// image comparisons behind Figures 2-6. The grid sweeps scenarios ×
// models concurrently with a shared ground-truth cache; results are
// printed (with per-cell session traces) and written to a markdown
// report. Ctrl-C cancels the sweep.
//
// Usage:
//
//	evalrunner -data ./data -out ./out                 # everything
//	evalrunner -task iso                               # one figure
//	evalrunner -table2 -workers 8                      # only the grid
//	evalrunner -table2 -serial                         # paper-style serial sweep
//	evalrunner -full -width 1920 -height 1080          # paper scale
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"chatvis/internal/eval"
	"chatvis/internal/imgcmp"
	"chatvis/internal/llm"
	"chatvis/internal/route"
)

func main() {
	var (
		dataDir = flag.String("data", "data", "dataset directory (populated on demand)")
		outDir  = flag.String("out", "out", "output directory for screenshots and the report")
		width   = flag.Int("width", 480, "render width")
		height  = flag.Int("height", 270, "render height")
		full    = flag.Bool("full", false, "paper-scale datasets")
		task    = flag.String("task", "", "run a single scenario: iso, slice, volume, delaunay, stream, clip, threshold, glyph")
		table2  = flag.Bool("table2", false, "run only the Table II grid")
		table1  = flag.Bool("table1", false, "run only the Table I script pair")
		multi   = flag.Bool("multiturn", false, "run only the multi-turn conversation track")
		workers = flag.Int("workers", 2*runtime.NumCPU(), "grid worker pool size")
		serial  = flag.Bool("serial", false, "paper-style serial sweep (no worker pool, no shared ground truth)")
		stats   = flag.Bool("stats", true, "print per-cell session traces (duration, LLM calls, tokens)")
		routed  = flag.Bool("route", false, "route assisted-pipeline calls through measured model profiles")
		prof    = flag.String("profiles", "profiles.json", "calibrated profile store (see cmd/calibrate)")
	)
	flag.Parse()
	if *workers < 1 {
		*workers = 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// First signal cancels the sweep; unregistering the handler then
		// lets a second Ctrl-C kill the process immediately instead of
		// being swallowed while workers drain.
		<-ctx.Done()
		stop()
	}()

	cfg := eval.Config{
		DataDir: *dataDir,
		OutDir:  *outDir,
		Width:   *width,
		Height:  *height,
	}
	if *full {
		cfg.DataSize = eval.DataFull
	}
	var router *route.Router
	if *routed {
		store, err := route.OpenProfileStore(*prof)
		if err != nil {
			fatal(err)
		}
		if store.Len() == 0 {
			fatal(fmt.Errorf("profile store %s is empty; run cmd/calibrate first", *prof))
		}
		router = route.NewRouter(store.Latest(), nil)
		cfg.PipelineClient = func(defaultModel string) (llm.Client, error) {
			return router.Client(defaultModel, llm.NewModel), nil
		}
		fmt.Printf("routing assisted calls via %s (%d live profiles)\n", *prof, store.Latest().Len())
	}
	runGrid := func() (*eval.Table2, error) {
		start := time.Now()
		var t2 *eval.Table2
		var err error
		if *serial {
			t2, err = cfg.RunTable2(ctx)
		} else {
			t2, err = cfg.RunGrid(ctx, *workers)
		}
		if err != nil {
			return nil, err
		}
		mode := fmt.Sprintf("%d workers, shared ground truth", *workers)
		if *serial {
			mode = "serial sweep"
		}
		fmt.Printf("grid completed in %v (%s)\n\n", time.Since(start).Round(time.Millisecond), mode)
		return t2, nil
	}

	switch {
	case *task != "":
		scn, ok := eval.ScenarioByID(*task)
		if !ok {
			fatal(fmt.Errorf("unknown task %q", *task))
		}
		cell, art, err := cfg.RunChatVis(ctx, scn)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s (%s): error-free=%v screenshot=%v\n",
			scn.Figure, scn.Row, cell.ErrorFree, cell.Screenshot)
		fmt.Printf("  vs ground truth: %s\n", cell.Metrics)
		fmt.Printf("\nsession trace:\n%s", art.Trace.Format())
		g4, _, err := cfg.RunUnassisted(ctx, "gpt-4", scn)
		if err != nil {
			fatal(err)
		}
		if g4.ErrorFree && g4.Metrics != (imgcmp.Metrics{}) {
			fmt.Printf("\nGPT-4 vs ground truth: %s (match=%v)\n", g4.Metrics, g4.Screenshot)
		} else {
			fmt.Println("\nGPT-4: no image (script failed)")
		}
	case *table1:
		t1, err := cfg.RunTable1(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t1.Format())
	case *multi:
		mt, err := cfg.RunMultiTurn(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(mt.Format())
	case *table2:
		t2, err := runGrid()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t2.Format())
		if *stats {
			fmt.Printf("\nper-cell session traces:\n%s", t2.FormatStats())
		}
	default:
		fmt.Printf("running Table II grid (6 models x 5 tasks, %d workers)...\n", *workers)
		t2, err := runGrid()
		if err != nil {
			fatal(err)
		}
		fmt.Println(t2.Format())
		if *stats {
			fmt.Printf("\nper-cell session traces:\n%s\n", t2.FormatStats())
		}
		fmt.Println("running Table I script pair...")
		t1, err := cfg.RunTable1(ctx)
		if err != nil {
			fatal(err)
		}
		var figs []*eval.FigureResult
		for _, scn := range eval.Scenarios() {
			fmt.Printf("running %s (%s)...\n", scn.Figure, scn.ID)
			fig, err := cfg.RunFigure(ctx, scn)
			if err != nil {
				fatal(err)
			}
			figs = append(figs, fig)
			fmt.Printf("  ChatVis vs GT: %s (match=%v)\n", fig.ChatVis, fig.ChatVisMatches)
		}
		fmt.Println("running multi-turn conversations...")
		mt, err := cfg.RunMultiTurn(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(mt.Format())
		var routing *eval.RoutingTable
		if router != nil {
			routing = route.Report(router, *prof)
			fmt.Printf("routing decisions:\n%s\n", routing.Format())
		}
		report := filepath.Join(*outDir, "report.md")
		if err := eval.WriteReport(report, t2, t1, figs, mt, routing); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", report)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalrunner:", err)
	os.Exit(1)
}
