// Command planlint is the CI plan-validation pass: it compiles every
// registered example pipeline — the ground-truth script of each eval
// scenario — to the plan IR, validates it against the engine-derived
// schema, and checks the render/compile round trip. A reference pipeline
// that stops validating (a schema drift, a renamed property, a broken
// scenario) fails the build before any test renders a pixel.
//
// Usage:
//
//	go run ./cmd/planlint [-width N] [-height N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/plan"
	"chatvis/internal/pvsim"
)

func main() {
	width := flag.Int("width", 480, "prompt/script resolution width")
	height := flag.Int("height", 270, "prompt/script resolution height")
	verbose := flag.Bool("v", false, "print every validated pipeline")
	flag.Parse()

	schema := pvsim.PlanSchema()
	failed := 0
	check := func(name string, ok bool, detail string) {
		if ok {
			if *verbose {
				fmt.Printf("ok   %s\n", name)
			}
			return
		}
		failed++
		fmt.Printf("FAIL %s\n%s", name, detail)
	}

	for _, scn := range eval.Scenarios() {
		script := scn.GroundTruthScript(*width, *height)

		// 1. The ground truth compiles with zero diagnostics of any
		// severity — reference pipelines must be beyond reproach.
		compiled, err := plan.Compile(script, schema)
		if err != nil {
			check("compile "+scn.ID, false, fmt.Sprintf("  %v\n", err))
			continue
		}
		check("compile "+scn.ID, len(compiled.Diags) == 0,
			plan.FormatDiagnostics(compiled.Diags))

		// 2. The normalized plan round-trips through script rendering.
		p1 := plan.Normalize(compiled.Plan, schema)
		rendered, err := plan.Compile(p1.Script(), schema)
		if err != nil {
			check("roundtrip "+scn.ID, false, fmt.Sprintf("  rendered script does not parse: %v\n", err))
			continue
		}
		check("roundtrip "+scn.ID, p1.Equal(plan.Normalize(rendered.Plan, schema)),
			"  render/compile fixpoint violated\n")

		// 3. The writer's intended plan agrees with its emitted script.
		spec := llm.ParseIntent(scn.UserPrompt(*width, *height))
		intended := plan.Normalize(llm.WritePlan(spec), schema)
		emitted, err := plan.Compile(
			llm.WriteScript(spec, llm.Profile{Name: "clean"}, llm.FullGrounding()), schema)
		if err != nil {
			check("intent "+scn.ID, false, fmt.Sprintf("  writer script does not parse: %v\n", err))
			continue
		}
		check("intent "+scn.ID, intended.Equal(plan.Normalize(emitted.Plan, schema)),
			"  WritePlan and WriteScript disagree\n")

		// 4. Plan-native scenarios: the authored IR itself validates.
		if ir := scn.PlanIR(*width, *height); ir != nil {
			diags := plan.Validate(ir, schema)
			check("ir "+scn.ID, !plan.HasErrors(diags), plan.FormatDiagnostics(diags))
		}
	}

	if failed > 0 {
		fmt.Printf("planlint: %d check(s) failed\n", failed)
		os.Exit(1)
	}
	fmt.Printf("planlint: %d example pipelines validate cleanly\n", len(eval.Scenarios()))
}
