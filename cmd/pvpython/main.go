// Command pvpython executes a ParaView Python script against the
// simulated engine, mimicking `pvpython script.py`.
//
// Usage:
//
//	pvpython -data ./data -out ./out script.py
package main

import (
	"flag"
	"fmt"
	"os"

	"chatvis/internal/pvpython"
	"chatvis/internal/pvsim"
)

func main() {
	var (
		dataDir = flag.String("data", ".", "directory for resolving input dataset paths")
		outDir  = flag.String("out", ".", "directory for screenshots")
		listAPI = flag.Bool("list-api", false, "print the simulated paraview.simple API reference and exit")
	)
	flag.Parse()
	if *listAPI {
		fmt.Print(pvsim.NewEngine("", "").APIReference().Format())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pvpython [flags] script.py")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pvpython:", err)
		os.Exit(1)
	}
	runner := &pvpython.Runner{DataDir: *dataDir, OutDir: *outDir}
	res := runner.Exec(string(src))
	fmt.Print(res.Output)
	if !res.OK() {
		os.Exit(1)
	}
	for _, s := range res.Screenshots {
		fmt.Printf("wrote %s\n", s)
	}
}
