// Command datagen writes the three input datasets the experiments use:
// ml-100.vtk (Marschner-Lobb), can_points.ex2 (point cloud) and disk.ex2
// (annular flow).
//
// Usage:
//
//	datagen -dir ./data [-full]
package main

import (
	"flag"
	"fmt"
	"os"

	"chatvis/internal/eval"
)

func main() {
	var (
		dir  = flag.String("dir", "data", "output directory")
		full = flag.Bool("full", false, "paper-scale datasets (ml-100 at 100^3) instead of small test sizes")
	)
	flag.Parse()
	size := eval.DataSmall
	if *full {
		size = eval.DataFull
	}
	if err := eval.EnsureData(*dir, size); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	for _, f := range []string{"ml-100.vtk", "can_points.ex2", "disk.ex2"} {
		fmt.Printf("wrote %s/%s\n", *dir, f)
	}
}
