// Command chatvis runs the iterative assistant on a natural-language
// visualization request, producing a ParaView Python script and a
// screenshot. Ctrl-C cancels the session cleanly mid-loop.
//
// Usage:
//
//	chatvis -prompt "Read in the file named ml-100.vtk. ..." \
//	        -data ./data -out ./out -model gpt-4 -max-iter 5
//
// Generate the input datasets first with `datagen -dir ./data`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"chatvis/internal/chatvis"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
)

func main() {
	var (
		prompt    = flag.String("prompt", "", "natural-language visualization request (required)")
		dataDir   = flag.String("data", "data", "directory containing input datasets")
		outDir    = flag.String("out", "out", "directory for screenshots and artifacts")
		modelName = flag.String("model", "gpt-4", "LLM to use: "+strings.Join(llm.ModelNames(), ", "))
		maxIter   = flag.Int("max-iter", 5, "maximum error-correction iterations")
		fewShot   = flag.Int("few-shot", 0, "number of example snippets (0 = all, negative = none)")
		noRewrite = flag.Bool("no-rewrite", false, "skip the prompt-generation stage")
		unassist  = flag.Bool("unassisted", false, "run the bare model without the assistant (comparison mode)")
		retries   = flag.Int("retries", 1, "LLM call attempts (middleware retry budget)")
		noCache   = flag.Bool("no-cache", false, "disable the LLM response cache")
		trace     = flag.Bool("trace", false, "print the per-stage session trace")
		verbose   = flag.Bool("v", false, "print per-iteration transcripts")
	)
	flag.Parse()
	if *prompt == "" {
		fmt.Fprintln(os.Stderr, "chatvis: -prompt is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// First signal cancels the session context so in-flight pipeline
		// stages unwind cleanly; unregistering the handler then lets a
		// second Ctrl-C kill the process immediately instead of being
		// swallowed while the drain finishes.
		<-ctx.Done()
		stop()
	}()

	base, err := llm.NewModel(*modelName)
	if err != nil {
		fatal(err)
	}
	// Production-shaped client stack: metrics around retry around cache.
	var metrics llm.Metrics
	mws := []llm.Middleware{llm.WithMetrics(&metrics), llm.WithRetry(*retries, 0)}
	if !*noCache {
		mws = append(mws, llm.WithCache())
	}
	model := llm.Chain(base, mws...)
	runner := &pvpython.Runner{DataDir: *dataDir, OutDir: *outDir}

	var art *chatvis.Artifact
	if *unassist {
		art, err = chatvis.Unassisted(ctx, model, runner, *prompt)
	} else {
		var assistant *chatvis.Assistant
		assistant, err = chatvis.NewAssistant(model, runner,
			chatvis.WithMaxIterations(*maxIter),
			chatvis.WithFewShot(*fewShot),
			chatvis.WithRewrite(!*noRewrite))
		if err == nil {
			art, err = assistant.Run(ctx, *prompt)
		}
	}
	if err != nil {
		fatal(err)
	}

	if *verbose {
		fmt.Printf("=== generated prompt ===\n%s\n", art.GeneratedPrompt)
		for i, it := range art.Iterations {
			fmt.Printf("=== iteration %d script ===\n%s\n", i+1, it.Script)
			if it.Output != "" {
				fmt.Printf("=== iteration %d output ===\n%s\n", i+1, it.Output)
			}
		}
	}
	if *trace {
		fmt.Printf("=== session trace ===\n%s", art.Trace.Format())
		s := metrics.Snapshot()
		fmt.Printf("client metrics: %d calls, %d errors, %d cache hits, %v total latency\n",
			s.Calls, s.Errors, s.CacheHits, s.TotalLatency)
	}

	scriptPath := filepath.Join(*outDir, "generated_script.py")
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(scriptPath, []byte(art.FinalScript), 0o644); err != nil {
		fatal(err)
	}

	if art.Success {
		fmt.Printf("success after %d iteration(s) in %v (%d tokens)\n",
			art.NumIterations(), art.Trace.TotalDuration().Round(1e6),
			art.Trace.TotalUsage().TotalTokens())
		fmt.Printf("script: %s\n", scriptPath)
		for _, s := range art.Screenshots {
			fmt.Printf("screenshot: %s\n", s)
		}
		return
	}
	fmt.Printf("failed after %d iteration(s); last errors:\n", art.NumIterations())
	last := art.Iterations[len(art.Iterations)-1]
	for _, e := range last.Errors {
		fmt.Printf("  %s: %s\n", e.Kind, e.Message)
	}
	fmt.Printf("script: %s\n", scriptPath)
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chatvis:", err)
	os.Exit(1)
}
