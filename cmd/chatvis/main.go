// Command chatvis runs the conversational assistant on natural-language
// visualization requests, producing ParaView Python scripts and
// screenshots. Ctrl-C cancels the session cleanly mid-loop.
//
// One-shot:
//
//	chatvis -prompt "Read in the file named ml-100.vtk. ..." \
//	        -data ./data -out ./out -model gpt-4 -max-iter 5
//
// Interactive (multi-turn REPL; every later line edits the pipeline the
// first request built, re-executing only the stages it changes):
//
//	chatvis -interactive -data ./data -out ./out
//	chatvis> Read in the file named ml-100.vtk. Generate an isosurface ...
//	chatvis> Raise the isovalue to 0.7.
//	chatvis> Color the result by the var0 data array.
//
// -route serves each assisted stage from the cheapest calibrated model
// clearing its task's bar (docs/routing.md); routed turns report which
// models served them. -interactive composes with every other flag;
// -prompt then seeds the first turn. Both modes (and -unassisted) drive the same session API
// chatvisd serves. Generate the input datasets first with
// `datagen -dir ./data`.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"chatvis/internal/chatvis"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
	"chatvis/internal/route"
)

func main() {
	var (
		prompt      = flag.String("prompt", "", "natural-language visualization request (required unless -interactive)")
		dataDir     = flag.String("data", "data", "directory containing input datasets")
		outDir      = flag.String("out", "out", "directory for screenshots and artifacts")
		modelName   = flag.String("model", "gpt-4", "LLM to use: "+strings.Join(llm.ModelNames(), ", "))
		maxIter     = flag.Int("max-iter", 5, "maximum error-correction iterations")
		fewShot     = flag.Int("few-shot", 0, "number of example snippets (0 = all, negative = none)")
		noRewrite   = flag.Bool("no-rewrite", false, "skip the prompt-generation stage")
		unassist    = flag.Bool("unassisted", false, "run the bare model without the assistant (comparison mode)")
		retries     = flag.Int("retries", 1, "LLM call attempts (middleware retry budget)")
		noCache     = flag.Bool("no-cache", false, "disable the LLM response cache")
		trace       = flag.Bool("trace", false, "print the per-stage session trace")
		verbose     = flag.Bool("v", false, "print per-iteration transcripts")
		interactive = flag.Bool("interactive", false, "multi-turn REPL: later lines edit the current pipeline")
		routed      = flag.Bool("route", false, "route assisted calls through measured model profiles (-model stays the fallback)")
		profiles    = flag.String("profiles", "profiles.json", "calibrated profile store (see cmd/calibrate)")
	)
	flag.Parse()
	if *prompt == "" && !*interactive {
		fmt.Fprintln(os.Stderr, "chatvis: -prompt is required (or use -interactive)")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// First signal cancels the session context so in-flight pipeline
		// stages unwind cleanly; unregistering the handler then lets a
		// second Ctrl-C kill the process immediately instead of being
		// swallowed while the drain finishes.
		<-ctx.Done()
		stop()
	}()

	base, err := llm.NewModel(*modelName)
	if err != nil {
		fatal(err)
	}
	// Production-shaped client stack: metrics around retry around cache.
	var metrics llm.Metrics
	mws := []llm.Middleware{llm.WithMetrics(&metrics), llm.WithRetry(*retries, 0)}
	if !*noCache {
		mws = append(mws, llm.WithCache())
	}
	model := llm.Chain(base, mws...)
	if *routed {
		if *unassist {
			fatal(fmt.Errorf("-route measures the assistant's task mix; it does not compose with -unassisted"))
		}
		store, err := route.OpenProfileStore(*profiles)
		if err != nil {
			fatal(err)
		}
		if store.Len() == 0 {
			fatal(fmt.Errorf("profile store %s is empty; run cmd/calibrate first", *profiles))
		}
		router := route.NewRouter(store.Latest(), nil)
		// Routed picks resolve through the same middleware stack so cache
		// and metrics behave identically either way.
		model = router.Client(*modelName, func(name string) (llm.Client, error) {
			picked, err := llm.NewModel(name)
			if err != nil {
				return nil, err
			}
			return llm.Chain(picked, mws...), nil
		})
		fmt.Printf("routing via %s (%d live profiles)\n", *profiles, store.Latest().Len())
	}
	runner := &pvpython.Runner{DataDir: *dataDir, OutDir: *outDir}

	// Both the one-shot and interactive paths drive the session API —
	// the same surface chatvisd serves. One-shot runs skip the engine
	// seeding (no later turn to make incremental).
	sess, err := chatvis.NewSession(model, runner,
		chatvis.WithMaxIterations(*maxIter),
		chatvis.WithFewShot(*fewShot),
		chatvis.WithRewrite(!*noRewrite),
		chatvis.WithUnassisted(*unassist),
		chatvis.WithIncremental(*interactive))
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	runTurn := func(text string) (*chatvis.Turn, error) {
		turn, err := sess.Turn(ctx, text)
		if err != nil {
			return nil, err
		}
		return turn, reportTurn(turn, *outDir, *verbose, *trace, &metrics)
	}

	if !*interactive {
		turn, err := runTurn(*prompt)
		if err != nil {
			fatal(err)
		}
		if !turn.Artifact.Success {
			os.Exit(1)
		}
		return
	}

	// REPL mode: each line is one turn. A -prompt flag seeds turn 1.
	if *prompt != "" {
		if _, err := runTurn(*prompt); err != nil {
			fatal(err)
		}
	}
	scanner := bufio.NewScanner(os.Stdin)
	for {
		if ctx.Err() != nil {
			return
		}
		fmt.Print("chatvis> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch line {
		case "":
			continue
		case "exit", "quit":
			return
		case "plan":
			if p := sess.CurrentPlan(); p != nil {
				fmt.Print(p.Script())
			} else {
				fmt.Println("(no plan yet — start with a full request)")
			}
			continue
		}
		if _, err := runTurn(line); err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintln(os.Stderr, "chatvis:", err)
		}
	}
}

// reportTurn prints a turn's outcome and writes the final script. A
// failed script write is returned (one-shot mode must exit non-zero for
// it; the REPL reports and continues).
func reportTurn(turn *chatvis.Turn, outDir string, verbose, trace bool, metrics *llm.Metrics) error {
	art := turn.Artifact
	if verbose {
		if art.GeneratedPrompt != art.UserPrompt {
			fmt.Printf("=== generated prompt ===\n%s\n", art.GeneratedPrompt)
		}
		for i, it := range art.Iterations {
			fmt.Printf("=== iteration %d script ===\n%s\n", i+1, it.Script)
			if it.Output != "" {
				fmt.Printf("=== iteration %d output ===\n%s\n", i+1, it.Output)
			}
		}
	}
	if trace {
		fmt.Printf("=== session trace ===\n%s", art.Trace.Format())
		s := metrics.Snapshot()
		fmt.Printf("client metrics: %d calls, %d errors, %d cache hits, %v total latency\n",
			s.Calls, s.Errors, s.CacheHits, s.TotalLatency)
	}

	scriptPath := filepath.Join(outDir, "generated_script.py")
	if err := os.WriteFile(scriptPath, []byte(art.FinalScript), 0o644); err != nil {
		return err
	}

	if art.Success {
		fmt.Printf("turn %d: success after %d iteration(s) in %v (%d tokens)\n",
			turn.Index, art.NumIterations(), art.Trace.TotalDuration().Round(1e6),
			art.Trace.TotalUsage().TotalTokens())
		// Only routed turns split across models; with routing off this
		// line never prints, keeping the default output byte-stable.
		if models := art.Trace.Models(); len(models) > 1 {
			fmt.Printf("  models: %s\n", strings.Join(models, ", "))
		}
		if turn.ParentPlanHash != "" {
			fmt.Printf("  delta: %s (%d stage(s) changed, %d re-executed)\n",
				turn.DeltaSummary, len(turn.ChangedStages), turn.ExecutionsDelta)
		}
		fmt.Printf("  script: %s\n", scriptPath)
		for _, s := range art.Screenshots {
			fmt.Printf("  screenshot: %s\n", s)
		}
		return nil
	}
	fmt.Printf("turn %d: failed after %d iteration(s)", turn.Index, art.NumIterations())
	if len(art.Iterations) > 0 {
		last := art.Iterations[len(art.Iterations)-1]
		fmt.Println("; last errors:")
		for _, e := range last.Errors {
			fmt.Printf("  %s: %s\n", e.Kind, e.Message)
		}
	} else {
		fmt.Println()
	}
	fmt.Printf("  script: %s\n", scriptPath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chatvis:", err)
	os.Exit(1)
}
