// Flow visualization (the paper's Fig. 6 / Table I experiment):
// streamlines + tubes + cone glyphs colored by temperature, with the
// correction loop's per-iteration transcript printed.
//
//	go run ./examples/flow_visualization
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
)

func main() {
	dataDir := "example_out/data"
	outDir := "example_out/flow"
	if err := eval.EnsureData(dataDir, eval.DataSmall); err != nil {
		log.Fatal(err)
	}
	scn, _ := eval.ScenarioByID("stream")
	prompt := scn.UserPrompt(640, 360)

	model, err := llm.NewModel("gpt-4")
	if err != nil {
		log.Fatal(err)
	}
	assistant, err := chatvis.NewAssistant(model,
		&pvpython.Runner{DataDir: dataDir, OutDir: outDir})
	if err != nil {
		log.Fatal(err)
	}
	art, err := assistant.Run(context.Background(), prompt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("correction loop ran %d iteration(s) in %v (%d LLM calls, %d tokens)\n\n",
		art.NumIterations(), art.Trace.TotalDuration().Round(time.Microsecond),
		art.Trace.LLMCalls(), art.Trace.TotalUsage().TotalTokens())
	for i, it := range art.Iterations {
		fmt.Printf("--- iteration %d ---\n", i+1)
		if len(it.Errors) == 0 {
			fmt.Println("executed cleanly")
			continue
		}
		for _, e := range it.Errors {
			fmt.Printf("extracted error: %s: %s (line %d)\n", e.Kind, e.Message, e.Line)
		}
	}
	fmt.Println("\n--- final script ---")
	fmt.Println(art.FinalScript)
	if art.Success {
		fmt.Printf("screenshot: %v\n", art.Screenshots)
	}
}
