// Isosurface pipeline (the paper's Fig. 2 experiment): run the ground
// truth script and the ChatVis-generated one, then diff the images.
//
//	go run ./examples/isosurface_pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"chatvis/internal/eval"
)

func main() {
	cfg := eval.Config{
		DataDir: "example_out/data",
		OutDir:  "example_out/isosurface",
		Width:   640,
		Height:  360,
	}
	scn, _ := eval.ScenarioByID("iso")

	fmt.Println("scenario:", scn.Row, "/", scn.Figure)
	fmt.Println("user prompt:")
	fmt.Println(" ", scn.UserPrompt(cfg.Width, cfg.Height))

	fig, err := cfg.RunFigure(context.Background(), scn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("ChatVis vs ground truth: %s  -> correct visualization: %v\n",
		fig.ChatVis, fig.ChatVisMatches)
	if fig.GPT4 != nil {
		fmt.Printf("GPT-4  vs ground truth: %s  -> correct visualization: %v\n",
			*fig.GPT4, fig.GPT4Matches)
		fmt.Println("(GPT-4's image differs: gray background and a different default zoom,")
		fmt.Println(" exactly the deviation the paper describes for Fig. 2c)")
	}
	fmt.Printf("\nimages under %s\n", cfg.OutDir)
}
