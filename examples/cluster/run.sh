#!/bin/sh
# Launch a 3-node chatvisd fleet on loopback: one shared artifact
# store, a private WAL per node, every node given the same -peers list.
# Ctrl-C drains all three gracefully (their WALs flush, so a restart
# replays nothing). See docs/cluster.md.
#
# Usage:  examples/cluster/run.sh [root-dir]
#
# Then, from another shell — the same prompt through different nodes
# executes once fleet-wide:
#
#   BODY=$(curl -s 'localhost:8081/v1/scenarios?width=320&height=180' |
#     sed 's/.*"id":"iso","prompt":"\([^"]*\)".*/{"prompt":"\1","model":"oracle","width":320,"height":180}/')
#   curl -s localhost:8081/v1/jobs -d "$BODY"   # owner executes
#   curl -s localhost:8082/v1/jobs -d "$BODY"   # relays / coalesces
#   curl -s -H 'Accept: application/json' localhost:8083/healthz
#   curl -s localhost:8081/metrics | grep chatvis_cluster

set -eu

root=${1:-$(mktemp -d /tmp/chatvis-cluster.XXXXXX)}
peers="n1=127.0.0.1:8081,n2=127.0.0.1:8082,n3=127.0.0.1:8083"
echo "fleet root: $root  (shared store: $root/store)"

cd "$(dirname "$0")/../.."
go build -o "$root/chatvisd" ./cmd/chatvisd

pids=""
for i in 1 2 3; do
	mkdir -p "$root/n$i"
	"$root/chatvisd" \
		-addr "127.0.0.1:808$i" \
		-node-id "n$i" \
		-peers "$peers" \
		-data "$root/data" \
		-out "$root/n$i/out" \
		-store "$root/store" \
		-wal-dir "$root/n$i/wal" \
		-workers 2 \
		>"$root/n$i/log" 2>&1 &
	pids="$pids $!"
	echo "n$i: http://127.0.0.1:808$i  (log: $root/n$i/log)"
done

# shellcheck disable=SC2064 # expand $pids now, not at signal time
trap "kill $pids 2>/dev/null; wait $pids 2>/dev/null; echo; echo 'fleet drained'" INT TERM

echo "tailing all three logs — Ctrl-C drains the fleet"
tail -f "$root"/n1/log "$root"/n2/log "$root"/n3/log &
tailpid=$!
wait $pids || true
kill $tailpid 2>/dev/null || true
