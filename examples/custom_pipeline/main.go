// Custom pipeline: use the visualization engine directly as a Go library,
// without any LLM in the loop — generate data, filter it, render it, and
// also drive the simulated PvPython with a hand-written script. A third
// path registers a custom LLM backend (a canned-script replayer wrapped
// in the stock middleware stack) to show how non-simulated clients plug
// into the assistant.
//
//	go run ./examples/custom_pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/datagen"
	"chatvis/internal/filters"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
	"chatvis/internal/render"
	"chatvis/internal/vmath"
	"chatvis/internal/vtkio"
)

func main() {
	outDir := "example_out/custom"

	// --- Path 1: the Go API directly -----------------------------------
	// Build a Marschner-Lobb volume, isosurface it, clip half away, and
	// render with scalar coloring.
	vol := datagen.MarschnerLobb(48)
	surf, err := filters.Contour(vol, "var0", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	clipped := filters.ClipPolyData(surf, vmath.NewPlane(vmath.V(0, 0, 0), vmath.V(0, -1, 0)))
	filters.ComputePointNormals(clipped)

	r := render.NewRenderer()
	r.Background = render.White
	actor := render.NewActor(clipped)
	actor.ColorField = "var0"
	lo, hi := clipped.Points.Get("var0").Range()
	actor.LUT = render.NewCoolToWarm(lo, hi)
	r.AddActor(actor)
	r.Camera.Isometric(r.VisibleBounds())
	img := r.Render(640, 360)
	if err := render.SavePNG(outDir+"/go_api.png", img); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Go API render: %s (%d triangles)\n", outDir+"/go_api.png", clipped.NumTriangles())

	// --- Path 2: the same pipeline as a PvPython script ------------------
	if err := vtkio.SaveLegacyVTK(outDir+"/ml.vtk", vol, "ML volume"); err != nil {
		log.Fatal(err)
	}
	script := `from paraview.simple import *
reader = LegacyVTKReader(FileNames=['ml.vtk'])
contour1 = Contour(Input=reader)
contour1.ContourBy = ['POINTS', 'var0']
contour1.Isosurfaces = [0.5]
clip1 = Clip(Input=contour1, ClipType='Plane')
clip1.ClipType.Normal = [0.0, 1.0, 0.0]
clip1.Invert = 1
view = GetActiveViewOrCreate('RenderView')
view.ViewSize = [640, 360]
d = Show(clip1, view)
ColorBy(d, ('POINTS', 'var0'))
view.ApplyIsometricView()
SaveScreenshot('script_api.png', view,
    ImageResolution=[640, 360], OverrideColorPalette='WhiteBackground')
`
	runner := &pvpython.Runner{DataDir: outDir, OutDir: outDir}
	res := runner.Exec(script)
	if !res.OK() {
		log.Fatalf("script failed:\n%s", res.Output)
	}
	fmt.Printf("script render: %v\n", res.Screenshots)
	fmt.Println("both paths render the same half-isosurface; compare the PNGs")

	// --- Path 3: a custom backend through the assistant -------------------
	// Register a replay client that always answers with the script above —
	// the hook a recorded-transcript or network-backed model would use —
	// and run it through the assistant with caching and metrics attached.
	llm.DefaultRegistry.Register("replay", func() (llm.Client, error) {
		return &llm.ClientFunc{
			ModelName: "replay",
			Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
				start := time.Now()
				return llm.NewResponse("replay", req, script, start), nil
			},
		}, nil
	})
	base, err := llm.NewModel("replay")
	if err != nil {
		log.Fatal(err)
	}
	var metrics llm.Metrics
	model := llm.Chain(base, llm.WithMetrics(&metrics), llm.WithCache())
	assistant, err := chatvis.NewAssistant(model,
		&pvpython.Runner{DataDir: outDir, OutDir: outDir + "/replay"},
		chatvis.WithRewrite(false), // replay ignores the prompt anyway
		chatvis.WithFewShot(-1))
	if err != nil {
		log.Fatal(err)
	}
	art, err := assistant.Run(context.Background(), "replay the clipped isosurface script")
	if err != nil {
		log.Fatal(err)
	}
	s := metrics.Snapshot()
	fmt.Printf("replay backend: success=%v in %d iteration(s); %d LLM calls, %d cache hits\n",
		art.Success, art.NumIterations(), s.Calls, s.CacheHits)
}
