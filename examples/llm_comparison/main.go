// LLM comparison (a one-task slice of the paper's Table II): run ChatVis
// and every unassisted model on the Delaunay task and print the grid row.
//
//	go run ./examples/llm_comparison
package main

import (
	"fmt"
	"log"

	"chatvis/internal/eval"
	"chatvis/internal/llm"
)

func main() {
	cfg := eval.Config{
		DataDir: "example_out/data",
		OutDir:  "example_out/llm_comparison",
		Width:   480,
		Height:  270,
	}
	scn, _ := eval.ScenarioByID("delaunay")
	fmt.Printf("task: %s\n\n", scn.Row)
	fmt.Printf("%-16s %-10s %-12s %s\n", "model", "error?", "screenshot?", "first error")

	cell, _, err := cfg.RunChatVis(scn)
	if err != nil {
		log.Fatal(err)
	}
	printRow("ChatVis", cell)

	for _, m := range llm.PaperModels() {
		cell, _, err := cfg.RunUnassisted(m, scn)
		if err != nil {
			log.Fatal(err)
		}
		printRow(m, cell)
	}
}

func printRow(name string, c eval.CellResult) {
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	fmt.Printf("%-16s %-10s %-12s %s\n", name, yn(!c.ErrorFree), yn(c.Screenshot), c.FirstError)
}
