// LLM comparison (a one-task slice of the paper's Table II): sweep
// ChatVis and every unassisted model over the Delaunay task with the
// concurrent grid runner and print the row plus per-session stats.
//
//	go run ./examples/llm_comparison
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"chatvis/internal/eval"
)

func main() {
	cfg := eval.Config{
		DataDir: "example_out/data",
		OutDir:  "example_out/llm_comparison",
		Width:   480,
		Height:  270,
	}
	scn, _ := eval.ScenarioByID("delaunay")
	fmt.Printf("task: %s\n\n", scn.Row)

	// One grid row: scenarios × models in a worker pool, reference image
	// rendered once and shared.
	start := time.Now()
	t2, err := cfg.RunGridOpts(context.Background(), eval.GridOptions{
		Workers:          2 * runtime.NumCPU(),
		ShareGroundTruth: true,
		Scenarios:        []eval.Scenario{scn},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-10s %-12s %-12s %-8s %s\n",
		"model", "error?", "screenshot?", "duration", "tokens", "first error")
	for _, m := range t2.Models {
		printRow(m, t2.Cells[scn.Row][m])
	}
	fmt.Printf("\nswept %d models in %v\n", len(t2.Models), time.Since(start).Round(time.Millisecond))
}

func printRow(name string, c eval.CellResult) {
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	fmt.Printf("%-16s %-10s %-12s %-12s %-8d %s\n",
		name, yn(!c.ErrorFree), yn(c.Screenshot),
		c.Duration.Round(time.Microsecond), c.Usage.TotalTokens(), c.FirstError)
}
