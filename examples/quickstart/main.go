// Quickstart: ask ChatVis for a visualization in natural language and get
// back a ParaView Python script plus a rendered screenshot.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"chatvis/internal/chatvis"
	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
)

func main() {
	ctx := context.Background()
	// Workspace: datasets in ./example_out/data, results next to them.
	dataDir := "example_out/data"
	outDir := "example_out/quickstart"
	if err := eval.EnsureData(dataDir, eval.DataSmall); err != nil {
		log.Fatal(err)
	}

	// The assistant needs a model and a script runner.
	model, err := llm.NewModel("gpt-4")
	if err != nil {
		log.Fatal(err)
	}
	assistant, err := chatvis.NewAssistant(model,
		&pvpython.Runner{DataDir: dataDir, OutDir: outDir},
		chatvis.WithMaxIterations(5))
	if err != nil {
		log.Fatal(err)
	}

	prompt := `Please generate a ParaView Python script for the following operations. ` +
		`Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. ` +
		`Save a screenshot of the result in the filename quickstart.png. ` +
		`The rendered view and saved screenshot should be 640 x 360 pixels.`

	art, err := assistant.Run(ctx, prompt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- generated step-by-step prompt ---")
	fmt.Println(art.GeneratedPrompt)
	fmt.Println("--- final script ---")
	fmt.Println(art.FinalScript)
	if !art.Success {
		fmt.Println("the assistant could not produce a working script")
		os.Exit(1)
	}
	fmt.Printf("done in %d iteration(s); screenshots: %v\n",
		art.NumIterations(), art.Screenshots)
	fmt.Println("--- session trace ---")
	fmt.Print(art.Trace.Format())
}
