// Multi-turn: hold a conversation with ChatVis. The first turn builds a
// pipeline from a full request; every later turn is an *edit* — the
// model proposes a new plan from (current plan + utterance) and the
// session's persistent engine re-executes only the stages the edit
// changed.
//
//	go run ./examples/multi_turn
package main

import (
	"context"
	"fmt"
	"log"

	"chatvis/internal/chatvis"
	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
)

func main() {
	ctx := context.Background()
	dataDir := "example_out/data"
	outDir := "example_out/multi_turn"
	if err := eval.EnsureData(dataDir, eval.DataSmall); err != nil {
		log.Fatal(err)
	}

	model, err := llm.NewModel("gpt-4")
	if err != nil {
		log.Fatal(err)
	}
	sess, err := chatvis.NewSession(model,
		&pvpython.Runner{DataDir: dataDir, OutDir: outDir})
	if err != nil {
		log.Fatal(err)
	}

	turns := []string{
		// Turn 1: a complete request — the classic ChatVis flow.
		`Please generate a ParaView Python script for the following operations. ` +
			`Read in the file named ml-100.vtk. Generate an isosurface of the ` +
			`variable var0 at value 0.5. Save a screenshot of the result in the ` +
			`filename ml-iso.png. The rendered view and saved screenshot should ` +
			`be 640 x 360 pixels.`,
		// Later turns: conversational refinements of the same pipeline.
		`Raise the isovalue to 0.7.`,
		`Color the result by the var0 data array.`,
		`Clip the data with a y-z plane at x=0, keeping the -x half of the data.`,
		`Remove the clip.`,
	}

	for _, prompt := range turns {
		turn, err := sess.Turn(ctx, prompt)
		if err != nil {
			log.Fatal(err)
		}
		art := turn.Artifact
		fmt.Printf("turn %d: %q\n", turn.Index, prompt)
		if !art.Success {
			fmt.Println("  failed:", art.Iterations[len(art.Iterations)-1].Output)
			continue
		}
		if turn.ParentPlanHash == "" {
			fmt.Printf("  built the pipeline (%d stages) in %d iteration(s)\n",
				len(art.Plan.Stages), art.NumIterations())
		} else {
			fmt.Printf("  delta: %s\n", turn.DeltaSummary)
			fmt.Printf("  %d stage(s) changed, %d pipeline stage(s) re-executed\n",
				len(turn.ChangedStages), turn.ExecutionsDelta)
		}
		for _, s := range art.Screenshots {
			fmt.Println("  screenshot:", s)
		}
	}

	fmt.Println("\nfinal pipeline:")
	fmt.Print(sess.CurrentPlan().Script())
}
