// Package chatvis_bench regenerates every table and figure of the paper
// as Go benchmarks, plus ablations over the assistant's design choices
// and micro-benchmarks of the engine substrates.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN/BenchmarkFigN logs the reproduced rows; absolute
// timings are engine cost on this machine, not comparable to the paper's
// workstation numbers (see EXPERIMENTS.md).
package chatvis_bench

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"chatvis/internal/benchkernels"
	"chatvis/internal/chatvis"
	"chatvis/internal/datagen"
	"chatvis/internal/eval"
	"chatvis/internal/filters"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
	"chatvis/internal/pvsim"
	"chatvis/internal/scriptcmp"
	"chatvis/internal/service"
	"chatvis/internal/vtkio"
)

// benchConfig builds a small-but-real evaluation config in a temp dir.
func benchConfig(b *testing.B) eval.Config {
	b.Helper()
	return eval.Config{
		DataDir: b.TempDir(),
		OutDir:  b.TempDir(),
		Width:   320,
		Height:  180,
	}
}

// --- Figures 2-6: one bench per figure -------------------------------------

func benchFigure(b *testing.B, id string) {
	cfg := benchConfig(b)
	scn, ok := eval.ScenarioByID(id)
	if !ok {
		b.Fatalf("unknown scenario %s", id)
	}
	var fig *eval.FigureResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = cfg.RunFigure(context.Background(), scn)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(fig.ChatVis.RMSE, "rmse-vs-gt")
	b.ReportMetric(fig.ChatVis.SSIM, "ssim-vs-gt")
	b.Logf("%s (%s): ChatVis %s match=%v", fig.Figure, fig.Task, fig.ChatVis, fig.ChatVisMatches)
	if fig.GPT4 != nil {
		b.Logf("%s: GPT-4 %s match=%v", fig.Figure, *fig.GPT4, fig.GPT4Matches)
	} else {
		b.Logf("%s: GPT-4 produced no image (script error)", fig.Figure)
	}
	if !fig.ChatVisMatches {
		b.Errorf("%s: ChatVis image does not match ground truth", fig.Figure)
	}
}

func BenchmarkFig2_Isosurfacing(b *testing.B)    { benchFigure(b, "iso") }
func BenchmarkFig3_SliceContour(b *testing.B)    { benchFigure(b, "slice") }
func BenchmarkFig4_VolumeRendering(b *testing.B) { benchFigure(b, "volume") }
func BenchmarkFig5_Delaunay(b *testing.B)        { benchFigure(b, "delaunay") }
func BenchmarkFig6_Streamlines(b *testing.B)     { benchFigure(b, "stream") }

// --- Table I: generated scripts for streamline tracing -----------------------

func BenchmarkTable1_GeneratedScripts(b *testing.B) {
	cfg := benchConfig(b)
	var t1 *eval.Table1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		t1, err = cfg.RunTable1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("Table I reproduction:\n%s", t1.Format())
	if !t1.ChatVisOK {
		b.Error("ChatVis streamline script must execute cleanly")
	}
	if t1.GPT4Error == "" {
		b.Error("GPT-4 streamline script should fail with AttributeError")
	}
}

// --- Table II: the full 6-model x 5-task comparison grid ---------------------

func BenchmarkTable2_LLMComparison(b *testing.B) {
	cfg := benchConfig(b)
	var t2 *eval.Table2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		t2, err = cfg.RunTable2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Logf("Table II reproduction:\n%s", t2.Format())
	// Assert the paper's shape: ChatVis all-pass; every other model fails
	// at least one criterion on every task except GPT-4's two error-free
	// rows.
	for _, task := range t2.Tasks {
		cv := t2.Cells[task]["ChatVis"]
		if !cv.ErrorFree || !cv.Screenshot {
			b.Errorf("ChatVis on %s: %+v", task, cv)
		}
	}
	okCount := 0
	for _, task := range t2.Tasks {
		if t2.Cells[task]["gpt-4"].ErrorFree {
			okCount++
		}
	}
	if okCount != 2 {
		b.Errorf("gpt-4 error-free rows = %d, paper reports 2", okCount)
	}
}

// --- Ablations over the assistant's design choices ---------------------------

// BenchmarkAblation_Iterations sweeps the correction-loop budget: with
// zero repair iterations ChatVis loses the tasks whose first drafts carry
// property slips; the loop recovers them.
func BenchmarkAblation_Iterations(b *testing.B) {
	for _, maxIter := range []int{1, 2, 5} {
		b.Run(fmt.Sprintf("maxIter=%d", maxIter), func(b *testing.B) {
			cfg := benchConfig(b)
			cfg.MaxIterations = maxIter
			if err := eval.EnsureData(cfg.DataDir, cfg.DataSize); err != nil {
				b.Fatal(err)
			}
			success := 0
			totalIters := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				success = 0
				totalIters = 0
				for _, scn := range eval.PaperScenarios() {
					cell, art, err := cfg.RunChatVis(context.Background(), scn)
					if err != nil {
						b.Fatal(err)
					}
					if cell.ErrorFree && cell.Screenshot {
						success++
					}
					totalIters += art.NumIterations()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(success), "tasks-solved")
			b.ReportMetric(float64(totalIters)/5, "avg-iterations")
			b.Logf("maxIter=%d: %d/5 tasks solved, avg iterations %.1f",
				maxIter, success, float64(totalIters)/5)
		})
	}
}

// BenchmarkAblation_FewShot sweeps the example library: without examples
// the base model hallucinates (the unassisted failure mode). The repair
// loop recovers the scripts that *error* — but not the volume-rendering
// script that runs cleanly and renders nothing, so the "correct
// screenshot" count drops. Examples also reduce iteration counts.
func BenchmarkAblation_FewShot(b *testing.B) {
	for _, shots := range []int{-1, 4, 0} { // none, partial, full library
		name := map[int]string{-1: "none", 4: "partial", 0: "full"}[shots]
		b.Run("examples="+name, func(b *testing.B) {
			cfg := benchConfig(b)
			cfg.FewShot = shots
			clean, correct, totalIters := 0, 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clean, correct, totalIters = 0, 0, 0
				for _, scn := range eval.PaperScenarios() {
					cell, art, err := cfg.RunChatVis(context.Background(), scn)
					if err != nil {
						b.Fatal(err)
					}
					if cell.ErrorFree {
						clean++
					}
					if cell.Screenshot {
						correct++
					}
					totalIters += art.NumIterations()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(clean), "tasks-error-free")
			b.ReportMetric(float64(correct), "tasks-correct-image")
			b.ReportMetric(float64(totalIters)/5, "avg-iterations")
			b.Logf("examples=%s: %d/5 error-free, %d/5 correct images, avg iterations %.1f",
				name, clean, correct, float64(totalIters)/5)
		})
	}
}

// BenchmarkAblation_Grounding compares grounding channels for the base
// model: few-shot snippets vs the full API reference (the paper's
// future-work idea of teaching the model ParaView's real function calls)
// vs nothing.
func BenchmarkAblation_Grounding(b *testing.B) {
	apiRef := pvsim.NewEngine("", "").APIReference().Format()
	cases := []struct {
		name    string
		fewShot int
		api     string
	}{
		{"examples", 0, ""},
		{"apidocs", -1, apiRef},
		{"none", -1, ""},
	}
	for _, tc := range cases {
		b.Run("grounding="+tc.name, func(b *testing.B) {
			dataDir := b.TempDir()
			if err := eval.EnsureData(dataDir, eval.DataSmall); err != nil {
				b.Fatal(err)
			}
			model, err := llm.NewModel("gpt-4")
			if err != nil {
				b.Fatal(err)
			}
			correct, iters := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				correct, iters = 0, 0
				for _, scn := range eval.PaperScenarios() {
					assistant, err := chatvis.NewAssistant(model,
						&pvpython.Runner{DataDir: dataDir, OutDir: b.TempDir()},
						chatvis.WithMaxIterations(5),
						chatvis.WithFewShot(tc.fewShot),
						chatvis.WithAPIReference(tc.api))
					if err != nil {
						b.Fatal(err)
					}
					art, err := assistant.Run(context.Background(), scn.UserPrompt(320, 180))
					if err != nil {
						b.Fatal(err)
					}
					if art.Success {
						correct++
					}
					iters += art.NumIterations()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(correct), "tasks-clean")
			b.ReportMetric(float64(iters)/5, "avg-iterations")
			b.Logf("grounding=%s: %d/5 clean, avg iterations %.1f", tc.name, correct, float64(iters)/5)
		})
	}
}

// BenchmarkScriptEval exercises the code-level evaluation (scriptcmp) on
// the streamline scripts — the paper's proposed large-scale evaluation
// path that needs no rendering.
func BenchmarkScriptEval(b *testing.B) {
	cfg := benchConfig(b)
	t1, err := cfg.RunTable1(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	scn, _ := eval.ScenarioByID("stream")
	ref := scn.GroundTruthScript(cfg.Width, cfg.Height)
	b.ResetTimer()
	var sCV, sG4 scriptcmp.Score
	for i := 0; i < b.N; i++ {
		sCV, _ = scriptcmp.Compare(t1.ChatVisScript, ref)
		sG4, _ = scriptcmp.Compare(t1.GPT4Script, ref)
	}
	b.StopTimer()
	b.ReportMetric(sCV.Overall, "chatvis-score")
	b.ReportMetric(sG4.Overall, "gpt4-score")
	b.Logf("script-level accuracy: ChatVis %s | GPT-4 %s", sCV, sG4)
	if sCV.Overall <= sG4.Overall {
		b.Error("ChatVis script should score above unassisted GPT-4")
	}
}

// --- Grid throughput: serial sweep vs concurrent grid runner -----------------

// BenchmarkGridThroughput compares the paper-style serial Table II sweep
// (one cell at a time, ground truth re-rendered for every cell) against
// the concurrent grid runner (worker pool + shared ground-truth cache)
// on the full 5-scenario x 5-model (+ChatVis) grid. The grid runner
// renders each reference image once instead of once per cell and overlaps
// cells across workers, so it should finish the sweep at least ~2x faster
// even on a single core; multi-core machines gain more from the pool.
func BenchmarkGridThroughput(b *testing.B) {
	run := func(b *testing.B, sweep func(cfg eval.Config) (*eval.Table2, error)) {
		cfg := benchConfig(b)
		if err := eval.EnsureData(cfg.DataDir, cfg.DataSize); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t2, err := sweep(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(t2.Tasks) != 5 || len(t2.Models) != 6 {
				b.Fatalf("grid = %d tasks x %d models", len(t2.Tasks), len(t2.Models))
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		run(b, func(cfg eval.Config) (*eval.Table2, error) {
			return cfg.RunTable2(context.Background())
		})
	})
	b.Run("grid", func(b *testing.B) {
		workers := 2 * runtime.NumCPU()
		run(b, func(cfg eval.Config) (*eval.Table2, error) {
			return cfg.RunGrid(context.Background(), workers)
		})
	})
}

// --- Substrate micro-benchmarks ----------------------------------------------

func BenchmarkSubstrate_MarschnerLobbGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		datagen.MarschnerLobb(64)
	}
}

// The five substrate kernels benchcore also measures live in
// internal/benchkernels — one definition, so BENCH_substrate.json and
// `go test -bench BenchmarkSubstrate_` always agree on the workload.

func BenchmarkSubstrate_Isosurface64(b *testing.B) {
	benchkernels.Bench(b, "Substrate_Isosurface64")
}

func BenchmarkSubstrate_Delaunay500(b *testing.B) {
	cloud := datagen.CanPoints(36, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := filters.Delaunay3D(cloud); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrate_StreamTracer(b *testing.B) {
	benchkernels.Bench(b, "Substrate_StreamTracer")
}

func BenchmarkSubstrate_SurfaceRender(b *testing.B) {
	benchkernels.Bench(b, "Substrate_SurfaceRender")
}

func BenchmarkSubstrate_VolumeRayCast(b *testing.B) {
	benchkernels.Bench(b, "Substrate_VolumeRayCast")
}

func BenchmarkSubstrate_PvPythonExec(b *testing.B) {
	dataDir := b.TempDir()
	if err := vtkio.SaveLegacyVTK(filepath.Join(dataDir, "ml-100.vtk"),
		datagen.MarschnerLobb(16), "ml"); err != nil {
		b.Fatal(err)
	}
	scn, _ := eval.ScenarioByID("iso")
	script := scn.GroundTruthScript(160, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner := &pvpython.Runner{DataDir: dataDir, OutDir: b.TempDir()}
		res := runner.Exec(script)
		if !res.OK() {
			b.Fatalf("script failed:\n%s", res.Output)
		}
	}
}

func BenchmarkSubstrate_ClipPolyData(b *testing.B) {
	benchkernels.Bench(b, "Substrate_ClipPolyData")
}

func BenchmarkSubstrate_SparseContour64(b *testing.B) {
	benchkernels.Bench(b, "Substrate_SparseContour64")
}

func BenchmarkSubstrate_SkewedClip(b *testing.B) {
	benchkernels.Bench(b, "Substrate_SkewedClip")
}

func BenchmarkSubstrate_SessionEditTurn(b *testing.B) {
	benchkernels.Bench(b, "Substrate_SessionEditTurn")
}

// --- Conversational-session benchmark ---------------------------------------

// BenchmarkSessionIncremental quantifies what the session API buys: the
// cost of a follow-up edit turn on a warm session (PlanDelta + plan
// validation + incremental ExecPlan of ONE changed stage) vs paying for
// a cold one-shot run of the equivalent request (prompt rewrite, script
// generation, full pipeline execution). The speedup is the amortized
// win every conversational refinement gets.
func BenchmarkSessionIncremental(b *testing.B) {
	b.Run("edit-turn-incremental", func(b *testing.B) {
		benchkernels.Bench(b, "Substrate_SessionEditTurn")
	})
	b.Run("cold-full-run", func(b *testing.B) {
		runner := benchkernels.SessionBenchRunner(b)
		model, err := llm.NewModel("oracle")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			assistant, err := chatvis.NewAssistant(model, runner)
			if err != nil {
				b.Fatal(err)
			}
			prompt := benchkernels.SessionEditBenchPrompt(fmt.Sprintf("0.%d", 1+(i%2)))
			art, err := assistant.Run(context.Background(), prompt)
			if err != nil {
				b.Fatal(err)
			}
			if !art.Success {
				b.Fatal("cold run failed")
			}
		}
	})
}

// --- Serving-layer benchmark -------------------------------------------------

// BenchmarkServiceThroughput measures the chatvisd serving path through
// service.Queue with the real ChatVis pipeline on the stub profile, and
// demonstrates the two dedup layers:
//
//   - unique: every request is distinct — each one costs a pipeline
//     execution (the raw serving floor).
//   - coalesced: bursts of 32 identical concurrent requests — the whole
//     burst shares ONE pipeline execution (singleflight).
//   - store-hit: the same request repeated — after the first execution
//     every submission is answered from the content-addressed store
//     with zero pipeline (and zero LLM) work.
func BenchmarkServiceThroughput(b *testing.B) {
	prompt := func(i int) string {
		// Distinct isovalues produce distinct prompts, keys and scripts.
		return fmt.Sprintf("Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value %.4f. Save a screenshot of the result in the filename iso.png. The rendered view and saved screenshot should be 320 x 180 pixels.", 0.30+0.001*float64(i%400))
	}
	newQueue := func(b *testing.B) *service.Queue {
		b.Helper()
		store, err := service.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		pipeline := service.NewChatVisPipeline(service.PipelineConfig{
			DataDir: b.TempDir(),
			OutDir:  b.TempDir(),
		})
		q, err := service.NewQueue(service.QueueOptions{
			Workers:  runtime.NumCPU(),
			Capacity: 4096,
			Pipeline: pipeline,
			Store:    store,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = q.Shutdown(ctx)
		})
		return q
	}
	submitAndWait := func(b *testing.B, q *service.Queue, req service.JobRequest) *service.Job {
		b.Helper()
		job, _, err := q.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		<-job.Done()
		if job.Status() != service.StatusSucceeded {
			b.Fatalf("job %s: %s (%s)", job.ID, job.Status(), job.Err())
		}
		return job
	}

	b.Run("unique", func(b *testing.B) {
		q := newQueue(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			submitAndWait(b, q, service.JobRequest{
				Prompt: prompt(i), Model: "oracle", Width: 320, Height: 180,
			})
		}
		b.StopTimer()
		// Prompts repeat after 400 iterations (store hits take over);
		// below that, every request costs exactly one execution.
		if int64(b.N) <= 400 {
			if got := q.Snapshot().Executed; got != int64(b.N) {
				b.Fatalf("executed = %d for %d unique requests", got, b.N)
			}
		}
	})

	b.Run("coalesced", func(b *testing.B) {
		const burst = 32
		q := newQueue(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := service.JobRequest{
				Prompt: prompt(i), Model: "oracle", Width: 320, Height: 180,
			}
			var wg sync.WaitGroup
			jobs := make([]*service.Job, burst)
			for j := 0; j < burst; j++ {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					job, _, err := q.Submit(req)
					if err != nil {
						b.Error(err)
						return
					}
					jobs[j] = job
				}(j)
			}
			wg.Wait()
			for _, job := range jobs {
				if job == nil {
					b.Fatal("submission failed")
				}
				<-job.Done()
			}
		}
		b.StopTimer()
		snap := q.Snapshot()
		if b.N <= 400 && snap.Executed != int64(b.N) {
			b.Fatalf("coalescing broken: %d executions for %d bursts of %d identical requests",
				snap.Executed, b.N, burst)
		}
		b.ReportMetric(float64(snap.Submitted)/float64(snap.Executed), "requests/execution")
	})

	b.Run("store-hit", func(b *testing.B) {
		q := newQueue(b)
		req := service.JobRequest{
			Prompt: prompt(0), Model: "oracle", Width: 320, Height: 180,
		}
		submitAndWait(b, q, req) // prime the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			submitAndWait(b, q, req)
		}
		b.StopTimer()
		if got := q.Snapshot().Executed; got != 1 {
			b.Fatalf("store path executed %d pipelines, want 1", got)
		}
	})
}
