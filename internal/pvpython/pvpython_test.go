package pvpython

import (
	"image"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chatvis/internal/datagen"
	"chatvis/internal/pypy"
	"chatvis/internal/vtkio"
)

// testData writes small versions of the three experiment datasets into a
// temp dir and returns (dataDir, outDir).
func testData(t *testing.T) (string, string) {
	t.Helper()
	dataDir := t.TempDir()
	outDir := t.TempDir()
	ml := datagen.MarschnerLobb(24)
	if err := vtkio.SaveLegacyVTK(filepath.Join(dataDir, "ml-100.vtk"), ml, "Marschner-Lobb"); err != nil {
		t.Fatal(err)
	}
	can := datagen.CanPoints(24, 10)
	if err := vtkio.SaveExodus(filepath.Join(dataDir, "can_points.ex2"), can, "can points"); err != nil {
		t.Fatal(err)
	}
	disk := datagen.DiskFlow(6, 24, 6)
	if err := vtkio.SaveExodus(filepath.Join(dataDir, "disk.ex2"), disk, "disk flow"); err != nil {
		t.Fatal(err)
	}
	return dataDir, outDir
}

func runScript(t *testing.T, script string) *Result {
	t.Helper()
	dataDir, outDir := testData(t)
	r := &Runner{DataDir: dataDir, OutDir: outDir}
	return r.Exec(script)
}

// checkScreenshot verifies a screenshot exists on disk and is a sane PNG.
func checkScreenshot(t *testing.T, res *Result, name string, wantW int) image.Image {
	t.Helper()
	var path string
	for _, s := range res.Screenshots {
		if strings.HasSuffix(s, name) {
			path = s
		}
	}
	if path == "" {
		t.Fatalf("screenshot %s not produced; have %v", name, res.Screenshots)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	img, _, err := image.Decode(f)
	if err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	if wantW > 0 && img.Bounds().Dx() != wantW {
		t.Errorf("width = %d, want %d", img.Bounds().Dx(), wantW)
	}
	return img
}

// nonBackgroundFraction estimates how much of the image differs from its
// corner color (treated as background).
func nonBackgroundFraction(img image.Image) float64 {
	b := img.Bounds()
	bg := img.At(b.Min.X, b.Min.Y)
	n, diff := 0, 0
	for y := b.Min.Y; y < b.Max.Y; y += 2 {
		for x := b.Min.X; x < b.Max.X; x += 2 {
			n++
			if img.At(x, y) != bg {
				diff++
			}
		}
	}
	return float64(diff) / float64(n)
}

const isoScript = `from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

# read the input dataset
ml100vtk = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

# create an isosurface of var0 at value 0.5
contour1 = Contour(registrationName='Contour1', Input=ml100vtk)
contour1.ContourBy = ['POINTS', 'var0']
contour1.Isosurfaces = [0.5]

# set up the render view
renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [480, 270]

contour1Display = Show(contour1, renderView1)
renderView1.ResetCamera()

SaveScreenshot('ml-iso-screenshot.png', renderView1,
    ImageResolution=[480, 270],
    OverrideColorPalette='WhiteBackground')
`

func TestIsosurfacePipeline(t *testing.T) {
	res := runScript(t, isoScript)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
	img := checkScreenshot(t, res, "ml-iso-screenshot.png", 480)
	if f := nonBackgroundFraction(img); f < 0.05 {
		t.Errorf("isosurface covers only %.1f%% of the image", f*100)
	}
}

const sliceContourScript = `from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

ml100vtk = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

# slice parallel to the y-z plane at x=0
slice1 = Slice(registrationName='Slice1', Input=ml100vtk, SliceType='Plane')
slice1.SliceType.Origin = [0.0, 0.0, 0.0]
slice1.SliceType.Normal = [1.0, 0.0, 0.0]

# contour through the slice at 0.5
contour1 = Contour(registrationName='Contour1', Input=slice1)
contour1.ContourBy = ['POINTS', 'var0']
contour1.Isosurfaces = [0.5]

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [480, 270]

contour1Display = Show(contour1, renderView1)
ColorBy(contour1Display, None)
contour1Display.DiffuseColor = [1.0, 0.0, 0.0]
contour1Display.LineWidth = 2.0

renderView1.ResetActiveCameraToPositiveX()

SaveScreenshot('ml-slice-iso-screenshot.png', renderView1,
    ImageResolution=[480, 270],
    OverrideColorPalette='WhiteBackground')
`

func TestSliceContourPipeline(t *testing.T) {
	res := runScript(t, sliceContourScript)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
	img := checkScreenshot(t, res, "ml-slice-iso-screenshot.png", 480)
	// Red contour lines on white: look for red-dominant pixels.
	b := img.Bounds()
	red := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bb, _ := img.At(x, y).RGBA()
			if r > 2*g && r > 2*bb && r > 0x7fff {
				red++
			}
		}
	}
	if red < 50 {
		t.Errorf("expected red contour lines, found %d red pixels", red)
	}
}

const volumeScript = `from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

ml100vtk = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [320, 180]

ml100vtkDisplay = Show(ml100vtk, renderView1)
ml100vtkDisplay.SetRepresentationType('Volume')
ColorBy(ml100vtkDisplay, ['POINTS', 'var0'])
ml100vtkDisplay.RescaleTransferFunctionToDataRange(True)

renderView1.ApplyIsometricView()

SaveScreenshot('ml-dvr-screenshot.png', renderView1,
    ImageResolution=[320, 180],
    OverrideColorPalette='WhiteBackground')
`

func TestVolumeRenderingPipeline(t *testing.T) {
	res := runScript(t, volumeScript)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
	img := checkScreenshot(t, res, "ml-dvr-screenshot.png", 320)
	if f := nonBackgroundFraction(img); f < 0.1 {
		t.Errorf("volume rendering covers only %.1f%% of the image", f*100)
	}
}

// volumeScriptMissingRepresentation mimics the GPT-4 failure the paper
// reports: no error, but the script never switches to volume rendering so
// the screenshot shows no volume (just the dataset outline).
const volumeScriptMissingRep = `from paraview.simple import *
ml100vtk = LegacyVTKReader(FileNames=['ml-100.vtk'])
renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [320, 180]
ml100vtkDisplay = Show(ml100vtk, renderView1)
SaveScreenshot('ml-dvr-screenshot.png', renderView1,
    ImageResolution=[320, 180])
`

func TestVolumeWithoutVolumeRepIsNearBlank(t *testing.T) {
	res := runScript(t, volumeScriptMissingRep)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
	img := checkScreenshot(t, res, "ml-dvr-screenshot.png", 320)
	if f := nonBackgroundFraction(img); f > 0.05 {
		t.Errorf("outline-only image should be near blank, got %.1f%%", f*100)
	}
}

const delaunayScript = `from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

canpointsex2 = ExodusIIReader(registrationName='can_points.ex2', FileName='can_points.ex2')

delaunay3D1 = Delaunay3D(registrationName='Delaunay3D1', Input=canpointsex2)

# clip with a y-z plane at x=0, keeping the -x half
clip1 = Clip(registrationName='Clip1', Input=delaunay3D1, ClipType='Plane')
clip1.ClipType.Origin = [0.0, 0.0, 0.0]
clip1.ClipType.Normal = [1.0, 0.0, 0.0]
clip1.Invert = 1

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [480, 270]

clip1Display = Show(clip1, renderView1)
clip1Display.SetRepresentationType('Wireframe')

renderView1.ApplyIsometricView()

SaveScreenshot('points-surf-clip-screenshot.png', renderView1,
    ImageResolution=[480, 270],
    OverrideColorPalette='WhiteBackground')
`

func TestDelaunayClipPipeline(t *testing.T) {
	res := runScript(t, delaunayScript)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
	img := checkScreenshot(t, res, "points-surf-clip-screenshot.png", 480)
	if f := nonBackgroundFraction(img); f < 0.02 {
		t.Errorf("wireframe covers only %.2f%% of the image", f*100)
	}
}

// streamScript is the paper's Table I (left) ChatVis script, adjusted only
// for resolution.
const streamScript = `from paraview.simple import *

# Reading the disk.ex2 file
reader = ExodusIIReader(FileName='disk.ex2')
reader.UpdatePipeline()

# Tracing streamlines of the V data array seeded from a default point cloud
streamTracer = StreamTracer(registrationName='StreamTracer1', Input=reader,
                            SeedType='Point Cloud')

# Rendering the streamlines with tubes for better visibility
tube = Tube(registrationName='Tube1', Input=streamTracer)
tube.Radius = 0.075

# Adding cone glyphs to the streamlines to indicate direction
glyph = Glyph(registrationName='Glyph1', Input=streamTracer, GlyphType='Cone')
glyph.OrientationArray = ['POINTS', 'V']
glyph.ScaleArray = ['POINTS', 'V']
glyph.ScaleFactor = 0.2

# Create a new view and set its properties
renderView = CreateView('RenderView')
renderView.ViewSize = [480, 270]

# Create a new layout object
layout = CreateLayout(name='Layout')
layout.AssignView(0, renderView)

# Coloring both the streamlines and glyphs using the Temp data array
tubeDisplay = Show(tube, renderView)
glyphDisplay = Show(glyph, renderView)
ColorBy(tubeDisplay, ('POINTS', 'Temp'))
ColorBy(glyphDisplay, ('POINTS', 'Temp'))
tubeDisplay.RescaleTransferFunctionToDataRange(True)
glyphDisplay.RescaleTransferFunctionToDataRange(True)

# Orienting the view to look from the +X direction
renderView.ResetActiveCameraToPositiveX()
renderView.ResetCamera()

# Save a screenshot of the render view
SaveScreenshot('stream-glyph-screenshot.png', renderView,
    ImageResolution=[480, 270],
    OverrideColorPalette='WhiteBackground')
`

func TestStreamlinePipeline(t *testing.T) {
	res := runScript(t, streamScript)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
	img := checkScreenshot(t, res, "stream-glyph-screenshot.png", 480)
	if f := nonBackgroundFraction(img); f < 0.01 {
		t.Errorf("streamlines cover only %.2f%% of the image", f*100)
	}
}

// --- failure-mode fidelity: the errors the paper documents -----------------

func TestGlyphScalarsAttributeError(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
reader = ExodusIIReader(FileName='disk.ex2')
streamTracer = StreamTracer(Input=reader, SeedType='Point Cloud')
coneGlyph = Glyph(Input=streamTracer, GlyphType='Cone')
coneGlyph.Scalars = ['POINTS', 'Temp']
`)
	if res.OK() {
		t.Fatal("Glyph.Scalars should raise")
	}
	pe, ok := res.Err.(*pypy.PyError)
	if !ok || pe.Kind != "AttributeError" {
		t.Fatalf("error = %v", res.Err)
	}
	if !strings.Contains(pe.Msg, "'Glyph'") || !strings.Contains(pe.Msg, "'Scalars'") {
		t.Errorf("msg = %q", pe.Msg)
	}
	if !strings.Contains(res.Output, "Traceback (most recent call last):") {
		t.Errorf("output missing traceback:\n%s", res.Output)
	}
}

func TestClipInsideOutAttributeError(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
reader = ExodusIIReader(FileName='can_points.ex2')
d = Delaunay3D(Input=reader)
clipFilter = Clip(Input=d, ClipType='Plane')
clipFilter.InsideOut = 1
`)
	if res.OK() {
		t.Fatal("Clip.InsideOut should raise")
	}
	pe, ok := res.Err.(*pypy.PyError)
	if !ok || pe.Kind != "AttributeError" || !strings.Contains(pe.Msg, "InsideOut") {
		t.Fatalf("error = %v", res.Err)
	}
}

func TestViewUpAttributeError(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
view = GetActiveViewOrCreate('RenderView')
view.ViewUp = [0.0, 1.0, 0.0]
`)
	pe, ok := res.Err.(*pypy.PyError)
	if !ok || pe.Kind != "AttributeError" || !strings.Contains(pe.Msg, "ViewUp") {
		t.Fatalf("error = %v", res.Err)
	}
}

func TestColorByOnFilterProxyRaisesUseSeparateColorMap(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
reader = LegacyVTKReader(FileNames=['ml-100.vtk'])
contour = Contour(Input=reader)
contour.Isosurfaces = [0.5]
ColorBy(contour, None)
`)
	pe, ok := res.Err.(*pypy.PyError)
	if !ok || pe.Kind != "AttributeError" {
		t.Fatalf("error = %v", res.Err)
	}
	if !strings.Contains(pe.Msg, "UseSeparateColorMap") || !strings.Contains(pe.Msg, "'Contour'") {
		t.Errorf("msg = %q", pe.Msg)
	}
}

func TestShowWithStringViewRaises(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
reader = LegacyVTKReader(FileNames=['ml-100.vtk'])
rep = Show(reader, 'RenderView1')
`)
	if res.OK() {
		t.Fatal("Show with string view should raise")
	}
	pe, ok := res.Err.(*pypy.PyError)
	if !ok || pe.Kind != "TypeError" {
		t.Fatalf("error = %v", res.Err)
	}
}

func TestMissingDataFileRaises(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
reader = LegacyVTKReader(FileNames=['no-such-file.vtk'])
reader.UpdatePipeline()
`)
	if res.OK() {
		t.Fatal("missing file should raise")
	}
	if !strings.Contains(res.Output, "RuntimeError") {
		t.Errorf("output = %q", res.Output)
	}
}

func TestSyntaxErrorSurfacesInOutput(t *testing.T) {
	res := runScript(t, "from paraview.simple import *\nx = (1 +\n")
	if res.OK() {
		t.Fatal("syntax error expected")
	}
	if !strings.Contains(res.Output, "SyntaxError") {
		t.Errorf("output = %q", res.Output)
	}
}

func TestCameraMethodsWork(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
reader = LegacyVTKReader(FileNames=['ml-100.vtk'])
view = GetActiveViewOrCreate('RenderView')
d = Show(reader, view)
view.ResetCamera()
cam = view.GetActiveCamera()
cam.Azimuth(30)
cam.Elevation(-15)
cam.SetPosition(1.0, 2.0, 10.0)
cam.SetFocalPoint(0.0, 0.0, 0.0)
cam.SetViewUp(0.0, 1.0, 0.0)
print(view.CameraPosition)
`)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, "[1.0, 2.0, 10.0]") {
		t.Errorf("camera position not applied: %s", res.Output)
	}
}

func TestTransferFunctionAccess(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
lut = GetColorTransferFunction('Temp')
lut.ApplyPreset('Cool to Warm', True)
lut.RescaleTransferFunction(0.0, 100.0)
pwf = GetOpacityTransferFunction('Temp')
pwf.Points = [0.0, 0.0, 0.5, 0.0, 100.0, 1.0, 0.5, 0.0]
print('ok')
`)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
}

func TestHideAndActiveSource(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
reader = LegacyVTKReader(FileNames=['ml-100.vtk'])
view = GetActiveViewOrCreate('RenderView')
d = Show(reader, view)
Hide(reader, view)
print(GetActiveSource() is None)
SetActiveSource(reader)
c = Contour()
c.Isosurfaces = [0.5]
print(str(c))
Delete(c)
`)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
	if !strings.Contains(res.Output, "Contour") {
		t.Errorf("output = %q", res.Output)
	}
}

func TestThresholdAndTransformScript(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
reader = ExodusIIReader(FileName='disk.ex2')

# keep the hot region only
threshold1 = Threshold(registrationName='Threshold1', Input=reader)
threshold1.Scalars = ['POINTS', 'Temp']
threshold1.LowerThreshold = 500.0
threshold1.UpperThreshold = 1000.0

# move it up and shrink it
transform1 = Transform(registrationName='Transform1', Input=threshold1)
transform1.Transform.Translate = [0.0, 0.0, 3.0]
transform1.Transform.Scale = [0.5, 0.5, 0.5]

view = GetActiveViewOrCreate('RenderView')
view.ViewSize = [200, 120]
d = Show(transform1, view)
ColorBy(d, ('POINTS', 'Temp'))
view.ResetCamera()
SaveScreenshot('thresh.png', view, ImageResolution=[200, 120],
    OverrideColorPalette='WhiteBackground')
print('points:', transform1.GetDataInformation()['NumberOfPoints'])
`)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
	checkScreenshot(t, res, "thresh.png", 200)
	if !strings.Contains(res.Output, "points:") {
		t.Errorf("output = %q", res.Output)
	}
}

func TestThresholdWrongArrayRaises(t *testing.T) {
	res := runScript(t, `from paraview.simple import *
reader = ExodusIIReader(FileName='disk.ex2')
threshold1 = Threshold(Input=reader)
threshold1.Scalars = ['POINTS', 'NoSuchArray']
threshold1.UpdatePipeline()
`)
	if res.OK() {
		t.Fatal("missing array should raise")
	}
	if !strings.Contains(res.Output, "RuntimeError") {
		t.Errorf("output = %q", res.Output)
	}
}
