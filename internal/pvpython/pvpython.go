// Package pvpython simulates the `pvpython` batch interpreter: it executes
// ParaView Python script text against the simulated engine and returns
// what a subprocess invocation would produce — combined stdout/stderr text
// (including CPython-style tracebacks on failure) plus the screenshots the
// script saved. The ChatVis loop treats this output exactly as the paper
// treats PvPython subprocess output.
package pvpython

import (
	"bytes"
	"context"
	"fmt"

	"chatvis/internal/data"
	"chatvis/internal/plan"
	"chatvis/internal/pvsim"
	"chatvis/internal/pypy"
)

// Result is the outcome of one script execution.
type Result struct {
	// Output is the combined stdout/stderr text, traceback included.
	Output string
	// Err is the structured error (nil on success): *pypy.SyntaxError or
	// *pypy.PyError.
	Err error
	// Screenshots lists the image files the script wrote, in order.
	Screenshots []string
	// Engine exposes the session for callers that inspect state (tests,
	// the evaluation harness reading rendered pixels).
	Engine *pvsim.Engine
	// Plan is the normalized compiled plan of the executed script (nil
	// when the script does not parse). Every execution carries its plan
	// so callers — traces, the artifact store, the eval harness — can
	// hash and compare what the script *means*.
	Plan *plan.Plan
	// PlanDiags are the structured pre-execution diagnostics of the
	// compiled plan.
	PlanDiags []plan.Diagnostic
}

// PlanHash returns the normalized plan hash ("" when no plan compiled).
func (r *Result) PlanHash() string {
	if r.Plan == nil {
		return ""
	}
	return r.Plan.Hash()
}

// OK reports whether the run completed without error.
func (r *Result) OK() bool { return r.Err == nil }

// Runner executes scripts with a fixed data directory and output
// directory, like a pvpython binary invoked from a working directory.
type Runner struct {
	// DataDir resolves relative input dataset paths.
	DataDir string
	// OutDir resolves relative screenshot paths.
	OutDir string
	// MaxSteps bounds interpreter execution (default 5M).
	MaxSteps int
	// Cache, when set, is shared with every engine this runner creates:
	// repeated executions of unchanged pipeline stages (repair
	// iterations, concurrent jobs on the same inputs) are answered from
	// the content-hash dataset cache instead of recomputed.
	Cache *data.Cache
}

// Exec runs one script in a fresh simulated ParaView session.
func (r *Runner) Exec(script string) *Result {
	return r.ExecContext(context.Background(), script)
}

// CompilePlan statically compiles script text to the plan IR, validated
// against the engine-derived schema. It is the cheap pre-execution path:
// structured diagnostics come back without paying for an engine run.
func (r *Runner) CompilePlan(script string) (*plan.Compiled, error) {
	return plan.Compile(script, pvsim.PlanSchema())
}

// ExecPlan executes a compiled plan natively (no interpreter pass) in a
// fresh engine sharing the runner's directories and dataset cache.
func (r *Runner) ExecPlan(ctx context.Context, p *plan.Plan) *Result {
	engine := pvsim.NewEngine(r.DataDir, r.OutDir)
	engine.DataCache = r.Cache
	engine.ExecCtx = ctx
	res := &Result{Engine: engine, Plan: p}
	shots, err := engine.ExecPlan(ctx, p)
	if err != nil {
		res.Err = err
		res.Output = fmt.Sprintf("Error: %v\n", err)
	}
	res.Screenshots = shots
	return res
}

// ExecContext is Exec with cancellation: ctx is threaded into the
// engine's filter execution and rendering, so canceling a chatvisd job
// aborts the compute-heavy stages mid-script.
func (r *Runner) ExecContext(ctx context.Context, script string) *Result {
	var out bytes.Buffer
	engine := pvsim.NewEngine(r.DataDir, r.OutDir)
	engine.DataCache = r.Cache
	engine.ExecCtx = ctx
	interp := pypy.NewInterp(&out)
	if r.MaxSteps > 0 {
		interp.MaxSteps = r.MaxSteps
	}
	simple := engine.BuildSimpleModule()
	interp.RegisterModule(simple)
	interp.RegisterModule(buildParaviewRootExtras())
	// Real paraview.simple contains `import paraview` at module top, so a
	// star-import also binds the package name — scripts rely on it for
	// `paraview.simple._DisableFirstRenderCameraReset()`.
	if root, ok := interp.Modules["paraview"]; ok {
		simple.Attrs["paraview"] = root
	}

	err := interp.Run(script)
	res := &Result{Engine: engine}
	if err != nil {
		switch e := err.(type) {
		case *pypy.SyntaxError:
			fmt.Fprintln(&out, e.Error())
		case *pypy.PyError:
			fmt.Fprintln(&out, e.Traceback(interp.File, interp.SourceLine(e.Line)))
		default:
			fmt.Fprintf(&out, "Error: %v\n", err)
		}
		res.Err = err
	}
	res.Output = out.String()
	res.Screenshots = engine.Screenshots
	// Attach the compiled plan: what the script *means*, independent of
	// how this run went. Parse failures simply leave Plan nil — the
	// interpreter's SyntaxError output already covers them.
	if compiled, cerr := plan.Compile(script, pvsim.PlanSchema()); cerr == nil {
		res.Plan = plan.Normalize(compiled.Plan, pvsim.PlanSchema())
		res.PlanDiags = compiled.Diags
	}
	return res
}

// buildParaviewRootExtras adds the handful of attributes scripts reference
// on the `paraview` package itself (paraview.simple._DisableFirst... is
// reached through the simple module; this covers e.g. print_warning).
func buildParaviewRootExtras() *pypy.ModuleVal {
	return &pypy.ModuleVal{
		Name: "paraview.servermanager",
		Attrs: map[string]pypy.Value{
			"vtkSMProxyManager": pypy.Str("<proxy manager>"),
		},
	}
}
