package pvpython

import (
	"context"
	"path/filepath"
	"testing"

	"chatvis/internal/datagen"
	"chatvis/internal/plan"
	"chatvis/internal/vtkio"
)

func planTestRunner(t *testing.T) *Runner {
	t.Helper()
	dataDir := t.TempDir()
	if err := vtkio.SaveLegacyVTK(filepath.Join(dataDir, "ml-100.vtk"),
		datagen.MarschnerLobb(16), "ml"); err != nil {
		t.Fatal(err)
	}
	return &Runner{DataDir: dataDir, OutDir: t.TempDir()}
}

const planRunnerScript = `from paraview.simple import *
reader = LegacyVTKReader(FileNames=['ml-100.vtk'])
contour1 = Contour(registrationName='C1', Input=reader)
contour1.Isosurfaces = [0.5]
renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [120, 80]
d = Show(contour1, renderView1)
renderView1.ResetCamera()
SaveScreenshot('shot.png', renderView1, ImageResolution=[120, 80])
`

// TestExecAttachesCompiledPlan: every execution carries the normalized
// plan of what ran, plus its diagnostics.
func TestExecAttachesCompiledPlan(t *testing.T) {
	r := planTestRunner(t)
	res := r.Exec(planRunnerScript)
	if !res.OK() {
		t.Fatalf("script failed:\n%s", res.Output)
	}
	if res.Plan == nil {
		t.Fatal("result has no plan")
	}
	if res.PlanHash() == "" {
		t.Error("plan hash empty")
	}
	if res.Plan.FindClass("Contour") < 0 {
		t.Error("plan missing Contour stage")
	}
	// Unparsable scripts simply carry no plan.
	bad := r.Exec("x = (1 +\n")
	if bad.OK() || bad.Plan != nil || bad.PlanHash() != "" {
		t.Errorf("unparsable script: ok=%v plan=%v", bad.OK(), bad.Plan)
	}
	// Scripts with hallucinated properties carry the diagnostics.
	halluc := r.Exec(planRunnerScript + "contour1.ContourMethod = 'fast'\n")
	if halluc.OK() {
		t.Error("hallucinated property should fail execution")
	}
	if !plan.HasErrors(halluc.PlanDiags) {
		t.Errorf("expected plan diagnostics, got %v", halluc.PlanDiags)
	}
}

// TestRunnerExecPlanParity: executing the compiled plan through the
// runner produces the same screenshot as interpreting the script.
func TestRunnerExecPlanParity(t *testing.T) {
	r := planTestRunner(t)
	scriptRes := r.Exec(planRunnerScript)
	if !scriptRes.OK() || len(scriptRes.Screenshots) != 1 {
		t.Fatalf("script run: ok=%v shots=%d", scriptRes.OK(), len(scriptRes.Screenshots))
	}
	compiled, err := r.CompilePlan(planRunnerScript)
	if err != nil {
		t.Fatal(err)
	}
	planRes := r.ExecPlan(context.Background(), compiled.Plan)
	if !planRes.OK() {
		t.Fatalf("plan run failed: %v", planRes.Err)
	}
	if len(planRes.Screenshots) != 1 {
		t.Fatalf("plan run wrote %d screenshots", len(planRes.Screenshots))
	}
	a := scriptRes.Engine.Rendered[scriptRes.Screenshots[0]]
	b := planRes.Engine.Rendered[planRes.Screenshots[0]]
	if a.Bounds() != b.Bounds() {
		t.Fatalf("bounds differ: %v vs %v", a.Bounds(), b.Bounds())
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("images differ at byte %d", i)
		}
	}
}
