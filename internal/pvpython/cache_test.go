package pvpython

import (
	"fmt"
	"path/filepath"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/datagen"
	"chatvis/internal/vtkio"
)

// cacheIsoScript is a minimal read→contour→screenshot pipeline at the
// given isovalue.
func cacheIsoScript(iso float64) string {
	return fmt.Sprintf(`from paraview.simple import *
ml = LegacyVTKReader(FileNames=['ml.vtk'])
c = Contour(Input=ml)
c.Isosurfaces = [%g]
view = GetActiveViewOrCreate('RenderView')
Show(c, view)
view.ResetCamera()
SaveScreenshot('iso.png', view, ImageResolution=[64, 48])
`, iso)
}

// TestRunnerSharedCacheAcrossRepairIterations pins the acceptance
// criterion end-to-end: a runner with a shared dataset cache re-executes
// a script (the repair-iteration scenario — each Exec is a fresh engine,
// exactly like a correction-loop round) and unchanged stages hit the
// content-hash cache instead of recomputing.
func TestRunnerSharedCacheAcrossRepairIterations(t *testing.T) {
	dataDir := t.TempDir()
	if err := vtkio.SaveLegacyVTK(filepath.Join(dataDir, "ml.vtk"),
		datagen.MarschnerLobb(12), "ml"); err != nil {
		t.Fatal(err)
	}
	r := &Runner{DataDir: dataDir, OutDir: t.TempDir(), Cache: data.NewCache(64 << 20)}

	// Round 1: everything executes (reader + contour).
	res := r.Exec(cacheIsoScript(0.5))
	if !res.OK() {
		t.Fatalf("round 1 failed:\n%s", res.Output)
	}
	if got := res.Engine.Executions(); got != 2 {
		t.Fatalf("round 1 executed %d stages, want 2", got)
	}

	// Round 2 ("repair" with a tweaked parameter): only the contour
	// recomputes — the reader's dataset comes from the shared cache.
	res = r.Exec(cacheIsoScript(0.6))
	if !res.OK() {
		t.Fatalf("round 2 failed:\n%s", res.Output)
	}
	if got := res.Engine.Executions(); got != 1 {
		t.Fatalf("round 2 executed %d stages, want 1 (reader cached)", got)
	}

	// Round 3 (identical re-run): the whole pipeline is answered from
	// the cache; nothing executes.
	res = r.Exec(cacheIsoScript(0.5))
	if !res.OK() {
		t.Fatalf("round 3 failed:\n%s", res.Output)
	}
	if got := res.Engine.Executions(); got != 0 {
		t.Fatalf("round 3 executed %d stages, want 0 (full cache hit)", got)
	}
	st := r.Cache.Stats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache stats show no reuse: %+v", st)
	}

	// Without a cache every round pays full price (the seed behaviour).
	bare := &Runner{DataDir: dataDir, OutDir: t.TempDir()}
	res = bare.Exec(cacheIsoScript(0.5))
	res2 := bare.Exec(cacheIsoScript(0.5))
	if res.Engine.Executions() != 2 || res2.Engine.Executions() != 2 {
		t.Fatalf("cacheless runner should recompute everything: %d, %d",
			res.Engine.Executions(), res2.Engine.Executions())
	}
}
