package imgcmp

import (
	"image"
	"image/color"
	"math"
	"math/rand"
	"testing"
)

func solid(w, h int, c color.RGBA) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

func noisy(w, h int, seed int64) *image.RGBA {
	rng := rand.New(rand.NewSource(seed))
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, color.RGBA{
				uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)), 255,
			})
		}
	}
	return img
}

func TestIdenticalImages(t *testing.T) {
	a := noisy(64, 64, 1)
	m, err := Compare(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.RMSE != 0 || m.DiffRatio != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if !math.IsInf(m.PSNR, 1) {
		t.Errorf("PSNR = %v", m.PSNR)
	}
	if m.SSIM < 0.999 {
		t.Errorf("SSIM = %v", m.SSIM)
	}
}

func TestCompletelyDifferentImages(t *testing.T) {
	a := solid(64, 64, color.RGBA{0, 0, 0, 255})
	b := solid(64, 64, color.RGBA{255, 255, 255, 255})
	m, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.RMSE < 0.99 || m.DiffRatio != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.SSIM > 0.1 {
		t.Errorf("SSIM = %v", m.SSIM)
	}
}

func TestSmallPerturbation(t *testing.T) {
	a := noisy(64, 64, 2)
	b := image.NewRGBA(a.Bounds())
	copy(b.Pix, a.Pix)
	// Flip a small patch.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			b.SetRGBA(x, y, color.RGBA{255, 0, 0, 255})
		}
	}
	m, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantDiff := 64.0 / (64 * 64)
	if math.Abs(m.DiffRatio-wantDiff) > 0.01 {
		t.Errorf("DiffRatio = %v, want ~%v", m.DiffRatio, wantDiff)
	}
	if m.RMSE == 0 || m.RMSE > 0.5 {
		t.Errorf("RMSE = %v", m.RMSE)
	}
}

func TestSizeMismatch(t *testing.T) {
	if _, err := Compare(solid(10, 10, color.RGBA{}), solid(20, 10, color.RGBA{})); err == nil {
		t.Error("size mismatch should error")
	}
}

func TestIsBlank(t *testing.T) {
	if !IsBlank(solid(32, 32, color.RGBA{200, 200, 200, 255}), 0.02) {
		t.Error("solid image should be blank")
	}
	img := solid(32, 32, color.RGBA{255, 255, 255, 255})
	// Draw a large object (30% of pixels).
	for y := 8; y < 26; y++ {
		for x := 8; x < 26; x++ {
			img.SetRGBA(x, y, color.RGBA{255, 0, 0, 255})
		}
	}
	if IsBlank(img, 0.02) {
		t.Error("image with object should not be blank")
	}
	// A couple of stray pixels stay within tolerance.
	img2 := solid(32, 32, color.RGBA{255, 255, 255, 255})
	img2.SetRGBA(5, 5, color.RGBA{0, 0, 0, 255})
	if !IsBlank(img2, 0.02) {
		t.Error("near-blank image should count as blank")
	}
}

// scene draws a w x h image with background bg and a rectangle of color c.
func scene(w, h int, bg, c color.RGBA, x0, y0, x1, y1 int) *image.RGBA {
	img := solid(w, h, bg)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

func TestMatchesGroundTruth(t *testing.T) {
	white := color.RGBA{255, 255, 255, 255}
	gray := color.RGBA{100, 100, 110, 255}
	red := color.RGBA{200, 30, 30, 255}

	gt := scene(64, 64, white, red, 16, 16, 48, 48)
	m, _ := Compare(gt, gt)
	if !MatchesGroundTruth(m, gt, gt) {
		t.Error("identical images must match")
	}
	// Blank candidate against a real ground truth: reject.
	blank := solid(64, 64, white)
	mb, _ := Compare(gt, blank)
	if MatchesGroundTruth(mb, gt, blank) {
		t.Error("blank image must not match")
	}
	// Same object, different background and slightly different zoom
	// (the paper's GPT-4 isosurface case): accept via mask overlap.
	zoomed := scene(64, 64, gray, red, 12, 12, 52, 52)
	mz, _ := Compare(gt, zoomed)
	if !MatchesGroundTruth(mz, gt, zoomed) {
		t.Error("same object with different background/zoom should match")
	}
	// Object in a completely different place: reject (masks disjoint).
	elsewhere := scene(64, 64, white, red, 0, 0, 12, 12)
	me, _ := Compare(gt, elsewhere)
	if MatchesGroundTruth(me, gt, elsewhere) {
		t.Error("disjoint object must not match")
	}
	// Thin-line rendering (contour lines): identical must match even
	// though foreground is a tiny fraction of the image.
	lines := scene(64, 64, white, red, 30, 0, 32, 64)
	ml, _ := Compare(lines, lines)
	if !MatchesGroundTruth(ml, lines, lines) {
		t.Error("identical thin-line images must match")
	}
}

func TestForegroundMaskAndIoU(t *testing.T) {
	white := color.RGBA{255, 255, 255, 255}
	red := color.RGBA{255, 0, 0, 255}
	a := scene(32, 32, white, red, 0, 0, 16, 32)
	b := scene(32, 32, white, red, 8, 0, 24, 32)
	maskA, fracA := ForegroundMask(a)
	if fracA != 0.5 {
		t.Errorf("fracA = %v", fracA)
	}
	maskB, _ := ForegroundMask(b)
	iou := MaskIoU(maskA, maskB)
	// Overlap 8 cols of 24 total covered -> 1/3.
	if iou < 0.32 || iou > 0.35 {
		t.Errorf("IoU = %v, want ~1/3", iou)
	}
	if MaskIoU(maskA, make([]bool, 10)) != 0 {
		t.Error("mismatched mask sizes should be 0")
	}
	empty := make([]bool, len(maskA))
	if MaskIoU(empty, empty) != 1 {
		t.Error("two empty masks are identical")
	}
}

func TestSSIMSensitiveToStructure(t *testing.T) {
	// Same mean, different structure: SSIM should drop much more than
	// for a brightness shift.
	a := image.NewRGBA(image.Rect(0, 0, 64, 64))
	b := image.NewRGBA(image.Rect(0, 0, 64, 64))
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			// a: vertical stripes; b: horizontal stripes.
			av := uint8(0)
			if x%8 < 4 {
				av = 255
			}
			bv := uint8(0)
			if y%8 < 4 {
				bv = 255
			}
			a.SetRGBA(x, y, color.RGBA{av, av, av, 255})
			b.SetRGBA(x, y, color.RGBA{bv, bv, bv, 255})
		}
	}
	m, _ := Compare(a, b)
	if m.SSIM > 0.3 {
		t.Errorf("orthogonal structure should have low SSIM: %v", m.SSIM)
	}
}
