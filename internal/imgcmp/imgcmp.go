// Package imgcmp compares rendered screenshots against ground truth — the
// paper's evaluation compares ChatVis images with manually created ones
// (§III-D). It provides pixel metrics (RMSE, PSNR, differing-pixel ratio),
// a grayscale SSIM, and the blank-image test used to judge the paper's
// "no error but wrong screenshot" cases.
package imgcmp

import (
	"fmt"
	"image"
	"math"
)

// Metrics summarizes the comparison of two equally-sized images.
type Metrics struct {
	// RMSE is the root-mean-square error over RGB in [0,1] units.
	RMSE float64
	// PSNR in dB (infinite for identical images).
	PSNR float64
	// DiffRatio is the fraction of pixels differing by more than a small
	// tolerance.
	DiffRatio float64
	// SSIM is the mean structural similarity over the luma channel.
	SSIM float64
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("rmse=%.4f psnr=%.1fdB diff=%.2f%% ssim=%.3f",
		m.RMSE, m.PSNR, m.DiffRatio*100, m.SSIM)
}

// luma converts a color to [0,1] luminance.
func luma(r, g, b uint32) float64 {
	return (0.299*float64(r) + 0.587*float64(g) + 0.114*float64(b)) / 65535
}

// Compare computes all metrics. Images must have identical dimensions.
func Compare(a, b image.Image) (Metrics, error) {
	var m Metrics
	ba, bb := a.Bounds(), b.Bounds()
	if ba.Dx() != bb.Dx() || ba.Dy() != bb.Dy() {
		return m, fmt.Errorf("imgcmp: size mismatch %dx%d vs %dx%d",
			ba.Dx(), ba.Dy(), bb.Dx(), bb.Dy())
	}
	w, h := ba.Dx(), ba.Dy()
	n := w * h
	if n == 0 {
		return m, fmt.Errorf("imgcmp: empty images")
	}
	const diffTol = 4.0 / 255

	sumSq := 0.0
	diff := 0
	lumaA := make([]float64, n)
	lumaB := make([]float64, n)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ra, ga, bba, _ := a.At(ba.Min.X+x, ba.Min.Y+y).RGBA()
			rb, gb, bbb, _ := b.At(bb.Min.X+x, bb.Min.Y+y).RGBA()
			dr := (float64(ra) - float64(rb)) / 65535
			dg := (float64(ga) - float64(gb)) / 65535
			db := (float64(bba) - float64(bbb)) / 65535
			sumSq += dr*dr + dg*dg + db*db
			if math.Abs(dr) > diffTol || math.Abs(dg) > diffTol || math.Abs(db) > diffTol {
				diff++
			}
			lumaA[y*w+x] = luma(ra, ga, bba)
			lumaB[y*w+x] = luma(rb, gb, bbb)
		}
	}
	m.RMSE = math.Sqrt(sumSq / float64(3*n))
	if m.RMSE == 0 {
		m.PSNR = math.Inf(1)
	} else {
		m.PSNR = 20 * math.Log10(1/m.RMSE)
	}
	m.DiffRatio = float64(diff) / float64(n)
	m.SSIM = ssim(lumaA, lumaB, w, h)
	return m, nil
}

// ssim computes mean SSIM over 8x8 windows on luma values.
func ssim(a, b []float64, w, h int) float64 {
	const (
		c1  = 0.01 * 0.01
		c2  = 0.03 * 0.03
		win = 8
	)
	total, count := 0.0, 0
	for wy := 0; wy+win <= h; wy += win {
		for wx := 0; wx+win <= w; wx += win {
			var muA, muB float64
			for y := 0; y < win; y++ {
				for x := 0; x < win; x++ {
					muA += a[(wy+y)*w+wx+x]
					muB += b[(wy+y)*w+wx+x]
				}
			}
			nw := float64(win * win)
			muA /= nw
			muB /= nw
			var varA, varB, cov float64
			for y := 0; y < win; y++ {
				for x := 0; x < win; x++ {
					da := a[(wy+y)*w+wx+x] - muA
					db := b[(wy+y)*w+wx+x] - muB
					varA += da * da
					varB += db * db
					cov += da * db
				}
			}
			varA /= nw - 1
			varB /= nw - 1
			cov /= nw - 1
			s := ((2*muA*muB + c1) * (2*cov + c2)) /
				((muA*muA + muB*muB + c1) * (varA + varB + c2))
			total += s
			count++
		}
	}
	if count == 0 {
		return 1
	}
	return total / float64(count)
}

// IsBlank reports whether an image is effectively empty: at least
// (1-tolerance) of its pixels equal the dominant corner color. It flags
// the paper's GPT-4 volume-rendering output (no error, blank screenshot).
func IsBlank(img image.Image, tolerance float64) bool {
	b := img.Bounds()
	if b.Dx() == 0 || b.Dy() == 0 {
		return true
	}
	bg := img.At(b.Min.X, b.Min.Y)
	bgR, bgG, bgB, _ := bg.RGBA()
	n, same := 0, 0
	const tol = 8 * 257 // 8/255 in 16-bit
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			n++
			r, g, bl, _ := img.At(x, y).RGBA()
			if absDiff(r, bgR) < tol && absDiff(g, bgG) < tol && absDiff(bl, bgB) < tol {
				same++
			}
		}
	}
	return float64(same)/float64(n) >= 1-tolerance
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// ForegroundMask classifies pixels as foreground (different from the
// image's own background color, taken from its top-left corner) and
// returns the mask plus the foreground fraction. Per-image backgrounds
// make the mask robust to palette differences (white vs gray).
func ForegroundMask(img image.Image) ([]bool, float64) {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	mask := make([]bool, w*h)
	if w == 0 || h == 0 {
		return mask, 0
	}
	bgR, bgG, bgB := cornerBackground(img)
	const tol = 12 * 257
	fg := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			if absDiff(r, bgR) > tol || absDiff(g, bgG) > tol || absDiff(bl, bgB) > tol {
				mask[y*w+x] = true
				fg++
			}
		}
	}
	return mask, float64(fg) / float64(w*h)
}

// cornerBackground estimates the background color as the majority color
// among the four image corners (robust to an object touching one corner).
func cornerBackground(img image.Image) (r, g, b uint32) {
	bo := img.Bounds()
	corners := [4][2]int{
		{bo.Min.X, bo.Min.Y}, {bo.Max.X - 1, bo.Min.Y},
		{bo.Min.X, bo.Max.Y - 1}, {bo.Max.X - 1, bo.Max.Y - 1},
	}
	type rgb struct{ r, g, b uint32 }
	counts := map[rgb]int{}
	var best rgb
	bestN := 0
	for _, c := range corners {
		cr, cg, cb, _ := img.At(c[0], c[1]).RGBA()
		k := rgb{cr, cg, cb}
		counts[k]++
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best.r, best.g, best.b
}

// MaskIoU computes intersection-over-union of two equal-sized masks.
func MaskIoU(a, b []bool) float64 {
	if len(a) != len(b) {
		return 0
	}
	inter, union := 0, 0
	for i := range a {
		if a[i] && b[i] {
			inter++
		}
		if a[i] || b[i] {
			union++
		}
	}
	if union == 0 {
		return 1 // both empty
	}
	return float64(inter) / float64(union)
}

// MatchesGroundTruth decides the paper's "SS" criterion: does the
// screenshot show the correct visualization? Three gates, mirroring how
// the authors judged images:
//
//  1. The image must show comparably much content as the reference (this
//     rejects the paper's "no error but blank screenshot" GPT-4 volume
//     case, where only the dataset outline appears).
//  2. Pixel-identical or near-identical images pass outright.
//  3. Otherwise the foreground shapes must overlap substantially —
//     tolerating background-color and zoom differences like the paper's
//     GPT-4 isosurface (gray background, different zoom, still "correct").
func MatchesGroundTruth(m Metrics, gt, img image.Image) bool {
	gtMask, gtFrac := ForegroundMask(gt)
	imgMask, imgFrac := ForegroundMask(img)
	if imgFrac < 0.2*gtFrac || imgFrac == 0 {
		return false
	}
	if m.SSIM >= 0.7 || m.RMSE <= 0.08 {
		return true
	}
	return MaskIoU(gtMask, imgMask) >= 0.25
}
