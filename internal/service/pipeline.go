package service

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/data"
	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/plan"
	"chatvis/internal/pvpython"
	"chatvis/internal/route"
)

// PipelineConfig wires the real ChatVis pipeline for the daemon.
type PipelineConfig struct {
	// DataDir holds (or receives, on first job) the input datasets.
	DataDir string
	// OutDir is the root under which each job gets a private working
	// directory for screenshots.
	OutDir string
	// DataSize selects dataset resolution (DataSmall keeps the stub
	// profile fast; chatvisd -full switches to paper scale).
	DataSize eval.DataSize
	// Retries is the LLM middleware retry budget (default 1 = no retry).
	Retries int
	// Metrics receives every LLM call across all jobs and models; the
	// server surfaces its snapshot at /metrics.
	Metrics *llm.Metrics
	// DisableCache turns off the shared LLM response cache.
	DisableCache bool
	// DatasetCache, when set, is shared by every job's script
	// executions: concurrent jobs reading the same input file share one
	// in-memory dataset, and repair iterations only recompute the
	// pipeline stages whose content hash actually changed.
	DatasetCache *data.Cache
	// Router, when set, routes each assisted LLM call to the cheapest
	// profiled model clearing its task's bar (the request's configured
	// model stays the fallback for untagged or unprofiled traffic).
	// Unassisted jobs are never routed: there the model IS the request.
	Router *route.Router
}

// clientProvider lazily builds and caches the per-model middleware
// stacks (metrics → retry → cache) and prepares the input datasets once.
// One provider is shared by the one-shot job pipeline and the session
// factory so both surfaces hit the same response caches.
type clientProvider struct {
	cfg PipelineConfig

	dataOnce sync.Once
	dataErr  error

	mu      sync.Mutex
	clients map[string]llm.Client
	routed  map[string]llm.Client
}

func newClientProvider(cfg PipelineConfig) *clientProvider {
	if cfg.Retries < 1 {
		cfg.Retries = 1
	}
	return &clientProvider{cfg: cfg, clients: map[string]llm.Client{}}
}

func (p *clientProvider) ensureData() error {
	p.dataOnce.Do(func() {
		p.dataErr = eval.EnsureData(p.cfg.DataDir, p.cfg.DataSize)
	})
	if p.dataErr != nil {
		return fmt.Errorf("service: preparing datasets: %w", p.dataErr)
	}
	return nil
}

// stack returns the cached middleware stack (metrics → retry → cache)
// for one backend model, unrouted.
func (p *clientProvider) stack(model string) (llm.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.clients[model]; ok {
		return c, nil
	}
	base, err := llm.NewModel(model)
	if err != nil {
		return nil, err
	}
	mws := []llm.Middleware{}
	if p.cfg.Metrics != nil {
		mws = append(mws, llm.WithMetrics(p.cfg.Metrics))
	}
	mws = append(mws, llm.WithRetry(p.cfg.Retries, 50*time.Millisecond))
	if !p.cfg.DisableCache {
		mws = append(mws, llm.WithCache())
	}
	c := llm.Chain(base, mws...)
	p.clients[model] = c
	return c, nil
}

// client returns the serving client for a configured model: the plain
// middleware stack, wrapped by the router when routing is on. Routed
// calls resolve their picked model through the same per-model stacks,
// so routed traffic shares the response caches and metrics with
// everything else.
func (p *clientProvider) client(model string) (llm.Client, error) {
	if p.cfg.Router == nil {
		return p.stack(model)
	}
	p.mu.Lock()
	if c, ok := p.routed[model]; ok {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	// Validate the fallback model eagerly so a bad configured name still
	// fails at job intake, not mid-session.
	if _, err := p.stack(model); err != nil {
		return nil, err
	}
	c := p.cfg.Router.Client(model, p.stack)
	p.mu.Lock()
	if p.routed == nil {
		p.routed = map[string]llm.Client{}
	}
	p.routed[model] = c
	p.mu.Unlock()
	return c, nil
}

// NewChatVisPipeline builds the production PipelineFunc: per-model
// client stacks (metrics → retry → cache, shared across jobs so
// repeated stages hit the response cache underneath job-level
// coalescing), datasets generated on first use, and one isolated
// output directory per job.
func NewChatVisPipeline(cfg PipelineConfig) PipelineFunc {
	prov := newClientProvider(cfg)
	return newPipelineFromProvider(prov)
}

func newPipelineFromProvider(prov *clientProvider) PipelineFunc {
	cfg := prov.cfg
	return func(ctx context.Context, req JobRequest, jobID string) (*chatvis.Artifact, error) {
		if err := prov.ensureData(); err != nil {
			return nil, err
		}
		runner := &pvpython.Runner{
			DataDir: cfg.DataDir,
			OutDir:  filepath.Join(cfg.OutDir, jobID),
			Cache:   cfg.DatasetCache,
		}
		if req.Unassisted {
			// Unassisted jobs measure the named model itself — never
			// routed.
			model, err := prov.stack(req.Model)
			if err != nil {
				return nil, err
			}
			return chatvis.Unassisted(ctx, model, runner, req.Prompt)
		}
		model, err := prov.client(req.Model)
		if err != nil {
			return nil, err
		}
		// Serving is plan-aware: candidate scripts are schema-validated
		// and repaired from structured diagnostics before the first
		// engine run, saving exec+repair rounds under load.
		assistant, err := chatvis.NewAssistant(model, runner,
			chatvis.WithMaxIterations(req.MaxIterations),
			chatvis.WithFewShot(req.FewShot),
			chatvis.WithRewrite(!req.NoRewrite),
			chatvis.WithPlanValidation(true))
		if err != nil {
			return nil, err
		}
		return assistant.Run(ctx, req.Prompt)
	}
}

// SessionFactory builds the conversational session behind one
// /v1/sessions resource: its own model stack, an isolated output
// directory, an optional seed plan (restart rehydration) and an observer
// for SSE streaming.
type SessionFactory func(req SessionRequest, sessionID string, seed *plan.Plan, observer func(chatvis.Event)) (*chatvis.Session, error)

// NewServingBackend builds both serving surfaces — the one-shot job
// pipeline and the session factory — over ONE shared client provider,
// so a prompt already answered on either path hits the same per-model
// LLM response caches on the other. This is what chatvisd wires.
func NewServingBackend(cfg PipelineConfig) (PipelineFunc, SessionFactory) {
	prov := newClientProvider(cfg)
	return newPipelineFromProvider(prov), newSessionFactoryFromProvider(prov)
}

// NewSessionFactory builds a standalone session factory over the same
// pipeline configuration (and the same middleware semantics) the job
// path uses. Prefer NewServingBackend when both surfaces serve
// together.
func NewSessionFactory(cfg PipelineConfig) SessionFactory {
	return newSessionFactoryFromProvider(newClientProvider(cfg))
}

func newSessionFactoryFromProvider(prov *clientProvider) SessionFactory {
	cfg := prov.cfg
	return func(req SessionRequest, sessionID string, seed *plan.Plan, observer func(chatvis.Event)) (*chatvis.Session, error) {
		if err := prov.ensureData(); err != nil {
			return nil, err
		}
		req = req.withDefaults()
		var model llm.Client
		var err error
		if req.Unassisted {
			// The unassisted condition names its model explicitly; keep it.
			model, err = prov.stack(req.Model)
		} else {
			model, err = prov.client(req.Model)
		}
		if err != nil {
			return nil, err
		}
		runner := &pvpython.Runner{
			DataDir: cfg.DataDir,
			OutDir:  filepath.Join(cfg.OutDir, "sessions", sessionID),
			Cache:   cfg.DatasetCache,
		}
		opts := []chatvis.Option{
			chatvis.WithMaxIterations(req.MaxIterations),
			chatvis.WithFewShot(req.FewShot),
			chatvis.WithRewrite(!req.NoRewrite),
			chatvis.WithPlanValidation(true),
		}
		if req.Unassisted {
			opts = append(opts, chatvis.WithUnassisted(true))
		}
		if observer != nil {
			opts = append(opts, chatvis.WithObserver(observer))
		}
		if seed != nil {
			return chatvis.NewSessionFrom(model, runner, seed, opts...)
		}
		return chatvis.NewSession(model, runner, opts...)
	}
}
