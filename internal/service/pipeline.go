package service

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/data"
	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
)

// PipelineConfig wires the real ChatVis pipeline for the daemon.
type PipelineConfig struct {
	// DataDir holds (or receives, on first job) the input datasets.
	DataDir string
	// OutDir is the root under which each job gets a private working
	// directory for screenshots.
	OutDir string
	// DataSize selects dataset resolution (DataSmall keeps the stub
	// profile fast; chatvisd -full switches to paper scale).
	DataSize eval.DataSize
	// Retries is the LLM middleware retry budget (default 1 = no retry).
	Retries int
	// Metrics receives every LLM call across all jobs and models; the
	// server surfaces its snapshot at /metrics.
	Metrics *llm.Metrics
	// DisableCache turns off the shared LLM response cache.
	DisableCache bool
	// DatasetCache, when set, is shared by every job's script
	// executions: concurrent jobs reading the same input file share one
	// in-memory dataset, and repair iterations only recompute the
	// pipeline stages whose content hash actually changed.
	DatasetCache *data.Cache
}

// NewChatVisPipeline builds the production PipelineFunc: per-model
// client stacks (metrics → retry → cache, shared across jobs so
// repeated stages hit the response cache underneath job-level
// coalescing), datasets generated on first use, and one isolated
// output directory per job.
func NewChatVisPipeline(cfg PipelineConfig) PipelineFunc {
	if cfg.Retries < 1 {
		cfg.Retries = 1
	}
	var (
		dataOnce sync.Once
		dataErr  error

		mu      sync.Mutex
		clients = map[string]llm.Client{}
	)
	clientFor := func(model string) (llm.Client, error) {
		mu.Lock()
		defer mu.Unlock()
		if c, ok := clients[model]; ok {
			return c, nil
		}
		base, err := llm.NewModel(model)
		if err != nil {
			return nil, err
		}
		mws := []llm.Middleware{}
		if cfg.Metrics != nil {
			mws = append(mws, llm.WithMetrics(cfg.Metrics))
		}
		mws = append(mws, llm.WithRetry(cfg.Retries, 50*time.Millisecond))
		if !cfg.DisableCache {
			mws = append(mws, llm.WithCache())
		}
		c := llm.Chain(base, mws...)
		clients[model] = c
		return c, nil
	}

	return func(ctx context.Context, req JobRequest, jobID string) (*chatvis.Artifact, error) {
		dataOnce.Do(func() {
			dataErr = eval.EnsureData(cfg.DataDir, cfg.DataSize)
		})
		if dataErr != nil {
			return nil, fmt.Errorf("service: preparing datasets: %w", dataErr)
		}
		model, err := clientFor(req.Model)
		if err != nil {
			return nil, err
		}
		runner := &pvpython.Runner{
			DataDir: cfg.DataDir,
			OutDir:  filepath.Join(cfg.OutDir, jobID),
			Cache:   cfg.DatasetCache,
		}
		if req.Unassisted {
			return chatvis.Unassisted(ctx, model, runner, req.Prompt)
		}
		// Serving is plan-aware: candidate scripts are schema-validated
		// and repaired from structured diagnostics before the first
		// engine run, saving exec+repair rounds under load.
		assistant, err := chatvis.NewAssistant(model, runner,
			chatvis.WithMaxIterations(req.MaxIterations),
			chatvis.WithFewShot(req.FewShot),
			chatvis.WithRewrite(!req.NoRewrite),
			chatvis.WithPlanValidation(true))
		if err != nil {
			return nil, err
		}
		return assistant.Run(ctx, req.Prompt)
	}
}
