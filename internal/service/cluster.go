package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"chatvis/internal/cluster"
	"chatvis/internal/obs"
)

// Cluster mode for the HTTP surface: any node accepts any request and
// either serves it or relays it to the shard-ring owner. Sessions
// route by session ID, jobs by their content key (so identical prompts
// from different nodes meet at one owner and coalesce), and job IDs
// carry the accepting node's name so status polls route back to it.
//
//	GET /v1/cluster/result/{key}?wait_ms=N
//
// is the peer-to-peer coalescing endpoint: "do you have (or are you
// running) the work for this key?" — long-polling an in-flight job up
// to wait_ms before answering from the store or 404ing.

// Forwarding headers.
const (
	// ForwardedHeader marks a relayed request with the relaying node's
	// ID; its presence is the forwarding loop guard, and relayed
	// requests skip tenant quotas (the front door already charged).
	ForwardedHeader = "X-ChatVis-Forwarded"
	// TenantHeader names the tenant a request is billed to; absent
	// means the shared "default" tenant.
	TenantHeader  = "X-ChatVis-Tenant"
	defaultTenant = "default"
)

// WithCluster attaches fleet membership, enabling request forwarding
// and the cluster endpoints; returns the server for chaining.
func (s *Server) WithCluster(c *cluster.Cluster) *Server {
	s.cluster = c
	return s
}

// WithQuotas attaches front-door tenant quotas; returns the server for
// chaining.
func (s *Server) WithQuotas(q *cluster.Quotas) *Server {
	s.quotas = q
	return s
}

// WithWAL attaches the node's WAL so /healthz and /metrics can report
// its backlog; returns the server for chaining.
func (s *Server) WithWAL(w *cluster.WAL) *Server {
	s.wal = w
	return s
}

// forwarded reports whether the request already crossed one hop.
func forwarded(r *http.Request) bool {
	return r.Header.Get(ForwardedHeader) != ""
}

// ownerPeer resolves the healthy ring owner for a key when it is a
// peer (not us) and the request is eligible for relaying.
func (s *Server) ownerPeer(r *http.Request, key string) (cluster.Peer, bool) {
	if s.cluster == nil || forwarded(r) {
		return cluster.Peer{}, false
	}
	owner, ok := s.cluster.Owner(key)
	if !ok || s.cluster.IsSelf(owner) {
		return cluster.Peer{}, false
	}
	return owner, true
}

// jobNode extracts the accepting node's ID from a namespaced job ID
// ("job-<node>-<seq>"); ok is false for local un-namespaced IDs.
func jobNode(jobID string) (string, bool) {
	rest, found := strings.CutPrefix(jobID, "job-")
	if !found {
		return "", false
	}
	i := strings.LastIndex(rest, "-")
	if i <= 0 {
		return "", false
	}
	if _, err := strconv.Atoi(rest[i+1:]); err != nil {
		return "", false
	}
	return rest[:i], true
}

// jobPeer resolves the peer a namespaced job ID belongs to, when it is
// not us.
func (s *Server) jobPeer(r *http.Request, jobID string) (cluster.Peer, bool) {
	if s.cluster == nil || forwarded(r) {
		return cluster.Peer{}, false
	}
	node, ok := jobNode(jobID)
	if !ok || node == s.cluster.Self().ID {
		return cluster.Peer{}, false
	}
	peer, ok := s.cluster.Peer(node)
	if !ok || !s.cluster.Alive(peer.ID) {
		return cluster.Peer{}, false
	}
	return peer, true
}

// proxy relays the request to a peer and copies the response through.
// Reports whether the relay succeeded; on a transport error the peer
// is marked down (so routing fails over immediately) and the caller
// falls back to handling the request locally.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, peer cluster.Peer, body []byte) bool {
	ctx, span := obs.Start(r.Context(), "cluster.forward")
	span.SetAttr("peer", peer.ID)
	span.SetAttr("path", r.URL.Path)
	defer span.End()
	url := "http://" + peer.Addr + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(ctx, r.Method, url, bytes.NewReader(body))
	if err != nil {
		span.SetError(err)
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set(ForwardedHeader, s.cluster.Self().ID)
	// Propagate the trace across the hop: the peer's middleware parses
	// this and parents its server span under our forward span, so one
	// trace ID spans both nodes.
	if tp := obs.Traceparent(ctx); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	resp, err := s.cluster.Client().Do(req)
	if err != nil {
		span.SetError(err)
		s.cluster.MarkAlive(peer.ID, false)
		return false
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		if http.CanonicalHeaderKey(k) == obs.TraceHeader {
			// Our middleware already stamped the trace header; copying the
			// peer's (identical) value would duplicate it.
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set(ForwardedHeader, peer.ID)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	s.forwards.Add(1)
	return true
}

// tenantOf names the tenant a request bills to.
func tenantOf(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get(TenantHeader)); t != "" {
		return t
	}
	return defaultTenant
}

// admitTenant enforces the front-door quota. On throttle it writes the
// 429 (with Retry-After) and returns ok=false; otherwise the caller
// must invoke release once the admitted work finishes. Relayed
// requests pass freely — their front door already charged the tenant.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if !s.quotas.Enabled() || forwarded(r) {
		return func() {}, true
	}
	tenant := tenantOf(r)
	release, retryAfter, ok := s.quotas.Admit(tenant)
	if !ok {
		secs := int(retryAfter / time.Second)
		if retryAfter%time.Second != 0 || secs == 0 {
			secs++
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, r, http.StatusTooManyRequests,
			"tenant %q over quota, retry in %ds", tenant, secs)
		return nil, false
	}
	return release, true
}

// clusterResultWaitCap bounds the long-poll a peer may request from
// /v1/cluster/result.
const clusterResultWaitCap = 30 * time.Second

// handleClusterResult answers a peer's coalescing probe for a job key:
// a stored result wins immediately; an in-flight job is awaited up to
// ?wait_ms; otherwise 404.
func (s *Server) handleClusterResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if res, ok := s.store.GetResult(key); ok {
		writeJSON(w, http.StatusOK, res)
		return
	}
	wait := time.Duration(0)
	if ms, err := strconv.Atoi(r.URL.Query().Get("wait_ms")); err == nil && ms > 0 {
		wait = time.Duration(ms) * time.Millisecond
		if wait > clusterResultWaitCap {
			wait = clusterResultWaitCap
		}
	}
	if job, ok := s.queue.InFlight(key); ok && wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-job.Done():
			if res, ok := s.store.GetResult(key); ok {
				writeJSON(w, http.StatusOK, res)
				return
			}
		case <-timer.C:
		case <-r.Context().Done():
		}
	}
	writeError(w, r, http.StatusNotFound, "no result for key %q", key)
}

// remoteLookupWait is how long a worker waits on the owner's in-flight
// execution before giving up and running the job itself. A duplicate
// execution is merely wasteful, never wrong — both sides write the
// same content-addressed result.
const remoteLookupWait = 20 * time.Second

// ClusterLookup returns the Queue's RemoteLookup hook: before a worker
// executes a job, ask the shard-ring owner of its key for a stored or
// in-flight result. A transport error marks the owner down and retries
// once against the key's next preference, covering the follower whose
// owner died mid-poll.
func ClusterLookup(c *cluster.Cluster) func(ctx context.Context, key string) (*Result, bool) {
	return func(ctx context.Context, key string) (*Result, bool) {
		for attempt := 0; attempt < 2; attempt++ {
			owner, ok := c.Owner(key)
			if !ok || c.IsSelf(owner) {
				return nil, false // we are the owner: just execute
			}
			res, retry := askPeer(ctx, c, owner, key)
			if res != nil {
				return res, true
			}
			if !retry {
				return nil, false
			}
		}
		return nil, false
	}
}

// askPeer performs one coalescing probe. retry is true only on a
// transport error (the owner was marked down and routing changed).
func askPeer(ctx context.Context, c *cluster.Cluster, owner cluster.Peer, key string) (res *Result, retry bool) {
	ctx, cancel := context.WithTimeout(ctx, remoteLookupWait+5*time.Second)
	defer cancel()
	ctx, span := obs.Start(ctx, "cluster.remote-lookup")
	span.SetAttr("peer", owner.ID)
	defer span.End()
	url := fmt.Sprintf("http://%s/v1/cluster/result/%s?wait_ms=%d",
		owner.Addr, key, remoteLookupWait.Milliseconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		span.SetError(err)
		return nil, false
	}
	// Carry the trace to the owner so its long-poll handling records
	// into the same trace as our worker.
	if tp := obs.Traceparent(ctx); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	resp, err := c.Client().Do(req)
	if err != nil {
		span.SetError(err)
		c.MarkAlive(owner.ID, false)
		return nil, ctx.Err() == nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var r Result
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&r); err != nil || r.Key != key {
		return nil, false
	}
	return &r, false
}
