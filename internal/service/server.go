package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"chatvis/internal/cluster"
	"chatvis/internal/data"
	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/obs"
	"chatvis/internal/par"
	"chatvis/internal/route"
)

// Server is the chatvisd HTTP API over a Queue and Store.
//
// Endpoints:
//
//	POST   /v1/jobs                   submit a one-shot request (async)
//	GET    /v1/jobs                   list jobs
//	GET    /v1/jobs/{id}              job status, result hashes and trace
//	DELETE /v1/jobs/{id}              cancel a job
//	POST   /v1/sessions               create a conversational session
//	GET    /v1/sessions               list sessions
//	GET    /v1/sessions/{id}          session state, plan and turn views
//	POST   /v1/sessions/{id}/turns    submit a turn (async; coalesced)
//	GET    /v1/sessions/{id}/events   live stage/turn events as SSE
//	GET    /v1/artifacts/{hash}       raw stored object (script / png / artifact)
//	GET    /v1/scenarios              registered evaluation scenarios
//	GET    /v1/models                 registered models, live profiles, route state
//	GET    /healthz                   liveness + queue depth
//	GET    /metrics                   Prometheus-style counters and histograms
type Server struct {
	queue *Queue
	store *Store
	// llmMetrics is the shared middleware metrics the pipeline records
	// into; may be nil.
	llmMetrics *llm.Metrics
	// datasetCache is the shared compute-substrate cache surfaced at
	// /metrics; may be nil.
	datasetCache *data.Cache
	// sessions serves the conversational endpoints; may be nil (the
	// endpoints then answer 503).
	sessions *Sessions
	// cluster, quotas and wal are the fleet-mode attachments; all may be
	// nil (single-node daemon).
	cluster *cluster.Cluster
	quotas  *cluster.Quotas
	wal     *cluster.WAL
	// tracer records distributed traces and serves /v1/traces; may be
	// nil (requests then run untraced).
	tracer *obs.Tracer
	// router is the measured model router; may be nil (every call then
	// serves from its configured model). profilesPath names the
	// calibration store behind it, for /v1/models provenance.
	router       *route.Router
	profilesPath string
	// logger receives structured access/lifecycle logs; may be nil
	// (slog.Default is used).
	logger *slog.Logger
	// buildVersion labels chatvis_build_info ("" omits the gauge).
	buildVersion string
	// forwards counts requests relayed to their ring owner.
	forwards atomic.Int64
	started  time.Time
}

// NewServer builds a server over its subsystems.
func NewServer(q *Queue, s *Store, m *llm.Metrics) *Server {
	return &Server{queue: q, store: s, llmMetrics: m, started: time.Now()}
}

// WithDatasetCache attaches the shared dataset cache so /metrics can
// report its gauges; returns the server for chaining.
func (s *Server) WithDatasetCache(c *data.Cache) *Server {
	s.datasetCache = c
	return s
}

// WithSessions attaches the conversational-session registry, enabling
// the /v1/sessions endpoints; returns the server for chaining.
func (s *Server) WithSessions(m *Sessions) *Server {
	s.sessions = m
	return s
}

// WithTracer attaches the node's tracer: Handler gains the tracing
// middleware and the /v1/traces endpoints; returns the server for
// chaining.
func (s *Server) WithTracer(t *obs.Tracer) *Server {
	s.tracer = t
	return s
}

// WithRouter attaches the measured model router (and the path of the
// profile store it was compiled from): /v1/models gains the live route
// state and /metrics the chatvis_route_* families; returns the server
// for chaining.
func (s *Server) WithRouter(r *route.Router, profilesPath string) *Server {
	s.router = r
	s.profilesPath = profilesPath
	return s
}

// WithLogger attaches the daemon's structured logger; returns the
// server for chaining.
func (s *Server) WithLogger(l *slog.Logger) *Server {
	s.logger = l
	return s
}

// WithBuildVersion sets the version label of chatvis_build_info;
// returns the server for chaining.
func (s *Server) WithBuildVersion(v string) *Server {
	s.buildVersion = v
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("POST /v1/sessions/{id}/turns", s.handleSubmitTurn)
	mux.HandleFunc("GET /v1/sessions/{id}/turns/{turn}", s.handleGetTurn)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleSessionEvents)
	mux.HandleFunc("GET /v1/artifacts/{hash}", s.handleArtifact)
	mux.HandleFunc("GET /v1/cluster/result/{key}", s.handleClusterResult)
	mux.HandleFunc("GET /v1/traces", s.handleListTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleGetTrace)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)

	// The observability front door: enrich the context (logger, tenant),
	// then the tracing middleware starts the server span and stamps the
	// trace header. Without a tracer, requests pass straight through.
	var h http.Handler = obs.Middleware(s.tracer, mux)
	if s.logger != nil || s.tracer != nil {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx := r.Context()
			if s.logger != nil {
				ctx = obs.WithLogger(ctx, s.logger)
			}
			if t := strings.TrimSpace(r.Header.Get(TenantHeader)); t != "" {
				ctx = obs.WithTenant(ctx, t)
			}
			inner.ServeHTTP(w, r.WithContext(ctx))
		})
	}
	return h
}

// apiError is the JSON error body. TraceID names the request's
// distributed trace so a client can quote it when reporting a failure
// (it also rides the X-ChatVis-Trace response header).
type apiError struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	writeJSON(w, code, apiError{
		Error:   fmt.Sprintf(format, args...),
		TraceID: obs.TraceID(r.Context()),
	})
}

// submitResponse is the POST /v1/jobs body: the job view plus how the
// submission was satisfied.
type submitResponse struct {
	View
	// Submission is "new", "coalesced" or "store".
	Submission Submission `json:"submission"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The body is read raw (not streamed into the decoder) so a cluster
	// relay can replay the exact bytes to the ring owner.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	var req JobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	// Reject unknown models before queueing so the client hears about a
	// typo now, not from a failed job later.
	if model := req.withDefaults().Model; model != "" {
		if _, err := llm.NewModel(model); err != nil {
			writeError(w, r, http.StatusBadRequest, "unknown model %q (have %s)",
				model, strings.Join(llm.ModelNames(), ", "))
			return
		}
	}
	release, ok := s.admitTenant(w, r)
	if !ok {
		return
	}
	// Jobs shard by content key: identical prompts submitted anywhere in
	// the fleet meet at one owner and coalesce to a single execution. A
	// failed relay falls back to local execution — the remote-coalescing
	// hook still dedupes against the owner before running.
	if peer, fwd := s.ownerPeer(r, Key(req)); fwd {
		if s.proxy(w, r, peer, body) {
			release()
			return
		}
	}
	job, outcome, err := s.queue.SubmitCtx(r.Context(), req)
	switch {
	case errors.Is(err, ErrQueueFull):
		release()
		writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrQueueClosed):
		release()
		writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		release()
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if outcome == SubmissionNew {
		// The tenant's inflight slot is held until the job finishes, so
		// MaxInflight bounds concurrent executions, not concurrent POSTs.
		go func() {
			<-job.Done()
			release()
		}()
	} else {
		release()
	}
	code := http.StatusAccepted
	if outcome == SubmissionStoreHit {
		code = http.StatusOK // already complete
	}
	writeJSON(w, code, submitResponse{View: job.Snapshot(), Submission: outcome})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.queue.Jobs()
	views := make([]View, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.Snapshot())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		// Job IDs carry the accepting node's name; route the poll home.
		if peer, fwd := s.jobPeer(r, r.PathValue("id")); fwd && s.proxy(w, r, peer, nil) {
			return
		}
		writeError(w, r, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		if peer, fwd := s.jobPeer(r, r.PathValue("id")); fwd && s.proxy(w, r, peer, nil) {
			return
		}
		writeError(w, r, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.Snapshot())
}

// requireSessions guards the conversational endpoints.
func (s *Server) requireSessions(w http.ResponseWriter, r *http.Request) *Sessions {
	if s.sessions == nil {
		writeError(w, r, http.StatusServiceUnavailable, "sessions are not enabled on this daemon")
		return nil
	}
	return s.sessions
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	m := s.requireSessions(w, r)
	if m == nil {
		return
	}
	var req SessionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && err != io.EOF {
		writeError(w, r, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if model := req.withDefaults().Model; model != "" {
		if _, err := llm.NewModel(model); err != nil {
			writeError(w, r, http.StatusBadRequest, "unknown model %q (have %s)",
				model, strings.Join(llm.ModelNames(), ", "))
			return
		}
	}
	sess, err := m.Create(req)
	if err != nil {
		writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.View())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	m := s.requireSessions(w, r)
	if m == nil {
		return
	}
	sessions := m.List()
	views := make([]SessionView, 0, len(sessions))
	for _, sess := range sessions {
		v := sess.View()
		v.Plan = nil // keep the listing light; GET /v1/sessions/{id} inlines it
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	m := s.requireSessions(w, r)
	if m == nil {
		return
	}
	// Sessions live on their ring owner; a failed relay falls through to
	// a cold restore from the shared store (the failover path).
	if peer, fwd := s.ownerPeer(r, r.PathValue("id")); fwd && s.proxy(w, r, peer, nil) {
		return
	}
	sess, ok := m.GetOrRestore(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sess.View())
}

// submitTurnResponse is the POST /v1/sessions/{id}/turns body.
type submitTurnResponse struct {
	TurnView
	Submission Submission `json:"submission"`
}

func (s *Server) handleSubmitTurn(w http.ResponseWriter, r *http.Request) {
	m := s.requireSessions(w, r)
	if m == nil {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	var req TurnRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	release, ok := s.admitTenant(w, r)
	if !ok {
		return
	}
	if peer, fwd := s.ownerPeer(r, r.PathValue("id")); fwd && s.proxy(w, r, peer, body) {
		release()
		return
	}
	sess, ok := m.GetOrRestore(r.PathValue("id"))
	if !ok {
		release()
		writeError(w, r, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	view, outcome, err := sess.SubmitTurnCtx(r.Context(), req)
	switch {
	case errors.Is(err, ErrQueueClosed):
		release()
		writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		release()
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if done, found := sess.TurnDone(view.ID); outcome == SubmissionNew && found {
		go func() {
			<-done
			release()
		}()
	} else {
		release()
	}
	code := http.StatusAccepted
	if outcome == SubmissionCoalesced && view.Status.Terminal() {
		code = http.StatusOK // already complete: idempotent replay
	}
	writeJSON(w, code, submitTurnResponse{TurnView: view, Submission: outcome})
}

func (s *Server) handleGetTurn(w http.ResponseWriter, r *http.Request) {
	m := s.requireSessions(w, r)
	if m == nil {
		return
	}
	if peer, fwd := s.ownerPeer(r, r.PathValue("id")); fwd && s.proxy(w, r, peer, nil) {
		return
	}
	sess, ok := m.GetOrRestore(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	view, ok := sess.TurnView(r.PathValue("turn"))
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown turn %q", r.PathValue("turn"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleSessionEvents streams session events (turn lifecycle, per-stage
// progress, stored results) as server-sent events until the client
// disconnects.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	m := s.requireSessions(w, r)
	if m == nil {
		return
	}
	// SSE streams redirect rather than proxy: the client holds its
	// long-lived connection straight to the session's owner.
	if peer, fwd := s.ownerPeer(r, r.PathValue("id")); fwd {
		s.forwards.Add(1)
		http.Redirect(w, r, "http://"+peer.Addr+r.URL.RequestURI(), http.StatusTemporaryRedirect)
		return
	}
	sess, ok := m.GetOrRestore(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := sess.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An initial snapshot event so late subscribers know where the
	// session stands.
	if blob, err := json.Marshal(map[string]any{
		"type": "snapshot", "session": sess.ID, "plan_hash": sess.View().PlanHash,
	}); err == nil {
		fmt.Fprintf(w, "data: %s\n\n", blob)
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	content, info, err := s.store.Get(hash)
	if err != nil {
		writeError(w, r, http.StatusNotFound, "unknown artifact %q", hash)
		return
	}
	w.Header().Set("Content-Type", info.ContentType)
	w.Header().Set("Content-Length", strconv.FormatInt(info.Size, 10))
	// Content-addressed objects never change: cache forever.
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	w.Header().Set("ETag", `"`+info.Hash+`"`)
	_, _ = w.Write(content)
}

// scenarioView is one GET /v1/scenarios entry.
type scenarioView struct {
	ID         string `json:"id"`
	Row        string `json:"row"`
	Figure     string `json:"figure"`
	Screenshot string `json:"screenshot"`
	// Prompt is the scenario's user prompt at the requested resolution
	// (?width=&height=, default 480x270) — ready to POST to /v1/jobs.
	Prompt string `json:"prompt"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	width, height := 480, 270
	if v, err := strconv.Atoi(r.URL.Query().Get("width")); err == nil && v > 0 {
		width = v
	}
	if v, err := strconv.Atoi(r.URL.Query().Get("height")); err == nil && v > 0 {
		height = v
	}
	scns := eval.Scenarios()
	views := make([]scenarioView, 0, len(scns))
	for _, scn := range scns {
		views = append(views, scenarioView{
			ID:         scn.ID,
			Row:        scn.Row,
			Figure:     scn.Figure,
			Screenshot: scn.Screenshot,
			Prompt:     scn.UserPrompt(width, height),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": views})
}

// handleModels reports the registered model names and, when routing is
// on, the live per-task route state: measured ladders, bars, and served
// counts. With no router attached the endpoint still answers, with
// routing marked disabled, so clients can probe capability cheaply.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"models":  llm.ModelNames(),
		"routing": map[string]any{"enabled": false},
	}
	if s.router != nil {
		snap := s.router.Snapshot()
		body["routing"] = map[string]any{
			"enabled":       true,
			"profiles_path": s.profilesPath,
			"decisions":     snap.Decisions,
			"escalations":   snap.Escalations,
			"fallbacks":     snap.Fallbacks,
			"tasks":         s.router.Routes(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.queue.Snapshot()
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"queue_depth":    snap.Depth,
		"running":        snap.Running,
	}
	// The cluster view hides behind Accept negotiation so existing
	// probes (and peer liveness checks) keep the small legacy body.
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		if s.cluster != nil {
			body["node"] = s.cluster.Self().ID
			body["ring"] = s.cluster.Health()
		}
		if s.wal != nil {
			body["wal_backlog"] = s.wal.Backlog()
		}
		if s.sessions != nil {
			body["sessions_tracked"] = s.sessions.Snapshot().Tracked
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	emit := func(name, help string, value any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %v\n",
			name, help, name, metricType(name), name, value)
	}
	q := s.queue.Snapshot()
	emit("chatvis_jobs_submitted_total", "Job submissions received.", q.Submitted)
	emit("chatvis_jobs_coalesced_total", "Submissions coalesced onto an in-flight job.", q.Coalesced)
	emit("chatvis_jobs_store_hits_total", "Submissions answered from the artifact store.", q.StoreHits)
	emit("chatvis_jobs_executed_total", "Pipeline executions started.", q.Executed)
	emit("chatvis_jobs_succeeded_total", "Jobs that finished successfully.", q.Succeeded)
	emit("chatvis_jobs_failed_total", "Jobs that failed.", q.Failed)
	emit("chatvis_jobs_canceled_total", "Jobs canceled before or during execution.", q.Canceled)
	emit("chatvis_queue_depth", "Jobs queued and not yet picked up.", q.Depth)
	emit("chatvis_jobs_running", "Pipelines executing right now.", q.Running)

	// Job duration histogram (Prometheus cumulative buckets). Under the
	// OpenMetrics exposition each bucket carries an exemplar linking it
	// to the trace ID of a recent observation that landed in it.
	openMetrics := strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
	exemplar := func(i int) string {
		if !openMetrics || len(q.BucketExemplars) <= i || q.BucketExemplars[i].TraceID == "" {
			return ""
		}
		ex := q.BucketExemplars[i]
		return fmt.Sprintf(" # {trace_id=\"%s\"} %g", ex.TraceID, ex.Value)
	}
	fmt.Fprintf(&b, "# HELP chatvis_job_duration_seconds Pipeline execution latency.\n")
	fmt.Fprintf(&b, "# TYPE chatvis_job_duration_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += q.BucketCounts[i]
		fmt.Fprintf(&b, "chatvis_job_duration_seconds_bucket{le=\"%g\"} %d%s\n", ub, cum, exemplar(i))
	}
	cum += q.BucketCounts[len(latencyBuckets)]
	fmt.Fprintf(&b, "chatvis_job_duration_seconds_bucket{le=\"+Inf\"} %d%s\n", cum, exemplar(len(latencyBuckets)))
	fmt.Fprintf(&b, "chatvis_job_duration_seconds_sum %g\n", q.LatencyTotal.Seconds())
	fmt.Fprintf(&b, "chatvis_job_duration_seconds_count %d\n", q.LatencyCount)

	st := s.store.Stats()
	emit("chatvis_store_objects", "Objects in the content-addressed store.", st.Objects)
	emit("chatvis_store_bytes", "Bytes stored across all objects.", st.Bytes)
	emit("chatvis_store_results", "Job results indexed by key.", st.Results)

	// Conversational sessions.
	if s.sessions != nil {
		ss := s.sessions.Snapshot()
		emit("chatvis_sessions_active", "Hydrated conversational sessions (live engine in this process).", ss.Active)
		emit("chatvis_sessions_tracked", "Sessions known to the daemon, hydrated or restored cold.", ss.Tracked)
		emit("chatvis_session_turns_total", "Conversational turns executed.", ss.Turns)
		emit("chatvis_sse_subscribers", "Connected session event streams.", ss.SSESubscribers)
	}

	// Cluster mode.
	if s.cluster != nil {
		emit("chatvis_cluster_peers_healthy", "Fleet members currently alive (self included).", s.cluster.HealthyCount())
		emit("chatvis_cluster_forwards_total", "Requests relayed to their shard-ring owner.", s.forwards.Load())
		emit("chatvis_cluster_remote_coalesce_hits_total", "Executions avoided via a peer's stored or in-flight result.", q.RemoteHits)
	}
	if s.wal != nil {
		replayed := q.Replayed
		if s.sessions != nil {
			replayed += s.sessions.Snapshot().Replayed
		}
		emit("chatvis_wal_replayed_total", "Jobs and turns re-submitted from the WAL after a restart.", replayed)
		emit("chatvis_wal_backlog", "WAL entries accepted but not yet finished.", s.wal.Backlog())
	}
	if s.quotas.Enabled() {
		emit("chatvis_tenant_throttled_total", "Requests rejected by tenant quotas (429).", s.quotas.Throttled())
	}

	// Parallel compute substrate.
	emit("chatvis_compute_workers", "Configured worker count of the parallel compute substrate.", par.Workers())
	emit("chatvis_par_parallelism", "Effective sweep goroutine fan-out (workers clamped to GOMAXPROCS).", par.Parallelism())
	ps := par.Snapshot()
	emit("chatvis_par_sweeps_total", "Parallel sweeps executed by the compute substrate.", ps.Sweeps)
	emit("chatvis_par_chunks_total", "Chunks dispatched across all sweeps.", ps.Chunks)
	emit("chatvis_par_busy_seconds_total", "Chunk execution time summed over all sweep workers.", ps.Busy.Seconds())
	emit("chatvis_par_imbalance_avg", "Mean per-sweep imbalance ratio (max/mean worker busy time) over multi-worker sweeps; 1.0 is balanced.", ps.AvgImbalance)
	if s.datasetCache != nil {
		cs := s.datasetCache.Stats()
		emit("chatvis_dataset_cache_entries", "Datasets held in the shared content-hash cache.", cs.Entries)
		emit("chatvis_dataset_cache_bytes", "Approximate bytes of cached datasets.", cs.Bytes)
		emit("chatvis_dataset_cache_capacity_bytes", "Configured dataset cache capacity.", cs.MaxBytes)
		emit("chatvis_dataset_cache_hits_total", "Pipeline stages answered from the dataset cache.", cs.Hits)
		emit("chatvis_dataset_cache_misses_total", "Pipeline stages computed on a cache miss.", cs.Misses)
		emit("chatvis_dataset_cache_evictions_total", "Datasets evicted to stay under the byte bound.", cs.Evictions)
	}

	if s.llmMetrics != nil {
		m := s.llmMetrics.Snapshot()
		emit("chatvis_llm_calls_total", "LLM completions attempted.", m.Calls)
		emit("chatvis_llm_errors_total", "LLM completions that errored.", m.Errors)
		emit("chatvis_llm_cache_hits_total", "Completions served from the response cache.", m.CacheHits)
		emit("chatvis_llm_prompt_tokens_total", "Prompt tokens consumed.", m.PromptTokens)
		emit("chatvis_llm_completion_tokens_total", "Completion tokens produced.", m.CompletionTokens)
		emit("chatvis_llm_latency_seconds_total", "Cumulative LLM call latency.", m.TotalLatency.Seconds())
	}

	// Model routing. The labeled per-task family lists every (task,
	// serving model) pair on the compiled ladders, zero-valued until
	// served, so the exposition is deterministic from the first scrape.
	if s.router != nil {
		rs := s.router.Snapshot()
		emit("chatvis_route_decisions_total", "LLM completions routed by measured profile.", rs.Decisions)
		emit("chatvis_route_escalations_total", "Routed completions served above the primary rung.", rs.Escalations)
		emit("chatvis_route_fallbacks_total", "Completions sent to the configured model (untagged or unprofiled).", rs.Fallbacks)
		routes := s.router.Routes()
		var ladderEntries int
		for _, v := range routes {
			ladderEntries += len(v.Ladder)
		}
		emit("chatvis_route_profiles", "Measured model profiles compiled into routing ladders.", ladderEntries)
		fmt.Fprintf(&b, "# HELP chatvis_route_task_decisions_total Routed completions per task per serving model.\n")
		fmt.Fprintf(&b, "# TYPE chatvis_route_task_decisions_total counter\n")
		for _, v := range routes {
			for _, p := range v.Ladder {
				fmt.Fprintf(&b, "chatvis_route_task_decisions_total{task=%q,model=%q} %d\n",
					string(v.Task), p.Model, rs.TaskModel[v.Task][p.Model])
			}
		}
	}

	// Tracing subsystem.
	if s.tracer != nil {
		emit("chatvis_traces_retained", "Finished traces held in the retention ring.", s.tracer.Len())
	}

	// Go runtime.
	rs := obs.ReadRuntimeStats()
	emit("chatvis_go_goroutines", "Live goroutines.", rs.Goroutines)
	emit("chatvis_go_heap_alloc_bytes", "Heap bytes allocated and in use.", rs.HeapAllocBytes)
	emit("chatvis_go_heap_sys_bytes", "Heap bytes obtained from the OS.", rs.HeapSysBytes)
	emit("chatvis_go_heap_objects", "Live heap objects.", rs.HeapObjects)
	emit("chatvis_go_gc_cycles_total", "Completed GC cycles.", rs.GCCycles)
	emit("chatvis_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause.", float64(rs.GCPauseNsTotal)/1e9)
	emit("chatvis_go_next_gc_bytes", "Heap size that triggers the next GC cycle.", rs.NextGCBytes)

	// Build identity, all facts in labels (value is always 1).
	bi := obs.ReadBuildInfo(s.buildVersion)
	node := ""
	if s.cluster != nil {
		node = s.cluster.Self().ID
	} else if s.tracer != nil {
		node = s.tracer.Node()
	}
	fmt.Fprintf(&b, "# HELP chatvis_build_info Build and runtime identity of this daemon.\n")
	fmt.Fprintf(&b, "# TYPE chatvis_build_info gauge\n")
	fmt.Fprintf(&b, "chatvis_build_info{version=%q,go_version=%q,node_id=%q} 1\n",
		bi.Version, bi.GoVersion, node)

	if openMetrics {
		fmt.Fprintf(&b, "# EOF\n")
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	}
	_, _ = w.Write([]byte(b.String()))
}

// metricType classifies a metric name for the TYPE line.
func metricType(name string) string {
	if strings.HasSuffix(name, "_total") {
		return "counter"
	}
	return "gauge"
}
