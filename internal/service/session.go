package service

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/cluster"
	"chatvis/internal/llm"
	"chatvis/internal/obs"
	"chatvis/internal/plan"
)

// The session-native serving surface: stateful conversational sessions
// over the chatvis.Session API, with turn coalescing keyed by
// (parent plan hash, intended-delta hash), SSE event streaming, and
// persistence in the artifact store so sessions survive restarts.
//
//	POST /v1/sessions               create a session
//	POST /v1/sessions/{id}/turns    submit a turn (async; coalesced)
//	GET  /v1/sessions               list sessions
//	GET  /v1/sessions/{id}          session state incl. turn views
//	GET  /v1/sessions/{id}/events   live stage/turn events as SSE

// SessionRequest configures a conversational session, the POST
// /v1/sessions body. The same knobs as a JobRequest, minus the prompt —
// prompts arrive per turn.
type SessionRequest struct {
	// Model names the LLM backend (default "gpt-4").
	Model string `json:"model,omitempty"`
	// Width, Height of the rendered view (default 480x270); informative —
	// turn prompts carry their own resolution text.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// MaxIterations bounds each turn's correction loop (default 5).
	MaxIterations int `json:"max_iterations,omitempty"`
	// FewShot truncates the example library (0 = full, negative = none).
	FewShot int `json:"few_shot,omitempty"`
	// NoRewrite skips the prompt-generation stage.
	NoRewrite bool `json:"no_rewrite,omitempty"`
	// Unassisted runs first turns as the bare model.
	Unassisted bool `json:"unassisted,omitempty"`
}

func (r SessionRequest) withDefaults() SessionRequest {
	if r.Model == "" {
		r.Model = "gpt-4"
	}
	if r.Width <= 0 || r.Height <= 0 {
		r.Width, r.Height = 480, 270
	}
	if r.MaxIterations <= 0 {
		r.MaxIterations = 5
	}
	return r
}

// TurnRequest is the POST /v1/sessions/{id}/turns body.
type TurnRequest struct {
	// Prompt is the turn utterance (required): a full request on the
	// first turn, a follow-up edit afterwards.
	Prompt string `json:"prompt"`
}

// Validate rejects empty turns.
func (r TurnRequest) Validate() error {
	if strings.TrimSpace(r.Prompt) == "" {
		return fmt.Errorf("service: turn prompt is required")
	}
	return nil
}

// turnKeyVersion tags the turn-coalescing hash layout.
const turnKeyVersion = "chatvis-turn-v1"

// TurnKey derives a turn's coalescing identity: the parent plan hash
// plus the intended-delta hash. Two submissions coalesce only when they
// edit the same session state with the same meaning — a reworded but
// identical edit shares the key; the same words against a different
// parent plan do not. First turns (no parent plan) reuse the job-level
// intended-plan derivation; utterances the edit grammar cannot read fall
// back to their raw text.
func TurnKey(parentPlanHash, utterance string) string {
	h := sha256.New()
	writeField := func(s string) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeField(turnKeyVersion)
	writeField(parentPlanHash)
	if parentPlanHash == "" {
		writeField(promptKeyField(utterance))
	} else if intent := llm.ParseEditIntent(utterance); !intent.Empty() {
		writeField("intent:" + intent.Key())
	} else {
		writeField("utterance:" + utterance)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TurnView is the JSON projection of one session turn.
type TurnView struct {
	ID     string    `json:"id"`
	Index  int       `json:"index"`
	Key    string    `json:"key"`
	Prompt string    `json:"prompt"`
	Status JobStatus `json:"status"`
	Error  string    `json:"error,omitempty"`
	// TraceID names the distributed trace of the submission that started
	// this turn ("" when the submitter was untraced).
	TraceID string `json:"trace_id,omitempty"`
	// Coalesced counts submissions beyond the first that mapped onto
	// this turn.
	Coalesced int `json:"coalesced,omitempty"`
	// Success mirrors the turn artifact's Success (a turn can complete
	// — status succeeded — with a failing script).
	Success bool `json:"success,omitempty"`
	// ParentPlanHash / PlanHash / DeltaSummary / ChangedStages are the
	// turn's provenance; ExecutionsDelta counts the pipeline stages the
	// session engine actually recomputed (the incremental observable).
	ParentPlanHash  string   `json:"parent_plan_hash,omitempty"`
	PlanHash        string   `json:"plan_hash,omitempty"`
	DeltaSummary    string   `json:"delta_summary,omitempty"`
	ChangedStages   []string `json:"changed_stages,omitempty"`
	ExecutionsDelta int64    `json:"executions_delta"`
	Incremental     bool     `json:"incremental,omitempty"`
	// Artifact hashes into the content-addressed store.
	ScriptHash       string   `json:"script_hash,omitempty"`
	ScreenshotHashes []string `json:"screenshot_hashes,omitempty"`
	ArtifactHash     string   `json:"artifact_hash,omitempty"`
	Iterations       int      `json:"iterations,omitempty"`

	Submitted time.Time  `json:"submitted_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
}

// turnRec pairs a TurnView with its completion signal.
type turnRec struct {
	view TurnView
	done chan struct{}
	// traceCtx carries the submitter's observability state (no
	// cancellation); waitSpan times submit→pickup.
	traceCtx context.Context
	waitSpan *obs.Span
}

// SessionRecord is the durable form of a session: what the store
// persists after every turn and what Restore rehydrates from.
type SessionRecord struct {
	ID       string          `json:"id"`
	Request  SessionRequest  `json:"request"`
	PlanHash string          `json:"plan_hash,omitempty"`
	Plan     json.RawMessage `json:"plan,omitempty"`
	Turns    []TurnView      `json:"turns"`
	Created  time.Time       `json:"created_at"`
	Updated  time.Time       `json:"updated_at"`
}

// SessionView is the GET /v1/sessions/{id} body.
type SessionView struct {
	ID       string          `json:"id"`
	Request  SessionRequest  `json:"request"`
	PlanHash string          `json:"plan_hash,omitempty"`
	Plan     json.RawMessage `json:"plan,omitempty"`
	Turns    []TurnView      `json:"turns"`
	Created  time.Time       `json:"created_at"`
}

// SvcSession is one tracked conversational session. Turn execution is
// serialized per session (edits are ordered by nature); submissions of
// the same (parent plan, intended delta) coalesce onto one turn.
type SvcSession struct {
	ID      string
	Req     SessionRequest
	Created time.Time

	m *Sessions

	mu       sync.Mutex
	sess     *chatvis.Session // lazily hydrated
	seedPlan json.RawMessage  // restored plan awaiting hydration
	planHash string
	planJSON json.RawMessage
	turns    []*turnRec
	byKey    map[string]*turnRec
	seq      int
	subs     map[chan []byte]struct{}

	execMu sync.Mutex // serializes turn execution
}

// Sessions is the conversational-session registry and executor.
type Sessions struct {
	store   *Store
	factory SessionFactory

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// wal, when set, makes accepted turns durable (crash replay), like
	// the job queue's WAL.
	wal *cluster.WAL
	// ownsID, when set, steers new session IDs onto ones this node owns
	// on the shard ring, so follow-up turns route straight back here.
	ownsID func(string) bool

	mu       sync.Mutex
	closed   bool
	sessions map[string]*SvcSession
	order    []string
	seq      int64

	turnsTotal atomic.Int64
	sseSubs    atomic.Int64
	replayed   atomic.Int64
}

// WithWAL attaches the durable turn log; returns m for chaining.
func (m *Sessions) WithWAL(w *cluster.WAL) *Sessions {
	m.wal = w
	return m
}

// WithOwnership sets the shard-ring ownership predicate used when
// minting session IDs; returns m for chaining.
func (m *Sessions) WithOwnership(owns func(id string) bool) *Sessions {
	m.ownsID = owns
	return m
}

// NewSessions builds the registry over a store and a session factory.
func NewSessions(store *Store, factory SessionFactory) *Sessions {
	ctx, cancel := context.WithCancel(context.Background())
	return &Sessions{
		store:    store,
		factory:  factory,
		baseCtx:  ctx,
		cancel:   cancel,
		sessions: map[string]*SvcSession{},
	}
}

// Restore rehydrates persisted sessions from the store (called once at
// daemon start). Sessions come back cold: the chatvis session (and its
// engine) is rebuilt lazily on the next turn, seeded with the persisted
// plan.
func (m *Sessions) Restore() int {
	if m.store == nil {
		return 0
	}
	records := m.store.ListSessionRecords()
	m.mu.Lock()
	defer m.mu.Unlock()
	restored := 0
	for _, r := range records {
		if m.restoreRecordLocked(r) {
			restored++
		}
	}
	return restored
}

// restoreRecordLocked rehydrates one persisted session (cold). Callers
// hold m.mu; reports whether the record was new.
func (m *Sessions) restoreRecordLocked(r *SessionRecord) bool {
	if _, exists := m.sessions[r.ID]; exists {
		return false
	}
	s := &SvcSession{
		ID: r.ID, Req: r.Request, Created: r.Created, m: m,
		seedPlan: r.Plan, planHash: r.PlanHash, planJSON: r.Plan,
		byKey: map[string]*turnRec{},
		subs:  map[chan []byte]struct{}{},
	}
	for _, tv := range r.Turns {
		live := tv.Status == StatusQueued || tv.Status == StatusRunning
		if live {
			// The turn died with the process that owned it. Mark it
			// canceled and keep it OUT of the coalescing index, so a WAL
			// replay of the same prompt starts a fresh execution instead
			// of coalescing onto this dead record.
			tv.Status = StatusCanceled
			tv.Error = "interrupted by restart"
			if tv.Finished == nil {
				now := time.Now()
				tv.Finished = &now
			}
		}
		tr := &turnRec{view: tv, done: make(chan struct{})}
		close(tr.done)
		s.turns = append(s.turns, tr)
		if !live {
			s.byKey[tv.Key] = tr
		}
		if tv.Index > s.seq {
			s.seq = tv.Index
		}
	}
	m.sessions[r.ID] = s
	m.order = append(m.order, r.ID)
	// Keep new IDs past every restored one ("s-<n>" or "s-<n>-<salt>").
	var n int64
	if _, err := fmt.Sscanf(r.ID, "s-%d", &n); err == nil && n > m.seq {
		m.seq = n
	}
	return true
}

// GetOrRestore returns a session by id, rehydrating it from the store
// when it is not in memory. This is the rebalance path: when a node
// dies, the shard ring routes its sessions to the next owner, which
// picks the conversation up cold from the shared artifact store — the
// persisted plan seeds a fresh engine on the next turn.
func (m *Sessions) GetOrRestore(id string) (*SvcSession, bool) {
	if s, ok := m.Get(id); ok {
		return s, true
	}
	if m.store == nil {
		return nil, false
	}
	r, ok := m.store.GetSessionRecord(id)
	if !ok {
		return nil, false
	}
	m.mu.Lock()
	m.restoreRecordLocked(r)
	s, ok := m.sessions[id]
	m.mu.Unlock()
	return s, ok
}

// Create registers a new session.
func (m *Sessions) Create(req SessionRequest) (*SvcSession, error) {
	req = req.withDefaults()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrQueueClosed
	}
	m.seq++
	id := fmt.Sprintf("s-%d", m.seq)
	if m.ownsID != nil && !m.ownsID(id) {
		// Rejection-sample salted candidates until the shard ring routes
		// the ID back to this node, so follow-up turns land here without
		// a forwarding hop. With N nodes each try succeeds with
		// probability ~1/N; the cap is unreachable in practice.
		for salt := 1; salt <= 4096; salt++ {
			cand := fmt.Sprintf("s-%d-%d", m.seq, salt)
			if m.ownsID(cand) {
				id = cand
				break
			}
		}
	}
	s := &SvcSession{
		ID:      id,
		Req:     req,
		Created: time.Now(),
		m:       m,
		byKey:   map[string]*turnRec{},
		subs:    map[chan []byte]struct{}{},
	}
	m.sessions[s.ID] = s
	m.order = append(m.order, s.ID)
	if m.store != nil {
		_ = m.store.PutSessionRecord(s.recordLocked())
	}
	return s, nil
}

// Get returns a session by id.
func (m *Sessions) Get(id string) (*SvcSession, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// List returns every tracked session in creation order.
func (m *Sessions) List() []*SvcSession {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*SvcSession, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.sessions[id])
	}
	return out
}

// SessionsSnapshot is the /metrics projection.
type SessionsSnapshot struct {
	// Active counts hydrated sessions (live conversational state and a
	// warm engine in this process).
	Active int64
	// Tracked counts every session the daemon knows about, hydrated or
	// restored-cold.
	Tracked int64
	// Turns counts turn executions since daemon start.
	Turns int64
	// SSESubscribers counts currently connected event streams.
	SSESubscribers int64
	// Replayed counts turns re-submitted from the WAL at daemon start.
	Replayed int64
}

// Snapshot returns the current session metrics.
func (m *Sessions) Snapshot() SessionsSnapshot {
	m.mu.Lock()
	active := int64(0)
	tracked := int64(len(m.sessions))
	for _, s := range m.sessions {
		s.mu.Lock()
		if s.sess != nil {
			active++
		}
		s.mu.Unlock()
	}
	m.mu.Unlock()
	return SessionsSnapshot{
		Active:         active,
		Tracked:        tracked,
		Turns:          m.turnsTotal.Load(),
		SSESubscribers: m.sseSubs.Load(),
		Replayed:       m.replayed.Load(),
	}
}

// Shutdown stops accepting turns and waits for in-flight ones; when ctx
// expires first, running turns are canceled through the base context.
func (m *Sessions) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if m.wal != nil {
			_ = m.wal.Sync() // drained: every terminal transition is on disk
		}
		return nil
	case <-ctx.Done():
		m.cancel()
		<-done
		if m.wal != nil {
			_ = m.wal.Sync()
		}
		return ctx.Err()
	}
}

// ReplayWAL re-submits the session turns a crash left unfinished. Call
// after Restore: each recovered turn record is routed back through its
// session (rehydrated from the store if needed) and retired as
// superseded once the fresh submission is durably accepted. Records
// whose session no longer exists are failed terminally so they stop
// replaying.
func (m *Sessions) ReplayWAL() int {
	if m.wal == nil {
		return 0
	}
	n := 0
	for _, rec := range m.wal.Recovered() {
		if rec.Kind != cluster.KindTurn {
			continue
		}
		var req TurnRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil || req.Validate() != nil {
			_ = m.wal.Failed(cluster.KindTurn, rec.Session, rec.ID, "unreadable wal request")
			continue
		}
		s, ok := m.GetOrRestore(rec.Session)
		if !ok {
			_ = m.wal.Failed(cluster.KindTurn, rec.Session, rec.ID, "session record lost")
			continue
		}
		view, _, err := s.SubmitTurn(req)
		if err != nil {
			continue // closed registry or WAL failure: leave pending
		}
		_ = m.wal.Superseded(rec, view.ID)
		n++
	}
	m.replayed.Add(int64(n))
	return n
}

// SubmitTurn registers a turn with no caller context (WAL replay,
// tests); traced submissions go through SubmitTurnCtx.
func (s *SvcSession) SubmitTurn(req TurnRequest) (TurnView, Submission, error) {
	return s.SubmitTurnCtx(context.Background(), req)
}

// SubmitTurnCtx registers a turn: identical in-meaning submissions
// against the same parent plan coalesce onto the existing turn;
// otherwise the turn queues behind the session's in-flight work. The
// context's trace identity is captured on the turn (its cancellation is
// not — an accepted turn outlives the request).
func (s *SvcSession) SubmitTurnCtx(ctx context.Context, req TurnRequest) (TurnView, Submission, error) {
	if err := req.Validate(); err != nil {
		return TurnView{}, "", err
	}
	// The closed check, turn registration and wg.Add must be one atomic
	// step under m.mu (lock order m.mu → s.mu, matching Snapshot):
	// otherwise a turn accepted between Shutdown's closed=true and its
	// wg.Wait would be silently killed by daemon exit.
	s.m.mu.Lock()
	if s.m.closed {
		s.m.mu.Unlock()
		return TurnView{}, "", ErrQueueClosed
	}

	s.mu.Lock()
	key := TurnKey(s.planHash, req.Prompt)
	if tr, ok := s.byKey[key]; ok {
		tr.view.Coalesced++
		view := tr.view
		s.mu.Unlock()
		s.m.mu.Unlock()
		return view, SubmissionCoalesced, nil
	}
	s.seq++
	tr := &turnRec{
		view: TurnView{
			ID:      fmt.Sprintf("turn-%d", s.seq),
			Index:   s.seq,
			Key:     key,
			Prompt:  req.Prompt,
			TraceID: obs.TraceID(ctx),
			Status:  StatusQueued, Submitted: time.Now(),
		},
		done:     make(chan struct{}),
		traceCtx: obs.Detach(ctx),
	}
	_, tr.waitSpan = obs.Start(tr.traceCtx, "turn.wait")
	tr.waitSpan.SetAttr("session", s.ID)
	tr.waitSpan.SetAttr("turn", tr.view.ID)
	s.turns = append(s.turns, tr)
	s.byKey[key] = tr
	if w := s.m.wal; w != nil {
		// Durable before acknowledged, like the job queue: the accepted
		// record must hit disk before the client hears "queued".
		_, wsp := obs.Start(ctx, "wal.append")
		wsp.SetAttr("kind", "turn")
		err := w.Accepted(cluster.KindTurn, s.ID, tr.view.ID, key, req)
		wsp.SetError(err)
		wsp.End()
		if err != nil {
			tr.waitSpan.Fail("never started: wal append failed")
			tr.waitSpan.End()
			s.turns = s.turns[:len(s.turns)-1]
			delete(s.byKey, key)
			s.seq--
			s.mu.Unlock()
			s.m.mu.Unlock()
			return TurnView{}, "", err
		}
	}
	view := tr.view
	s.m.wg.Add(1)
	s.mu.Unlock()
	s.m.mu.Unlock()

	go s.run(tr)
	return view, SubmissionNew, nil
}

// TurnDone returns the completion channel of a turn by id.
func (s *SvcSession) TurnDone(turnID string) (<-chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tr := range s.turns {
		if tr.view.ID == turnID {
			return tr.done, true
		}
	}
	return nil, false
}

// hydrate lazily builds the chatvis session (seeded from the persisted
// plan after a restart). Callers hold s.mu.
func (s *SvcSession) hydrateLocked() error {
	if s.sess != nil {
		return nil
	}
	var seed *plan.Plan
	if len(s.seedPlan) > 0 {
		if p, err := plan.Decode(s.seedPlan); err == nil {
			seed = p
		}
	}
	sess, err := s.m.factory(s.Req, s.ID, seed, s.broadcastEvent)
	if err != nil {
		return err
	}
	s.sess = sess
	return nil
}

// run executes one turn. Turns of a session serialize on execMu; the
// daemon-wide WaitGroup covers drain.
func (s *SvcSession) run(tr *turnRec) {
	defer s.m.wg.Done()
	s.execMu.Lock()
	defer s.execMu.Unlock()
	tr.waitSpan.End() // per-session serialization wait is over

	s.mu.Lock()
	if err := s.hydrateLocked(); err != nil {
		s.finishLocked(tr, StatusFailed, err.Error())
		s.mu.Unlock()
		return
	}
	sess := s.sess
	tr.view.Status = StatusRunning
	now := time.Now()
	tr.view.Started = &now
	s.mu.Unlock()

	// Session lifecycle context, submitter's trace: the chatvis session's
	// LLM/exec spans land in the trace of the request that submitted the
	// turn, even though it returned 202 long ago.
	ctx := s.m.baseCtx
	if tr.traceCtx != nil {
		ctx = obs.Graft(ctx, tr.traceCtx)
	}
	ctx, execSpan := obs.Start(ctx, "turn.execute")
	execSpan.SetAttr("session", s.ID)
	execSpan.SetAttr("turn", tr.view.ID)

	if w := s.m.wal; w != nil {
		_ = w.Started(cluster.KindTurn, s.ID, tr.view.ID)
	}
	turn, err := sess.Turn(ctx, tr.view.Prompt)
	execSpan.SetError(err)
	execSpan.End()

	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		status := StatusFailed
		if s.m.baseCtx.Err() != nil {
			status = StatusCanceled
		}
		s.finishLocked(tr, status, err.Error())
		return
	}
	art := turn.Artifact
	tr.view.Success = art.Success
	tr.view.ParentPlanHash = turn.ParentPlanHash
	tr.view.PlanHash = art.PlanHash()
	tr.view.DeltaSummary = turn.DeltaSummary
	tr.view.ChangedStages = turn.ChangedStages
	tr.view.ExecutionsDelta = turn.ExecutionsDelta
	tr.view.Incremental = turn.Incremental
	tr.view.Iterations = art.NumIterations()
	if s.m.store != nil {
		if err := s.storeTurnLocked(tr, art); err != nil {
			s.finishLocked(tr, StatusFailed, err.Error())
			return
		}
	}
	s.planHash = sess.PlanHash()
	if p := sess.CurrentPlan(); p != nil {
		if blob, err := p.Encode(); err == nil {
			s.planJSON = blob
		}
	}
	s.finishLocked(tr, StatusSucceeded, "")
}

// storeTurnLocked persists the turn's artifacts into the object store.
// Callers hold s.mu.
func (s *SvcSession) storeTurnLocked(tr *turnRec, art *chatvis.Artifact) error {
	store := s.m.store
	scriptHash, err := store.Put([]byte(art.FinalScript), "text/x-python")
	if err != nil {
		return err
	}
	tr.view.ScriptHash = scriptHash
	for _, path := range art.Screenshots {
		png, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("service: reading screenshot %s: %w", path, err)
		}
		h, err := store.Put(png, "image/png")
		if err != nil {
			return err
		}
		tr.view.ScreenshotHashes = append(tr.view.ScreenshotHashes, h)
	}
	encoded, err := chatvis.EncodeArtifact(art)
	if err != nil {
		return err
	}
	artHash, err := store.Put(encoded, "application/json")
	if err != nil {
		return err
	}
	tr.view.ArtifactHash = artHash
	return nil
}

// finishLocked moves a turn to a terminal state, persists the session
// record and emits the stored event. Callers hold s.mu.
func (s *SvcSession) finishLocked(tr *turnRec, status JobStatus, errMsg string) {
	tr.view.Status = status
	tr.view.Error = errMsg
	now := time.Now()
	tr.view.Finished = &now
	close(tr.done)
	s.m.turnsTotal.Add(1)
	if w := s.m.wal; w != nil {
		switch status {
		case StatusCanceled:
			// Shutdown cancellation: the result was never delivered, so
			// the WAL entry stays pending and replays on the next boot.
		case StatusFailed:
			_ = w.Failed(cluster.KindTurn, s.ID, tr.view.ID, errMsg)
		default:
			_ = w.Completed(cluster.KindTurn, s.ID, tr.view.ID)
		}
	}
	if s.m.store != nil {
		_ = s.m.store.PutSessionRecord(s.recordLocked())
	}
	s.broadcastLocked(map[string]any{
		"type": "turn-stored", "turn": tr.view.Index, "status": status,
		"plan_hash": tr.view.PlanHash, "artifact_hash": tr.view.ArtifactHash,
		"executions_delta": tr.view.ExecutionsDelta,
		"trace_id":         tr.view.TraceID,
	})
}

// recordLocked renders the durable session record. Callers hold s.mu.
func (s *SvcSession) recordLocked() *SessionRecord {
	r := &SessionRecord{
		ID: s.ID, Request: s.Req,
		PlanHash: s.planHash, Plan: s.planJSON,
		Created: s.Created, Updated: time.Now(),
	}
	for _, tr := range s.turns {
		r.Turns = append(r.Turns, tr.view)
	}
	return r
}

// View renders the session (turns included) for the HTTP API.
func (s *SvcSession) View() SessionView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := SessionView{
		ID: s.ID, Request: s.Req,
		PlanHash: s.planHash, Plan: s.planJSON,
		Created: s.Created,
	}
	for _, tr := range s.turns {
		v.Turns = append(v.Turns, tr.view)
	}
	return v
}

// TurnView returns one turn's view by id.
func (s *SvcSession) TurnView(turnID string) (TurnView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tr := range s.turns {
		if tr.view.ID == turnID {
			return tr.view, true
		}
	}
	return TurnView{}, false
}

// Subscribe opens an SSE event channel; the returned cancel function
// unsubscribes. Slow consumers drop events rather than stalling turns.
func (s *SvcSession) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 64)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	s.m.sseSubs.Add(1)
	return ch, func() {
		s.mu.Lock()
		if _, ok := s.subs[ch]; ok {
			delete(s.subs, ch)
			close(ch)
		}
		s.mu.Unlock()
		s.m.sseSubs.Add(-1)
	}
}

// broadcastEvent forwards chatvis session events to subscribers.
func (s *SvcSession) broadcastEvent(ev chatvis.Event) {
	s.broadcast(ev)
}

func (s *SvcSession) broadcast(payload any) {
	s.mu.Lock()
	s.broadcastLocked(payload)
	s.mu.Unlock()
}

// broadcastLocked fans a JSON event out to every subscriber. Callers
// hold s.mu.
func (s *SvcSession) broadcastLocked(payload any) {
	if len(s.subs) == 0 {
		return
	}
	blob, err := json.Marshal(payload)
	if err != nil {
		return
	}
	frame := []byte("data: " + string(blob) + "\n\n")
	for ch := range s.subs {
		select {
		case ch <- frame:
		default: // slow consumer: drop
		}
	}
}
