package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chatvis/internal/chatvis"
)

const sessionIsoPrompt = "Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename iso.png. The rendered view and saved screenshot should be 320 x 180 pixels."

// newTestSessions wires a real store + production session factory
// against the stub "oracle" profile.
func newTestSessions(t *testing.T) (*Sessions, *Store) {
	t.Helper()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	factory := NewSessionFactory(PipelineConfig{
		DataDir: t.TempDir(),
		OutDir:  t.TempDir(),
	})
	return NewSessions(store, factory), store
}

func waitTurn(t *testing.T, s *SvcSession, turnID string) TurnView {
	t.Helper()
	done, ok := s.TurnDone(turnID)
	if !ok {
		t.Fatalf("unknown turn %s", turnID)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("turn %s never finished", turnID)
	}
	view, _ := s.TurnView(turnID)
	return view
}

// TestServiceSessionTwoTurnsIncremental drives the session manager end
// to end: create → first turn → edit turn, asserting the edit re-ran
// only the changed stage and that identical edit submissions coalesce.
func TestServiceSessionTwoTurnsIncremental(t *testing.T) {
	m, _ := newTestSessions(t)
	sess, err := m.Create(SessionRequest{Model: "oracle", Width: 320, Height: 180})
	if err != nil {
		t.Fatal(err)
	}

	v1, outcome, err := sess.SubmitTurn(TurnRequest{Prompt: sessionIsoPrompt})
	if err != nil || outcome != SubmissionNew {
		t.Fatalf("turn 1 submit: %v %v", outcome, err)
	}
	v1 = waitTurn(t, sess, v1.ID)
	if v1.Status != StatusSucceeded || !v1.Success {
		t.Fatalf("turn 1 = %s (%s)", v1.Status, v1.Error)
	}
	if v1.PlanHash == "" || v1.ScriptHash == "" || v1.ArtifactHash == "" {
		t.Fatalf("turn 1 missing artifact hashes: %+v", v1)
	}

	v2, outcome, err := sess.SubmitTurn(TurnRequest{Prompt: "Raise the isovalue to 0.7."})
	if err != nil || outcome != SubmissionNew {
		t.Fatalf("turn 2 submit: %v %v", outcome, err)
	}
	v2 = waitTurn(t, sess, v2.ID)
	if v2.Status != StatusSucceeded || !v2.Success {
		t.Fatalf("turn 2 = %s (%s)", v2.Status, v2.Error)
	}
	if v2.ParentPlanHash != v1.PlanHash {
		t.Errorf("turn 2 parent = %s, want %s", v2.ParentPlanHash, v1.PlanHash)
	}
	// The incremental pin at the service layer: one recomputed stage.
	if v2.ExecutionsDelta != 1 {
		t.Errorf("turn 2 executions delta = %d, want 1", v2.ExecutionsDelta)
	}
	if len(v2.ChangedStages) == 0 {
		t.Error("turn 2 reports no changed stages")
	}

	// A reworded identical edit against the *new* parent is a new turn;
	// the exact same meaning against the same parent coalesces.
	v3, outcome, err := sess.SubmitTurn(TurnRequest{Prompt: "Set the isovalue to 0.9."})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmissionNew {
		t.Fatalf("fresh edit coalesced unexpectedly")
	}
	dup, outcome, err := sess.SubmitTurn(TurnRequest{Prompt: "Raise the isovalue to 0.9."})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmissionCoalesced || dup.ID != v3.ID {
		t.Errorf("reworded duplicate = %v (%s vs %s), want coalesced", outcome, dup.ID, v3.ID)
	}
	waitTurn(t, sess, v3.ID)

	if got := m.Snapshot().Turns; got != 3 {
		t.Errorf("turns total = %d, want 3", got)
	}
}

// TestServiceSessionSurvivesRestart: a new Sessions registry over the
// same store restores the session and continues the conversation from
// the persisted plan.
func TestServiceSessionSurvivesRestart(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dataDir, outDir := t.TempDir(), t.TempDir()
	factory := NewSessionFactory(PipelineConfig{DataDir: dataDir, OutDir: outDir})

	m1 := NewSessions(store, factory)
	sess, err := m1.Create(SessionRequest{Model: "oracle", Width: 320, Height: 180})
	if err != nil {
		t.Fatal(err)
	}
	v1, _, err := sess.SubmitTurn(TurnRequest{Prompt: sessionIsoPrompt})
	if err != nil {
		t.Fatal(err)
	}
	v1 = waitTurn(t, sess, v1.ID)
	if !v1.Success {
		t.Fatalf("turn 1 failed: %s", v1.Error)
	}
	planHash := sess.View().PlanHash

	// "Restart": a fresh registry over the same store.
	m2 := NewSessions(store, NewSessionFactory(PipelineConfig{DataDir: dataDir, OutDir: outDir}))
	if restored := m2.Restore(); restored != 1 {
		t.Fatalf("restored %d sessions, want 1", restored)
	}
	back, ok := m2.Get(sess.ID)
	if !ok {
		t.Fatal("restored session not found by id")
	}
	bv := back.View()
	if bv.PlanHash != planHash {
		t.Errorf("restored plan hash = %s, want %s", bv.PlanHash, planHash)
	}
	if len(bv.Turns) != 1 || bv.Turns[0].Status != StatusSucceeded {
		t.Fatalf("restored turns = %+v", bv.Turns)
	}

	// The conversation continues: an edit against the restored plan.
	v2, _, err := back.SubmitTurn(TurnRequest{Prompt: "Raise the isovalue to 0.7."})
	if err != nil {
		t.Fatal(err)
	}
	v2 = waitTurn(t, back, v2.ID)
	if v2.Status != StatusSucceeded || !v2.Success {
		t.Fatalf("post-restart turn = %s (%s)", v2.Status, v2.Error)
	}
	if v2.ParentPlanHash != planHash {
		t.Errorf("post-restart parent = %s, want %s", v2.ParentPlanHash, planHash)
	}
	if v2.Index != 2 {
		t.Errorf("post-restart turn index = %d, want 2", v2.Index)
	}
	// New sessions on the restored registry do not collide with old ids.
	fresh, err := m2.Create(SessionRequest{Model: "oracle"})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == sess.ID {
		t.Errorf("restored registry reissued id %s", fresh.ID)
	}
}

// TestSessionHTTPEndpointsAndMetrics covers the HTTP surface: create,
// submit turns, fetch state, and the session metrics in Prometheus
// scrape format (satellite: scrape-format test alongside the queue
// histogram).
func TestSessionHTTPEndpointsAndMetrics(t *testing.T) {
	m, store := newTestSessions(t)
	queue := newTestQueueForSessions(t, store)
	defer queue.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(queue, store, nil).WithSessions(m).Handler())
	defer srv.Close()

	// Create.
	resp, err := http.Post(srv.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"model":"oracle","width":320,"height":180}`))
	if err != nil {
		t.Fatal(err)
	}
	var created SessionView
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("POST /v1/sessions = %d %+v", resp.StatusCode, created)
	}

	// Unknown model is rejected up front.
	resp, err = http.Post(srv.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"model":"gpt-17"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model = %d, want 400", resp.StatusCode)
	}

	// Turn 1 over HTTP.
	body, _ := json.Marshal(TurnRequest{Prompt: sessionIsoPrompt})
	resp, err = http.Post(srv.URL+"/v1/sessions/"+created.ID+"/turns", "application/json",
		strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var turn submitTurnResponse
	if err := json.NewDecoder(resp.Body).Decode(&turn); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || turn.Submission != SubmissionNew {
		t.Fatalf("POST turn = %d %+v", resp.StatusCode, turn)
	}

	// Poll the turn to completion.
	deadline := time.Now().Add(30 * time.Second)
	var tv TurnView
	for {
		if time.Now().After(deadline) {
			t.Fatalf("turn stuck in %s", tv.Status)
		}
		resp, err := http.Get(srv.URL + "/v1/sessions/" + created.ID + "/turns/" + turn.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&tv)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if tv.Status.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tv.Status != StatusSucceeded || !tv.Success {
		t.Fatalf("turn finished %s (%s)", tv.Status, tv.Error)
	}

	// Session view inlines plan + turns.
	resp, err = http.Get(srv.URL + "/v1/sessions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	var view SessionView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.PlanHash == "" || len(view.Plan) == 0 || len(view.Turns) != 1 {
		t.Fatalf("session view = %+v", view)
	}

	// Metrics: the three session series, in scrape format with TYPE
	// lines, alongside the existing queue histogram.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE chatvis_sessions_active gauge",
		"chatvis_sessions_active 1",
		"# TYPE chatvis_session_turns_total counter",
		"chatvis_session_turns_total 1",
		"# TYPE chatvis_sse_subscribers gauge",
		"chatvis_sse_subscribers 0",
		"# TYPE chatvis_job_duration_seconds histogram",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSessionSSEStreamsEvents subscribes to the event stream while an
// edit turn runs and asserts stage events arrive.
func TestSessionSSEStreamsEvents(t *testing.T) {
	m, store := newTestSessions(t)
	queue := newTestQueueForSessions(t, store)
	defer queue.Shutdown(context.Background())
	srv := httptest.NewServer(NewServer(queue, store, nil).WithSessions(m).Handler())
	defer srv.Close()

	sess, err := m.Create(SessionRequest{Model: "oracle", Width: 320, Height: 180})
	if err != nil {
		t.Fatal(err)
	}
	v1, _, err := sess.SubmitTurn(TurnRequest{Prompt: sessionIsoPrompt})
	if err != nil {
		t.Fatal(err)
	}
	waitTurn(t, sess, v1.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/sessions/"+sess.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Drive an edit turn while subscribed.
	if _, _, err := sess.SubmitTurn(TurnRequest{Prompt: "Raise the isovalue to 0.7."}); err != nil {
		t.Fatal(err)
	}

	scanner := bufio.NewScanner(resp.Body)
	var types []string
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		types = append(types, ev.Type)
		if ev.Type == "turn-stored" {
			break
		}
	}
	joined := strings.Join(types, ",")
	for _, want := range []string{"snapshot", "turn-started", "stage", "turn-finished", "turn-stored"} {
		if !strings.Contains(joined, want) {
			t.Errorf("SSE stream missing %q (got %s)", want, joined)
		}
	}
}

// TestTurnKeySemantics pins the coalescing identity: rewordings of one
// edit share a key; different parents or different meanings do not.
func TestTurnKeySemantics(t *testing.T) {
	parent := strings.Repeat("ab", 32)
	a := TurnKey(parent, "Raise the isovalue to 0.7.")
	b := TurnKey(parent, "Set the isovalue to 0.7.")
	if a != b {
		t.Error("reworded identical edits got different turn keys")
	}
	if TurnKey(parent, "Raise the isovalue to 0.9.") == a {
		t.Error("different edits share a turn key")
	}
	if TurnKey(strings.Repeat("cd", 32), "Raise the isovalue to 0.7.") == a {
		t.Error("different parent plans share a turn key")
	}
	// First turns key on the intended plan, so rewordings of the same
	// request also coalesce.
	f1 := TurnKey("", sessionIsoPrompt)
	f2 := TurnKey("", strings.Replace(sessionIsoPrompt, "Please generate", "Generate", 1))
	if f1 != f2 {
		t.Error("equal-meaning first turns got different keys")
	}
}

// newTestQueueForSessions builds a minimal queue (required by
// NewServer) that never executes anything in these tests.
func newTestQueueForSessions(t *testing.T, store *Store) *Queue {
	t.Helper()
	q, err := NewQueue(QueueOptions{
		Workers: 1,
		Pipeline: func(ctx context.Context, req JobRequest, jobID string) (*chatvis.Artifact, error) {
			panic("unused")
		},
		Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}
