// Package service is the chatvisd serving subsystem: an asynchronous
// job queue running ChatVis pipelines on a worker pool, request
// coalescing keyed by a content hash of the full pipeline input, and a
// content-addressed artifact store holding generated scripts,
// screenshots and session traces.
//
// The flow:
//
//	POST /v1/jobs ── Key(req) ──┬─ store hit ────────→ finished Job
//	                            ├─ in-flight match ──→ shared Job (singleflight)
//	                            └─ miss ──→ Queue ──→ worker ──→ pipeline
//	                                                     │
//	                                    Store ←── script/screens/trace
//
// so N identical concurrent submissions share one pipeline execution,
// and repeat submissions are served from the store without touching an
// LLM at all.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/llm"
	"chatvis/internal/obs"
	"chatvis/internal/plan"
	"chatvis/internal/pvsim"
)

// JobRequest is one script-generation request, the POST /v1/jobs body.
// Every field participates in the coalescing key: two requests coalesce
// only if the whole pipeline input — prompt, model, options and
// resolution — is identical.
type JobRequest struct {
	// Prompt is the natural-language visualization request (required).
	Prompt string `json:"prompt"`
	// Model names the LLM backend (default "gpt-4").
	Model string `json:"model,omitempty"`
	// Width, Height of the rendered view (default 480x270).
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// MaxIterations bounds the correction loop (default 5).
	MaxIterations int `json:"max_iterations,omitempty"`
	// FewShot truncates the example library (0 = full, negative = none).
	FewShot int `json:"few_shot,omitempty"`
	// NoRewrite skips the prompt-generation stage.
	NoRewrite bool `json:"no_rewrite,omitempty"`
	// Unassisted runs the bare model with no assistant loop.
	Unassisted bool `json:"unassisted,omitempty"`
}

// withDefaults normalizes a request so that spelling a default
// explicitly and omitting it produce the same coalescing key.
func (r JobRequest) withDefaults() JobRequest {
	if r.Model == "" {
		r.Model = "gpt-4"
	}
	if r.Width <= 0 || r.Height <= 0 {
		r.Width, r.Height = 480, 270
	}
	if r.MaxIterations <= 0 {
		r.MaxIterations = 5
	}
	return r
}

// Validate rejects requests the pipeline cannot run.
func (r JobRequest) Validate() error {
	if strings.TrimSpace(r.Prompt) == "" {
		return fmt.Errorf("service: prompt is required")
	}
	return nil
}

// keyVersion tags the hash layout; bump it whenever a field is added or
// its derivation changes so old stored results cannot be served for a
// key with different meaning. v2: the prompt field coalesces on the
// normalized intended-plan hash instead of raw prompt text.
const keyVersion = "chatvis-job-v2"

// promptKeyField derives the coalescing identity of a prompt: the
// canonical hash of the intended plan parsed from it, so two textually
// different requests that mean the same pipeline — reworded steps,
// reordered sentences, different whitespace — share one execution. The
// derivation is safe because the whole pipeline is deterministic in the
// parsed spec: identical specs produce identical artifacts for a given
// model and options. The canonical spec encoding is appended alongside
// the plan hash because the intended plan deliberately abstracts a few
// spec details the ungrounded writers still react to (e.g. the
// streamline vector array, which grounded generation leaves to engine
// auto-detection) — two specs must never coalesce unless *every* field
// agrees. Prompts the intent parser extracts no operations from fall
// back to their raw text.
func promptKeyField(prompt string) string {
	spec := llm.ParseIntent(prompt)
	if len(spec.Ops) == 0 {
		return "prompt:" + prompt
	}
	p := plan.Normalize(llm.WritePlan(spec), pvsim.PlanSchema())
	if len(p.Stages) == 0 {
		return "prompt:" + prompt
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return "prompt:" + prompt
	}
	return "plan:" + p.Hash() + "|spec:" + string(specJSON)
}

// Key returns the request's content address: a SHA-256 over every
// pipeline input, with each field length-framed so that no two distinct
// (plan, model, options, resolution) tuples can collide by field
// concatenation. Requests with the same *meaning* — and only those —
// share a key, which is what the queue coalesces on and the store
// indexes by.
func Key(r JobRequest) string {
	r = r.withDefaults()
	h := sha256.New()
	writeField := func(s string) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeField(keyVersion)
	writeField(promptKeyField(r.Prompt))
	writeField(r.Model)
	writeField(fmt.Sprintf("%dx%d", r.Width, r.Height))
	writeField(fmt.Sprintf("iter=%d fewshot=%d rewrite=%t unassisted=%t",
		r.MaxIterations, r.FewShot, !r.NoRewrite, r.Unassisted))
	return hex.EncodeToString(h.Sum(nil))
}

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusSucceeded JobStatus = "succeeded"
	StatusFailed    JobStatus = "failed"
	StatusCanceled  JobStatus = "canceled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCanceled
}

// Job is one tracked execution. Multiple identical submissions map to
// the same Job (coalescing); a Job whose key is already in the store is
// born succeeded without ever entering the queue.
type Job struct {
	// ID is the job handle ("job-<n>"), unique per daemon lifetime.
	ID string
	// Key is the request's content address (shared by coalesced jobs).
	Key string
	// Req is the normalized request.
	Req JobRequest
	// TraceID names the distributed trace the submission joined ("" when
	// the submitter was untraced, e.g. WAL replay).
	TraceID string

	// traceCtx carries the submitter's observability state (tracer +
	// span identity) with no cancellation, so worker spans land in the
	// originating request's trace after the HTTP handler returns.
	traceCtx context.Context
	// waitSpan times queue wait: started at enqueue, ended at pickup.
	waitSpan *obs.Span

	mu       sync.Mutex
	status   JobStatus
	errMsg   string
	result   *Result
	cancelFn func()

	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	// coalesced counts submissions beyond the first that attached to
	// this job while it was in flight.
	coalesced int
	// cancelVotes counts Cancel calls; the shared execution is only
	// canceled once every attached submission has withdrawn.
	cancelVotes int
	// fromStore marks jobs answered by a store lookup (no execution).
	fromStore bool

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// Status returns the job's current state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the failure message ("" unless failed).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Result returns the stored outcome (nil until succeeded).
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// FromStore reports whether the job was served by a store lookup.
func (j *Job) FromStore() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fromStore
}

// Coalesced returns how many extra submissions shared this job.
func (j *Job) Coalesced() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.coalesced
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel withdraws one submitter's interest in the job. Because
// identical submissions coalesce onto one Job, the shared execution is
// only aborted once every attached submission (the original plus each
// coalesced one) has canceled — one client withdrawing must not kill
// other clients' in-flight work. Once all have withdrawn: queued jobs
// are marked canceled before a worker picks them up; running jobs have
// their context canceled.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.cancelVotes++
	if j.cancelVotes <= j.coalesced {
		// Other submitters are still waiting on this execution.
		j.mu.Unlock()
		return
	}
	cancel := j.cancelFn
	if j.status == StatusQueued {
		j.finishTerminalLocked(StatusCanceled, "canceled before execution")
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// finishTerminalLocked transitions to a terminal state exactly once.
// Callers must hold j.mu.
func (j *Job) finishTerminalLocked(s JobStatus, errMsg string) {
	if j.status.Terminal() {
		return
	}
	j.status = s
	j.errMsg = errMsg
	j.finishedAt = time.Now()
	close(j.done)
}

// View is a point-in-time JSON projection of a Job, the GET
// /v1/jobs/{id} response body.
type View struct {
	ID        string     `json:"id"`
	Key       string     `json:"key"`
	Status    JobStatus  `json:"status"`
	Model     string     `json:"model"`
	TraceID   string     `json:"trace_id,omitempty"`
	Error     string     `json:"error,omitempty"`
	Coalesced int        `json:"coalesced,omitempty"`
	FromStore bool       `json:"from_store,omitempty"`
	Submitted time.Time  `json:"submitted_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
	// Result is present once the job succeeds: artifact hashes plus the
	// per-stage session trace.
	Result *Result `json:"result,omitempty"`
}

// Snapshot renders the job as a View.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:        j.ID,
		Key:       j.Key,
		Status:    j.status,
		Model:     j.Req.Model,
		TraceID:   j.TraceID,
		Error:     j.errMsg,
		Coalesced: j.coalesced,
		FromStore: j.fromStore,
		Submitted: j.submittedAt,
		Result:    j.result,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.Started = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.Finished = &t
	}
	return v
}

// Result is the stored outcome of one executed pipeline: what the store
// persists under the job key and what GET /v1/jobs/{id} embeds. Large
// payloads (script text, screenshots, the full artifact JSON) live in
// the content-addressed object store and are referenced by hash.
type Result struct {
	// Key is the job key the result is indexed under.
	Key string `json:"key"`
	// Model that served the pipeline.
	Model string `json:"model"`
	// Success mirrors Artifact.Success.
	Success bool `json:"success"`
	// Iterations the correction loop used.
	Iterations int `json:"iterations"`
	// ScriptHash addresses the final script text in the object store.
	ScriptHash string `json:"script_hash"`
	// ScreenshotHashes address the PNG screenshots, in save order.
	ScreenshotHashes []string `json:"screenshot_hashes,omitempty"`
	// ArtifactHash addresses the full serialized chatvis.Artifact.
	ArtifactHash string `json:"artifact_hash"`
	// PlanHash is the canonical hash of the final script's normalized
	// plan ("" when the script did not compile to one).
	PlanHash string `json:"plan_hash,omitempty"`
	// Plan is the normalized plan JSON itself, inlined so
	// GET /v1/jobs/{id} serves the typed pipeline DAG alongside the
	// artifact hashes.
	Plan json.RawMessage `json:"plan,omitempty"`
	// TraceID names the distributed trace of the execution that produced
	// this result, retrievable via GET /v1/traces/{id} while retained.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the per-stage session record (durations, usage, cache
	// provenance), inlined for GET /v1/jobs/{id}.
	Trace chatvis.Trace `json:"trace"`
	// CreatedAt is when the pipeline finished.
	CreatedAt time.Time `json:"created_at"`
}
