package service

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"chatvis/internal/obs"
)

// Trace API:
//
//	GET /v1/traces           list retained traces (?min_ms, ?errors, ?limit)
//	GET /v1/traces/{id}      one trace's span tree as JSON
//
// A trace that crossed nodes is recorded piecewise — each node retains
// the spans it produced. GET /v1/traces/{id} on any node therefore
// fans out to the fleet (guarded by the forwarded marker so peers
// answer only locally) and merges the pieces into one span list, which
// is how a single trace ID shows queue wait on the entry node and the
// pipeline execution on the owner.

func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, r, http.StatusServiceUnavailable, "tracing is not enabled on this daemon")
		return
	}
	var minDur time.Duration
	if ms, err := strconv.Atoi(r.URL.Query().Get("min_ms")); err == nil && ms > 0 {
		minDur = time.Duration(ms) * time.Millisecond
	}
	errorsOnly := r.URL.Query().Get("errors") == "true"
	limit := 100
	if n, err := strconv.Atoi(r.URL.Query().Get("limit")); err == nil && n > 0 {
		limit = n
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node":   s.tracer.Node(),
		"traces": s.tracer.List(minDur, errorsOnly, limit),
	})
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, r, http.StatusServiceUnavailable, "tracing is not enabled on this daemon")
		return
	}
	id := r.PathValue("id")
	local, found := s.tracer.Get(id)
	if !forwarded(r) {
		// Collect the trace's remote pieces from every live peer; a
		// cross-node request recorded spans wherever it executed.
		for _, remote := range s.collectPeerTraces(r, id) {
			local = mergeTraces(local, remote)
			found = true
		}
	}
	if !found {
		writeError(w, r, http.StatusNotFound, "unknown trace %q", id)
		return
	}
	writeJSON(w, http.StatusOK, local)
}

// collectPeerTraces asks each live peer for its piece of the trace.
// The forwarded marker stops peers from fanning out again.
func (s *Server) collectPeerTraces(r *http.Request, id string) []obs.TraceData {
	if s.cluster == nil {
		return nil
	}
	var out []obs.TraceData
	for _, peer := range s.cluster.Peers() {
		if s.cluster.IsSelf(peer) || !s.cluster.Alive(peer.ID) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			"http://"+peer.Addr+"/v1/traces/"+id, nil)
		if err != nil {
			continue
		}
		req.Header.Set(ForwardedHeader, s.cluster.Self().ID)
		resp, err := s.cluster.Client().Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			var td obs.TraceData
			if json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&td) == nil && td.TraceID == id {
				out = append(out, td)
			}
		}
		resp.Body.Close()
	}
	return out
}

// mergeTraces folds a peer's piece of a trace into the local one:
// union of spans (deduplicated by span ID), overall start/duration
// re-derived from the merged set.
func mergeTraces(a, b obs.TraceData) obs.TraceData {
	if a.TraceID == "" {
		return b
	}
	seen := make(map[string]bool, len(a.Spans))
	for _, sp := range a.Spans {
		seen[sp.SpanID] = true
	}
	for _, sp := range b.Spans {
		if !seen[sp.SpanID] {
			a.Spans = append(a.Spans, sp)
		}
	}
	sort.SliceStable(a.Spans, func(i, j int) bool { return a.Spans[i].Start.Before(a.Spans[j].Start) })
	a.Errored = a.Errored || b.Errored
	if len(a.Spans) > 0 {
		a.Start = a.Spans[0].Start
		a.Root = a.Spans[0].Name
		end := a.Start
		for _, sp := range a.Spans {
			if e := sp.Start.Add(sp.Duration); e.After(end) {
				end = e
			}
		}
		a.Duration = end.Sub(a.Start)
	}
	return a
}
