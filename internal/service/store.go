package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is the content-addressed artifact store: opaque objects
// (scripts, screenshots, serialized artifacts) keyed by the SHA-256 of
// their bytes, plus a result index keyed by job key. Objects live on
// the filesystem (two-level fan-out directories, written atomically via
// rename); an in-memory index makes lookups and existence checks cheap.
// The store is safe for concurrent use and survives daemon restarts:
// NewStore reloads both indexes from disk.
type Store struct {
	dir string

	mu      sync.RWMutex
	objects map[string]ObjectInfo
	results map[string]*Result
	bytes   int64
}

// ObjectInfo describes one stored object.
type ObjectInfo struct {
	// Hash is the hex SHA-256 of the content.
	Hash string `json:"hash"`
	// Size in bytes.
	Size int64 `json:"size"`
	// ContentType is the MIME type recorded at Put time.
	ContentType string `json:"content_type"`
}

// objectsSubdir, resultsSubdir and sessionsSubdir are the on-disk layout
// roots.
const (
	objectsSubdir  = "objects"
	resultsSubdir  = "results"
	sessionsSubdir = "sessions"
)

// NewStore opens (creating if needed) a store rooted at dir and loads
// the indexes of any objects and results already on disk.
func NewStore(dir string) (*Store, error) {
	s := &Store{
		dir:     dir,
		objects: map[string]ObjectInfo{},
		results: map[string]*Result{},
	}
	for _, sub := range []string{objectsSubdir, resultsSubdir, sessionsSubdir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("service: creating store: %w", err)
		}
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load rebuilds the in-memory indexes from the filesystem.
func (s *Store) load() error {
	objRoot := filepath.Join(s.dir, objectsSubdir)
	err := filepath.Walk(objRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		// Layout: objects/<hh>/<hash>.<type-tag>
		base := filepath.Base(path)
		hash, tag, _ := strings.Cut(base, ".")
		if !validHash(hash) {
			return nil
		}
		s.objects[hash] = ObjectInfo{
			Hash:        hash,
			Size:        info.Size(),
			ContentType: typeForTag(tag),
		}
		s.bytes += info.Size()
		return nil
	})
	if err != nil {
		return fmt.Errorf("service: loading object index: %w", err)
	}
	resRoot := filepath.Join(s.dir, resultsSubdir)
	entries, err := os.ReadDir(resRoot)
	if err != nil {
		return fmt.Errorf("service: loading result index: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(resRoot, e.Name()))
		if err != nil {
			continue // a torn write from a crashed daemon; skip it
		}
		var r Result
		if json.Unmarshal(b, &r) != nil || r.Key == "" {
			continue
		}
		s.results[r.Key] = &r
	}
	return nil
}

func validHash(h string) bool {
	if len(h) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(h)
	return err == nil
}

// typeTags maps content types to the file-extension tag objects carry on
// disk, so the index can be rebuilt without a sidecar metadata file.
var typeTags = map[string]string{
	"text/x-python":    "py",
	"image/png":        "png",
	"application/json": "json",
}

func tagForType(ct string) string {
	if t, ok := typeTags[ct]; ok {
		return t
	}
	return "bin"
}

func typeForTag(tag string) string {
	for ct, t := range typeTags {
		if t == tag {
			return ct
		}
	}
	return "application/octet-stream"
}

// HashBytes returns the store's content address for a byte string.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func (s *Store) objectPath(hash, ct string) string {
	return filepath.Join(s.dir, objectsSubdir, hash[:2], hash+"."+tagForType(ct))
}

// Put stores content under its SHA-256 address and returns the hash.
// Storing the same bytes twice is a no-op (that is the point of content
// addressing): the existing object is reused whatever its content type.
func (s *Store) Put(content []byte, contentType string) (string, error) {
	hash := HashBytes(content)
	s.mu.RLock()
	_, exists := s.objects[hash]
	s.mu.RUnlock()
	if exists {
		return hash, nil
	}
	path := s.objectPath(hash, contentType)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("service: storing object: %w", err)
	}
	// Write-then-rename keeps concurrent writers of the same content
	// from observing torn objects.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return "", fmt.Errorf("service: storing object: %w", err)
	}
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("service: storing object: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("service: storing object: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("service: storing object: %w", err)
	}
	s.mu.Lock()
	if _, dup := s.objects[hash]; !dup {
		s.objects[hash] = ObjectInfo{Hash: hash, Size: int64(len(content)), ContentType: contentType}
		s.bytes += int64(len(content))
	}
	s.mu.Unlock()
	return hash, nil
}

// Get returns the content and metadata for a hash. An index miss falls
// back to the filesystem: in cluster mode several nodes share one store
// directory, and objects written by a peer after this node loaded its
// index are still addressable.
func (s *Store) Get(hash string) ([]byte, ObjectInfo, error) {
	s.mu.RLock()
	info, ok := s.objects[hash]
	s.mu.RUnlock()
	if !ok {
		info, ok = s.indexFromDisk(hash)
	}
	if !ok {
		return nil, ObjectInfo{}, fmt.Errorf("service: unknown object %s", hash)
	}
	b, err := os.ReadFile(s.objectPath(hash, info.ContentType))
	if err != nil {
		return nil, ObjectInfo{}, fmt.Errorf("service: reading object %s: %w", hash, err)
	}
	return b, info, nil
}

// Has reports whether the hash is stored.
func (s *Store) Has(hash string) bool {
	s.mu.RLock()
	_, ok := s.objects[hash]
	s.mu.RUnlock()
	if !ok {
		_, ok = s.indexFromDisk(hash)
	}
	return ok
}

// indexFromDisk looks a hash up on the filesystem (any known type tag)
// and adds it to the index on a hit. This is the shared-store path: a
// peer node may have written the object after our index loaded.
func (s *Store) indexFromDisk(hash string) (ObjectInfo, bool) {
	if !validHash(hash) {
		return ObjectInfo{}, false
	}
	for ct := range typeTags {
		fi, err := os.Stat(s.objectPath(hash, ct))
		if err != nil {
			continue
		}
		info := ObjectInfo{Hash: hash, Size: fi.Size(), ContentType: ct}
		s.mu.Lock()
		if _, dup := s.objects[hash]; !dup {
			s.objects[hash] = info
			s.bytes += fi.Size()
		}
		s.mu.Unlock()
		return info, true
	}
	return ObjectInfo{}, false
}

// PutResult indexes a finished pipeline's result under its job key and
// persists it so restarts keep serving it.
func (s *Store) PutResult(r *Result) error {
	if r == nil || r.Key == "" {
		return fmt.Errorf("service: result must carry a job key")
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encoding result: %w", err)
	}
	path := filepath.Join(s.dir, resultsSubdir, r.Key+".json")
	if err := atomicWriteFile(path, b); err != nil {
		return fmt.Errorf("service: storing result: %w", err)
	}
	s.mu.Lock()
	s.results[r.Key] = r
	s.mu.Unlock()
	return nil
}

// GetResult returns the stored result for a job key, if any. Like Get,
// an index miss re-checks the filesystem so nodes sharing one store
// directory see each other's results (fleet-wide store hits).
func (s *Store) GetResult(key string) (*Result, bool) {
	s.mu.RLock()
	r, ok := s.results[key]
	s.mu.RUnlock()
	if ok {
		return r, true
	}
	if !validHash(key) {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(s.dir, resultsSubdir, key+".json"))
	if err != nil {
		return nil, false
	}
	var res Result
	if json.Unmarshal(b, &res) != nil || res.Key != key {
		return nil, false
	}
	s.mu.Lock()
	s.results[key] = &res
	s.mu.Unlock()
	return &res, true
}

// atomicWriteFile writes bytes via a temp file + rename so concurrent
// readers never observe a torn document.
func atomicWriteFile(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// PutSessionRecord persists a conversational session's durable state
// (request, turn summaries, current plan) so sessions survive daemon
// restarts. The record is small; artifacts stay in the object store.
func (s *Store) PutSessionRecord(r *SessionRecord) error {
	if r == nil || r.ID == "" {
		return fmt.Errorf("service: session record must carry an id")
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encoding session record: %w", err)
	}
	path := filepath.Join(s.dir, sessionsSubdir, r.ID+".json")
	if err := atomicWriteFile(path, b); err != nil {
		return fmt.Errorf("service: storing session record: %w", err)
	}
	return nil
}

// GetSessionRecord loads one persisted session by id.
func (s *Store) GetSessionRecord(id string) (*SessionRecord, bool) {
	b, err := os.ReadFile(filepath.Join(s.dir, sessionsSubdir, id+".json"))
	if err != nil {
		return nil, false
	}
	var r SessionRecord
	if json.Unmarshal(b, &r) != nil || r.ID == "" {
		return nil, false
	}
	return &r, true
}

// ListSessionRecords loads every persisted session (restart recovery).
// Torn or unreadable records are skipped, like torn results.
func (s *Store) ListSessionRecords() []*SessionRecord {
	entries, err := os.ReadDir(filepath.Join(s.dir, sessionsSubdir))
	if err != nil {
		return nil
	}
	var out []*SessionRecord
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		if r, ok := s.GetSessionRecord(strings.TrimSuffix(e.Name(), ".json")); ok {
			out = append(out, r)
		}
	}
	return out
}

// Stats is a point-in-time store size summary for /metrics.
type Stats struct {
	Objects int
	Bytes   int64
	Results int
}

// Stats returns the current store sizes.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{Objects: len(s.objects), Bytes: s.bytes, Results: len(s.results)}
}
