package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/llm"
	"chatvis/internal/route"
)

// --- key construction --------------------------------------------------------

func TestKeyDistinctAcrossInputs(t *testing.T) {
	base := JobRequest{Prompt: "isosurface of var0 at 0.5"}
	variants := []JobRequest{
		base,
		{Prompt: "isosurface of var0 at 0.6"},
		{Prompt: "isosurface of var0 at 0.5", Model: "oracle"},
		{Prompt: "isosurface of var0 at 0.5", Width: 640, Height: 360},
		{Prompt: "isosurface of var0 at 0.5", Width: 1920, Height: 1080},
		{Prompt: "isosurface of var0 at 0.5", MaxIterations: 3},
		{Prompt: "isosurface of var0 at 0.5", FewShot: -1},
		{Prompt: "isosurface of var0 at 0.5", NoRewrite: true},
		{Prompt: "isosurface of var0 at 0.5", Unassisted: true},
	}
	seen := map[string]int{}
	for i, v := range variants {
		k := Key(v)
		if len(k) != 64 {
			t.Fatalf("key %d not a sha256 hex: %q", i, k)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variants %d and %d collide: %+v vs %+v", prev, i, variants[prev], v)
		}
		seen[k] = i
	}
}

func TestKeyNormalizesDefaults(t *testing.T) {
	implicit := JobRequest{Prompt: "p"}
	explicit := JobRequest{Prompt: "p", Model: "gpt-4", Width: 480, Height: 270, MaxIterations: 5}
	if Key(implicit) != Key(explicit) {
		t.Error("spelled-out defaults must produce the same key as omitted ones")
	}
	if Key(implicit) != Key(implicit) {
		t.Error("key must be deterministic")
	}
}

func TestKeyFieldFraming(t *testing.T) {
	// Length framing: moving bytes across a field boundary must change
	// the key even though the concatenation is identical.
	a := JobRequest{Prompt: "ab", Model: "cd"}
	b := JobRequest{Prompt: "abc", Model: "d"}
	if Key(a) == Key(b) {
		t.Error("field boundary shift must not collide")
	}
}

// --- store -------------------------------------------------------------------

func TestStoreRoundTripAndDedup(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("from paraview.simple import *\n")
	h1, err := s.Put(content, "text/x-python")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.Put(content, "text/x-python")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("same content, different hashes: %s vs %s", h1, h2)
	}
	if st := s.Stats(); st.Objects != 1 {
		t.Errorf("dedup failed: %d objects", st.Objects)
	}
	got, info, err := s.Get(h1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) || info.ContentType != "text/x-python" {
		t.Errorf("round trip mismatch: %q %q", got, info.ContentType)
	}
	if _, _, err := s.Get(strings.Repeat("0", 64)); err == nil {
		t.Error("unknown hash should fail")
	}

	res := &Result{Key: Key(JobRequest{Prompt: "p"}), Model: "gpt-4", Success: true, ScriptHash: h1}
	if err := s.PutResult(res); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory reloads both indexes.
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(h1) {
		t.Error("reloaded store lost the object index")
	}
	got2, info2, err := s2.Get(h1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, content) || info2.ContentType != "text/x-python" {
		t.Error("reloaded store serves wrong content or type")
	}
	r2, ok := s2.GetResult(res.Key)
	if !ok || r2.ScriptHash != h1 || !r2.Success {
		t.Errorf("reloaded store lost the result index: %+v", r2)
	}
}

// --- queue -------------------------------------------------------------------

// stubPipeline is a controllable PipelineFunc counting executions.
type stubPipeline struct {
	executions atomic.Int64
	// gate, when non-nil, blocks executions until released.
	gate chan struct{}
	// fail makes executions return an error.
	fail bool
	// block, when true, waits for ctx cancellation instead of returning.
	block bool
}

func (p *stubPipeline) run(ctx context.Context, req JobRequest, jobID string) (*chatvis.Artifact, error) {
	p.executions.Add(1)
	if p.gate != nil {
		select {
		case <-p.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if p.block {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if p.fail {
		return nil, fmt.Errorf("stub pipeline failure")
	}
	return &chatvis.Artifact{
		UserPrompt:  req.Prompt,
		FinalScript: "print('script for: " + req.Prompt + "')\n",
		Success:     true,
		Iterations:  []chatvis.Iteration{{Script: "s"}},
	}, nil
}

func newTestQueue(t *testing.T, p *stubPipeline, workers int) *Queue {
	t.Helper()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(QueueOptions{Workers: workers, Pipeline: p.run, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q.Shutdown(ctx)
	})
	return q
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s stuck in %s", j.ID, j.Status())
	}
}

func TestQueueRunsJobAndStoresResult(t *testing.T) {
	p := &stubPipeline{}
	q := newTestQueue(t, p, 2)
	job, outcome, err := q.Submit(JobRequest{Prompt: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmissionNew {
		t.Fatalf("outcome = %s", outcome)
	}
	waitJob(t, job)
	if job.Status() != StatusSucceeded {
		t.Fatalf("status = %s err = %s", job.Status(), job.Err())
	}
	res := job.Result()
	if res == nil || res.ScriptHash == "" || res.ArtifactHash == "" {
		t.Fatalf("result incomplete: %+v", res)
	}
	script, _, err := q.store.Get(res.ScriptHash)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(script), "script for: hello") {
		t.Errorf("stored script = %q", script)
	}
	encoded, _, err := q.store.Get(res.ArtifactHash)
	if err != nil {
		t.Fatal(err)
	}
	art, err := chatvis.DecodeArtifact(encoded)
	if err != nil {
		t.Fatal(err)
	}
	if art.UserPrompt != "hello" || !art.Success {
		t.Errorf("decoded artifact mismatch: %+v", art)
	}
}

func TestQueueCoalescesIdenticalSubmissions(t *testing.T) {
	p := &stubPipeline{gate: make(chan struct{})}
	q := newTestQueue(t, p, 4)

	const n = 16
	req := JobRequest{Prompt: "coalesce me"}
	first, outcome, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmissionNew {
		t.Fatalf("first submit = %s", outcome)
	}
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, out, err := q.Submit(req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if out != SubmissionCoalesced {
				t.Errorf("submit %d outcome = %s", i, out)
			}
			ids[i] = job.ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id != first.ID {
			t.Errorf("submission %d got job %s, want %s", i, id, first.ID)
		}
	}
	close(p.gate)
	waitJob(t, first)
	if got := p.executions.Load(); got != 1 {
		t.Errorf("executions = %d, want 1 (coalesced)", got)
	}
	if first.Coalesced() != n {
		t.Errorf("coalesced count = %d, want %d", first.Coalesced(), n)
	}

	// A repeat submission after completion is a store hit: no queueing,
	// no execution, immediately terminal.
	job2, out2, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != SubmissionStoreHit {
		t.Fatalf("repeat outcome = %s", out2)
	}
	if job2.Status() != StatusSucceeded || !job2.FromStore() {
		t.Errorf("store-hit job: status=%s fromStore=%v", job2.Status(), job2.FromStore())
	}
	if got := p.executions.Load(); got != 1 {
		t.Errorf("executions after store hit = %d, want 1", got)
	}
	// Distinct prompts never coalesce.
	other, out3, err := q.Submit(JobRequest{Prompt: "different"})
	if err != nil {
		t.Fatal(err)
	}
	if out3 != SubmissionNew || other.ID == first.ID {
		t.Errorf("distinct request coalesced: %s %s", out3, other.ID)
	}
	waitJob(t, other)
}

func TestQueueFailedJobAllowsRetry(t *testing.T) {
	p := &stubPipeline{fail: true}
	q := newTestQueue(t, p, 1)
	req := JobRequest{Prompt: "flaky"}
	job, _, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	if job.Status() != StatusFailed || job.Err() == "" {
		t.Fatalf("status = %s err = %q", job.Status(), job.Err())
	}
	// The failed job must not absorb the retry.
	p.fail = false
	retry, outcome, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmissionNew || retry.ID == job.ID {
		t.Errorf("retry after failure: outcome=%s id=%s (failed id %s)", outcome, retry.ID, job.ID)
	}
	waitJob(t, retry)
	if retry.Status() != StatusSucceeded {
		t.Errorf("retry status = %s", retry.Status())
	}
}

func TestQueueGracefulDrain(t *testing.T) {
	p := &stubPipeline{}
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(QueueOptions{Workers: 2, Pipeline: p.run, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 8; i++ {
		job, _, err := q.Submit(JobRequest{Prompt: fmt.Sprintf("drain-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	for _, j := range jobs {
		if j.Status() != StatusSucceeded {
			t.Errorf("job %s not drained: %s", j.ID, j.Status())
		}
	}
	if _, _, err := q.Submit(JobRequest{Prompt: "late"}); err != ErrQueueClosed {
		t.Errorf("submit after shutdown = %v, want ErrQueueClosed", err)
	}
}

func TestQueueForcedShutdownCancelsInFlight(t *testing.T) {
	p := &stubPipeline{block: true}
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(QueueOptions{Workers: 1, Pipeline: p.run, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	job, _, err := q.Submit(JobRequest{Prompt: "stuck"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up so cancellation targets a
	// running pipeline.
	deadline := time.Now().Add(5 * time.Second)
	for job.Status() != StatusRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); err == nil {
		t.Error("forced shutdown should report ctx error")
	}
	waitJob(t, job)
	if job.Status() != StatusCanceled {
		t.Errorf("in-flight job after forced shutdown = %s", job.Status())
	}
}

func TestJobCancelWhileQueued(t *testing.T) {
	p := &stubPipeline{gate: make(chan struct{})}
	q := newTestQueue(t, p, 1)
	// Occupy the single worker...
	blocker, _, err := q.Submit(JobRequest{Prompt: "occupy"})
	if err != nil {
		t.Fatal(err)
	}
	// ...so the second job sits queued when canceled.
	victim, _, err := q.Submit(JobRequest{Prompt: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	if victim.Status() != StatusCanceled {
		t.Fatalf("canceled queued job = %s", victim.Status())
	}
	close(p.gate)
	waitJob(t, blocker)
	if got := p.executions.Load(); got != 1 {
		t.Errorf("canceled job executed: %d executions", got)
	}
}

// --- HTTP API ----------------------------------------------------------------

func newTestServer(t *testing.T, p *stubPipeline) (*httptest.Server, *Queue) {
	t.Helper()
	q := newTestQueue(t, p, 4)
	srv := httptest.NewServer(NewServer(q, q.store, &llm.Metrics{}).Handler())
	t.Cleanup(srv.Close)
	return srv, q
}

func postJob(t *testing.T, url string, req JobRequest) (submitResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func pollJob(t *testing.T, base, id string) View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var v View
		if code := getJSON(t, base+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET job %s: %d", id, code)
		}
		if v.Status.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return View{}
}

func TestHTTPSubmitPollAndFetchArtifact(t *testing.T) {
	srv, _ := newTestServer(t, &stubPipeline{})
	sub, code := postJob(t, srv.URL, JobRequest{Prompt: "make an isosurface"})
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	if sub.ID == "" || sub.Key == "" || sub.Submission != SubmissionNew {
		t.Fatalf("submit response: %+v", sub)
	}
	v := pollJob(t, srv.URL, sub.ID)
	if v.Status != StatusSucceeded || v.Result == nil {
		t.Fatalf("job view: %+v", v)
	}
	if len(v.Result.Trace.Stages) != 0 {
		// The stub artifact has no trace stages; real pipelines fill it.
		t.Logf("trace: %+v", v.Result.Trace)
	}
	resp, err := http.Get(srv.URL + "/v1/artifacts/" + v.Result.ScriptHash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET artifact = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/x-python" {
		t.Errorf("artifact content type = %q", ct)
	}
	script, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(script), "make an isosurface") {
		t.Errorf("artifact body = %q", script)
	}
}

func TestHTTPCoalescing(t *testing.T) {
	p := &stubPipeline{gate: make(chan struct{})}
	srv, q := newTestServer(t, p)
	req := JobRequest{Prompt: "identical burst"}

	first, code := postJob(t, srv.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	const n = 12
	var wg sync.WaitGroup
	ids := make([]string, n)
	subs := make([]Submission, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, code := postJob(t, srv.URL, req)
			if code != http.StatusAccepted {
				t.Errorf("POST %d = %d", i, code)
				return
			}
			ids[i], subs[i] = sub.ID, sub.Submission
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if ids[i] != first.ID || subs[i] != SubmissionCoalesced {
			t.Errorf("burst %d: id=%s sub=%s (want %s coalesced)", i, ids[i], subs[i], first.ID)
		}
	}
	close(p.gate)
	pollJob(t, srv.URL, first.ID)
	if got := p.executions.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}

	// Repeat POST after completion: answered 200 from the store.
	again, code := postJob(t, srv.URL, req)
	if code != http.StatusOK || again.Submission != SubmissionStoreHit {
		t.Errorf("repeat POST: code=%d submission=%s", code, again.Submission)
	}
	snap := q.Snapshot()
	if snap.Coalesced != n || snap.StoreHits != 1 || snap.Executed != 1 {
		t.Errorf("metrics: %+v", snap)
	}
}

func TestHTTPValidationAndNotFound(t *testing.T) {
	srv, _ := newTestServer(t, &stubPipeline{})
	if _, code := postJob(t, srv.URL, JobRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty prompt = %d", code)
	}
	if _, code := postJob(t, srv.URL, JobRequest{Prompt: "p", Model: "nope"}); code != http.StatusBadRequest {
		t.Errorf("unknown model = %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/job-999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/artifacts/"+strings.Repeat("a", 64), nil); code != http.StatusNotFound {
		t.Errorf("unknown artifact = %d", code)
	}
}

func TestHTTPScenariosHealthMetrics(t *testing.T) {
	srv, _ := newTestServer(t, &stubPipeline{})

	var scns struct {
		Scenarios []scenarioView `json:"scenarios"`
	}
	if code := getJSON(t, srv.URL+"/v1/scenarios?width=640&height=360", &scns); code != http.StatusOK {
		t.Fatalf("GET scenarios = %d", code)
	}
	if len(scns.Scenarios) != 12 {
		t.Fatalf("scenarios = %d, want 12", len(scns.Scenarios))
	}
	byID := map[string]scenarioView{}
	for _, s := range scns.Scenarios {
		byID[s.ID] = s
	}
	for _, id := range []string{"iso", "clip", "threshold", "glyph"} {
		s, ok := byID[id]
		if !ok {
			t.Errorf("missing scenario %s", id)
			continue
		}
		if !strings.Contains(s.Prompt, "640 x 360 pixels") {
			t.Errorf("%s prompt ignores requested resolution", id)
		}
	}

	var health map[string]any
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("GET healthz = %d", code)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %+v", health)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"chatvis_jobs_submitted_total",
		"chatvis_jobs_coalesced_total",
		"chatvis_jobs_store_hits_total",
		"chatvis_queue_depth",
		"chatvis_job_duration_seconds_bucket{le=\"+Inf\"}",
		"chatvis_store_objects",
		"chatvis_llm_calls_total",
		// Sweep-scheduler telemetry of the parallel compute substrate.
		"chatvis_compute_workers",
		"chatvis_par_parallelism",
		"chatvis_par_sweeps_total",
		"chatvis_par_chunks_total",
		"chatvis_par_busy_seconds_total",
		"chatvis_par_imbalance_avg",
		// Runtime and identity series ride every scrape.
		"chatvis_go_goroutines",
		"chatvis_go_heap_alloc_bytes",
		"chatvis_go_gc_cycles_total",
		"chatvis_build_info{",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// Scrape-format contract: each family declares HELP and TYPE exactly
	// once, and the Prometheus text format carries no exemplar syntax
	// (that is OpenMetrics-only; see TestMetricsOpenMetricsExemplars).
	seen := map[string]int{}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			seen[strings.Join(strings.Fields(line)[:3], " ")]++
		}
		if strings.Contains(line, "} # {") || strings.Contains(line, " # {") {
			t.Errorf("plain-text scrape leaked exemplar syntax: %s", line)
		}
	}
	for decl, n := range seen {
		if n > 1 {
			t.Errorf("%s declared %d times, want 1", decl, n)
		}
	}
}

// --- cache + coalescing composition ------------------------------------------

// TestCacheAndCoalescingCompose runs the real ChatVis pipeline through
// the queue and shows the two dedup layers stacking: identical requests
// are answered by coalescing/store (zero LLM calls), while a request
// that differs only in a non-prompt option (a distinct job key) re-runs
// the pipeline but is fully served by the shared LLM response cache.
func TestCacheAndCoalescingCompose(t *testing.T) {
	metrics := &llm.Metrics{}
	pipeline := NewChatVisPipeline(PipelineConfig{
		DataDir: t.TempDir(),
		OutDir:  t.TempDir(),
		Metrics: metrics,
	})
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(QueueOptions{Workers: 2, Pipeline: pipeline, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = q.Shutdown(ctx)
	}()

	prompt := "Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename iso.png. The rendered view and saved screenshot should be 320 x 180 pixels."
	reqA := JobRequest{Prompt: prompt, Model: "oracle", Width: 320, Height: 180}

	jobA, _, err := q.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, jobA)
	if jobA.Status() != StatusSucceeded {
		t.Fatalf("job A: %s %s", jobA.Status(), jobA.Err())
	}
	after := metrics.Snapshot()
	if after.Calls == 0 {
		t.Fatal("pipeline made no LLM calls?")
	}
	if after.CacheHits != 0 {
		t.Fatalf("first run should miss the cache: %+v", after)
	}

	// Identical request: store hit, zero new LLM calls.
	jobB, outcome, err := q.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmissionStoreHit {
		t.Fatalf("identical resubmit = %s", outcome)
	}
	if jobB.Result().ScriptHash != jobA.Result().ScriptHash {
		t.Error("store hit returned a different script")
	}
	if got := metrics.Snapshot().Calls; got != after.Calls {
		t.Errorf("store hit made LLM calls: %d -> %d", after.Calls, got)
	}

	// Different MaxIterations: a different job key (no coalescing), but
	// every LLM stage repeats verbatim, so the shared response cache
	// serves all of them — composition of the two layers.
	reqC := reqA
	reqC.MaxIterations = 3
	if Key(reqC) == Key(reqA) {
		t.Fatal("option change must change the job key")
	}
	jobC, outcome, err := q.Submit(reqC)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmissionNew {
		t.Fatalf("option variant = %s", outcome)
	}
	waitJob(t, jobC)
	if jobC.Status() != StatusSucceeded {
		t.Fatalf("job C: %s %s", jobC.Status(), jobC.Err())
	}
	final := metrics.Snapshot()
	newCalls := final.Calls - after.Calls
	if newCalls == 0 {
		t.Fatal("option variant should re-run the pipeline")
	}
	if final.CacheHits != newCalls {
		t.Errorf("all %d repeated stages should be cache hits, got %d",
			newCalls, final.CacheHits)
	}
	// Content addressing: the identical final script dedups in the store.
	if jobC.Result().ScriptHash != jobA.Result().ScriptHash {
		t.Error("identical scripts should share one stored object")
	}
}

func TestCancelSharedJobNeedsAllSubmitters(t *testing.T) {
	p := &stubPipeline{gate: make(chan struct{})}
	q := newTestQueue(t, p, 1)
	req := JobRequest{Prompt: "shared"}
	job, _, err := q.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, out, err := q.Submit(req); err != nil || out != SubmissionCoalesced {
		t.Fatalf("second submit: %s %v", out, err)
	}
	// One of two submitters withdraws: the shared execution survives.
	job.Cancel()
	select {
	case <-job.Done():
		t.Fatal("single cancel killed a job two clients share")
	case <-time.After(20 * time.Millisecond):
	}
	// The second withdrawal aborts it.
	job.Cancel()
	close(p.gate)
	waitJob(t, job)
	if st := job.Status(); st != StatusCanceled {
		t.Errorf("after all submitters canceled: %s", st)
	}
}

func TestQueueEvictsOldTerminalJobs(t *testing.T) {
	p := &stubPipeline{}
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(QueueOptions{Workers: 2, Pipeline: p.run, Store: store, RetainJobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q.Shutdown(ctx)
	}()
	var last *Job
	for i := 0; i < 12; i++ {
		job, _, err := q.Submit(JobRequest{Prompt: fmt.Sprintf("evict-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, job)
		last = job
	}
	if n := len(q.Jobs()); n > 4 {
		t.Errorf("retained %d job records, want <= 4", n)
	}
	if _, ok := q.Get("job-1"); ok {
		t.Error("oldest terminal job should be evicted")
	}
	if _, ok := q.Get(last.ID); !ok {
		t.Error("newest job must survive eviction")
	}
	// Evicted keys still serve from the store.
	if _, out, err := q.Submit(JobRequest{Prompt: "evict-0"}); err != nil || out != SubmissionStoreHit {
		t.Errorf("evicted key resubmit: %s %v", out, err)
	}
}

// --- model routing over HTTP -------------------------------------------------

// TestRoutedServerModelsAndMetrics attaches a router built from a
// synthetic profile set and checks both serving surfaces: /v1/models
// reports the live route state, and /metrics exposes the
// chatvis_route_* families — including zero-valued labeled series for
// every ladder pair, so dashboards see the full shape before traffic.
func TestRoutedServerModelsAndMetrics(t *testing.T) {
	q := newTestQueue(t, &stubPipeline{}, 2)
	router := route.NewRouter(route.NewProfileSet([]route.ModelProfile{
		{Model: "codegemma", Task: llm.TaskEditIntent, Score: 1.0, CostWeight: 0.04, Seq: 1},
		{Model: "gpt-4", Task: llm.TaskWrite, Score: 0.9, CostWeight: 1.0, Seq: 2},
	}), nil)
	srv := httptest.NewServer(NewServer(q, q.store, &llm.Metrics{}).
		WithRouter(router, "profiles.json").Handler())
	t.Cleanup(srv.Close)

	var models struct {
		Models  []string `json:"models"`
		Routing struct {
			Enabled      bool              `json:"enabled"`
			ProfilesPath string            `json:"profiles_path"`
			Tasks        []route.RouteView `json:"tasks"`
		} `json:"routing"`
	}
	if code := getJSON(t, srv.URL+"/v1/models", &models); code != http.StatusOK {
		t.Fatalf("GET /v1/models = %d", code)
	}
	if len(models.Models) == 0 {
		t.Error("no registered models reported")
	}
	if !models.Routing.Enabled || models.Routing.ProfilesPath != "profiles.json" {
		t.Errorf("routing block = %+v", models.Routing)
	}
	if len(models.Routing.Tasks) != 2 {
		t.Fatalf("route views = %d, want 2", len(models.Routing.Tasks))
	}
	if v := models.Routing.Tasks[0]; v.Task != llm.TaskEditIntent || v.Ladder[0].Model != "codegemma" {
		t.Errorf("first route view = %+v", v)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"chatvis_route_decisions_total 0",
		"chatvis_route_escalations_total 0",
		"chatvis_route_fallbacks_total 0",
		"chatvis_route_profiles 2",
		`chatvis_route_task_decisions_total{task="edit-intent",model="codegemma"} 0`,
		`chatvis_route_task_decisions_total{task="write",model="gpt-4"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A router-less server still answers /v1/models and omits the
	// route families from its scrape.
	bare := httptest.NewServer(NewServer(q, q.store, &llm.Metrics{}).Handler())
	t.Cleanup(bare.Close)
	var off struct {
		Routing struct {
			Enabled bool `json:"enabled"`
		} `json:"routing"`
	}
	if code := getJSON(t, bare.URL+"/v1/models", &off); code != http.StatusOK || off.Routing.Enabled {
		t.Fatalf("bare /v1/models = %d routing=%v, want 200 with routing off", code, off.Routing.Enabled)
	}
	bresp, err := http.Get(bare.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	bbody, _ := io.ReadAll(bresp.Body)
	if strings.Contains(string(bbody), "chatvis_route_") {
		t.Error("route families leaked into a router-less scrape")
	}
}
