package service

import (
	"context"
	"testing"
	"time"

	"chatvis/internal/cluster"
)

// newWALQueue wires a queue over a WAL and a store rooted in existing
// directories, so tests can "restart the daemon" by building a second
// stack over the same disk state.
func newWALQueue(t *testing.T, p *stubPipeline, storeDir, walDir string, workers int) (*Queue, *cluster.WAL) {
	t.Helper()
	store, err := NewStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := cluster.OpenWAL(walDir)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(QueueOptions{Workers: workers, Pipeline: p.run, Store: store, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	return q, w
}

// TestWALCrashReplaysExactlyUnfinished kills a node mid-job and
// verifies the restart re-executes exactly the unfinished work: the
// completed job is NOT re-run, the running and queued ones are.
func TestWALCrashReplaysExactlyUnfinished(t *testing.T) {
	storeDir, walDir := t.TempDir(), t.TempDir()

	p := &stubPipeline{}
	q, w := newWALQueue(t, p, storeDir, walDir, 1)

	// Job 1 completes normally.
	j1, _, err := q.Submit(JobRequest{Prompt: "finished before the crash"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1)

	// Job 2 blocks mid-execution; job 3 sits queued behind it (1 worker).
	p.gate = make(chan struct{})
	j2, _, err := q.Submit(JobRequest{Prompt: "running at the crash"})
	if err != nil {
		t.Fatal(err)
	}
	j3, _, err := q.Submit(JobRequest{Prompt: "queued at the crash"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until j2 is actually executing so its Started record is down.
	deadline := time.Now().Add(5 * time.Second)
	for j2.Status() != StatusRunning && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Crash: the WAL stops persisting, then the process "dies" (forced
	// shutdown — in-flight work is canceled, nothing more hits disk).
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	cancel()
	_ = q.Shutdown(expired)
	close(p.gate)
	_ = j3 // queued job died with the process

	// Restart: a fresh stack over the same directories.
	p2 := &stubPipeline{}
	q2, w2 := newWALQueue(t, p2, storeDir, walDir, 1)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q2.Shutdown(ctx)
	})
	if got := len(w2.Recovered()); got != 2 {
		t.Fatalf("recovered %d records, want 2 (running + queued): %+v", got, w2.Recovered())
	}
	if n := q2.ReplayWAL(); n != 2 {
		t.Fatalf("replayed %d, want 2", n)
	}
	for _, j := range q2.Jobs() {
		waitJob(t, j)
		if j.Status() != StatusSucceeded {
			t.Errorf("replayed job %s: %s (%s)", j.ID, j.Status(), j.Err())
		}
	}
	// Exactly the two unfinished jobs executed — the completed one was
	// answered from the store if resubmitted, and was not replayed.
	if got := p2.executions.Load(); got != 2 {
		t.Errorf("restart executed %d jobs, want 2", got)
	}
	if snap := q2.Snapshot(); snap.Replayed != 2 {
		t.Errorf("replayed counter = %d, want 2", snap.Replayed)
	}
	if got := w2.Backlog(); got != 0 {
		t.Errorf("wal backlog after replay = %d, want 0", got)
	}

	// A third boot finds nothing to do: the replay retired the recovered
	// records and the re-executions retired their own.
	w3, err := cluster.OpenWAL(walDir)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := len(w3.Recovered()); got != 0 {
		t.Errorf("third boot recovered %d records, want 0: %+v", got, w3.Recovered())
	}
}

// TestWALGracefulDrainReplaysNothing is the drain-flush regression
// test: a drained-then-restarted node must not re-execute delivered
// results.
func TestWALGracefulDrainReplaysNothing(t *testing.T) {
	storeDir, walDir := t.TempDir(), t.TempDir()
	p := &stubPipeline{}
	q, _ := newWALQueue(t, p, storeDir, walDir, 2)
	for _, prompt := range []string{"drain a", "drain b", "drain c"} {
		if _, _, err := q.Submit(JobRequest{Prompt: prompt}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	p2 := &stubPipeline{}
	q2, w2 := newWALQueue(t, p2, storeDir, walDir, 2)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q2.Shutdown(ctx)
	})
	if got := len(w2.Recovered()); got != 0 {
		t.Fatalf("drained node left %d pending records: %+v", got, w2.Recovered())
	}
	if n := q2.ReplayWAL(); n != 0 {
		t.Errorf("replayed %d after graceful drain, want 0", n)
	}
	if got := p2.executions.Load(); got != 0 {
		t.Errorf("restart re-executed %d delivered jobs", got)
	}
}

// TestWALFailedJobsDoNotReplay: a job that failed terminally was
// answered (with its error); it must not run again on restart.
func TestWALFailedJobsDoNotReplay(t *testing.T) {
	storeDir, walDir := t.TempDir(), t.TempDir()
	p := &stubPipeline{fail: true}
	q, _ := newWALQueue(t, p, storeDir, walDir, 1)
	j, _, err := q.Submit(JobRequest{Prompt: "always fails"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if j.Status() != StatusFailed {
		t.Fatalf("status %s", j.Status())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = q.Shutdown(ctx)

	w2, err := cluster.OpenWAL(walDir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := len(w2.Recovered()); got != 0 {
		t.Errorf("failed job left %d pending records: %+v", got, w2.Recovered())
	}
}

// TestTurnWALReplay drives the session-side recovery path: a turn
// accepted (durably) but never executed is re-submitted through a
// freshly restored session on the next boot.
func TestTurnWALReplay(t *testing.T) {
	storeDir, walDir := t.TempDir(), t.TempDir()
	store, err := NewStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}

	// Boot 1: create a session, accept a turn into the WAL, then "crash"
	// before anything executes. Writing the records directly keeps the
	// crash point deterministic.
	factory := NewSessionFactory(PipelineConfig{DataDir: t.TempDir(), OutDir: t.TempDir()})
	m1 := NewSessions(store, factory)
	sess, err := m1.Create(SessionRequest{Model: "oracle", Width: 320, Height: 180})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := cluster.OpenWAL(walDir)
	if err != nil {
		t.Fatal(err)
	}
	req := TurnRequest{Prompt: sessionIsoPrompt}
	if err := w1.Accepted(cluster.KindTurn, sess.ID, "turn-1", TurnKey("", req.Prompt), req); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil { // crash
		t.Fatal(err)
	}

	// Boot 2: restore sessions, replay the WAL, and watch the turn run.
	store2, err := NewStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := cluster.OpenWAL(walDir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewSessions(store2, factory).WithWAL(w2)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = m2.Shutdown(ctx)
		w2.Close()
	})
	if got := m2.Restore(); got != 1 {
		t.Fatalf("restored %d sessions, want 1", got)
	}
	if n := m2.ReplayWAL(); n != 1 {
		t.Fatalf("replayed %d turns, want 1", n)
	}
	s2, ok := m2.Get(sess.ID)
	if !ok {
		t.Fatal("session missing after restore")
	}
	var finished TurnView
	deadline := time.Now().Add(30 * time.Second)
	for {
		views := s2.View().Turns
		if len(views) > 0 && views[len(views)-1].Status.Terminal() {
			finished = views[len(views)-1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed turn never finished: %+v", views)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if finished.Status != StatusSucceeded || !finished.Success {
		t.Fatalf("replayed turn: %+v", finished)
	}
	if got := w2.Backlog(); got != 0 {
		t.Errorf("wal backlog after turn replay = %d, want 0", got)
	}
	if got := m2.Snapshot().Replayed; got != 1 {
		t.Errorf("sessions replayed counter = %d, want 1", got)
	}

	// Boot 3: nothing left to replay.
	w3, err := cluster.OpenWAL(walDir)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := len(w3.Recovered()); got != 0 {
		t.Errorf("third boot recovered %d turn records: %+v", got, w3.Recovered())
	}
}

// TestRestoredDeadTurnDoesNotSwallowReplay: a session record persisted
// with a queued/running turn (the crash snapshot) must not let that
// dead turn coalesce-away the replayed submission.
func TestRestoredDeadTurnDoesNotSwallowReplay(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := TurnKey("", sessionIsoPrompt)
	rec := &SessionRecord{
		ID:      "s-1",
		Request: SessionRequest{Model: "oracle", Width: 320, Height: 180},
		Turns: []TurnView{{
			ID: "turn-1", Index: 1, Key: key, Prompt: sessionIsoPrompt,
			Status: StatusRunning, Submitted: time.Now(),
		}},
		Created: time.Now(),
	}
	if err := store.PutSessionRecord(rec); err != nil {
		t.Fatal(err)
	}
	factory := NewSessionFactory(PipelineConfig{DataDir: t.TempDir(), OutDir: t.TempDir()})
	m := NewSessions(store, factory)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	if got := m.Restore(); got != 1 {
		t.Fatal("restore failed")
	}
	s, _ := m.Get("s-1")
	if v, ok := s.TurnView("turn-1"); !ok || v.Status != StatusCanceled {
		t.Fatalf("dead turn not marked canceled: %+v", v)
	}
	// Re-submitting the same prompt must start a NEW execution, not
	// coalesce onto the corpse.
	view, outcome, err := s.SubmitTurn(TurnRequest{Prompt: sessionIsoPrompt})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != SubmissionNew {
		t.Fatalf("submission %q, want new", outcome)
	}
	final := waitTurn(t, s, view.ID)
	if final.Status != StatusSucceeded {
		t.Fatalf("resubmitted turn: %+v", final)
	}
}
