package service

import (
	"context"
	"strings"
	"testing"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/llm"
	"chatvis/internal/plan"
	"chatvis/internal/pvsim"
)

// TestKeyCoalescesOnPlanMeaning: the v2 key hashes the intended plan, so
// textually different requests that mean the same pipeline share a key —
// and any semantic difference still separates them.
func TestKeyCoalescesOnPlanMeaning(t *testing.T) {
	a := JobRequest{Prompt: `Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename x.png. The rendered view and saved screenshot should be 480 x 270 pixels.`}
	// Same meaning, different wording, punctuation and whitespace.
	b := JobRequest{Prompt: `Read in the file  named ml-100.vtk, please!  Now generate an isosurface of the variable var0 at value 0.5. Then save a screenshot of the result in the filename x.png. The rendered view and saved screenshot should be 480 x 270 pixels.`}
	if Key(a) != Key(b) {
		t.Error("semantically identical prompts should coalesce on plan hash")
	}
	// A different isovalue is a different plan.
	c := JobRequest{Prompt: strings.Replace(a.Prompt, "value 0.5", "value 0.7", 1)}
	if Key(a) == Key(c) {
		t.Error("different isovalue must not coalesce")
	}
	// Sanity: the two equal-key prompts really parse to the same plan.
	pa := plan.Normalize(llm.WritePlan(llm.ParseIntent(a.Prompt)), pvsim.PlanSchema())
	pb := plan.Normalize(llm.WritePlan(llm.ParseIntent(b.Prompt)), pvsim.PlanSchema())
	if !pa.Equal(pb) {
		t.Fatal("test prompts no longer parse to the same plan")
	}
}

// TestKeySeparatesSpecsTheIntendedPlanAbstracts: the intended plan
// leaves the streamline vector array to engine auto-detection, but
// ungrounded writers react to it — prompts differing only in that array
// must not share a key.
func TestKeySeparatesSpecsTheIntendedPlanAbstracts(t *testing.T) {
	v := JobRequest{Prompt: `Read in the file named 'disk.ex2'. Trace streamlines of the V data array seeded from a default point cloud. Save a screenshot of the result in the filename s.png. The rendered view and saved screenshot should be 480 x 270 pixels.`}
	b := JobRequest{Prompt: strings.Replace(v.Prompt, "the V data array", "the B data array", 1)}
	if Key(v) == Key(b) {
		t.Error("different streamline vector arrays must not coalesce")
	}
}

// TestKeyFallsBackToRawPromptText: prompts with no parseable operations
// must not all collapse onto the empty plan.
func TestKeyFallsBackToRawPromptText(t *testing.T) {
	a := JobRequest{Prompt: "hello there"}
	b := JobRequest{Prompt: "hello where"}
	if Key(a) == Key(b) {
		t.Error("op-less prompts must key on their raw text")
	}
	if Key(a) != Key(a) {
		t.Error("key must be deterministic")
	}
}

// TestQueueCoalescesRewordedPrompts: end-to-end, a reworded submission
// attaches to the in-flight job instead of executing again.
func TestQueueCoalescesRewordedPrompts(t *testing.T) {
	p := &stubPipeline{gate: make(chan struct{})}
	q := newTestQueue(t, p, 1)
	promptA := `Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename x.png. The rendered view and saved screenshot should be 480 x 270 pixels.`
	promptB := `Please read in the file named ml-100.vtk!   Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename x.png. The rendered view and saved screenshot should be 480 x 270 pixels.`
	jobA, outcomeA, err := q.Submit(JobRequest{Prompt: promptA})
	if err != nil {
		t.Fatal(err)
	}
	if outcomeA != SubmissionNew {
		t.Fatalf("first submission = %s", outcomeA)
	}
	jobB, outcomeB, err := q.Submit(JobRequest{Prompt: promptB})
	if err != nil {
		t.Fatal(err)
	}
	if outcomeB != SubmissionCoalesced {
		t.Fatalf("reworded submission = %s, want coalesced", outcomeB)
	}
	if jobA != jobB {
		t.Error("reworded prompts should share the job")
	}
	close(p.gate)
	waitJob(t, jobA)
	if got := p.executions.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
}

// TestResultCarriesPlan: the stored result inlines the normalized plan
// and its hash, so GET /v1/jobs/{id} serves the typed DAG.
func TestResultCarriesPlan(t *testing.T) {
	pipeline := func(ctx context.Context, req JobRequest, jobID string) (*chatvis.Artifact, error) {
		script := `from paraview.simple import *
reader = LegacyVTKReader(FileNames=['ml-100.vtk'])
contour1 = Contour(Input=reader)
contour1.Isosurfaces = [0.5]
view = GetActiveViewOrCreate('RenderView')
d = Show(contour1, view)
SaveScreenshot('x.png', view, ImageResolution=[100, 100])
`
		compiled, err := plan.Compile(script, pvsim.PlanSchema())
		if err != nil {
			return nil, err
		}
		return &chatvis.Artifact{
			UserPrompt:  req.Prompt,
			FinalScript: script,
			Success:     true,
			Plan:        plan.Normalize(compiled.Plan, pvsim.PlanSchema()),
			Iterations:  []chatvis.Iteration{{Script: script}},
		}, nil
	}
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(QueueOptions{Workers: 1, Pipeline: pipeline, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q.Shutdown(ctx)
	}()
	job, _, err := q.Submit(JobRequest{Prompt: "plan result test"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	res := job.Result()
	if res == nil {
		t.Fatalf("job did not succeed: %s %s", job.Status(), job.Err())
	}
	if res.PlanHash == "" {
		t.Error("result missing plan hash")
	}
	if len(res.Plan) == 0 {
		t.Fatal("result missing inlined plan JSON")
	}
	decoded, err := plan.Decode(res.Plan)
	if err != nil {
		t.Fatalf("inlined plan does not decode: %v", err)
	}
	if decoded.Hash() != res.PlanHash {
		t.Error("inlined plan hash mismatch")
	}
	if decoded.FindClass("Contour") < 0 {
		t.Error("plan lost the Contour stage")
	}
}
