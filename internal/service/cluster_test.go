package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chatvis/internal/cluster"
	"chatvis/internal/llm"
)

// clusterNode is one in-process fleet member for tests: a full queue +
// server stack with cluster routing attached.
type clusterNode struct {
	id   string
	srv  *httptest.Server
	q    *Queue
	cl   *cluster.Cluster
	pipe *stubPipeline
}

// newTestClusterNodes boots n nodes on loopback. sharedStore routes
// every node at one store directory (the deployment docs require a
// shared store); false gives each node a private one, which tests use
// to prove remote coalescing travels over HTTP rather than the disk.
func newTestClusterNodes(t *testing.T, n int, sharedStore bool, quota cluster.QuotaConfig) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	peers := make([]cluster.Peer, n)
	for i := range nodes {
		srv := httptest.NewUnstartedServer(http.NotFoundHandler())
		id := fmt.Sprintf("n%d", i+1)
		peers[i] = cluster.Peer{ID: id, Addr: srv.Listener.Addr().String()}
		nodes[i] = &clusterNode{id: id, srv: srv, pipe: &stubPipeline{}}
	}
	storeDir := t.TempDir()
	for _, node := range nodes {
		dir := storeDir
		if !sharedStore {
			dir = t.TempDir()
		}
		store, err := NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(cluster.Config{NodeID: node.id, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		node.cl = cl
		q, err := NewQueue(QueueOptions{
			Workers:      2,
			Pipeline:     node.pipe.run,
			Store:        store,
			JobIDPrefix:  "job-" + node.id,
			RemoteLookup: ClusterLookup(cl),
		})
		if err != nil {
			t.Fatal(err)
		}
		node.q = q
		srv := NewServer(q, store, &llm.Metrics{}).WithCluster(cl)
		if quota.RPS > 0 || quota.MaxInflight > 0 {
			srv = srv.WithQuotas(cluster.NewQuotas(quota))
		}
		node.srv.Config.Handler = srv.Handler()
		node.srv.Start()
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = node.q.Shutdown(ctx)
			cancel()
		}
	})
	return nodes
}

// ownerOf maps a job request to the node owning its content key.
func ownerOf(t *testing.T, nodes []*clusterNode, req JobRequest) (owner, other *clusterNode) {
	t.Helper()
	p, ok := nodes[0].cl.Owner(Key(req))
	if !ok {
		t.Fatal("no owner")
	}
	for _, n := range nodes {
		if n.id == p.ID {
			owner = n
		} else {
			other = n
		}
	}
	return owner, other
}

func TestClusterForwardsJobToKeyOwner(t *testing.T) {
	nodes := newTestClusterNodes(t, 2, true, cluster.QuotaConfig{})
	req := JobRequest{Prompt: "cluster forward probe"}
	owner, other := ownerOf(t, nodes, req)

	// Submit to the NON-owner: the request must relay to the owner and
	// execute exactly once, there.
	out, code := postJob(t, other.srv.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(out.ID, "job-"+owner.id+"-") {
		t.Fatalf("job %q not namespaced to owner %s", out.ID, owner.id)
	}
	waitClusterJob(t, other.srv.URL, out.ID)
	if got := owner.pipe.executions.Load(); got != 1 {
		t.Errorf("owner executed %d times, want 1", got)
	}
	if got := other.pipe.executions.Load(); got != 0 {
		t.Errorf("non-owner executed %d times, want 0", got)
	}

	// The same prompt submitted to the owner coalesces with the stored
	// result — one execution fleet-wide, however many entry points.
	out2, code2 := postJob(t, owner.srv.URL, req)
	if code2 != http.StatusOK || out2.Submission != SubmissionStoreHit {
		t.Fatalf("repeat submission: code %d outcome %q", code2, out2.Submission)
	}
}

// waitClusterJob polls a job by ID through any node's API (the GET
// forwards home by the ID's node name) until it is terminal.
func waitClusterJob(t *testing.T, baseURL, jobID string) View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		var v View
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err == nil && v.Status.Terminal() {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", jobID)
	return View{}
}

func TestClusterForwardLoopGuard(t *testing.T) {
	nodes := newTestClusterNodes(t, 2, true, cluster.QuotaConfig{})
	req := JobRequest{Prompt: "loop guard probe"}
	_, other := ownerOf(t, nodes, req)

	// A request already carrying the forwarded marker must be handled
	// locally — even on the "wrong" node — never relayed again.
	body, _ := json.Marshal(req)
	hr, _ := http.NewRequest(http.MethodPost, other.srv.URL+"/v1/jobs", bytes.NewReader(body))
	hr.Header.Set(ForwardedHeader, "test")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(out.ID, "job-"+other.id+"-") {
		t.Errorf("forwarded request relayed again: job %q accepted off-node", out.ID)
	}
	waitClusterJob(t, other.srv.URL, out.ID)
}

func TestClusterRemoteCoalesceFallback(t *testing.T) {
	// Private stores: the ONLY way a node can reuse a peer's result is
	// the /v1/cluster/result probe.
	nodes := newTestClusterNodes(t, 2, false, cluster.QuotaConfig{})
	req := JobRequest{Prompt: "remote coalesce probe"}
	owner, other := ownerOf(t, nodes, req)

	// Owner executes the job normally.
	out, _ := postJob(t, owner.srv.URL, req)
	waitClusterJob(t, owner.srv.URL, out.ID)
	if owner.pipe.executions.Load() != 1 {
		t.Fatalf("owner executions = %d", owner.pipe.executions.Load())
	}

	// The non-owner accepts the same work locally (forwarded marker set,
	// as if it had arrived via a relay) — before executing, its worker
	// must ask the owner and reuse the stored result.
	body, _ := json.Marshal(req)
	hr, _ := http.NewRequest(http.MethodPost, other.srv.URL+"/v1/jobs", bytes.NewReader(body))
	hr.Header.Set(ForwardedHeader, "test")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	_ = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	v := waitClusterJob(t, other.srv.URL, sub.ID)
	if v.Status != StatusSucceeded {
		t.Fatalf("remote-coalesced job %s: %+v", sub.ID, v)
	}
	if got := other.pipe.executions.Load(); got != 0 {
		t.Errorf("non-owner executed %d times despite remote result", got)
	}
	if snap := other.q.Snapshot(); snap.RemoteHits != 1 {
		t.Errorf("remote hits = %d, want 1", snap.RemoteHits)
	}
}

func TestClusterLookupFailsOverToNextOwner(t *testing.T) {
	// Two live nodes plus a phantom peer that never answers: keys owned
	// by the phantom must fail over to their next preference after one
	// connection error.
	live := newTestClusterNodes(t, 2, false, cluster.QuotaConfig{})
	peers := []cluster.Peer{
		{ID: live[0].id, Addr: live[0].srv.Listener.Addr().String()},
		{ID: live[1].id, Addr: live[1].srv.Listener.Addr().String()},
		{ID: "ghost", Addr: "127.0.0.1:1"}, // reserved port: dials fail fast
	}
	cl, err := cluster.New(cluster.Config{NodeID: live[0].id, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key whose first preference is the ghost and second is the
	// other live node.
	var key string
	for i := 0; ; i++ {
		key = Key(JobRequest{Prompt: fmt.Sprintf("failover probe %d", i)})
		prefs := cl.Owners(key, 2)
		if prefs[0].ID == "ghost" && prefs[1].ID == live[1].id {
			break
		}
	}
	// Seed the fail-over target with a result for the key.
	res := &Result{Key: key, Model: "gpt-4", Success: true, CreatedAt: time.Now()}
	if err := live[1].q.store.PutResult(res); err != nil {
		t.Fatal(err)
	}
	lookup := ClusterLookup(cl)
	got, ok := lookup(context.Background(), key)
	if !ok || got == nil || got.Key != key {
		t.Fatalf("lookup after owner death failed: ok=%v res=%+v", ok, got)
	}
	if cl.Alive("ghost") {
		t.Error("dead owner not marked down by the failed probe")
	}
}

func TestClusterTenantQuota(t *testing.T) {
	nodes := newTestClusterNodes(t, 1, true, cluster.QuotaConfig{RPS: 0.01, Burst: 1})
	url := nodes[0].srv.URL

	post := func(tenant string, forwardedAs string, prompt string) *http.Response {
		body, _ := json.Marshal(JobRequest{Prompt: prompt})
		hr, _ := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
		if tenant != "" {
			hr.Header.Set(TenantHeader, tenant)
		}
		if forwardedAs != "" {
			hr.Header.Set(ForwardedHeader, forwardedAs)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post("acme", "", "quota probe 1"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first request: %d", resp.StatusCode)
	}
	resp := post("acme", "", "quota probe 2")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Another tenant has its own bucket.
	if resp := post("globex", "", "quota probe 3"); resp.StatusCode != http.StatusAccepted {
		t.Errorf("independent tenant throttled: %d", resp.StatusCode)
	}
	// A relayed request skips the quota: its front door already charged.
	if resp := post("acme", "n9", "quota probe 4"); resp.StatusCode != http.StatusAccepted {
		t.Errorf("forwarded request throttled: %d", resp.StatusCode)
	}

	// The throttle shows up on /metrics.
	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(metrics), "chatvis_tenant_throttled_total 1") {
		t.Errorf("metrics missing throttle counter:\n%s", grepMetrics(string(metrics), "tenant"))
	}
}

func TestClusterHealthzAcceptNegotiation(t *testing.T) {
	nodes := newTestClusterNodes(t, 2, true, cluster.QuotaConfig{})
	url := nodes[0].srv.URL + "/healthz"

	// Legacy probe: plain GET keeps the small body (and a 200).
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var legacy map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&legacy)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || legacy["status"] != "ok" {
		t.Fatalf("legacy healthz: %d %+v", resp.StatusCode, legacy)
	}
	if _, has := legacy["ring"]; has {
		t.Error("legacy healthz grew a ring field without Accept negotiation")
	}

	// Cluster-aware probe: Accept: application/json unlocks the rich body.
	hr, _ := http.NewRequest(http.MethodGet, url, nil)
	hr.Header.Set("Accept", "application/json")
	resp2, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	var rich struct {
		Status string               `json:"status"`
		Node   string               `json:"node"`
		Ring   []cluster.PeerHealth `json:"ring"`
	}
	_ = json.NewDecoder(resp2.Body).Decode(&rich)
	resp2.Body.Close()
	if rich.Node != nodes[0].id || len(rich.Ring) != 2 {
		t.Fatalf("rich healthz: %+v", rich)
	}
	for _, p := range rich.Ring {
		if !p.Healthy {
			t.Errorf("peer %s unhealthy in fresh cluster", p.ID)
		}
	}
}

// TestClusterMetricsScrapeFormat checks the new cluster series exist
// and the whole exposition stays parseable: every sample line follows
// a HELP/TYPE pair for its metric.
func TestClusterMetricsScrapeFormat(t *testing.T) {
	nodes := newTestClusterNodes(t, 2, true, cluster.QuotaConfig{RPS: 100, Burst: 100})
	req := JobRequest{Prompt: "metrics probe"}
	_, other := ownerOf(t, nodes, req)
	out, _ := postJob(t, other.srv.URL, req)
	waitClusterJob(t, other.srv.URL, out.ID)

	resp, err := http.Get(other.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, name := range []string{
		"chatvis_cluster_peers_healthy",
		"chatvis_cluster_forwards_total",
		"chatvis_cluster_remote_coalesce_hits_total",
		"chatvis_tenant_throttled_total",
	} {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("missing TYPE line for %s", name)
		}
		if !strings.Contains(body, "\n"+name+" ") {
			t.Errorf("missing sample for %s", name)
		}
	}
	if !strings.Contains(body, "chatvis_cluster_peers_healthy 2") {
		t.Errorf("peers_healthy sample wrong:\n%s", grepMetrics(body, "peers_healthy"))
	}
	// The submit relayed once and every status poll relayed again, so
	// the counter is at least 2 (submit + final poll).
	forwards := -1
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "chatvis_cluster_forwards_total ") {
			fmt.Sscanf(line, "chatvis_cluster_forwards_total %d", &forwards)
		}
	}
	if forwards < 2 {
		t.Errorf("forwards_total = %d, want >= 2:\n%s", forwards, grepMetrics(body, "forwards"))
	}
	// Exposition discipline: declared TYPEs only, HELP before TYPE.
	declared := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 || (fields[3] != "counter" && fields[3] != "gauge" && fields[3] != "histogram") {
				t.Errorf("bad TYPE line: %q", line)
				continue
			}
			declared[fields[2]] = true
		}
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '{' })[0]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) && declared[strings.TrimSuffix(name, suffix)] {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if !declared[base] {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
	}
}

// grepMetrics filters an exposition body for error messages.
func grepMetrics(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func TestJobNodeParsing(t *testing.T) {
	cases := []struct {
		id   string
		node string
		ok   bool
	}{
		{"job-n1-12", "n1", true},
		{"job-edge-node-7", "edge-node", true},
		{"job-7", "", false}, // single-node default prefix
		{"turn-3", "", false},
		{"job-", "", false},
		{"job-n1-x", "", false},
	}
	for _, c := range cases {
		node, ok := jobNode(c.id)
		if ok != c.ok || node != c.node {
			t.Errorf("jobNode(%q) = %q,%v want %q,%v", c.id, node, ok, c.node, c.ok)
		}
	}
}

func TestSessionIDOwnershipMinting(t *testing.T) {
	m, _ := newTestSessions(t)
	// Only IDs containing "7" are "ours": Create must salt candidates
	// until the predicate accepts one.
	m.WithOwnership(func(id string) bool { return strings.Contains(id, "7") })
	for i := 0; i < 5; i++ {
		s, err := m.Create(SessionRequest{Model: "oracle"})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s.ID, "7") {
			t.Fatalf("minted ID %q fails the ownership predicate", s.ID)
		}
		if _, ok := m.Get(s.ID); !ok {
			t.Fatalf("minted session %q not registered", s.ID)
		}
	}
}

func TestClusterSessionTurnForwarding(t *testing.T) {
	// Two nodes over one shared store, sessions enabled on both. A turn
	// POSTed to the non-owner must relay to the session's ring owner.
	nodes := newTestClusterNodes(t, 2, true, cluster.QuotaConfig{})
	for _, node := range nodes {
		factory := NewSessionFactory(PipelineConfig{DataDir: t.TempDir(), OutDir: t.TempDir()})
		store := node.q.store
		cl := node.cl
		sessions := NewSessions(store, factory).WithOwnership(func(id string) bool {
			owner, ok := cl.Owner(id)
			return ok && cl.IsSelf(owner)
		})
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = sessions.Shutdown(ctx)
		})
		srv := NewServer(node.q, store, &llm.Metrics{}).WithCluster(cl).WithSessions(sessions)
		node.srv.Config.Handler = srv.Handler()
	}

	// Create on n1: the minted ID is owned by n1 on the ring.
	body, _ := json.Marshal(SessionRequest{Model: "oracle", Width: 320, Height: 180})
	resp, err := http.Post(nodes[0].srv.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sv SessionView
	_ = json.NewDecoder(resp.Body).Decode(&sv)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || sv.ID == "" {
		t.Fatalf("create: %d %+v", resp.StatusCode, sv)
	}
	if owner, _ := nodes[0].cl.Owner(sv.ID); owner.ID != nodes[0].id {
		t.Fatalf("session %q not owned by its creator", sv.ID)
	}

	// Submit the turn to n2: it must forward to n1 and run there.
	turnBody, _ := json.Marshal(TurnRequest{Prompt: sessionIsoPrompt})
	resp2, err := http.Post(nodes[1].srv.URL+"/v1/sessions/"+sv.ID+"/turns", "application/json", bytes.NewReader(turnBody))
	if err != nil {
		t.Fatal(err)
	}
	var tr submitTurnResponse
	_ = json.NewDecoder(resp2.Body).Decode(&tr)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted || tr.Submission != SubmissionNew {
		t.Fatalf("turn submit via peer: %d %+v", resp2.StatusCode, tr)
	}
	if resp2.Header.Get(ForwardedHeader) != nodes[0].id {
		t.Errorf("turn response not marked as relayed to %s", nodes[0].id)
	}

	// The turn must complete, observable from EITHER node.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp3, err := http.Get(nodes[1].srv.URL + "/v1/sessions/" + sv.ID + "/turns/" + tr.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view TurnView
		_ = json.NewDecoder(resp3.Body).Decode(&view)
		resp3.Body.Close()
		if view.Status.Terminal() {
			if view.Status != StatusSucceeded {
				t.Fatalf("turn failed: %+v", view)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("turn %s never finished (last: %+v)", tr.ID, view)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
