package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chatvis/internal/llm"
	"chatvis/internal/obs"
)

// TestMetricsOpenMetricsExemplars covers the trace/metrics join: a
// tracer-attached server runs one job, and the OpenMetrics negotiation
// of /metrics links a chatvis_job_duration_seconds bucket to that job's
// trace ID via an exemplar — while the plain Prometheus scrape stays
// exemplar-free (the ` # {...}` syntax is invalid there).
func TestMetricsOpenMetricsExemplars(t *testing.T) {
	q := newTestQueue(t, &stubPipeline{}, 2)
	server := NewServer(q, q.store, &llm.Metrics{}).
		WithTracer(obs.NewTracer("t1", 0)).
		WithBuildVersion("v-test")
	srv := httptest.NewServer(server.Handler())
	defer srv.Close()

	sub, code := postJob(t, srv.URL, JobRequest{Prompt: "exemplar probe"})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	view := pollJob(t, srv.URL, sub.ID)
	if view.Status != StatusSucceeded {
		t.Fatalf("job = %s (%s)", view.Status, view.Error)
	}
	if view.TraceID == "" {
		t.Fatal("job view has no trace_id")
	}

	scrape := func(accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	plain, plainCT := scrape("")
	if !strings.HasPrefix(plainCT, "text/plain") {
		t.Errorf("plain content type = %q", plainCT)
	}
	if strings.Contains(plain, `# {trace_id=`) {
		t.Error("plain-text scrape contains exemplar syntax")
	}
	if strings.Contains(plain, "# EOF") {
		t.Error("plain-text scrape contains the OpenMetrics EOF marker")
	}
	if !strings.Contains(plain, "chatvis_traces_retained") {
		t.Error("tracer-attached scrape missing chatvis_traces_retained")
	}
	if !strings.Contains(plain, `chatvis_build_info{version="v-test"`) {
		t.Error("scrape missing versioned chatvis_build_info")
	}

	om, omCT := scrape("application/openmetrics-text")
	if !strings.HasPrefix(omCT, "application/openmetrics-text") {
		t.Errorf("openmetrics content type = %q", omCT)
	}
	if !strings.HasSuffix(strings.TrimSpace(om), "# EOF") {
		t.Error("openmetrics scrape does not end with # EOF")
	}
	// The finished job's trace is the latest histogram observation, so
	// its ID must appear as a bucket exemplar.
	want := `# {trace_id="` + view.TraceID + `"}`
	found := false
	for _, line := range strings.Split(om, "\n") {
		if strings.HasPrefix(line, "chatvis_job_duration_seconds_bucket") && strings.Contains(line, want) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no duration bucket carries exemplar %s:\n%s", want, om)
	}
}
