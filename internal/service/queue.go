package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/cluster"
	"chatvis/internal/obs"
)

// PipelineFunc runs one ChatVis pipeline for a request and returns the
// session artifact. The context carries per-job cancellation (client
// cancel, daemon shutdown); jobID names a private working directory for
// the job's screenshots.
type PipelineFunc func(ctx context.Context, req JobRequest, jobID string) (*chatvis.Artifact, error)

// QueueOptions configures a Queue.
type QueueOptions struct {
	// Workers is the pipeline concurrency (default 2).
	Workers int
	// Capacity bounds the backlog of queued jobs; Submit returns
	// ErrQueueFull beyond it (default 256).
	Capacity int
	// Pipeline executes jobs (required).
	Pipeline PipelineFunc
	// Store receives finished results and serves repeat submissions
	// (required).
	Store *Store
	// RetainJobs bounds the in-memory job records (default 4096):
	// beyond it, the oldest terminal jobs are evicted so daemon memory
	// stays flat under sustained traffic. Evicted job IDs 404 on
	// GET /v1/jobs/{id}; their results remain addressable through the
	// store by resubmitting the request.
	RetainJobs int
	// WAL, when set, makes accepted work durable: every new submission
	// is appended (and fsynced) before it is enqueued, lifecycle
	// transitions follow, and ReplayWAL re-submits whatever a crash
	// left unfinished.
	WAL *cluster.WAL
	// RemoteLookup, when set, is consulted just before a job executes:
	// in cluster mode it asks the shard-ring owner of the job key for an
	// in-flight or stored result, collapsing identical requests
	// fleet-wide instead of per process. A hit finishes the job without
	// running the pipeline.
	RemoteLookup func(ctx context.Context, key string) (*Result, bool)
	// JobIDPrefix namespaces job IDs (default "job"); cluster mode uses
	// "job-<nodeID>" so any node can route a GET /v1/jobs/{id} back to
	// the node that owns the record.
	JobIDPrefix string
}

// ErrQueueFull is returned by Submit when the backlog is at capacity.
var ErrQueueFull = fmt.Errorf("service: job queue is full")

// ErrQueueClosed is returned by Submit after Shutdown begins.
var ErrQueueClosed = fmt.Errorf("service: queue is shut down")

// Submission classifies what a Submit call did.
type Submission string

// Submission outcomes.
const (
	// SubmissionNew enqueued a fresh execution.
	SubmissionNew Submission = "new"
	// SubmissionCoalesced attached to an identical in-flight job.
	SubmissionCoalesced Submission = "coalesced"
	// SubmissionStoreHit was answered from the artifact store without
	// executing anything.
	SubmissionStoreHit Submission = "store"
)

// Queue runs ChatVis pipelines asynchronously on a worker pool with
// request coalescing: identical concurrent submissions (same content
// key) share one execution, and keys already in the store never execute
// at all. Shutdown drains in-flight work before returning.
type Queue struct {
	opts  QueueOptions
	store *Store

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	closed bool
	jobs   map[string]*Job // by ID
	byKey  map[string]*Job // latest job per content key
	order  []string        // job IDs in submission order, for listing
	seq    int64

	work chan *Job
	wg   sync.WaitGroup

	m queueMetrics
}

// queueMetrics are the queue's atomically-updated counters.
type queueMetrics struct {
	submitted atomic.Int64
	coalesced atomic.Int64
	storeHits atomic.Int64
	executed  atomic.Int64
	succeeded atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	running   atomic.Int64

	// remoteHits counts jobs answered by a ring peer (fleet-wide
	// coalescing) instead of a local execution.
	remoteHits atomic.Int64
	// replayed counts jobs re-submitted from the WAL at startup.
	replayed atomic.Int64

	latencyNanos atomic.Int64
	latencyCount atomic.Int64
	buckets      [numLatencyBuckets + 1]atomic.Int64

	// exemplars keeps the most recent traced observation per histogram
	// bucket, linking chatvis_job_duration_seconds to a trace ID in the
	// OpenMetrics exposition.
	exMu      sync.Mutex
	exemplars [numLatencyBuckets + 1]Exemplar
}

// Exemplar links one histogram bucket to the trace of a recent
// observation that landed in it.
type Exemplar struct {
	TraceID string
	// Value is the observed duration in seconds.
	Value float64
}

// latencyBuckets are the job-duration histogram upper bounds (seconds);
// the histogram has one extra +Inf overflow slot.
const numLatencyBuckets = 7

var latencyBuckets = [numLatencyBuckets]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// QueueSnapshot is a point-in-time copy of the queue counters.
type QueueSnapshot struct {
	Submitted int64
	Coalesced int64
	StoreHits int64
	Executed  int64
	Succeeded int64
	Failed    int64
	Canceled  int64
	Running   int64
	Depth     int64
	// RemoteHits counts jobs satisfied by a ring peer's in-flight or
	// stored result (cluster mode); Replayed counts WAL re-submissions
	// at startup.
	RemoteHits int64
	Replayed   int64
	// LatencyTotal / LatencyCount summarize executed-job durations.
	LatencyTotal time.Duration
	LatencyCount int64
	// BucketCounts[i] counts jobs whose duration fell in the interval
	// (latencyBuckets[i-1], latencyBuckets[i]] — per-interval, NOT
	// cumulative; the final slot is the +Inf overflow. The /metrics
	// handler re-accumulates these into Prometheus cumulative buckets.
	BucketCounts []int64
	// BucketExemplars[i] is the latest traced observation in bucket i
	// (zero TraceID when the bucket has seen no traced job).
	BucketExemplars []Exemplar
}

// NewQueue builds a queue and starts its workers.
func NewQueue(opts QueueOptions) (*Queue, error) {
	if opts.Pipeline == nil {
		return nil, fmt.Errorf("service: queue needs a pipeline")
	}
	if opts.Store == nil {
		return nil, fmt.Errorf("service: queue needs a store")
	}
	if opts.Workers < 1 {
		opts.Workers = 2
	}
	if opts.Capacity < 1 {
		opts.Capacity = 256
	}
	if opts.RetainJobs < 1 {
		opts.RetainJobs = 4096
	}
	if opts.JobIDPrefix == "" {
		opts.JobIDPrefix = "job"
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		opts:       opts,
		store:      opts.Store,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		byKey:      map[string]*Job{},
		work:       make(chan *Job, opts.Capacity),
	}
	for i := 0; i < opts.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// Submit registers a request with no caller context (WAL replay,
// tests); traced submissions go through SubmitCtx.
func (q *Queue) Submit(req JobRequest) (*Job, Submission, error) {
	return q.SubmitCtx(context.Background(), req)
}

// SubmitCtx registers a request: it either coalesces onto an identical
// in-flight job, answers from the store, or enqueues a new execution.
// The context's observability state (trace identity) is captured on the
// job so worker spans land in the submitting request's trace; its
// cancellation is NOT inherited — an accepted job outlives the request.
func (q *Queue) SubmitCtx(ctx context.Context, req JobRequest) (*Job, Submission, error) {
	if err := req.Validate(); err != nil {
		return nil, "", err
	}
	req = req.withDefaults()
	key := Key(req)

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, "", ErrQueueClosed
	}
	q.m.submitted.Add(1)

	// Singleflight: an identical job still in flight is shared. A
	// finished job is not — successes are answered from the store below
	// (the worker persists the result before marking the job terminal),
	// and failures/cancellations must not block a retry.
	if existing := q.byKey[key]; existing != nil {
		st := existing.Status()
		if st == StatusQueued || st == StatusRunning {
			existing.mu.Lock()
			existing.coalesced++
			existing.mu.Unlock()
			q.m.coalesced.Add(1)
			return existing, SubmissionCoalesced, nil
		}
	}

	// Store lookup: a previously executed identical request is answered
	// without touching the queue (or an LLM).
	if res, ok := q.store.GetResult(key); ok {
		job := q.newJobLocked(key, req)
		job.TraceID = obs.TraceID(ctx)
		job.mu.Lock()
		job.fromStore = true
		job.result = res
		job.finishTerminalLocked(StatusSucceeded, "")
		job.mu.Unlock()
		q.m.storeHits.Add(1)
		return job, SubmissionStoreHit, nil
	}

	job := q.newJobLocked(key, req)
	// Capture the submitter's trace (without its cancellation) and start
	// the queue-wait span: it ends when a worker picks the job up.
	job.traceCtx = obs.Detach(ctx)
	job.TraceID = obs.TraceID(ctx)
	_, job.waitSpan = obs.Start(job.traceCtx, "queue.wait")
	job.waitSpan.SetAttr("job_id", job.ID)
	// Durability before enqueue: once the WAL has the accepted record a
	// crash cannot lose the work, so only now may the client see an ack.
	if w := q.opts.WAL; w != nil {
		_, wsp := obs.Start(ctx, "wal.append")
		wsp.SetAttr("kind", "job")
		err := w.Accepted(cluster.KindJob, "", job.ID, key, req)
		wsp.SetError(err)
		wsp.End()
		if err != nil {
			job.waitSpan.Fail("never enqueued: wal append failed")
			job.waitSpan.End()
			q.unregisterLocked(job)
			return nil, "", fmt.Errorf("service: logging accepted job: %w", err)
		}
	}
	select {
	case q.work <- job:
	default:
		// Backlog full: unregister the stillborn job and retire its WAL
		// record so it never replays.
		job.waitSpan.Fail("queue full")
		job.waitSpan.End()
		q.unregisterLocked(job)
		if w := q.opts.WAL; w != nil {
			_ = w.Failed(cluster.KindJob, "", job.ID, ErrQueueFull.Error())
		}
		return nil, "", ErrQueueFull
	}
	return job, SubmissionNew, nil
}

// unregisterLocked removes a just-created job that never entered the
// queue. Callers hold q.mu.
func (q *Queue) unregisterLocked(job *Job) {
	delete(q.jobs, job.ID)
	if q.byKey[job.Key] == job {
		delete(q.byKey, job.Key)
	}
	q.order = q.order[:len(q.order)-1]
}

// newJobLocked allocates and registers a job. Callers hold q.mu.
func (q *Queue) newJobLocked(key string, req JobRequest) *Job {
	q.seq++
	job := &Job{
		ID:          fmt.Sprintf("%s-%d", q.opts.JobIDPrefix, q.seq),
		Key:         key,
		Req:         req,
		status:      StatusQueued,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
	}
	q.jobs[job.ID] = job
	q.byKey[key] = job
	q.order = append(q.order, job.ID)
	q.evictLocked()
	return job
}

// evictLocked drops the oldest terminal jobs once the record count
// exceeds RetainJobs, keeping daemon memory flat under sustained
// traffic. Live (queued/running) jobs are never evicted. Callers hold
// q.mu; the q.mu → job.mu lock order matches Submit's.
func (q *Queue) evictLocked() {
	excess := len(q.order) - q.opts.RetainJobs
	if excess <= 0 {
		return
	}
	kept := q.order[:0]
	for _, id := range q.order {
		job := q.jobs[id]
		if excess > 0 && job.Status().Terminal() {
			delete(q.jobs, id)
			if q.byKey[job.Key] == job {
				delete(q.byKey, job.Key)
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
}

// Get returns a job by ID.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Jobs lists all tracked jobs in submission order.
func (q *Queue) Jobs() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.jobs[id])
	}
	return out
}

// worker drains the work channel until Shutdown closes it.
func (q *Queue) worker() {
	defer q.wg.Done()
	for job := range q.work {
		q.run(job)
	}
}

// run executes one job through the pipeline and stores its artifacts.
func (q *Queue) run(job *Job) {
	job.waitSpan.End() // queue wait is over, whatever happens next
	job.mu.Lock()
	if job.status.Terminal() { // canceled while queued
		job.mu.Unlock()
		q.m.canceled.Add(1)
		q.walTerminal(job.ID, StatusCanceled, false)
		return
	}
	ctx, cancel := context.WithCancel(q.baseCtx)
	if job.traceCtx != nil {
		// Worker lifecycle context, submitter's trace: spans below land
		// in the originating request's trace.
		ctx = obs.Graft(ctx, job.traceCtx)
	}
	job.cancelFn = cancel
	job.status = StatusRunning
	job.startedAt = time.Now()
	job.mu.Unlock()
	defer cancel()

	ctx, execSpan := obs.Start(ctx, "job.execute")
	execSpan.SetAttr("job_id", job.ID)
	execSpan.SetAttr("model", job.Req.Model)
	defer execSpan.End()

	// Fleet-wide coalescing: before spending a pipeline execution, ask
	// the ring owner of this key whether an identical request is already
	// in flight or stored anywhere in the cluster.
	if rl := q.opts.RemoteLookup; rl != nil {
		if res, ok := rl(ctx, job.Key); ok && res != nil {
			_ = q.store.PutResult(res)
			job.mu.Lock()
			job.result = res
			job.finishTerminalLocked(StatusSucceeded, "")
			job.mu.Unlock()
			execSpan.SetAttr("outcome", "remote-hit")
			q.m.remoteHits.Add(1)
			q.m.succeeded.Add(1)
			q.walTerminal(job.ID, StatusSucceeded, false)
			return
		}
	}

	if w := q.opts.WAL; w != nil {
		_ = w.Started(cluster.KindJob, "", job.ID)
	}
	q.m.running.Add(1)
	q.m.executed.Add(1)
	start := time.Now()
	art, err := q.opts.Pipeline(ctx, job.Req, job.ID)
	q.recordLatency(time.Since(start), obs.TraceID(ctx))
	q.m.running.Add(-1)

	if err != nil {
		execSpan.SetError(err)
		job.mu.Lock()
		if ctx.Err() != nil {
			job.finishTerminalLocked(StatusCanceled, err.Error())
			job.mu.Unlock()
			q.m.canceled.Add(1)
			// A shutdown cancellation keeps the WAL entry pending so the
			// accepted work replays after restart; a client withdrawing
			// retires it.
			q.walTerminal(job.ID, StatusCanceled, q.baseCtx.Err() != nil)
			return
		}
		job.finishTerminalLocked(StatusFailed, err.Error())
		job.mu.Unlock()
		q.m.failed.Add(1)
		q.walTerminal(job.ID, StatusFailed, false)
		return
	}

	_, storeSpan := obs.Start(ctx, "store.write")
	res, err := q.storeArtifact(job, art)
	storeSpan.SetError(err)
	storeSpan.End()
	job.mu.Lock()
	if err != nil {
		execSpan.SetError(err)
		job.finishTerminalLocked(StatusFailed, err.Error())
		job.mu.Unlock()
		q.m.failed.Add(1)
		q.walTerminal(job.ID, StatusFailed, false)
		return
	}
	job.result = res
	job.finishTerminalLocked(StatusSucceeded, "")
	job.mu.Unlock()
	q.m.succeeded.Add(1)
	q.walTerminal(job.ID, StatusSucceeded, false)
}

// walTerminal retires a job's WAL entry. shutdownCancel keeps the entry
// pending instead: work canceled by a daemon shutdown was accepted but
// never delivered, and MUST replay when the node comes back.
func (q *Queue) walTerminal(jobID string, status JobStatus, shutdownCancel bool) {
	w := q.opts.WAL
	if w == nil || shutdownCancel {
		return
	}
	switch status {
	case StatusSucceeded:
		_ = w.Completed(cluster.KindJob, "", jobID)
	case StatusFailed:
		_ = w.Failed(cluster.KindJob, "", jobID, "pipeline failed")
	case StatusCanceled:
		_ = w.Failed(cluster.KindJob, "", jobID, "canceled by client")
	}
}

// ReplayWAL re-submits the unfinished work a crash left in the WAL:
// every recovered job record becomes a fresh submission (new job ID,
// same request), and the recovered record is retired as superseded.
// Completed entries were already dropped by the WAL replay, so nothing
// is executed twice; if the process dies between the re-submission and
// the retirement, the next replay's duplicate coalesces by key. Returns
// how many jobs were re-queued.
func (q *Queue) ReplayWAL() int {
	w := q.opts.WAL
	if w == nil {
		return 0
	}
	n := 0
	for _, rec := range w.Recovered() {
		if rec.Kind != cluster.KindJob {
			continue
		}
		var req JobRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil || req.Validate() != nil {
			_ = w.Failed(rec.Kind, rec.Session, rec.ID, "unreplayable record")
			continue
		}
		job, _, err := q.Submit(req)
		if err != nil {
			continue // queue full/closed: leave the record for next boot
		}
		_ = w.Superseded(rec, job.ID)
		n++
	}
	q.m.replayed.Add(int64(n))
	return n
}

// InFlight returns the live (queued or running) job for a key, if any —
// what a ring peer interrogates for cross-node coalescing.
func (q *Queue) InFlight(key string) (*Job, bool) {
	q.mu.Lock()
	job := q.byKey[key]
	q.mu.Unlock()
	if job == nil || job.Status().Terminal() {
		return nil, false
	}
	return job, true
}

// storeArtifact persists a finished session into the content-addressed
// store and builds the job's Result.
func (q *Queue) storeArtifact(job *Job, art *chatvis.Artifact) (*Result, error) {
	scriptHash, err := q.store.Put([]byte(art.FinalScript), "text/x-python")
	if err != nil {
		return nil, err
	}
	var shots []string
	for _, path := range art.Screenshots {
		png, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("service: reading screenshot %s: %w", path, err)
		}
		h, err := q.store.Put(png, "image/png")
		if err != nil {
			return nil, err
		}
		shots = append(shots, h)
	}
	encoded, err := chatvis.EncodeArtifact(art)
	if err != nil {
		return nil, err
	}
	artHash, err := q.store.Put(encoded, "application/json")
	if err != nil {
		return nil, err
	}
	res := &Result{
		Key:              job.Key,
		TraceID:          job.TraceID,
		Model:            job.Req.Model,
		Success:          art.Success,
		Iterations:       art.NumIterations(),
		ScriptHash:       scriptHash,
		ScreenshotHashes: shots,
		ArtifactHash:     artHash,
		PlanHash:         art.PlanHash(),
		Trace:            art.Trace,
		CreatedAt:        time.Now(),
	}
	if art.Plan != nil {
		if blob, err := art.Plan.Encode(); err == nil {
			res.Plan = blob
		}
	}
	if err := q.store.PutResult(res); err != nil {
		return nil, err
	}
	return res, nil
}

// recordLatency updates the duration histogram and, when the job was
// traced, stamps the bucket's exemplar with its trace ID.
func (q *Queue) recordLatency(d time.Duration, traceID string) {
	q.m.latencyNanos.Add(int64(d))
	q.m.latencyCount.Add(1)
	secs := d.Seconds()
	slot := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if secs <= ub {
			slot = i
			break
		}
	}
	q.m.buckets[slot].Add(1)
	if traceID != "" {
		q.m.exMu.Lock()
		q.m.exemplars[slot] = Exemplar{TraceID: traceID, Value: secs}
		q.m.exMu.Unlock()
	}
}

// Depth is the current backlog (queued, not yet picked up).
func (q *Queue) Depth() int { return len(q.work) }

// Snapshot returns the queue counters.
func (q *Queue) Snapshot() QueueSnapshot {
	s := QueueSnapshot{
		Submitted:    q.m.submitted.Load(),
		Coalesced:    q.m.coalesced.Load(),
		StoreHits:    q.m.storeHits.Load(),
		Executed:     q.m.executed.Load(),
		Succeeded:    q.m.succeeded.Load(),
		Failed:       q.m.failed.Load(),
		Canceled:     q.m.canceled.Load(),
		Running:      q.m.running.Load(),
		Depth:        int64(len(q.work)),
		RemoteHits:   q.m.remoteHits.Load(),
		Replayed:     q.m.replayed.Load(),
		LatencyTotal: time.Duration(q.m.latencyNanos.Load()),
		LatencyCount: q.m.latencyCount.Load(),
	}
	s.BucketCounts = make([]int64, len(q.m.buckets))
	for i := range q.m.buckets {
		s.BucketCounts[i] = q.m.buckets[i].Load()
	}
	s.BucketExemplars = make([]Exemplar, len(q.m.exemplars))
	q.m.exMu.Lock()
	copy(s.BucketExemplars, q.m.exemplars[:])
	q.m.exMu.Unlock()
	return s
}

// Shutdown stops accepting submissions and drains the queue: workers
// finish queued and in-flight jobs. If ctx expires first, in-flight
// pipelines are canceled and Shutdown returns ctx.Err after they
// unwind.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	close(q.work)
	q.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		// A drained node delivered everything it accepted: flush the WAL
		// so the completed transitions are durable and a restart replays
		// nothing that was already delivered.
		if w := q.opts.WAL; w != nil {
			_ = w.Sync()
		}
		return nil
	case <-ctx.Done():
		// Force: cancel every in-flight pipeline, then wait for workers
		// to unwind (pipelines honour their contexts). Their WAL entries
		// deliberately stay pending — the accepted work replays on the
		// next boot.
		q.baseCancel()
		<-drained
		if w := q.opts.WAL; w != nil {
			_ = w.Sync()
		}
		return ctx.Err()
	}
}
