package pvsim

import (
	"context"
	"fmt"
	"image"
	"math"
	"path/filepath"
	"strings"
	"sync/atomic"

	"chatvis/internal/data"
	"chatvis/internal/datagen"
	"chatvis/internal/filters"
	"chatvis/internal/obs"
	"chatvis/internal/par"
	"chatvis/internal/pypy"
	"chatvis/internal/render"
	"chatvis/internal/vmath"
	"chatvis/internal/vtkio"
)

// Engine is the simulated ParaView session: all live proxies, active
// objects, the transfer-function registry and I/O roots.
type Engine struct {
	// DataDir is prepended to relative input file names.
	DataDir string
	// OutDir is prepended to relative screenshot file names.
	OutDir string

	// DataCache, when set, is the process-wide content-keyed dataset
	// cache: proxies whose content hash (class + properties + input
	// chain + source file identity) matches a cached entry reuse the
	// cached dataset instead of recomputing. Shared across engines —
	// and therefore across chatvisd jobs and repair iterations.
	// Cached datasets are immutable by contract.
	DataCache *data.Cache

	// ExecCtx carries cancellation into filter execution and rendering;
	// nil means context.Background(). pvpython.Runner threads the job
	// context here.
	ExecCtx context.Context

	// executions counts filter/reader computations actually performed
	// (cache hits do not count) — the observable the repair-iteration
	// cache tests pin.
	executions atomic.Int64

	Pipeline []*Proxy // sources and filters, in creation order
	Views    []*Proxy
	Layouts  []*Proxy
	Reps     map[repKey]*Proxy

	ActiveSource *Proxy
	ActiveView   *Proxy

	// Screenshots records every SaveScreenshot call (absolute paths).
	Screenshots []string
	// Rendered maps screenshot path to the rendered image so callers can
	// inspect pixels without re-reading the file.
	Rendered map[string]*image.RGBA

	colorTFs   map[string]*Proxy
	opacityTFs map[string]*Proxy
	tfRanges   map[string]*tfRange

	firstRenderResetDisabled bool
	renderedOnce             map[*Proxy]bool

	// planProxies memoizes the proxies ExecPlan builds, keyed by the
	// stage's canonical subtree hash plus reader-file identity, so a
	// repair iteration re-executing an edited plan rebuilds (and
	// recomputes) only the stages whose key changed.
	planProxies map[string]*Proxy

	schemas map[string]*classSchema
}

// tfRange tracks the scalar range a named transfer function is mapped
// over, mirroring ParaView's per-array transfer function registry.
type tfRange struct {
	lo, hi      float64
	initialized bool
}

// repKey identifies a representation: one per (pipeline proxy, view).
type repKey struct {
	src  *Proxy
	view *Proxy
}

// NewEngine builds an engine rooted at the given data/output directories.
func NewEngine(dataDir, outDir string) *Engine {
	e := &Engine{
		DataDir:      dataDir,
		OutDir:       outDir,
		Reps:         map[repKey]*Proxy{},
		Rendered:     map[string]*image.RGBA{},
		colorTFs:     map[string]*Proxy{},
		opacityTFs:   map[string]*Proxy{},
		tfRanges:     map[string]*tfRange{},
		renderedOnce: map[*Proxy]bool{},
	}
	e.registerSchemas()
	return e
}

func (e *Engine) schema(name string) *classSchema { return e.schemas[name] }

func (e *Engine) addSchema(s *classSchema) { e.schemas[s.name] = s }

// raiseRT reports a ParaView-side runtime failure into the script. Any
// error among the format args becomes the exception's wrapped cause, so
// a context cancellation inside a filter stays visible to errors.Is
// through the Python-shaped wrapper.
func raiseRT(format string, args ...interface{}) error {
	pe := &pypy.PyError{Kind: "RuntimeError", Msg: fmt.Sprintf(format, args...)}
	for _, a := range args {
		if err, ok := a.(error); ok {
			pe.Cause = err
			break
		}
	}
	return pe
}

// registerSchemas declares every proxy class the simulation supports. The
// property lists mirror the (much larger) ParaView property groups that
// the paper's five pipelines touch.
func (e *Engine) registerSchemas() {
	e.schemas = map[string]*classSchema{}

	// --- helper proxies -------------------------------------------------
	e.addSchema(&classSchema{
		name: "Plane", kind: kindHelper,
		props: map[string]PropSpec{
			"Origin": {Default: func() pypy.Value { return listOf(0, 0, 0) }},
			"Normal": {Default: func() pypy.Value { return listOf(1, 0, 0) }},
			"Offset": {Default: func() pypy.Value { return pypy.Float(0) }},
		},
	})
	e.addSchema(&classSchema{
		name: "Point Cloud", kind: kindHelper,
		props: map[string]PropSpec{
			"Center":         {Default: func() pypy.Value { return listOf(0, 0, 0) }},
			"NumberOfPoints": {Default: func() pypy.Value { return pypy.Int(100) }},
			"Radius":         {Default: func() pypy.Value { return pypy.Float(0) }},
		},
	})
	e.addSchema(&classSchema{
		name: "Camera", kind: kindHelper,
		props: map[string]PropSpec{},
		methods: map[string]methodFn{
			"SetPosition":   camSet("CameraPosition"),
			"SetFocalPoint": camSet("CameraFocalPoint"),
			"SetViewUp":     camSet("CameraViewUp"),
			"Azimuth":       camRotate("azimuth"),
			"Elevation":     camRotate("elevation"),
			"Zoom":          camRotate("zoom"),
		},
	})

	// --- readers ---------------------------------------------------------
	e.addSchema(&classSchema{
		name: "LegacyVTKReader", kind: kindSource,
		props: map[string]PropSpec{
			"FileNames":        {Default: func() pypy.Value { return &pypy.List{} }},
			"registrationName": {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "ExodusIIReader", kind: kindSource,
		props: map[string]PropSpec{
			"FileName":         {Default: func() pypy.Value { return pypy.Str("") }},
			"PointVariables":   {Default: func() pypy.Value { return &pypy.List{} }},
			"ElementBlocks":    {Default: func() pypy.Value { return &pypy.List{} }},
			"registrationName": {},
		},
		methods: pipelineMethods(),
	})

	// --- filters ----------------------------------------------------------
	e.addSchema(&classSchema{
		name: "Contour", kind: kindFilter,
		props: map[string]PropSpec{
			"Input":            {},
			"ContourBy":        {Default: func() pypy.Value { return strList("POINTS", "") }},
			"Isosurfaces":      {Default: func() pypy.Value { return &pypy.List{} }},
			"ComputeNormals":   {Default: func() pypy.Value { return pypy.Int(1) }},
			"ComputeScalars":   {Default: func() pypy.Value { return pypy.Int(0) }},
			"registrationName": {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "Slice", kind: kindFilter,
		props: map[string]PropSpec{
			"Input":               {},
			"SliceType":           {}, // set to a Plane helper at construction
			"SliceOffsetValues":   {Default: func() pypy.Value { return listOf(0) }},
			"Triangulatetheslice": {Default: func() pypy.Value { return pypy.Int(1) }},
			"registrationName":    {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "Clip", kind: kindFilter,
		props: map[string]PropSpec{
			"Input":    {},
			"ClipType": {}, // Plane helper
			// ParaView's Clip has Invert — not InsideOut. Unassisted GPT-4
			// sets InsideOut and gets an AttributeError (paper §IV-D).
			"Invert":           {Default: func() pypy.Value { return pypy.Int(1) }},
			"Scalars":          {Default: func() pypy.Value { return strList("POINTS", "") }},
			"Value":            {Default: func() pypy.Value { return pypy.Float(0) }},
			"registrationName": {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "Delaunay3D", kind: kindFilter,
		props: map[string]PropSpec{
			"Input":            {},
			"Alpha":            {Default: func() pypy.Value { return pypy.Float(0) }},
			"Tolerance":        {Default: func() pypy.Value { return pypy.Float(0.001) }},
			"Offset":           {Default: func() pypy.Value { return pypy.Float(2.5) }},
			"registrationName": {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "StreamTracer", kind: kindFilter,
		props: map[string]PropSpec{
			"Input":                   {},
			"Vectors":                 {Default: func() pypy.Value { return strList("POINTS", "") }},
			"SeedType":                {},
			"IntegrationDirection":    {Default: func() pypy.Value { return pypy.Str("BOTH") }},
			"MaximumStreamlineLength": {Default: func() pypy.Value { return pypy.Float(0) }},
			"MaximumSteps":            {Default: func() pypy.Value { return pypy.Int(2000) }},
			"registrationName":        {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "Tube", kind: kindFilter,
		props: map[string]PropSpec{
			"Input":            {},
			"Radius":           {Default: func() pypy.Value { return pypy.Float(0) }},
			"NumberofSides":    {Default: func() pypy.Value { return pypy.Int(6) }},
			"Capping":          {Default: func() pypy.Value { return pypy.Int(1) }},
			"registrationName": {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "Glyph", kind: kindFilter,
		props: map[string]PropSpec{
			"Input":     {},
			"GlyphType": {Default: func() pypy.Value { return pypy.Str("Arrow") }},
			// Real Glyph uses OrientationArray/ScaleArray — the
			// Scalars/Vectors attributes GPT-4 invents do not exist.
			"OrientationArray":            {Default: func() pypy.Value { return strList("POINTS", "No orientation array") }},
			"ScaleArray":                  {Default: func() pypy.Value { return strList("POINTS", "No scale array") }},
			"ScaleFactor":                 {Default: func() pypy.Value { return pypy.Float(0) }},
			"GlyphMode":                   {Default: func() pypy.Value { return pypy.Str("Uniform Spatial Distribution") }},
			"MaximumNumberOfSamplePoints": {Default: func() pypy.Value { return pypy.Int(500) }},
			"registrationName":            {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "ExtractSurface", kind: kindFilter,
		props: map[string]PropSpec{
			"Input":            {},
			"registrationName": {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "Threshold", kind: kindFilter,
		props: map[string]PropSpec{
			"Input":            {},
			"Scalars":          {Default: func() pypy.Value { return strList("POINTS", "") }},
			"LowerThreshold":   {Default: func() pypy.Value { return pypy.Float(0) }},
			"UpperThreshold":   {Default: func() pypy.Value { return pypy.Float(0) }},
			"ThresholdMethod":  {Default: func() pypy.Value { return pypy.Str("Between") }},
			"AllScalars":       {Default: func() pypy.Value { return pypy.Int(1) }},
			"registrationName": {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "Transform", kind: kindFilter,
		props: map[string]PropSpec{
			"Input":            {},
			"Transform":        {}, // nested TRS helper
			"registrationName": {},
		},
		methods: pipelineMethods(),
	})
	e.addSchema(&classSchema{
		name: "TransformHelper", kind: kindHelper,
		props: map[string]PropSpec{
			"Translate": {Default: func() pypy.Value { return listOf(0, 0, 0) }},
			"Rotate":    {Default: func() pypy.Value { return listOf(0, 0, 0) }},
			"Scale":     {Default: func() pypy.Value { return listOf(1, 1, 1) }},
		},
	})

	// --- view -------------------------------------------------------------
	e.addSchema(&classSchema{
		name: "RenderView", kind: kindView,
		props: map[string]PropSpec{
			"ViewSize": {Default: func() pypy.Value { return listOf(844, 539) }},
			"Background": {Default: func() pypy.Value {
				return listOf(render.DefaultBackground.R, render.DefaultBackground.G, render.DefaultBackground.B)
			}},
			"UseColorPaletteForBackground": {Default: func() pypy.Value { return pypy.Int(1) }},
			"CameraPosition":               {Default: func() pypy.Value { return listOf(0, 0, 6.69) }},
			"CameraFocalPoint":             {Default: func() pypy.Value { return listOf(0, 0, 0) }},
			"CameraViewUp":                 {Default: func() pypy.Value { return listOf(0, 1, 0) }},
			"CameraViewAngle":              {Default: func() pypy.Value { return pypy.Float(30) }},
			"CameraParallelProjection":     {Default: func() pypy.Value { return pypy.Int(0) }},
			"CameraParallelScale":          {Default: func() pypy.Value { return pypy.Float(1) }},
			"OrientationAxesVisibility":    {Default: func() pypy.Value { return pypy.Int(1) }},
			"AxesGrid":                     {},
			"registrationName":             {},
		},
		methods: map[string]methodFn{
			"ResetCamera": func(e *Engine, p *Proxy, args []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				e.resetCamera(p)
				return pypy.None, nil
			},
			"GetActiveCamera": func(e *Engine, p *Proxy, _ []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				cam := e.newProxy(e.schema("Camera"))
				cam.repView = p // camera manipulates this view
				return cam, nil
			},
			"ResetActiveCameraToPositiveX": viewLookFrom(vmath.V(1, 0, 0)),
			"ResetActiveCameraToNegativeX": viewLookFrom(vmath.V(-1, 0, 0)),
			"ResetActiveCameraToPositiveY": viewLookFrom(vmath.V(0, 1, 0)),
			"ResetActiveCameraToNegativeY": viewLookFrom(vmath.V(0, -1, 0)),
			"ResetActiveCameraToPositiveZ": viewLookFrom(vmath.V(0, 0, 1)),
			"ResetActiveCameraToNegativeZ": viewLookFrom(vmath.V(0, 0, -1)),
			"ApplyIsometricView": func(e *Engine, p *Proxy, _ []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				e.lookFrom(p, vmath.V(1, 1, 1))
				return pypy.None, nil
			},
			"Update": func(e *Engine, p *Proxy, _ []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				return pypy.None, nil
			},
		},
	})

	// --- layout -----------------------------------------------------------
	e.addSchema(&classSchema{
		name: "Layout", kind: kindLayout,
		props: map[string]PropSpec{
			"registrationName": {},
		},
		methods: map[string]methodFn{
			"AssignView": func(e *Engine, p *Proxy, args []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				// Accepted for API compatibility; single-view layouts only.
				return pypy.None, nil
			},
			"SplitHorizontal": func(e *Engine, p *Proxy, args []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				return pypy.Int(1), nil
			},
		},
	})

	// --- representation -----------------------------------------------------
	e.addSchema(&classSchema{
		name: "GeometryRepresentation", kind: kindRepresentation,
		props: map[string]PropSpec{
			"Visibility":            {Default: func() pypy.Value { return pypy.Int(1) }},
			"Representation":        {Default: func() pypy.Value { return pypy.Str("Surface") }},
			"ColorArrayName":        {Default: func() pypy.Value { return &pypy.List{Items: []pypy.Value{pypy.Str("POINTS"), pypy.None}} }},
			"DiffuseColor":          {Default: func() pypy.Value { return listOf(1, 1, 1) }},
			"AmbientColor":          {Default: func() pypy.Value { return listOf(1, 1, 1) }},
			"Opacity":               {Default: func() pypy.Value { return pypy.Float(1) }},
			"LineWidth":             {Default: func() pypy.Value { return pypy.Float(1) }},
			"PointSize":             {Default: func() pypy.Value { return pypy.Float(2) }},
			"EdgeColor":             {Default: func() pypy.Value { return listOf(0, 0, 0.5) }},
			"UseSeparateColorMap":   {Default: func() pypy.Value { return pypy.Int(0) }},
			"LookupTable":           {},
			"ScalarOpacityFunction": {},
			"SelectScaleArray":      {},
			"ScaleFactor":           {Default: func() pypy.Value { return pypy.Float(1) }},
		},
		methods: map[string]methodFn{
			"SetRepresentationType": func(e *Engine, p *Proxy, args []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				if len(args) > 0 {
					if s, ok := args[0].(pypy.Str); ok {
						p.Props["Representation"] = s
					}
				}
				return pypy.None, nil
			},
			"RescaleTransferFunctionToDataRange": func(e *Engine, p *Proxy, args []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				e.rescaleRepTF(p)
				return pypy.None, nil
			},
		},
	})

	// --- transfer functions --------------------------------------------------
	e.addSchema(&classSchema{
		name: "PVLookupTable", kind: kindTransferFunction,
		props: map[string]PropSpec{
			"RGBPoints":              {Default: func() pypy.Value { return &pypy.List{} }},
			"ColorSpace":             {Default: func() pypy.Value { return pypy.Str("Diverging") }},
			"NanColor":               {Default: func() pypy.Value { return listOf(1, 1, 0) }},
			"ScalarRangeInitialized": {Default: func() pypy.Value { return pypy.Int(0) }},
		},
		methods: map[string]methodFn{
			"ApplyPreset": func(e *Engine, p *Proxy, args []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				return pypy.None, nil
			},
			"RescaleTransferFunction": func(e *Engine, p *Proxy, args []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				if len(args) >= 2 {
					lo, _ := pypy.AsFloat(args[0])
					hi, _ := pypy.AsFloat(args[1])
					p.Props["RGBPoints"] = rescaledRGBPoints(propFloats(p, "RGBPoints"), lo, hi)
				}
				return pypy.None, nil
			},
		},
	})
	e.addSchema(&classSchema{
		name: "PiecewiseFunction", kind: kindTransferFunction,
		props: map[string]PropSpec{
			"Points": {Default: func() pypy.Value { return &pypy.List{} }},
		},
		methods: map[string]methodFn{
			"RescaleTransferFunction": func(e *Engine, p *Proxy, args []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
				return pypy.None, nil
			},
		},
	})
}

// pipelineMethods are shared by sources and filters.
func pipelineMethods() map[string]methodFn {
	return map[string]methodFn{
		"UpdatePipeline": func(e *Engine, p *Proxy, _ []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
			_, err := e.Dataset(p)
			return pypy.None, err
		},
		"UpdatePipelineInformation": func(e *Engine, p *Proxy, _ []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
			return pypy.None, nil
		},
		"GetDataInformation": func(e *Engine, p *Proxy, _ []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
			ds, err := e.Dataset(p)
			if err != nil {
				return nil, err
			}
			d := pypy.NewDict()
			d.Set("NumberOfPoints", pypy.Int(int64(ds.NumPoints())))
			return d, nil
		},
		"PointData": func(e *Engine, p *Proxy, _ []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
			ds, err := e.Dataset(p)
			if err != nil {
				return nil, err
			}
			names := ds.PointData().Names()
			items := make([]pypy.Value, len(names))
			for i, n := range names {
				items[i] = pypy.Str(n)
			}
			return &pypy.List{Items: items}, nil
		},
	}
}

func camSet(prop string) methodFn {
	return func(e *Engine, cam *Proxy, args []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
		view := cam.repView
		if view == nil {
			return pypy.None, nil
		}
		vals := make([]float64, 0, 3)
		for _, a := range args {
			vals = append(vals, valueFloats(a)...)
		}
		if len(vals) >= 3 {
			view.Props[prop] = listOf(vals[0], vals[1], vals[2])
		}
		return pypy.None, nil
	}
}

func camRotate(op string) methodFn {
	return func(e *Engine, cam *Proxy, args []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
		view := cam.repView
		if view == nil || len(args) == 0 {
			return pypy.None, nil
		}
		amt, _ := pypy.AsFloat(args[0])
		c := e.cameraFromView(view)
		switch op {
		case "azimuth":
			c.Azimuth(amt)
		case "elevation":
			c.Elevation(amt)
		case "zoom":
			c.Zoom(amt)
		}
		e.cameraToView(c, view)
		return pypy.None, nil
	}
}

func viewLookFrom(dir vmath.Vec3) methodFn {
	return func(e *Engine, view *Proxy, _ []pypy.Value, _ map[string]pypy.Value) (pypy.Value, error) {
		e.lookFrom(view, dir)
		return pypy.None, nil
	}
}

// execCtx returns the engine's execution context.
func (e *Engine) execCtx() context.Context {
	if e.ExecCtx != nil {
		return e.ExecCtx
	}
	return context.Background()
}

// Executions returns how many proxy computations (filters and readers)
// this engine has actually executed; content-hash cache hits do not
// count.
func (e *Engine) Executions() int64 { return e.executions.Load() }

// Dataset computes (lazily) the output dataset of a pipeline proxy.
//
// Each proxy is guarded by its own mutex, so independent branches of
// the pipeline DAG may be computed concurrently (see requireDataset)
// while a shared upstream stage still executes exactly once. With a
// DataCache configured, clean recomputations — the same stage re-run in
// a later repair iteration, or by a concurrent job — are answered from
// the content-hash cache without executing the filter.
func (e *Engine) Dataset(p *Proxy) (data.Dataset, error) {
	if p == nil {
		return nil, raiseRT("null pipeline proxy")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.dirty && p.dataset != nil {
		return p.dataset, nil
	}
	var ds data.Dataset
	var err error
	if cache := e.DataCache; cache != nil {
		if key, keyErr := e.contentKey(p); keyErr == nil {
			ds, _, err = cache.GetOrCompute(e.execCtx(), key, func() (data.Dataset, error) {
				return e.computeCounted(p)
			})
		} else {
			ds, err = e.computeCounted(p)
		}
	} else {
		ds, err = e.computeCounted(p)
	}
	if err != nil {
		return nil, err
	}
	p.dataset = ds
	p.dirty = false
	return ds, nil
}

// computeCounted is the single point every actually-executed pipeline
// stage funnels through (cache hits never reach it), so each execution
// gets a span named for its proxy class. A sweep observer rides the
// span's context: every par sweep the stage runs reports into it, and
// the aggregate (chunk counts, busy time, worst imbalance) lands as
// span attributes — the scheduler's behavior is visible per stage in
// the trace.
func (e *Engine) computeCounted(p *Proxy) (data.Dataset, error) {
	e.executions.Add(1)
	ctx, span := obs.Start(e.execCtx(), "stage."+p.Class.name)
	defer span.End()
	if p.RegName != "" {
		span.SetAttr("proxy", p.RegName)
	}
	var agg par.SweepAgg
	ctx = par.WithSweepObserver(ctx, agg.Observe)
	ds, err := e.compute(ctx, p)
	if sum := agg.Summary(); sum.Sweeps > 0 {
		span.SetAttr("par_sweeps", sum.Sweeps)
		span.SetAttr("par_chunks", sum.Chunks)
		span.SetAttr("par_busy_ms", sum.Busy.Milliseconds())
		span.SetAttr("par_chunk_max_ms", sum.MaxChunk.Milliseconds())
		span.SetAttr("par_imbalance", sum.MaxImbalance)
	}
	span.SetError(err)
	return ds, err
}

// requireDataset walks the dirty pipeline DAG feeding the given
// proxies and executes independent branches concurrently on the par
// worker pool; shared upstream stages are computed once (per-proxy
// locking). The first error in srcs order is returned, so failures are
// deterministic regardless of scheduling.
func (e *Engine) requireDataset(srcs []*Proxy) error {
	if len(srcs) == 0 {
		return nil
	}
	if len(srcs) == 1 {
		_, err := e.Dataset(srcs[0])
		return err
	}
	errs, perr := par.MapN(e.execCtx(), len(srcs), func(i int) error {
		_, err := e.Dataset(srcs[i])
		return err
	})
	if perr != nil {
		return perr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) inputDataset(p *Proxy) (data.Dataset, error) {
	if p.Input == nil {
		return nil, raiseRT("%s filter has no Input", p.Class.name)
	}
	return e.Dataset(p.Input)
}

func (e *Engine) compute(ctx context.Context, p *Proxy) (data.Dataset, error) {
	switch p.Class.name {
	case "LegacyVTKReader":
		file := readerFileName(p)
		if file == "" {
			return nil, raiseRT("LegacyVTKReader: no file name specified")
		}
		ds, err := vtkio.LoadLegacyVTK(e.resolveData(file))
		if err != nil {
			return nil, raiseRT("LegacyVTKReader: %v", err)
		}
		return ds, nil

	case "ExodusIIReader":
		file := readerFileName(p)
		if file == "" {
			return nil, raiseRT("ExodusIIReader: no file name specified")
		}
		ug, _, err := vtkio.LoadExodus(e.resolveData(file))
		if err != nil {
			return nil, raiseRT("ExodusIIReader: %v", err)
		}
		return ug, nil

	case "Contour":
		in, err := e.inputDataset(p)
		if err != nil {
			return nil, err
		}
		_, array := propAssoc(p, "ContourBy")
		if array == "" {
			if f := in.PointData().FirstScalar(); f != nil {
				array = f.Name
			}
		}
		values := propFloats(p, "Isosurfaces")
		if len(values) == 0 {
			lo, hi := data.FieldRange(in, array)
			values = []float64{(lo + hi) / 2}
		}
		out := data.NewPolyData()
		for _, v := range values {
			var part *data.PolyData
			var err error
			if pdIn, ok := in.(*data.PolyData); ok {
				// Contouring a surface (e.g. a slice) yields iso-lines.
				part, err = filters.ContourLines(pdIn, array, v)
			} else {
				part, err = filters.ContourContext(ctx, in, array, v)
			}
			if err != nil {
				return nil, raiseRT("Contour: %v", err)
			}
			out = mergePolyData(out, part)
		}
		if propBool(p, "ComputeNormals", true) {
			filters.ComputePointNormals(out)
		}
		return out, nil

	case "Slice":
		in, err := e.inputDataset(p)
		if err != nil {
			return nil, err
		}
		plane, err := planeFromHelper(p.Props["SliceType"])
		if err != nil {
			return nil, err
		}
		out, err := filters.SliceContext(ctx, in, plane)
		if err != nil {
			return nil, raiseRT("Slice: %v", err)
		}
		return out, nil

	case "Clip":
		in, err := e.inputDataset(p)
		if err != nil {
			return nil, err
		}
		plane, err := planeFromHelper(p.Props["ClipType"])
		if err != nil {
			return nil, err
		}
		// ParaView's Invert=1 default keeps the side *opposite* the
		// normal.
		if propBool(p, "Invert", true) {
			plane.Normal = plane.Normal.Neg()
		}
		switch t := in.(type) {
		case *data.PolyData:
			out, err := filters.ClipPolyDataContext(ctx, t, plane)
			if err != nil {
				return nil, err
			}
			return out, nil
		case *data.UnstructuredGrid:
			out, err := filters.ClipUnstructuredContext(ctx, t, plane)
			if err != nil {
				return nil, raiseRT("Clip: %v", err)
			}
			return out, nil
		case *data.ImageData:
			ug := imageToUGrid(t)
			out, err := filters.ClipUnstructuredContext(ctx, ug, plane)
			if err != nil {
				return nil, raiseRT("Clip: %v", err)
			}
			return out, nil
		}
		return nil, raiseRT("Clip: unsupported input type")

	case "Delaunay3D":
		in, err := e.inputDataset(p)
		if err != nil {
			return nil, err
		}
		out, err := filters.Delaunay3D(in)
		if err != nil {
			return nil, raiseRT("Delaunay3D: %v", err)
		}
		return out, nil

	case "StreamTracer":
		in, err := e.inputDataset(p)
		if err != nil {
			return nil, err
		}
		_, array := propAssoc(p, "Vectors")
		if array == "" {
			if f := in.PointData().FirstVector(); f != nil {
				array = f.Name
			}
		}
		var sampler filters.VectorSampler
		switch t := in.(type) {
		case *data.ImageData:
			s, err := filters.NewImageSampler(t, array)
			if err != nil {
				return nil, raiseRT("StreamTracer: %v", err)
			}
			sampler = s
		case *data.UnstructuredGrid:
			s, err := filters.NewGridSampler(t, array)
			if err != nil {
				return nil, raiseRT("StreamTracer: %v", err)
			}
			sampler = s
		default:
			return nil, raiseRT("StreamTracer: unsupported input type")
		}
		seeds, err := e.seedsFromHelper(p.Props["SeedType"], in)
		if err != nil {
			return nil, err
		}
		opt := filters.StreamTracerOptions{
			Both:     strings.ToUpper(propStr(p, "IntegrationDirection")) != "FORWARD",
			MaxSteps: int(propInt(p, "MaximumSteps", 2000)),
		}
		if ml := propFloat(p, "MaximumStreamlineLength", 0); ml > 0 {
			opt.MaxLength = ml / in.Bounds().Diagonal()
		}
		return filters.StreamTracerContext(ctx, sampler, seeds, opt)

	case "Tube":
		in, err := e.inputDataset(p)
		if err != nil {
			return nil, err
		}
		pd, ok := in.(*data.PolyData)
		if !ok {
			return nil, raiseRT("Tube: input must be polygonal data with lines")
		}
		return filters.Tube(pd, filters.TubeOptions{
			Radius:   propFloat(p, "Radius", 0),
			NumSides: int(propInt(p, "NumberofSides", 6)),
			Capped:   propBool(p, "Capping", true),
		}), nil

	case "Glyph":
		in, err := e.inputDataset(p)
		if err != nil {
			return nil, err
		}
		pd, ok := in.(*data.PolyData)
		if !ok {
			// Glyphing a non-polydata source: use its points.
			pd = datasetPoints(in)
		}
		gt := filters.GlyphCone
		switch propStr(p, "GlyphType") {
		case "Arrow":
			gt = filters.GlyphArrow
		case "Sphere":
			gt = filters.GlyphSphere
		}
		_, orient := propAssoc(p, "OrientationArray")
		if orient == "No orientation array" {
			orient = ""
		}
		return filters.GlyphContext(ctx, pd, filters.GlyphOptions{
			Type:             gt,
			OrientationArray: orient,
			ScaleFactor:      propFloat(p, "ScaleFactor", 0),
			MaxGlyphs:        int(propInt(p, "MaximumNumberOfSamplePoints", 500)),
		})

	case "ExtractSurface":
		in, err := e.inputDataset(p)
		if err != nil {
			return nil, err
		}
		switch t := in.(type) {
		case *data.PolyData:
			return t, nil
		case *data.UnstructuredGrid:
			return filters.ExtractSurface(t), nil
		}
		return nil, raiseRT("ExtractSurface: unsupported input type")

	case "Threshold":
		in, err := e.inputDataset(p)
		if err != nil {
			return nil, err
		}
		_, array := propAssoc(p, "Scalars")
		if array == "" {
			if f := in.PointData().FirstScalar(); f != nil {
				array = f.Name
			}
		}
		method := filters.ThresholdAllPoints
		if !propBool(p, "AllScalars", true) {
			method = filters.ThresholdAnyPoint
		}
		out, err := filters.Threshold(in,
			array,
			propFloat(p, "LowerThreshold", 0),
			propFloat(p, "UpperThreshold", 0),
			method)
		if err != nil {
			return nil, raiseRT("Threshold: %v", err)
		}
		return out, nil

	case "Transform":
		in, err := e.inputDataset(p)
		if err != nil {
			return nil, err
		}
		translate, rotate := vmath.V(0, 0, 0), vmath.V(0, 0, 0)
		scale := vmath.V(1, 1, 1)
		if hp, ok := p.Props["Transform"].(*Proxy); ok {
			translate = vmath.FromSlice(propFloats(hp, "Translate"))
			rotate = vmath.FromSlice(propFloats(hp, "Rotate"))
			if s := propFloats(hp, "Scale"); len(s) >= 3 {
				scale = vmath.FromSlice(s)
			}
		}
		m := filters.TransformFromTRS(translate, rotate, scale)
		switch t := in.(type) {
		case *data.PolyData:
			return filters.TransformPolyData(t, m), nil
		case *data.UnstructuredGrid:
			return filters.TransformGrid(t, m), nil
		}
		return nil, raiseRT("Transform: unsupported input type")
	}
	return nil, raiseRT("cannot execute proxy of class %s", p.Class.name)
}

func (e *Engine) resolveData(name string) string {
	if filepath.IsAbs(name) || e.DataDir == "" {
		return name
	}
	return filepath.Join(e.DataDir, name)
}

// planeFromHelper converts a Plane helper proxy to a geometric plane.
func planeFromHelper(v pypy.Value) (vmath.Plane, error) {
	p, ok := v.(*Proxy)
	if !ok || p.Class.name != "Plane" {
		return vmath.Plane{}, raiseRT("expected a 'Plane' helper proxy")
	}
	origin := vmath.FromSlice(propFloats(p, "Origin"))
	normal := vmath.FromSlice(propFloats(p, "Normal"))
	if normal.Len() == 0 {
		normal = vmath.V(1, 0, 0)
	}
	return vmath.NewPlane(origin, normal), nil
}

// seedsFromHelper converts a Point Cloud helper to seed positions; nil or
// unset helpers fall back to ParaView's default point cloud over the
// dataset bounds.
func (e *Engine) seedsFromHelper(v pypy.Value, ds data.Dataset) ([]vmath.Vec3, error) {
	n := 100
	bounds := ds.Bounds()
	center := bounds.Center()
	radius := bounds.Diagonal() * 0.1
	if p, ok := v.(*Proxy); ok && p.Class.name == "Point Cloud" {
		n = int(propInt(p, "NumberOfPoints", 100))
		if c := propFloats(p, "Center"); len(c) >= 3 {
			center = vmath.FromSlice(c)
		}
		if r := propFloat(p, "Radius", 0); r > 0 {
			radius = r
		}
	}
	// DefaultPointCloudSeeds uses radius = diagonal/10; build a box whose
	// diagonal is exactly 10*radius so the configured radius holds.
	half := radius * 10 / (2 * math.Sqrt(3))
	fake := vmath.AABB{
		Min: center.Sub(vmath.V(half, half, half)),
		Max: center.Add(vmath.V(half, half, half)),
	}
	return filters.DefaultPointCloudSeeds(fake, n), nil
}

// mergePolyData appends b's geometry to a (used for multi-value contours).
func mergePolyData(a, b *data.PolyData) *data.PolyData {
	if a.NumPoints() == 0 {
		return b
	}
	base := len(a.Pts)
	a.Pts = append(a.Pts, b.Pts...)
	shift := func(conn [][]int) [][]int {
		out := make([][]int, len(conn))
		for i, c := range conn {
			ids := make([]int, len(c))
			for j, id := range c {
				ids[j] = id + base
			}
			out[i] = ids
		}
		return out
	}
	a.Verts = append(a.Verts, shift(b.Verts)...)
	a.Lines = append(a.Lines, shift(b.Lines)...)
	a.Polys = append(a.Polys, shift(b.Polys)...)
	for i := 0; i < a.Points.Len(); i++ {
		f := a.Points.At(i)
		if g := b.Points.Get(f.Name); g != nil && g.NumComponents == f.NumComponents {
			f.Data = append(f.Data, g.Data...)
		} else {
			f.Data = append(f.Data, make([]float64, f.NumComponents*b.NumPoints())...)
		}
	}
	return a
}

// datasetPoints views any dataset as a point cloud PolyData.
func datasetPoints(ds data.Dataset) *data.PolyData {
	pd := data.NewPolyData()
	for i := 0; i < ds.NumPoints(); i++ {
		pd.AddPoint(ds.Point(i))
		pd.AddVert(i)
	}
	pd.Points = ds.PointData().Clone()
	return pd
}

// imageToUGrid converts an ImageData to hexahedral cells (for clipping).
func imageToUGrid(im *data.ImageData) *data.UnstructuredGrid {
	ug := data.NewUnstructuredGrid()
	for i := 0; i < im.NumPoints(); i++ {
		ug.AddPoint(im.Point(i))
	}
	ug.Points = im.Points.Clone()
	nx, ny, nz := im.Dims[0], im.Dims[1], im.Dims[2]
	for k := 0; k < nz-1; k++ {
		for j := 0; j < ny-1; j++ {
			for i := 0; i < nx-1; i++ {
				ug.AddCell(data.CellVoxel,
					im.Index(i, j, k), im.Index(i+1, j, k),
					im.Index(i, j+1, k), im.Index(i+1, j+1, k),
					im.Index(i, j, k+1), im.Index(i+1, j, k+1),
					im.Index(i, j+1, k+1), im.Index(i+1, j+1, k+1))
			}
		}
	}
	return ug
}

func rescaledRGBPoints(pts []float64, lo, hi float64) pypy.Value {
	if len(pts) < 8 || hi <= lo {
		return listOf(pts...)
	}
	oldLo, oldHi := pts[0], pts[len(pts)-4]
	span := oldHi - oldLo
	if span == 0 {
		span = 1
	}
	out := append([]float64{}, pts...)
	for i := 0; i+3 < len(out); i += 4 {
		t := (out[i] - oldLo) / span
		out[i] = lo + t*(hi-lo)
	}
	return listOf(out...)
}

// DiskFlowFileHelper regenerates the disk dataset (exposed for datagen
// CLI reuse and tests).
func DiskFlowFileHelper() *data.UnstructuredGrid { return datagen.DiskFlow(10, 48, 10) }
