package pvsim

import (
	"context"
	"errors"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/par"
	"chatvis/internal/pypy"
)

// cacheEngine builds a test engine with a content-hash dataset cache.
func cacheEngine(t *testing.T) *Engine {
	t.Helper()
	e := testEngine(t)
	e.DataCache = data.NewCache(64 << 20)
	return e
}

// TestContentHashCacheAcrossPropertyTweak pins the repair-iteration
// contract inside one engine: tweaking a filter property recomputes only
// that filter (the reader stays cached), and tweaking it back costs
// nothing at all — the content hash recognizes the earlier computation
// even though the dirty flag was set.
func TestContentHashCacheAcrossPropertyTweak(t *testing.T) {
	e := cacheEngine(t)
	reader := mustConstruct(t, e, "LegacyVTKReader", map[string]pypy.Value{
		"FileNames": &pypy.List{Items: []pypy.Value{pypy.Str("ml-100.vtk")}},
	})
	contour := mustConstruct(t, e, "Contour", map[string]pypy.Value{"Input": reader})
	if err := contour.SetAttr("Isosurfaces", listOf(0.5)); err != nil {
		t.Fatal(err)
	}

	if _, err := e.Dataset(contour); err != nil {
		t.Fatal(err)
	}
	if got := e.Executions(); got != 2 { // reader + contour
		t.Fatalf("first run executed %d stages, want 2", got)
	}

	// Tweak: only the contour recomputes; the reader is clean AND cached.
	if err := contour.SetAttr("Isosurfaces", listOf(0.6)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Dataset(contour); err != nil {
		t.Fatal(err)
	}
	if got := e.Executions(); got != 3 {
		t.Fatalf("after tweak executed %d stages total, want 3", got)
	}

	// Tweak back: the content hash matches the first run — zero work.
	if err := contour.SetAttr("Isosurfaces", listOf(0.5)); err != nil {
		t.Fatal(err)
	}
	ds, err := e.Dataset(contour)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Executions(); got != 3 {
		t.Fatalf("revert executed %d stages total, want 3 (cache hit)", got)
	}
	if ds.NumPoints() == 0 {
		t.Fatal("cached contour is empty")
	}
}

// TestRequireDatasetExecutesBranchesConcurrentlyOnce pins the parallel
// dirty-DAG walk: two filters sharing one upstream source compute
// concurrently while the shared stage executes exactly once.
func TestRequireDatasetExecutesBranchesConcurrentlyOnce(t *testing.T) {
	par.SetWorkers(4)
	defer par.SetWorkers(0)
	e := testEngine(t)
	reader := mustConstruct(t, e, "ExodusIIReader", map[string]pypy.Value{
		"FileName": pypy.Str("disk.ex2"),
	})
	stream := mustConstruct(t, e, "StreamTracer", map[string]pypy.Value{"Input": reader})
	tube := mustConstruct(t, e, "Tube", map[string]pypy.Value{"Input": stream})
	glyph := mustConstruct(t, e, "Glyph", map[string]pypy.Value{"Input": stream})

	if err := e.requireDataset([]*Proxy{tube, glyph}); err != nil {
		t.Fatal(err)
	}
	// reader + stream computed once, tube and glyph once each.
	if got := e.Executions(); got != 4 {
		t.Fatalf("executed %d stages, want 4 (shared upstream must run once)", got)
	}
	// A second walk over the clean DAG costs nothing.
	if err := e.requireDataset([]*Proxy{tube, glyph}); err != nil {
		t.Fatal(err)
	}
	if got := e.Executions(); got != 4 {
		t.Fatalf("clean re-walk executed %d stages, want 4", got)
	}
}

// TestCanceledFilterErrorStaysDetectable: a context cancellation inside
// a filter surfaces through the raiseRT RuntimeError wrapper with its
// identity intact — the dataset cache's singleflight relies on
// errors.Is(err, context.Canceled) to retry waiters instead of failing
// them with the canceled leader's error.
func TestCanceledFilterErrorStaysDetectable(t *testing.T) {
	e := testEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.ExecCtx = ctx
	reader := mustConstruct(t, e, "LegacyVTKReader", map[string]pypy.Value{
		"FileNames": &pypy.List{Items: []pypy.Value{pypy.Str("ml-100.vtk")}},
	})
	contour := mustConstruct(t, e, "Contour", map[string]pypy.Value{"Input": reader})
	if err := contour.SetAttr("Isosurfaces", listOf(0.5)); err != nil {
		t.Fatal(err)
	}
	_, err := e.Dataset(contour)
	if err == nil {
		t.Fatal("canceled context must abort the contour")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; context.Canceled must survive the RuntimeError wrap", err)
	}
}

// TestContentKeyStability: same configuration, same key; different
// parameter, different key; registration names don't matter.
func TestContentKeyStability(t *testing.T) {
	e := testEngine(t)
	mk := func(iso float64, regName string) *Proxy {
		reader := mustConstruct(t, e, "LegacyVTKReader", map[string]pypy.Value{
			"FileNames": &pypy.List{Items: []pypy.Value{pypy.Str("ml-100.vtk")}},
		})
		c := mustConstruct(t, e, "Contour", map[string]pypy.Value{
			"Input": reader, "registrationName": pypy.Str(regName),
		})
		if err := c.SetAttr("Isosurfaces", listOf(iso)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	k1, err := e.contentKey(mk(0.5, "a"))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := e.contentKey(mk(0.5, "b"))
	if err != nil {
		t.Fatal(err)
	}
	k3, err := e.contentKey(mk(0.7, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("identical pipelines must share a content key (regName is cosmetic)")
	}
	if k1 == k3 {
		t.Error("different isovalues must produce different content keys")
	}
}
