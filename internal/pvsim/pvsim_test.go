package pvsim

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/datagen"
	"chatvis/internal/pypy"
	"chatvis/internal/vmath"
	"chatvis/internal/vtkio"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	dataDir := t.TempDir()
	if err := vtkio.SaveLegacyVTK(filepath.Join(dataDir, "ml-100.vtk"),
		datagen.MarschnerLobb(16), "ml"); err != nil {
		t.Fatal(err)
	}
	if err := vtkio.SaveExodus(filepath.Join(dataDir, "disk.ex2"),
		datagen.DiskFlow(5, 16, 5), "disk"); err != nil {
		t.Fatal(err)
	}
	return NewEngine(dataDir, t.TempDir())
}

func mustConstruct(t *testing.T, e *Engine, class string, kwargs map[string]pypy.Value) *Proxy {
	t.Helper()
	v, err := e.construct(class, nil, kwargs)
	if err != nil {
		t.Fatalf("construct %s: %v", class, err)
	}
	return v.(*Proxy)
}

func TestProxyPropertyValidation(t *testing.T) {
	e := testEngine(t)
	glyph := mustConstruct(t, e, "Glyph", nil)
	// Known property: settable and readable.
	if err := glyph.SetAttr("ScaleFactor", pypy.Float(0.5)); err != nil {
		t.Fatal(err)
	}
	v, err := glyph.GetAttr("ScaleFactor")
	if err != nil || v.(pypy.Float) != 0.5 {
		t.Fatalf("ScaleFactor = %v, %v", v, err)
	}
	// Unknown property: AttributeError naming the class, both directions.
	err = glyph.SetAttr("Scalars", pypy.Int(1))
	pe, ok := err.(*pypy.PyError)
	if !ok || pe.Kind != "AttributeError" ||
		!strings.Contains(pe.Msg, "'Glyph'") || !strings.Contains(pe.Msg, "'Scalars'") {
		t.Fatalf("err = %v", err)
	}
	if _, err := glyph.GetAttr("Scalars"); err == nil {
		t.Fatal("read of unknown property should fail")
	}
	// Methods resolve to bound callables.
	m, err := glyph.GetAttr("UpdatePipeline")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*pypy.NativeFunc); !ok {
		t.Fatalf("UpdatePipeline is %T", m)
	}
	if glyph.Repr() == "" || glyph.Type() != "Glyph" {
		t.Error("identity accessors broken")
	}
	names := glyph.PropNames()
	if len(names) < 5 {
		t.Errorf("PropNames = %v", names)
	}
}

func TestConstructKwargsAndActiveSource(t *testing.T) {
	e := testEngine(t)
	reader := mustConstruct(t, e, "LegacyVTKReader", map[string]pypy.Value{
		"FileNames":        &pypy.List{Items: []pypy.Value{pypy.Str("ml-100.vtk")}},
		"registrationName": pypy.Str("ml-100.vtk"),
	})
	if reader.RegName != "ml-100.vtk" {
		t.Errorf("RegName = %q", reader.RegName)
	}
	if e.ActiveSource != reader {
		t.Error("constructor should set the active source")
	}
	// Filter without Input uses the active source implicitly.
	contour := mustConstruct(t, e, "Contour", nil)
	if contour.Input != reader {
		t.Error("implicit Input from active source missing")
	}
	// Bad Input type is rejected.
	if _, err := e.construct("Contour", nil, map[string]pypy.Value{
		"Input": pypy.Str("nope"),
	}); err == nil {
		t.Error("string Input should error")
	}
	// Unknown helper name is rejected.
	if _, err := e.construct("Slice", nil, map[string]pypy.Value{
		"SliceType": pypy.Str("Hyperboloid"),
	}); err == nil {
		t.Error("unknown SliceType should error")
	}
}

func TestDatasetComputationAndCaching(t *testing.T) {
	e := testEngine(t)
	reader := mustConstruct(t, e, "LegacyVTKReader", map[string]pypy.Value{
		"FileNames": &pypy.List{Items: []pypy.Value{pypy.Str("ml-100.vtk")}},
	})
	contour := mustConstruct(t, e, "Contour", map[string]pypy.Value{
		"Input":       reader,
		"Isosurfaces": &pypy.List{Items: []pypy.Value{pypy.Float(0.5)}},
	})
	ds1, err := e.Dataset(contour)
	if err != nil {
		t.Fatal(err)
	}
	if ds1.NumPoints() == 0 {
		t.Fatal("empty contour")
	}
	// Second fetch is cached (same pointer).
	ds2, _ := e.Dataset(contour)
	if ds1 != ds2 {
		t.Error("dataset should be cached")
	}
	// Changing a property dirties the proxy and recomputes.
	if err := contour.SetAttr("Isosurfaces", &pypy.List{Items: []pypy.Value{pypy.Float(0.8)}}); err != nil {
		t.Fatal(err)
	}
	ds3, err := e.Dataset(contour)
	if err != nil {
		t.Fatal(err)
	}
	if ds3 == ds1 {
		t.Error("property change must invalidate the cache")
	}
	// Changing an upstream property dirties downstream proxies too.
	ds4, _ := e.Dataset(contour)
	reader.markDirty()
	ds5, err := e.Dataset(contour)
	if err != nil {
		t.Fatal(err)
	}
	if ds4 == ds5 {
		t.Error("upstream invalidation must propagate")
	}
}

func TestMultiValueContourMerges(t *testing.T) {
	e := testEngine(t)
	reader := mustConstruct(t, e, "LegacyVTKReader", map[string]pypy.Value{
		"FileNames": &pypy.List{Items: []pypy.Value{pypy.Str("ml-100.vtk")}},
	})
	single := mustConstruct(t, e, "Contour", map[string]pypy.Value{
		"Input":       reader,
		"Isosurfaces": &pypy.List{Items: []pypy.Value{pypy.Float(0.5)}},
	})
	double := mustConstruct(t, e, "Contour", map[string]pypy.Value{
		"Input": reader,
		"Isosurfaces": &pypy.List{Items: []pypy.Value{
			pypy.Float(0.4), pypy.Float(0.6),
		}},
	})
	dsS, err := e.Dataset(single)
	if err != nil {
		t.Fatal(err)
	}
	dsD, err := e.Dataset(double)
	if err != nil {
		t.Fatal(err)
	}
	if dsD.NumPoints() <= dsS.NumPoints() {
		t.Errorf("two isosurfaces (%d pts) should exceed one (%d pts)",
			dsD.NumPoints(), dsS.NumPoints())
	}
	// Interpolated scalars on the merged surface stay at their isovalues.
	f := dsD.PointData().Get("var0")
	for i := 0; i < f.NumTuples(); i++ {
		v := f.Scalar(i)
		if math.Abs(v-0.4) > 1e-9 && math.Abs(v-0.6) > 1e-9 {
			t.Fatalf("merged contour scalar %v not at either isovalue", v)
		}
	}
}

func TestPlaneHelperRoundTrip(t *testing.T) {
	e := testEngine(t)
	slice := mustConstruct(t, e, "Slice", map[string]pypy.Value{"SliceType": pypy.Str("Plane")})
	helper, err := slice.GetAttr("SliceType")
	if err != nil {
		t.Fatal(err)
	}
	hp := helper.(*Proxy)
	if err := hp.SetAttr("Origin", &pypy.List{Items: []pypy.Value{
		pypy.Float(1), pypy.Float(2), pypy.Float(3)}}); err != nil {
		t.Fatal(err)
	}
	plane, err := planeFromHelper(hp)
	if err != nil {
		t.Fatal(err)
	}
	if !plane.Origin.NearEq(vmath.V(1, 2, 3), 1e-12) {
		t.Errorf("origin = %v", plane.Origin)
	}
	if _, err := planeFromHelper(pypy.Str("not a plane")); err == nil {
		t.Error("non-proxy should error")
	}
	// Zero normal falls back to +x.
	hp2 := e.newProxy(e.schema("Plane"))
	hp2.Props["Normal"] = &pypy.List{Items: []pypy.Value{pypy.Float(0), pypy.Float(0), pypy.Float(0)}}
	plane2, err := planeFromHelper(hp2)
	if err != nil {
		t.Fatal(err)
	}
	if !plane2.Normal.NearEq(vmath.V(1, 0, 0), 1e-12) {
		t.Errorf("fallback normal = %v", plane2.Normal)
	}
}

func TestViewCameraRoundTrip(t *testing.T) {
	e := testEngine(t)
	viewV, _ := e.createView()
	view := viewV.(*Proxy)
	cam := e.cameraFromView(view)
	cam.Position = vmath.V(5, 6, 7)
	cam.ViewUp = vmath.V(0, 0, 1)
	e.cameraToView(cam, view)
	got := e.cameraFromView(view)
	if !got.Position.NearEq(vmath.V(5, 6, 7), 1e-12) {
		t.Errorf("position = %v", got.Position)
	}
	if !got.ViewUp.NearEq(vmath.V(0, 0, 1), 1e-12) {
		t.Errorf("up = %v", got.ViewUp)
	}
}

func TestLookFromAndResetCamera(t *testing.T) {
	e := testEngine(t)
	reader := mustConstruct(t, e, "LegacyVTKReader", map[string]pypy.Value{
		"FileNames": &pypy.List{Items: []pypy.Value{pypy.Str("ml-100.vtk")}},
	})
	viewV, _ := e.createView()
	view := viewV.(*Proxy)
	if _, err := e.show([]pypy.Value{reader, view}, nil); err != nil {
		t.Fatal(err)
	}
	e.lookFrom(view, vmath.V(1, 0, 0))
	cam := e.cameraFromView(view)
	if cam.Position.X <= 1 {
		t.Errorf("camera should sit at +x beyond the data: %v", cam.Position)
	}
	if math.Abs(cam.Position.Y) > 1e-9 || math.Abs(cam.Position.Z) > 1e-9 {
		t.Errorf("camera off axis: %v", cam.Position)
	}
	// ResetCamera keeps direction but refits distance.
	e.resetCamera(view)
	cam2 := e.cameraFromView(view)
	if !cam2.Direction().NearEq(cam.Direction(), 1e-9) {
		t.Error("ResetCamera changed the view direction")
	}
}

func TestTransferFunctionRegistryRanges(t *testing.T) {
	e := testEngine(t)
	reader := mustConstruct(t, e, "ExodusIIReader", map[string]pypy.Value{
		"FileName": pypy.Str("disk.ex2"),
	})
	ds, err := e.Dataset(reader)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := e.tfRangeFor("Temp", ds)
	wantLo, wantHi := data.FieldRange(ds, "Temp")
	if lo != wantLo || hi != wantHi {
		t.Errorf("range = %v..%v, want %v..%v", lo, hi, wantLo, wantHi)
	}
	// Registered ranges are sticky until rescaled.
	lo2, hi2 := e.tfRangeFor("Temp", ds)
	if lo2 != lo || hi2 != hi {
		t.Error("range should be cached")
	}
	// lutFor maps the low end to cool, high end to warm.
	lut := e.lutFor("Temp", ds)
	cLow := lut.Map(lo)
	cHigh := lut.Map(hi)
	if cLow.B <= cLow.R || cHigh.R <= cHigh.B {
		t.Errorf("default cool-to-warm broken: %+v %+v", cLow, cHigh)
	}
	// Explicit RGBPoints override the default.
	tfp := e.newProxy(e.schema("PVLookupTable"))
	tfp.Props["RGBPoints"] = listOf(0, 0, 0, 0, 1, 1, 1, 1)
	e.colorTFs["Temp"] = tfp
	lut2 := e.lutFor("Temp", ds)
	if got := lut2.Map(0); got.R != 0 || got.G != 0 || got.B != 0 {
		t.Errorf("custom LUT low = %+v", got)
	}
}

func TestOutlineOf(t *testing.T) {
	b := vmath.AABB{Min: vmath.V(0, 0, 0), Max: vmath.V(1, 2, 3)}
	pd := outlineOf(b)
	if pd.NumPoints() != 8 || len(pd.Lines) != 12 {
		t.Fatalf("outline = %d pts %d lines", pd.NumPoints(), len(pd.Lines))
	}
	bounds := pd.Bounds()
	if !bounds.Min.NearEq(b.Min, 1e-12) || !bounds.Max.NearEq(b.Max, 1e-12) {
		t.Error("outline bounds mismatch")
	}
	// Total edge length of a box: 4*(dx+dy+dz).
	total := 0.0
	for _, l := range pd.Lines {
		total += pd.Pts[l[0]].Dist(pd.Pts[l[1]])
	}
	if math.Abs(total-4*(1+2+3)) > 1e-9 {
		t.Errorf("edge length sum = %v", total)
	}
}

func TestImageToUGridVolume(t *testing.T) {
	im := data.NewImageData(3, 3, 3, vmath.V(0, 0, 0), vmath.V(1, 1, 1))
	f := data.NewField("s", 1, im.NumPoints())
	im.Points.Add(f)
	ug := imageToUGrid(im)
	if ug.NumCells() != 8 {
		t.Fatalf("cells = %d, want 8 voxels", ug.NumCells())
	}
	if ug.Points.Get("s") == nil {
		t.Error("point data lost")
	}
}

func TestSeedsFromHelperDefaults(t *testing.T) {
	e := testEngine(t)
	disk := datagen.DiskFlow(4, 8, 4)
	seeds, err := e.seedsFromHelper(nil, disk)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 100 {
		t.Errorf("default seeds = %d", len(seeds))
	}
	helper := e.newProxy(e.schema("Point Cloud"))
	helper.Props["NumberOfPoints"] = pypy.Int(7)
	helper.Props["Center"] = listOf(1, 0, 1)
	helper.Props["Radius"] = pypy.Float(0.25)
	seeds, err = e.seedsFromHelper(helper, disk)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 7 {
		t.Errorf("seeds = %d", len(seeds))
	}
	for _, s := range seeds {
		if s.Dist(vmath.V(1, 0, 1)) > 0.25+1e-9 {
			t.Fatalf("seed %v outside configured sphere", s)
		}
	}
}

func TestShowRequiresPipelineProxy(t *testing.T) {
	e := testEngine(t)
	viewV, _ := e.createView()
	if _, err := e.show([]pypy.Value{viewV, viewV}, nil); err == nil {
		t.Error("Show(view) should be rejected")
	}
}

func TestRenderViewImageBackgroundPalette(t *testing.T) {
	e := testEngine(t)
	reader := mustConstruct(t, e, "LegacyVTKReader", map[string]pypy.Value{
		"FileNames": &pypy.List{Items: []pypy.Value{pypy.Str("ml-100.vtk")}},
	})
	contour := mustConstruct(t, e, "Contour", map[string]pypy.Value{
		"Input":       reader,
		"Isosurfaces": &pypy.List{Items: []pypy.Value{pypy.Float(0.5)}},
	})
	viewV, _ := e.createView()
	view := viewV.(*Proxy)
	if _, err := e.show([]pypy.Value{contour, view}, nil); err != nil {
		t.Fatal(err)
	}
	e.resetCamera(view)
	white, err := e.RenderViewImage(view, 60, 40, "WhiteBackground")
	if err != nil {
		t.Fatal(err)
	}
	r, g, b, _ := white.At(0, 0).RGBA()
	if r != 0xffff || g != 0xffff || b != 0xffff {
		t.Errorf("white palette corner = %v %v %v", r, g, b)
	}
	def, err := e.RenderViewImage(view, 60, 40, "")
	if err != nil {
		t.Fatal(err)
	}
	r2, _, b2, _ := def.At(0, 0).RGBA()
	if r2 == 0xffff && b2 == 0xffff {
		t.Error("default palette should be ParaView gray, not white")
	}
}

func TestRescaledRGBPoints(t *testing.T) {
	pts := []float64{0, 0, 0, 1, 1, 1, 0, 0}
	v := rescaledRGBPoints(pts, 10, 20)
	out := valueFloats(v)
	if out[0] != 10 || out[4] != 20 {
		t.Errorf("rescaled xs = %v %v", out[0], out[4])
	}
	if out[1] != 0 || out[5] != 1 {
		t.Error("colors must be preserved")
	}
	// Degenerate inputs pass through.
	if got := valueFloats(rescaledRGBPoints([]float64{1, 2}, 0, 1)); len(got) != 2 {
		t.Error("short input should pass through")
	}
}

func TestPropHelpers(t *testing.T) {
	e := testEngine(t)
	p := e.newProxy(e.schema("Tube"))
	p.Props["Radius"] = pypy.Int(3)
	if propFloat(p, "Radius", 0) != 3 {
		t.Error("propFloat on Int")
	}
	if propFloat(p, "Missing", 7) != 7 {
		t.Error("propFloat default")
	}
	p.Props["Capping"] = pypy.Bool(false)
	if propBool(p, "Capping", true) {
		t.Error("propBool false")
	}
	p.Props["Capping"] = pypy.Float(1)
	if !propBool(p, "Capping", false) {
		t.Error("propBool float truthy")
	}
	assoc, array := valueAssoc(&pypy.Tuple{Items: []pypy.Value{pypy.Str("POINTS"), pypy.Str("V")}})
	if assoc != "POINTS" || array != "V" {
		t.Errorf("valueAssoc = %q %q", assoc, array)
	}
	assoc, array = valueAssoc(pypy.Str("Temp"))
	if assoc != "POINTS" || array != "Temp" {
		t.Errorf("bare-string assoc = %q %q", assoc, array)
	}
	if fs := valueFloats(pypy.Float(2.5)); len(fs) != 1 || fs[0] != 2.5 {
		t.Errorf("valueFloats scalar = %v", fs)
	}
}

func TestDeleteRemovesFromPipeline(t *testing.T) {
	e := testEngine(t)
	mod := e.BuildSimpleModule()
	deleteFn := mod.Attrs["Delete"].(*pypy.NativeFunc)
	reader := mustConstruct(t, e, "LegacyVTKReader", nil)
	if len(e.Pipeline) != 1 {
		t.Fatal("pipeline should contain the reader")
	}
	if _, err := deleteFn.Fn(nil, []pypy.Value{reader}, nil); err != nil {
		t.Fatal(err)
	}
	if len(e.Pipeline) != 0 {
		t.Error("Delete should remove the proxy")
	}
	if e.ActiveSource != nil {
		t.Error("Delete should clear the active source")
	}
}

func TestAPIReference(t *testing.T) {
	e := testEngine(t)
	ref := e.APIReference()
	if len(ref.Classes) < 15 {
		t.Fatalf("classes = %d", len(ref.Classes))
	}
	if len(ref.Functions) < 20 {
		t.Fatalf("functions = %d", len(ref.Functions))
	}
	// The documented surface matches runtime validation: every listed
	// property really is settable, and the paper's hallucinated names are
	// absent.
	if !ref.HasProperty("Glyph", "OrientationArray") {
		t.Error("Glyph.OrientationArray should be documented")
	}
	if ref.HasProperty("Glyph", "Scalars") {
		t.Error("Glyph.Scalars must not exist (the GPT-4 hallucination)")
	}
	if !ref.HasProperty("Clip", "Invert") || ref.HasProperty("Clip", "InsideOut") {
		t.Error("Clip property surface wrong")
	}
	if !ref.HasProperty("RenderView", "ResetActiveCameraToPositiveX") {
		t.Error("view methods should be documented")
	}
	if _, ok := ref.Lookup("NoSuchClass"); ok {
		t.Error("unknown class lookup should fail")
	}
	text := ref.Format()
	for _, want := range []string{"StreamTracer", "SaveScreenshot", ".Isosurfaces", "Tube (filter)"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted reference missing %q", want)
		}
	}
	// Runtime agreement: every documented property of Tube is settable.
	tube := mustConstruct(t, e, "Tube", nil)
	cr, _ := ref.Lookup("Tube")
	for _, p := range cr.Props {
		if err := tube.SetAttr(p.Name, pypy.Int(1)); err != nil {
			t.Errorf("documented property Tube.%s rejected: %v", p.Name, err)
		}
	}
}
