package pvsim

import (
	"fmt"
	"sort"
	"strings"

	"chatvis/internal/pypy"
)

// The paper's future-work plan includes grounding the model with
// "function calls from ParaView's source code". This file is the
// reproduction's analog: the engine can enumerate its own API surface —
// every proxy class with its properties and methods, and every
// paraview.simple function — as a structured reference that can be fed to
// a model as an alternative (or complement) to few-shot snippets.

// PropRef documents one proxy property.
type PropRef struct {
	Name    string
	Default string // repr of the default value ("" when none)
}

// ClassRef documents one proxy class.
type ClassRef struct {
	Name    string
	Kind    string // "source", "filter", "view", "representation", ...
	Props   []PropRef
	Methods []string
}

// APIReference is the full simulated paraview.simple surface.
type APIReference struct {
	Classes   []ClassRef
	Functions []string
}

func kindName(k proxyKind) string {
	switch k {
	case kindSource:
		return "source"
	case kindFilter:
		return "filter"
	case kindView:
		return "view"
	case kindRepresentation:
		return "representation"
	case kindHelper:
		return "helper"
	case kindLayout:
		return "layout"
	case kindTransferFunction:
		return "transfer-function"
	}
	return "unknown"
}

// APIReference enumerates the engine's classes, properties, methods and
// module functions, sorted deterministically.
func (e *Engine) APIReference() *APIReference {
	ref := &APIReference{}
	var classNames []string
	for name := range e.schemas {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	for _, name := range classNames {
		s := e.schemas[name]
		cr := ClassRef{Name: name, Kind: kindName(s.kind)}
		var propNames []string
		for p := range s.props {
			propNames = append(propNames, p)
		}
		sort.Strings(propNames)
		for _, p := range propNames {
			pr := PropRef{Name: p}
			if d := s.props[p].Default; d != nil {
				pr.Default = d().Repr()
			}
			cr.Props = append(cr.Props, pr)
		}
		for m := range s.methods {
			cr.Methods = append(cr.Methods, m)
		}
		sort.Strings(cr.Methods)
		ref.Classes = append(ref.Classes, cr)
	}
	mod := e.BuildSimpleModule()
	for name, v := range mod.Attrs {
		if _, ok := v.(*pypy.NativeFunc); ok && !strings.HasPrefix(name, "_") {
			ref.Functions = append(ref.Functions, name)
		}
	}
	sort.Strings(ref.Functions)
	return ref
}

// Format renders the reference as the plain-text listing a prompt can
// embed (one class per block, pydoc-like).
func (r *APIReference) Format() string {
	var b strings.Builder
	b.WriteString("paraview.simple API reference (simulated)\n\n")
	b.WriteString("Module functions:\n")
	for _, f := range r.Functions {
		fmt.Fprintf(&b, "  %s(...)\n", f)
	}
	b.WriteString("\nProxy classes:\n")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "\n%s (%s)\n", c.Name, c.Kind)
		for _, p := range c.Props {
			if p.Default != "" {
				fmt.Fprintf(&b, "  .%s = %s\n", p.Name, p.Default)
			} else {
				fmt.Fprintf(&b, "  .%s\n", p.Name)
			}
		}
		for _, m := range c.Methods {
			fmt.Fprintf(&b, "  .%s(...)\n", m)
		}
	}
	return b.String()
}

// Lookup returns the class reference by name.
func (r *APIReference) Lookup(class string) (ClassRef, bool) {
	for _, c := range r.Classes {
		if c.Name == class {
			return c, true
		}
	}
	return ClassRef{}, false
}

// HasProperty reports whether class.property exists — the check a
// documentation-grounded model performs before emitting an assignment.
func (r *APIReference) HasProperty(class, prop string) bool {
	c, ok := r.Lookup(class)
	if !ok {
		return false
	}
	for _, p := range c.Props {
		if p.Name == prop {
			return true
		}
	}
	for _, m := range c.Methods {
		if m == prop {
			return true
		}
	}
	return false
}
