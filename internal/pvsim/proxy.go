// Package pvsim simulates ParaView's server manager: proxy objects with
// validated property sets, a lazy visualization pipeline executing the
// algorithms in internal/filters, render views backed by internal/render,
// and the paraview.simple function surface that generated Python scripts
// call.
//
// Fidelity matters here: scripts touching properties that do not exist on
// a proxy class must raise AttributeError with the proxy class name —
// that is precisely the failure mode of unassisted LLM scripts that the
// paper documents (e.g. Glyph.Scalars, Clip.InsideOut, view.ViewUp).
package pvsim

import (
	"fmt"
	"sort"
	"sync"

	"chatvis/internal/data"
	"chatvis/internal/pypy"
)

// proxyKind classifies proxies.
type proxyKind int

const (
	kindSource proxyKind = iota
	kindFilter
	kindView
	kindRepresentation
	kindHelper // nested property objects (Plane, Point Cloud seed, camera)
	kindLayout
	kindTransferFunction
)

// PropSpec declares one settable property of a proxy class.
type PropSpec struct {
	// Default is the initial value (cloned per instance).
	Default func() pypy.Value
}

// classSchema declares a proxy class: its properties and methods.
type classSchema struct {
	name    string
	kind    proxyKind
	props   map[string]PropSpec
	methods map[string]methodFn
}

// methodFn implements a proxy method.
type methodFn func(e *Engine, p *Proxy, args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error)

// Proxy is one server-manager object: class + property bag. It implements
// pypy.Object so scripts manipulate it with attribute syntax.
type Proxy struct {
	Class   *classSchema
	RegName string
	Props   map[string]pypy.Value
	Engine  *Engine

	// Pipeline state for sources/filters. mu serializes computation of
	// this proxy's dataset so independent DAG branches can execute
	// concurrently while a shared upstream stage runs exactly once
	// (lock order follows Input edges, which form a DAG — no cycles).
	Input   *Proxy
	mu      sync.Mutex
	dataset data.Dataset
	dirty   bool

	// View state.
	camera *viewCamera
	// Representation state.
	repOf   *Proxy // the pipeline proxy this representation displays
	repView *Proxy // the view it belongs to
}

// Type implements pypy.Value (the Python type name of the proxy).
func (p *Proxy) Type() string { return p.Class.name }

// Repr implements pypy.Value.
func (p *Proxy) Repr() string {
	if p.RegName != "" {
		return fmt.Sprintf("<paraview.%s '%s'>", p.Class.name, p.RegName)
	}
	return fmt.Sprintf("<paraview.%s>", p.Class.name)
}

// GetAttr implements pypy.Object: property reads and bound methods.
func (p *Proxy) GetAttr(name string) (pypy.Value, error) {
	if v, ok := p.Props[name]; ok {
		return v, nil
	}
	if m, ok := p.Class.methods[name]; ok {
		fn := m
		self := p
		return &pypy.NativeFunc{Name: name, Fn: func(_ *pypy.Interp, args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
			return fn(self.Engine, self, args, kwargs)
		}}, nil
	}
	return nil, &pypy.PyError{
		Kind: "AttributeError",
		Msg:  fmt.Sprintf("'%s' object has no attribute '%s'", p.Class.name, name),
	}
}

// SetAttr implements pypy.Object: validated property writes. Unknown
// properties raise AttributeError exactly like live ParaView proxies.
func (p *Proxy) SetAttr(name string, v pypy.Value) error {
	if _, ok := p.Class.props[name]; !ok {
		return &pypy.PyError{
			Kind: "AttributeError",
			Msg:  fmt.Sprintf("'%s' object has no attribute '%s'", p.Class.name, name),
		}
	}
	p.Props[name] = v
	p.markDirty()
	return nil
}

// markDirty invalidates this proxy's computed dataset and every dependent
// filter's.
func (p *Proxy) markDirty() {
	p.dirty = true
	if p.Engine == nil {
		return
	}
	for _, other := range p.Engine.Pipeline {
		if other.Input == p {
			other.markDirty()
		}
	}
}

// PropNames lists the proxy's property names, sorted (used by help-style
// output and tests).
func (p *Proxy) PropNames() []string {
	names := make([]string, 0, len(p.Class.props))
	for k := range p.Class.props {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// newProxy instantiates a class with default property values.
func (e *Engine) newProxy(schema *classSchema) *Proxy {
	p := &Proxy{
		Class:  schema,
		Props:  make(map[string]pypy.Value, len(schema.props)),
		Engine: e,
		dirty:  true,
	}
	for name, spec := range schema.props {
		if spec.Default != nil {
			p.Props[name] = spec.Default()
		} else {
			p.Props[name] = pypy.None
		}
	}
	return p
}

// Helpers to read typed property values.

func propStr(p *Proxy, name string) string {
	if v, ok := p.Props[name]; ok {
		if s, ok := v.(pypy.Str); ok {
			return string(s)
		}
	}
	return ""
}

func propFloat(p *Proxy, name string, def float64) float64 {
	if v, ok := p.Props[name]; ok {
		if f, ok := pypy.AsFloat(v); ok {
			return f
		}
	}
	return def
}

func propInt(p *Proxy, name string, def int64) int64 {
	if v, ok := p.Props[name]; ok {
		if n, ok := pypy.AsInt(v); ok {
			return n
		}
	}
	return def
}

func propBool(p *Proxy, name string, def bool) bool {
	if v, ok := p.Props[name]; ok {
		switch t := v.(type) {
		case pypy.Bool:
			return bool(t)
		case pypy.Int:
			return t != 0
		case pypy.Float:
			return t != 0
		}
	}
	return def
}

// propFloats extracts a list/tuple of numbers.
func propFloats(p *Proxy, name string) []float64 {
	v, ok := p.Props[name]
	if !ok {
		return nil
	}
	return valueFloats(v)
}

func valueFloats(v pypy.Value) []float64 {
	var items []pypy.Value
	switch t := v.(type) {
	case *pypy.List:
		items = t.Items
	case *pypy.Tuple:
		items = t.Items
	default:
		if f, ok := pypy.AsFloat(v); ok {
			return []float64{f}
		}
		return nil
	}
	out := make([]float64, 0, len(items))
	for _, it := range items {
		if f, ok := pypy.AsFloat(it); ok {
			out = append(out, f)
		}
	}
	return out
}

// propAssoc extracts ParaView's ('POINTS', 'name') association pairs,
// tolerating a bare string.
func propAssoc(p *Proxy, name string) (assoc, array string) {
	v, ok := p.Props[name]
	if !ok {
		return "", ""
	}
	return valueAssoc(v)
}

func valueAssoc(v pypy.Value) (assoc, array string) {
	switch t := v.(type) {
	case pypy.Str:
		return "POINTS", string(t)
	case *pypy.List:
		return assocFromItems(t.Items)
	case *pypy.Tuple:
		return assocFromItems(t.Items)
	}
	return "", ""
}

func assocFromItems(items []pypy.Value) (string, string) {
	if len(items) == 1 {
		if s, ok := items[0].(pypy.Str); ok {
			return "POINTS", string(s)
		}
	}
	if len(items) >= 2 {
		a, _ := items[0].(pypy.Str)
		b, _ := items[1].(pypy.Str)
		return string(a), string(b)
	}
	return "", ""
}

func listOf(vals ...float64) pypy.Value {
	items := make([]pypy.Value, len(vals))
	for i, v := range vals {
		items[i] = pypy.Float(v)
	}
	return &pypy.List{Items: items}
}

func strList(vals ...string) pypy.Value {
	items := make([]pypy.Value, len(vals))
	for i, v := range vals {
		items[i] = pypy.Str(v)
	}
	return &pypy.List{Items: items}
}
