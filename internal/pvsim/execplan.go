package pvsim

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chatvis/internal/plan"
	"chatvis/internal/pypy"
	"chatvis/internal/render"
	"chatvis/internal/vmath"
)

// ExecPlan executes a compiled plan directly against the engine — no
// interpreter pass — and returns the screenshot paths this call wrote.
//
// Execution is incremental: every pipeline stage is keyed by its
// canonical subtree hash (plus the on-disk identity of any reader files
// feeding it), and the engine memoizes the constructed proxy per key
// across ExecPlan calls. Re-executing a plan in which a repair iteration
// changed one property therefore re-runs only the changed stage and its
// downstream — upstream stages keep their computed datasets, and
// Engine.Executions() advances only by the changed-stage count. The keys
// deliberately carry the same content as the PR-3 data.Cache proxy keys
// (class, canonical props, input chain, file identity), so a configured
// DataCache composes: stages recomputed here still hit the shared
// process-wide dataset cache when any other engine computed them first.
//
// The plan must validate cleanly; plans with error diagnostics are
// refused before any stage runs (callers get structured diagnostics from
// plan.Validate or Compile — the cheap path — rather than a mid-run
// failure).
func (e *Engine) ExecPlan(ctx context.Context, p *plan.Plan) ([]string, error) {
	if diags := plan.Errors(plan.Validate(p, PlanSchema())); len(diags) > 0 {
		return nil, &pypy.PyError{
			Kind: "RuntimeError",
			Msg:  fmt.Sprintf("plan validation failed: %s", diags[0].Message),
		}
	}
	// The single in-order pass below requires inputs to precede their
	// dependents. Compile and Normalize both guarantee that; a decoded
	// plan merely guaranteed acyclic is rejected up front rather than
	// failing mid-run on a nil proxy.
	for i, st := range p.Stages {
		for _, in := range st.Inputs {
			if in >= i {
				return nil, raiseRT("plan stages are not topologically ordered (stage %s depends on a later stage)", st.ID)
			}
		}
	}
	if ctx != nil {
		e.ExecCtx = ctx
	}
	if e.planProxies == nil {
		e.planProxies = map[string]*Proxy{}
	}
	shotsBefore := len(e.Screenshots)

	hashes := p.StageHashes()
	proxies := make([]*Proxy, len(p.Stages))

	// Pass 1: pipeline stages, views and displays, in plan order.
	for i, st := range p.Stages {
		switch {
		case st.IsPipeline():
			key := e.planExecKey(p, i, hashes)
			if prox, ok := e.planProxies[key]; ok {
				proxies[i] = prox
				continue
			}
			prox, err := e.buildPlanProxy(st, proxies)
			if err != nil {
				return nil, err
			}
			proxies[i] = prox
			e.planProxies[key] = prox
		case st.Kind == plan.StageView:
			view := e.newProxy(e.schema("RenderView"))
			view.RegName = st.ID
			for name, v := range st.Props {
				pv, err := e.planToPyValue(v)
				if err != nil {
					return nil, err
				}
				view.Props[name] = pv
			}
			e.Views = append(e.Views, view)
			e.ActiveView = view
			proxies[i] = view
		case st.Kind == plan.StageDisplay:
			if err := e.execPlanDisplay(st, proxies); err != nil {
				return nil, err
			}
		}
	}

	// Pass 2: camera operations, per view, in recorded order (scripts
	// orient the camera after showing everything).
	for i, st := range p.Stages {
		if st.Kind != plan.StageView {
			continue
		}
		for _, op := range st.Camera {
			e.applyCameraOp(proxies[i], op)
		}
	}

	// Pass 3: screenshots.
	for _, st := range p.Stages {
		if st.Kind != plan.StageScreenshot {
			continue
		}
		if err := e.execPlanScreenshot(st, proxies); err != nil {
			return nil, err
		}
	}
	return append([]string(nil), e.Screenshots[shotsBefore:]...), nil
}

// planExecKey derives the incremental-execution key of a pipeline stage:
// its canonical subtree hash plus the identity (path, size, mtime) of
// every reader file in the subtree, mirroring the content the proxy
// cache keys (hash.go) encode.
func (e *Engine) planExecKey(p *plan.Plan, i int, hashes []string) string {
	var sb strings.Builder
	sb.WriteString(hashes[i])
	var walk func(j int)
	walk = func(j int) {
		st := p.Stages[j]
		if file := planReaderFile(st); file != "" {
			path := e.resolveData(file)
			if info, err := os.Stat(path); err == nil {
				fmt.Fprintf(&sb, "|%s:%d:%d", path, info.Size(), info.ModTime().UnixNano())
			} else {
				fmt.Fprintf(&sb, "|%s:unstattable", path)
			}
		}
		for _, in := range st.Inputs {
			walk(in)
		}
	}
	walk(i)
	return sb.String()
}

// planReaderFile extracts the input file of a reader stage.
func planReaderFile(st *plan.Stage) string {
	switch st.Class {
	case "LegacyVTKReader":
		if v, ok := st.Props["FileNames"]; ok {
			if v.Kind == plan.KindStr {
				return v.Str
			}
			if v.Kind == plan.KindList && len(v.List) > 0 && v.List[0].Kind == plan.KindStr {
				return v.List[0].Str
			}
		}
	case "ExodusIIReader":
		if v, ok := st.Props["FileName"]; ok && v.Kind == plan.KindStr {
			return v.Str
		}
	}
	return ""
}

// buildPlanProxy instantiates the proxy for a pipeline stage.
func (e *Engine) buildPlanProxy(st *plan.Stage, proxies []*Proxy) (*Proxy, error) {
	schema := e.schema(st.Class)
	if schema == nil {
		return nil, raiseRT("cannot execute plan stage of class %s", st.Class)
	}
	prox := e.newProxy(schema)
	prox.RegName = st.ID
	// Implicit helper defaults, exactly as the paraview.simple
	// constructors attach them: a normalized plan folds a default-valued
	// SliceType/ClipType away entirely, and execution must still see the
	// default Plane helper the script path would have.
	switch st.Class {
	case "Slice":
		prox.Props["SliceType"] = e.newProxy(e.schema("Plane"))
	case "Clip":
		prox.Props["ClipType"] = e.newProxy(e.schema("Plane"))
	case "StreamTracer":
		prox.Props["SeedType"] = e.newProxy(e.schema("Point Cloud"))
	case "Transform":
		prox.Props["Transform"] = e.newProxy(e.schema("TransformHelper"))
	}
	for name, v := range st.Props {
		pv, err := e.planToPyValue(v)
		if err != nil {
			return nil, err
		}
		prox.Props[name] = pv
	}
	if len(st.Inputs) > 0 {
		prox.Input = proxies[st.Inputs[0]]
	}
	e.Pipeline = append(e.Pipeline, prox)
	e.ActiveSource = prox
	return prox, nil
}

// execPlanDisplay realizes a display stage: representation creation plus
// the ColorBy / representation-type / rescale effects, with the same
// pipeline execution Show performs.
func (e *Engine) execPlanDisplay(st *plan.Stage, proxies []*Proxy) error {
	if len(st.Inputs) < 2 {
		return raiseRT("display stage %s has no resolved view", st.ID)
	}
	src, view := proxies[st.Inputs[0]], proxies[st.Inputs[1]]
	if src == nil || view == nil {
		return raiseRT("display stage %s references an unexecuted stage", st.ID)
	}
	// Show executes the pipeline eagerly; a failing filter fails here.
	ds, err := e.Dataset(src)
	if err != nil {
		return err
	}
	key := repKey{src, view}
	rep, ok := e.Reps[key]
	if !ok {
		rep = e.newProxy(e.schema("GeometryRepresentation"))
		rep.repOf = src
		rep.repView = view
		e.Reps[key] = rep
	}
	rep.Props["Visibility"] = pypy.Int(1)
	for name, v := range st.Props {
		switch name {
		case plan.PropColorArray, plan.PropRescaleTF:
			continue
		}
		pv, err := e.planToPyValue(v)
		if err != nil {
			return err
		}
		rep.Props[name] = pv
	}
	if ca, ok := st.Props[plan.PropColorArray]; ok {
		pv, err := e.planToPyValue(ca)
		if err != nil {
			return err
		}
		rep.Props["ColorArrayName"] = pv
		if ca.Kind == plan.KindList && len(ca.List) == 2 && ca.List[1].Kind == plan.KindStr {
			e.tfRangeFor(ca.List[1].Str, ds)
		}
	}
	if v, ok := st.Props[plan.PropRescaleTF]; ok && v.Kind == plan.KindBool && v.Bool {
		e.rescaleRepTF(rep)
	}
	return nil
}

// applyCameraOp performs one recorded camera operation on a view.
func (e *Engine) applyCameraOp(view *Proxy, op string) {
	if view == nil {
		return
	}
	switch op {
	case "ResetCamera":
		e.resetCamera(view)
	case "ApplyIsometricView", "ResetActiveCameraToIsometricView":
		e.lookFrom(view, vmath.V(1, 1, 1))
	case "ResetActiveCameraToPositiveX":
		e.lookFrom(view, vmath.V(1, 0, 0))
	case "ResetActiveCameraToNegativeX":
		e.lookFrom(view, vmath.V(-1, 0, 0))
	case "ResetActiveCameraToPositiveY":
		e.lookFrom(view, vmath.V(0, 1, 0))
	case "ResetActiveCameraToNegativeY":
		e.lookFrom(view, vmath.V(0, -1, 0))
	case "ResetActiveCameraToPositiveZ":
		e.lookFrom(view, vmath.V(0, 0, 1))
	case "ResetActiveCameraToNegativeZ":
		e.lookFrom(view, vmath.V(0, 0, -1))
	}
}

// execPlanScreenshot renders and saves one screenshot stage.
func (e *Engine) execPlanScreenshot(st *plan.Stage, proxies []*Proxy) error {
	if len(st.Inputs) < 1 || proxies[st.Inputs[0]] == nil {
		return raiseRT("screenshot stage %s has no resolved view", st.ID)
	}
	view := proxies[st.Inputs[0]]
	if err := e.renderPass(view); err != nil {
		return err
	}
	w, h := 0, 0
	if res, ok := st.Props[plan.PropImageResolution]; ok && res.Kind == plan.KindList && len(res.List) >= 2 {
		w, h = int(res.List[0].Num), int(res.List[1].Num)
	}
	palette := ""
	if v, ok := st.Props[plan.PropOverridePalette]; ok && v.Kind == plan.KindStr {
		palette = v.Str
	}
	filename := "screenshot.png"
	if v, ok := st.Props[plan.PropFilename]; ok && v.Kind == plan.KindStr {
		filename = v.Str
	}
	img, err := e.RenderViewImage(view, w, h, palette)
	if err != nil {
		return err
	}
	path := filename
	if !filepath.IsAbs(path) && e.OutDir != "" {
		path = filepath.Join(e.OutDir, path)
	}
	if err := render.SavePNG(path, img); err != nil {
		return raiseRT("SaveScreenshot: %v", err)
	}
	e.Screenshots = append(e.Screenshots, path)
	e.Rendered[path] = img
	return nil
}
