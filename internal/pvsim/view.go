package pvsim

import (
	"image"
	"sort"

	"chatvis/internal/data"
	"chatvis/internal/filters"
	"chatvis/internal/obs"
	"chatvis/internal/par"
	"chatvis/internal/pypy"
	"chatvis/internal/render"
	"chatvis/internal/vmath"
)

// visibleSources lists the pipeline proxies shown in a view, in
// pipeline-creation order (deterministic, unlike map iteration).
func (e *Engine) visibleSources(view *Proxy) []*Proxy {
	var srcs []*Proxy
	for key, rep := range e.Reps {
		if key.view == view && propBool(rep, "Visibility", true) {
			srcs = append(srcs, key.src)
		}
	}
	return sortByPipelineOrder(e, srcs)
}

// sortByPipelineOrder orders proxies by creation order so concurrent
// DAG execution reports errors deterministically; proxies deleted from
// the pipeline sort last.
func sortByPipelineOrder(e *Engine, srcs []*Proxy) []*Proxy {
	order := make(map[*Proxy]int, len(e.Pipeline))
	for i, p := range e.Pipeline {
		order[p] = i
	}
	at := func(p *Proxy) int {
		if i, ok := order[p]; ok {
			return i
		}
		return len(order)
	}
	sort.Slice(srcs, func(i, j int) bool { return at(srcs[i]) < at(srcs[j]) })
	return srcs
}

// viewCamera is retained for interface symmetry; camera state lives in the
// view proxy's Camera* properties so scripts can read and write it.
type viewCamera struct{}

// cameraFromView builds a render camera from the view proxy's properties.
func (e *Engine) cameraFromView(view *Proxy) *render.Camera {
	c := render.NewCamera()
	if v := propFloats(view, "CameraPosition"); len(v) >= 3 {
		c.Position = vmath.FromSlice(v)
	}
	if v := propFloats(view, "CameraFocalPoint"); len(v) >= 3 {
		c.FocalPoint = vmath.FromSlice(v)
	}
	if v := propFloats(view, "CameraViewUp"); len(v) >= 3 {
		c.ViewUp = vmath.FromSlice(v)
	}
	c.ViewAngle = propFloat(view, "CameraViewAngle", 30)
	c.ParallelProjection = propBool(view, "CameraParallelProjection", false)
	c.ParallelScale = propFloat(view, "CameraParallelScale", 1)
	return c
}

// cameraToView stores a render camera back into view properties.
func (e *Engine) cameraToView(c *render.Camera, view *Proxy) {
	view.Props["CameraPosition"] = listOf(c.Position.X, c.Position.Y, c.Position.Z)
	view.Props["CameraFocalPoint"] = listOf(c.FocalPoint.X, c.FocalPoint.Y, c.FocalPoint.Z)
	view.Props["CameraViewUp"] = listOf(c.ViewUp.X, c.ViewUp.Y, c.ViewUp.Z)
	view.Props["CameraParallelScale"] = pypy.Float(c.ParallelScale)
}

// viewBounds unions the bounds of everything visible in the view.
func (e *Engine) viewBounds(view *Proxy) vmath.AABB {
	b := vmath.EmptyAABB()
	for key, rep := range e.Reps {
		if key.view != view || !propBool(rep, "Visibility", true) {
			continue
		}
		if ds, err := e.Dataset(key.src); err == nil {
			b.Union(ds.Bounds())
		}
	}
	return b
}

// resetCamera implements ParaView's ResetCamera for a view.
func (e *Engine) resetCamera(view *Proxy) {
	b := e.viewBounds(view)
	if b.IsEmpty() {
		return
	}
	c := e.cameraFromView(view)
	c.ResetToBounds(b)
	e.cameraToView(c, view)
}

// lookFrom points the view's camera at the visible bounds from the given
// direction (the ResetActiveCameraTo* family and isometric view).
func (e *Engine) lookFrom(view *Proxy, dir vmath.Vec3) {
	b := e.viewBounds(view)
	if b.IsEmpty() {
		b = vmath.AABB{Min: vmath.V(-1, -1, -1), Max: vmath.V(1, 1, 1)}
	}
	c := e.cameraFromView(view)
	up := vmath.V(0, 0, 1)
	if dir.Norm().NearEq(vmath.V(0, 0, 1), 1e-9) || dir.Norm().NearEq(vmath.V(0, 0, -1), 1e-9) {
		up = vmath.V(0, 1, 0)
	}
	c.LookFrom(dir, up, b)
	e.cameraToView(c, view)
}

// rescaleRepTF rescales the transfer function of a representation's color
// array to the current data range.
func (e *Engine) rescaleRepTF(rep *Proxy) {
	if rep.repOf == nil {
		return
	}
	_, array := propAssoc(rep, "ColorArrayName")
	if array == "" {
		return
	}
	ds, err := e.Dataset(rep.repOf)
	if err != nil {
		return
	}
	lo, hi := data.FieldRange(ds, array)
	e.tfRanges[array] = &tfRange{lo: lo, hi: hi, initialized: true}
}

// tfRangeFor returns the transfer-function range for an array, falling
// back to the dataset's own range on first use (ParaView initializes the
// LUT from the first dataset colored by the array).
func (e *Engine) tfRangeFor(array string, ds data.Dataset) (float64, float64) {
	if r, ok := e.tfRanges[array]; ok && r.initialized {
		return r.lo, r.hi
	}
	lo, hi := data.FieldRange(ds, array)
	e.tfRanges[array] = &tfRange{lo: lo, hi: hi, initialized: true}
	return lo, hi
}

// lutFor builds a renderable lookup table for an array: explicit RGBPoints
// when the script configured them, the default cool-to-warm otherwise.
func (e *Engine) lutFor(array string, ds data.Dataset) *render.LookupTable {
	if tf, ok := e.colorTFs[array]; ok {
		pts := propFloats(tf, "RGBPoints")
		if len(pts) >= 8 {
			lut := &render.LookupTable{NaNColor: render.Color{R: 1, G: 1, B: 0}}
			for i := 0; i+3 < len(pts); i += 4 {
				lut.AddPoint(pts[i], render.Color{R: pts[i+1], G: pts[i+2], B: pts[i+3]})
			}
			return lut
		}
	}
	lo, hi := e.tfRangeFor(array, ds)
	return render.NewCoolToWarm(lo, hi)
}

// otfFor builds the volume opacity function for an array.
func (e *Engine) otfFor(array string, ds data.Dataset) *render.OpacityFunction {
	if tf, ok := e.opacityTFs[array]; ok {
		pts := propFloats(tf, "Points")
		// ParaView PiecewiseFunction points come as (x, alpha, mid, sharp).
		if len(pts) >= 8 {
			otf := &render.OpacityFunction{}
			for i := 0; i+3 < len(pts); i += 4 {
				otf.AddPoint(pts[i], pts[i+1])
			}
			return otf
		}
	}
	lo, hi := e.tfRangeFor(array, ds)
	return render.NewDefaultOpacity(lo, hi)
}

// outlineOf builds the 12-edge outline polydata of a dataset's bounds —
// ParaView's default representation for raw image data.
func outlineOf(b vmath.AABB) *data.PolyData {
	pd := data.NewPolyData()
	var ids [8]int
	for i := 0; i < 8; i++ {
		p := vmath.Vec3{
			X: pick(i&1 == 0, b.Min.X, b.Max.X),
			Y: pick(i&2 == 0, b.Min.Y, b.Max.Y),
			Z: pick(i&4 == 0, b.Min.Z, b.Max.Z),
		}
		ids[i] = pd.AddPoint(p)
	}
	edges := [12][2]int{
		{0, 1}, {2, 3}, {4, 5}, {6, 7},
		{0, 2}, {1, 3}, {4, 6}, {5, 7},
		{0, 4}, {1, 5}, {2, 6}, {3, 7},
	}
	for _, e2 := range edges {
		pd.AddLine(ids[e2[0]], ids[e2[1]])
	}
	return pd
}

func pick(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}

// RenderViewImage renders a view at the given resolution.
// overridePalette handles SaveScreenshot's OverrideColorPalette option
// ("WhiteBackground", "BlackBackground" or empty).
//
// The dirty upstream DAG is executed first, with independent branches
// in parallel (requireDataset); the serial actor-assembly loop below
// then finds every dataset already computed.
func (e *Engine) RenderViewImage(view *Proxy, w, h int, overridePalette string) (*image.RGBA, error) {
	ctx, span := obs.Start(e.execCtx(), "render.view")
	defer span.End()
	span.SetAttr("width", w)
	span.SetAttr("height", h)
	// Sweep observer: the renderer's geometry/raster/volume sweeps
	// report into agg, and the aggregate lands as span attributes.
	var agg par.SweepAgg
	ctx = par.WithSweepObserver(ctx, agg.Observe)
	if err := e.requireDataset(e.visibleSources(view)); err != nil {
		span.SetError(err)
		return nil, err
	}
	r := render.NewRenderer()
	r.Camera = e.cameraFromView(view)
	if bg := propFloats(view, "Background"); len(bg) >= 3 && !propBool(view, "UseColorPaletteForBackground", true) {
		r.Background = render.Color{R: bg[0], G: bg[1], B: bg[2]}
	}
	switch overridePalette {
	case "WhiteBackground":
		r.Background = render.White
	case "BlackBackground":
		r.Background = render.Black
	}
	for key, rep := range e.Reps {
		if key.view != view || !propBool(rep, "Visibility", true) {
			continue
		}
		ds, err := e.Dataset(key.src)
		if err != nil {
			return nil, err
		}
		repType := propStr(rep, "Representation")
		_, colorArray := propAssoc(rep, "ColorArrayName")

		if repType == "Volume" {
			im, ok := ds.(*data.ImageData)
			if !ok {
				// Volume rendering of non-image data is unsupported, as in
				// ParaView without a resampling step.
				return nil, raiseRT("volume rendering requires uniform grid data")
			}
			field := colorArray
			if field == "" {
				if f := im.Points.FirstScalar(); f != nil {
					field = f.Name
				}
			}
			va := &render.VolumeActor{
				Image: im, Field: field,
				CTF: e.lutFor(field, im), OTF: e.otfFor(field, im),
				Visible: true,
			}
			r.AddVolume(va)
			continue
		}

		var mesh *data.PolyData
		switch t := ds.(type) {
		case *data.PolyData:
			mesh = t
		case *data.UnstructuredGrid:
			mesh = filters.ExtractSurface(t)
		case *data.ImageData:
			// ParaView shows raw volumes as an outline unless volume
			// rendered — the source of the paper's "blank" GPT-4 image.
			mesh = outlineOf(t.Bounds())
		default:
			continue
		}
		a := render.NewActor(mesh)
		a.Rep = render.ParseRepresentation(repType)
		if dc := propFloats(rep, "DiffuseColor"); len(dc) >= 3 {
			a.SolidColor = render.Color{R: dc[0], G: dc[1], B: dc[2]}
		}
		a.Opacity = propFloat(rep, "Opacity", 1)
		a.LineWidth = propFloat(rep, "LineWidth", 1)
		a.PointSize = propFloat(rep, "PointSize", 2)
		if colorArray != "" {
			a.ColorField = colorArray
			a.LUT = e.lutFor(colorArray, ds)
		}
		r.AddActor(a)
	}
	if w <= 0 || h <= 0 {
		size := propFloats(view, "ViewSize")
		if len(size) >= 2 {
			w, h = int(size[0]), int(size[1])
		}
	}
	if w <= 0 {
		w = 844
	}
	if h <= 0 {
		h = 539
	}
	fb, err := r.RenderFBContext(ctx, w, h)
	if sum := agg.Summary(); sum.Sweeps > 0 {
		span.SetAttr("par_sweeps", sum.Sweeps)
		span.SetAttr("par_chunks", sum.Chunks)
		span.SetAttr("par_busy_ms", sum.Busy.Milliseconds())
		span.SetAttr("par_chunk_max_ms", sum.MaxChunk.Milliseconds())
		span.SetAttr("par_imbalance", sum.MaxImbalance)
	}
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	return fb.Image(), nil
}
