package pvsim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"chatvis/internal/plan"
	"chatvis/internal/pypy"
)

const planIsoScript = `from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

reader = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

contour1 = Contour(registrationName='Contour1', Input=reader)
contour1.ContourBy = ['POINTS', 'var0']
contour1.Isosurfaces = [0.5]

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [120, 80]

contour1Display = Show(contour1, renderView1)
renderView1.ResetCamera()

SaveScreenshot('plan-iso.png', renderView1,
    ImageResolution=[120, 80],
    OverrideColorPalette='WhiteBackground')
`

func compilePlan(t *testing.T, script string) *plan.Plan {
	t.Helper()
	c, err := plan.Compile(script, PlanSchema())
	if err != nil {
		t.Fatal(err)
	}
	if plan.HasErrors(c.Diags) {
		t.Fatalf("unexpected diagnostics:\n%s", plan.FormatDiagnostics(c.Diags))
	}
	return plan.Normalize(c.Plan, PlanSchema())
}

// TestExecPlanMatchesScriptExecution: executing the compiled plan
// renders the same image as interpreting the script it came from.
func TestExecPlanMatchesScriptExecution(t *testing.T) {
	scriptEngine := testEngine(t)

	// Interpret the script the established way.
	runScript(t, scriptEngine, planIsoScript)
	if len(scriptEngine.Screenshots) != 1 {
		t.Fatalf("script run wrote %d screenshots", len(scriptEngine.Screenshots))
	}
	want := scriptEngine.Rendered[scriptEngine.Screenshots[0]]

	// Execute the compiled plan on a fresh engine sharing the data dir.
	planEngine := NewEngine(scriptEngine.DataDir, t.TempDir())
	p := compilePlan(t, planIsoScript)
	shots, err := planEngine.ExecPlan(context.Background(), p)
	if err != nil {
		t.Fatalf("ExecPlan: %v", err)
	}
	if len(shots) != 1 {
		t.Fatalf("plan run wrote %d screenshots", len(shots))
	}
	got := planEngine.Rendered[shots[0]]
	if got.Bounds() != want.Bounds() {
		t.Fatalf("bounds differ: %v vs %v", got.Bounds(), want.Bounds())
	}
	diff := 0
	for i := range want.Pix {
		if want.Pix[i] != got.Pix[i] {
			diff++
		}
	}
	if diff != 0 {
		t.Errorf("plan-executed image differs from script-executed image in %d bytes", diff)
	}
}

// TestExecPlanIncrementalRepairIteration pins the tentpole contract: a
// two-iteration repair run re-executes only the stages whose canonical
// subtree hash changed. Iteration 1 executes reader+contour; iteration 2
// (isovalue tweaked, as a repair would) recomputes the contour alone;
// re-running an identical plan computes nothing.
func TestExecPlanIncrementalRepairIteration(t *testing.T) {
	e := testEngine(t)
	p1 := compilePlan(t, planIsoScript)

	if _, err := e.ExecPlan(context.Background(), p1); err != nil {
		t.Fatal(err)
	}
	if got := e.Executions(); got != 2 { // reader + contour
		t.Fatalf("iteration 1 executed %d stages, want 2", got)
	}

	// Repair iteration: one property changed.
	p2 := compilePlan(t, strings.Replace(planIsoScript, "[0.5]", "[0.62]", 1))
	if changed := plan.ChangedStages(p1, p2); len(changed) != 2 { // contour + its display
		t.Fatalf("plan diff = %v", changed)
	}
	if _, err := e.ExecPlan(context.Background(), p2); err != nil {
		t.Fatal(err)
	}
	if got := e.Executions(); got != 3 { // + contour only; reader reused
		t.Fatalf("iteration 2 executed %d stages total, want 3", got)
	}

	// Identical plan: nothing recomputes at all.
	if _, err := e.ExecPlan(context.Background(), p2); err != nil {
		t.Fatal(err)
	}
	if got := e.Executions(); got != 3 {
		t.Fatalf("identical re-exec computed %d stages total, want 3", got)
	}
	if len(e.Screenshots) != 3 {
		t.Fatalf("screenshots = %d, want 3", len(e.Screenshots))
	}
}

// TestExecPlanRefusesInvalidPlans: error diagnostics block execution
// before any stage runs.
func TestExecPlanRefusesInvalidPlans(t *testing.T) {
	e := testEngine(t)
	script := strings.Replace(planIsoScript, "contour1.Isosurfaces = [0.5]",
		"contour1.Isosurfaces = [0.5]\ncontour1.ContourMethod = 'fast'", 1)
	c, err := plan.Compile(script, PlanSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.HasErrors(c.Diags) {
		t.Fatal("expected diagnostics for the unknown property")
	}
	if _, err := e.ExecPlan(context.Background(), c.Plan); err == nil {
		t.Fatal("ExecPlan should refuse a plan with error diagnostics")
	}
	if e.Executions() != 0 {
		t.Errorf("invalid plan still executed %d stages", e.Executions())
	}

	// A decoded plan with a forward input reference (acyclic, so Decode
	// accepts it) is refused before any stage runs, not mid-run.
	forward, err := plan.Decode([]byte(`{"version":1,"stages":[
		{"id":"contour1","kind":"filter","class":"Contour","inputs":[1]},
		{"id":"reader1","kind":"source","class":"LegacyVTKReader",
		 "props":{"FileNames":["ml-100.vtk"]}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecPlan(context.Background(), forward); err == nil ||
		!strings.Contains(err.Error(), "topologically") {
		t.Errorf("forward-reference plan not refused up front: %v", err)
	}
	if e.Executions() != 0 {
		t.Errorf("unordered plan still executed %d stages", e.Executions())
	}
}

// runScript interprets a script against an engine, pvpython-style, for
// in-package tests (importing pvpython here would be a cycle).
func runScript(t *testing.T, e *Engine, script string) {
	t.Helper()
	var out bytes.Buffer
	interp := pypy.NewInterp(&out)
	simple := e.BuildSimpleModule()
	interp.RegisterModule(simple)
	if root, ok := interp.Modules["paraview"]; ok {
		simple.Attrs["paraview"] = root
	}
	if err := interp.Run(script); err != nil {
		t.Fatalf("script failed: %v\n%s", err, out.String())
	}
}
