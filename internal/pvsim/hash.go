package pvsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"chatvis/internal/pypy"
)

// contentKey returns a stable content hash identifying the output
// dataset of a pipeline proxy: its class, its canonicalized property
// bag, its input's key (recursively), and — for readers — the identity
// of the file on disk (resolved path, size, mtime). Two proxies with
// the same key compute bit-identical datasets, so the key addresses the
// process-wide dataset cache: a repair iteration that re-runs a script
// with one parameter tweaked only recomputes the stages downstream of
// the tweak, and concurrent jobs reading the same file share one parse.
//
// An error means the proxy is not cacheable (an unhashable property
// value, or a reader whose file cannot be stat'ed); the caller falls
// back to direct computation.
func (e *Engine) contentKey(p *Proxy) (string, error) {
	h := sha256.New()
	if err := e.writeProxyKey(h, p); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (e *Engine) writeProxyKey(w io.Writer, p *Proxy) error {
	fmt.Fprintf(w, "class=%s;", p.Class.name)
	switch p.Class.name {
	case "LegacyVTKReader", "ExodusIIReader":
		file := readerFileName(p)
		if file == "" {
			return fmt.Errorf("pvsim: reader has no file name")
		}
		path := e.resolveData(file)
		info, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("pvsim: stat %s: %w", path, err)
		}
		fmt.Fprintf(w, "file=%s|%d|%d;", path, info.Size(), info.ModTime().UnixNano())
	}
	if p.Input != nil {
		io.WriteString(w, "input{")
		if err := e.writeProxyKey(w, p.Input); err != nil {
			return err
		}
		io.WriteString(w, "};")
	}
	names := make([]string, 0, len(p.Props))
	for name := range p.Props {
		// The registration name is cosmetic and Input is keyed above.
		if name == "registrationName" || name == "Input" {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s=", name)
		if err := e.writeValueKey(w, p.Props[name]); err != nil {
			return err
		}
		io.WriteString(w, ";")
	}
	return nil
}

func (e *Engine) writeValueKey(w io.Writer, v pypy.Value) error {
	switch t := v.(type) {
	case nil, pypy.NoneValue:
		io.WriteString(w, "none")
	case pypy.Str:
		fmt.Fprintf(w, "s%q", string(t))
	case pypy.Int:
		fmt.Fprintf(w, "i%d", int64(t))
	case pypy.Float:
		// Hex float keeps the key exact across formatting changes.
		fmt.Fprintf(w, "f%x", math.Float64bits(float64(t)))
	case pypy.Bool:
		fmt.Fprintf(w, "b%v", bool(t))
	case *pypy.List:
		io.WriteString(w, "[")
		for _, it := range t.Items {
			if err := e.writeValueKey(w, it); err != nil {
				return err
			}
			io.WriteString(w, ",")
		}
		io.WriteString(w, "]")
	case *pypy.Tuple:
		io.WriteString(w, "(")
		for _, it := range t.Items {
			if err := e.writeValueKey(w, it); err != nil {
				return err
			}
			io.WriteString(w, ",")
		}
		io.WriteString(w, ")")
	case *Proxy:
		// Nested helper proxies (Plane, Point Cloud, Transform helper).
		io.WriteString(w, "proxy{")
		if err := e.writeProxyKey(w, t); err != nil {
			return err
		}
		io.WriteString(w, "}")
	default:
		return fmt.Errorf("pvsim: unhashable property value of type %s", v.Type())
	}
	return nil
}

// readerFileName extracts the configured input file of a reader proxy.
func readerFileName(p *Proxy) string {
	switch p.Class.name {
	case "LegacyVTKReader":
		switch t := p.Props["FileNames"].(type) {
		case *pypy.List:
			if len(t.Items) > 0 {
				if s, ok := t.Items[0].(pypy.Str); ok {
					return string(s)
				}
			}
		case pypy.Str:
			return string(t)
		}
	case "ExodusIIReader":
		if s := propStr(p, "FileName"); s != "" {
			return s
		}
		if v, ok := p.Props["FileName"].(*pypy.List); ok && len(v.Items) > 0 {
			if s, ok := v.Items[0].(pypy.Str); ok {
				return string(s)
			}
		}
	}
	return ""
}
