package pvsim

import (
	"fmt"
	"path/filepath"
	"strings"

	"chatvis/internal/pypy"
	"chatvis/internal/render"
	"chatvis/internal/vmath"
)

// BuildSimpleModule assembles the paraview.simple module namespace bound
// to this engine. The function and constructor set mirrors the slice of
// paraview.simple that the paper's five pipelines (and the hallucinating
// baselines) touch.
func (e *Engine) BuildSimpleModule() *pypy.ModuleVal {
	mod := &pypy.ModuleVal{Name: "paraview.simple", Attrs: map[string]pypy.Value{}}
	nf := func(name string, fn func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error)) {
		mod.Attrs[name] = &pypy.NativeFunc{Name: name, Fn: func(_ *pypy.Interp, args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
			return fn(args, kwargs)
		}}
	}

	// Pipeline constructors.
	for _, name := range []string{
		"LegacyVTKReader", "ExodusIIReader", "Contour", "Slice", "Clip",
		"Delaunay3D", "StreamTracer", "Tube", "Glyph", "ExtractSurface",
		"Threshold", "Transform",
	} {
		className := name
		nf(className, func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
			return e.construct(className, args, kwargs)
		})
	}
	nf("OpenDataFile", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		if len(args) == 0 {
			return nil, &pypy.PyError{Kind: "TypeError", Msg: "OpenDataFile() missing file name"}
		}
		s, ok := args[0].(pypy.Str)
		if !ok {
			return nil, &pypy.PyError{Kind: "TypeError", Msg: "OpenDataFile() argument must be str"}
		}
		name := string(s)
		switch strings.ToLower(filepath.Ext(name)) {
		case ".vtk":
			return e.construct("LegacyVTKReader", nil, map[string]pypy.Value{
				"FileNames": &pypy.List{Items: []pypy.Value{pypy.Str(name)}},
			})
		case ".ex2", ".e", ".exo":
			return e.construct("ExodusIIReader", nil, map[string]pypy.Value{
				"FileName": pypy.Str(name),
			})
		}
		return nil, raiseRT("OpenDataFile: unsupported file type '%s'", name)
	})

	// Views and layouts.
	nf("CreateView", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		return e.createView()
	})
	nf("CreateRenderView", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		return e.createView()
	})
	nf("GetActiveView", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		if e.ActiveView == nil {
			return pypy.None, nil
		}
		return e.ActiveView, nil
	})
	nf("GetActiveViewOrCreate", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		if e.ActiveView != nil {
			return e.ActiveView, nil
		}
		return e.createView()
	})
	nf("SetActiveView", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		if len(args) > 0 {
			if v, ok := args[0].(*Proxy); ok && v.Class.kind == kindView {
				e.ActiveView = v
			}
		}
		return pypy.None, nil
	})
	nf("CreateLayout", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		l := e.newProxy(e.schema("Layout"))
		if n, ok := kwargs["name"]; ok {
			if s, ok := n.(pypy.Str); ok {
				l.RegName = string(s)
			}
		}
		e.Layouts = append(e.Layouts, l)
		return l, nil
	})
	nf("GetLayout", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		if len(e.Layouts) == 0 {
			l := e.newProxy(e.schema("Layout"))
			e.Layouts = append(e.Layouts, l)
		}
		return e.Layouts[0], nil
	})

	// Display control.
	nf("Show", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		return e.show(args, kwargs)
	})
	nf("Hide", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		src, view, err := e.proxyAndView(args)
		if err != nil {
			return nil, err
		}
		if rep, ok := e.Reps[repKey{src, view}]; ok {
			rep.Props["Visibility"] = pypy.Int(0)
		}
		return pypy.None, nil
	})
	nf("Render", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		view, err := e.viewArg(args)
		if err != nil {
			return nil, err
		}
		return pypy.None, e.renderPass(view)
	})
	nf("ResetCamera", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		view, err := e.viewArg(args)
		if err != nil {
			return nil, err
		}
		e.resetCamera(view)
		return pypy.None, nil
	})
	nf("GetDisplayProperties", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		src, view, err := e.proxyAndView(args)
		if err != nil {
			return nil, err
		}
		if rep, ok := e.Reps[repKey{src, view}]; ok {
			return rep, nil
		}
		return nil, raiseRT("proxy is not shown in the view")
	})
	nf("ColorBy", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		return e.colorBy(args)
	})
	nf("GetColorTransferFunction", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		name, err := strArg(args, 0, "GetColorTransferFunction")
		if err != nil {
			return nil, err
		}
		if tf, ok := e.colorTFs[name]; ok {
			return tf, nil
		}
		tf := e.newProxy(e.schema("PVLookupTable"))
		tf.RegName = name
		e.colorTFs[name] = tf
		return tf, nil
	})
	nf("GetOpacityTransferFunction", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		name, err := strArg(args, 0, "GetOpacityTransferFunction")
		if err != nil {
			return nil, err
		}
		if tf, ok := e.opacityTFs[name]; ok {
			return tf, nil
		}
		tf := e.newProxy(e.schema("PiecewiseFunction"))
		tf.RegName = name
		e.opacityTFs[name] = tf
		return tf, nil
	})
	nf("SaveScreenshot", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		return e.saveScreenshot(args, kwargs)
	})

	// Active-object helpers.
	nf("GetActiveSource", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		if e.ActiveSource == nil {
			return pypy.None, nil
		}
		return e.ActiveSource, nil
	})
	nf("SetActiveSource", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		if len(args) > 0 {
			if p, ok := args[0].(*Proxy); ok {
				e.ActiveSource = p
			}
		}
		return pypy.None, nil
	})
	nf("Delete", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		if len(args) > 0 {
			if p, ok := args[0].(*Proxy); ok {
				for i, q := range e.Pipeline {
					if q == p {
						e.Pipeline = append(e.Pipeline[:i], e.Pipeline[i+1:]...)
						break
					}
				}
				if e.ActiveSource == p {
					e.ActiveSource = nil
				}
			}
		}
		return pypy.None, nil
	})

	// Module-level camera orientation helpers operating on the active view.
	dirs := map[string][3]float64{
		"ResetActiveCameraToPositiveX": {1, 0, 0},
		"ResetActiveCameraToNegativeX": {-1, 0, 0},
		"ResetActiveCameraToPositiveY": {0, 1, 0},
		"ResetActiveCameraToNegativeY": {0, -1, 0},
		"ResetActiveCameraToPositiveZ": {0, 0, 1},
		"ResetActiveCameraToNegativeZ": {0, 0, -1},
	}
	for name, d := range dirs {
		dir := d
		nf(name, func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
			view, err := e.viewArg(args)
			if err != nil {
				return nil, err
			}
			e.lookFrom(view, vec3(dir))
			return pypy.None, nil
		})
	}
	nf("ResetActiveCameraToIsometricView", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		view, err := e.viewArg(args)
		if err != nil {
			return nil, err
		}
		e.lookFrom(view, vec3([3]float64{1, 1, 1}))
		return pypy.None, nil
	})

	// Misc no-ops present in real scripts.
	nf("Interact", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		return pypy.None, nil
	})
	nf("UpdateScalarBars", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		return pypy.None, nil
	})
	nf("HideScalarBarIfNotNeeded", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		return pypy.None, nil
	})
	nf("GetParaViewVersion", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		return pypy.Str("5.12"), nil
	})
	nf("_DisableFirstRenderCameraReset", func(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
		e.firstRenderResetDisabled = true
		return pypy.None, nil
	})
	return mod
}

func vec3(a [3]float64) vmath.Vec3 { return vmath.V(a[0], a[1], a[2]) }

func strArg(args []pypy.Value, i int, fn string) (string, error) {
	if i >= len(args) {
		return "", &pypy.PyError{Kind: "TypeError", Msg: fmt.Sprintf("%s() missing required argument", fn)}
	}
	s, ok := args[i].(pypy.Str)
	if !ok {
		return "", &pypy.PyError{Kind: "TypeError", Msg: fmt.Sprintf("%s() argument must be str, not %s", fn, args[i].Type())}
	}
	return string(s), nil
}

// construct builds a pipeline proxy, applying constructor kwargs as
// property assignments exactly like paraview.simple constructors.
func (e *Engine) construct(className string, args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
	schema := e.schema(className)
	if schema == nil {
		return nil, &pypy.PyError{Kind: "NameError", Msg: fmt.Sprintf("name '%s' is not defined", className)}
	}
	p := e.newProxy(schema)
	// Nested helper defaults.
	switch className {
	case "Slice":
		p.Props["SliceType"] = e.newProxy(e.schema("Plane"))
	case "Clip":
		p.Props["ClipType"] = e.newProxy(e.schema("Plane"))
	case "StreamTracer":
		p.Props["SeedType"] = e.newProxy(e.schema("Point Cloud"))
	case "Transform":
		p.Props["Transform"] = e.newProxy(e.schema("TransformHelper"))
	}
	for name, v := range kwargs {
		switch name {
		case "registrationName":
			if s, ok := v.(pypy.Str); ok {
				p.RegName = string(s)
			}
			continue
		case "Input":
			in, ok := v.(*Proxy)
			if !ok {
				return nil, &pypy.PyError{Kind: "TypeError",
					Msg: fmt.Sprintf("Input property must be a pipeline proxy, not %s", v.Type())}
			}
			p.Input = in
			continue
		case "SliceType", "ClipType", "SeedType":
			// Accept a helper name string ('Plane', 'Point Cloud').
			if s, ok := v.(pypy.Str); ok {
				hs := e.schema(string(s))
				if hs == nil || hs.kind != kindHelper {
					return nil, raiseRT("unknown %s '%s'", name, string(s))
				}
				p.Props[name] = e.newProxy(hs)
				continue
			}
			if hp, ok := v.(*Proxy); ok {
				p.Props[name] = hp
				continue
			}
		}
		if err := p.SetAttr(name, v); err != nil {
			return nil, err
		}
	}
	// Positional Input (rare but legal: Contour(reader)).
	if p.Input == nil && len(args) > 0 {
		if in, ok := args[0].(*Proxy); ok && schema.kind == kindFilter {
			p.Input = in
		}
	}
	if schema.kind == kindFilter && p.Input == nil && e.ActiveSource != nil {
		// paraview.simple uses the active source as implicit input.
		p.Input = e.ActiveSource
	}
	e.Pipeline = append(e.Pipeline, p)
	e.ActiveSource = p
	return p, nil
}

func (e *Engine) createView() (pypy.Value, error) {
	v := e.newProxy(e.schema("RenderView"))
	e.Views = append(e.Views, v)
	e.ActiveView = v
	return v, nil
}

// viewArg resolves an optional view argument (default: active view,
// creating one as paraview.simple does).
func (e *Engine) viewArg(args []pypy.Value) (*Proxy, error) {
	if len(args) > 0 {
		if _, isNone := args[0].(pypy.NoneValue); !isNone {
			v, ok := args[0].(*Proxy)
			if !ok || v.Class.kind != kindView {
				return nil, &pypy.PyError{Kind: "TypeError",
					Msg: fmt.Sprintf("argument must be a render view proxy, not %s", args[0].Type())}
			}
			return v, nil
		}
	}
	if e.ActiveView == nil {
		v, _ := e.createView()
		return v.(*Proxy), nil
	}
	return e.ActiveView, nil
}

// proxyAndView resolves (pipelineProxy, view) argument pairs.
func (e *Engine) proxyAndView(args []pypy.Value) (*Proxy, *Proxy, error) {
	var src *Proxy
	if len(args) > 0 {
		p, ok := args[0].(*Proxy)
		if !ok {
			return nil, nil, &pypy.PyError{Kind: "TypeError",
				Msg: fmt.Sprintf("argument 1 must be a pipeline proxy, not %s", args[0].Type())}
		}
		src = p
	} else {
		src = e.ActiveSource
	}
	if src == nil {
		return nil, nil, raiseRT("no active source")
	}
	var rest []pypy.Value
	if len(args) > 1 {
		rest = args[1:]
	}
	view, err := e.viewArg(rest)
	if err != nil {
		return nil, nil, err
	}
	return src, view, nil
}

// show implements simple.Show: create (or fetch) the representation of a
// proxy in a view.
func (e *Engine) show(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
	src, view, err := e.proxyAndView(args)
	if err != nil {
		return nil, err
	}
	if src.Class.kind != kindSource && src.Class.kind != kindFilter {
		return nil, &pypy.PyError{Kind: "TypeError",
			Msg: fmt.Sprintf("Show() argument 1 must be a pipeline proxy, not '%s'", src.Class.name)}
	}
	// Execute the pipeline now — Show fails in real ParaView when the
	// filter cannot run.
	if _, err := e.Dataset(src); err != nil {
		return nil, err
	}
	key := repKey{src, view}
	rep, ok := e.Reps[key]
	if !ok {
		rep = e.newProxy(e.schema("GeometryRepresentation"))
		rep.repOf = src
		rep.repView = view
		rep.Props["Visibility"] = pypy.Int(1)
		e.Reps[key] = rep
	}
	rep.Props["Visibility"] = pypy.Int(1)
	if rt, ok := kwargs["representationType"]; ok {
		if s, ok := rt.(pypy.Str); ok {
			rep.Props["Representation"] = s
		}
	}
	if len(args) > 2 {
		if s, ok := args[2].(pypy.Str); ok {
			rep.Props["Representation"] = s
		}
	}
	return rep, nil
}

// colorBy implements simple.ColorBy with ParaView's duck-typed check: the
// first argument must behave like a representation (expose
// UseSeparateColorMap). Passing a pipeline proxy — as unassisted GPT-4
// does with ColorBy(contour, None) — raises the same AttributeError the
// paper reports.
func (e *Engine) colorBy(args []pypy.Value) (pypy.Value, error) {
	if len(args) == 0 {
		return nil, &pypy.PyError{Kind: "TypeError", Msg: "ColorBy() missing required argument: 'rep'"}
	}
	rep, ok := args[0].(*Proxy)
	if !ok {
		return nil, &pypy.PyError{Kind: "TypeError",
			Msg: fmt.Sprintf("ColorBy() argument 1 must be a representation, not %s", args[0].Type())}
	}
	if _, err := rep.GetAttr("UseSeparateColorMap"); err != nil {
		return nil, err
	}
	var value pypy.Value = pypy.None
	if len(args) > 1 {
		value = args[1]
	}
	if _, isNone := value.(pypy.NoneValue); isNone {
		rep.Props["ColorArrayName"] = &pypy.List{Items: []pypy.Value{pypy.Str("POINTS"), pypy.None}}
		return pypy.None, nil
	}
	assoc, array := valueAssoc(value)
	if array == "" {
		return nil, &pypy.PyError{Kind: "ValueError",
			Msg: "ColorBy() value must be an ('ASSOCIATION', 'arrayname') pair or None"}
	}
	rep.Props["ColorArrayName"] = &pypy.List{Items: []pypy.Value{pypy.Str(assoc), pypy.Str(array)}}
	// Initialize the array's transfer function range, as ParaView does.
	if rep.repOf != nil {
		if ds, err := e.Dataset(rep.repOf); err == nil {
			e.tfRangeFor(array, ds)
		}
	}
	return pypy.None, nil
}

// renderPass executes pipelines of everything visible (errors surface to
// the script like a failed Render) and applies the first-render camera
// reset.
func (e *Engine) renderPass(view *Proxy) error {
	// Execute the dirty DAG of everything shown in the view; independent
	// branches run concurrently. Hidden representations still execute
	// (as before): a Show()n-then-Hidden filter keeps failing a Render
	// the way real ParaView surfaces execution errors.
	var srcs []*Proxy
	for key := range e.Reps {
		if key.view == view {
			srcs = append(srcs, key.src)
		}
	}
	if err := e.requireDataset(sortByPipelineOrder(e, srcs)); err != nil {
		return err
	}
	if !e.firstRenderResetDisabled && !e.renderedOnce[view] {
		e.resetCamera(view)
	}
	if e.renderedOnce == nil {
		e.renderedOnce = map[*Proxy]bool{}
	}
	e.renderedOnce[view] = true
	return nil
}

// saveScreenshot implements simple.SaveScreenshot.
func (e *Engine) saveScreenshot(args []pypy.Value, kwargs map[string]pypy.Value) (pypy.Value, error) {
	if len(args) == 0 {
		return nil, &pypy.PyError{Kind: "TypeError", Msg: "SaveScreenshot() missing required argument: 'filename'"}
	}
	filename, err := strArg(args, 0, "SaveScreenshot")
	if err != nil {
		return nil, err
	}
	var rest []pypy.Value
	if len(args) > 1 {
		rest = args[1:]
	}
	view, err := e.viewArg(rest)
	if err != nil {
		return nil, err
	}
	if err := e.renderPass(view); err != nil {
		return nil, err
	}
	w, h := 0, 0
	if res, ok := kwargs["ImageResolution"]; ok {
		vals := valueFloats(res)
		if len(vals) >= 2 {
			w, h = int(vals[0]), int(vals[1])
		}
	}
	palette := ""
	if p, ok := kwargs["OverrideColorPalette"]; ok {
		if s, ok := p.(pypy.Str); ok {
			palette = string(s)
		}
	}
	img, err := e.RenderViewImage(view, w, h, palette)
	if err != nil {
		return nil, err
	}
	path := filename
	if !filepath.IsAbs(path) && e.OutDir != "" {
		path = filepath.Join(e.OutDir, path)
	}
	if err := render.SavePNG(path, img); err != nil {
		return nil, raiseRT("SaveScreenshot: %v", err)
	}
	e.Screenshots = append(e.Screenshots, path)
	e.Rendered[path] = img
	return pypy.Bool(true), nil
}
