package pvsim

import (
	"strings"
	"sync"

	"chatvis/internal/plan"
	"chatvis/internal/pypy"
)

// The plan IR validates against a schema derived from this engine's own
// classSchema registry — the same declarations that execute scripts —
// so static validation can never drift from runtime behaviour.

var (
	planSchemaOnce sync.Once
	planSchemaVal  *plan.Schema
)

// propTypeOverrides refines property types that cannot be inferred from
// an empty-list default.
var propTypeOverrides = map[string]plan.PropType{
	"Contour.Isosurfaces":      plan.TypeNumList,
	"PVLookupTable.RGBPoints":  plan.TypeNumList,
	"PiecewiseFunction.Points": plan.TypeNumList,
}

// PlanSchema returns the plan-IR schema of the simulated paraview.simple
// surface: every proxy class with typed properties (types inferred from
// the engine defaults), its methods, and the module-level function set.
// The schema is immutable and cached process-wide.
func PlanSchema() *plan.Schema {
	planSchemaOnce.Do(func() {
		planSchemaVal = NewEngine("", "").buildPlanSchema()
	})
	return planSchemaVal
}

func (e *Engine) buildPlanSchema() *plan.Schema {
	s := &plan.Schema{
		Classes:   map[string]*plan.Class{},
		Functions: map[string]bool{},
	}
	for name, cs := range e.schemas {
		pc := &plan.Class{
			Name:    name,
			Kind:    kindName(cs.kind),
			Props:   map[string]plan.Prop{},
			Methods: map[string]bool{},
		}
		for pname, spec := range cs.props {
			var def *plan.Value
			if spec.Default != nil {
				if v, ok := pyToPlanValue(spec.Default()); ok {
					def = &v
				}
			}
			ptype := plan.InferType(def)
			if o, ok := propTypeOverrides[name+"."+pname]; ok {
				ptype = o
			}
			pc.Props[pname] = plan.Prop{Type: ptype, Default: def}
		}
		for mname := range cs.methods {
			pc.Methods[mname] = true
		}
		s.Classes[name] = pc
	}
	mod := e.BuildSimpleModule()
	for name, v := range mod.Attrs {
		if _, ok := v.(*pypy.NativeFunc); ok && !strings.HasPrefix(name, "_") {
			s.Functions[name] = true
		}
	}
	return s
}

// pyToPlanValue converts an interpreter value to a plan value.
func pyToPlanValue(v pypy.Value) (plan.Value, bool) {
	switch t := v.(type) {
	case nil, pypy.NoneValue:
		return plan.NoneV(), true
	case pypy.Str:
		return plan.StrV(string(t)), true
	case pypy.Int:
		return plan.IntV(int64(t)), true
	case pypy.Float:
		return plan.NumV(float64(t)), true
	case pypy.Bool:
		return plan.BoolV(bool(t)), true
	case *pypy.List:
		return pySeqToPlan(t.Items)
	case *pypy.Tuple:
		return pySeqToPlan(t.Items)
	case *Proxy:
		h := plan.HelperV(t.Class.name)
		for name, pv := range t.Props {
			if cv, ok := pyToPlanValue(pv); ok {
				h.Obj[name] = cv
			}
		}
		return h, true
	}
	return plan.Value{}, false
}

func pySeqToPlan(items []pypy.Value) (plan.Value, bool) {
	vals := make([]plan.Value, len(items))
	for i, it := range items {
		cv, ok := pyToPlanValue(it)
		if !ok {
			return plan.Value{}, false
		}
		vals[i] = cv
	}
	return plan.ListV(vals...), true
}

// planToPyValue converts a plan value to an interpreter value; helper
// values become freshly constructed helper proxies.
func (e *Engine) planToPyValue(v plan.Value) (pypy.Value, error) {
	switch v.Kind {
	case plan.KindNone:
		return pypy.None, nil
	case plan.KindStr:
		return pypy.Str(v.Str), nil
	case plan.KindNum:
		if v.IsInt {
			return pypy.Int(int64(v.Num)), nil
		}
		return pypy.Float(v.Num), nil
	case plan.KindBool:
		return pypy.Bool(v.Bool), nil
	case plan.KindList:
		items := make([]pypy.Value, len(v.List))
		for i, it := range v.List {
			pv, err := e.planToPyValue(it)
			if err != nil {
				return nil, err
			}
			items[i] = pv
		}
		return &pypy.List{Items: items}, nil
	case plan.KindHelper:
		hs := e.schema(v.Class)
		if hs == nil {
			return nil, raiseRT("unknown helper class '%s'", v.Class)
		}
		hp := e.newProxy(hs)
		for name, pv := range v.Obj {
			cv, err := e.planToPyValue(pv)
			if err != nil {
				return nil, err
			}
			hp.Props[name] = cv
		}
		return hp, nil
	}
	return nil, raiseRT("unsupported plan value kind %d", v.Kind)
}
