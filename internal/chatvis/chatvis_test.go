package chatvis

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"chatvis/internal/datagen"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
	"chatvis/internal/pvsim"
	"chatvis/internal/vtkio"
)

// The paper's five user prompts (small resolution for test speed; the
// full-resolution versions live in internal/eval).
func testPrompts() map[string]string {
	res := "480 x 270 pixels"
	return map[string]string{
		"isosurface":    `Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename ml-iso-screenshot.png. The rendered view and saved screenshot should be ` + res + `.`,
		"slice-contour": `Please generate a ParaView Python script for the following operations. Read in the file named 'ml-100.vtk'. Slice the volume in a plane parallel to the y-z plane at x=0. Take a contour through the slice at the value 0.5. Color the contour red. Rotate the view to look at the +x direction. Save a screenshot of the result in the filename 'ml-slice-iso-screenshot.png'. The rendered view and saved screenshot should be ` + res + `.`,
		"volume":        `Please generate a ParaView Python script for the following operations. Read in the file named 'ml-100.vtk'. Generate a volume rendering using the default transfer function. Rotate the view to an isometric direction. Save a screenshot of the result in the filename 'ml-dvr-screenshot.png'. The rendered view and saved screenshot should be ` + res + `.`,
		"delaunay":      `Please generate a ParaView Python script for the following operations. Read in the file named 'can_points.ex2'. Generate a 3d Delaunay triangulation of the dataset. Clip the data with a y-z plane at x=0, keeping the -x half of the data and removing the +x half. Render the image as a wireframe. View the result in an isometric view. Save a screenshot of the result in the filename 'points-surf-clip-screenshot.png'. The rendered view and saved screenshot should be ` + res + `.`,
		"streamlines":   `Please generate a ParaView Python script for the following operations. Read in the file named 'disk.ex2'. Trace streamlines of the V data array seeded from a default point cloud. Render the streamlines with tubes. Add cone glyphs to the streamlines. Color the streamlines and glyphs by the Temp data array. View the result in the +X direction. Save a screenshot of the result in the filename 'stream-glyph-screenshot.png'. The rendered view and saved screenshot should be ` + res + `.`,
	}
}

func testRunner(t *testing.T) *pvpython.Runner {
	t.Helper()
	dataDir := t.TempDir()
	if err := vtkio.SaveLegacyVTK(filepath.Join(dataDir, "ml-100.vtk"), datagen.MarschnerLobb(24), "ml"); err != nil {
		t.Fatal(err)
	}
	if err := vtkio.SaveExodus(filepath.Join(dataDir, "can_points.ex2"), datagen.CanPoints(24, 10), "can"); err != nil {
		t.Fatal(err)
	}
	if err := vtkio.SaveExodus(filepath.Join(dataDir, "disk.ex2"), datagen.DiskFlow(6, 24, 6), "disk"); err != nil {
		t.Fatal(err)
	}
	return &pvpython.Runner{DataDir: dataDir, OutDir: t.TempDir()}
}

func newAssistant(t *testing.T, modelName string) *Assistant {
	t.Helper()
	model, err := llm.NewModel(modelName)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAssistant(model, testRunner(t), WithMaxIterations(5))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestChatVisSucceedsOnAllFiveTasks reproduces the ChatVis column of the
// paper's Table II: no errors and a screenshot on every task.
func TestChatVisSucceedsOnAllFiveTasks(t *testing.T) {
	for task, prompt := range testPrompts() {
		t.Run(task, func(t *testing.T) {
			a := newAssistant(t, "gpt-4")
			art, err := a.Run(context.Background(), prompt)
			if err != nil {
				t.Fatal(err)
			}
			if !art.Success {
				last := art.Iterations[len(art.Iterations)-1]
				t.Fatalf("ChatVis failed after %d iterations.\nScript:\n%s\nOutput:\n%s",
					art.NumIterations(), last.Script, last.Output)
			}
			if len(art.Screenshots) == 0 {
				t.Fatal("no screenshot produced")
			}
			if art.GeneratedPrompt == art.UserPrompt {
				t.Error("prompt rewriting did not run")
			}
			if !strings.Contains(art.GeneratedPrompt, "step-by-step") {
				t.Errorf("generated prompt = %q", art.GeneratedPrompt)
			}
		})
	}
}

// TestChatVisLoopDoesRealWork: some tasks must need >1 iteration (the
// correction loop is the paper's core mechanism, not dead code).
func TestChatVisLoopDoesRealWork(t *testing.T) {
	multi := 0
	for task, prompt := range testPrompts() {
		a := newAssistant(t, "gpt-4")
		art, err := a.Run(context.Background(), prompt)
		if err != nil {
			t.Fatal(err)
		}
		if !art.Success {
			t.Fatalf("%s failed", task)
		}
		if art.NumIterations() > 1 {
			multi++
			// The first iteration must have carried a genuine extracted
			// error that the repair then removed.
			if len(art.Iterations[0].Errors) == 0 {
				t.Errorf("%s: iteration 1 has no extracted errors", task)
			}
			if art.Iterations[0].Script == art.FinalScript {
				t.Errorf("%s: script did not change across iterations", task)
			}
		}
	}
	if multi == 0 {
		t.Error("no task exercised the correction loop")
	}
}

// TestUnassistedGPT4MatchesPaper reproduces the GPT-4 column of Table II:
// error-free only on isosurfacing and volume rendering; screenshots only
// from those two (volume's screenshot is wrong, judged later by imgcmp).
func TestUnassistedGPT4MatchesPaper(t *testing.T) {
	model, _ := llm.NewModel("gpt-4")
	wantErrorFree := map[string]bool{
		"isosurface":    true,
		"slice-contour": false,
		"volume":        true,
		"delaunay":      false,
		"streamlines":   false,
	}
	for task, prompt := range testPrompts() {
		runner := testRunner(t)
		art, err := Unassisted(context.Background(), model, runner, prompt)
		if err != nil {
			t.Fatal(err)
		}
		if art.Success != wantErrorFree[task] {
			t.Errorf("%s: error-free = %v, want %v\noutput:\n%s",
				task, art.Success, wantErrorFree[task],
				art.Iterations[0].Output)
		}
	}
}

// TestUnassistedWeakModelsAllSyntaxError reproduces the remaining Table II
// columns: every other model fails with syntax errors on every task.
func TestUnassistedWeakModelsAllSyntaxError(t *testing.T) {
	for _, name := range []string{"gpt-3.5-turbo", "llama3-8b", "codellama-7b", "codegemma"} {
		model, _ := llm.NewModel(name)
		for task, prompt := range testPrompts() {
			runner := testRunner(t)
			art, err := Unassisted(context.Background(), model, runner, prompt)
			if err != nil {
				t.Fatal(err)
			}
			if art.Success {
				t.Errorf("%s on %s: unexpectedly succeeded", name, task)
				continue
			}
			if len(art.Screenshots) != 0 {
				t.Errorf("%s on %s: produced a screenshot despite failure", name, task)
			}
			hasSyntax := false
			for _, e := range art.Iterations[0].Errors {
				if e.Kind == "SyntaxError" {
					hasSyntax = true
				}
			}
			if !hasSyntax {
				t.Errorf("%s on %s: expected SyntaxError, got %+v",
					name, task, art.Iterations[0].Errors)
			}
		}
	}
}

// TestUnassistedGPT4StreamlineMatchesTableI checks the characteristic
// failure of the paper's Table I right-hand script.
func TestUnassistedGPT4StreamlineMatchesTableI(t *testing.T) {
	model, _ := llm.NewModel("gpt-4")
	runner := testRunner(t)
	art, err := Unassisted(context.Background(), model, runner, testPrompts()["streamlines"])
	if err != nil {
		t.Fatal(err)
	}
	if art.Success {
		t.Fatal("unassisted GPT-4 should fail on streamlines")
	}
	if !strings.Contains(art.FinalScript, "glyph.Scalars") {
		t.Error("script should contain the hallucinated Glyph.Scalars")
	}
	found := false
	for _, e := range art.Iterations[0].Errors {
		if e.Kind == "AttributeError" && strings.Contains(e.Message, "Scalars") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the Glyph.Scalars AttributeError, got %+v", art.Iterations[0].Errors)
	}
}

// TestChatVisWithWeakBaseModel: the loop rescues gpt-3.5's paren defect
// (repair skill 1 strips it), demonstrating the assistant helps weaker
// models too — but models with no repair skill stall.
func TestChatVisAssistsWeakerModels(t *testing.T) {
	a := newAssistant(t, "gpt-3.5-turbo")
	art, err := a.Run(context.Background(), testPrompts()["isosurface"])
	if err != nil {
		t.Fatal(err)
	}
	if art.NumIterations() < 2 {
		t.Errorf("expected the loop to iterate, got %d", art.NumIterations())
	}
	// llama3 (repair skill 0) cannot progress: loop stops early without
	// success.
	b := newAssistant(t, "llama3-8b")
	art2, err := b.Run(context.Background(), testPrompts()["isosurface"])
	if err != nil {
		t.Fatal(err)
	}
	if art2.Success {
		// Fence stripping by the assistant may rescue the script even
		// without model repair skill; that is legitimate assistant
		// preprocessing. Accept either outcome but require screenshots
		// when successful.
		if len(art2.Screenshots) == 0 {
			t.Error("successful run must produce screenshots")
		}
	}
}

func TestAssistantDefaults(t *testing.T) {
	model, _ := llm.NewModel("oracle")
	a, err := NewAssistant(model, testRunner(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.opt.maxIterations != 5 {
		t.Errorf("default maxIterations = %d", a.opt.maxIterations)
	}
	if !a.opt.rewritePrompt {
		t.Error("rewrite should default on")
	}
	if _, err := NewAssistant(nil, testRunner(t)); err == nil {
		t.Error("missing model should error")
	}
	if _, err := NewAssistant(model, nil); err == nil {
		t.Error("missing runner should error")
	}
	// Options apply and clamp.
	b, err := NewAssistant(model, testRunner(t),
		WithMaxIterations(0), WithFewShot(-1), WithRewrite(false), WithAPIReference("docs"))
	if err != nil {
		t.Fatal(err)
	}
	if b.opt.maxIterations != 1 {
		t.Errorf("WithMaxIterations(0) should clamp to 1, got %d", b.opt.maxIterations)
	}
	if b.opt.fewShot != -1 || b.opt.rewritePrompt || b.opt.apiReference != "docs" {
		t.Errorf("options not applied: %+v", b.opt)
	}
}

func TestCleanScript(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			name: "fenced with surrounding prose",
			in:   "Here is your script:\n```python\nx = 1\n```\nHope this helps!\n",
			want: "x = 1\n",
		},
		{
			name: "plain script passes through",
			in:   "x = 1\n",
			want: "x = 1\n",
		},
		{
			name: "plain script gains trailing newline",
			in:   "x = 1",
			want: "x = 1\n",
		},
		{
			name: "unterminated opening fence keeps the payload",
			in:   "Sure, here you go:\n```python\nx = 1\ny = 2\n",
			want: "x = 1\ny = 2\n",
		},
		{
			name: "stray lone closing fence keeps the payload",
			in:   "x = 1\ny = 2\n```\n",
			want: "x = 1\ny = 2\n",
		},
		{
			name: "two blocks keep both payloads",
			in:   "First:\n```\nx = 1\n```\nthen:\n```\ny = 2\n```\ndone\n",
			want: "x = 1\ny = 2\n",
		},
		{
			name: "balanced pair plus unterminated trailer",
			in:   "```\nx = 1\n```\nand also:\n```python\ny = 2\n",
			want: "x = 1\ny = 2\n",
		},
		{
			name: "empty response",
			in:   "",
			want: "\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CleanScript(tc.in); got != tc.want {
				t.Errorf("CleanScript(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}

// TestArtifactTraceRecordsStages: every session carries a per-stage trace
// with durations and usage — the substrate the eval grid and the CLIs
// surface.
func TestArtifactTraceRecordsStages(t *testing.T) {
	a := newAssistant(t, "gpt-4")
	art, err := a.Run(context.Background(), testPrompts()["streamlines"])
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Trace.Stages) == 0 {
		t.Fatal("trace is empty")
	}
	if art.Trace.Stages[0].Stage != StageRewrite {
		t.Errorf("first stage = %q, want rewrite", art.Trace.Stages[0].Stage)
	}
	if art.Trace.Stages[1].Stage != StageGenerate {
		t.Errorf("second stage = %q, want generate", art.Trace.Stages[1].Stage)
	}
	execs, repairs := 0, 0
	for _, s := range art.Trace.Stages {
		if strings.HasPrefix(s.Stage, StageExec) {
			execs++
			if s.Model != "" || s.Usage.TotalTokens() != 0 {
				t.Errorf("exec stage carries LLM fields: %+v", s)
			}
		}
		if strings.HasPrefix(s.Stage, StageRepair+"-") {
			repairs++
		}
		if s.Model != "" {
			if s.Model != "gpt-4" {
				t.Errorf("stage model = %q", s.Model)
			}
			if s.Usage.CompletionTokens == 0 {
				t.Errorf("LLM stage %s has no completion usage", s.Stage)
			}
		}
	}
	if execs != art.NumIterations() {
		t.Errorf("exec stages = %d, iterations = %d", execs, art.NumIterations())
	}
	if repairs != art.NumIterations()-1 {
		t.Errorf("repair stages = %d for %d iterations", repairs, art.NumIterations())
	}
	if art.Trace.TotalUsage().TotalTokens() == 0 {
		t.Error("total usage empty")
	}
	if art.Trace.LLMCalls() != 2+repairs {
		t.Errorf("LLM calls = %d, want %d", art.Trace.LLMCalls(), 2+repairs)
	}
	text := art.Trace.Format()
	for _, want := range []string{"rewrite", "generate", "exec-1", "total"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted trace missing %q:\n%s", want, text)
		}
	}
}

// TestRunHonoursCancelledContext: a cancelled context aborts the session.
func TestRunHonoursCancelledContext(t *testing.T) {
	a := newAssistant(t, "gpt-4")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Run(ctx, testPrompts()["isosurface"]); err == nil {
		t.Error("cancelled context should abort Run")
	}
	if _, err := Unassisted(ctx, a.model, a.runner, "prompt"); err == nil {
		t.Error("cancelled context should abort Unassisted")
	}
}

func TestExampleLibraryCoversAllOps(t *testing.T) {
	ops := map[string]bool{}
	for _, ex := range DefaultExamples() {
		ops[ex.Op] = true
	}
	for _, want := range []string{"read", "contour", "slice", "clip", "delaunay",
		"streamlines", "tube", "glyph", "volume", "view", "screenshot"} {
		if !ops[want] {
			t.Errorf("example library missing op %q", want)
		}
	}
}

func TestOracleOneShotsEverything(t *testing.T) {
	for task, prompt := range testPrompts() {
		a := newAssistant(t, "oracle")
		art, err := a.Run(context.Background(), prompt)
		if err != nil {
			t.Fatal(err)
		}
		if !art.Success || art.NumIterations() != 1 {
			t.Errorf("%s: oracle should one-shot (iters=%d success=%v)",
				task, art.NumIterations(), art.Success)
		}
	}
}

// TestAPIReferenceGroundsWithoutExamples: full API documentation is an
// alternative to few-shot snippets (the paper's proposed "teach it the
// real function calls" extension).
func TestAPIReferenceGroundsWithoutExamples(t *testing.T) {
	model, _ := llm.NewModel("gpt-4")
	runner := testRunner(t)
	apiRef := pvsim.NewEngine("", "").APIReference().Format()
	a, err := NewAssistant(model, runner,
		WithMaxIterations(5),
		WithFewShot(-1), // no examples at all
		WithAPIReference(apiRef))
	if err != nil {
		t.Fatal(err)
	}
	art, err := a.Run(context.Background(), testPrompts()["streamlines"])
	if err != nil {
		t.Fatal(err)
	}
	if !art.Success {
		t.Fatalf("docs-grounded run failed:\n%s", art.Iterations[len(art.Iterations)-1].Output)
	}
	if strings.Contains(art.FinalScript, "glyph.Scalars") {
		t.Error("documentation grounding should suppress the Glyph.Scalars hallucination")
	}
}

// TestChatVisHandlesThresholdTask: a sixth task beyond the paper's five —
// the operation vocabulary generalizes.
func TestChatVisHandlesThresholdTask(t *testing.T) {
	prompt := `Please generate a ParaView Python script for the following operations. ` +
		`Read in the file named 'disk.ex2'. Threshold the data by the Temp array ` +
		`with values between 500 and 900. Color the result by the Pres data array. ` +
		`View the result in an isometric view. Save a screenshot of the result in the ` +
		`filename 'disk-threshold.png'. The rendered view and saved screenshot should be 320 x 180 pixels.`
	a := newAssistant(t, "gpt-4")
	art, err := a.Run(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Success {
		last := art.Iterations[len(art.Iterations)-1]
		t.Fatalf("threshold task failed:\nScript:\n%s\nOutput:\n%s", last.Script, last.Output)
	}
	if !strings.Contains(art.FinalScript, "LowerThreshold = 500") ||
		!strings.Contains(art.FinalScript, "UpperThreshold = 900") {
		t.Errorf("script missing threshold bounds:\n%s", art.FinalScript)
	}
	if len(art.Screenshots) == 0 {
		t.Error("no screenshot")
	}
}

// TestUnassistedGPT4ThresholdHallucinatesOldAPI: without grounding the
// model emits the deprecated ThresholdRange property; the loop's repair
// rewrites it into the modern Lower/UpperThreshold pair.
func TestUnassistedThresholdRepair(t *testing.T) {
	prompt := `Please generate a ParaView Python script for the following operations. ` +
		`Read in the file named 'disk.ex2'. Threshold the data by the Temp array ` +
		`with values between 500 and 900. Save a screenshot of the result in the ` +
		`filename 'disk-threshold.png'. The rendered view and saved screenshot should be 320 x 180 pixels.`
	model, _ := llm.NewModel("gpt-4")
	runner := testRunner(t)
	art, err := Unassisted(context.Background(), model, runner, prompt)
	if err != nil {
		t.Fatal(err)
	}
	if art.Success {
		t.Fatal("ungrounded threshold script should fail (ThresholdRange)")
	}
	if !strings.Contains(art.FinalScript, "ThresholdRange") {
		t.Fatalf("expected the deprecated-property hallucination:\n%s", art.FinalScript)
	}
	// Now with the loop: the repair must translate the deprecated call.
	a, err := NewAssistant(model, testRunner(t),
		WithMaxIterations(5),
		WithFewShot(-1)) // no examples: force the hallucination path
	if err != nil {
		t.Fatal(err)
	}
	art2, err := a.Run(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	if !art2.Success {
		last := art2.Iterations[len(art2.Iterations)-1]
		t.Fatalf("loop failed to repair ThresholdRange:\n%s\n%s", last.Script, last.Output)
	}
	if art2.NumIterations() < 2 {
		t.Errorf("expected the loop to iterate, got %d", art2.NumIterations())
	}
	if strings.Contains(art2.FinalScript, "ThresholdRange") {
		t.Error("repair should have removed the deprecated property")
	}
}
