package chatvis

// The few-shot example library: real paraview.simple snippets per
// operation, the "example function calls for various operations" the
// paper feeds the LLM alongside the generated prompt (§III-B). Examples
// ground the model's API usage for the operations they cover — the paper
// credits them with preventing hallucinated function calls.

// Example is one named snippet.
type Example struct {
	// Op identifies the operation family the snippet demonstrates.
	Op string
	// Code is the paraview.simple snippet.
	Code string
}

// DefaultExamples returns the complete snippet library in presentation
// order.
func DefaultExamples() []Example {
	return []Example{
		{Op: "read", Code: `# Reading a legacy VTK file
reader = LegacyVTKReader(registrationName='data.vtk', FileNames=['data.vtk'])

# Reading an Exodus II file
reader = ExodusIIReader(FileName='data.ex2')
reader.UpdatePipeline()`},
		{Op: "contour", Code: `# Extracting an isosurface / contour
contour1 = Contour(registrationName='Contour1', Input=reader)
contour1.ContourBy = ['POINTS', 'scalars']
contour1.Isosurfaces = [0.5]`},
		{Op: "slice", Code: `# Slicing with a plane
slice1 = Slice(registrationName='Slice1', Input=reader, SliceType='Plane')
slice1.SliceType.Origin = [0.0, 0.0, 0.0]
slice1.SliceType.Normal = [1.0, 0.0, 0.0]`},
		{Op: "clip", Code: `# Clipping with a plane (Invert=1 keeps the half opposite the normal)
clip1 = Clip(registrationName='Clip1', Input=reader, ClipType='Plane')
clip1.ClipType.Origin = [0.0, 0.0, 0.0]
clip1.ClipType.Normal = [1.0, 0.0, 0.0]
clip1.Invert = 1`},
		{Op: "threshold", Code: `# Keeping cells inside a scalar range
threshold1 = Threshold(registrationName='Threshold1', Input=reader)
threshold1.Scalars = ['POINTS', 'Temp']
threshold1.LowerThreshold = 400.0
threshold1.UpperThreshold = 900.0`},
		{Op: "delaunay", Code: `# Delaunay triangulation of a point cloud
delaunay1 = Delaunay3D(registrationName='Delaunay3D1', Input=reader)`},
		{Op: "streamlines", Code: `# Tracing streamlines from a default point cloud of seeds
streamTracer = StreamTracer(registrationName='StreamTracer1', Input=reader,
                            SeedType='Point Cloud')`},
		{Op: "tube", Code: `# Wrapping lines in tubes
tube = Tube(registrationName='Tube1', Input=streamTracer)
tube.Radius = 0.075`},
		{Op: "glyph", Code: `# Adding oriented glyphs
glyph = Glyph(registrationName='Glyph1', Input=streamTracer, GlyphType='Cone')
glyph.OrientationArray = ['POINTS', 'V']
glyph.ScaleArray = ['POINTS', 'V']
glyph.ScaleFactor = 0.2`},
		{Op: "volume", Code: `# Volume rendering with the default transfer function
display = Show(reader, renderView1)
display.SetRepresentationType('Volume')
ColorBy(display, ['POINTS', 'scalars'])
display.RescaleTransferFunctionToDataRange(True)`},
		{Op: "view", Code: `# Render view management
renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [1920, 1080]
display = Show(contour1, renderView1)
ColorBy(display, ('POINTS', 'Temp'))
display.RescaleTransferFunctionToDataRange(True)
renderView1.ResetActiveCameraToPositiveX()
renderView1.ApplyIsometricView()
renderView1.ResetCamera()`},
		{Op: "screenshot", Code: `# Saving a screenshot
SaveScreenshot('image.png', renderView1,
    ImageResolution=[1920, 1080],
    OverrideColorPalette='WhiteBackground')`},
	}
}

// ExamplePromptPair is the crafted example the prompt-rewriting stage
// shows the LLM (paper §III-A): a user request and the step-by-step
// prompt derived from it.
const ExamplePromptPair = `Example user request:
Please generate a ParaView Python script for the following operations. Read in the file named example.vtk. Generate an isosurface of the variable density at value 1.0. Save a screenshot of the result in the filename example.png. The rendered view and saved screenshot should be 800 x 600 pixels.

Example generated prompt:
Generate a Python script using ParaView for performing visualization tasks based on the provided steps. Requirements step-by-step:
- Read the file named example.vtk given the path.
- Generate an isosurface of the variable density at value 1.0.
- Configure the rendered view resolution to 800 x 600 pixels.
- Save a screenshot of the rendered view to the filename example.png.
`
