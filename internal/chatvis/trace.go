package chatvis

import (
	"fmt"
	"strings"
	"time"

	"chatvis/internal/llm"
)

// Stage names recorded in a Trace. Repair and exec stages carry a 1-based
// round suffix ("repair-2", "exec-2").
const (
	StageRewrite  = "rewrite"
	StageGenerate = "generate"
	StageRepair   = "repair"
	StageExec     = "exec"
	// StageValidate is a pre-execution plan compilation + schema check.
	StageValidate = "validate"
	// StagePlanRepair is a model call repairing plan diagnostics before
	// the first engine run.
	StagePlanRepair = "plan-repair"
	// StageEdit is a conversational turn's PlanDelta call: the model
	// proposes the target plan from the current plan plus the utterance.
	StageEdit = "edit"
	// StageEditValidate is the schema check of a proposed target plan.
	StageEditValidate = "edit-validate"
	// StageEditRepair is a model call fixing a proposed plan's validation
	// diagnostics before execution.
	StageEditRepair = "edit-repair"
	// StageSeedExec is the session-engine materialization of a first
	// turn's plan, which primes incremental re-execution for later turns.
	StageSeedExec = "seed-exec"
)

// StageTrace is one timed step of an assistant session: an LLM call
// (rewrite / generate / repair-N, with usage and cache provenance) or a
// script execution (exec-N, duration only).
type StageTrace struct {
	// Stage names the step ("rewrite", "generate", "repair-1", "exec-1").
	Stage string `json:"stage"`
	// Model is the client that served an LLM stage (empty for exec).
	// Under routing this is the model the router actually picked, which
	// may differ per stage — the routed-model provenance of the turn.
	Model string `json:"model,omitempty"`
	// Task is the request's task kind for an LLM stage ("write",
	// "plan-repair", "edit-intent", "plan-delta"; empty for exec).
	Task string `json:"task,omitempty"`
	// Escalation is the request's escalation level (0 = primary model;
	// N>0 = the Nth rung of the router's strength ladder after repeated
	// validation/repair failures).
	Escalation int `json:"escalation,omitempty"`
	// Duration is the stage's wall-clock time (nanoseconds in JSON).
	Duration time.Duration `json:"duration_ns"`
	// Usage is the LLM usage (zero for exec stages).
	Usage llm.Usage `json:"usage"`
	// CacheHit marks LLM stages served from a response cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Attempts counts retries the stage's LLM call consumed (0 for exec).
	Attempts int `json:"attempts,omitempty"`
	// PlanHash is the normalized plan hash of the script an exec stage
	// ran (empty when the script did not compile to a plan) — the
	// per-stage provenance that lets traces show which iterations
	// actually changed the pipeline's meaning.
	PlanHash string `json:"plan_hash,omitempty"`
}

// Trace is the per-stage record of one assistant session, in execution
// order.
type Trace struct {
	Stages []StageTrace `json:"stages"`

	// TraceID names the distributed trace the turn ran under ("" when it
	// ran untraced), joining the stored artifact to GET /v1/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`

	// OnAdd, when set, observes every stage as it is recorded — the hook
	// conversational sessions use to stream live progress events (SSE)
	// while a turn runs. Never serialized.
	OnAdd func(StageTrace) `json:"-"`
}

func (t *Trace) add(s StageTrace) {
	t.Stages = append(t.Stages, s)
	if t.OnAdd != nil {
		t.OnAdd(s)
	}
}

// addLLM records a completed LLM stage from its request and response:
// the request carries task/escalation provenance, the response carries
// the serving model and usage.
func (t *Trace) addLLM(stage string, req llm.Request, resp llm.Response, elapsed time.Duration) {
	t.add(StageTrace{
		Stage:      stage,
		Model:      resp.Model,
		Task:       string(req.Task),
		Escalation: req.Escalation,
		Duration:   elapsed,
		Usage:      resp.Usage,
		CacheHit:   resp.CacheHit,
		Attempts:   resp.Attempts,
	})
}

// Models returns the distinct serving models of the trace's LLM stages,
// in first-use order. More than one entry means the stages were routed
// to different models (per-task routing or escalation).
func (t *Trace) Models() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range t.Stages {
		if s.Model != "" && !seen[s.Model] {
			seen[s.Model] = true
			out = append(out, s.Model)
		}
	}
	return out
}

// TotalDuration sums all stage durations.
func (t *Trace) TotalDuration() time.Duration {
	var d time.Duration
	for _, s := range t.Stages {
		d += s.Duration
	}
	return d
}

// TotalUsage sums LLM usage across stages.
func (t *Trace) TotalUsage() llm.Usage {
	var u llm.Usage
	for _, s := range t.Stages {
		u = u.Add(s.Usage)
	}
	return u
}

// LLMCalls counts the stages that reached (or were served for) the model.
func (t *Trace) LLMCalls() int {
	n := 0
	for _, s := range t.Stages {
		if s.Model != "" {
			n++
		}
	}
	return n
}

// Format renders the trace as an aligned per-stage table.
func (t *Trace) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %12s %8s %8s %s\n",
		"stage", "model", "duration", "tokens", "chars", "notes")
	for _, s := range t.Stages {
		notes := ""
		if s.CacheHit {
			notes = "cache-hit"
		}
		if s.Attempts > 1 {
			if notes != "" {
				notes += " "
			}
			notes += fmt.Sprintf("attempts=%d", s.Attempts)
		}
		if s.Escalation > 0 {
			if notes != "" {
				notes += " "
			}
			notes += fmt.Sprintf("esc=%d", s.Escalation)
		}
		fmt.Fprintf(&b, "%-12s %-14s %12s %8d %8d %s\n",
			s.Stage, s.Model, s.Duration.Round(time.Microsecond),
			s.Usage.TotalTokens(), s.Usage.PromptChars+s.Usage.CompletionChars, notes)
	}
	u := t.TotalUsage()
	fmt.Fprintf(&b, "%-12s %-14s %12s %8d %8d\n",
		"total", "", t.TotalDuration().Round(time.Microsecond),
		u.TotalTokens(), u.PromptChars+u.CompletionChars)
	return b.String()
}
