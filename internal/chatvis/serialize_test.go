package chatvis

import (
	"testing"
	"time"

	"chatvis/internal/errext"
	"chatvis/internal/llm"
)

func TestArtifactEncodeDecodeRoundTrip(t *testing.T) {
	art := &Artifact{
		UserPrompt:      "make an isosurface",
		GeneratedPrompt: "step-by-step prompt",
		Iterations: []Iteration{
			{
				Script: "bad script",
				Output: "AttributeError: nope",
				Errors: []errext.ErrorReport{{Kind: "AttributeError", Message: "nope", Line: 3}},
			},
			{Script: "good script", Output: ""},
		},
		FinalScript: "good script",
		Screenshots: []string{"/tmp/out/iso.png"},
		Success:     true,
		Trace: Trace{Stages: []StageTrace{
			{Stage: StageRewrite, Model: "gpt-4", Duration: 3 * time.Millisecond,
				Usage: llm.Usage{PromptTokens: 10, CompletionTokens: 20}, Attempts: 1},
			{Stage: StageGenerate, Model: "gpt-4", Duration: 5 * time.Millisecond, CacheHit: true},
			{Stage: StageExec + "-1", Duration: time.Millisecond},
		}},
	}
	b, err := EncodeArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeArtifact(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.UserPrompt != art.UserPrompt || got.FinalScript != art.FinalScript ||
		!got.Success || len(got.Iterations) != 2 || len(got.Screenshots) != 1 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if len(got.Trace.Stages) != 3 {
		t.Fatalf("trace stages = %d", len(got.Trace.Stages))
	}
	s0 := got.Trace.Stages[0]
	if s0.Stage != StageRewrite || s0.Model != "gpt-4" ||
		s0.Duration != 3*time.Millisecond || s0.Usage.PromptTokens != 10 {
		t.Errorf("stage 0 mangled: %+v", s0)
	}
	if !got.Trace.Stages[1].CacheHit {
		t.Error("cache provenance lost")
	}
	if got.Iterations[0].Errors[0].Kind != "AttributeError" {
		t.Error("iteration error reports lost")
	}
}

func TestDecodeArtifactRejectsBadInput(t *testing.T) {
	if _, err := DecodeArtifact([]byte("not json")); err == nil {
		t.Error("garbage must not decode")
	}
	if _, err := DecodeArtifact([]byte(`{"version": 99, "artifact": {}}`)); err == nil {
		t.Error("unknown version must not decode")
	}
	if _, err := DecodeArtifact([]byte(`{"version": 1}`)); err == nil {
		t.Error("empty envelope must not decode")
	}
	if _, err := EncodeArtifact(nil); err == nil {
		t.Error("nil artifact must not encode")
	}
}
