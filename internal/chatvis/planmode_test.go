package chatvis

import (
	"context"
	"strings"
	"testing"

	"chatvis/internal/llm"
)

// TestPlanValidationRepairsBeforeExecution: with plan validation on, the
// detail slips the paper's loop discovers traceback-by-traceback are
// fixed from static diagnostics, so the first engine run already
// succeeds — the pre-execution repair signal replaces whole exec+repair
// rounds.
func TestPlanValidationRepairsBeforeExecution(t *testing.T) {
	prompt := testPrompts()["streamlines"]

	// Baseline: the paper-faithful loop needs the engine to discover the
	// NumberOfSides slip.
	base := newAssistant(t, "gpt-4")
	baseArt, err := base.Run(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	if !baseArt.Success {
		t.Fatal("baseline run failed")
	}
	if baseArt.NumIterations() < 2 {
		t.Fatalf("baseline should need the correction loop, got %d iterations", baseArt.NumIterations())
	}

	// Plan-aware: same model, same prompt, diagnostics repaired first.
	model, _ := llm.NewModel("gpt-4")
	a, err := NewAssistant(model, testRunner(t),
		WithMaxIterations(5), WithPlanValidation(true))
	if err != nil {
		t.Fatal(err)
	}
	art, err := a.Run(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Success {
		last := art.Iterations[len(art.Iterations)-1]
		t.Fatalf("plan-aware run failed:\n%s\n%s", last.Script, last.Output)
	}
	if art.NumIterations() != 1 {
		t.Errorf("plan-aware run used %d engine iterations, want 1 (baseline %d)",
			art.NumIterations(), baseArt.NumIterations())
	}
	sawValidate, sawPlanRepair := false, false
	for _, s := range art.Trace.Stages {
		if strings.HasPrefix(s.Stage, StageValidate+"-") {
			sawValidate = true
		}
		if strings.HasPrefix(s.Stage, StagePlanRepair+"-") {
			sawPlanRepair = true
		}
	}
	if !sawValidate || !sawPlanRepair {
		t.Errorf("trace missing validate/plan-repair stages: %+v", art.Trace.Stages)
	}
}

// TestArtifactCarriesPlan: every session records the normalized plan and
// per-iteration plan hashes.
func TestArtifactCarriesPlan(t *testing.T) {
	a := newAssistant(t, "gpt-4")
	art, err := a.Run(context.Background(), testPrompts()["isosurface"])
	if err != nil {
		t.Fatal(err)
	}
	if art.Plan == nil {
		t.Fatal("artifact has no plan")
	}
	if art.PlanHash() == "" {
		t.Error("artifact plan hash empty")
	}
	if art.Plan.FindClass("Contour") < 0 {
		t.Error("plan missing the Contour stage")
	}
	for i, it := range art.Iterations {
		if it.PlanHash == "" {
			t.Errorf("iteration %d has no plan hash", i)
		}
	}
	execHashes := 0
	for _, s := range art.Trace.Stages {
		if strings.HasPrefix(s.Stage, StageExec+"-") && s.PlanHash != "" {
			execHashes++
		}
	}
	if execHashes != art.NumIterations() {
		t.Errorf("exec stages with plan hashes = %d, iterations = %d", execHashes, art.NumIterations())
	}
}
