package chatvis

import (
	"context"
	"strings"
	"testing"

	"chatvis/internal/llm"
	"chatvis/internal/plan"
)

func newSession(t *testing.T, modelName string, opts ...Option) *Session {
	t.Helper()
	model, err := llm.NewModel(modelName)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(model, testRunner(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionTwoTurnsIncremental pins the acceptance criterion of the
// conversational API: a second turn that edits exactly one stage
// re-executes only that stage (and its downstream subtree) on the
// session engine — Executions() advances by 1, not by the plan size.
func TestSessionTwoTurnsIncremental(t *testing.T) {
	s := newSession(t, "gpt-4")
	t1, err := s.Turn(context.Background(), testPrompts()["isosurface"])
	if err != nil {
		t.Fatal(err)
	}
	if !t1.Artifact.Success {
		t.Fatalf("turn 1 failed:\n%s", t1.Artifact.Iterations[len(t1.Artifact.Iterations)-1].Output)
	}
	if t1.Index != 1 || t1.Artifact.TurnIndex != 1 {
		t.Errorf("turn 1 index = %d/%d", t1.Index, t1.Artifact.TurnIndex)
	}
	if t1.ParentPlanHash != "" {
		t.Errorf("turn 1 has a parent plan hash: %q", t1.ParentPlanHash)
	}
	if !t1.Incremental {
		t.Error("turn 1 did not seed the session engine")
	}
	// The iso pipeline has two pipeline stages (reader, contour); seeding
	// the engine executed both.
	if t1.ExecutionsDelta != 2 {
		t.Errorf("turn 1 seed executions = %d, want 2", t1.ExecutionsDelta)
	}
	parentHash := s.PlanHash()
	if parentHash == "" {
		t.Fatal("session adopted no plan")
	}

	t2, err := s.Turn(context.Background(), "Raise the isovalue to 0.7.")
	if err != nil {
		t.Fatal(err)
	}
	if !t2.Artifact.Success {
		t.Fatalf("turn 2 failed: %s", t2.Artifact.Iterations[0].Output)
	}
	if t2.ParentPlanHash != parentHash {
		t.Errorf("turn 2 parent hash = %q, want %q", t2.ParentPlanHash, parentHash)
	}
	// Exactly the contour stage (and its dependent display) changed; the
	// reader, view and screenshot stages kept their subtree hashes.
	foundContour := false
	for _, id := range t2.ChangedStages {
		if strings.HasPrefix(id, "contour") {
			foundContour = true
		}
		if strings.HasPrefix(id, "reader") {
			t.Errorf("reader reported as changed: %v", t2.ChangedStages)
		}
	}
	if !foundContour {
		t.Errorf("changed stages %v missing the contour", t2.ChangedStages)
	}
	// THE acceptance pin: one pipeline-stage recomputation, not two.
	if t2.ExecutionsDelta != 1 {
		t.Errorf("turn 2 executions delta = %d, want 1 (incremental re-exec)", t2.ExecutionsDelta)
	}
	if len(t2.Artifact.Screenshots) == 0 {
		t.Error("turn 2 produced no screenshot")
	}
	if s.PlanHash() == parentHash {
		t.Error("session plan did not advance after the edit")
	}
	// The edited plan carries the new isovalue.
	got := t2.Artifact.Plan
	idx := got.FindClass("Contour")
	if idx < 0 {
		t.Fatal("edited plan has no contour stage")
	}
	iso, ok := got.Stage(idx).Props["Isosurfaces"]
	if !ok || iso.Kind != plan.KindList || len(iso.List) != 1 || iso.List[0].Num != 0.7 {
		t.Errorf("Isosurfaces after edit = %+v, want [0.7]", iso)
	}
	if t2.DeltaSummary == "" || t2.DeltaSummary == "no changes" {
		t.Errorf("delta summary = %q", t2.DeltaSummary)
	}
}

// TestSessionEditAddsAndRemovesStages drives a three-turn conversation:
// build, add a clip, then drop it again — the final plan hash returns to
// the post-turn-1 hash.
func TestSessionEditAddsAndRemovesStages(t *testing.T) {
	s := newSession(t, "gpt-4")
	t1, err := s.Turn(context.Background(), testPrompts()["isosurface"])
	if err != nil {
		t.Fatal(err)
	}
	if !t1.Artifact.Success {
		t.Fatal("turn 1 failed")
	}
	baseHash := s.PlanHash()

	t2, err := s.Turn(context.Background(), "Clip the data with a y-z plane at x=0, keeping the -x half of the data and removing the +x half.")
	if err != nil {
		t.Fatal(err)
	}
	if !t2.Artifact.Success {
		t.Fatalf("clip turn failed: %s", t2.Artifact.Iterations[0].Output)
	}
	if t2.Artifact.Plan.FindClass("Clip") < 0 {
		t.Fatalf("clip stage missing after edit:\n%s", t2.Artifact.FinalScript)
	}
	if !strings.Contains(t2.DeltaSummary, "added Clip") {
		t.Errorf("delta summary = %q, want added Clip", t2.DeltaSummary)
	}

	t3, err := s.Turn(context.Background(), "Remove the clip.")
	if err != nil {
		t.Fatal(err)
	}
	if !t3.Artifact.Success {
		t.Fatalf("remove turn failed: %s", t3.Artifact.Iterations[0].Output)
	}
	if t3.Artifact.Plan.FindClass("Clip") >= 0 {
		t.Error("clip stage survived removal")
	}
	if s.PlanHash() != baseHash {
		t.Errorf("plan after add+remove = %s, want the original %s", s.PlanHash(), baseHash)
	}
	// Removing a stage invalidates nothing upstream: the engine answers
	// the restored pipeline entirely from its memo.
	if t3.ExecutionsDelta != 0 {
		t.Errorf("executions delta after revert = %d, want 0 (full memo hit)", t3.ExecutionsDelta)
	}
}

// TestSessionFreshPromptResets: an utterance that names an input file is
// a new request, not an edit — the session replaces its plan.
func TestSessionFreshPromptResets(t *testing.T) {
	s := newSession(t, "gpt-4")
	if _, err := s.Turn(context.Background(), testPrompts()["isosurface"]); err != nil {
		t.Fatal(err)
	}
	isoHash := s.PlanHash()
	t2, err := s.Turn(context.Background(), testPrompts()["volume"])
	if err != nil {
		t.Fatal(err)
	}
	if !t2.Artifact.Success {
		t.Fatal("fresh second request failed")
	}
	if t2.ParentPlanHash != "" {
		t.Error("fresh request recorded a parent plan")
	}
	if s.PlanHash() == isoHash {
		t.Error("fresh request did not replace the session plan")
	}
}

// TestSessionObserverStreamsEvents: lifecycle and stage events arrive in
// order while turns run.
func TestSessionObserverStreamsEvents(t *testing.T) {
	var events []Event
	model, _ := llm.NewModel("gpt-4")
	s, err := NewSession(model, testRunner(t), WithObserver(func(ev Event) {
		events = append(events, ev)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Turn(context.Background(), testPrompts()["isosurface"]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Turn(context.Background(), "Raise the isovalue to 0.6."); err != nil {
		t.Fatal(err)
	}
	if len(events) < 6 {
		t.Fatalf("only %d events observed", len(events))
	}
	if events[0].Type != EventTurnStarted || events[0].Turn != 1 {
		t.Errorf("first event = %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != EventTurnFinished || last.Turn != 2 || !last.Success {
		t.Errorf("last event = %+v", last)
	}
	sawStage := map[string]bool{}
	for _, ev := range events {
		if ev.Type == EventStage {
			sawStage[ev.Stage] = true
		}
	}
	for _, want := range []string{StageGenerate, StageEdit, StageEditValidate + "-1", StageExec + "-1"} {
		if !sawStage[want] {
			t.Errorf("no %q stage event (saw %v)", want, sawStage)
		}
	}
}

// TestSessionSeededFromPlan: a rehydrated session (NewSessionFrom) edits
// without re-running the generation flow; its first edit turn pays a
// cold full execution, the next is incremental again.
func TestSessionSeededFromPlan(t *testing.T) {
	build := newSession(t, "gpt-4")
	t1, err := build.Turn(context.Background(), testPrompts()["isosurface"])
	if err != nil || !t1.Artifact.Success {
		t.Fatalf("setup turn failed: %v", err)
	}

	model, _ := llm.NewModel("gpt-4")
	s, err := NewSessionFrom(model, testRunner(t), t1.Artifact.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if s.PlanHash() != build.PlanHash() {
		t.Fatal("seed plan hash mismatch")
	}
	t2, err := s.Turn(context.Background(), "Raise the isovalue to 0.7.")
	if err != nil {
		t.Fatal(err)
	}
	if !t2.Artifact.Success {
		t.Fatalf("seeded edit failed: %s", t2.Artifact.Iterations[0].Output)
	}
	if t2.ExecutionsDelta != 2 {
		t.Errorf("cold seeded turn executed %d stages, want 2", t2.ExecutionsDelta)
	}
	t3, err := s.Turn(context.Background(), "Raise the isovalue to 0.9.")
	if err != nil {
		t.Fatal(err)
	}
	if t3.ExecutionsDelta != 1 {
		t.Errorf("warm turn executed %d stages, want 1", t3.ExecutionsDelta)
	}
}

// TestRunWrapperStaysSingleTurn: the compatibility wrapper must not pay
// for engine seeding (there is no later turn) and must keep the classic
// trace shape.
func TestRunWrapperStaysSingleTurn(t *testing.T) {
	a := newAssistant(t, "gpt-4")
	art, err := a.Run(context.Background(), testPrompts()["isosurface"])
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range art.Trace.Stages {
		if st.Stage == StageSeedExec {
			t.Error("one-shot Run seeded a session engine")
		}
	}
	if art.TurnIndex != 1 {
		t.Errorf("TurnIndex = %d, want 1", art.TurnIndex)
	}
}
