// Package chatvis implements the paper's contribution: an iterative
// assistant that turns a natural-language visualization request into a
// working ParaView Python script.
//
// The flow follows Fig. 1 of the paper:
//
//  1. Prompt generation — an LLM rewrites the user request into
//     step-by-step instructions, guided by a crafted example pair.
//  2. Script generation — the LLM receives the generated prompt together
//     with example code snippets (few-shot prompting) and emits a script.
//  3. Error detection and correction — the script runs under PvPython;
//     error messages are extracted from the output and fed back to the
//     LLM, which revises the script. The loop repeats until the script
//     executes cleanly or the iteration budget is exhausted.
//
// Every session is traced: the Artifact records each stage's duration,
// token usage and cache provenance (see Trace), and the whole run is
// cancellable through its context.
package chatvis

import (
	"context"
	"fmt"
	"strings"

	"chatvis/internal/errext"
	"chatvis/internal/llm"
	"chatvis/internal/plan"
	"chatvis/internal/pvpython"
)

// Iteration records one pass of the correction loop.
type Iteration struct {
	// Script is the candidate script executed this round.
	Script string `json:"script"`
	// Output is the combined PvPython output.
	Output string `json:"output,omitempty"`
	// Errors are the extracted error reports (empty on success).
	Errors []errext.ErrorReport `json:"errors,omitempty"`
	// PlanHash is the normalized plan hash of the executed script
	// (empty when it did not parse).
	PlanHash string `json:"plan_hash,omitempty"`
}

// Artifact is everything one assistant run produces. The JSON tags fix
// the wire format EncodeArtifact/DecodeArtifact persist in chatvisd's
// artifact store.
type Artifact struct {
	UserPrompt      string      `json:"user_prompt"`
	GeneratedPrompt string      `json:"generated_prompt"`
	Iterations      []Iteration `json:"iterations"`
	// FinalScript is the last executed script.
	FinalScript string `json:"final_script"`
	// Screenshots produced by the successful run.
	Screenshots []string `json:"screenshots,omitempty"`
	// Success reports whether the final script executed without error.
	Success bool `json:"success"`
	// Plan is the normalized compiled plan of the final script (nil when
	// it does not parse): the typed DAG the session produced, which
	// chatvisd serves alongside the script text.
	Plan *plan.Plan `json:"plan,omitempty"`
	// TurnIndex is the 1-based conversational turn that produced this
	// artifact (1 for one-shot runs).
	TurnIndex int `json:"turn_index,omitempty"`
	// ParentPlanHash is the canonical hash of the session plan this turn
	// edited ("" for first turns).
	ParentPlanHash string `json:"parent_plan_hash,omitempty"`
	// DeltaSummary describes how this turn's plan differs from its
	// parent ("added Slice; changed contour1").
	DeltaSummary string `json:"delta_summary,omitempty"`
	// Trace records every stage of the session (LLM calls and script
	// executions) with durations, usage and cache provenance.
	Trace Trace `json:"trace"`
}

// PlanHash returns the final plan's canonical hash ("" without a plan).
func (a *Artifact) PlanHash() string {
	if a.Plan == nil {
		return ""
	}
	return a.Plan.Hash()
}

// NumIterations returns how many executions the loop needed.
func (a *Artifact) NumIterations() int { return len(a.Iterations) }

// Assistant is the ChatVis agent.
type Assistant struct {
	model  llm.Client
	runner *pvpython.Runner
	opt    options
}

// NewAssistant builds an assistant over a model and a script runner.
// Behaviour is tuned with functional options: WithMaxIterations,
// WithFewShot, WithRewrite, WithAPIReference.
func NewAssistant(model llm.Client, runner *pvpython.Runner, opts ...Option) (*Assistant, error) {
	if model == nil {
		return nil, fmt.Errorf("chatvis: model is required")
	}
	if runner == nil {
		return nil, fmt.Errorf("chatvis: runner is required")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return &Assistant{model: model, runner: runner, opt: o}, nil
}

// rewriteSystem is the stage-1 instruction (its phrasing carries the
// stage marker the simulated models dispatch on).
const rewriteSystem = `You are an assistant that prepares prompts for a ParaView scripting model.
Rewrite the user's visualization request as precise step-by-step instructions.
Identify every operation the user mentions and arrange the steps in execution order.
Follow the structure of the example below.`

// generateSystem introduces the few-shot examples (stage 2).
const generateSystem = `You are an expert in ParaView Python scripting.
Generate a complete, runnable ParaView Python script for the user's request.
Use only functions and properties that exist in paraview.simple.
Example code snippets for various operations:

%s`

// RewriteRequest returns the exact request the prompt-generation stage
// sends for a user prompt. The route calibrator replays it as the
// edit-intent probe, so probes measure the stage's real prompt shape.
func RewriteRequest(userPrompt string) llm.Request {
	return llm.Request{
		System: rewriteSystem + "\n\n" + ExamplePromptPair,
		User:   userPrompt,
		Task:   llm.TaskEditIntent,
	}
}

// repairSystem frames the correction request (stage 3).
const repairSystem = `You are an expert in ParaView Python scripting.
The previously generated script failed to execute. Use the error messages
extracted from the PvPython output to fix the code and return the full
corrected script.`

// Run executes the full ChatVis flow for one user request. The context
// cancels the session between stages and inside the model's calls.
//
// Run is a compatibility wrapper over the conversational session API: it
// creates a fresh single-turn Session and returns the first turn's
// artifact. Multi-turn callers use NewSession/Session.Turn directly.
func (a *Assistant) Run(ctx context.Context, userPrompt string) (*Artifact, error) {
	opt := a.opt
	opt.noWarm = true // one-shot: no later turn to make incremental
	s := &Session{model: a.model, runner: a.runner, opt: opt}
	turn, err := s.Turn(ctx, userPrompt)
	if err != nil {
		return nil, err
	}
	return turn.Artifact, nil
}

// CleanScript strips chat artifacts (markdown fences, leading prose) from
// a model response, keeping the Python payload.
//
// Balanced fences keep exactly the fenced content. An unterminated final
// fence (models often drop the closer when truncated) keeps everything
// after it; a response whose fences delimit no content at all (e.g. a
// stray lone closer after the payload) falls back to dropping just the
// fence lines so the payload survives.
func CleanScript(resp string) string {
	lines := strings.Split(resp, "\n")
	if !strings.Contains(resp, "```") {
		return ensureTrailingNewline(resp)
	}
	var out []string
	inFence := false
	fencesLeft := 0
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "```") {
			fencesLeft++
		}
	}
	for _, l := range lines {
		t := strings.TrimSpace(l)
		if strings.HasPrefix(t, "```") {
			fencesLeft--
			if !inFence && fencesLeft == 0 {
				// Final fence with no closer to come: treat it as an
				// unterminated opener and keep the rest of the response.
				inFence = true
				continue
			}
			inFence = !inFence
			continue
		}
		if !inFence {
			// Outside fences in a fenced response: prose, drop it.
			continue
		}
		out = append(out, l)
	}
	if len(strings.TrimSpace(strings.Join(out, "\n"))) == 0 {
		// The fences delimited nothing (e.g. a lone trailing closer after
		// the payload): keep everything except the fence lines.
		out = out[:0]
		for _, l := range lines {
			if strings.HasPrefix(strings.TrimSpace(l), "```") {
				continue
			}
			out = append(out, l)
		}
	}
	return ensureTrailingNewline(strings.Join(out, "\n"))
}

func ensureTrailingNewline(s string) string {
	if !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	return s
}

// Unassisted runs a bare model on the raw user prompt with no prompt
// rewriting, no examples and no correction loop — the paper's comparison
// condition for GPT-4 and the other LLMs. The artifact's trace records
// the single generate and exec stages.
//
// Like Assistant.Run, it is a compatibility wrapper over the session
// API: a single-turn session in unassisted mode.
func Unassisted(ctx context.Context, model llm.Client, runner *pvpython.Runner, userPrompt string) (*Artifact, error) {
	opt := defaultOptions()
	opt.unassisted = true
	opt.noWarm = true
	s := &Session{model: model, runner: runner, opt: opt}
	turn, err := s.Turn(ctx, userPrompt)
	if err != nil {
		return nil, err
	}
	return turn.Artifact, nil
}
