// Package chatvis implements the paper's contribution: an iterative
// assistant that turns a natural-language visualization request into a
// working ParaView Python script.
//
// The flow follows Fig. 1 of the paper:
//
//  1. Prompt generation — an LLM rewrites the user request into
//     step-by-step instructions, guided by a crafted example pair.
//  2. Script generation — the LLM receives the generated prompt together
//     with example code snippets (few-shot prompting) and emits a script.
//  3. Error detection and correction — the script runs under PvPython;
//     error messages are extracted from the output and fed back to the
//     LLM, which revises the script. The loop repeats until the script
//     executes cleanly or the iteration budget is exhausted.
package chatvis

import (
	"fmt"
	"strings"

	"chatvis/internal/errext"
	"chatvis/internal/llm"
	"chatvis/internal/pvpython"
)

// Options configures an Assistant.
type Options struct {
	// Model is the LLM backing all three stages (the paper uses GPT-4).
	Model llm.Client
	// Runner executes generated scripts (the simulated pvpython).
	Runner *pvpython.Runner
	// MaxIterations bounds the correction loop (default 5).
	MaxIterations int
	// FewShot truncates the example library to its first n entries;
	// 0 means the full library and a negative value disables examples
	// entirely. Used by the ablation bench.
	FewShot int
	// RewritePrompt enables the prompt-generation stage (default true via
	// NewAssistant; the ablation bench switches it off).
	RewritePrompt bool
	// APIReference, when non-empty, is appended to the generation prompt
	// as documentation-based grounding (the paper's proposed alternative
	// to few-shot snippets: teaching the model ParaView's real function
	// calls). Obtain it from pvsim's Engine.APIReference().Format().
	APIReference string
}

// Iteration records one pass of the correction loop.
type Iteration struct {
	// Script is the candidate script executed this round.
	Script string
	// Output is the combined PvPython output.
	Output string
	// Errors are the extracted error reports (empty on success).
	Errors []errext.ErrorReport
}

// Artifact is everything one assistant run produces.
type Artifact struct {
	UserPrompt      string
	GeneratedPrompt string
	Iterations      []Iteration
	// FinalScript is the last executed script.
	FinalScript string
	// Screenshots produced by the successful run.
	Screenshots []string
	// Success reports whether the final script executed without error.
	Success bool
}

// NumIterations returns how many executions the loop needed.
func (a *Artifact) NumIterations() int { return len(a.Iterations) }

// Assistant is the ChatVis agent.
type Assistant struct {
	opt Options
}

// NewAssistant builds an assistant with defaults filled in.
func NewAssistant(opt Options) (*Assistant, error) {
	if opt.Model == nil {
		return nil, fmt.Errorf("chatvis: Options.Model is required")
	}
	if opt.Runner == nil {
		return nil, fmt.Errorf("chatvis: Options.Runner is required")
	}
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 5
	}
	return &Assistant{opt: opt}, nil
}

// rewriteSystem is the stage-1 instruction (its phrasing carries the
// stage marker the simulated models dispatch on).
const rewriteSystem = `You are an assistant that prepares prompts for a ParaView scripting model.
Rewrite the user's visualization request as precise step-by-step instructions.
Identify every operation the user mentions and arrange the steps in execution order.
Follow the structure of the example below.`

// generateSystem introduces the few-shot examples (stage 2).
const generateSystem = `You are an expert in ParaView Python scripting.
Generate a complete, runnable ParaView Python script for the user's request.
Use only functions and properties that exist in paraview.simple.
Example code snippets for various operations:

%s`

// repairSystem frames the correction request (stage 3).
const repairSystem = `You are an expert in ParaView Python scripting.
The previously generated script failed to execute. Use the error messages
extracted from the PvPython output to fix the code and return the full
corrected script.`

// Run executes the full ChatVis flow for one user request.
func (a *Assistant) Run(userPrompt string) (*Artifact, error) {
	art := &Artifact{UserPrompt: userPrompt}

	// Stage 1: prompt generation.
	genPrompt := userPrompt
	if a.opt.RewritePrompt {
		resp, err := a.opt.Model.Complete(llm.Request{
			System: rewriteSystem + "\n\n" + ExamplePromptPair,
			User:   userPrompt,
		})
		if err != nil {
			return nil, fmt.Errorf("chatvis: prompt generation: %w", err)
		}
		genPrompt = resp
	}
	art.GeneratedPrompt = genPrompt

	// Stage 2: script generation with few-shot examples and/or API docs.
	genSys := "You are an expert in ParaView Python scripting.\nGenerate a complete, runnable ParaView Python script for the user's request."
	if block := a.exampleBlock(); block != "" {
		genSys = fmt.Sprintf(generateSystem, block)
	}
	if a.opt.APIReference != "" {
		genSys += "\n\nComplete API documentation:\n" + a.opt.APIReference
	}
	script, err := a.opt.Model.Complete(llm.Request{
		System: genSys,
		User:   genPrompt,
	})
	if err != nil {
		return nil, fmt.Errorf("chatvis: script generation: %w", err)
	}
	script = CleanScript(script)

	// Stage 3: execute, extract errors, repair.
	for iter := 0; iter < a.opt.MaxIterations; iter++ {
		res := a.opt.Runner.Exec(script)
		reports := errext.Extract(res.Output)
		art.Iterations = append(art.Iterations, Iteration{
			Script: script,
			Output: res.Output,
			Errors: reports,
		})
		art.FinalScript = script
		if res.OK() && len(reports) == 0 {
			art.Success = true
			art.Screenshots = res.Screenshots
			return art, nil
		}
		resp, err := a.opt.Model.Complete(llm.Request{
			System: repairSystem,
			User:   llm.BuildRepairUser(script, errext.Summarize(reports)),
		})
		if err != nil {
			return nil, fmt.Errorf("chatvis: script repair: %w", err)
		}
		revised := CleanScript(resp)
		if strings.TrimSpace(revised) == strings.TrimSpace(script) {
			// The model cannot make progress; stop early.
			break
		}
		script = revised
	}
	return art, nil
}

// exampleBlock renders the (possibly truncated) example library. An empty
// string means "no examples" (FewShot < 0).
func (a *Assistant) exampleBlock() string {
	if a.opt.FewShot < 0 {
		return ""
	}
	examples := DefaultExamples()
	if a.opt.FewShot > 0 && a.opt.FewShot < len(examples) {
		examples = examples[:a.opt.FewShot]
	}
	var b strings.Builder
	for _, ex := range examples {
		b.WriteString(ex.Code)
		b.WriteString("\n\n")
	}
	return b.String()
}

// CleanScript strips chat artifacts (markdown fences, leading prose) from
// a model response, keeping the Python payload.
func CleanScript(resp string) string {
	lines := strings.Split(resp, "\n")
	var out []string
	inFence := false
	sawFence := strings.Contains(resp, "```")
	for _, l := range lines {
		t := strings.TrimSpace(l)
		if strings.HasPrefix(t, "```") {
			inFence = !inFence
			continue
		}
		if sawFence && !inFence {
			// Outside fences in a fenced response: prose, drop it.
			continue
		}
		out = append(out, l)
	}
	s := strings.Join(out, "\n")
	if !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	return s
}

// Unassisted runs a bare model on the raw user prompt with no prompt
// rewriting, no examples and no correction loop — the paper's comparison
// condition for GPT-4 and the other LLMs.
func Unassisted(model llm.Client, runner *pvpython.Runner, userPrompt string) (*Artifact, error) {
	art := &Artifact{UserPrompt: userPrompt, GeneratedPrompt: userPrompt}
	resp, err := model.Complete(llm.Request{
		System: "Generate a ParaView Python script for the user's request.",
		User:   userPrompt,
	})
	if err != nil {
		return nil, err
	}
	// No assistant post-processing: the raw response runs as-is, which is
	// how markdown fences become syntax errors.
	script := resp
	res := runner.Exec(script)
	reports := errext.Extract(res.Output)
	art.Iterations = []Iteration{{Script: script, Output: res.Output, Errors: reports}}
	art.FinalScript = script
	art.Success = res.OK() && len(reports) == 0
	art.Screenshots = res.Screenshots
	return art, nil
}
