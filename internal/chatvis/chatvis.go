// Package chatvis implements the paper's contribution: an iterative
// assistant that turns a natural-language visualization request into a
// working ParaView Python script.
//
// The flow follows Fig. 1 of the paper:
//
//  1. Prompt generation — an LLM rewrites the user request into
//     step-by-step instructions, guided by a crafted example pair.
//  2. Script generation — the LLM receives the generated prompt together
//     with example code snippets (few-shot prompting) and emits a script.
//  3. Error detection and correction — the script runs under PvPython;
//     error messages are extracted from the output and fed back to the
//     LLM, which revises the script. The loop repeats until the script
//     executes cleanly or the iteration budget is exhausted.
//
// Every session is traced: the Artifact records each stage's duration,
// token usage and cache provenance (see Trace), and the whole run is
// cancellable through its context.
package chatvis

import (
	"context"
	"fmt"
	"strings"
	"time"

	"chatvis/internal/errext"
	"chatvis/internal/llm"
	"chatvis/internal/plan"
	"chatvis/internal/pvpython"
)

// Iteration records one pass of the correction loop.
type Iteration struct {
	// Script is the candidate script executed this round.
	Script string `json:"script"`
	// Output is the combined PvPython output.
	Output string `json:"output,omitempty"`
	// Errors are the extracted error reports (empty on success).
	Errors []errext.ErrorReport `json:"errors,omitempty"`
	// PlanHash is the normalized plan hash of the executed script
	// (empty when it did not parse).
	PlanHash string `json:"plan_hash,omitempty"`
}

// Artifact is everything one assistant run produces. The JSON tags fix
// the wire format EncodeArtifact/DecodeArtifact persist in chatvisd's
// artifact store.
type Artifact struct {
	UserPrompt      string      `json:"user_prompt"`
	GeneratedPrompt string      `json:"generated_prompt"`
	Iterations      []Iteration `json:"iterations"`
	// FinalScript is the last executed script.
	FinalScript string `json:"final_script"`
	// Screenshots produced by the successful run.
	Screenshots []string `json:"screenshots,omitempty"`
	// Success reports whether the final script executed without error.
	Success bool `json:"success"`
	// Plan is the normalized compiled plan of the final script (nil when
	// it does not parse): the typed DAG the session produced, which
	// chatvisd serves alongside the script text.
	Plan *plan.Plan `json:"plan,omitempty"`
	// Trace records every stage of the session (LLM calls and script
	// executions) with durations, usage and cache provenance.
	Trace Trace `json:"trace"`
}

// PlanHash returns the final plan's canonical hash ("" without a plan).
func (a *Artifact) PlanHash() string {
	if a.Plan == nil {
		return ""
	}
	return a.Plan.Hash()
}

// NumIterations returns how many executions the loop needed.
func (a *Artifact) NumIterations() int { return len(a.Iterations) }

// Assistant is the ChatVis agent.
type Assistant struct {
	model  llm.Client
	runner *pvpython.Runner
	opt    options
}

// NewAssistant builds an assistant over a model and a script runner.
// Behaviour is tuned with functional options: WithMaxIterations,
// WithFewShot, WithRewrite, WithAPIReference.
func NewAssistant(model llm.Client, runner *pvpython.Runner, opts ...Option) (*Assistant, error) {
	if model == nil {
		return nil, fmt.Errorf("chatvis: model is required")
	}
	if runner == nil {
		return nil, fmt.Errorf("chatvis: runner is required")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return &Assistant{model: model, runner: runner, opt: o}, nil
}

// rewriteSystem is the stage-1 instruction (its phrasing carries the
// stage marker the simulated models dispatch on).
const rewriteSystem = `You are an assistant that prepares prompts for a ParaView scripting model.
Rewrite the user's visualization request as precise step-by-step instructions.
Identify every operation the user mentions and arrange the steps in execution order.
Follow the structure of the example below.`

// generateSystem introduces the few-shot examples (stage 2).
const generateSystem = `You are an expert in ParaView Python scripting.
Generate a complete, runnable ParaView Python script for the user's request.
Use only functions and properties that exist in paraview.simple.
Example code snippets for various operations:

%s`

// repairSystem frames the correction request (stage 3).
const repairSystem = `You are an expert in ParaView Python scripting.
The previously generated script failed to execute. Use the error messages
extracted from the PvPython output to fix the code and return the full
corrected script.`

// complete performs one traced LLM call.
func (a *Assistant) complete(ctx context.Context, trace *Trace, stage string, req llm.Request) (string, error) {
	start := time.Now()
	resp, err := a.model.Complete(ctx, req)
	if err != nil {
		return "", err
	}
	trace.addLLM(stage, resp, time.Since(start))
	return resp.Text, nil
}

// exec performs one traced script execution. The trace records the
// normalized plan hash of what ran, so per-stage provenance survives in
// the artifact.
func (a *Assistant) exec(ctx context.Context, trace *Trace, round int, script string) *pvpython.Result {
	start := time.Now()
	res := a.runner.ExecContext(ctx, script)
	trace.add(StageTrace{
		Stage:    fmt.Sprintf("%s-%d", StageExec, round),
		Duration: time.Since(start),
		PlanHash: res.PlanHash(),
	})
	return res
}

// planRepair is the pre-execution validation loop: compile the candidate
// script to the plan IR, and when schema validation finds errors, hand
// the structured diagnostics to the model for repair — before paying for
// an engine run. Bounded to two rounds; a model that cannot make
// progress (or a script that does not even parse) falls through to the
// ordinary execute-and-repair loop.
func (a *Assistant) planRepair(ctx context.Context, trace *Trace, script string) (string, error) {
	for round := 1; round <= 2; round++ {
		start := time.Now()
		compiled, err := a.runner.CompilePlan(script)
		if err != nil {
			// Unparsable: the execution loop's SyntaxError path owns it.
			return script, nil
		}
		diags := plan.Errors(compiled.Diags)
		trace.add(StageTrace{
			Stage:    fmt.Sprintf("%s-%d", StageValidate, round),
			Duration: time.Since(start),
			PlanHash: compiled.Plan.Hash(),
		})
		if len(diags) == 0 {
			return script, nil
		}
		resp, err := a.complete(ctx, trace,
			fmt.Sprintf("%s-%d", StagePlanRepair, round), llm.Request{
				System: repairSystem,
				User:   llm.BuildPlanRepairUser(script, diags),
			})
		if err != nil {
			return "", fmt.Errorf("chatvis: plan repair: %w", err)
		}
		revised := CleanScript(resp)
		if strings.TrimSpace(revised) == strings.TrimSpace(script) {
			return script, nil
		}
		script = revised
	}
	return script, nil
}

// Run executes the full ChatVis flow for one user request. The context
// cancels the session between stages and inside the model's calls.
func (a *Assistant) Run(ctx context.Context, userPrompt string) (*Artifact, error) {
	art := &Artifact{UserPrompt: userPrompt}

	// Stage 1: prompt generation.
	genPrompt := userPrompt
	if a.opt.rewritePrompt {
		resp, err := a.complete(ctx, &art.Trace, StageRewrite, llm.Request{
			System: rewriteSystem + "\n\n" + ExamplePromptPair,
			User:   userPrompt,
		})
		if err != nil {
			return nil, fmt.Errorf("chatvis: prompt generation: %w", err)
		}
		genPrompt = resp
	}
	art.GeneratedPrompt = genPrompt

	// Stage 2: script generation with few-shot examples and/or API docs.
	genSys := "You are an expert in ParaView Python scripting.\nGenerate a complete, runnable ParaView Python script for the user's request."
	if block := a.exampleBlock(); block != "" {
		genSys = fmt.Sprintf(generateSystem, block)
	}
	if a.opt.apiReference != "" {
		genSys += "\n\nComplete API documentation:\n" + a.opt.apiReference
	}
	resp, err := a.complete(ctx, &art.Trace, StageGenerate, llm.Request{
		System: genSys,
		User:   genPrompt,
	})
	if err != nil {
		return nil, fmt.Errorf("chatvis: script generation: %w", err)
	}
	script := CleanScript(resp)

	// Stage 2.5 (plan-aware mode): validate the compiled plan and repair
	// diagnostics before the first engine run.
	if a.opt.planValidate {
		script, err = a.planRepair(ctx, &art.Trace, script)
		if err != nil {
			return nil, err
		}
	}

	// Stage 3: execute, extract errors, repair.
	for iter := 0; iter < a.opt.maxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("chatvis: correction loop: %w", err)
		}
		res := a.exec(ctx, &art.Trace, iter+1, script)
		reports := errext.Extract(res.Output)
		art.Iterations = append(art.Iterations, Iteration{
			Script:   script,
			Output:   res.Output,
			Errors:   reports,
			PlanHash: res.PlanHash(),
		})
		art.FinalScript = script
		art.Plan = res.Plan
		if res.OK() && len(reports) == 0 {
			art.Success = true
			art.Screenshots = res.Screenshots
			return art, nil
		}
		resp, err := a.complete(ctx, &art.Trace,
			fmt.Sprintf("%s-%d", StageRepair, iter+1), llm.Request{
				System: repairSystem,
				User:   llm.BuildRepairUser(script, errext.Summarize(reports)),
			})
		if err != nil {
			return nil, fmt.Errorf("chatvis: script repair: %w", err)
		}
		revised := CleanScript(resp)
		if strings.TrimSpace(revised) == strings.TrimSpace(script) {
			// The model cannot make progress; stop early.
			break
		}
		script = revised
	}
	return art, nil
}

// exampleBlock renders the (possibly truncated) example library. An empty
// string means "no examples" (fewShot < 0).
func (a *Assistant) exampleBlock() string {
	if a.opt.fewShot < 0 {
		return ""
	}
	examples := DefaultExamples()
	if a.opt.fewShot > 0 && a.opt.fewShot < len(examples) {
		examples = examples[:a.opt.fewShot]
	}
	var b strings.Builder
	for _, ex := range examples {
		b.WriteString(ex.Code)
		b.WriteString("\n\n")
	}
	return b.String()
}

// CleanScript strips chat artifacts (markdown fences, leading prose) from
// a model response, keeping the Python payload.
//
// Balanced fences keep exactly the fenced content. An unterminated final
// fence (models often drop the closer when truncated) keeps everything
// after it; a response whose fences delimit no content at all (e.g. a
// stray lone closer after the payload) falls back to dropping just the
// fence lines so the payload survives.
func CleanScript(resp string) string {
	lines := strings.Split(resp, "\n")
	if !strings.Contains(resp, "```") {
		return ensureTrailingNewline(resp)
	}
	var out []string
	inFence := false
	fencesLeft := 0
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "```") {
			fencesLeft++
		}
	}
	for _, l := range lines {
		t := strings.TrimSpace(l)
		if strings.HasPrefix(t, "```") {
			fencesLeft--
			if !inFence && fencesLeft == 0 {
				// Final fence with no closer to come: treat it as an
				// unterminated opener and keep the rest of the response.
				inFence = true
				continue
			}
			inFence = !inFence
			continue
		}
		if !inFence {
			// Outside fences in a fenced response: prose, drop it.
			continue
		}
		out = append(out, l)
	}
	if len(strings.TrimSpace(strings.Join(out, "\n"))) == 0 {
		// The fences delimited nothing (e.g. a lone trailing closer after
		// the payload): keep everything except the fence lines.
		out = out[:0]
		for _, l := range lines {
			if strings.HasPrefix(strings.TrimSpace(l), "```") {
				continue
			}
			out = append(out, l)
		}
	}
	return ensureTrailingNewline(strings.Join(out, "\n"))
}

func ensureTrailingNewline(s string) string {
	if !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	return s
}

// Unassisted runs a bare model on the raw user prompt with no prompt
// rewriting, no examples and no correction loop — the paper's comparison
// condition for GPT-4 and the other LLMs. The artifact's trace records
// the single generate and exec stages.
func Unassisted(ctx context.Context, model llm.Client, runner *pvpython.Runner, userPrompt string) (*Artifact, error) {
	art := &Artifact{UserPrompt: userPrompt, GeneratedPrompt: userPrompt}
	start := time.Now()
	resp, err := model.Complete(ctx, llm.Request{
		System: "Generate a ParaView Python script for the user's request.",
		User:   userPrompt,
	})
	if err != nil {
		return nil, err
	}
	art.Trace.addLLM(StageGenerate, resp, time.Since(start))
	// No assistant post-processing: the raw response runs as-is, which is
	// how markdown fences become syntax errors.
	script := resp.Text
	execStart := time.Now()
	res := runner.ExecContext(ctx, script)
	art.Trace.add(StageTrace{Stage: StageExec + "-1", Duration: time.Since(execStart), PlanHash: res.PlanHash()})
	reports := errext.Extract(res.Output)
	art.Iterations = []Iteration{{Script: script, Output: res.Output, Errors: reports, PlanHash: res.PlanHash()}}
	art.FinalScript = script
	art.Plan = res.Plan
	art.Success = res.OK() && len(reports) == 0
	art.Screenshots = res.Screenshots
	return art, nil
}
