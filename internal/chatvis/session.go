package chatvis

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"chatvis/internal/errext"
	"chatvis/internal/llm"
	"chatvis/internal/obs"
	"chatvis/internal/plan"
	"chatvis/internal/pvpython"
	"chatvis/internal/pvsim"
)

// Session is the conversational ChatVis API: a stateful multi-turn
// dialogue over one visualization pipeline. The first turn behaves like
// Assistant.Run (prompt rewrite → script generation → execute-and-repair
// loop); every later turn is compiled as an *edit against the session's
// current canonical plan* — the model proposes a target plan from
// (current plan JSON + utterance) via the PlanDelta path, the proposal
// is schema-validated and repaired pre-execution, and the plan executes
// on the session's persistent engine, which memoizes stages by subtree
// hash so an edit touching one stage re-executes only that stage and its
// downstream subtree.
//
// Assistant.Run and Unassisted are thin single-turn wrappers over this
// type; chatvisd's /v1/sessions endpoints and the chatvis -interactive
// REPL drive it multi-turn.
type Session struct {
	model  llm.Client
	runner *pvpython.Runner
	opt    options

	mu     sync.Mutex
	eng    *pvsim.Engine
	turns  []*Turn
	curr   *plan.Plan
	closed bool
}

// Turn is the outcome of one session turn: the artifact (script, plan,
// screenshots, trace) plus per-turn provenance and the incremental
// execution accounting.
type Turn struct {
	// Index is the 1-based turn number.
	Index int `json:"index"`
	// Prompt is the user utterance that drove the turn.
	Prompt string `json:"prompt"`
	// ParentPlanHash is the canonical hash of the plan this turn edited
	// ("" for first turns).
	ParentPlanHash string `json:"parent_plan_hash,omitempty"`
	// DeltaSummary is the human-readable plan delta vs the parent.
	DeltaSummary string `json:"delta_summary,omitempty"`
	// ChangedStages are the canonical IDs of the stages this turn's plan
	// changed vs the parent (every stage on a first turn).
	ChangedStages []string `json:"changed_stages,omitempty"`
	// ExecutionsDelta counts the pipeline-stage computations the session
	// engine actually performed for this turn — the observable that pins
	// incremental re-execution (an edit of one stage costs 1, not the
	// whole plan).
	ExecutionsDelta int64 `json:"executions_delta"`
	// Incremental reports whether the turn executed through the session
	// engine's plan memo (false for classic first-turn script runs that
	// could not be materialized as a plan).
	Incremental bool `json:"incremental"`
	// Artifact is the full session artifact of the turn.
	Artifact *Artifact `json:"artifact"`
}

// Event types emitted to a session observer.
const (
	EventTurnStarted  = "turn-started"
	EventStage        = "stage"
	EventTurnFinished = "turn-finished"
)

// Event is one observable session happening, streamed by chatvisd as a
// server-sent event.
type Event struct {
	Turn         int    `json:"turn"`
	Type         string `json:"type"`
	Stage        string `json:"stage,omitempty"`
	PlanHash     string `json:"plan_hash,omitempty"`
	DeltaSummary string `json:"delta_summary,omitempty"`
	Success      bool   `json:"success,omitempty"`
	Error        string `json:"error,omitempty"`
	// TraceID names the distributed trace of the turn that emitted the
	// event ("" when the turn ran untraced).
	TraceID string `json:"trace_id,omitempty"`
}

// NewSession builds a conversational session over a model and a runner.
// It accepts the same functional options as NewAssistant plus the
// session-specific ones (WithUnassisted, WithIncremental, WithObserver).
func NewSession(model llm.Client, runner *pvpython.Runner, opts ...Option) (*Session, error) {
	if model == nil {
		return nil, fmt.Errorf("chatvis: model is required")
	}
	if runner == nil {
		return nil, fmt.Errorf("chatvis: runner is required")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return &Session{model: model, runner: runner, opt: o}, nil
}

// NewSessionFrom builds a session seeded with an existing canonical
// plan — how chatvisd rehydrates a persisted session after a restart.
// The first turn on a seeded session is an edit turn; the engine is
// cold, so that turn re-executes the full plan once and later turns are
// incremental again.
func NewSessionFrom(model llm.Client, runner *pvpython.Runner, seed *plan.Plan, opts ...Option) (*Session, error) {
	s, err := NewSession(model, runner, opts...)
	if err != nil {
		return nil, err
	}
	if seed != nil {
		s.curr = plan.Normalize(seed, pvsim.PlanSchema())
	}
	return s, nil
}

// engine lazily builds the session's persistent engine, sharing the
// runner's directories and dataset cache so plan executions compose with
// the process-wide content-hash cache.
func (s *Session) engine() *pvsim.Engine {
	if s.eng == nil {
		s.eng = pvsim.NewEngine(s.runner.DataDir, s.runner.OutDir)
		s.eng.DataCache = s.runner.Cache
	}
	return s.eng
}

// Turns returns the completed turns in order.
func (s *Session) Turns() []*Turn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Turn(nil), s.turns...)
}

// CurrentPlan returns the session's canonical plan (nil before the first
// successful turn).
func (s *Session) CurrentPlan() *plan.Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curr
}

// PlanHash returns the canonical hash of the current plan ("" if none).
func (s *Session) PlanHash() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.curr == nil {
		return ""
	}
	return s.curr.Hash()
}

// Executions exposes the session engine's computation counter (for
// tests and metrics pinning incremental behaviour).
func (s *Session) Executions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine().Executions()
}

func (s *Session) observe(ev Event) {
	if s.opt.observer != nil {
		s.opt.observer(ev)
	}
}

// Turn runs one conversational turn. The first turn (and any turn whose
// utterance reads as a complete fresh request — it names an input file)
// runs the full generation flow; other turns run the plan-edit flow
// against the current plan. Turns are serialized: concurrent callers
// queue on the session lock.
func (s *Session) Turn(ctx context.Context, prompt string) (*Turn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := len(s.turns) + 1

	ctx, span := obs.Start(ctx, "chatvis.turn")
	span.SetAttr("turn", idx)
	defer span.End()
	tid := obs.TraceID(ctx)
	s.observe(Event{Turn: idx, Type: EventTurnStarted, TraceID: tid})

	fresh := s.curr == nil || llm.ParseIntent(prompt).InputFile != ""
	span.SetAttr("kind", map[bool]string{true: "first", false: "edit"}[fresh])
	var (
		turn *Turn
		err  error
	)
	if fresh {
		turn, err = s.firstTurn(ctx, idx, prompt)
	} else {
		turn, err = s.editTurn(ctx, idx, prompt)
	}
	if err != nil {
		span.SetError(err)
		s.observe(Event{Turn: idx, Type: EventTurnFinished, Error: err.Error(), TraceID: tid})
		return nil, err
	}
	// Stamp the trace on the per-stage record so the stored artifact can
	// be joined back to its distributed trace.
	turn.Artifact.Trace.TraceID = tid
	s.turns = append(s.turns, turn)
	s.observe(Event{
		Turn: idx, Type: EventTurnFinished,
		PlanHash:     turn.Artifact.PlanHash(),
		DeltaSummary: turn.DeltaSummary,
		Success:      turn.Artifact.Success,
		TraceID:      tid,
	})
	return turn, nil
}

// complete performs one traced LLM call: the single point every stage's
// model call funnels through, so each gets a span carrying model, token
// counts and cache/retry provenance from the middleware chain.
func (s *Session) complete(ctx context.Context, trace *Trace, stage string, req llm.Request) (string, error) {
	_, span := obs.Start(ctx, "llm."+stage)
	defer span.End()
	start := time.Now()
	resp, err := s.model.Complete(ctx, req)
	if err != nil {
		span.SetError(err)
		return "", err
	}
	span.SetAttr("model", resp.Model)
	span.SetAttr("prompt_tokens", resp.Usage.PromptTokens)
	span.SetAttr("completion_tokens", resp.Usage.CompletionTokens)
	span.SetAttr("cache_hit", resp.CacheHit)
	span.SetAttr("attempts", resp.Attempts)
	if req.Task != "" {
		span.SetAttr("task", string(req.Task))
	}
	if req.Escalation > 0 {
		span.SetAttr("escalation", req.Escalation)
	}
	trace.addLLM(stage, req, resp, time.Since(start))
	return resp.Text, nil
}

// exec performs one traced script execution. The trace records the
// normalized plan hash of what ran, so per-stage provenance survives in
// the artifact.
func (s *Session) exec(ctx context.Context, trace *Trace, round int, script string) *pvpython.Result {
	ctx, span := obs.Start(ctx, "script.exec")
	span.SetAttr("round", round)
	defer span.End()
	start := time.Now()
	res := s.runner.ExecContext(ctx, script)
	if !res.OK() {
		span.Fail("script execution failed")
	}
	trace.add(StageTrace{
		Stage:    fmt.Sprintf("%s-%d", StageExec, round),
		Duration: time.Since(start),
		PlanHash: res.PlanHash(),
	})
	return res
}

// planRepair is the pre-execution validation loop: compile the candidate
// script to the plan IR, and when schema validation finds errors, hand
// the structured diagnostics to the model for repair — before paying for
// an engine run. Bounded to two rounds; a model that cannot make
// progress (or a script that does not even parse) falls through to the
// ordinary execute-and-repair loop.
func (s *Session) planRepair(ctx context.Context, trace *Trace, script string) (string, error) {
	for round := 1; round <= 2; round++ {
		_, vspan := obs.Start(ctx, "plan.validate")
		vspan.SetAttr("round", round)
		start := time.Now()
		compiled, err := s.runner.CompilePlan(script)
		if err != nil {
			// Unparsable: the execution loop's SyntaxError path owns it.
			vspan.Fail("script does not compile to a plan")
			vspan.End()
			return script, nil
		}
		diags := plan.Errors(compiled.Diags)
		vspan.SetAttr("diagnostics", len(diags))
		vspan.End()
		trace.add(StageTrace{
			Stage:    fmt.Sprintf("%s-%d", StageValidate, round),
			Duration: time.Since(start),
			PlanHash: compiled.Plan.Hash(),
		})
		if len(diags) == 0 {
			return script, nil
		}
		resp, err := s.complete(ctx, trace,
			fmt.Sprintf("%s-%d", StagePlanRepair, round), llm.Request{
				System: repairSystem,
				User:   llm.BuildPlanRepairUser(script, diags),
				// Regenerating the script from plan diagnostics is
				// writer-class work; round 2 means round 1's repair
				// left diagnostics standing, so escalate.
				Task:       llm.TaskWrite,
				Escalation: round - 1,
			})
		if err != nil {
			return "", fmt.Errorf("chatvis: plan repair: %w", err)
		}
		revised := CleanScript(resp)
		if strings.TrimSpace(revised) == strings.TrimSpace(script) {
			return script, nil
		}
		script = revised
	}
	return script, nil
}

// exampleBlock renders the (possibly truncated) example library. An empty
// string means "no examples" (fewShot < 0).
func (s *Session) exampleBlock() string {
	if s.opt.fewShot < 0 {
		return ""
	}
	examples := DefaultExamples()
	if s.opt.fewShot > 0 && s.opt.fewShot < len(examples) {
		examples = examples[:s.opt.fewShot]
	}
	var b strings.Builder
	for _, ex := range examples {
		b.WriteString(ex.Code)
		b.WriteString("\n\n")
	}
	return b.String()
}

// firstTurn runs the full generation flow (the paper's loop, or the
// unassisted comparison condition) and, in incremental mode, adopts the
// resulting plan as session state and materializes it on the session
// engine so the next edit re-executes only what it changes.
func (s *Session) firstTurn(ctx context.Context, idx int, prompt string) (*Turn, error) {
	var art *Artifact
	var err error
	if s.opt.unassisted {
		art, err = s.runUnassisted(ctx, idx, prompt)
	} else {
		art, err = s.runAssisted(ctx, idx, prompt)
	}
	if err != nil {
		return nil, err
	}
	art.TurnIndex = idx
	art.DeltaSummary = plan.DiffSummary(nil, art.Plan)
	turn := &Turn{
		Index:        idx,
		Prompt:       prompt,
		DeltaSummary: art.DeltaSummary,
		Artifact:     art,
	}
	if art.Plan != nil {
		turn.ChangedStages = plan.ChangedStages(nil, art.Plan)
	}
	if art.Success && art.Plan != nil {
		s.curr = art.Plan
		if !s.opt.noWarm {
			s.seedEngine(ctx, turn, art)
		}
	}
	return turn, nil
}

// seedEngine materializes the turn's plan on the session engine, priming
// the per-subtree-hash memo incremental turns rely on. Failures are
// recorded but do not fail the turn — the classic script execution
// already succeeded; the next edit turn will simply pay a cold start.
func (s *Session) seedEngine(ctx context.Context, turn *Turn, art *Artifact) {
	ctx, span := obs.Start(ctx, "engine.seed-exec")
	defer span.End()
	eng := s.engine()
	before := eng.Executions()
	start := time.Now()
	_, err := eng.ExecPlan(ctx, art.Plan)
	span.SetError(err)
	art.Trace.add(StageTrace{
		Stage:    StageSeedExec,
		Duration: time.Since(start),
		PlanHash: art.Plan.Hash(),
	})
	turn.ExecutionsDelta = eng.Executions() - before
	turn.Incremental = err == nil
}

// runAssisted is the classic ChatVis flow: prompt generation, few-shot
// script generation, optional pre-execution plan validation, then the
// execute / extract-errors / repair loop.
func (s *Session) runAssisted(ctx context.Context, idx int, userPrompt string) (*Artifact, error) {
	art := &Artifact{UserPrompt: userPrompt}
	art.Trace.OnAdd = s.stageObserver(ctx, idx)

	// Stage 1: prompt generation.
	genPrompt := userPrompt
	if s.opt.rewritePrompt {
		resp, err := s.complete(ctx, &art.Trace, StageRewrite, RewriteRequest(userPrompt))
		if err != nil {
			return nil, fmt.Errorf("chatvis: prompt generation: %w", err)
		}
		genPrompt = resp
	}
	art.GeneratedPrompt = genPrompt

	// Stage 2: script generation with few-shot examples and/or API docs.
	genSys := "You are an expert in ParaView Python scripting.\nGenerate a complete, runnable ParaView Python script for the user's request."
	if block := s.exampleBlock(); block != "" {
		genSys = fmt.Sprintf(generateSystem, block)
	}
	if s.opt.apiReference != "" {
		genSys += "\n\nComplete API documentation:\n" + s.opt.apiReference
	}
	resp, err := s.complete(ctx, &art.Trace, StageGenerate, llm.Request{
		System: genSys,
		User:   genPrompt,
		Task:   llm.TaskWrite,
	})
	if err != nil {
		return nil, fmt.Errorf("chatvis: script generation: %w", err)
	}
	script := CleanScript(resp)

	// Stage 2.5 (plan-aware mode): validate the compiled plan and repair
	// diagnostics before the first engine run.
	if s.opt.planValidate {
		script, err = s.planRepair(ctx, &art.Trace, script)
		if err != nil {
			return nil, err
		}
	}

	// Stage 3: execute, extract errors, repair.
	for iter := 0; iter < s.opt.maxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("chatvis: correction loop: %w", err)
		}
		res := s.exec(ctx, &art.Trace, iter+1, script)
		reports := errext.Extract(res.Output)
		art.Iterations = append(art.Iterations, Iteration{
			Script:   script,
			Output:   res.Output,
			Errors:   reports,
			PlanHash: res.PlanHash(),
		})
		art.FinalScript = script
		art.Plan = res.Plan
		if res.OK() && len(reports) == 0 {
			art.Success = true
			art.Screenshots = res.Screenshots
			return art, nil
		}
		resp, err := s.complete(ctx, &art.Trace,
			fmt.Sprintf("%s-%d", StageRepair, iter+1), llm.Request{
				System: repairSystem,
				User:   llm.BuildRepairUser(script, errext.Summarize(reports)),
				// Traceback repair regenerates the whole script —
				// writer-class work. iter counts previous failed repair
				// rounds: the first repair runs on the primary model,
				// later rounds climb the router's strength ladder.
				Task:       llm.TaskWrite,
				Escalation: iter,
			})
		if err != nil {
			return nil, fmt.Errorf("chatvis: script repair: %w", err)
		}
		revised := CleanScript(resp)
		if strings.TrimSpace(revised) == strings.TrimSpace(script) {
			// The model cannot make progress; stop early.
			break
		}
		script = revised
	}
	return art, nil
}

// runUnassisted is the bare-model comparison condition: one generation,
// one execution, no post-processing.
func (s *Session) runUnassisted(ctx context.Context, idx int, userPrompt string) (*Artifact, error) {
	art := &Artifact{UserPrompt: userPrompt, GeneratedPrompt: userPrompt}
	art.Trace.OnAdd = s.stageObserver(ctx, idx)
	_, llmSpan := obs.Start(ctx, "llm."+StageGenerate)
	start := time.Now()
	req := llm.Request{
		System: "Generate a ParaView Python script for the user's request.",
		User:   userPrompt,
		Task:   llm.TaskWrite,
	}
	resp, err := s.model.Complete(ctx, req)
	if err != nil {
		llmSpan.SetError(err)
		llmSpan.End()
		return nil, err
	}
	llmSpan.SetAttr("model", resp.Model)
	llmSpan.SetAttr("prompt_tokens", resp.Usage.PromptTokens)
	llmSpan.SetAttr("completion_tokens", resp.Usage.CompletionTokens)
	llmSpan.SetAttr("cache_hit", resp.CacheHit)
	llmSpan.SetAttr("attempts", resp.Attempts)
	llmSpan.End()
	art.Trace.addLLM(StageGenerate, req, resp, time.Since(start))
	// No assistant post-processing: the raw response runs as-is, which is
	// how markdown fences become syntax errors.
	script := resp.Text
	execCtx, execSpan := obs.Start(ctx, "script.exec")
	execStart := time.Now()
	res := s.runner.ExecContext(execCtx, script)
	if !res.OK() {
		execSpan.Fail("script execution failed")
	}
	execSpan.End()
	art.Trace.add(StageTrace{Stage: StageExec + "-1", Duration: time.Since(execStart), PlanHash: res.PlanHash()})
	reports := errext.Extract(res.Output)
	art.Iterations = []Iteration{{Script: script, Output: res.Output, Errors: reports, PlanHash: res.PlanHash()}}
	art.FinalScript = script
	art.Plan = res.Plan
	art.Success = res.OK() && len(reports) == 0
	art.Screenshots = res.Screenshots
	return art, nil
}

// stageObserver forwards trace stages to the session observer as events,
// tagged with the turn's trace ID so streamed stage events can be joined
// to the distributed trace.
func (s *Session) stageObserver(ctx context.Context, idx int) func(StageTrace) {
	if s.opt.observer == nil {
		return nil
	}
	tid := obs.TraceID(ctx)
	return func(st StageTrace) {
		s.opt.observer(Event{Turn: idx, Type: EventStage, Stage: st.Stage, PlanHash: st.PlanHash, TraceID: tid})
	}
}

// editTurn runs the conversational edit flow: PlanDelta (model proposes
// the target plan from current plan + utterance), schema validation with
// bounded model repair, then incremental execution on the session
// engine.
func (s *Session) editTurn(ctx context.Context, idx int, prompt string) (*Turn, error) {
	parent := s.curr
	art := &Artifact{
		UserPrompt:      prompt,
		GeneratedPrompt: prompt,
		TurnIndex:       idx,
		ParentPlanHash:  parent.Hash(),
	}
	art.Trace.OnAdd = s.stageObserver(ctx, idx)
	turn := &Turn{Index: idx, Prompt: prompt, ParentPlanHash: parent.Hash(), Artifact: art}

	// Stage E1: the model proposes the target plan.
	resp, err := s.complete(ctx, &art.Trace, StageEdit, llm.Request{
		System: llm.EditSystem,
		User:   llm.BuildPlanEditUser(parent, prompt),
		Task:   llm.TaskPlanDelta,
	})
	if err != nil {
		return nil, fmt.Errorf("chatvis: plan edit: %w", err)
	}
	proposed, perr := llm.ParsePlanText(resp)
	if perr != nil {
		// An unusable proposal fails the turn but not the session: the
		// current plan stands.
		art.Iterations = []Iteration{{Script: resp, Output: fmt.Sprintf("Error: %v\n", perr)}}
		art.FinalScript = resp
		return turn, nil
	}

	// Stage E2: validate the proposal, with bounded model repair.
	schema := pvsim.PlanSchema()
	for round := 1; round <= 2; round++ {
		_, vspan := obs.Start(ctx, "plan.validate")
		vspan.SetAttr("round", round)
		start := time.Now()
		diags := plan.Errors(plan.Validate(proposed, schema))
		vspan.SetAttr("diagnostics", len(diags))
		vspan.End()
		art.Trace.add(StageTrace{
			Stage:    fmt.Sprintf("%s-%d", StageEditValidate, round),
			Duration: time.Since(start),
			PlanHash: proposed.Hash(),
		})
		if len(diags) == 0 {
			break
		}
		resp, err := s.complete(ctx, &art.Trace,
			fmt.Sprintf("%s-%d", StageEditRepair, round), llm.Request{
				System: llm.EditSystem,
				User:   llm.BuildPlanDeltaRepairUser(proposed, diags),
				// Structured plan-document repair: round 2 means the
				// first repair attempt left diagnostics, so escalate.
				Task:       llm.TaskPlanRepair,
				Escalation: round - 1,
			})
		if err != nil {
			return nil, fmt.Errorf("chatvis: plan-edit repair: %w", err)
		}
		if repaired, rerr := llm.ParsePlanText(resp); rerr == nil {
			proposed = repaired
		}
	}

	next := plan.Normalize(proposed, schema)
	turn.ChangedStages = plan.ChangedStages(parent, next)
	turn.DeltaSummary = plan.DiffSummary(parent, next)
	art.DeltaSummary = turn.DeltaSummary
	art.FinalScript = next.Script()
	art.Plan = next

	// Stage E3: incremental execution — unchanged stages are answered
	// from the engine's plan memo; Executions() advances only by the
	// changed-stage count.
	eng := s.engine()
	before := eng.Executions()
	execCtx, execSpan := obs.Start(ctx, "engine.exec-plan")
	start := time.Now()
	shots, execErr := eng.ExecPlan(execCtx, next)
	execSpan.SetError(execErr)
	execSpan.End()
	art.Trace.add(StageTrace{
		Stage:    StageExec + "-1",
		Duration: time.Since(start),
		PlanHash: next.Hash(),
	})
	turn.ExecutionsDelta = eng.Executions() - before
	turn.Incremental = true

	iter := Iteration{Script: art.FinalScript, PlanHash: next.Hash()}
	if execErr != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("chatvis: edit turn: %w", ctx.Err())
		}
		iter.Output = fmt.Sprintf("Error: %v\n", execErr)
		iter.Errors = errext.Extract(iter.Output)
		art.Iterations = []Iteration{iter}
		return turn, nil // failed turn; session plan unchanged
	}
	art.Iterations = []Iteration{iter}
	art.Success = true
	art.Screenshots = shots
	s.curr = next
	return turn, nil
}
