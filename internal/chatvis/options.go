package chatvis

// options is the resolved assistant configuration; callers set it through
// functional Options so defaults can evolve without breaking call sites.
type options struct {
	// maxIterations bounds the correction loop.
	maxIterations int
	// fewShot truncates the example library to its first n entries;
	// 0 means the full library and a negative value disables examples
	// entirely (the ablation bench's knob).
	fewShot int
	// rewritePrompt enables the prompt-generation stage.
	rewritePrompt bool
	// apiReference, when non-empty, is appended to the generation prompt
	// as documentation-based grounding.
	apiReference string
	// planValidate compiles each candidate script to the plan IR and
	// feeds validation diagnostics to the model *before* the first
	// engine run. Off by default: the paper's loop is purely
	// execute-and-repair, and the paper-reproduction tests pin that
	// behaviour; the chatvisd serving path turns it on.
	planValidate bool
}

func defaultOptions() options {
	return options{
		maxIterations: 5,
		fewShot:       0,
		rewritePrompt: true,
	}
}

// Option configures an Assistant.
type Option func(*options)

// WithMaxIterations bounds the error-correction loop (default 5; values
// < 1 are coerced to 1 so the script always executes at least once).
func WithMaxIterations(n int) Option {
	return func(o *options) {
		if n < 1 {
			n = 1
		}
		o.maxIterations = n
	}
}

// WithFewShot truncates the example library to its first n snippets.
// 0 keeps the full library; a negative value disables examples entirely
// (the ablation setting).
func WithFewShot(n int) Option {
	return func(o *options) { o.fewShot = n }
}

// WithRewrite toggles the prompt-generation stage (default on; the
// ablation bench switches it off).
func WithRewrite(enabled bool) Option {
	return func(o *options) { o.rewritePrompt = enabled }
}

// WithAPIReference appends full API documentation to the generation
// prompt — the paper's proposed alternative to few-shot snippets
// (teaching the model ParaView's real function calls). Obtain it from
// pvsim's Engine.APIReference().Format().
func WithAPIReference(ref string) Option {
	return func(o *options) { o.apiReference = ref }
}

// WithPlanValidation toggles pre-execution plan validation: candidate
// scripts are compiled to the plan IR and schema-validated, and error
// diagnostics are repaired by the model before any engine time is spent.
// A competent model then fixes every hallucinated property in one round
// instead of discovering them traceback by traceback.
func WithPlanValidation(enabled bool) Option {
	return func(o *options) { o.planValidate = enabled }
}
