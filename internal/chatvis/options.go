package chatvis

// options is the resolved assistant configuration; callers set it through
// functional Options so defaults can evolve without breaking call sites.
type options struct {
	// maxIterations bounds the correction loop.
	maxIterations int
	// fewShot truncates the example library to its first n entries;
	// 0 means the full library and a negative value disables examples
	// entirely (the ablation bench's knob).
	fewShot int
	// rewritePrompt enables the prompt-generation stage.
	rewritePrompt bool
	// apiReference, when non-empty, is appended to the generation prompt
	// as documentation-based grounding.
	apiReference string
	// planValidate compiles each candidate script to the plan IR and
	// feeds validation diagnostics to the model *before* the first
	// engine run. Off by default: the paper's loop is purely
	// execute-and-repair, and the paper-reproduction tests pin that
	// behaviour; the chatvisd serving path turns it on.
	planValidate bool
	// unassisted runs first turns as the bare model: no prompt rewrite,
	// no examples, no cleaning, no correction loop — the paper's
	// comparison condition, expressed as a session mode.
	unassisted bool
	// noWarm skips materializing a first turn's plan on the session
	// engine. The single-turn compatibility wrappers (Assistant.Run,
	// Unassisted) set it — there is no later turn to make incremental.
	noWarm bool
	// observer receives session events (turn lifecycle, trace stages) as
	// they happen; nil disables emission.
	observer func(Event)
}

func defaultOptions() options {
	return options{
		maxIterations: 5,
		fewShot:       0,
		rewritePrompt: true,
	}
}

// Option configures an Assistant.
type Option func(*options)

// WithMaxIterations bounds the error-correction loop (default 5; values
// < 1 are coerced to 1 so the script always executes at least once).
func WithMaxIterations(n int) Option {
	return func(o *options) {
		if n < 1 {
			n = 1
		}
		o.maxIterations = n
	}
}

// WithFewShot truncates the example library to its first n snippets.
// 0 keeps the full library; a negative value disables examples entirely
// (the ablation setting).
func WithFewShot(n int) Option {
	return func(o *options) { o.fewShot = n }
}

// WithRewrite toggles the prompt-generation stage (default on; the
// ablation bench switches it off).
func WithRewrite(enabled bool) Option {
	return func(o *options) { o.rewritePrompt = enabled }
}

// WithAPIReference appends full API documentation to the generation
// prompt — the paper's proposed alternative to few-shot snippets
// (teaching the model ParaView's real function calls). Obtain it from
// pvsim's Engine.APIReference().Format().
func WithAPIReference(ref string) Option {
	return func(o *options) { o.apiReference = ref }
}

// WithPlanValidation toggles pre-execution plan validation: candidate
// scripts are compiled to the plan IR and schema-validated, and error
// diagnostics are repaired by the model before any engine time is spent.
// A competent model then fixes every hallucinated property in one round
// instead of discovering them traceback by traceback.
func WithPlanValidation(enabled bool) Option {
	return func(o *options) { o.planValidate = enabled }
}

// WithUnassisted runs first turns as the bare model — no prompt rewrite,
// no examples, no cleaning, no correction loop (the paper's comparison
// condition). Later turns still use the plan-edit path.
func WithUnassisted(enabled bool) Option {
	return func(o *options) { o.unassisted = enabled }
}

// WithIncremental controls whether the session keeps a persistent engine
// warm with each successful plan, so a later turn that edits one stage
// re-executes only that stage's downstream subtree. Enabled by default
// for NewSession; disable it for one-shot use where the extra plan
// materialization after the first turn buys nothing.
func WithIncremental(enabled bool) Option {
	return func(o *options) { o.noWarm = !enabled }
}

// WithObserver registers a callback receiving session events (turn
// lifecycle and per-stage progress) as they happen — the hook chatvisd
// streams over SSE.
func WithObserver(fn func(Event)) Option {
	return func(o *options) { o.observer = fn }
}
