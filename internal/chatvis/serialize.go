package chatvis

import (
	"encoding/json"
	"fmt"
)

// Artifact serialization: the stable wire format chatvisd's artifact
// store persists and serves. The encoding is plain JSON over the
// exported fields (scripts, outputs, screenshots, the per-stage trace);
// a version tag guards against silently decoding a future layout.

// artifactEnvelope wraps an Artifact with a format version for storage.
type artifactEnvelope struct {
	// Version identifies the encoding layout.
	Version int `json:"version"`
	// Artifact is the session payload.
	Artifact *Artifact `json:"artifact"`
}

// ArtifactEncodingVersion is the current artifact wire-format version.
const ArtifactEncodingVersion = 1

// EncodeArtifact serializes an artifact (with its trace) to versioned
// JSON, the byte form stored in chatvisd's content-addressed store.
func EncodeArtifact(a *Artifact) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("chatvis: cannot encode nil artifact")
	}
	return json.MarshalIndent(artifactEnvelope{
		Version:  ArtifactEncodingVersion,
		Artifact: a,
	}, "", "  ")
}

// DecodeArtifact deserializes bytes produced by EncodeArtifact.
func DecodeArtifact(b []byte) (*Artifact, error) {
	var env artifactEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("chatvis: decoding artifact: %w", err)
	}
	if env.Version != ArtifactEncodingVersion {
		return nil, fmt.Errorf("chatvis: unsupported artifact version %d", env.Version)
	}
	if env.Artifact == nil {
		return nil, fmt.Errorf("chatvis: artifact envelope is empty")
	}
	return env.Artifact, nil
}
