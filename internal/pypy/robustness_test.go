package pypy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestNoPanicOnArbitraryInput: the interpreter must return errors, never
// panic, for arbitrary byte soup (the assistant executes whatever text a
// model emits).
func TestNoPanicOnArbitraryInput(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", src, r)
			}
		}()
		var out bytes.Buffer
		in := NewInterp(&out)
		in.MaxSteps = 50_000
		_ = in.Run(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestNoPanicOnMangledScripts: mutate a valid script at random positions
// (the realistic corruption mode for LLM output) and require error-or-ok,
// never panic.
func TestNoPanicOnMangledScripts(t *testing.T) {
	base := `from paraview.simple import *
x = [1, 2, 3]
total = 0
for v in x:
    if v % 2 == 0:
        total += v
    else:
        total -= v
def f(a, b=2):
    return a * b
print(f(total), 'done %d' % total)
`
	rng := rand.New(rand.NewSource(11))
	chars := []byte("()[]{}:=+-*/'\"#\n\t .,")
	for i := 0; i < 500; i++ {
		b := []byte(base)
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0: // replace
				b[pos] = chars[rng.Intn(len(chars))]
			case 1: // delete
				b = append(b[:pos], b[pos+1:]...)
			case 2: // insert
				c := chars[rng.Intn(len(chars))]
				b = append(b[:pos], append([]byte{c}, b[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %d:\n%s\npanic: %v", i, b, r)
				}
			}()
			var out bytes.Buffer
			in := NewInterp(&out)
			in.MaxSteps = 100_000
			_ = in.Run(string(b))
		}()
	}
}

// TestDeepNestingDoesNotOverflow guards the recursive-descent parser
// against pathological nesting.
func TestDeepNestingDoesNotOverflow(t *testing.T) {
	depth := 500
	src := "x = " + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth) + "\n"
	var out bytes.Buffer
	in := NewInterp(&out)
	if err := in.Run(src); err != nil {
		// An error is acceptable; a crash is not (reaching here means no
		// crash).
		t.Logf("deep nesting returned error (acceptable): %v", err)
	}
}

// TestErrorLineAccuracy: the reported traceback line must point at the
// failing statement for repair to edit the right place.
func TestErrorLineAccuracy(t *testing.T) {
	src := `x = 1
y = 2
z = x + y
boom = undefined_name
w = 5
`
	var out bytes.Buffer
	in := NewInterp(&out)
	err := in.Run(src)
	pe, ok := err.(*PyError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if pe.Line != 4 {
		t.Errorf("error line = %d, want 4", pe.Line)
	}
	if got := in.SourceLine(4); !strings.Contains(got, "undefined_name") {
		t.Errorf("SourceLine(4) = %q", got)
	}
}

// TestInterpreterArithmeticMatchesGo cross-checks integer arithmetic
// against Go's semantics on random operands.
func TestInterpreterArithmeticMatchesGo(t *testing.T) {
	f := func(a, b int16) bool {
		if b == 0 {
			return true
		}
		var out bytes.Buffer
		in := NewInterp(&out)
		src := "print(" +
			itoa(int64(a)) + " + " + itoa(int64(b)) + ", " +
			itoa(int64(a)) + " * " + itoa(int64(b)) + ")\n"
		if err := in.Run(src); err != nil {
			return false
		}
		want := Int(int64(a)+int64(b)).Repr() + " " + Int(int64(a)*int64(b)).Repr() + "\n"
		return out.String() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "(-" + Int(-v).Repr() + ")"
	}
	return Int(v).Repr()
}

// TestStringRoundTripThroughRepr: list reprs of strings re-parse to the
// same value (the writer and repair path rely on stable rendering).
func TestStringReprParsesBack(t *testing.T) {
	f := func(raw string) bool {
		// Restrict to printable single-quote-free ASCII; the repr quoting
		// covers quotes but the property here targets typical API strings.
		var sb strings.Builder
		for _, r := range raw {
			if r >= ' ' && r < 127 && r != '\'' && r != '\\' {
				sb.WriteRune(r)
			}
		}
		s := sb.String()
		var out bytes.Buffer
		in := NewInterp(&out)
		if err := in.Run("x = " + Str(s).Repr() + "\nprint(x)\n"); err != nil {
			return false
		}
		return out.String() == s+"\n"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
