package pypy

import (
	"strconv"
	"strings"
)

// parser builds the AST from the token stream.
type parser struct {
	lx   *lexer
	toks []token
	pos  int
}

// Parse tokenizes and parses a script. file is used in error messages
// (PvPython scripts conventionally report as "script.py").
func Parse(file, src string) (*Module, error) {
	lx := newLexer(file, src)
	toks, err := lx.tokenize()
	if err != nil {
		return nil, err
	}
	p := &parser{lx: lx, toks: toks}
	mod := &Module{}
	for !p.at(tokEOF) {
		if p.skipNoise() {
			continue
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		if st != nil {
			mod.Body = append(mod.Body, st)
		}
	}
	return mod, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind) bool { return p.cur().kind == kind }

func (p *parser) atOp(text string) bool {
	return p.cur().kind == tokOp && p.cur().text == text
}

func (p *parser) atKw(text string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == text
}

func (p *parser) eatOp(text string) bool {
	if p.atOp(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eatKw(text string) bool {
	if p.atKw(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) errf(line int, format string, args ...interface{}) error {
	return p.lx.errf(line, format, args...)
}

// skipNoise consumes stray newlines at statement level.
func (p *parser) skipNoise() bool {
	if p.at(tokNewline) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectNewline() error {
	if p.at(tokNewline) {
		p.pos++
		return nil
	}
	if p.at(tokEOF) {
		return nil
	}
	return p.errf(p.cur().line, "invalid syntax")
}

// statement parses one statement (possibly compound).
func (p *parser) statement() (Stmt, error) {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "import":
			return p.importStmt()
		case "from":
			return p.fromImportStmt()
		case "if":
			return p.ifStmt()
		case "for":
			return p.forStmt()
		case "while":
			return p.whileStmt()
		case "def":
			return p.funcDef()
		case "return":
			p.pos++
			ret := &Return{base: base{t.line}}
			if !p.at(tokNewline) && !p.at(tokEOF) {
				v, err := p.exprList()
				if err != nil {
					return nil, err
				}
				ret.Value = v
			}
			return ret, p.expectNewline()
		case "pass":
			p.pos++
			return &Pass{base{t.line}}, p.expectNewline()
		case "break":
			p.pos++
			return &Break{base{t.line}}, p.expectNewline()
		case "continue":
			p.pos++
			return &Continue{base{t.line}}, p.expectNewline()
		case "True", "False", "None", "not":
			// Expression statement beginning with a keyword literal.
			return p.exprOrAssign()
		default:
			return nil, p.errf(t.line, "invalid syntax")
		}
	}
	return p.exprOrAssign()
}

func (p *parser) importStmt() (Stmt, error) {
	line := p.next().line // import
	mod, err := p.dottedName()
	if err != nil {
		return nil, err
	}
	im := &Import{base: base{line}, Module: mod}
	if p.eatKw("as") {
		if !p.at(tokName) {
			return nil, p.errf(p.cur().line, "invalid syntax")
		}
		im.Alias = p.next().text
	}
	return im, p.expectNewline()
}

func (p *parser) fromImportStmt() (Stmt, error) {
	line := p.next().line // from
	mod, err := p.dottedName()
	if err != nil {
		return nil, err
	}
	if !p.eatKw("import") {
		return nil, p.errf(p.cur().line, "invalid syntax")
	}
	fi := &FromImport{base: base{line}, Module: mod}
	if p.eatOp("*") {
		fi.Star = true
		return fi, p.expectNewline()
	}
	for {
		if !p.at(tokName) {
			return nil, p.errf(p.cur().line, "invalid syntax")
		}
		fi.Names = append(fi.Names, p.next().text)
		if p.eatKw("as") {
			if !p.at(tokName) {
				return nil, p.errf(p.cur().line, "invalid syntax")
			}
			p.next() // alias ignored: bound under alias name
			fi.Names[len(fi.Names)-1] += " as " + p.toks[p.pos-1].text
		}
		if !p.eatOp(",") {
			break
		}
	}
	return fi, p.expectNewline()
}

func (p *parser) dottedName() (string, error) {
	if !p.at(tokName) {
		return "", p.errf(p.cur().line, "invalid syntax")
	}
	var parts []string
	parts = append(parts, p.next().text)
	for p.atOp(".") {
		p.pos++
		if !p.at(tokName) {
			return "", p.errf(p.cur().line, "invalid syntax")
		}
		parts = append(parts, p.next().text)
	}
	return strings.Join(parts, "."), nil
}

// suite parses `: NEWLINE INDENT stmts DEDENT` or a one-line suite.
func (p *parser) suite() ([]Stmt, error) {
	if !p.eatOp(":") {
		return nil, p.errf(p.cur().line, "expected ':'")
	}
	if !p.at(tokNewline) {
		// One-line suite: single simple statement.
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		return []Stmt{st}, nil
	}
	p.pos++ // newline
	if !p.at(tokIndent) {
		return nil, p.errf(p.cur().line, "expected an indented block")
	}
	p.pos++
	var body []Stmt
	for !p.at(tokDedent) && !p.at(tokEOF) {
		if p.skipNoise() {
			continue
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
	if p.at(tokDedent) {
		p.pos++
	}
	return body, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	line := p.next().line // if / elif
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	node := &If{base: base{line}, Cond: cond, Body: body}
	for p.skipNoise() {
	}
	if p.atKw("elif") {
		sub, err := p.ifStmt()
		if err != nil {
			return nil, err
		}
		node.Else = []Stmt{sub}
	} else if p.atKw("else") {
		p.pos++
		els, err := p.suite()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *parser) forStmt() (Stmt, error) {
	line := p.next().line
	target, err := p.targetList()
	if err != nil {
		return nil, err
	}
	if !p.eatKw("in") {
		return nil, p.errf(p.cur().line, "invalid syntax")
	}
	iter, err := p.exprList()
	if err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return &For{base: base{line}, Target: target, Iter: iter, Body: body}, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	line := p.next().line
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	return &While{base: base{line}, Cond: cond, Body: body}, nil
}

func (p *parser) funcDef() (Stmt, error) {
	line := p.next().line
	if !p.at(tokName) {
		return nil, p.errf(p.cur().line, "invalid syntax")
	}
	name := p.next().text
	if !p.eatOp("(") {
		return nil, p.errf(p.cur().line, "invalid syntax")
	}
	fd := &FuncDef{base: base{line}, Name: name}
	for !p.atOp(")") {
		if !p.at(tokName) {
			return nil, p.errf(p.cur().line, "invalid syntax")
		}
		fd.Params = append(fd.Params, p.next().text)
		if p.eatOp("=") {
			def, err := p.expr()
			if err != nil {
				return nil, err
			}
			fd.Defaults = append(fd.Defaults, def)
		} else if len(fd.Defaults) > 0 {
			return nil, p.errf(p.cur().line, "non-default argument follows default argument")
		}
		if !p.eatOp(",") {
			break
		}
	}
	if !p.eatOp(")") {
		return nil, p.errf(p.cur().line, "invalid syntax")
	}
	body, err := p.suite()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// targetList parses assignment/for targets: name, attr, subscript, tuples.
func (p *parser) targetList() (Expr, error) {
	first, err := p.primaryTarget()
	if err != nil {
		return nil, err
	}
	if !p.atOp(",") {
		return first, nil
	}
	tl := &TupleLit{base: base{first.Line()}, Elts: []Expr{first}}
	for p.eatOp(",") {
		if p.atKw("in") || p.atOp("=") {
			break
		}
		e, err := p.primaryTarget()
		if err != nil {
			return nil, err
		}
		tl.Elts = append(tl.Elts, e)
	}
	return tl, nil
}

func (p *parser) primaryTarget() (Expr, error) {
	e, err := p.unary()
	if err != nil {
		return nil, err
	}
	switch e.(type) {
	case *Name, *Attribute, *Subscript, *TupleLit:
		return e, nil
	}
	return nil, p.errf(e.Line(), "cannot assign to expression")
}

// exprOrAssign handles `expr`, `target = value`, and `target op= value`.
func (p *parser) exprOrAssign() (Stmt, error) {
	line := p.cur().line
	first, err := p.exprList()
	if err != nil {
		return nil, err
	}
	if p.atOp("+=") || p.atOp("-=") || p.atOp("*=") || p.atOp("/=") {
		op := p.next().text[:1]
		if !assignable(first) {
			return nil, p.errf(line, "cannot assign to expression")
		}
		val, err := p.exprList()
		if err != nil {
			return nil, err
		}
		return &AugAssign{base: base{line}, Target: first, Op: op, Value: val}, p.expectNewline()
	}
	if !p.atOp("=") {
		return &ExprStmt{base: base{line}, X: first}, p.expectNewline()
	}
	targets := []Expr{first}
	var value Expr
	for p.eatOp("=") {
		e, err := p.exprList()
		if err != nil {
			return nil, err
		}
		value = e
		if p.atOp("=") {
			targets = append(targets, e)
		}
	}
	for _, tgt := range targets {
		if !assignable(tgt) {
			return nil, p.errf(line, "cannot assign to expression here")
		}
	}
	return &Assign{base: base{line}, Targets: targets, Value: value}, p.expectNewline()
}

func assignable(e Expr) bool {
	switch t := e.(type) {
	case *Name, *Attribute, *Subscript:
		return true
	case *TupleLit:
		for _, el := range t.Elts {
			if !assignable(el) {
				return false
			}
		}
		return true
	}
	return false
}

// exprList parses `expr (, expr)*`, producing a TupleLit when there are
// commas (Python's bare tuple).
func (p *parser) exprList() (Expr, error) {
	first, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.atOp(",") {
		return first, nil
	}
	tl := &TupleLit{base: base{first.Line()}, Elts: []Expr{first}}
	for p.eatOp(",") {
		if p.at(tokNewline) || p.at(tokEOF) || p.atOp("=") || p.atOp(")") || p.atOp("]") || p.atOp("}") {
			break
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		tl.Elts = append(tl.Elts, e)
	}
	return tl, nil
}

// Expression precedence (low to high): or, and, not, comparison,
// +/-, */ // %, unary, **, postfix (call/attr/index), atom.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	if !p.atKw("or") {
		return left, nil
	}
	node := &BoolOp{base: base{left.Line()}, Op: "or", Values: []Expr{left}}
	for p.eatKw("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		node.Values = append(node.Values, r)
	}
	return node, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	if !p.atKw("and") {
		return left, nil
	}
	node := &BoolOp{base: base{left.Line()}, Op: "and", Values: []Expr{left}}
	for p.eatKw("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		node.Values = append(node.Values, r)
	}
	return node, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.atKw("not") {
		line := p.next().line
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{base: base{line}, Op: "not", X: x}, nil
	}
	return p.comparison()
}

var compareOps = map[string]bool{
	"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true,
}

func (p *parser) comparison() (Expr, error) {
	left, err := p.arith()
	if err != nil {
		return nil, err
	}
	var ops []string
	var rest []Expr
	for {
		var op string
		if p.cur().kind == tokOp && compareOps[p.cur().text] {
			op = p.next().text
		} else if p.atKw("in") {
			p.pos++
			op = "in"
		} else if p.atKw("is") {
			p.pos++
			if p.eatKw("not") {
				op = "is not"
			} else {
				op = "is"
			}
		} else if p.atKw("not") && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "in" {
			p.pos += 2
			op = "not in"
		} else {
			break
		}
		r, err := p.arith()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		rest = append(rest, r)
	}
	if len(ops) == 0 {
		return left, nil
	}
	return &Compare{base: base{left.Line()}, First: left, Ops: ops, Rest: rest}, nil
}

func (p *parser) arith() (Expr, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.next().text
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		left = &BinOp{base: base{left.Line()}, Op: op, L: left, R: r}
	}
	return left, nil
}

func (p *parser) term() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atOp("//") || p.atOp("%") {
		op := p.next().text
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &BinOp{base: base{left.Line()}, Op: op, L: left, R: r}
	}
	return left, nil
}

func (p *parser) unary() (Expr, error) {
	if p.atOp("-") || p.atOp("+") {
		t := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{base: base{t.line}, Op: t.text, X: x}, nil
	}
	return p.power()
}

func (p *parser) power() (Expr, error) {
	left, err := p.postfix()
	if err != nil {
		return nil, err
	}
	if p.atOp("**") {
		p.pos++
		r, err := p.unary() // right associative
		if err != nil {
			return nil, err
		}
		return &BinOp{base: base{left.Line()}, Op: "**", L: left, R: r}, nil
	}
	return left, nil
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atOp("."):
			p.pos++
			if !p.at(tokName) && !p.at(tokKeyword) {
				return nil, p.errf(p.cur().line, "invalid syntax")
			}
			attr := p.next().text
			e = &Attribute{base: base{e.Line()}, Value: e, Attr: attr}
		case p.atOp("("):
			line := p.cur().line
			p.pos++
			call := &Call{base: base{line}, Func: e}
			for !p.atOp(")") {
				// keyword argument?
				if p.at(tokName) && p.pos+1 < len(p.toks) &&
					p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "=" {
					kw := p.next().text
					p.pos++ // =
					v, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.KwNames = append(call.KwNames, kw)
					call.KwValues = append(call.KwValues, v)
				} else {
					v, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, v)
				}
				if !p.eatOp(",") {
					break
				}
			}
			if !p.eatOp(")") {
				return nil, p.errf(line, "'(' was never closed")
			}
			e = call
		case p.atOp("["):
			openLine := p.cur().line
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if !p.eatOp("]") {
				return nil, p.errf(openLine, "'[' was never closed")
			}
			e = &Subscript{base: base{e.Line()}, Value: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) atom() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokName:
		p.pos++
		return &Name{base: base{t.line}, ID: t.text}, nil
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf(t.line, "invalid number literal")
			}
			return &NumLit{base: base{t.line}, Float: f}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errf(t.line, "invalid number literal")
			}
			return &NumLit{base: base{t.line}, Float: f}, nil
		}
		return &NumLit{base: base{t.line}, IsInt: true, Int: i}, nil
	case tokString:
		p.pos++
		// Adjacent string literal concatenation.
		val := t.text
		for p.at(tokString) {
			val += p.next().text
		}
		return &StrLit{base: base{t.line}, Value: val}, nil
	case tokKeyword:
		switch t.text {
		case "True":
			p.pos++
			return &BoolLit{base: base{t.line}, Value: true}, nil
		case "False":
			p.pos++
			return &BoolLit{base: base{t.line}, Value: false}, nil
		case "None":
			p.pos++
			return &NoneLit{base{t.line}}, nil
		}
		return nil, p.errf(t.line, "invalid syntax")
	case tokOp:
		switch t.text {
		case "(":
			p.pos++
			if p.atOp(")") { // empty tuple
				p.pos++
				return &TupleLit{base: base{t.line}}, nil
			}
			inner, err := p.expr()
			if err != nil {
				return nil, err
			}
			if p.atOp(",") { // tuple
				tl := &TupleLit{base: base{t.line}, Elts: []Expr{inner}}
				for p.eatOp(",") {
					if p.atOp(")") {
						break
					}
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					tl.Elts = append(tl.Elts, e)
				}
				if !p.eatOp(")") {
					return nil, p.errf(t.line, "'(' was never closed")
				}
				return tl, nil
			}
			if !p.eatOp(")") {
				return nil, p.errf(t.line, "'(' was never closed")
			}
			return inner, nil
		case "[":
			p.pos++
			lst := &ListLit{base: base{t.line}}
			for !p.atOp("]") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				lst.Elts = append(lst.Elts, e)
				if !p.eatOp(",") {
					break
				}
			}
			if !p.eatOp("]") {
				return nil, p.errf(t.line, "'[' was never closed")
			}
			return lst, nil
		case "{":
			p.pos++
			d := &DictLit{base: base{t.line}}
			for !p.atOp("}") {
				k, err := p.expr()
				if err != nil {
					return nil, err
				}
				if !p.eatOp(":") {
					return nil, p.errf(p.cur().line, "invalid syntax")
				}
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				d.Keys = append(d.Keys, k)
				d.Values = append(d.Values, v)
				if !p.eatOp(",") {
					break
				}
			}
			if !p.eatOp("}") {
				return nil, p.errf(t.line, "'{' was never closed")
			}
			return d, nil
		}
	}
	return nil, p.errf(t.line, "invalid syntax")
}
