package pypy

// Node is the common interface of AST nodes; Line reports the 1-based
// source line for traceback rendering.
type Node interface{ Line() int }

type base struct{ line int }

// Line implements Node.
func (b base) Line() int { return b.line }

// Statements.

// Module is a parsed script: a list of top-level statements.
type Module struct {
	Body []Stmt
}

// Stmt is any statement node.
type Stmt interface{ Node }

// ExprStmt is a bare expression evaluated for its side effects.
type ExprStmt struct {
	base
	X Expr
}

// Assign is `target = value` (single or chained `a = b = v`).
type Assign struct {
	base
	Targets []Expr // Name, Attribute, Subscript or Tuple nodes
	Value   Expr
}

// AugAssign is `target op= value`.
type AugAssign struct {
	base
	Target Expr
	Op     string // "+", "-", "*", "/"
	Value  Expr
}

// If is a conditional with optional elif chain (nested) and else.
type If struct {
	base
	Cond Expr
	Body []Stmt
	Else []Stmt
}

// For is `for target in iterable:`.
type For struct {
	base
	Target Expr
	Iter   Expr
	Body   []Stmt
}

// While is a while loop.
type While struct {
	base
	Cond Expr
	Body []Stmt
}

// FuncDef is `def name(params):`.
type FuncDef struct {
	base
	Name     string
	Params   []string
	Defaults []Expr // aligned to the tail of Params
	Body     []Stmt
}

// Return is a return statement (Value may be nil).
type Return struct {
	base
	Value Expr
}

// Pass, Break and Continue statements.
type Pass struct{ base }

// Break exits the innermost loop.
type Break struct{ base }

// Continue resumes the innermost loop.
type Continue struct{ base }

// Import is `import a.b` or `import a.b as c`.
type Import struct {
	base
	Module string
	Alias  string
}

// FromImport is `from a.b import x, y` or `from a.b import *`.
type FromImport struct {
	base
	Module string
	Names  []string // nil means *
	Star   bool
}

// Expressions.

// Expr is any expression node.
type Expr interface{ Node }

// Name references a variable.
type Name struct {
	base
	ID string
}

// NumLit is an integer or float literal.
type NumLit struct {
	base
	IsInt bool
	Int   int64
	Float float64
}

// StrLit is a string literal.
type StrLit struct {
	base
	Value string
}

// BoolLit is True/False.
type BoolLit struct {
	base
	Value bool
}

// NoneLit is None.
type NoneLit struct{ base }

// ListLit is [a, b, ...].
type ListLit struct {
	base
	Elts []Expr
}

// TupleLit is (a, b) or a bare comma expression.
type TupleLit struct {
	base
	Elts []Expr
}

// DictLit is {k: v, ...}.
type DictLit struct {
	base
	Keys   []Expr
	Values []Expr
}

// Attribute is value.attr.
type Attribute struct {
	base
	Value Expr
	Attr  string
}

// Subscript is value[index].
type Subscript struct {
	base
	Value Expr
	Index Expr
}

// Call is func(args, kw=...).
type Call struct {
	base
	Func     Expr
	Args     []Expr
	KwNames  []string
	KwValues []Expr
}

// BinOp is a binary arithmetic expression.
type BinOp struct {
	base
	Op   string // + - * / // % **
	L, R Expr
}

// UnaryOp is -x, +x or `not x`.
type UnaryOp struct {
	base
	Op string // "-", "+", "not"
	X  Expr
}

// Compare is a (possibly chained) comparison a < b <= c.
type Compare struct {
	base
	First Expr
	Ops   []string // == != < <= > >= in not-in is
	Rest  []Expr
}

// BoolOp is `and`/`or` with short-circuit semantics.
type BoolOp struct {
	base
	Op     string // "and" | "or"
	Values []Expr
}
