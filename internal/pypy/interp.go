package pypy

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// PyError is a Python runtime exception: a kind ("AttributeError",
// "NameError", "TypeError", ...), a message, and the script line where it
// was raised.
type PyError struct {
	Kind string
	Msg  string
	Line int
	// Cause is the underlying Go error the exception wraps (a filter
	// failure, a context cancellation, ...). Keeping the chain intact
	// lets callers — notably the dataset cache's singleflight retry —
	// see through the Python-shaped wrapper with errors.Is.
	Cause error
}

// Error implements the error interface.
func (e *PyError) Error() string { return e.Kind + ": " + e.Msg }

// Unwrap exposes the wrapped cause to errors.Is/As.
func (e *PyError) Unwrap() error { return e.Cause }

// Traceback renders the CPython-style traceback text that PvPython prints
// to stderr, which the paper's extraction tool parses.
func (e *PyError) Traceback(file string, srcLine string) string {
	var b strings.Builder
	b.WriteString("Traceback (most recent call last):\n")
	fmt.Fprintf(&b, "  File \"%s\", line %d, in <module>\n", file, e.Line)
	if s := strings.TrimSpace(srcLine); s != "" {
		fmt.Fprintf(&b, "    %s\n", s)
	}
	fmt.Fprintf(&b, "%s: %s", e.Kind, e.Msg)
	return b.String()
}

// Env is a lexical scope.
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv creates a scope with an optional parent.
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[string]Value{}, parent: parent}
}

// Get resolves a name through the scope chain.
func (e *Env) Get(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Set binds a name in this scope.
func (e *Env) Set(name string, v Value) { e.vars[name] = v }

// Names returns the names bound directly in this scope, sorted.
func (e *Env) Names() []string {
	out := make([]string, 0, len(e.vars))
	for k := range e.vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// control-flow signals used internally by the evaluator.
type breakSignal struct{}
type continueSignal struct{}
type returnSignal struct{ v Value }

func (breakSignal) Error() string    { return "break" }
func (continueSignal) Error() string { return "continue" }
func (returnSignal) Error() string   { return "return" }

// Interp executes parsed modules.
type Interp struct {
	// Stdout receives print() output.
	Stdout io.Writer
	// Modules maps dotted module paths to importable namespaces. The
	// pvpython layer registers "paraview" and "paraview.simple" here.
	Modules map[string]*ModuleVal
	// Globals is the module-level scope of the running script.
	Globals *Env
	// File is the script name used in tracebacks.
	File string
	// MaxSteps bounds total statement executions to stop runaway loops.
	MaxSteps int

	steps int
	lines []string
}

// NewInterp builds an interpreter writing print output to stdout.
func NewInterp(stdout io.Writer) *Interp {
	in := &Interp{
		Stdout:   stdout,
		Modules:  map[string]*ModuleVal{},
		Globals:  NewEnv(nil),
		File:     "script.py",
		MaxSteps: 5_000_000,
	}
	registerBuiltins(in.Globals)
	return in
}

// RegisterModule makes a module importable under its dotted path,
// creating parent package entries as needed.
func (in *Interp) RegisterModule(m *ModuleVal) {
	in.Modules[m.Name] = m
	// Ensure parent packages exist so `import paraview.simple` binds
	// `paraview` with a `simple` attribute.
	parts := strings.Split(m.Name, ".")
	for i := len(parts) - 1; i >= 1; i-- {
		parentName := strings.Join(parts[:i], ".")
		parent, ok := in.Modules[parentName]
		if !ok {
			parent = &ModuleVal{Name: parentName, Attrs: map[string]Value{}}
			in.Modules[parentName] = parent
		}
		child := in.Modules[strings.Join(parts[:i+1], ".")]
		parent.Attrs[parts[i]] = child
	}
}

// Run parses and executes src. The returned error is either a
// *SyntaxError (parse time) or a *PyError (run time); nil on success.
func (in *Interp) Run(src string) error {
	mod, err := Parse(in.File, src)
	if err != nil {
		return err
	}
	in.lines = strings.Split(src, "\n")
	in.steps = 0
	return in.execBlock(mod.Body, in.Globals)
}

// SourceLine returns the 1-based source line text for tracebacks.
func (in *Interp) SourceLine(n int) string {
	if n-1 >= 0 && n-1 < len(in.lines) {
		return in.lines[n-1]
	}
	return ""
}

func (in *Interp) raise(line int, kind, format string, args ...interface{}) error {
	return &PyError{Kind: kind, Msg: fmt.Sprintf(format, args...), Line: line}
}

func (in *Interp) execBlock(stmts []Stmt, env *Env) error {
	for _, st := range stmts {
		if err := in.exec(st, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) exec(st Stmt, env *Env) error {
	in.steps++
	if in.steps > in.MaxSteps {
		return in.raise(st.Line(), "RuntimeError", "maximum execution steps exceeded")
	}
	switch s := st.(type) {
	case *ExprStmt:
		_, err := in.eval(s.X, env)
		return err
	case *Assign:
		v, err := in.eval(s.Value, env)
		if err != nil {
			return err
		}
		for _, tgt := range s.Targets {
			if err := in.assign(tgt, v, env); err != nil {
				return err
			}
		}
		return nil
	case *AugAssign:
		cur, err := in.eval(s.Target, env)
		if err != nil {
			return err
		}
		rhs, err := in.eval(s.Value, env)
		if err != nil {
			return err
		}
		nv, err := in.binop(s.Line(), s.Op, cur, rhs)
		if err != nil {
			return err
		}
		return in.assign(s.Target, nv, env)
	case *If:
		cond, err := in.eval(s.Cond, env)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return in.execBlock(s.Body, env)
		}
		return in.execBlock(s.Else, env)
	case *While:
		for {
			cond, err := in.eval(s.Cond, env)
			if err != nil {
				return err
			}
			if !Truthy(cond) {
				return nil
			}
			if err := in.execBlock(s.Body, env); err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
					continue
				}
				return err
			}
			in.steps++
			if in.steps > in.MaxSteps {
				return in.raise(s.Line(), "RuntimeError", "maximum execution steps exceeded")
			}
		}
	case *For:
		iter, err := in.eval(s.Iter, env)
		if err != nil {
			return err
		}
		items, err := iterate(iter)
		if err != nil {
			return in.raise(s.Line(), "TypeError", "%s", err.Error())
		}
		for _, item := range items {
			if err := in.assign(s.Target, item, env); err != nil {
				return err
			}
			if err := in.execBlock(s.Body, env); err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
					continue
				}
				return err
			}
		}
		return nil
	case *FuncDef:
		defaults := make([]Value, len(s.Defaults))
		for i, d := range s.Defaults {
			v, err := in.eval(d, env)
			if err != nil {
				return err
			}
			defaults[i] = v
		}
		env.Set(s.Name, &Func{
			Name: s.Name, Params: s.Params, Defaults: defaults,
			Body: s.Body, Globals: in.Globals,
		})
		return nil
	case *Return:
		var v Value = None
		if s.Value != nil {
			var err error
			v, err = in.eval(s.Value, env)
			if err != nil {
				return err
			}
		}
		return returnSignal{v}
	case *Pass:
		return nil
	case *Break:
		return breakSignal{}
	case *Continue:
		return continueSignal{}
	case *Import:
		mod, ok := in.Modules[s.Module]
		if !ok {
			return in.raise(s.Line(), "ModuleNotFoundError", "No module named '%s'", s.Module)
		}
		name := s.Alias
		if name == "" {
			// `import a.b` binds `a`.
			root := strings.Split(s.Module, ".")[0]
			rm, ok := in.Modules[root]
			if !ok {
				rm = mod
			}
			env.Set(root, rm)
			return nil
		}
		env.Set(name, mod)
		return nil
	case *FromImport:
		mod, ok := in.Modules[s.Module]
		if !ok {
			return in.raise(s.Line(), "ModuleNotFoundError", "No module named '%s'", s.Module)
		}
		if s.Star {
			for _, name := range mod.SortedAttrNames() {
				env.Set(name, mod.Attrs[name])
			}
			return nil
		}
		for _, spec := range s.Names {
			src, dst := spec, spec
			if i := strings.Index(spec, " as "); i >= 0 {
				src, dst = spec[:i], spec[i+4:]
			}
			v, ok := mod.Attrs[src]
			if !ok {
				return in.raise(s.Line(), "ImportError",
					"cannot import name '%s' from '%s'", src, s.Module)
			}
			env.Set(dst, v)
		}
		return nil
	}
	return in.raise(st.Line(), "RuntimeError", "unhandled statement %T", st)
}

func (in *Interp) assign(tgt Expr, v Value, env *Env) error {
	switch t := tgt.(type) {
	case *Name:
		env.Set(t.ID, v)
		return nil
	case *Attribute:
		obj, err := in.eval(t.Value, env)
		if err != nil {
			return err
		}
		o, ok := obj.(Object)
		if !ok {
			return in.raise(t.Line(), "AttributeError",
				"'%s' object has no attribute '%s'", obj.Type(), t.Attr)
		}
		if err := o.SetAttr(t.Attr, v); err != nil {
			return attachLine(err, t.Line())
		}
		return nil
	case *Subscript:
		obj, err := in.eval(t.Value, env)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.Index, env)
		if err != nil {
			return err
		}
		switch o := obj.(type) {
		case *List:
			i, ok := AsInt(idx)
			if !ok {
				return in.raise(t.Line(), "TypeError",
					"list indices must be integers or slices, not %s", idx.Type())
			}
			if i < 0 {
				i += int64(len(o.Items))
			}
			if i < 0 || i >= int64(len(o.Items)) {
				return in.raise(t.Line(), "IndexError", "list assignment index out of range")
			}
			o.Items[i] = v
			return nil
		case *Dict:
			o.Set(Format(idx), v)
			return nil
		}
		return in.raise(t.Line(), "TypeError",
			"'%s' object does not support item assignment", obj.Type())
	case *TupleLit:
		items, err := iterate(v)
		if err != nil {
			return in.raise(t.Line(), "TypeError", "cannot unpack non-iterable %s object", v.Type())
		}
		if len(items) != len(t.Elts) {
			return in.raise(t.Line(), "ValueError",
				"not enough values to unpack (expected %d, got %d)", len(t.Elts), len(items))
		}
		for i, el := range t.Elts {
			if err := in.assign(el, items[i], env); err != nil {
				return err
			}
		}
		return nil
	}
	return in.raise(tgt.Line(), "SyntaxError", "cannot assign to expression")
}

// attachLine fills in the line number of host-raised PyErrors.
func attachLine(err error, line int) error {
	if pe, ok := err.(*PyError); ok && pe.Line == 0 {
		pe.Line = line
		return pe
	}
	return err
}

func iterate(v Value) ([]Value, error) {
	switch t := v.(type) {
	case *List:
		return t.Items, nil
	case *Tuple:
		return t.Items, nil
	case Str:
		out := make([]Value, 0, len(t))
		for _, r := range string(t) {
			out = append(out, Str(string(r)))
		}
		return out, nil
	case *Dict:
		out := make([]Value, 0, len(t.keys))
		for _, k := range t.keys {
			out = append(out, Str(k))
		}
		return out, nil
	}
	return nil, fmt.Errorf("'%s' object is not iterable", v.Type())
}

func (in *Interp) eval(e Expr, env *Env) (Value, error) {
	switch x := e.(type) {
	case *Name:
		if v, ok := env.Get(x.ID); ok {
			return v, nil
		}
		return nil, in.raise(x.Line(), "NameError", "name '%s' is not defined", x.ID)
	case *NumLit:
		if x.IsInt {
			return Int(x.Int), nil
		}
		return Float(x.Float), nil
	case *StrLit:
		return Str(x.Value), nil
	case *BoolLit:
		return Bool(x.Value), nil
	case *NoneLit:
		return None, nil
	case *ListLit:
		items := make([]Value, len(x.Elts))
		for i, el := range x.Elts {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			items[i] = v
		}
		return &List{Items: items}, nil
	case *TupleLit:
		items := make([]Value, len(x.Elts))
		for i, el := range x.Elts {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			items[i] = v
		}
		return &Tuple{Items: items}, nil
	case *DictLit:
		d := NewDict()
		for i := range x.Keys {
			k, err := in.eval(x.Keys[i], env)
			if err != nil {
				return nil, err
			}
			v, err := in.eval(x.Values[i], env)
			if err != nil {
				return nil, err
			}
			d.Set(Format(k), v)
		}
		return d, nil
	case *Attribute:
		obj, err := in.eval(x.Value, env)
		if err != nil {
			return nil, err
		}
		return in.getAttr(obj, x.Attr, x.Line())
	case *Subscript:
		obj, err := in.eval(x.Value, env)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(x.Index, env)
		if err != nil {
			return nil, err
		}
		return in.getItem(obj, idx, x.Line())
	case *Call:
		fn, err := in.eval(x.Func, env)
		if err != nil {
			return nil, err
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		kwargs := map[string]Value{}
		for i, name := range x.KwNames {
			v, err := in.eval(x.KwValues[i], env)
			if err != nil {
				return nil, err
			}
			kwargs[name] = v
		}
		return in.call(fn, args, kwargs, x.Line())
	case *BinOp:
		l, err := in.eval(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(x.R, env)
		if err != nil {
			return nil, err
		}
		v, err := in.binop(x.Line(), x.Op, l, r)
		if err != nil {
			return nil, err
		}
		return v, nil
	case *UnaryOp:
		v, err := in.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "not":
			return Bool(!Truthy(v)), nil
		case "-":
			switch n := v.(type) {
			case Int:
				return Int(-n), nil
			case Float:
				return Float(-n), nil
			case Bool:
				if n {
					return Int(-1), nil
				}
				return Int(0), nil
			}
			return nil, in.raise(x.Line(), "TypeError", "bad operand type for unary -: '%s'", v.Type())
		case "+":
			if _, ok := AsFloat(v); ok {
				return v, nil
			}
			return nil, in.raise(x.Line(), "TypeError", "bad operand type for unary +: '%s'", v.Type())
		}
		return nil, in.raise(x.Line(), "RuntimeError", "unknown unary op %q", x.Op)
	case *Compare:
		left := x.First
		lv, err := in.eval(left, env)
		if err != nil {
			return nil, err
		}
		for i, op := range x.Ops {
			rv, err := in.eval(x.Rest[i], env)
			if err != nil {
				return nil, err
			}
			ok, err := in.compare(x.Line(), op, lv, rv)
			if err != nil {
				return nil, err
			}
			if !ok {
				return Bool(false), nil
			}
			lv = rv
		}
		return Bool(true), nil
	case *BoolOp:
		var last Value = None
		for i, sub := range x.Values {
			v, err := in.eval(sub, env)
			if err != nil {
				return nil, err
			}
			last = v
			if x.Op == "and" && !Truthy(v) {
				return v, nil
			}
			if x.Op == "or" && Truthy(v) {
				return v, nil
			}
			_ = i
		}
		return last, nil
	}
	return nil, in.raise(e.Line(), "RuntimeError", "unhandled expression %T", e)
}

func (in *Interp) getAttr(obj Value, attr string, line int) (Value, error) {
	if o, ok := obj.(Object); ok {
		v, err := o.GetAttr(attr)
		if err != nil {
			return nil, attachLine(err, line)
		}
		return v, nil
	}
	// Minimal string/list methods used by generated scripts.
	switch t := obj.(type) {
	case Str:
		switch attr {
		case "upper":
			return &NativeFunc{Name: "upper", Fn: func(_ *Interp, _ []Value, _ map[string]Value) (Value, error) {
				return Str(strings.ToUpper(string(t))), nil
			}}, nil
		case "lower":
			return &NativeFunc{Name: "lower", Fn: func(_ *Interp, _ []Value, _ map[string]Value) (Value, error) {
				return Str(strings.ToLower(string(t))), nil
			}}, nil
		case "strip":
			return &NativeFunc{Name: "strip", Fn: func(_ *Interp, _ []Value, _ map[string]Value) (Value, error) {
				return Str(strings.TrimSpace(string(t))), nil
			}}, nil
		case "split":
			return &NativeFunc{Name: "split", Fn: func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
				sep := " "
				if len(args) > 0 {
					if s, ok := args[0].(Str); ok {
						sep = string(s)
					}
				}
				parts := strings.Split(string(t), sep)
				items := make([]Value, len(parts))
				for i, p := range parts {
					items[i] = Str(p)
				}
				return &List{Items: items}, nil
			}}, nil
		}
	case *List:
		switch attr {
		case "append":
			return &NativeFunc{Name: "append", Fn: func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
				t.Items = append(t.Items, args...)
				return None, nil
			}}, nil
		case "extend":
			return &NativeFunc{Name: "extend", Fn: func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
				if len(args) == 1 {
					items, err := iterate(args[0])
					if err != nil {
						return nil, &PyError{Kind: "TypeError", Msg: err.Error()}
					}
					t.Items = append(t.Items, items...)
				}
				return None, nil
			}}, nil
		}
	case *Dict:
		switch attr {
		case "get":
			return &NativeFunc{Name: "get", Fn: func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
				if len(args) == 0 {
					return nil, &PyError{Kind: "TypeError", Msg: "get expected at least 1 argument, got 0"}
				}
				if v, ok := t.Get(Format(args[0])); ok {
					return v, nil
				}
				if len(args) > 1 {
					return args[1], nil
				}
				return None, nil
			}}, nil
		case "keys":
			return &NativeFunc{Name: "keys", Fn: func(_ *Interp, _ []Value, _ map[string]Value) (Value, error) {
				items := make([]Value, len(t.keys))
				for i, k := range t.keys {
					items[i] = Str(k)
				}
				return &List{Items: items}, nil
			}}, nil
		}
	}
	return nil, in.raise(line, "AttributeError",
		"'%s' object has no attribute '%s'", obj.Type(), attr)
}

func (in *Interp) getItem(obj, idx Value, line int) (Value, error) {
	switch o := obj.(type) {
	case *List:
		i, ok := AsInt(idx)
		if !ok {
			return nil, in.raise(line, "TypeError",
				"list indices must be integers or slices, not %s", idx.Type())
		}
		if i < 0 {
			i += int64(len(o.Items))
		}
		if i < 0 || i >= int64(len(o.Items)) {
			return nil, in.raise(line, "IndexError", "list index out of range")
		}
		return o.Items[i], nil
	case *Tuple:
		i, ok := AsInt(idx)
		if !ok {
			return nil, in.raise(line, "TypeError",
				"tuple indices must be integers or slices, not %s", idx.Type())
		}
		if i < 0 {
			i += int64(len(o.Items))
		}
		if i < 0 || i >= int64(len(o.Items)) {
			return nil, in.raise(line, "IndexError", "tuple index out of range")
		}
		return o.Items[i], nil
	case Str:
		i, ok := AsInt(idx)
		if !ok {
			return nil, in.raise(line, "TypeError", "string indices must be integers")
		}
		if i < 0 {
			i += int64(len(o))
		}
		if i < 0 || i >= int64(len(o)) {
			return nil, in.raise(line, "IndexError", "string index out of range")
		}
		return Str(string(o[i])), nil
	case *Dict:
		key := Format(idx)
		if v, ok := o.Get(key); ok {
			return v, nil
		}
		return nil, in.raise(line, "KeyError", "%s", idx.Repr())
	}
	return nil, in.raise(line, "TypeError", "'%s' object is not subscriptable", obj.Type())
}

// call invokes a callable value.
func (in *Interp) call(fn Value, args []Value, kwargs map[string]Value, line int) (Value, error) {
	switch f := fn.(type) {
	case *NativeFunc:
		v, err := f.Fn(in, args, kwargs)
		if err != nil {
			return nil, attachLine(err, line)
		}
		if v == nil {
			v = None
		}
		return v, nil
	case *Func:
		local := NewEnv(f.Globals)
		nDef := len(f.Defaults)
		nReq := len(f.Params) - nDef
		if len(args) > len(f.Params) {
			return nil, in.raise(line, "TypeError",
				"%s() takes %d positional arguments but %d were given",
				f.Name, len(f.Params), len(args))
		}
		for i, p := range f.Params {
			switch {
			case i < len(args):
				local.Set(p, args[i])
			default:
				if v, ok := kwargs[p]; ok {
					local.Set(p, v)
				} else if i >= nReq {
					local.Set(p, f.Defaults[i-nReq])
				} else {
					return nil, in.raise(line, "TypeError",
						"%s() missing required positional argument: '%s'", f.Name, p)
				}
			}
		}
		err := in.execBlock(f.Body, local)
		if err != nil {
			if rs, ok := err.(returnSignal); ok {
				return rs.v, nil
			}
			return nil, err
		}
		return None, nil
	}
	return nil, in.raise(line, "TypeError", "'%s' object is not callable", fn.Type())
}

func (in *Interp) binop(line int, op string, l, r Value) (Value, error) {
	// String concatenation and repetition.
	if op == "+" {
		if ls, ok := l.(Str); ok {
			if rs, ok := r.(Str); ok {
				return Str(string(ls) + string(rs)), nil
			}
			return nil, in.raise(line, "TypeError",
				"can only concatenate str (not \"%s\") to str", r.Type())
		}
		if ll, ok := l.(*List); ok {
			if rl, ok := r.(*List); ok {
				items := append(append([]Value{}, ll.Items...), rl.Items...)
				return &List{Items: items}, nil
			}
		}
	}
	if op == "*" {
		if ls, ok := l.(Str); ok {
			if n, ok := AsInt(r); ok {
				return Str(strings.Repeat(string(ls), int(max64(0, n)))), nil
			}
		}
		if ll, ok := l.(*List); ok {
			if n, ok := AsInt(r); ok {
				var items []Value
				for i := int64(0); i < n; i++ {
					items = append(items, ll.Items...)
				}
				return &List{Items: items}, nil
			}
		}
	}
	if op == "%" {
		if ls, ok := l.(Str); ok {
			// printf-style formatting with a single value or tuple.
			var vals []Value
			if tp, ok := r.(*Tuple); ok {
				vals = tp.Items
			} else {
				vals = []Value{r}
			}
			return Str(pyFormat(string(ls), vals)), nil
		}
	}
	lf, lok := AsFloat(l)
	rf, rok := AsFloat(r)
	if !lok || !rok {
		return nil, in.raise(line, "TypeError",
			"unsupported operand type(s) for %s: '%s' and '%s'", op, l.Type(), r.Type())
	}
	bothInt := isIntLike(l) && isIntLike(r)
	switch op {
	case "+":
		return numResult(lf+rf, bothInt), nil
	case "-":
		return numResult(lf-rf, bothInt), nil
	case "*":
		return numResult(lf*rf, bothInt), nil
	case "/":
		if rf == 0 {
			return nil, in.raise(line, "ZeroDivisionError", "division by zero")
		}
		return Float(lf / rf), nil
	case "//":
		if rf == 0 {
			return nil, in.raise(line, "ZeroDivisionError", "integer division or modulo by zero")
		}
		return numResult(math.Floor(lf/rf), bothInt), nil
	case "%":
		if rf == 0 {
			return nil, in.raise(line, "ZeroDivisionError", "integer division or modulo by zero")
		}
		m := math.Mod(lf, rf)
		if m != 0 && (m < 0) != (rf < 0) {
			m += rf
		}
		return numResult(m, bothInt), nil
	case "**":
		return numResult(math.Pow(lf, rf), bothInt && rf >= 0), nil
	}
	return nil, in.raise(line, "RuntimeError", "unknown operator %q", op)
}

func isIntLike(v Value) bool {
	switch v.(type) {
	case Int, Bool:
		return true
	}
	return false
}

func numResult(v float64, wantInt bool) Value {
	if wantInt && v == math.Trunc(v) {
		return Int(int64(v))
	}
	return Float(v)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (in *Interp) compare(line int, op string, l, r Value) (bool, error) {
	switch op {
	case "in", "not in":
		found := false
		switch c := r.(type) {
		case *List:
			for _, it := range c.Items {
				if valueEq(l, it) {
					found = true
					break
				}
			}
		case *Tuple:
			for _, it := range c.Items {
				if valueEq(l, it) {
					found = true
					break
				}
			}
		case Str:
			if ls, ok := l.(Str); ok {
				found = strings.Contains(string(c), string(ls))
			}
		case *Dict:
			_, found = c.Get(Format(l))
		default:
			return false, in.raise(line, "TypeError", "argument of type '%s' is not iterable", r.Type())
		}
		if op == "not in" {
			return !found, nil
		}
		return found, nil
	case "is":
		return l == r || (l.Type() == "NoneType" && r.Type() == "NoneType"), nil
	case "is not":
		eq := l == r || (l.Type() == "NoneType" && r.Type() == "NoneType")
		return !eq, nil
	case "==":
		return valueEq(l, r), nil
	case "!=":
		return !valueEq(l, r), nil
	}
	// Ordering.
	if ls, ok := l.(Str); ok {
		if rs, ok := r.(Str); ok {
			switch op {
			case "<":
				return ls < rs, nil
			case "<=":
				return ls <= rs, nil
			case ">":
				return ls > rs, nil
			case ">=":
				return ls >= rs, nil
			}
		}
	}
	lf, lok := AsFloat(l)
	rf, rok := AsFloat(r)
	if !lok || !rok {
		return false, in.raise(line, "TypeError",
			"'%s' not supported between instances of '%s' and '%s'", op, l.Type(), r.Type())
	}
	switch op {
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	}
	return false, in.raise(line, "RuntimeError", "unknown comparison %q", op)
}

func valueEq(l, r Value) bool {
	if lf, ok := AsFloat(l); ok {
		if rf, ok := AsFloat(r); ok {
			return lf == rf
		}
		return false
	}
	switch a := l.(type) {
	case Str:
		b, ok := r.(Str)
		return ok && a == b
	case NoneValue:
		_, ok := r.(NoneValue)
		return ok
	case *List:
		b, ok := r.(*List)
		if !ok || len(a.Items) != len(b.Items) {
			return false
		}
		for i := range a.Items {
			if !valueEq(a.Items[i], b.Items[i]) {
				return false
			}
		}
		return true
	case *Tuple:
		b, ok := r.(*Tuple)
		if !ok || len(a.Items) != len(b.Items) {
			return false
		}
		for i := range a.Items {
			if !valueEq(a.Items[i], b.Items[i]) {
				return false
			}
		}
		return true
	}
	return l == r
}

// pyFormat implements a useful subset of %-formatting.
func pyFormat(format string, vals []Value) string {
	var b strings.Builder
	vi := 0
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			b.WriteByte(c)
			continue
		}
		i++
		spec := format[i]
		if spec == '%' {
			b.WriteByte('%')
			continue
		}
		var v Value = Str("")
		if vi < len(vals) {
			v = vals[vi]
			vi++
		}
		switch spec {
		case 'd', 'i':
			if n, ok := AsInt(v); ok {
				fmt.Fprintf(&b, "%d", n)
			} else {
				b.WriteString(Format(v))
			}
		case 'f', 'g', 'e':
			if f, ok := AsFloat(v); ok {
				fmt.Fprintf(&b, "%"+string(spec), f)
			} else {
				b.WriteString(Format(v))
			}
		case 's':
			b.WriteString(Format(v))
		case 'r':
			b.WriteString(v.Repr())
		default:
			b.WriteByte('%')
			b.WriteByte(spec)
		}
	}
	return b.String()
}
