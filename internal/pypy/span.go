package pypy

// Statement source spans. Error reports locate a failing *line*, but a
// line may be the continuation of a multi-line call — deleting it alone
// leaves dangling syntax. StatementSpan maps a line back to the whole
// statement that contains it, so statement-aware repair can remove (or
// rewrite) complete statements.

// StatementSpan returns the [start, end] 1-based line range of the
// innermost statement containing the given line. ok is false when no
// statement covers the line (blank lines, comments, out of range).
func StatementSpan(mod *Module, line int) (start, end int, ok bool) {
	return spanIn(mod.Body, line)
}

func spanIn(body []Stmt, line int) (int, int, bool) {
	for _, st := range body {
		s, e := st.Line(), maxNodeLine(st)
		if line < s || line > e {
			continue
		}
		// Prefer a narrower nested statement when the hit is inside a
		// compound statement's body.
		switch t := st.(type) {
		case *If:
			if s2, e2, ok := spanIn(t.Body, line); ok {
				return s2, e2, true
			}
			if s2, e2, ok := spanIn(t.Else, line); ok {
				return s2, e2, true
			}
		case *For:
			if s2, e2, ok := spanIn(t.Body, line); ok {
				return s2, e2, true
			}
		case *While:
			if s2, e2, ok := spanIn(t.Body, line); ok {
				return s2, e2, true
			}
		case *FuncDef:
			if s2, e2, ok := spanIn(t.Body, line); ok {
				return s2, e2, true
			}
		}
		return s, e, true
	}
	return 0, 0, false
}

// maxNodeLine computes the largest source line spanned by a node,
// descending into every child expression — the statement's true end
// line even when calls wrap across lines.
func maxNodeLine(n Node) int {
	if n == nil {
		return 0
	}
	max := n.Line()
	bump := func(children ...Node) {
		for _, c := range children {
			if c == nil {
				continue
			}
			if l := maxNodeLine(c); l > max {
				max = l
			}
		}
	}
	bumpExprs := func(es []Expr) {
		for _, e := range es {
			bump(e)
		}
	}
	bumpStmts := func(ss []Stmt) {
		for _, s := range ss {
			bump(s)
		}
	}
	switch t := n.(type) {
	case *ExprStmt:
		bump(t.X)
	case *Assign:
		bumpExprs(t.Targets)
		bump(t.Value)
	case *AugAssign:
		bump(t.Target, t.Value)
	case *If:
		bump(t.Cond)
		bumpStmts(t.Body)
		bumpStmts(t.Else)
	case *For:
		bump(t.Target, t.Iter)
		bumpStmts(t.Body)
	case *While:
		bump(t.Cond)
		bumpStmts(t.Body)
	case *FuncDef:
		bumpExprs(t.Defaults)
		bumpStmts(t.Body)
	case *Return:
		bump(t.Value)
	case *ListLit:
		bumpExprs(t.Elts)
	case *TupleLit:
		bumpExprs(t.Elts)
	case *DictLit:
		bumpExprs(t.Keys)
		bumpExprs(t.Values)
	case *Attribute:
		bump(t.Value)
	case *Subscript:
		bump(t.Value, t.Index)
	case *Call:
		bump(t.Func)
		bumpExprs(t.Args)
		bumpExprs(t.KwValues)
	case *BinOp:
		bump(t.L, t.R)
	case *UnaryOp:
		bump(t.X)
	case *Compare:
		bump(t.First)
		bumpExprs(t.Rest)
	case *BoolOp:
		bumpExprs(t.Values)
	}
	return max
}
