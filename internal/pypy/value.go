package pypy

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Value is any Python runtime value.
type Value interface {
	// Type returns the Python type name used in error messages.
	Type() string
	// Repr returns the Python repr()-style rendering.
	Repr() string
}

// None is the singleton None value.
type NoneValue struct{}

// Type implements Value.
func (NoneValue) Type() string { return "NoneType" }

// Repr implements Value.
func (NoneValue) Repr() string { return "None" }

// None is the shared None instance.
var None = NoneValue{}

// Bool is a Python bool.
type Bool bool

// Type implements Value.
func (Bool) Type() string { return "bool" }

// Repr implements Value.
func (b Bool) Repr() string {
	if b {
		return "True"
	}
	return "False"
}

// Int is a Python int.
type Int int64

// Type implements Value.
func (Int) Type() string { return "int" }

// Repr implements Value.
func (i Int) Repr() string { return strconv.FormatInt(int64(i), 10) }

// Float is a Python float.
type Float float64

// Type implements Value.
func (Float) Type() string { return "float" }

// Repr implements Value.
func (f Float) Repr() string {
	v := float64(f)
	if v == math.Trunc(v) && math.Abs(v) < 1e16 && !math.IsInf(v, 0) {
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Str is a Python str.
type Str string

// Type implements Value.
func (Str) Type() string { return "str" }

// Repr implements Value.
func (s Str) Repr() string { return "'" + strings.ReplaceAll(string(s), "'", "\\'") + "'" }

// List is a Python list.
type List struct{ Items []Value }

// Type implements Value.
func (*List) Type() string { return "list" }

// Repr implements Value.
func (l *List) Repr() string {
	parts := make([]string, len(l.Items))
	for i, v := range l.Items {
		parts[i] = v.Repr()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Tuple is a Python tuple.
type Tuple struct{ Items []Value }

// Type implements Value.
func (*Tuple) Type() string { return "tuple" }

// Repr implements Value.
func (t *Tuple) Repr() string {
	parts := make([]string, len(t.Items))
	for i, v := range t.Items {
		parts[i] = v.Repr()
	}
	if len(parts) == 1 {
		return "(" + parts[0] + ",)"
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Dict is a Python dict with string-convertible keys.
type Dict struct {
	keys   []string
	values map[string]Value
}

// NewDict returns an empty dict.
func NewDict() *Dict { return &Dict{values: map[string]Value{}} }

// Type implements Value.
func (*Dict) Type() string { return "dict" }

// Repr implements Value.
func (d *Dict) Repr() string {
	parts := make([]string, 0, len(d.keys))
	for _, k := range d.keys {
		parts = append(parts, Str(k).Repr()+": "+d.values[k].Repr())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Set stores a key.
func (d *Dict) Set(key string, v Value) {
	if _, ok := d.values[key]; !ok {
		d.keys = append(d.keys, key)
	}
	d.values[key] = v
}

// Get retrieves a key.
func (d *Dict) Get(key string) (Value, bool) {
	v, ok := d.values[key]
	return v, ok
}

// Keys returns keys in insertion order.
func (d *Dict) Keys() []string { return d.keys }

// Func is a user-defined Python function.
type Func struct {
	Name     string
	Params   []string
	Defaults []Value
	Body     []Stmt
	Globals  *Env
}

// Type implements Value.
func (*Func) Type() string { return "function" }

// Repr implements Value.
func (f *Func) Repr() string { return "<function " + f.Name + ">" }

// NativeFunc is a Go-implemented callable exposed to scripts.
type NativeFunc struct {
	Name string
	Fn   func(in *Interp, args []Value, kwargs map[string]Value) (Value, error)
}

// Type implements Value.
func (*NativeFunc) Type() string { return "builtin_function_or_method" }

// Repr implements Value.
func (f *NativeFunc) Repr() string { return "<built-in function " + f.Name + ">" }

// Object is the host-object bridge: the ParaView proxy layer implements it
// so scripts can get/set proxy properties with Python attribute syntax.
type Object interface {
	Value
	// GetAttr fetches an attribute; return a *PyError with type
	// "AttributeError" for unknown names.
	GetAttr(name string) (Value, error)
	// SetAttr assigns an attribute.
	SetAttr(name string, v Value) error
}

// ModuleVal is an importable module namespace. (The name avoids clashing
// with the AST's Module node.)
type ModuleVal struct {
	Name  string
	Attrs map[string]Value
}

// Type implements Value.
func (*ModuleVal) Type() string { return "module" }

// Repr implements Value.
func (m *ModuleVal) Repr() string { return "<module '" + m.Name + "'>" }

// GetAttr implements attribute access on modules.
func (m *ModuleVal) GetAttr(name string) (Value, error) {
	if v, ok := m.Attrs[name]; ok {
		return v, nil
	}
	return nil, &PyError{
		Kind: "AttributeError",
		Msg:  fmt.Sprintf("module '%s' has no attribute '%s'", m.Name, name),
	}
}

// SetAttr implements attribute assignment on modules.
func (m *ModuleVal) SetAttr(name string, v Value) error {
	m.Attrs[name] = v
	return nil
}

// SortedAttrNames lists public attribute names, for `import *`.
func (m *ModuleVal) SortedAttrNames() []string {
	names := make([]string, 0, len(m.Attrs))
	for k := range m.Attrs {
		if !strings.HasPrefix(k, "_") {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

// Truthy implements Python truthiness.
func Truthy(v Value) bool {
	switch t := v.(type) {
	case NoneValue:
		return false
	case Bool:
		return bool(t)
	case Int:
		return t != 0
	case Float:
		return t != 0
	case Str:
		return t != ""
	case *List:
		return len(t.Items) > 0
	case *Tuple:
		return len(t.Items) > 0
	case *Dict:
		return len(t.keys) > 0
	}
	return true
}

// AsFloat converts numeric values to float64.
func AsFloat(v Value) (float64, bool) {
	switch t := v.(type) {
	case Int:
		return float64(t), true
	case Float:
		return float64(t), true
	case Bool:
		if t {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// AsInt converts integral values to int64.
func AsInt(v Value) (int64, bool) {
	switch t := v.(type) {
	case Int:
		return int64(t), true
	case Bool:
		if t {
			return 1, true
		}
		return 0, true
	case Float:
		if float64(t) == math.Trunc(float64(t)) {
			return int64(t), true
		}
	}
	return 0, false
}

// Format renders a value like Python's str(): strings are unquoted,
// everything else uses Repr.
func Format(v Value) string {
	if s, ok := v.(Str); ok {
		return string(s)
	}
	return v.Repr()
}
