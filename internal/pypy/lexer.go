// Package pypy implements a small tree-walking Python interpreter — the
// subset of the language that ParaView batch scripts use: imports,
// assignments (including attribute and subscript targets), calls with
// keyword arguments, lists/tuples/dicts, arithmetic/comparison/boolean
// expressions, and the if/for/while/def statement forms.
//
// It exists so the ChatVis loop can actually execute the Python text an
// LLM produces and observe genuine Python failure modes: SyntaxError at
// parse time; NameError, AttributeError and TypeError at run time — each
// formatted as a CPython-style traceback that the error-extraction tool
// parses, exactly as the paper's pipeline does with PvPython output.
package pypy

import (
	"fmt"
	"strings"
)

// tokKind enumerates token categories.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIndent
	tokDedent
	tokName
	tokKeyword
	tokNumber
	tokString
	tokOp
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "EOF"
	case tokNewline:
		return "NEWLINE"
	case tokIndent:
		return "INDENT"
	case tokDedent:
		return "DEDENT"
	case tokName:
		return "NAME"
	case tokKeyword:
		return "KEYWORD"
	case tokNumber:
		return "NUMBER"
	case tokString:
		return "STRING"
	case tokOp:
		return "OP"
	}
	return "?"
}

// token is one lexical token with its source line (1-based).
type token struct {
	kind tokKind
	text string
	line int
}

var pyKeywords = map[string]bool{
	"import": true, "from": true, "as": true, "def": true, "return": true,
	"if": true, "elif": true, "else": true, "for": true, "while": true,
	"in": true, "not": true, "and": true, "or": true, "pass": true,
	"break": true, "continue": true, "True": true, "False": true,
	"None": true, "del": true, "lambda": true, "class": true, "try": true,
	"except": true, "finally": true, "raise": true, "with": true,
	"global": true, "is": true,
}

// SyntaxError is reported when the script cannot be tokenized or parsed.
// It formats like CPython's parse-time error.
type SyntaxError struct {
	File    string
	Line    int
	SrcLine string
	Msg     string
}

// Error implements the error interface with CPython-style formatting.
func (e *SyntaxError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  File \"%s\", line %d\n", e.File, e.Line)
	src := strings.TrimRight(e.SrcLine, "\r\n")
	fmt.Fprintf(&b, "    %s\n", strings.TrimLeft(src, " \t"))
	b.WriteString("    ^\n")
	fmt.Fprintf(&b, "SyntaxError: %s", e.Msg)
	return b.String()
}

// lexer converts source text into a token stream with INDENT/DEDENT
// bookkeeping.
type lexer struct {
	file    string
	lines   []string
	src     string
	pos     int
	line    int
	col     int
	indents []int
	toks    []token
	parens  int // bracket nesting suppresses NEWLINE
}

func newLexer(file, src string) *lexer {
	return &lexer{
		file:    file,
		src:     src,
		lines:   strings.Split(src, "\n"),
		line:    1,
		indents: []int{0},
	}
}

func (lx *lexer) srcLine(n int) string {
	if n-1 >= 0 && n-1 < len(lx.lines) {
		return lx.lines[n-1]
	}
	return ""
}

func (lx *lexer) errf(line int, format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{
		File:    lx.file,
		Line:    line,
		SrcLine: lx.srcLine(line),
		Msg:     fmt.Sprintf(format, args...),
	}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) at(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 0
	} else {
		lx.col++
	}
	return c
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool { return isNameStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// tokenize runs the full lexer pass.
func (lx *lexer) tokenize() ([]token, error) {
	atLineStart := true
	for lx.pos < len(lx.src) {
		if atLineStart && lx.parens == 0 {
			if err := lx.handleIndent(); err != nil {
				return nil, err
			}
			atLineStart = false
			// handleIndent may have consumed a blank/comment line.
			if lx.pos >= len(lx.src) {
				break
			}
			if lx.peekByte() == '\n' {
				lx.advance()
				atLineStart = true
				continue
			}
		}
		c := lx.peekByte()
		switch {
		case c == '\n':
			lx.advance()
			if lx.parens == 0 {
				lx.emit(tokNewline, "\n", lx.line-1)
				atLineStart = true
			}
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance()
		case c == '#':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '\\' && lx.at(1) == '\n':
			lx.advance()
			lx.advance()
		case isNameStart(c):
			start := lx.pos
			for lx.pos < len(lx.src) && isNameChar(lx.peekByte()) {
				lx.advance()
			}
			word := lx.src[start:lx.pos]
			if pyKeywords[word] {
				lx.emit(tokKeyword, word, lx.line)
			} else {
				lx.emit(tokName, word, lx.line)
			}
		case isDigit(c) || (c == '.' && isDigit(lx.at(1))):
			if err := lx.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'' || c == '"':
			if err := lx.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := lx.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	// Final NEWLINE and outstanding DEDENTs.
	if n := len(lx.toks); n > 0 && lx.toks[n-1].kind != tokNewline {
		lx.emit(tokNewline, "\n", lx.line)
	}
	for len(lx.indents) > 1 {
		lx.indents = lx.indents[:len(lx.indents)-1]
		lx.emit(tokDedent, "", lx.line)
	}
	lx.emit(tokEOF, "", lx.line)
	return lx.toks, nil
}

func (lx *lexer) emit(kind tokKind, text string, line int) {
	lx.toks = append(lx.toks, token{kind: kind, text: text, line: line})
}

// handleIndent measures leading whitespace and emits INDENT/DEDENT tokens.
// Blank lines and comment-only lines produce nothing.
func (lx *lexer) handleIndent() error {
	width := 0
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		if c == ' ' {
			width++
			lx.advance()
		} else if c == '\t' {
			width += 8 - width%8
			lx.advance()
		} else {
			break
		}
	}
	if lx.pos >= len(lx.src) {
		return nil
	}
	c := lx.peekByte()
	if c == '\n' || c == '#' || c == '\r' {
		// Blank or comment line: no indent bookkeeping. Consume comment.
		if c == '#' {
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		}
		return nil
	}
	cur := lx.indents[len(lx.indents)-1]
	switch {
	case width > cur:
		lx.indents = append(lx.indents, width)
		lx.emit(tokIndent, "", lx.line)
	case width < cur:
		for len(lx.indents) > 1 && lx.indents[len(lx.indents)-1] > width {
			lx.indents = lx.indents[:len(lx.indents)-1]
			lx.emit(tokDedent, "", lx.line)
		}
		if lx.indents[len(lx.indents)-1] != width {
			return lx.errf(lx.line, "unindent does not match any outer indentation level")
		}
	}
	return nil
}

func (lx *lexer) lexNumber() error {
	start := lx.pos
	line := lx.line
	seenDot, seenExp := false, false
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		if isDigit(c) {
			lx.advance()
		} else if c == '.' && !seenDot && !seenExp {
			seenDot = true
			lx.advance()
		} else if (c == 'e' || c == 'E') && !seenExp && lx.pos > start {
			next := lx.at(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(lx.at(2))) {
				seenExp = true
				lx.advance()
				lx.advance()
			} else {
				break
			}
		} else {
			break
		}
	}
	lx.emit(tokNumber, lx.src[start:lx.pos], line)
	return nil
}

func (lx *lexer) lexString() error {
	quote := lx.advance()
	line := lx.line
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return lx.errf(line, "unterminated string literal (detected at line %d)", lx.line)
		}
		c := lx.advance()
		if c == quote {
			break
		}
		if c == '\n' {
			return lx.errf(line, "unterminated string literal (detected at line %d)", line)
		}
		if c == '\\' {
			if lx.pos >= len(lx.src) {
				return lx.errf(line, "unterminated string literal (detected at line %d)", lx.line)
			}
			e := lx.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			case '\n':
				// line continuation inside string
			default:
				b.WriteByte('\\')
				b.WriteByte(e)
			}
			continue
		}
		b.WriteByte(c)
	}
	lx.emit(tokString, b.String(), line)
	return nil
}

var twoCharOps = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "//": true, "**": true,
	"+=": true, "-=": true, "*=": true, "/=": true, "->": true,
}

func (lx *lexer) lexOp() error {
	line := lx.line
	c := lx.peekByte()
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	if twoCharOps[two] {
		lx.advance()
		lx.advance()
		lx.emit(tokOp, two, line)
		return nil
	}
	switch c {
	case '(', '[', '{':
		lx.parens++
		lx.advance()
		lx.emit(tokOp, string(c), line)
	case ')', ']', '}':
		if lx.parens > 0 {
			lx.parens--
		}
		lx.advance()
		lx.emit(tokOp, string(c), line)
	case '+', '-', '*', '/', '%', '<', '>', '=', ',', ':', '.', ';', '@', '&', '|', '^', '~':
		lx.advance()
		lx.emit(tokOp, string(c), line)
	default:
		return lx.errf(line, "invalid syntax")
	}
	return nil
}
