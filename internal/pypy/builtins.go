package pypy

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// registerBuiltins installs the Python builtins the generated scripts use.
func registerBuiltins(env *Env) {
	nf := func(name string, fn func(in *Interp, args []Value, kwargs map[string]Value) (Value, error)) {
		env.Set(name, &NativeFunc{Name: name, Fn: fn})
	}
	nf("print", func(in *Interp, args []Value, _ map[string]Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = Format(a)
		}
		fmt.Fprintln(in.Stdout, strings.Join(parts, " "))
		return None, nil
	})
	nf("len", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, &PyError{Kind: "TypeError", Msg: fmt.Sprintf("len() takes exactly one argument (%d given)", len(args))}
		}
		switch t := args[0].(type) {
		case Str:
			return Int(len(t)), nil
		case *List:
			return Int(len(t.Items)), nil
		case *Tuple:
			return Int(len(t.Items)), nil
		case *Dict:
			return Int(len(t.Keys())), nil
		}
		return nil, &PyError{Kind: "TypeError", Msg: fmt.Sprintf("object of type '%s' has no len()", args[0].Type())}
	})
	nf("range", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		var start, stop, step int64 = 0, 0, 1
		get := func(v Value) (int64, error) {
			n, ok := AsInt(v)
			if !ok {
				return 0, &PyError{Kind: "TypeError", Msg: fmt.Sprintf("'%s' object cannot be interpreted as an integer", v.Type())}
			}
			return n, nil
		}
		var err error
		switch len(args) {
		case 1:
			stop, err = get(args[0])
		case 2:
			if start, err = get(args[0]); err == nil {
				stop, err = get(args[1])
			}
		case 3:
			if start, err = get(args[0]); err == nil {
				if stop, err = get(args[1]); err == nil {
					step, err = get(args[2])
				}
			}
		default:
			return nil, &PyError{Kind: "TypeError", Msg: "range expected 1 to 3 arguments"}
		}
		if err != nil {
			return nil, err
		}
		if step == 0 {
			return nil, &PyError{Kind: "ValueError", Msg: "range() arg 3 must not be zero"}
		}
		var items []Value
		if step > 0 {
			for i := start; i < stop; i += step {
				items = append(items, Int(i))
			}
		} else {
			for i := start; i > stop; i += step {
				items = append(items, Int(i))
			}
		}
		return &List{Items: items}, nil
	})
	nf("str", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) == 0 {
			return Str(""), nil
		}
		return Str(Format(args[0])), nil
	})
	nf("int", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) == 0 {
			return Int(0), nil
		}
		if s, ok := args[0].(Str); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(string(s)), 10, 64)
			if err != nil {
				return nil, &PyError{Kind: "ValueError", Msg: fmt.Sprintf("invalid literal for int() with base 10: %s", s.Repr())}
			}
			return Int(n), nil
		}
		if f, ok := AsFloat(args[0]); ok {
			return Int(int64(math.Trunc(f))), nil
		}
		return nil, &PyError{Kind: "TypeError", Msg: fmt.Sprintf("int() argument must be a string or a number, not '%s'", args[0].Type())}
	})
	nf("float", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) == 0 {
			return Float(0), nil
		}
		if s, ok := args[0].(Str); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(string(s)), 64)
			if err != nil {
				return nil, &PyError{Kind: "ValueError", Msg: fmt.Sprintf("could not convert string to float: %s", s.Repr())}
			}
			return Float(f), nil
		}
		if f, ok := AsFloat(args[0]); ok {
			return Float(f), nil
		}
		return nil, &PyError{Kind: "TypeError", Msg: fmt.Sprintf("float() argument must be a string or a number, not '%s'", args[0].Type())}
	})
	nf("abs", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) != 1 {
			return nil, &PyError{Kind: "TypeError", Msg: "abs() takes exactly one argument"}
		}
		switch t := args[0].(type) {
		case Int:
			if t < 0 {
				return -t, nil
			}
			return t, nil
		case Float:
			return Float(math.Abs(float64(t))), nil
		}
		return nil, &PyError{Kind: "TypeError", Msg: fmt.Sprintf("bad operand type for abs(): '%s'", args[0].Type())}
	})
	minmax := func(name string, better func(a, b float64) bool) func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		return func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
			var items []Value
			if len(args) == 1 {
				var err error
				items, err = iterate(args[0])
				if err != nil {
					return nil, &PyError{Kind: "TypeError", Msg: err.Error()}
				}
			} else {
				items = args
			}
			if len(items) == 0 {
				return nil, &PyError{Kind: "ValueError", Msg: name + "() arg is an empty sequence"}
			}
			best := items[0]
			bestF, ok := AsFloat(best)
			if !ok {
				return nil, &PyError{Kind: "TypeError", Msg: "unorderable types"}
			}
			for _, it := range items[1:] {
				f, ok := AsFloat(it)
				if !ok {
					return nil, &PyError{Kind: "TypeError", Msg: "unorderable types"}
				}
				if better(f, bestF) {
					best, bestF = it, f
				}
			}
			return best, nil
		}
	}
	nf("min", minmax("min", func(a, b float64) bool { return a < b }))
	nf("max", minmax("max", func(a, b float64) bool { return a > b }))
	nf("list", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) == 0 {
			return &List{}, nil
		}
		items, err := iterate(args[0])
		if err != nil {
			return nil, &PyError{Kind: "TypeError", Msg: err.Error()}
		}
		return &List{Items: append([]Value{}, items...)}, nil
	})
	nf("tuple", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) == 0 {
			return &Tuple{}, nil
		}
		items, err := iterate(args[0])
		if err != nil {
			return nil, &PyError{Kind: "TypeError", Msg: err.Error()}
		}
		return &Tuple{Items: append([]Value{}, items...)}, nil
	})
	nf("round", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) == 0 {
			return nil, &PyError{Kind: "TypeError", Msg: "round() missing required argument"}
		}
		f, ok := AsFloat(args[0])
		if !ok {
			return nil, &PyError{Kind: "TypeError", Msg: "round() argument must be a number"}
		}
		digits := int64(0)
		if len(args) > 1 {
			digits, _ = AsInt(args[1])
		}
		scale := math.Pow(10, float64(digits))
		r := math.Round(f*scale) / scale
		if digits == 0 {
			return Int(int64(r)), nil
		}
		return Float(r), nil
	})
	nf("enumerate", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) == 0 {
			return nil, &PyError{Kind: "TypeError", Msg: "enumerate() missing required argument"}
		}
		items, err := iterate(args[0])
		if err != nil {
			return nil, &PyError{Kind: "TypeError", Msg: err.Error()}
		}
		out := make([]Value, len(items))
		for i, it := range items {
			out[i] = &Tuple{Items: []Value{Int(i), it}}
		}
		return &List{Items: out}, nil
	})
	nf("isinstance", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		// Scripts occasionally guard with isinstance; we approximate by
		// returning True (the proxies are duck-typed anyway).
		return Bool(true), nil
	})
	nf("type", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) == 0 {
			return nil, &PyError{Kind: "TypeError", Msg: "type() takes 1 argument"}
		}
		return Str("<class '" + args[0].Type() + "'>"), nil
	})
	nf("sorted", func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
		if len(args) == 0 {
			return nil, &PyError{Kind: "TypeError", Msg: "sorted expected 1 argument, got 0"}
		}
		items, err := iterate(args[0])
		if err != nil {
			return nil, &PyError{Kind: "TypeError", Msg: err.Error()}
		}
		cp := append([]Value{}, items...)
		// Numeric-or-string insertion sort (small inputs only).
		for i := 1; i < len(cp); i++ {
			for j := i; j > 0; j-- {
				less := false
				if a, ok := AsFloat(cp[j]); ok {
					if b, ok := AsFloat(cp[j-1]); ok {
						less = a < b
					}
				} else if a, ok := cp[j].(Str); ok {
					if b, ok := cp[j-1].(Str); ok {
						less = a < b
					}
				}
				if !less {
					break
				}
				cp[j], cp[j-1] = cp[j-1], cp[j]
			}
		}
		return &List{Items: cp}, nil
	})
}
