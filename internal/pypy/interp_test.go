package pypy

import (
	"bytes"
	"strings"
	"testing"
)

// run executes src and returns stdout plus any error.
func run(t *testing.T, src string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	in := NewInterp(&out)
	err := in.Run(src)
	return out.String(), err
}

// mustRun executes src and fails the test on error.
func mustRun(t *testing.T, src string) string {
	t.Helper()
	out, err := run(t, src)
	if err != nil {
		t.Fatalf("script failed: %v", err)
	}
	return out
}

func TestArithmeticAndPrint(t *testing.T) {
	out := mustRun(t, `
x = 2 + 3 * 4
y = (2 + 3) * 4
print(x, y)
print(7 / 2, 7 // 2, 7 % 3, 2 ** 10)
print(-x + 1)
`)
	want := "14 20\n3.5 3 1 1024\n-13\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestStringsAndFormatting(t *testing.T) {
	out := mustRun(t, `
name = 'world'
print('hello ' + name)
print("a" 'b' "c")
print('x=%d y=%.1f s=%s' % (3, 2.5, 'hi'))
print('tab\tnewline\nquote\'')
print('repeat' * 2)
`)
	if !strings.Contains(out, "hello world") ||
		!strings.Contains(out, "abc") ||
		!strings.Contains(out, "x=3") ||
		!strings.Contains(out, "repeatrepeat") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "tab\tnewline\nquote'") {
		t.Errorf("escapes wrong: %q", out)
	}
}

func TestListsTuplesDicts(t *testing.T) {
	out := mustRun(t, `
l = [1, 2, 3]
l.append(4)
l[0] = 10
t = ('POINTS', 'V')
d = {'a': 1, 'b': 2}
d['c'] = 3
print(l[0], l[-1], len(l))
print(t[0], t[1])
print(d['c'], d.get('zzz', 99))
print(len(d))
`)
	want := "10 4 4\nPOINTS V\n3 99\n3\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestControlFlow(t *testing.T) {
	out := mustRun(t, `
total = 0
for i in range(10):
    if i % 2 == 0:
        continue
    if i > 7:
        break
    total += i
while total < 20:
    total = total + 1
if total == 20:
    print('twenty')
elif total > 20:
    print('big')
else:
    print('small')
`)
	if out != "twenty\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFunctions(t *testing.T) {
	out := mustRun(t, `
def add(a, b=10):
    return a + b

def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 1)

print(add(1), add(1, 2), add(a=5, b=6))
print(fact(5))
`)
	if out != "11 3 11\n120\n" {
		t.Errorf("output = %q", out)
	}
}

func TestTupleUnpacking(t *testing.T) {
	out := mustRun(t, `
a, b = 1, 2
a, b = b, a
for i, v in enumerate(['x', 'y']):
    print(i, v)
print(a, b)
`)
	if out != "0 x\n1 y\n2 1\n" {
		t.Errorf("output = %q", out)
	}
}

func TestBooleansAndComparisons(t *testing.T) {
	out := mustRun(t, `
print(1 < 2 < 3, 1 < 2 > 5)
print(True and False, True or False, not True)
print('a' in 'abc', 'z' in 'abc', 2 in [1, 2], 5 not in [1, 2])
print(None is None, None is not None)
print('b' in {'a': 1, 'b': 2})
`)
	want := "True False\nFalse True False\nTrue False True True\nTrue False\nTrue\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestBuiltins(t *testing.T) {
	out := mustRun(t, `
print(abs(-3), abs(2.5))
print(min(3, 1, 2), max([4, 9, 2]))
print(int('42'), float('2.5'), str(17))
print(round(2.7), round(3.14159, 2))
print(sorted([3, 1, 2]))
print(len('hello'))
`)
	want := "3 2.5\n1 9\n42 2.5 17\n3 3.14\n[1, 2, 3]\n5\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestNameErrorTraceback(t *testing.T) {
	_, err := run(t, "x = 1\ny = undefined_thing\n")
	pe, ok := err.(*PyError)
	if !ok {
		t.Fatalf("error = %v (%T)", err, err)
	}
	if pe.Kind != "NameError" || pe.Line != 2 {
		t.Errorf("error = %+v", pe)
	}
	tb := pe.Traceback("script.py", "y = undefined_thing")
	if !strings.Contains(tb, "Traceback (most recent call last):") ||
		!strings.Contains(tb, `File "script.py", line 2, in <module>`) ||
		!strings.Contains(tb, "NameError: name 'undefined_thing' is not defined") {
		t.Errorf("traceback = %q", tb)
	}
}

func TestAttributeErrorOnPlainValue(t *testing.T) {
	_, err := run(t, "x = 5\nx.foo = 3\n")
	pe, ok := err.(*PyError)
	if !ok || pe.Kind != "AttributeError" {
		t.Fatalf("error = %v", err)
	}
	_, err = run(t, "y = [1].bogus\n")
	pe, ok = err.(*PyError)
	if !ok || pe.Kind != "AttributeError" {
		t.Fatalf("error = %v", err)
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []string{
		"x = 'a' + 1\n",
		"x = 5\nx()\n",
		"x = None\nfor i in x:\n    pass\n",
		"x = 1 < 'a'\n",
	}
	for _, src := range cases {
		_, err := run(t, src)
		pe, ok := err.(*PyError)
		if !ok || pe.Kind != "TypeError" {
			t.Errorf("script %q: error = %v, want TypeError", src, err)
		}
	}
}

func TestZeroDivision(t *testing.T) {
	_, err := run(t, "x = 1 / 0\n")
	pe, ok := err.(*PyError)
	if !ok || pe.Kind != "ZeroDivisionError" {
		t.Fatalf("error = %v", err)
	}
}

func TestIndexAndKeyErrors(t *testing.T) {
	_, err := run(t, "x = [1, 2][5]\n")
	if pe, ok := err.(*PyError); !ok || pe.Kind != "IndexError" {
		t.Errorf("error = %v, want IndexError", err)
	}
	_, err = run(t, "x = {'a': 1}['b']\n")
	if pe, ok := err.(*PyError); !ok || pe.Kind != "KeyError" {
		t.Errorf("error = %v, want KeyError", err)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"x = (1 + 2\n",
		"def f(:\n    pass\n",
		"x = 'unterminated\n",
		"for in range(3):\n    pass\n",
		"x = $bad\n",
		"if True:\nprint(1)\n",
		"import\n",
	}
	for _, src := range cases {
		_, err := run(t, src)
		if err == nil {
			t.Errorf("script %q should fail to parse", src)
			continue
		}
		if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("script %q: error type %T, want *SyntaxError (%v)", src, err, err)
		}
	}
}

func TestSyntaxErrorFormat(t *testing.T) {
	_, err := run(t, "x = 1\ny = (3 +\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error = %v (%T)", err, err)
	}
	msg := se.Error()
	if !strings.Contains(msg, `File "script.py", line`) ||
		!strings.Contains(msg, "SyntaxError:") {
		t.Errorf("format = %q", msg)
	}
}

func TestModuleImport(t *testing.T) {
	var out bytes.Buffer
	in := NewInterp(&out)
	mod := &ModuleVal{Name: "paraview.simple", Attrs: map[string]Value{
		"Magic": Int(42),
		"Hello": &NativeFunc{Name: "Hello", Fn: func(_ *Interp, args []Value, _ map[string]Value) (Value, error) {
			return Str("hi"), nil
		}},
		"_private": Int(0),
	}}
	in.RegisterModule(mod)

	if err := in.Run("from paraview.simple import *\nprint(Magic, Hello())\n"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "42 hi\n" {
		t.Errorf("output = %q", out.String())
	}
	// Star import must skip private names.
	if err := in.Run("print(_private)\n"); err == nil {
		t.Error("_private should not be star-imported")
	}

	out.Reset()
	if err := in.Run("import paraview.simple\nprint(paraview.simple.Magic)\n"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "42\n" {
		t.Errorf("output = %q", out.String())
	}

	out.Reset()
	if err := in.Run("from paraview.simple import Hello as H\nprint(H())\n"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "hi\n" {
		t.Errorf("output = %q", out.String())
	}

	if err := in.Run("import numpy\n"); err == nil {
		t.Error("unknown module should raise")
	} else if pe, ok := err.(*PyError); !ok || pe.Kind != "ModuleNotFoundError" {
		t.Errorf("error = %v", err)
	}
	if err := in.Run("from paraview.simple import NotThere\n"); err == nil {
		t.Error("missing name should raise ImportError")
	}
}

// fakeObject exercises the host-object bridge.
type fakeObject struct {
	attrs map[string]Value
}

func (f *fakeObject) Type() string { return "FakeProxy" }
func (f *fakeObject) Repr() string { return "<FakeProxy>" }
func (f *fakeObject) GetAttr(name string) (Value, error) {
	if v, ok := f.attrs[name]; ok {
		return v, nil
	}
	return nil, &PyError{Kind: "AttributeError", Msg: "'FakeProxy' object has no attribute '" + name + "'"}
}
func (f *fakeObject) SetAttr(name string, v Value) error {
	if name == "Locked" {
		return &PyError{Kind: "AttributeError", Msg: "attribute 'Locked' is read-only"}
	}
	f.attrs[name] = v
	return nil
}

func TestHostObjectBridge(t *testing.T) {
	var out bytes.Buffer
	in := NewInterp(&out)
	obj := &fakeObject{attrs: map[string]Value{"Radius": Float(1.5)}}
	in.Globals.Set("proxy", obj)

	if err := in.Run("proxy.Radius = proxy.Radius * 2\nprint(proxy.Radius)\n"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "3.0\n" {
		t.Errorf("output = %q", out.String())
	}
	// Unknown attribute read raises AttributeError with the host message
	// and the script line attached.
	err := in.Run("x = proxy.Bogus\n")
	pe, ok := err.(*PyError)
	if !ok || pe.Kind != "AttributeError" || pe.Line != 1 {
		t.Fatalf("error = %v", err)
	}
	if !strings.Contains(pe.Msg, "no attribute 'Bogus'") {
		t.Errorf("msg = %q", pe.Msg)
	}
	// Host SetAttr errors propagate too.
	err = in.Run("proxy.Locked = 1\n")
	if pe, ok := err.(*PyError); !ok || pe.Kind != "AttributeError" {
		t.Fatalf("error = %v", err)
	}
}

func TestRunawayLoopStops(t *testing.T) {
	var out bytes.Buffer
	in := NewInterp(&out)
	in.MaxSteps = 10000
	err := in.Run("while True:\n    pass\n")
	pe, ok := err.(*PyError)
	if !ok || pe.Kind != "RuntimeError" {
		t.Fatalf("error = %v", err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	out := mustRun(t, `
# leading comment
x = 1  # trailing comment


# indented comment does not break blocks
if x == 1:
    # comment in block
    print('ok')
`)
	if out != "ok\n" {
		t.Errorf("output = %q", out)
	}
}

func TestMultilineCallsAndLists(t *testing.T) {
	out := mustRun(t, `
def f(a, b, c):
    return a + b + c
x = f(1,
      2,
      3)
l = [
    1,
    2,
]
print(x, len(l))
`)
	if out != "6 2\n" {
		t.Errorf("output = %q", out)
	}
}

func TestChainedAssignment(t *testing.T) {
	out := mustRun(t, "a = b = 5\nprint(a, b)\n")
	if out != "5 5\n" {
		t.Errorf("output = %q", out)
	}
}

func TestStringMethods(t *testing.T) {
	out := mustRun(t, `
s = ' Hello World '
print(s.strip())
print(s.upper().strip())
print('a,b,c'.split(','))
`)
	if !strings.Contains(out, "Hello World\n") ||
		!strings.Contains(out, "HELLO WORLD") ||
		!strings.Contains(out, "['a', 'b', 'c']") {
		t.Errorf("output = %q", out)
	}
}

func TestReprFormats(t *testing.T) {
	out := mustRun(t, `
print([1, 2.5, 'x', True, None])
print((1,))
print({'k': [1, 2]})
`)
	want := "[1, 2.5, 'x', True, None]\n(1,)\n{'k': [1, 2]}\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestFloatIntSemantics(t *testing.T) {
	out := mustRun(t, `
print(1 + 2)
print(1.0 + 2)
print(10 / 4)
print(10 // 4)
print(10.0 // 4)
print(-7 % 3)
`)
	want := "3\n3.0\n2.5\n2\n2.0\n2\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}
