// Package datagen synthesizes the three datasets used in the paper's
// experiments:
//
//   - ml-100.vtk: the Marschner–Lobb volume-rendering benchmark (analytic,
//     so ours is the same dataset as the paper's by construction),
//   - can_points.ex2: a point cloud standing in for the point set the
//     authors extracted from ParaView's "can" sample data,
//   - disk.ex2: an annular flow volume standing in for ParaView's
//     disk_out_ref sample (velocity V, temperature Temp, pressure Pres).
//
// See DESIGN.md for the substitution rationale.
package datagen

import (
	"math"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

// MarschnerLobbValue evaluates the Marschner–Lobb test signal at (x,y,z) in
// [-1,1]^3, using the canonical parameters fM=6, alpha=0.25 from the 1994
// paper. The result lies in [0,1].
func MarschnerLobbValue(x, y, z float64) float64 {
	const (
		fM    = 6.0
		alpha = 0.25
	)
	r := math.Sqrt(x*x + y*y)
	rhoR := math.Cos(2 * math.Pi * fM * math.Cos(math.Pi*r/2))
	return (1 - math.Sin(math.Pi*z/2) + alpha*(1+rhoR)) / (2 * (1 + alpha))
}

// MarschnerLobb samples the benchmark on an n^3 grid over [-1,1]^3 and
// stores the scalar as point data named "var0" (the array name the paper's
// prompts reference).
func MarschnerLobb(n int) *data.ImageData {
	if n < 2 {
		n = 2
	}
	spacing := 2.0 / float64(n-1)
	im := data.NewImageData(n, n, n, vmath.V(-1, -1, -1), vmath.V(spacing, spacing, spacing))
	f := data.NewField("var0", 1, im.NumPoints())
	idx := 0
	for k := 0; k < n; k++ {
		z := -1 + float64(k)*spacing
		for j := 0; j < n; j++ {
			y := -1 + float64(j)*spacing
			for i := 0; i < n; i++ {
				x := -1 + float64(i)*spacing
				f.SetScalar(idx, MarschnerLobbValue(x, y, z))
				idx++
			}
		}
	}
	im.Points.Add(f)
	return im
}

// SparseBlob builds an n³ volume whose "var0" field is a single compact
// Gaussian blob tucked into the (+,+,+) corner: isosurface crossings at
// mid-range levels are confined to the tail of the k-major point order,
// so roughly 90% of the cell sweep is empty while the last stretch does
// all the marching work. It is the adversarial load-balance case for
// fixed-granularity chunking (the last chunk owns everything) and the
// scheduler A/B kernel in benchkernels.
func SparseBlob(n int) *data.ImageData {
	if n < 2 {
		n = 2
	}
	spacing := 2.0 / float64(n-1)
	im := data.NewImageData(n, n, n, vmath.V(-1, -1, -1), vmath.V(spacing, spacing, spacing))
	f := data.NewField("var0", 1, im.NumPoints())
	const sigma = 0.18
	idx := 0
	for k := 0; k < n; k++ {
		z := -1 + float64(k)*spacing
		for j := 0; j < n; j++ {
			y := -1 + float64(j)*spacing
			for i := 0; i < n; i++ {
				x := -1 + float64(i)*spacing
				dx, dy, dz := x-0.7, y-0.7, z-0.7
				r2 := dx*dx + dy*dy + dz*dz
				f.SetScalar(idx, math.Exp(-r2/(2*sigma*sigma)))
				idx++
			}
		}
	}
	im.Points.Add(f)
	return im
}

// CanPoints builds a "crushed can" point cloud: points sampled on a
// cylindrical shell with sinusoidal crush dents, a rim, and a lid, plus a
// nodal displacement magnitude field "DISPL". Cells are vertex cells so the
// dataset reads back as a point cloud, which is what Delaunay3D consumes.
//
// nTheta and nZ control the sampling density of the shell; the total point
// count is approximately nTheta*nZ plus the lid points.
func CanPoints(nTheta, nZ int) *data.UnstructuredGrid {
	if nTheta < 8 {
		nTheta = 8
	}
	if nZ < 4 {
		nZ = 4
	}
	const (
		radius = 1.0
		height = 2.5
	)
	ug := data.NewUnstructuredGrid()
	displ := data.NewField("DISPL", 1, 0)

	addPoint := func(p vmath.Vec3, d float64) {
		id := ug.AddPoint(p)
		displ.Append(d)
		ug.AddCell(data.CellVertex, id)
	}

	// Crushed shell: radius modulated by dents that deepen toward the top,
	// deterministic (no RNG) so files are bit-stable.
	for iz := 0; iz < nZ; iz++ {
		z := height * float64(iz) / float64(nZ-1)
		crush := 0.35 * (z / height) * (z / height)
		for it := 0; it < nTheta; it++ {
			theta := 2 * math.Pi * float64(it) / float64(nTheta)
			dent := crush * (0.5 + 0.5*math.Sin(3*theta+4*z))
			r := radius * (1 - dent)
			p := vmath.V(r*math.Cos(theta), r*math.Sin(theta), z)
			addPoint(p, dent*radius)
		}
	}
	// Lid: concentric rings at the top.
	rings := nTheta / 6
	if rings < 3 {
		rings = 3
	}
	for ir := 0; ir < rings; ir++ {
		r := radius * float64(ir) / float64(rings)
		count := 1 + int(float64(nTheta)*float64(ir)/float64(rings))
		for it := 0; it < count; it++ {
			theta := 2 * math.Pi * float64(it) / float64(count)
			p := vmath.V(r*math.Cos(theta), r*math.Sin(theta), height)
			addPoint(p, 0)
		}
	}
	ug.Points.Add(displ)
	return ug
}

// DiskFlowField evaluates the analytic disk flow at a point: a swirling
// annular flow (azimuthal swirl decaying with radius, parabolic axial jet)
// used for the streamline experiment. Returns velocity, temperature and
// pressure.
func DiskFlowField(p vmath.Vec3) (vel vmath.Vec3, temp, pres float64) {
	const (
		rInner = 0.5
		rOuter = 2.0
		height = 2.0
	)
	r := math.Hypot(p.X, p.Y)
	if r < 1e-9 {
		r = 1e-9
	}
	// Unit azimuthal direction.
	tHat := vmath.V(-p.Y/r, p.X/r, 0)
	// Swirl: solid-body near the hub transitioning to free vortex.
	swirl := 1.6 * r / (1 + r*r)
	// Axial: parabolic in radius, max at mid annulus.
	mid := (rInner + rOuter) / 2
	halfW := (rOuter - rInner) / 2
	axial := 0.9 * (1 - ((r-mid)/halfW)*((r-mid)/halfW))
	if axial < 0.05 {
		axial = 0.05
	}
	// Gentle radial outflow increasing with height.
	radial := 0.12 * (p.Z / height)
	rHat := vmath.V(p.X/r, p.Y/r, 0)
	vel = tHat.Mul(swirl).Add(vmath.V(0, 0, axial)).Add(rHat.Mul(radial))
	// Hot at the hub, cooling outward and upward.
	temp = 300 + 600*math.Exp(-2*(r-rInner)/(rOuter-rInner)) - 40*p.Z/height
	pres = 101 + 15*(1-r/rOuter) - 5*p.Z/height
	return vel, temp, pres
}

// DiskFlow builds the annular hex mesh with nodal fields V (velocity, 3
// components), Temp and Pres, standing in for ParaView's disk_out_ref. The
// mesh has nr radial, nTheta azimuthal (wrapping) and nz axial samples.
func DiskFlow(nr, nTheta, nz int) *data.UnstructuredGrid {
	if nr < 2 {
		nr = 2
	}
	if nTheta < 3 {
		nTheta = 3
	}
	if nz < 2 {
		nz = 2
	}
	const (
		rInner = 0.5
		rOuter = 2.0
		height = 2.0
	)
	ug := data.NewUnstructuredGrid()
	n := nr * nTheta * nz
	vel := data.NewField("V", 3, n)
	temp := data.NewField("Temp", 1, n)
	pres := data.NewField("Pres", 1, n)

	// Node index (ir, it, iz), theta wraps (no duplicated seam nodes).
	nodeID := func(ir, it, iz int) int {
		it = (it + nTheta) % nTheta
		return ir + nr*(it+nTheta*iz)
	}
	for iz := 0; iz < nz; iz++ {
		z := height * float64(iz) / float64(nz-1)
		for it := 0; it < nTheta; it++ {
			theta := 2 * math.Pi * float64(it) / float64(nTheta)
			for ir := 0; ir < nr; ir++ {
				r := rInner + (rOuter-rInner)*float64(ir)/float64(nr-1)
				p := vmath.V(r*math.Cos(theta), r*math.Sin(theta), z)
				id := ug.AddPoint(p)
				if id != nodeID(ir, it, iz) {
					panic("datagen: node ordering broken")
				}
				v, tK, pK := DiskFlowField(p)
				vel.SetVec3(id, v)
				temp.SetScalar(id, tK)
				pres.SetScalar(id, pK)
			}
		}
	}
	// Hexahedral cells; VTK hexahedron ordering: bottom quad (counter-
	// clockwise), then top quad.
	for iz := 0; iz < nz-1; iz++ {
		for it := 0; it < nTheta; it++ {
			for ir := 0; ir < nr-1; ir++ {
				ug.AddCell(data.CellHexahedron,
					nodeID(ir, it, iz), nodeID(ir+1, it, iz),
					nodeID(ir+1, it+1, iz), nodeID(ir, it+1, iz),
					nodeID(ir, it, iz+1), nodeID(ir+1, it, iz+1),
					nodeID(ir+1, it+1, iz+1), nodeID(ir, it+1, iz+1))
			}
		}
	}
	ug.Points.Add(vel)
	ug.Points.Add(temp)
	ug.Points.Add(pres)
	return ug
}

// DiskBounds reports the analytic extent of the disk flow dataset, used by
// seeding logic and tests.
func DiskBounds() vmath.AABB {
	return vmath.AABB{Min: vmath.V(-2, -2, 0), Max: vmath.V(2, 2, 2)}
}
