package datagen

import (
	"math"
	"testing"
	"testing/quick"

	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

func TestMarschnerLobbValueRange(t *testing.T) {
	f := func(x, y, z float64) bool {
		// Map arbitrary floats into the domain.
		wrap := func(v float64) float64 { return math.Mod(math.Abs(v), 2) - 1 }
		v := MarschnerLobbValue(wrap(x), wrap(y), wrap(z))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarschnerLobbSymmetry(t *testing.T) {
	// The signal is rotationally symmetric about the z axis: value depends
	// only on radius and z.
	v1 := MarschnerLobbValue(0.5, 0, 0.2)
	v2 := MarschnerLobbValue(0, 0.5, 0.2)
	v3 := MarschnerLobbValue(0.5/math.Sqrt2, 0.5/math.Sqrt2, 0.2)
	if math.Abs(v1-v2) > 1e-12 || math.Abs(v1-v3) > 1e-12 {
		t.Errorf("rotational symmetry broken: %v %v %v", v1, v2, v3)
	}
}

func TestMarschnerLobbGrid(t *testing.T) {
	im := MarschnerLobb(21)
	if im.Dims != [3]int{21, 21, 21} {
		t.Fatalf("dims = %v", im.Dims)
	}
	b := im.Bounds()
	if !b.Min.NearEq(vmath.V(-1, -1, -1), 1e-12) || !b.Max.NearEq(vmath.V(1, 1, 1), 1e-12) {
		t.Errorf("bounds = %v..%v", b.Min, b.Max)
	}
	f := im.Points.Get("var0")
	if f == nil {
		t.Fatal("var0 missing")
	}
	if f.NumTuples() != im.NumPoints() {
		t.Fatalf("tuples = %d", f.NumTuples())
	}
	lo, hi := f.Range()
	if lo < 0 || hi > 1 || hi <= lo {
		t.Errorf("range = %v..%v", lo, hi)
	}
	// The isovalue 0.5 used in the paper must actually be crossed.
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("0.5 not inside range %v..%v", lo, hi)
	}
	// Spot-check one sample against the analytic function.
	idx := im.Index(10, 10, 10)
	if got, want := f.Scalar(idx), MarschnerLobbValue(0, 0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("center sample = %v, want %v", got, want)
	}
}

func TestMarschnerLobbMinSize(t *testing.T) {
	im := MarschnerLobb(0)
	if im.Dims[0] < 2 {
		t.Error("degenerate grid")
	}
}

func TestCanPoints(t *testing.T) {
	ug := CanPoints(48, 24)
	if ug.NumPoints() < 48*24 {
		t.Fatalf("too few points: %d", ug.NumPoints())
	}
	if ug.NumCells() != ug.NumPoints() {
		t.Fatalf("every point should be a vertex cell: %d cells vs %d points",
			ug.NumCells(), ug.NumPoints())
	}
	for _, c := range ug.Cells {
		if c.Type != data.CellVertex {
			t.Fatal("non-vertex cell in point cloud")
		}
	}
	d := ug.Points.Get("DISPL")
	if d == nil || d.NumTuples() != ug.NumPoints() {
		t.Fatal("DISPL field missing or wrong size")
	}
	b := ug.Bounds()
	if b.Size().Z < 2 || b.Size().X < 1 {
		t.Errorf("implausible bounds %v..%v", b.Min, b.Max)
	}
	// Determinism: same parameters, same cloud.
	ug2 := CanPoints(48, 24)
	if ug2.NumPoints() != ug.NumPoints() || !ug2.Pts[17].NearEq(ug.Pts[17], 0) {
		t.Error("CanPoints must be deterministic")
	}
}

func TestDiskFlowFieldProperties(t *testing.T) {
	// Swirl is azimuthal: velocity at a point has a component orthogonal to
	// the radius vector; the z component is positive (axial jet).
	v, temp, pres := DiskFlowField(vmath.V(1, 0, 0.5))
	if v.Z <= 0 {
		t.Errorf("axial flow should be upward, got %v", v.Z)
	}
	if v.Y == 0 {
		t.Error("swirl should produce tangential velocity")
	}
	if temp <= 0 || pres <= 0 {
		t.Errorf("nonphysical temp=%v pres=%v", temp, pres)
	}
	// Temperature decreases radially outward.
	_, tInner, _ := DiskFlowField(vmath.V(0.6, 0, 0.5))
	_, tOuter, _ := DiskFlowField(vmath.V(1.9, 0, 0.5))
	if tInner <= tOuter {
		t.Errorf("Temp should fall with radius: %v vs %v", tInner, tOuter)
	}
}

func TestDiskFlowMesh(t *testing.T) {
	nr, nTheta, nz := 4, 12, 5
	ug := DiskFlow(nr, nTheta, nz)
	if ug.NumPoints() != nr*nTheta*nz {
		t.Fatalf("points = %d", ug.NumPoints())
	}
	wantCells := (nr - 1) * nTheta * (nz - 1)
	if ug.NumCells() != wantCells {
		t.Fatalf("cells = %d, want %d", ug.NumCells(), wantCells)
	}
	for _, c := range ug.Cells {
		if c.Type != data.CellHexahedron || len(c.IDs) != 8 {
			t.Fatal("expected hexahedra")
		}
		for _, id := range c.IDs {
			if id < 0 || id >= ug.NumPoints() {
				t.Fatal("cell id out of range")
			}
		}
	}
	for _, name := range []string{"V", "Temp", "Pres"} {
		f := ug.Points.Get(name)
		if f == nil || f.NumTuples() != ug.NumPoints() {
			t.Fatalf("field %s missing or wrong size", name)
		}
	}
	if ug.Points.Get("V").NumComponents != 3 {
		t.Error("V must be a vector field")
	}
	// All nodes must be inside the analytic bounds.
	bounds := DiskBounds()
	for _, p := range ug.Pts {
		if !bounds.Expanded(1e-9).Contains(p) {
			t.Fatalf("point %v outside disk bounds", p)
		}
	}
}

func TestDiskFlowSeamWraps(t *testing.T) {
	// With theta wrapping there must be cells using both the last and the
	// first azimuthal node column.
	nr, nTheta, nz := 3, 8, 3
	ug := DiskFlow(nr, nTheta, nz)
	// Node ids with it = nTheta-1 occupy a known range; find a cell that
	// spans the seam (contains both it=0 and it=nTheta-1 nodes).
	itOf := func(id int) int { return (id / nr) % nTheta }
	seam := false
	for _, c := range ug.Cells {
		has0, hasLast := false, false
		for _, id := range c.IDs {
			switch itOf(id) {
			case 0:
				has0 = true
			case nTheta - 1:
				hasLast = true
			}
		}
		if has0 && hasLast {
			seam = true
			break
		}
	}
	if !seam {
		t.Error("no seam-spanning cell found; azimuthal wrap is broken")
	}
}

func TestDiskFlowDegenerateParamsClamped(t *testing.T) {
	ug := DiskFlow(0, 0, 0)
	if ug.NumPoints() == 0 || ug.NumCells() == 0 {
		t.Error("degenerate parameters should be clamped to a valid mesh")
	}
}
