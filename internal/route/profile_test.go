package route

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"chatvis/internal/llm"
)

func testRecord(model string, task llm.TaskKind, score, cost float64) ModelProfile {
	return ModelProfile{
		Model:        model,
		Task:         task,
		Score:        score,
		AvgLatencyNS: 1000,
		CostWeight:   cost,
		Probes:       2,
		ProbeHash:    "abcd1234abcd1234",
		CalibratedAt: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
	}
}

func TestProfileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles", "profiles.json")
	s, err := OpenProfileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	first := []ModelProfile{
		testRecord("gpt-4", llm.TaskWrite, 0.97, 1.0),
		testRecord("codegemma", llm.TaskEditIntent, 1.0, 0.04),
	}
	if err := s.Append(first); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenProfileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	got := reopened.Records()
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("sequence numbers %d,%d, want 1,2", got[0].Seq, got[1].Seq)
	}
	if got[0].Model != "gpt-4" || got[0].Score != 0.97 {
		t.Errorf("first record corrupted: %+v", got[0])
	}
}

func TestProfileStoreAppendOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")
	s, err := OpenProfileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]ModelProfile{testRecord("gpt-4", llm.TaskWrite, 0.90, 1.0)}); err != nil {
		t.Fatal(err)
	}
	// A recalibration appends; it never rewrites history.
	if err := s.Append([]ModelProfile{testRecord("gpt-4", llm.TaskWrite, 0.95, 1.0)}); err != nil {
		t.Fatal(err)
	}
	recs := s.Records()
	if len(recs) != 2 {
		t.Fatalf("append-only log has %d records, want 2", len(recs))
	}
	if recs[0].Score != 0.90 || recs[1].Score != 0.95 {
		t.Errorf("history rewritten: %+v", recs)
	}
	if recs[1].Seq != 2 {
		t.Errorf("seq not monotone: %+v", recs[1])
	}
	// The live view is the tail.
	live := s.Latest().Task(llm.TaskWrite)
	if len(live) != 1 || live[0].Score != 0.95 {
		t.Errorf("Latest() = %+v, want the seq-2 record", live)
	}
}

func TestProfileStoreGoldenJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")
	s, err := OpenProfileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]ModelProfile{testRecord("codegemma", llm.TaskEditIntent, 1, 0.04)}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "version": 1,
  "records": [
    {
      "model": "codegemma",
      "task": "edit-intent",
      "score": 1,
      "avg_latency_ns": 1000,
      "cost_weight": 0.04,
      "probes": 2,
      "probe_hash": "abcd1234abcd1234",
      "calibrated_at": "2026-08-08T12:00:00Z",
      "seq": 1
    }
  ]
}
`
	if string(data) != want {
		t.Errorf("profile JSON drifted from the versioned wire format:\ngot:\n%s\nwant:\n%s", data, want)
	}
}

func TestProfileStoreRejectsNewerVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.json")
	doc := `{"version": 99, "records": []}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenProfileStore(path); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("expected version rejection, got %v", err)
	}
}

func TestProfileSetLatestPerModelTask(t *testing.T) {
	recs := []ModelProfile{
		testRecord("gpt-4", llm.TaskWrite, 0.80, 1.0),
		testRecord("codegemma", llm.TaskWrite, 0.20, 0.04),
		testRecord("gpt-4", llm.TaskWrite, 0.95, 1.0),
	}
	for i := range recs {
		recs[i].Seq = i + 1
	}
	set := NewProfileSet(recs)
	if set.Len() != 2 {
		t.Fatalf("Len() = %d, want 2 live profiles", set.Len())
	}
	ps := set.Task(llm.TaskWrite)
	// Cheapest first.
	if ps[0].Model != "codegemma" || ps[1].Model != "gpt-4" {
		t.Fatalf("task order = %v", []string{ps[0].Model, ps[1].Model})
	}
	if ps[1].Score != 0.95 {
		t.Errorf("live gpt-4 score = %v, want the latest record (0.95)", ps[1].Score)
	}
	if got, want := set.Tasks(), []llm.TaskKind{llm.TaskWrite}; !reflect.DeepEqual(got, want) {
		t.Errorf("Tasks() = %v, want %v", got, want)
	}
}
