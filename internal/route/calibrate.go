package route

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/plan"
	"chatvis/internal/pvsim"
)

// The probe calibrator: measure every registered model on a task-keyed
// slice of the eval grid and emit append-only ModelProfile records.
//
// Each task kind probes the capability it routes:
//
//   - write        — cold (single-shot, ungrounded) script writes over
//     the probe scenarios, scored on execution success, plan-graph
//     similarity and image match. Cold writes are deliberate: the
//     assisted loop's fence-stripping and repair iterations rescue
//     weak writers on easy inputs, so probing through the loop would
//     erase exactly the capability differences the router exists to
//     price (the paper's Table II measures models cold for the same
//     reason);
//   - edit-intent  — the real rewrite-stage prompt replayed per
//     scenario, scored by line overlap with the reference step prompt;
//   - plan-delta   — plan-edit requests over each scenario's reference
//     plan, scored by plan similarity against the intent applied
//     mechanically;
//   - plan-repair  — a reference plan corrupted with an unknown
//     property, scored on whether the model's repair validates clean.
//
// Probe calls are tagged llm.TaskProbe so a routed client never
// intercepts its own calibration traffic.

// probeEditUtterances drive the plan-delta probe. They are
// scenario-agnostic edits every reference plan accepts.
var probeEditUtterances = []string{
	"Rotate the view to an isometric direction.",
	"Save the screenshot as 'probe-edit.png'.",
}

// CalibrateConfig drives one calibration pass.
type CalibrateConfig struct {
	// Eval supplies the probe environment (DataDir, OutDir, resolution,
	// iteration budget).
	Eval eval.Config
	// Models to calibrate; default llm.PaperModels() — the serving
	// candidates. The "oracle" test fixture stays out of routing unless
	// listed explicitly.
	Models []string
	// Scenarios are the probe scenario IDs; default: every registered
	// scenario.
	Scenarios []string
	// NewClient resolves a model name to a client; default llm.NewModel.
	NewClient func(string) (llm.Client, error)
	// CostWeights prices the models; default DefaultCostWeights.
	CostWeights map[string]float64
	// Log, when set, receives per-probe progress lines.
	Log func(format string, args ...interface{})
}

func (c CalibrateConfig) logf(format string, args ...interface{}) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

func (c CalibrateConfig) client(model string) (llm.Client, error) {
	if c.NewClient != nil {
		return c.NewClient(model)
	}
	return llm.NewModel(model)
}

func (c CalibrateConfig) cost(model string) float64 {
	if c.CostWeights != nil {
		if w, ok := c.CostWeights[model]; ok {
			return w
		}
		return 1.0
	}
	return CostWeight(model)
}

// scenarios resolves the probe scenario list.
func (c CalibrateConfig) scenarios() ([]eval.Scenario, error) {
	ids := c.Scenarios
	if len(ids) == 0 {
		for _, s := range eval.Scenarios() {
			ids = append(ids, s.ID)
		}
	}
	out := make([]eval.Scenario, 0, len(ids))
	for _, id := range ids {
		scn, ok := eval.ScenarioByID(id)
		if !ok {
			return nil, fmt.Errorf("route: unknown probe scenario %q", id)
		}
		out = append(out, scn)
	}
	return out, nil
}

// ProbeHash fingerprints the probe corpus: scenario identities at the
// probe resolution plus the edit utterances. Profiles are comparable
// only when their hashes match.
func (c CalibrateConfig) ProbeHash() (string, error) {
	scns, err := c.scenarios()
	if err != nil {
		return "", err
	}
	cfg := c.Eval
	w, h := cfg.Width, cfg.Height
	if w == 0 {
		w, h = 480, 270
	}
	hash := sha256.New()
	fmt.Fprintf(hash, "v%d %dx%d\n", StoreVersion, w, h)
	for _, scn := range scns {
		fmt.Fprintf(hash, "%s: %s\n", scn.ID, scn.UserPrompt(w, h))
	}
	for _, u := range probeEditUtterances {
		fmt.Fprintf(hash, "edit: %s\n", u)
	}
	return hex.EncodeToString(hash.Sum(nil))[:16], nil
}

// Calibrate measures every model on every routable task and returns the
// profile records (Seq unassigned — ProfileStore.Append owns that).
// Models are probed in sorted order, tasks in llm.TaskKinds order, so
// two runs over the same corpus produce records in the same order.
func Calibrate(ctx context.Context, cfg CalibrateConfig) ([]ModelProfile, error) {
	scns, err := cfg.scenarios()
	if err != nil {
		return nil, err
	}
	hash, err := cfg.ProbeHash()
	if err != nil {
		return nil, err
	}
	models := cfg.Models
	if len(models) == 0 {
		models = llm.PaperModels()
	}
	models = append([]string(nil), models...)
	sort.Strings(models)

	var records []ModelProfile
	for _, model := range models {
		client, err := cfg.client(model)
		if err != nil {
			return nil, fmt.Errorf("route: calibrating %s: %w", model, err)
		}
		for _, task := range llm.TaskKinds() {
			score, latency, probes, err := cfg.probeTask(ctx, task, client, scns)
			if err != nil {
				return nil, fmt.Errorf("route: probing %s/%s: %w", model, task, err)
			}
			cfg.logf("calibrate %-14s %-12s score=%.2f probes=%d", model, task, score, probes)
			records = append(records, ModelProfile{
				Model:        model,
				Task:         task,
				Score:        score,
				AvgLatencyNS: latency,
				CostWeight:   cfg.cost(model),
				Probes:       probes,
				ProbeHash:    hash,
				CalibratedAt: time.Now().UTC(),
			})
		}
	}
	return records, nil
}

// probeTask runs one (model, task) probe set and aggregates the scores.
func (cfg CalibrateConfig) probeTask(ctx context.Context, task llm.TaskKind, client llm.Client, scns []eval.Scenario) (score float64, avgLatencyNS int64, probes int, err error) {
	var total float64
	var elapsed time.Duration
	add := func(s float64, d time.Duration) {
		total += s
		elapsed += d
		probes++
	}
	for _, scn := range scns {
		start := time.Now()
		var s float64
		switch task {
		case llm.TaskWrite:
			s, err = cfg.probeWrite(ctx, client, scn)
		case llm.TaskEditIntent:
			s, err = cfg.probeEditIntent(ctx, client, scn)
		case llm.TaskPlanDelta:
			s, err = cfg.probePlanDelta(ctx, client, scn)
		case llm.TaskPlanRepair:
			s, err = cfg.probePlanRepair(ctx, client, scn)
		default:
			err = fmt.Errorf("no probe for task %q", task)
		}
		if err != nil {
			return 0, 0, 0, err
		}
		add(s, time.Since(start))
	}
	if probes == 0 {
		return 0, 0, 0, fmt.Errorf("empty probe corpus")
	}
	return total / float64(probes), int64(elapsed) / int64(probes), probes, nil
}

// probeWrite measures one cold write: a single unassisted completion,
// executed and scored against the scenario's ground truth.
func (cfg CalibrateConfig) probeWrite(ctx context.Context, client llm.Client, scn eval.Scenario) (float64, error) {
	cell, _, err := cfg.Eval.RunScenario(ctx, scn, client, false)
	if err != nil {
		return 0, err
	}
	score := 0.3 * cell.PlanScore.Overall
	if cell.ErrorFree {
		score += 0.4
	}
	if cell.Screenshot {
		score += 0.3
	}
	return score, nil
}

// probeEditIntent replays the rewrite stage's real prompt and scores
// the response against the reference step prompt.
func (cfg CalibrateConfig) probeEditIntent(ctx context.Context, client llm.Client, scn eval.Scenario) (float64, error) {
	w, h := probeSize(cfg.Eval)
	prompt := scn.UserPrompt(w, h)
	req := chatvis.RewriteRequest(prompt)
	req.Task = llm.TaskProbe
	resp, err := client.Complete(ctx, req)
	if err != nil {
		return 0, err
	}
	want := llm.RenderStepPrompt(llm.ParseIntent(prompt))
	return lineOverlap(resp.Text, want), nil
}

// probePlanDelta asks the model to apply each probe utterance to the
// scenario's reference plan and scores the proposal against the intent
// applied mechanically.
func (cfg CalibrateConfig) probePlanDelta(ctx context.Context, client llm.Client, scn eval.Scenario) (float64, error) {
	ref, err := referencePlan(cfg.Eval, scn)
	if err != nil {
		return 0, err
	}
	schema := pvsim.PlanSchema()
	var total float64
	for _, utter := range probeEditUtterances {
		resp, err := client.Complete(ctx, llm.Request{
			System: llm.EditSystem,
			User:   llm.BuildPlanEditUser(ref, utter),
			Task:   llm.TaskProbe,
		})
		if err != nil {
			return 0, err
		}
		got, perr := llm.ParsePlanText(resp.Text)
		if perr != nil {
			continue // unparsable proposal scores zero
		}
		want := llm.ApplyEdits(ref, llm.ParseEditIntent(utter))
		total += plan.Similarity(plan.Normalize(got, schema), plan.Normalize(want, schema)).Overall
	}
	return total / float64(len(probeEditUtterances)), nil
}

// probePlanRepair corrupts the reference plan with an unknown property
// and scores whether the model's repair validates clean.
func (cfg CalibrateConfig) probePlanRepair(ctx context.Context, client llm.Client, scn eval.Scenario) (float64, error) {
	ref, err := referencePlan(cfg.Eval, scn)
	if err != nil {
		return 0, err
	}
	schema := pvsim.PlanSchema()
	corrupt := ref.Clone()
	st := corrupt.Stages[0]
	if st.Props == nil {
		st.Props = map[string]plan.Value{}
	}
	st.Props["BogusProbeProperty"] = plan.NumV(1)
	diags := plan.Errors(plan.Validate(corrupt, schema))
	if len(diags) == 0 {
		return 0, fmt.Errorf("probe corruption of %s produced no diagnostics", scn.ID)
	}
	resp, err := client.Complete(ctx, llm.Request{
		System: llm.EditSystem,
		User:   llm.BuildPlanDeltaRepairUser(corrupt, diags),
		Task:   llm.TaskProbe,
	})
	if err != nil {
		return 0, err
	}
	got, perr := llm.ParsePlanText(resp.Text)
	if perr != nil {
		return 0, nil
	}
	if len(plan.Errors(plan.Validate(got, schema))) > 0 {
		return 0, nil
	}
	return 1, nil
}

// referencePlan resolves a scenario's normalized ground-truth plan: the
// native IR when one exists, the compiled reference script otherwise.
func referencePlan(cfg eval.Config, scn eval.Scenario) (*plan.Plan, error) {
	w, h := probeSize(cfg)
	schema := pvsim.PlanSchema()
	if p := scn.PlanIR(w, h); p != nil {
		return plan.Normalize(p, schema), nil
	}
	compiled, err := plan.Compile(scn.GroundTruthScript(w, h), schema)
	if err != nil {
		return nil, fmt.Errorf("compiling reference plan for %s: %w", scn.ID, err)
	}
	return plan.Normalize(compiled.Plan, schema), nil
}

func probeSize(cfg eval.Config) (int, int) {
	if cfg.Width == 0 {
		return 480, 270
	}
	return cfg.Width, cfg.Height
}

// lineOverlap scores generated text against a reference as the fraction
// of reference lines the response reproduces (1.0 for an exact match).
func lineOverlap(got, want string) float64 {
	wantLines := nonEmptyLines(want)
	if len(wantLines) == 0 {
		return 0
	}
	gotSet := map[string]bool{}
	for _, l := range nonEmptyLines(got) {
		gotSet[l] = true
	}
	hits := 0
	for _, l := range wantLines {
		if gotSet[l] {
			hits++
		}
	}
	return float64(hits) / float64(len(wantLines))
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if t := strings.TrimSpace(l); t != "" {
			out = append(out, t)
		}
	}
	return out
}
