package route

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"chatvis/internal/llm"
	"chatvis/internal/obs"
)

// TaskSpec is one task kind's routing contract: the measured score a
// model must clear to serve the task, and how many rungs of the
// strength ladder escalation may climb when validation/repair fails.
type TaskSpec struct {
	Task llm.TaskKind `json:"task"`
	// Bar is the minimum measured score (0..1) a model needs to be the
	// task's primary. When no profiled model clears it, the strongest
	// profiled model serves the task.
	Bar float64 `json:"bar"`
	// MaxEscalations bounds how far above the primary an escalating
	// request may route.
	MaxEscalations int `json:"max_escalations"`
}

// DefaultSpecs returns the per-task routing bars. Write tolerates a
// lower bar than the structured tasks: its probe is a cold write whose
// score blends success (0.4), plan similarity (0.3) and image match
// (0.3), and no model writes image-perfect scripts cold (the paper's
// Fig. 2 shows GPT-4's gray background and zoom drift) — 0.60 demands
// a clean execution that lands most of the reference plan. The
// plan-document tasks are near mechanical, so anything measurably
// lossy on them should not serve.
func DefaultSpecs() map[llm.TaskKind]TaskSpec {
	return map[llm.TaskKind]TaskSpec{
		llm.TaskWrite:      {Task: llm.TaskWrite, Bar: 0.60, MaxEscalations: 2},
		llm.TaskPlanRepair: {Task: llm.TaskPlanRepair, Bar: 0.90, MaxEscalations: 2},
		llm.TaskEditIntent: {Task: llm.TaskEditIntent, Bar: 0.90, MaxEscalations: 1},
		llm.TaskPlanDelta:  {Task: llm.TaskPlanDelta, Bar: 0.90, MaxEscalations: 1},
	}
}

// Decision is one routing outcome.
type Decision struct {
	Task  llm.TaskKind `json:"task"`
	Model string       `json:"model"`
	// Score and Bar record why the model was eligible.
	Score float64 `json:"score"`
	Bar   float64 `json:"bar"`
	// CostWeight is the chosen model's relative cost.
	CostWeight float64 `json:"cost_weight"`
	// Escalation is the ladder rung served (0 = primary), after
	// clamping to the task's budget and the ladder length.
	Escalation int `json:"escalation"`
	// Fallback marks a request the router could not profile-route
	// (untagged, probe traffic, or no profiles for the task); it went
	// to the caller's configured model.
	Fallback bool `json:"fallback,omitempty"`
}

// Stats is a router counter snapshot.
type Stats struct {
	// Decisions counts profile-routed completions.
	Decisions int64
	// Escalations counts decisions served above rung 0.
	Escalations int64
	// Fallbacks counts completions sent to the configured model because
	// no profile applied.
	Fallbacks int64
	// TaskModel counts decisions per task per serving model (fallbacks
	// excluded).
	TaskModel map[llm.TaskKind]map[string]int64
}

// Router holds the compiled routing state: per task, a strength ladder
// of measured profiles whose rung 0 is the cheapest model clearing the
// task's bar. The ladder is immutable after construction; concurrent
// Complete calls share it lock-free and serialize only on the counters.
type Router struct {
	specs   map[llm.TaskKind]TaskSpec
	ladders map[llm.TaskKind][]ModelProfile

	mu          sync.Mutex
	decisions   int64
	escalations int64
	fallbacks   int64
	taskModel   map[llm.TaskKind]map[string]int64
}

// NewRouter compiles a profile set into a router. specs may be nil
// (DefaultSpecs). Tasks without profiles simply fall back.
func NewRouter(set *ProfileSet, specs map[llm.TaskKind]TaskSpec) *Router {
	if specs == nil {
		specs = DefaultSpecs()
	}
	r := &Router{
		specs:     specs,
		ladders:   map[llm.TaskKind][]ModelProfile{},
		taskModel: map[llm.TaskKind]map[string]int64{},
	}
	if set == nil {
		return r
	}
	for task, spec := range specs {
		profiles := set.Task(task)
		if len(profiles) == 0 {
			continue
		}
		r.ladders[task] = buildLadder(profiles, spec.Bar)
	}
	return r
}

// buildLadder orders a task's profiles into escalation rungs: rung 0 is
// the cheapest profile clearing the bar (or the strongest profile when
// none clears), and later rungs are the strictly stronger profiles in
// ascending strength. Strength is (score, then cost): among equal
// scores the pricier model is the escalation target, the measured
// stand-in for robustness headroom.
func buildLadder(profiles []ModelProfile, bar float64) []ModelProfile {
	byStrength := append([]ModelProfile(nil), profiles...)
	sort.Slice(byStrength, func(i, j int) bool {
		a, b := byStrength[i], byStrength[j]
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		if a.CostWeight != b.CostWeight {
			return a.CostWeight < b.CostWeight
		}
		return a.Model < b.Model
	})
	primary := -1
	// profiles arrive cheapest-first, so the first clearing entry is the
	// cheapest eligible model.
	var cheapest ModelProfile
	found := false
	for _, p := range profiles {
		if p.Score >= bar {
			cheapest = p
			found = true
			break
		}
	}
	if !found {
		// Nothing clears the bar: serve the strongest profile, with no
		// rungs above it.
		return byStrength[len(byStrength)-1:]
	}
	for i, p := range byStrength {
		if p.Model == cheapest.Model {
			primary = i
			break
		}
	}
	return byStrength[primary:]
}

// Decide routes one (task, escalation) pair. ok is false when the
// request must fall back to the caller's configured model.
func (r *Router) Decide(task llm.TaskKind, escalation int) (Decision, bool) {
	spec, known := r.specs[task]
	ladder := r.ladders[task]
	if task == "" || task == llm.TaskProbe || !known || len(ladder) == 0 {
		return Decision{Task: task, Fallback: true}, false
	}
	rung := escalation
	if rung > spec.MaxEscalations {
		rung = spec.MaxEscalations
	}
	if rung > len(ladder)-1 {
		rung = len(ladder) - 1
	}
	if rung < 0 {
		rung = 0
	}
	p := ladder[rung]
	return Decision{
		Task:       task,
		Model:      p.Model,
		Score:      p.Score,
		Bar:        spec.Bar,
		CostWeight: p.CostWeight,
		Escalation: rung,
	}, true
}

func (r *Router) record(d Decision, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !ok {
		r.fallbacks++
		return
	}
	r.decisions++
	if d.Escalation > 0 {
		r.escalations++
	}
	m := r.taskModel[d.Task]
	if m == nil {
		m = map[string]int64{}
		r.taskModel[d.Task] = m
	}
	m[d.Model]++
}

// Snapshot returns the router's counters.
func (r *Router) Snapshot() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Decisions:   r.decisions,
		Escalations: r.escalations,
		Fallbacks:   r.fallbacks,
		TaskModel:   map[llm.TaskKind]map[string]int64{},
	}
	for task, m := range r.taskModel {
		c := map[string]int64{}
		for model, n := range m {
			c[model] = n
		}
		s.TaskModel[task] = c
	}
	return s
}

// RouteView is one task's live routing state, for /v1/models and the
// eval report.
type RouteView struct {
	Task llm.TaskKind `json:"task"`
	Bar  float64      `json:"bar"`
	// MaxEscalations is the task's escalation budget.
	MaxEscalations int `json:"max_escalations"`
	// Ladder is the escalation order; Ladder[0] is the primary.
	Ladder []ModelProfile `json:"ladder"`
	// Decisions/Escalations are the task's served counts so far.
	Decisions   int64 `json:"decisions"`
	Escalations int64 `json:"escalations"`
}

// Routes returns the per-task routing state in stable task order.
func (r *Router) Routes() []RouteView {
	snap := r.Snapshot()
	tasks := make([]llm.TaskKind, 0, len(r.ladders))
	for task := range r.ladders {
		tasks = append(tasks, task)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i] < tasks[j] })
	out := make([]RouteView, 0, len(tasks))
	for _, task := range tasks {
		spec := r.specs[task]
		var decided, escalated int64
		for _, n := range snap.TaskModel[task] {
			decided += n
		}
		for _, d := range r.escalationsFor(task) {
			escalated += d
		}
		out = append(out, RouteView{
			Task:           task,
			Bar:            spec.Bar,
			MaxEscalations: spec.MaxEscalations,
			Ladder:         append([]ModelProfile(nil), r.ladders[task]...),
			Decisions:      decided,
			Escalations:    escalated,
		})
	}
	return out
}

// escalationsFor counts decisions served above rung 0 for one task:
// every count on a non-primary ladder model.
func (r *Router) escalationsFor(task llm.TaskKind) map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	ladder := r.ladders[task]
	if len(ladder) == 0 {
		return nil
	}
	out := map[string]int64{}
	for model, n := range r.taskModel[task] {
		if model != ladder[0].Model {
			out[model] = n
		}
	}
	return out
}

// Client binds the router to a caller's model resolution: requests with
// a routable task go to the profiled pick, everything else (and any
// resolution failure of the pick) goes to the configured fallback
// model. All clients bound to one Router share its counters, so serving
// surfaces aggregate naturally.
func (r *Router) Client(fallback string, resolve func(string) (llm.Client, error)) llm.Client {
	return &routedClient{router: r, fallback: fallback, resolve: resolve}
}

type routedClient struct {
	router   *Router
	fallback string
	resolve  func(string) (llm.Client, error)
}

// Name implements llm.Client; the routed stack keeps the configured
// model's identity (per-stage serving models are reported by the
// response and the trace).
func (c *routedClient) Name() string { return c.fallback }

// Complete implements llm.Client: decide, record, and serve — with a
// span carrying the decision provenance.
func (c *routedClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	d, ok := c.router.Decide(req.Task, req.Escalation)
	model := c.fallback
	if ok {
		model = d.Model
	}
	_, span := obs.Start(ctx, "route.decide")
	span.SetAttr("task", string(req.Task))
	span.SetAttr("routed_model", model)
	span.SetAttr("fallback", !ok)
	if ok {
		span.SetAttr("escalation", d.Escalation)
		span.SetAttr("score", d.Score)
		span.SetAttr("bar", d.Bar)
	}
	span.End()

	client, err := c.resolve(model)
	if err != nil && model != c.fallback {
		// A profiled model the resolver cannot build must not fail the
		// request: serve the configured model instead.
		ok = false
		client, err = c.resolve(c.fallback)
	}
	if err != nil {
		return llm.Response{}, fmt.Errorf("route: resolving %q: %w", model, err)
	}
	c.router.record(d, ok)
	return client.Complete(ctx, req)
}
