package route

import (
	"context"
	"path/filepath"
	"testing"

	"chatvis/internal/eval"
	"chatvis/internal/llm"
)

// TestRoutedGridParity is the acceptance gate end-to-end: calibrate
// the sim registry, route the assisted pipeline through the measured
// profiles, run the full eval grid, and check that (a) edit-intent
// traffic served from a measurably cheaper profile than writes and
// (b) the ChatVis column's quality metrics match the no-routing
// baseline exactly.
func TestRoutedGridParity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dir := t.TempDir()
	base := eval.Config{
		DataDir: filepath.Join(dir, "data"),
		OutDir:  filepath.Join(dir, "out-baseline"),
	}
	calCfg := CalibrateConfig{Eval: eval.Config{
		DataDir: filepath.Join(dir, "data"),
		OutDir:  filepath.Join(dir, "out-probe"),
	}, Scenarios: []string{"iso", "slice"}}
	records, err := Calibrate(context.Background(), calCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		records[i].Seq = i + 1
	}
	router := NewRouter(NewProfileSet(records), nil)

	baseline, err := base.RunGrid(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	routedCfg := base
	routedCfg.OutDir = filepath.Join(dir, "out-routed")
	routedCfg.PipelineClient = func(defaultModel string) (llm.Client, error) {
		return router.Client(defaultModel, llm.NewModel), nil
	}
	routed, err := routedCfg.RunGrid(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}

	// Quality parity on the assisted column, cell by cell.
	for _, task := range baseline.Tasks {
		b := baseline.Cells[task][eval.ChatVisModel]
		r := routed.Cells[task][eval.ChatVisModel]
		if b.ErrorFree != r.ErrorFree || b.Screenshot != r.Screenshot {
			t.Errorf("%s: routed outcome (err-free=%v ss=%v) differs from baseline (err-free=%v ss=%v)",
				task, r.ErrorFree, r.Screenshot, b.ErrorFree, b.Screenshot)
		}
		if b.PlanScore.Overall != r.PlanScore.Overall {
			t.Errorf("%s: routed PlanScore %.3f != baseline %.3f",
				task, r.PlanScore.Overall, b.PlanScore.Overall)
		}
		if len(r.Models) < 2 {
			t.Errorf("%s: routed cell served by %v, expected a split across models", task, r.Models)
		}
	}

	// The router actually split the traffic: rewrites on a cheaper
	// profile than writes.
	snap := router.Snapshot()
	if snap.TaskModel[llm.TaskEditIntent]["codegemma"] == 0 {
		t.Errorf("edit-intent decisions = %v, want codegemma serving rewrites", snap.TaskModel[llm.TaskEditIntent])
	}
	if snap.TaskModel[llm.TaskWrite]["gpt-4"] == 0 {
		t.Errorf("write decisions = %v, want gpt-4 serving writes", snap.TaskModel[llm.TaskWrite])
	}
	var editCost, writeCost float64
	for _, v := range router.Routes() {
		switch v.Task {
		case llm.TaskEditIntent:
			editCost = v.Ladder[0].CostWeight
		case llm.TaskWrite:
			writeCost = v.Ladder[0].CostWeight
		}
	}
	if editCost >= writeCost {
		t.Errorf("edit-intent cost %.2f not measurably cheaper than write cost %.2f", editCost, writeCost)
	}
}
