package route

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"chatvis/internal/llm"
)

// testSet builds a profile set for one task from (model, score, cost)
// triples.
func testSet(task llm.TaskKind, rows ...[3]interface{}) *ProfileSet {
	var recs []ModelProfile
	for i, r := range rows {
		recs = append(recs, ModelProfile{
			Model:      r[0].(string),
			Task:       task,
			Score:      r[1].(float64),
			CostWeight: r[2].(float64),
			Seq:        i + 1,
		})
	}
	return NewProfileSet(recs)
}

func TestDecidePicksCheapestClearingBar(t *testing.T) {
	set := testSet(llm.TaskWrite,
		[3]interface{}{"cheap", 0.30, 0.05},
		[3]interface{}{"mid", 0.80, 0.10},
		[3]interface{}{"strong", 0.95, 1.0},
	)
	r := NewRouter(set, nil) // write bar 0.60
	d, ok := r.Decide(llm.TaskWrite, 0)
	if !ok || d.Model != "mid" {
		t.Fatalf("Decide = %+v ok=%v, want mid (cheapest clearing 0.60)", d, ok)
	}
	if d.Score != 0.80 || d.Bar != 0.60 || d.CostWeight != 0.10 {
		t.Errorf("decision provenance wrong: %+v", d)
	}
}

func TestDecideEscalatesAndClamps(t *testing.T) {
	set := testSet(llm.TaskWrite,
		[3]interface{}{"mid", 0.80, 0.10},
		[3]interface{}{"strong", 0.95, 1.0},
	)
	r := NewRouter(set, nil) // write: MaxEscalations 2
	if d, _ := r.Decide(llm.TaskWrite, 1); d.Model != "strong" || d.Escalation != 1 {
		t.Errorf("escalation 1 = %+v, want strong", d)
	}
	// Beyond the ladder (and the budget) clamps to the top rung.
	if d, _ := r.Decide(llm.TaskWrite, 7); d.Model != "strong" || d.Escalation != 1 {
		t.Errorf("escalation 7 = %+v, want clamped to strong", d)
	}
}

func TestDecideNoModelClearsBar(t *testing.T) {
	set := testSet(llm.TaskWrite,
		[3]interface{}{"weak-a", 0.30, 0.05},
		[3]interface{}{"weak-b", 0.50, 0.10},
	)
	r := NewRouter(set, nil)
	d, ok := r.Decide(llm.TaskWrite, 0)
	if !ok || d.Model != "weak-b" {
		t.Fatalf("Decide = %+v, want the strongest profile when nothing clears", d)
	}
}

func TestDecideFallbacks(t *testing.T) {
	r := NewRouter(testSet(llm.TaskWrite, [3]interface{}{"m", 0.9, 1.0}), nil)
	for _, task := range []llm.TaskKind{"", llm.TaskProbe, llm.TaskPlanDelta, "nonsense"} {
		if d, ok := r.Decide(task, 0); ok || !d.Fallback {
			t.Errorf("Decide(%q) = %+v ok=%v, want fallback", task, d, ok)
		}
	}
}

func TestRoutedClientServesAndCounts(t *testing.T) {
	set := testSet(llm.TaskEditIntent, [3]interface{}{"cheap", 0.95, 0.04})
	r := NewRouter(set, nil)
	served := map[string]int{}
	var mu sync.Mutex
	resolve := func(name string) (llm.Client, error) {
		return &llm.ClientFunc{ModelName: name, Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			mu.Lock()
			served[name]++
			mu.Unlock()
			return llm.Response{Model: name, Text: "ok"}, nil
		}}, nil
	}
	client := r.Client("strong", resolve)
	if client.Name() != "strong" {
		t.Errorf("routed client keeps the configured identity, got %q", client.Name())
	}
	// Routable task goes to the profile pick; untagged traffic falls back.
	if _, err := client.Complete(context.Background(), llm.Request{Task: llm.TaskEditIntent}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Complete(context.Background(), llm.Request{}); err != nil {
		t.Fatal(err)
	}
	if served["cheap"] != 1 || served["strong"] != 1 {
		t.Errorf("served = %v, want one cheap (routed) and one strong (fallback)", served)
	}
	s := r.Snapshot()
	if s.Decisions != 1 || s.Fallbacks != 1 {
		t.Errorf("stats = %+v, want 1 decision + 1 fallback", s)
	}
	if s.TaskModel[llm.TaskEditIntent]["cheap"] != 1 {
		t.Errorf("per-task counts = %v", s.TaskModel)
	}
}

func TestRoutedClientResolveFailureFallsBack(t *testing.T) {
	set := testSet(llm.TaskWrite, [3]interface{}{"ghost", 0.99, 0.01})
	r := NewRouter(set, nil)
	resolve := func(name string) (llm.Client, error) {
		if name == "ghost" {
			return nil, fmt.Errorf("not registered")
		}
		return &llm.ClientFunc{ModelName: name, Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			return llm.Response{Model: name}, nil
		}}, nil
	}
	resp, err := r.Client("real", resolve).Complete(context.Background(), llm.Request{Task: llm.TaskWrite})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != "real" {
		t.Errorf("served by %q, want fallback model", resp.Model)
	}
	if s := r.Snapshot(); s.Fallbacks != 1 || s.Decisions != 0 {
		t.Errorf("stats = %+v, want the failed resolution counted as fallback", s)
	}
}

// TestRouterConcurrent hammers one router from many goroutines; run
// under -race it proves the ladder reads are safe and the counters
// consistent.
func TestRouterConcurrent(t *testing.T) {
	set := testSet(llm.TaskWrite,
		[3]interface{}{"cheap", 0.80, 0.05},
		[3]interface{}{"strong", 0.95, 1.0},
	)
	r := NewRouter(set, nil)
	resolve := func(name string) (llm.Client, error) {
		return &llm.ClientFunc{ModelName: name, Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
			return llm.Response{Model: name}, nil
		}}, nil
	}
	client := r.Client("strong", resolve)
	const workers, calls = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				req := llm.Request{Task: llm.TaskWrite, Escalation: (w + i) % 2}
				if _, err := client.Complete(context.Background(), req); err != nil {
					t.Error(err)
					return
				}
				if (w+i)%10 == 0 {
					r.Routes() // concurrent readers of the live view
				}
			}
		}(w)
	}
	wg.Wait()
	if s := r.Snapshot(); s.Decisions != workers*calls {
		t.Errorf("decisions = %d, want %d", s.Decisions, workers*calls)
	}
}
