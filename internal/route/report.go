package route

import "chatvis/internal/eval"

// Report converts a router's live state into the eval report's routing
// table (pure-data types, so the harness does not depend on this
// package).
func Report(r *Router, profilesPath string) *eval.RoutingTable {
	t := &eval.RoutingTable{ProfilesPath: profilesPath}
	for _, v := range r.Routes() {
		ladder := make([]string, 0, len(v.Ladder))
		for _, p := range v.Ladder {
			ladder = append(ladder, p.Model)
		}
		primary := v.Ladder[0]
		t.Rows = append(t.Rows, eval.RoutingRow{
			Task:        string(v.Task),
			Model:       primary.Model,
			Score:       primary.Score,
			Bar:         v.Bar,
			CostWeight:  primary.CostWeight,
			Decisions:   v.Decisions,
			Escalations: v.Escalations,
			Ladder:      ladder,
		})
	}
	return t
}
