// Package route is the measured model-routing layer between the llm
// client middleware and the model registry. A probe calibrator runs
// every registered model through a task-keyed slice of the eval grid
// and records append-only ModelProfile records (measured score, probe
// latency, cost weight, probe corpus hash); a Router then serves each
// tagged llm.Request from the cheapest model whose measured score
// clears the task's bar, climbing a strength ladder on bounded
// escalation when validation or repair fails. Profiles are measured,
// never self-reported: a model's place in the ladder comes from what it
// did on the probe corpus, not from a static trait table.
package route

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"chatvis/internal/llm"
)

// StoreVersion tags the profiles JSON layout. Loading a file written by
// a newer layout fails instead of misreading it.
const StoreVersion = 1

// ModelProfile is one append-only calibration record: how a model
// measured on one task's probe corpus at one calibration time.
type ModelProfile struct {
	// Model names the registered backend.
	Model string `json:"model"`
	// Task is the task kind the probes exercised.
	Task llm.TaskKind `json:"task"`
	// Score is the measured probe score in [0,1].
	Score float64 `json:"score"`
	// AvgLatencyNS is the mean wall-clock latency of the task's probe
	// calls against this model.
	AvgLatencyNS int64 `json:"avg_latency_ns"`
	// CostWeight is the model's relative per-call cost (1.0 = the
	// reference strong model).
	CostWeight float64 `json:"cost_weight"`
	// Probes counts the probe observations behind Score.
	Probes int `json:"probes"`
	// ProbeHash fingerprints the probe corpus (scenario IDs, prompts,
	// resolution), so two records are comparable only when it matches.
	ProbeHash string `json:"probe_hash"`
	// CalibratedAt is the record's wall-clock timestamp.
	CalibratedAt time.Time `json:"calibrated_at"`
	// Seq is the record's position in the append-only log (1-based);
	// the highest Seq per (model, task) is the live profile.
	Seq int `json:"seq"`
}

// profileDoc is the versioned on-disk layout.
type profileDoc struct {
	Version int            `json:"version"`
	Records []ModelProfile `json:"records"`
}

// ProfileStore persists ModelProfile records as versioned JSON. The log
// is append-only: Append never rewrites or drops prior records, so the
// file is the full calibration history and Latest() is a view of its
// tail.
type ProfileStore struct {
	path string

	mu      sync.Mutex
	records []ModelProfile
}

// OpenProfileStore opens (or prepares to create) the store at path.
func OpenProfileStore(path string) (*ProfileStore, error) {
	s := &ProfileStore{path: path}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("route: reading profiles: %w", err)
	}
	var doc profileDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("route: parsing profiles %s: %w", path, err)
	}
	if doc.Version > StoreVersion {
		return nil, fmt.Errorf("route: profiles %s are version %d, this build reads <= %d",
			path, doc.Version, StoreVersion)
	}
	s.records = doc.Records
	return s, nil
}

// Path returns the store's file path.
func (s *ProfileStore) Path() string { return s.path }

// Len returns the number of records in the log.
func (s *ProfileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Records returns a copy of the full append-only log in order.
func (s *ProfileStore) Records() []ModelProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ModelProfile(nil), s.records...)
}

// Append adds calibration records to the log and persists it. Sequence
// numbers are assigned here; the input order is preserved.
func (s *ProfileStore) Append(records []ModelProfile) error {
	if len(records) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := 0
	for _, r := range s.records {
		if r.Seq > seq {
			seq = r.Seq
		}
	}
	for _, r := range records {
		seq++
		r.Seq = seq
		s.records = append(s.records, r)
	}
	return s.flushLocked()
}

// flushLocked writes the log atomically (temp file + rename) so a crash
// mid-write never truncates the calibration history.
func (s *ProfileStore) flushLocked() error {
	doc := profileDoc{Version: StoreVersion, Records: s.records}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if dir := filepath.Dir(s.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}

// Latest folds the log into a ProfileSet: the highest-Seq record per
// (model, task).
func (s *ProfileStore) Latest() *ProfileSet {
	return NewProfileSet(s.Records())
}

// ProfileSet is an immutable routing view over calibration records: the
// live (latest) profile per (model, task). Routers read it without
// locking.
type ProfileSet struct {
	byTask map[llm.TaskKind][]ModelProfile
	count  int
}

// NewProfileSet builds the view, keeping the last record per
// (model, task) in log order (ties on Seq resolve to the later entry).
func NewProfileSet(records []ModelProfile) *ProfileSet {
	type key struct {
		model string
		task  llm.TaskKind
	}
	latest := map[key]ModelProfile{}
	for _, r := range records {
		k := key{r.Model, r.Task}
		if cur, ok := latest[k]; !ok || r.Seq >= cur.Seq {
			latest[k] = r
		}
	}
	set := &ProfileSet{byTask: map[llm.TaskKind][]ModelProfile{}}
	for k, r := range latest {
		set.byTask[k.task] = append(set.byTask[k.task], r)
		set.count++
	}
	for task := range set.byTask {
		ps := set.byTask[task]
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].CostWeight != ps[j].CostWeight {
				return ps[i].CostWeight < ps[j].CostWeight
			}
			return ps[i].Model < ps[j].Model
		})
	}
	return set
}

// Task returns the live profiles for one task kind, cheapest first.
func (s *ProfileSet) Task(k llm.TaskKind) []ModelProfile {
	return append([]ModelProfile(nil), s.byTask[k]...)
}

// Tasks lists the task kinds with at least one live profile, sorted.
func (s *ProfileSet) Tasks() []llm.TaskKind {
	out := make([]llm.TaskKind, 0, len(s.byTask))
	for k := range s.byTask {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len counts the live (model, task) profiles.
func (s *ProfileSet) Len() int { return s.count }

// DefaultCostWeights is the static relative per-call cost table used
// when calibrating the built-in simulated registry (1.0 = gpt-4).
// Scores are measured; costs are priced.
var DefaultCostWeights = map[string]float64{
	"gpt-4":         1.0,
	"gpt-3.5-turbo": 0.10,
	"llama3-8b":     0.06,
	"codellama-7b":  0.05,
	"codegemma":     0.04,
	"oracle":        2.0,
}

// CostWeight prices a model, defaulting unknown backends to the
// reference cost so routing never treats an unpriced model as free.
func CostWeight(model string) float64 {
	if w, ok := DefaultCostWeights[model]; ok {
		return w
	}
	return 1.0
}
