package route

import (
	"context"
	"path/filepath"
	"testing"

	"chatvis/internal/eval"
	"chatvis/internal/llm"
)

func calibrateTestConfig(t *testing.T) CalibrateConfig {
	t.Helper()
	dir := t.TempDir()
	return CalibrateConfig{
		Eval: eval.Config{
			DataDir: filepath.Join(dir, "data"),
			OutDir:  filepath.Join(dir, "out"),
		},
		Scenarios: []string{"iso", "slice"},
	}
}

// TestCalibrateSimRegistry measures the built-in simulated registry and
// checks the routing consequences: structured plan tasks route to
// measurably cheaper models than cold writes, and only the strong
// models clear the write bar.
func TestCalibrateSimRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := calibrateTestConfig(t)
	records, err := Calibrate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	models := llm.PaperModels()
	if want := len(models) * len(llm.TaskKinds()); len(records) != want {
		t.Fatalf("got %d records, want %d (models × tasks)", len(records), want)
	}
	for i := range records {
		records[i].Seq = i + 1
	}
	r := NewRouter(NewProfileSet(records), nil)

	primary := map[llm.TaskKind]ModelProfile{}
	for _, v := range r.Routes() {
		primary[v.Task] = v.Ladder[0]
	}
	if got := primary[llm.TaskWrite].Model; got != "gpt-4" {
		t.Errorf("write primary = %q, want gpt-4 (only strong models clear the bar)", got)
	}
	if got := primary[llm.TaskPlanRepair].Model; got != "gpt-3.5-turbo" {
		t.Errorf("plan-repair primary = %q, want gpt-3.5-turbo (repair skill 1 suffices for document repair)", got)
	}
	// The acceptance gate: routed edit-intent and plan-repair serve from
	// measurably cheaper profiles than cold writes.
	writeCost := primary[llm.TaskWrite].CostWeight
	for _, task := range []llm.TaskKind{llm.TaskEditIntent, llm.TaskPlanDelta, llm.TaskPlanRepair} {
		p, ok := primary[task]
		if !ok {
			t.Fatalf("no route for %s", task)
		}
		if p.CostWeight >= writeCost {
			t.Errorf("%s routes to %s (cost %.2f), not cheaper than write's %.2f",
				task, p.Model, p.CostWeight, writeCost)
		}
	}
}

// TestCalibrateDeterministic runs the same probe corpus twice and
// expects identical measurements — the property the smoke gate in CI
// asserts end-to-end.
func TestCalibrateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := calibrateTestConfig(t)
	a, err := Calibrate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Model != b[i].Model || a[i].Task != b[i].Task {
			t.Fatalf("record order differs at %d: %s/%s vs %s/%s",
				i, a[i].Model, a[i].Task, b[i].Model, b[i].Task)
		}
		if a[i].Score != b[i].Score {
			t.Errorf("%s/%s score differs across runs: %v vs %v",
				a[i].Model, a[i].Task, a[i].Score, b[i].Score)
		}
		if a[i].ProbeHash != b[i].ProbeHash {
			t.Errorf("probe hash differs: %s vs %s", a[i].ProbeHash, b[i].ProbeHash)
		}
	}
}
