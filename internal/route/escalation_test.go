package route

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"chatvis/internal/chatvis"
	"chatvis/internal/eval"
	"chatvis/internal/llm"
	"chatvis/internal/plan"
	"chatvis/internal/pvpython"
	"chatvis/internal/pvsim"
)

// The forced-failure escalation scenario: a cheap model that proposes a
// broken plan edit and cannot repair it, and a strong model that can.
// With escalation the router climbs to the strong model on the second
// repair round and the turn recovers; with the escalation budget at
// zero the cheap model alone leaves the plan broken.

const (
	planOpen  = "--- CURRENT PLAN ---"
	planClose = "--- END CURRENT PLAN ---"
	diagOpen  = "--- PLAN DIAGNOSTICS ---"
	diagClose = "--- END PLAN DIAGNOSTICS ---"
)

func section(s, open, close string) (string, bool) {
	i := strings.Index(s, open)
	if i < 0 {
		return "", false
	}
	s = s[i+len(open):]
	j := strings.Index(s, close)
	if j < 0 {
		return "", false
	}
	return s[:j], true
}

func encodePlan(t *testing.T, p *plan.Plan) string {
	t.Helper()
	blob, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// cheapRepairClient proposes plan edits with a bogus property injected
// and "repairs" by returning the broken plan unchanged — the repeated
// validation failure that triggers escalation.
func cheapRepairClient(t *testing.T, delegate llm.Client) *llm.ClientFunc {
	return &llm.ClientFunc{ModelName: "cheap-repair", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		blob, ok := section(req.User, planOpen, planClose)
		if !ok {
			return delegate.Complete(ctx, req)
		}
		cur, err := plan.Decode([]byte(blob))
		if err != nil {
			return llm.Response{}, fmt.Errorf("cheap fake: %w", err)
		}
		if _, hasDiags := section(req.User, diagOpen, diagClose); hasDiags {
			// Failed repair: hand the broken plan straight back.
			return llm.Response{Model: "cheap-repair", Text: encodePlan(t, cur)}, nil
		}
		broken := cur.Clone()
		st := broken.Stages[0]
		if st.Props == nil {
			st.Props = map[string]plan.Value{}
		}
		st.Props["BogusEscalationProp"] = plan.NumV(1)
		return llm.Response{Model: "cheap-repair", Text: encodePlan(t, broken)}, nil
	}}
}

// strongRepairClient repairs plan diagnostics properly (skill 2).
func strongRepairClient(t *testing.T, delegate llm.Client) *llm.ClientFunc {
	return &llm.ClientFunc{ModelName: "strong-repair", Fn: func(ctx context.Context, req llm.Request) (llm.Response, error) {
		blob, ok := section(req.User, planOpen, planClose)
		diagBlob, hasDiags := section(req.User, diagOpen, diagClose)
		if !ok || !hasDiags {
			return delegate.Complete(ctx, req)
		}
		cur, err := plan.Decode([]byte(blob))
		if err != nil {
			return llm.Response{}, fmt.Errorf("strong fake: %w", err)
		}
		var diags []plan.Diagnostic
		if err := json.Unmarshal([]byte(diagBlob), &diags); err != nil {
			return llm.Response{}, fmt.Errorf("strong fake diags: %w", err)
		}
		return llm.Response{Model: "strong-repair", Text: encodePlan(t, llm.RepairPlanDoc(cur, diags, 2))}, nil
	}}
}

// escalationSession builds a two-turn session routed over the fake
// repair models and returns the second (edit) turn plus the router.
func escalationSession(t *testing.T, maxEscalations int) (*chatvis.Turn, *Router) {
	t.Helper()
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	if err := eval.EnsureData(dataDir, 0); err != nil {
		t.Fatal(err)
	}
	oracle, err := llm.NewModel("oracle")
	if err != nil {
		t.Fatal(err)
	}
	cheap := cheapRepairClient(t, oracle)
	strong := strongRepairClient(t, oracle)

	records := []ModelProfile{
		{Model: "cheap-repair", Task: llm.TaskPlanDelta, Score: 1.0, CostWeight: 0.05, Seq: 1},
		{Model: "cheap-repair", Task: llm.TaskPlanRepair, Score: 1.0, CostWeight: 0.05, Seq: 2},
		{Model: "strong-repair", Task: llm.TaskPlanRepair, Score: 1.0, CostWeight: 1.0, Seq: 3},
	}
	specs := DefaultSpecs()
	spec := specs[llm.TaskPlanRepair]
	spec.MaxEscalations = maxEscalations
	specs[llm.TaskPlanRepair] = spec
	router := NewRouter(NewProfileSet(records), specs)
	routed := router.Client("oracle", func(name string) (llm.Client, error) {
		switch name {
		case "cheap-repair":
			return cheap, nil
		case "strong-repair":
			return strong, nil
		}
		return llm.NewModel(name)
	})

	runner := &pvpython.Runner{DataDir: dataDir, OutDir: filepath.Join(dir, "out")}
	sess, err := chatvis.NewSession(routed, runner, chatvis.WithPlanValidation(true))
	if err != nil {
		t.Fatal(err)
	}
	scn, _ := eval.ScenarioByID("iso")
	if _, err := sess.Turn(context.Background(), scn.UserPrompt(480, 270)); err != nil {
		t.Fatal(err)
	}
	turn, err := sess.Turn(context.Background(), "Rotate the view to an isometric direction.")
	if err != nil {
		t.Fatal(err)
	}
	return turn, router
}

func TestEscalationRecoversFailedRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	turn, router := escalationSession(t, 2)
	art := turn.Artifact

	// Both repair attempts are in the trace: the cheap model's failed
	// round, then the escalated strong round.
	var repairModels []string
	var escalations []int
	for _, s := range art.Trace.Stages {
		if strings.HasPrefix(s.Stage, chatvis.StageEditRepair) {
			repairModels = append(repairModels, s.Model)
			escalations = append(escalations, s.Escalation)
		}
	}
	if len(repairModels) != 2 || repairModels[0] != "cheap-repair" || repairModels[1] != "strong-repair" {
		t.Fatalf("repair stages served by %v, want [cheap-repair strong-repair]\ntrace:\n%s",
			repairModels, art.Trace.Format())
	}
	if escalations[0] != 0 || escalations[1] != 1 {
		t.Errorf("escalation provenance = %v, want [0 1]", escalations)
	}
	// The escalated repair recovered the turn.
	if !art.Success {
		t.Errorf("turn failed despite escalation:\n%s", art.Trace.Format())
	}
	if art.Plan == nil || len(plan.Errors(plan.Validate(art.Plan, pvsim.PlanSchema()))) > 0 {
		t.Errorf("final plan still invalid after escalation")
	}
	if got := art.Trace.Models(); len(got) < 2 {
		t.Errorf("Trace.Models() = %v, want both serving models recorded", got)
	}
	if s := router.Snapshot(); s.Escalations != 1 {
		t.Errorf("router counted %d escalations, want 1", s.Escalations)
	}
}

func TestCheapModelAloneFailsWithoutEscalation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	turn, router := escalationSession(t, 0)
	art := turn.Artifact
	// Every repair round stayed on the cheap model, so the broken
	// property survives to the final plan.
	for _, s := range art.Trace.Stages {
		if strings.HasPrefix(s.Stage, chatvis.StageEditRepair) && s.Model != "cheap-repair" {
			t.Fatalf("repair escalated to %q with a zero budget", s.Model)
		}
	}
	if art.Plan == nil {
		t.Fatal("turn produced no plan")
	}
	if len(plan.Errors(plan.Validate(art.Plan, pvsim.PlanSchema()))) == 0 {
		t.Errorf("cheap model alone repaired the plan — the forced failure no longer forces")
	}
	if s := router.Snapshot(); s.Escalations != 0 {
		t.Errorf("router counted %d escalations with a zero budget", s.Escalations)
	}
}
