// Package scriptcmp implements the paper's proposed future extension
// (§V): automated evaluation of generated scripts "even without visual
// output, by systematically analyzing how closely the code matches
// expected outputs".
//
// A script is parsed (with the same Python front end the engine uses) and
// reduced to normalized facts: which pipeline objects are constructed and
// chained, which properties are set to which values, and which control
// calls (Show, ColorBy, SaveScreenshot, camera operations) are made.
// Scripts are then scored by precision/recall over the fact sets plus a
// sequence similarity over the operation order — so a script that calls
// the right filters in the wrong order, or with wrong parameters, scores
// below one that matches the reference exactly, all without rendering a
// single pixel.
package scriptcmp

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"chatvis/internal/plan"
	"chatvis/internal/pvsim"
	"chatvis/internal/pypy"
)

// Facts is the normalized structural content of a script.
type Facts struct {
	// Constructors lists pipeline objects built, as "Class" entries in
	// order of construction.
	Constructors []string
	// Pipeline lists dataflow edges "UpstreamClass->DownstreamClass".
	Pipeline []string
	// Props lists property assignments "Class.Prop=value" (normalized
	// value rendering), including constructor keyword arguments.
	Props []string
	// Calls lists control calls "Func(arg-kinds)" such as Show, ColorBy,
	// SaveScreenshot and camera methods.
	Calls []string
	// Sequence is the full ordered operation stream used for order
	// similarity.
	Sequence []string
}

// Extract parses a script and collects its facts. A syntactically
// invalid script returns an error (it scores zero against anything).
//
// Fact extraction is based on the compiled plan where possible: the
// plan compiler's variable→class resolution is authoritative (it tracks
// constructors, Show results and view creation through real dataflow),
// and pipeline edges come from the plan DAG — which also catches
// positional Input arguments the old keyword-only scan missed. The AST
// walk below still provides the ordered fact stream.
func Extract(script string) (*Facts, error) {
	mod, err := pypy.Parse("script.py", script)
	if err != nil {
		return nil, fmt.Errorf("scriptcmp: %w", err)
	}
	x := &extractor{
		facts:     &Facts{},
		varClass:  map[string]string{},
		planClass: map[string]string{},
	}
	compiled := plan.CompileModule(mod, pvsim.PlanSchema())
	for v, cls := range compiled.VarClass {
		x.planClass[v] = factClass(cls)
	}
	for _, st := range mod.Body {
		x.stmt(st)
	}
	x.facts.Pipeline = compiled.Plan.PipelineEdges()
	return x.facts, nil
}

// factClass maps engine class names to the fact vocabulary.
func factClass(cls string) string {
	if cls == plan.DisplayClass {
		return "Display"
	}
	return cls
}

type extractor struct {
	facts *Facts
	// varClass maps script variables to the proxy class they hold, as
	// tracked by the AST walk in statement order.
	varClass map[string]string
	// planClass is the plan compiler's authoritative resolution, used
	// when the walk has no binding of its own.
	planClass map[string]string
}

// classOf resolves a variable to its class: walk-tracked first, then
// plan-derived, then (strict) name-pattern guessing.
func (x *extractor) classOf(varName string) string {
	if cls, ok := x.varClass[varName]; ok {
		return cls
	}
	if cls, ok := x.planClass[varName]; ok {
		return cls
	}
	return guessClass(varName)
}

// constructorNames are the pipeline object constructors we track.
var constructorNames = map[string]bool{
	"LegacyVTKReader": true, "ExodusIIReader": true, "OpenDataFile": true,
	"Contour": true, "Slice": true, "Clip": true, "Delaunay3D": true,
	"StreamTracer": true, "Tube": true, "Glyph": true, "ExtractSurface": true,
	"Threshold": true, "Transform": true,
}

// controlNames are the module-level calls we track with their salient
// argument renderings.
var controlNames = map[string]bool{
	"Show": true, "Hide": true, "Render": true, "ResetCamera": true,
	"ColorBy": true, "SaveScreenshot": true, "GetActiveViewOrCreate": true,
	"CreateView": true, "CreateLayout": true, "GetColorTransferFunction": true,
	"GetOpacityTransferFunction": true,
}

func (x *extractor) addProp(fact string) {
	x.facts.Props = append(x.facts.Props, fact)
	x.facts.Sequence = append(x.facts.Sequence, fact)
}

func (x *extractor) addCall(fact string) {
	x.facts.Calls = append(x.facts.Calls, fact)
	x.facts.Sequence = append(x.facts.Sequence, fact)
}

func (x *extractor) stmt(st pypy.Stmt) {
	switch s := st.(type) {
	case *pypy.Assign:
		if call, ok := s.Value.(*pypy.Call); ok {
			x.call(call, targets(s.Targets))
			return
		}
		// Attribute assignment: obj.Attr = value or obj.Sub.Attr = value.
		for _, tgt := range s.Targets {
			if attr, ok := tgt.(*pypy.Attribute); ok {
				path := x.attrPath(attr)
				if path != "" {
					x.addProp(path + "=" + renderValue(s.Value))
				}
			}
		}
	case *pypy.ExprStmt:
		if call, ok := s.X.(*pypy.Call); ok {
			x.call(call, nil)
		}
	case *pypy.If:
		for _, sub := range s.Body {
			x.stmt(sub)
		}
		for _, sub := range s.Else {
			x.stmt(sub)
		}
	case *pypy.For:
		for _, sub := range s.Body {
			x.stmt(sub)
		}
	case *pypy.While:
		for _, sub := range s.Body {
			x.stmt(sub)
		}
	}
}

func targets(ts []pypy.Expr) []string {
	var out []string
	for _, t := range ts {
		if n, ok := t.(*pypy.Name); ok {
			out = append(out, n.ID)
		}
	}
	return out
}

// attrPath renders obj.attr chains as "Class.attr[.attr]", resolving the
// base variable to its proxy class.
func (x *extractor) attrPath(a *pypy.Attribute) string {
	var parts []string
	cur := pypy.Expr(a)
	for {
		if at, ok := cur.(*pypy.Attribute); ok {
			parts = append([]string{at.Attr}, parts...)
			cur = at.Value
			continue
		}
		break
	}
	base, ok := cur.(*pypy.Name)
	if !ok {
		return ""
	}
	cls := x.classOf(base.ID)
	if cls == "" {
		return ""
	}
	return cls + "." + strings.Join(parts, ".")
}

// Strict conventional-name patterns, used only when neither the AST walk
// nor the compiled plan resolved the variable. A name must *be* a
// view/display name — "renderView1", "view", "display2", "tubeDisplay" —
// not merely contain the substring: "preview" and "inside_out_display1"
// hold arbitrary values and must not be classified.
var (
	guessViewRe    = regexp.MustCompile(`^(?:render)?[Vv]iew\d*$`)
	guessDisplayRe = regexp.MustCompile(`^(?:[A-Za-z][A-Za-z0-9]*Display\d*|display\d*|representation\d*)$`)
)

// guessClass recognizes conventional variable names when the binding was
// not seen (e.g. fragments referencing GetActiveViewOrCreate results
// from elided code).
func guessClass(varName string) string {
	switch {
	case guessViewRe.MatchString(varName):
		return "RenderView"
	case guessDisplayRe.MatchString(varName):
		return "Display"
	}
	return ""
}

func (x *extractor) call(c *pypy.Call, assignedTo []string) {
	name := ""
	recvClass := ""
	switch f := c.Func.(type) {
	case *pypy.Name:
		name = f.ID
	case *pypy.Attribute:
		// Method call obj.Method(...).
		if base, ok := f.Value.(*pypy.Name); ok {
			recvClass = x.classOf(base.ID)
		} else if attr, ok := f.Value.(*pypy.Attribute); ok {
			recvClass = x.attrPath(attr)
		}
		name = f.Attr
	default:
		return
	}

	switch {
	case constructorNames[name]:
		x.facts.Constructors = append(x.facts.Constructors, name)
		x.facts.Sequence = append(x.facts.Sequence, "new:"+name)
		for _, v := range assignedTo {
			x.varClass[v] = name
		}
		// Pipeline edges come from the compiled plan DAG (Extract), which
		// also resolves positional Input arguments; only property facts
		// are collected here.
		for i, kw := range c.KwNames {
			switch kw {
			case "registrationName", "Input":
				continue
			}
			x.addProp(name + "." + kw + "=" + renderValue(c.KwValues[i]))
		}
	case name == "GetActiveViewOrCreate" || name == "CreateView" || name == "CreateRenderView":
		for _, v := range assignedTo {
			x.varClass[v] = "RenderView"
		}
		x.addCall(name + "()")
	case name == "Show":
		for _, v := range assignedTo {
			x.varClass[v] = "Display"
		}
		shown := ""
		if len(c.Args) > 0 {
			if n, ok := c.Args[0].(*pypy.Name); ok {
				shown = x.classOf(n.ID)
			}
		}
		x.addCall("Show(" + shown + ")")
	case recvClass != "":
		// Proxy method call (takes precedence over module functions with
		// the same name, e.g. view.ResetCamera() vs ResetCamera()).
		var args []string
		for _, a := range c.Args {
			args = append(args, renderValue(a))
		}
		x.addCall(recvClass + "." + name + "(" + strings.Join(args, ", ") + ")")
	case controlNames[name]:
		var args []string
		for _, a := range c.Args {
			args = append(args, renderArgKind(a, x))
		}
		for i, kw := range c.KwNames {
			args = append(args, kw+"="+renderValue(c.KwValues[i]))
		}
		x.addCall(name + "(" + strings.Join(args, ", ") + ")")
	}
}

// renderArgKind renders ColorBy-style arguments: variables by class,
// literals by value.
func renderArgKind(e pypy.Expr, x *extractor) string {
	if n, ok := e.(*pypy.Name); ok {
		if cls := x.classOf(n.ID); cls != "" {
			return cls
		}
		return "?"
	}
	return renderValue(e)
}

// renderValue renders literal expressions canonically.
func renderValue(e pypy.Expr) string {
	switch v := e.(type) {
	case *pypy.NumLit:
		if v.IsInt {
			return fmt.Sprintf("%d", v.Int)
		}
		return trimFloat(v.Float)
	case *pypy.StrLit:
		return "'" + v.Value + "'"
	case *pypy.BoolLit:
		if v.Value {
			return "True"
		}
		return "False"
	case *pypy.NoneLit:
		return "None"
	case *pypy.ListLit:
		return "[" + renderSeq(v.Elts) + "]"
	case *pypy.TupleLit:
		return "[" + renderSeq(v.Elts) + "]" // tuples normalize to lists
	case *pypy.UnaryOp:
		if v.Op == "-" {
			return "-" + renderValue(v.X)
		}
	}
	return "<expr>"
}

func renderSeq(elts []pypy.Expr) string {
	parts := make([]string, len(elts))
	for i, e := range elts {
		parts[i] = renderValue(e)
	}
	return strings.Join(parts, ", ")
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// Score is the structural-similarity result.
type Score struct {
	// ConstructorF1 compares the multiset of pipeline objects built.
	ConstructorF1 float64
	// PipelineF1 compares dataflow edges.
	PipelineF1 float64
	// PropF1 compares property assignments (name and value).
	PropF1 float64
	// CallF1 compares control calls.
	CallF1 float64
	// SeqSim is the normalized longest-common-subsequence similarity of
	// the full operation streams.
	SeqSim float64
	// Overall is the weighted combination used for ranking.
	Overall float64
}

// String renders the score compactly.
func (s Score) String() string {
	return fmt.Sprintf("ctor=%.2f pipe=%.2f prop=%.2f call=%.2f seq=%.2f overall=%.2f",
		s.ConstructorF1, s.PipelineF1, s.PropF1, s.CallF1, s.SeqSim, s.Overall)
}

// CompareFacts scores extracted facts against a reference.
func CompareFacts(got, want *Facts) Score {
	var s Score
	s.ConstructorF1 = multisetF1(got.Constructors, want.Constructors)
	s.PipelineF1 = multisetF1(got.Pipeline, want.Pipeline)
	s.PropF1 = multisetF1(got.Props, want.Props)
	s.CallF1 = multisetF1(got.Calls, want.Calls)
	s.SeqSim = lcsSimilarity(got.Sequence, want.Sequence)
	s.Overall = 0.25*s.ConstructorF1 + 0.15*s.PipelineF1 +
		0.25*s.PropF1 + 0.2*s.CallF1 + 0.15*s.SeqSim
	return s
}

// Compare parses both scripts and scores got against want. A got-script
// that fails to parse scores zero; a want-script that fails to parse is
// an error (the reference must be valid).
func Compare(got, want string) (Score, error) {
	wantFacts, err := Extract(want)
	if err != nil {
		return Score{}, fmt.Errorf("scriptcmp: reference script invalid: %w", err)
	}
	gotFacts, err := Extract(got)
	if err != nil {
		return Score{}, nil // unparsable candidate scores zero
	}
	return CompareFacts(gotFacts, wantFacts), nil
}

// multisetF1 computes the F1 overlap of two string multisets.
func multisetF1(got, want []string) float64 {
	if len(got) == 0 && len(want) == 0 {
		return 1
	}
	if len(got) == 0 || len(want) == 0 {
		return 0
	}
	count := map[string]int{}
	for _, w := range want {
		count[w]++
	}
	match := 0
	for _, g := range got {
		if count[g] > 0 {
			count[g]--
			match++
		}
	}
	precision := float64(match) / float64(len(got))
	recall := float64(match) / float64(len(want))
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// lcsSimilarity is 2*LCS/(len(a)+len(b)).
func lcsSimilarity(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	lcs := prev[len(b)]
	return 2 * float64(lcs) / float64(len(a)+len(b))
}

// Diff reports the facts present in want but missing from got, and vice
// versa — the "systematic analysis" output for inspecting near-misses.
func Diff(got, want *Facts) (missing, extra []string) {
	missing = multisetDiff(want.all(), got.all())
	extra = multisetDiff(got.all(), want.all())
	sort.Strings(missing)
	sort.Strings(extra)
	return missing, extra
}

func (f *Facts) all() []string {
	var out []string
	for _, c := range f.Constructors {
		out = append(out, "new:"+c)
	}
	out = append(out, f.Pipeline...)
	out = append(out, f.Props...)
	out = append(out, f.Calls...)
	return out
}

func multisetDiff(a, b []string) []string {
	count := map[string]int{}
	for _, s := range b {
		count[s]++
	}
	var out []string
	for _, s := range a {
		if count[s] > 0 {
			count[s]--
			continue
		}
		out = append(out, s)
	}
	return out
}
