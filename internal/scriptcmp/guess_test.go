package scriptcmp

import (
	"strings"
	"testing"
)

// TestGuessClassFalsePositives: names merely *containing* "view" or
// "display" must not be classified — the old substring match turned
// `preview` into a RenderView and `inside_out_display1` into a Display,
// polluting fact sets with phantom property assignments.
func TestGuessClassFalsePositives(t *testing.T) {
	for _, name := range []string{
		"preview", "overview", "inside_out_display1", "displayed_count",
		"viewport_helper", "my_preview2",
	} {
		if got := guessClass(name); got != "" {
			t.Errorf("guessClass(%q) = %q, want \"\"", name, got)
		}
	}
	for name, want := range map[string]string{
		"renderView1":  "RenderView",
		"renderview2":  "RenderView",
		"view":         "RenderView",
		"View3":        "RenderView",
		"display1":     "Display",
		"tubeDisplay":  "Display",
		"clip1Display": "Display",
	} {
		if got := guessClass(name); got != want {
			t.Errorf("guessClass(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestExtractIgnoresMisleadingNames: a script using look-alike variable
// names yields no phantom RenderView/Display facts.
func TestExtractIgnoresMisleadingNames(t *testing.T) {
	src := `from paraview.simple import *
preview = 5
preview.Opacity = 0.5
inside_out_display1 = make_thing()
inside_out_display1.Foo = [1, 2]
`
	f, err := Extract(src)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(f.Props, "\n")
	if strings.Contains(joined, "RenderView") || strings.Contains(joined, "Display") {
		t.Errorf("phantom class facts from misleading names:\n%s", joined)
	}
}

// TestExtractPrefersPlanClasses: variables bound through real dataflow
// resolve via the compiled plan, even in arg-kind rendering of calls the
// walk alone cannot type.
func TestExtractPrefersPlanClasses(t *testing.T) {
	src := `from paraview.simple import *
reader = OpenDataFile('ml-100.vtk')
contour1 = Contour(reader)
contour1.Isosurfaces = [0.5]
renderView1 = GetActiveViewOrCreate('RenderView')
d = Show(contour1, renderView1)
`
	f, err := Extract(src)
	if err != nil {
		t.Fatal(err)
	}
	// The positional Input edge is resolved through the plan DAG.
	found := false
	for _, e := range f.Pipeline {
		if e == "LegacyVTKReader->Contour" {
			found = true
		}
	}
	if !found {
		t.Errorf("positional-input pipeline edge missing: %v", f.Pipeline)
	}
	calls := strings.Join(f.Calls, "\n")
	if !strings.Contains(calls, "Show(Contour)") {
		t.Errorf("Show target class unresolved:\n%s", calls)
	}
}
