package scriptcmp

import (
	"strings"
	"testing"
	"testing/quick"
)

const refScript = `from paraview.simple import *
reader = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])
contour1 = Contour(registrationName='Contour1', Input=reader)
contour1.ContourBy = ['POINTS', 'var0']
contour1.Isosurfaces = [0.5]
renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [1920, 1080]
contour1Display = Show(contour1, renderView1)
renderView1.ResetCamera()
SaveScreenshot('ml-iso.png', renderView1,
    ImageResolution=[1920, 1080],
    OverrideColorPalette='WhiteBackground')
`

func TestExtractFacts(t *testing.T) {
	f, err := Extract(refScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Constructors) != 2 || f.Constructors[0] != "LegacyVTKReader" || f.Constructors[1] != "Contour" {
		t.Errorf("constructors = %v", f.Constructors)
	}
	if len(f.Pipeline) != 1 || f.Pipeline[0] != "LegacyVTKReader->Contour" {
		t.Errorf("pipeline = %v", f.Pipeline)
	}
	joined := strings.Join(f.Props, "\n")
	for _, want := range []string{
		"Contour.ContourBy=['POINTS', 'var0']",
		"Contour.Isosurfaces=[0.5]",
		"RenderView.ViewSize=[1920, 1080]",
		"LegacyVTKReader.FileNames=['ml-100.vtk']",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("props missing %q in:\n%s", want, joined)
		}
	}
	calls := strings.Join(f.Calls, "\n")
	for _, want := range []string{
		"Show(Contour)",
		"RenderView.ResetCamera()",
		"SaveScreenshot(",
		"OverrideColorPalette='WhiteBackground'",
	} {
		if !strings.Contains(calls, want) {
			t.Errorf("calls missing %q in:\n%s", want, calls)
		}
	}
}

func TestIdenticalScriptsScoreOne(t *testing.T) {
	s, err := Compare(refScript, refScript)
	if err != nil {
		t.Fatal(err)
	}
	if s.Overall < 0.999 || s.PropF1 < 0.999 || s.SeqSim < 0.999 {
		t.Errorf("score = %s", s)
	}
}

func TestWrongParameterLowersPropScore(t *testing.T) {
	wrongValue := strings.Replace(refScript, "Isosurfaces = [0.5]", "Isosurfaces = [0.7]", 1)
	s, err := Compare(wrongValue, refScript)
	if err != nil {
		t.Fatal(err)
	}
	if s.PropF1 >= 1 {
		t.Errorf("wrong isovalue should lower PropF1: %s", s)
	}
	if s.ConstructorF1 != 1 {
		t.Errorf("constructors unchanged, F1 = %v", s.ConstructorF1)
	}
	if s.Overall >= 0.999 {
		t.Errorf("overall should drop: %s", s)
	}
}

func TestMissingFilterLowersScore(t *testing.T) {
	noContour := `from paraview.simple import *
reader = LegacyVTKReader(FileNames=['ml-100.vtk'])
renderView1 = GetActiveViewOrCreate('RenderView')
d = Show(reader, renderView1)
SaveScreenshot('ml-iso.png', renderView1, ImageResolution=[1920, 1080])
`
	s, err := Compare(noContour, refScript)
	if err != nil {
		t.Fatal(err)
	}
	if s.ConstructorF1 >= 1 || s.Overall > 0.8 {
		t.Errorf("missing Contour should hurt: %s", s)
	}
}

func TestOrderMattersForSeqSim(t *testing.T) {
	// Same facts, camera reset before Show instead of after.
	reordered := `from paraview.simple import *
reader = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])
contour1 = Contour(registrationName='Contour1', Input=reader)
contour1.Isosurfaces = [0.5]
contour1.ContourBy = ['POINTS', 'var0']
renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ResetCamera()
renderView1.ViewSize = [1920, 1080]
contour1Display = Show(contour1, renderView1)
SaveScreenshot('ml-iso.png', renderView1,
    ImageResolution=[1920, 1080],
    OverrideColorPalette='WhiteBackground')
`
	s, err := Compare(reordered, refScript)
	if err != nil {
		t.Fatal(err)
	}
	if s.PropF1 < 0.99 || s.CallF1 < 0.99 {
		t.Errorf("fact sets should match: %s", s)
	}
	if s.SeqSim >= 1 {
		t.Errorf("sequence similarity should notice reordering: %s", s)
	}
}

func TestUnparsableCandidateScoresZero(t *testing.T) {
	s, err := Compare("x = (1 +\n", refScript)
	if err != nil {
		t.Fatal(err)
	}
	if s.Overall != 0 {
		t.Errorf("unparsable candidate = %s", s)
	}
	// Invalid reference is an error.
	if _, err := Compare(refScript, "x = (1 +\n"); err == nil {
		t.Error("invalid reference should error")
	}
}

func TestHallucinatedAttributesShowInDiff(t *testing.T) {
	halluc := strings.Replace(refScript,
		"contour1.ContourBy = ['POINTS', 'var0']",
		"contour1.ContourScalars = ['POINTS', 'var0']", 1)
	got, err := Extract(halluc)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Extract(refScript)
	missing, extra := Diff(got, want)
	if len(missing) == 0 || len(extra) == 0 {
		t.Fatalf("diff should flag the renamed property: missing=%v extra=%v", missing, extra)
	}
	foundMissing, foundExtra := false, false
	for _, m := range missing {
		if strings.Contains(m, "ContourBy") {
			foundMissing = true
		}
	}
	for _, e := range extra {
		if strings.Contains(e, "ContourScalars") {
			foundExtra = true
		}
	}
	if !foundMissing || !foundExtra {
		t.Errorf("diff misses the rename: missing=%v extra=%v", missing, extra)
	}
}

func TestAttributeChainPaths(t *testing.T) {
	src := `from paraview.simple import *
slice1 = Slice(registrationName='S', SliceType='Plane')
slice1.SliceType.Origin = [0.0, 0.0, 0.0]
slice1.SliceType.Normal = [1.0, 0.0, 0.0]
`
	f, err := Extract(src)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(f.Props, "\n")
	if !strings.Contains(joined, "Slice.SliceType.Origin=[0, 0, 0]") {
		t.Errorf("nested property path missing:\n%s", joined)
	}
}

func TestMultisetF1Properties(t *testing.T) {
	if multisetF1(nil, nil) != 1 {
		t.Error("empty vs empty should be 1")
	}
	if multisetF1([]string{"a"}, nil) != 0 || multisetF1(nil, []string{"a"}) != 0 {
		t.Error("empty vs non-empty should be 0")
	}
	// Symmetry property.
	f := func(a, b []string) bool {
		// Constrain to a tiny alphabet so collisions happen.
		norm := func(in []string) []string {
			out := make([]string, 0, len(in))
			for _, s := range in {
				if len(s) > 0 {
					out = append(out, string(s[0]%4+'a'))
				}
			}
			return out
		}
		na, nb := norm(a), norm(b)
		d1 := multisetF1(na, nb)
		d2 := multisetF1(nb, na)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLCSSimilarityProperties(t *testing.T) {
	f := func(raw []string) bool {
		norm := make([]string, 0, len(raw))
		for _, s := range raw {
			if len(s) > 0 {
				norm = append(norm, string(s[0]%3+'x'))
			}
		}
		// Identity and bounds.
		if lcsSimilarity(norm, norm) != 1 && len(norm) > 0 {
			return false
		}
		v := lcsSimilarity(norm, append([]string{"q"}, norm...))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
