package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testPeers(addrs ...string) []Peer {
	peers := make([]Peer, len(addrs))
	for i, a := range addrs {
		peers[i] = Peer{ID: fmt.Sprintf("n%d", i+1), Addr: a}
	}
	return peers
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("n1=127.0.0.1:8081, n2=127.0.0.1:8082")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].ID != "n1" || peers[1].Addr != "127.0.0.1:8082" {
		t.Fatalf("parsed %+v", peers)
	}
	for _, bad := range []string{"", "oops", "n1=", "=addr", "n1=a,n1=b"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) should fail", bad)
		}
	}
}

func TestClusterOwnerFailsOverWhenMarkedDown(t *testing.T) {
	c, err := New(Config{NodeID: "n1", Peers: testPeers("a:1", "b:2", "c:3")})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key the fleet does NOT route to us, then kill its owner:
	// the key must fail over to its second preference, deterministically.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("probe-%d", i)
		if owner, _ := c.Owner(key); owner.ID != "n1" {
			break
		}
	}
	owner, ok := c.Owner(key)
	if !ok {
		t.Fatal("no owner")
	}
	prefs := c.Owners(key, 3)
	c.MarkAlive(owner.ID, false)
	next, ok := c.Owner(key)
	if !ok || next.ID == owner.ID {
		t.Fatalf("dead owner still routed: %+v", next)
	}
	if next.ID != prefs[1].ID {
		t.Errorf("failover owner = %s, want preference order %v", next.ID, prefs)
	}
	c.MarkAlive(owner.ID, true)
	back, _ := c.Owner(key)
	if back.ID != owner.ID {
		t.Errorf("revived owner not restored: %s, want %s", back.ID, owner.ID)
	}
	// Self is always alive, even if someone marks it down.
	c.MarkAlive("n1", false)
	if !c.Alive("n1") {
		t.Error("self must always be alive")
	}
}

func TestClusterProbeSweep(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	c, err := New(Config{
		NodeID: "self",
		Peers: []Peer{
			{ID: "self", Addr: "127.0.0.1:0"},
			{ID: "peer", Addr: peer.Listener.Addr().String()},
		},
		ProbeTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.ProbeOnce(context.Background())
	if !c.Alive("peer") {
		t.Fatal("healthy peer probed down")
	}
	healthy.Store(false)
	c.ProbeOnce(context.Background())
	if c.Alive("peer") {
		t.Fatal("unhealthy peer probed up")
	}
	if got := c.HealthyCount(); got != 1 {
		t.Errorf("healthy count = %d, want 1 (just self)", got)
	}
	healthy.Store(true)
	c.ProbeOnce(context.Background())
	if !c.Alive("peer") {
		t.Fatal("recovered peer not probed back up")
	}
	if got := c.HealthyCount(); got != 2 {
		t.Errorf("healthy count = %d, want 2", got)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{NodeID: "nope", Peers: testPeers("a:1")}); err == nil {
		t.Error("node id outside the peer list must fail")
	}
	if _, err := New(Config{NodeID: "", Peers: testPeers("a:1")}); err == nil {
		t.Error("empty node id must fail")
	}
	if _, err := New(Config{NodeID: "n1", Peers: []Peer{{ID: "n1", Addr: "a"}, {ID: "n1", Addr: "b"}}}); err == nil {
		t.Error("duplicate peer ids must fail")
	}
}
