package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Peer is one fleet member: a stable node ID plus the host:port its
// HTTP API listens on.
type Peer struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// PeerHealth is a Peer plus its current liveness, the /healthz and
// /metrics projection.
type PeerHealth struct {
	Peer
	Healthy bool `json:"healthy"`
	Self    bool `json:"self,omitempty"`
}

// Config wires a Cluster.
type Config struct {
	// NodeID names this node; it must appear in Peers.
	NodeID string
	// Peers is the static fleet membership, this node included.
	Peers []Peer
	// VirtualNodes per peer on the ring (default DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval between health sweeps (default 5s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one peer probe (default 2s).
	ProbeTimeout time.Duration
	// HTTPClient performs probes (default http.DefaultClient).
	HTTPClient *http.Client
}

// Cluster is the node-local view of the fleet: the shard ring, the
// peer table and probe-driven liveness. Routing decisions (Owner,
// Owners) skip peers currently marked down, so keys fail over to the
// next node in their preference order until the probe loop sees the
// peer healthy again.
type Cluster struct {
	self   Peer
	peers  []Peer
	byID   map[string]Peer
	ring   *Ring
	client *http.Client

	probeInterval time.Duration
	probeTimeout  time.Duration

	mu    sync.Mutex
	alive map[string]bool

	stopOnce sync.Once
	stopped  chan struct{}
}

// ParsePeers reads a "-peers" flag value: comma-separated id=host:port
// entries, e.g. "n1=127.0.0.1:8081,n2=127.0.0.1:8082".
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	seen := map[string]bool{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, addr, ok := strings.Cut(entry, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=host:port)", entry)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, Addr: addr})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return peers, nil
}

// New builds the node-local cluster view. Every peer starts optimistic
// (alive) so a fleet can boot in any order; the probe loop corrects
// the picture within one interval.
func New(cfg Config) (*Cluster, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: node id is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 5 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	c := &Cluster{
		client:        cfg.HTTPClient,
		probeInterval: cfg.ProbeInterval,
		probeTimeout:  cfg.ProbeTimeout,
		byID:          map[string]Peer{},
		alive:         map[string]bool{},
		stopped:       make(chan struct{}),
	}
	ids := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p.ID == "" || p.Addr == "" {
			return nil, fmt.Errorf("cluster: peer needs id and addr: %+v", p)
		}
		if _, dup := c.byID[p.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", p.ID)
		}
		c.byID[p.ID] = p
		c.alive[p.ID] = true
		ids = append(ids, p.ID)
	}
	self, ok := c.byID[cfg.NodeID]
	if !ok {
		return nil, fmt.Errorf("cluster: node id %q is not in the peer list", cfg.NodeID)
	}
	c.self = self
	c.peers = append([]Peer(nil), cfg.Peers...)
	sort.Slice(c.peers, func(i, j int) bool { return c.peers[i].ID < c.peers[j].ID })
	c.ring = NewRing(ids, cfg.VirtualNodes)
	return c, nil
}

// Self returns this node's peer entry.
func (c *Cluster) Self() Peer { return c.self }

// Client returns the HTTP client probes use, shared with forwarding
// paths so they see the same transport configuration.
func (c *Cluster) Client() *http.Client { return c.client }

// IsSelf reports whether the peer is this node.
func (c *Cluster) IsSelf(p Peer) bool { return p.ID == c.self.ID }

// Peers returns the full membership, sorted by ID.
func (c *Cluster) Peers() []Peer {
	out := make([]Peer, len(c.peers))
	copy(out, c.peers)
	return out
}

// Peer looks a member up by ID.
func (c *Cluster) Peer(id string) (Peer, bool) {
	p, ok := c.byID[id]
	return p, ok
}

// Alive reports whether the node is currently considered healthy. This
// node itself is always alive from its own point of view.
func (c *Cluster) Alive(id string) bool {
	if id == c.self.ID {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alive[id]
}

// MarkAlive records a liveness observation. Forwarding paths call it
// with false on connection errors so routing fails over immediately
// instead of waiting for the next probe sweep; the probe loop calls it
// with true once the peer answers again.
func (c *Cluster) MarkAlive(id string, ok bool) {
	if id == c.self.ID {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, known := c.byID[id]; known {
		c.alive[id] = ok
	}
}

// Owner returns the healthy owner of a key (session ID, job key,
// plan-hash coalescing key). ok is false only when every member is
// down, which cannot happen from a live node's view (self is always
// alive).
func (c *Cluster) Owner(key string) (Peer, bool) {
	id, ok := c.ring.Owner(key, c.Alive)
	if !ok {
		return Peer{}, false
	}
	return c.byID[id], true
}

// Owners returns up to n peers in the key's failover preference order,
// dead or alive — callers that want liveness filtering use Owner.
func (c *Cluster) Owners(key string, n int) []Peer {
	ids := c.ring.Owners(key, n)
	out := make([]Peer, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.byID[id])
	}
	return out
}

// Health returns the per-peer liveness table, self first.
func (c *Cluster) Health() []PeerHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PeerHealth, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, PeerHealth{
			Peer:    p,
			Healthy: p.ID == c.self.ID || c.alive[p.ID],
			Self:    p.ID == c.self.ID,
		})
	}
	return out
}

// HealthyCount returns how many members (self included) are alive.
func (c *Cluster) HealthyCount() int {
	n := 0
	for _, h := range c.Health() {
		if h.Healthy {
			n++
		}
	}
	return n
}

// ProbeOnce sweeps every peer's /healthz synchronously and updates the
// liveness table. The probe loop calls it on a ticker; tests and the
// smoke target call it directly for a deterministic picture.
func (c *Cluster) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range c.peers {
		if p.ID == c.self.ID {
			continue
		}
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			c.MarkAlive(p.ID, c.probe(ctx, p))
		}(p)
	}
	wg.Wait()
}

// probe asks one peer whether it is alive.
func (c *Cluster) probe(ctx context.Context, p Peer) bool {
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+p.Addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Start launches the background probe loop; Stop ends it.
func (c *Cluster) Start() {
	go func() {
		ticker := time.NewTicker(c.probeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stopped:
				return
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(context.Background(), c.probeInterval)
				c.ProbeOnce(ctx)
				cancel()
			}
		}
	}()
}

// Stop ends the probe loop (idempotent).
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stopped) })
}
