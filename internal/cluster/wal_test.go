package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func openWAL(t *testing.T, dir string) *WAL {
	t.Helper()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWALReplaysExactlyUnfinished(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if got := w.Recovered(); len(got) != 0 {
		t.Fatalf("fresh wal recovered %d records", len(got))
	}

	type req struct {
		Prompt string `json:"prompt"`
	}
	// j1 runs to completion, j2 starts but never finishes, j3 is
	// accepted but never picked up, t1 is a finished turn.
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Accepted(KindJob, "", "j1", "key1", req{Prompt: "one"}))
	must(w.Accepted(KindJob, "", "j2", "key2", req{Prompt: "two"}))
	must(w.Accepted(KindTurn, "s-1", "turn-1", "tkey", req{Prompt: "edit"}))
	must(w.Started(KindJob, "", "j1"))
	must(w.Started(KindJob, "", "j2"))
	must(w.Completed(KindJob, "", "j1"))
	must(w.Accepted(KindJob, "", "j3", "key3", req{Prompt: "three"}))
	must(w.Started(KindTurn, "s-1", "turn-1"))
	must(w.Completed(KindTurn, "s-1", "turn-1"))
	if got := w.Backlog(); got != 2 {
		t.Fatalf("backlog = %d, want 2", got)
	}
	must(w.Close())

	// "Crash" and reopen: exactly j2 (started) and j3 (accepted) replay,
	// in accept order; completed work never does.
	w2 := openWAL(t, dir)
	recs := w2.Recovered()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2: %+v", len(recs), recs)
	}
	if recs[0].ID != "j2" || recs[0].State != StateStarted {
		t.Errorf("recovered[0] = %s/%s, want j2/started", recs[0].ID, recs[0].State)
	}
	if recs[1].ID != "j3" || recs[1].State != StateAccepted {
		t.Errorf("recovered[1] = %s/%s, want j3/accepted", recs[1].ID, recs[1].State)
	}
	var r req
	if err := json.Unmarshal(recs[1].Request, &r); err != nil || r.Prompt != "three" {
		t.Errorf("recovered request = %q (%v), want prompt three", recs[1].Request, err)
	}

	// Retiring the replayed work (as the queue does after re-submitting)
	// empties the backlog; a third open recovers nothing — no duplicate
	// replay for delivered entries.
	must(w2.Superseded(recs[0], "j2-replayed"))
	must(w2.Completed(KindJob, "", "j3"))
	if got := w2.Backlog(); got != 0 {
		t.Fatalf("backlog after retirement = %d, want 0", got)
	}
	must(w2.Close())
	w3 := openWAL(t, dir)
	if got := w3.Recovered(); len(got) != 0 {
		t.Fatalf("third open recovered %d records, want 0: %+v", len(got), got)
	}
	w3.Close()
}

func TestWALTornTailIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Accepted(KindJob, "", "j1", "k1", map[string]string{"p": "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Accepted(KindJob, "", "j2", "k2", map[string]string{"p": "b"}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the final record: chop a few bytes off the segment.
	path := filepath.Join(dir, walSegment)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openWAL(t, dir)
	recs := w2.Recovered()
	if len(recs) != 1 || recs[0].ID != "j1" {
		t.Fatalf("torn tail: recovered %+v, want just j1", recs)
	}
	w2.Close()
}

func TestWALCorruptChecksumStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	if err := w.Accepted(KindJob, "", "j1", "k1", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Accepted(KindJob, "", "j2", "k2", nil); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Flip a payload byte in the middle of the file: the checksum fails
	// and replay keeps only the intact prefix.
	path := filepath.Join(dir, walSegment)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir)
	if recs := w2.Recovered(); len(recs) > 1 {
		t.Fatalf("corrupt record replayed: %+v", recs)
	}
	w2.Close()
}

func TestWALCompactionPreservesPending(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir)
	// One long-lived pending job surrounded by enough finished work to
	// trigger in-place compaction.
	if err := w.Accepted(KindJob, "", "keepme", "key", map[string]string{"p": "keep"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < compactAfterTerminal+10; i++ {
		id := "j" + string(rune('a'+i%26)) + "-" + string(rune('0'+i%10)) + "-" + itoa(i)
		if err := w.Accepted(KindJob, "", id, "k", nil); err != nil {
			t.Fatal(err)
		}
		if err := w.Completed(KindJob, "", id); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Backlog(); got != 1 {
		t.Fatalf("backlog = %d, want 1", got)
	}
	// The segment must have been rewritten small: far below the raw
	// append volume.
	info, err := os.Stat(filepath.Join(dir, walSegment))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 64<<10 {
		t.Errorf("segment is %d bytes after compaction — terminal history not dropped", info.Size())
	}
	w.Close()

	w2 := openWAL(t, dir)
	recs := w2.Recovered()
	if len(recs) != 1 || recs[0].ID != "keepme" {
		t.Fatalf("compaction lost the pending entry: %+v", recs)
	}
	w2.Close()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	w := openWAL(t, t.TempDir())
	w.Close()
	if err := w.Accepted(KindJob, "", "j1", "k", nil); err == nil {
		t.Error("append after close must fail")
	}
}
