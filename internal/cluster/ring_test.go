package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndDistinct(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r1 := NewRing(nodes, 64)
	r2 := NewRing([]string{"n3", "n1", "n2", "n2"}, 64) // order/dupes must not matter
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		a, ok := r1.Owner(key, nil)
		if !ok {
			t.Fatalf("no owner for %s", key)
		}
		b, _ := r2.Owner(key, nil)
		if a != b {
			t.Fatalf("owner of %s differs across construction orders: %s vs %s", key, a, b)
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := NewRing(nodes, 64)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		owner, _ := r.Owner(fmt.Sprintf("key-%d", i), nil)
		counts[owner]++
	}
	for _, n := range nodes {
		if counts[n] < keys/10 {
			t.Errorf("node %s owns only %d/%d keys — ring is badly unbalanced: %v",
				n, counts[n], keys, counts)
		}
	}
}

// TestRingConsistencyOnFailure is the consistent-hashing property: when
// a node dies, only its keys move; keys owned by surviving nodes keep
// their owner.
func TestRingConsistencyOnFailure(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 64)
	allAlive := func(string) bool { return true }
	n2Dead := func(n string) bool { return n != "n2" }
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, _ := r.Owner(key, allAlive)
		after, ok := r.Owner(key, n2Dead)
		if !ok || after == "n2" {
			t.Fatalf("key %s routed to dead node", key)
		}
		if before == "n2" {
			moved++
			continue
		}
		if before != after {
			t.Errorf("key %s owned by surviving %s moved to %s", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingOwnersPreferenceOrder(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 32)
	owners := r.Owners("some-key", 3)
	if len(owners) != 3 {
		t.Fatalf("Owners returned %d nodes, want 3", len(owners))
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner %s in %v", o, owners)
		}
		seen[o] = true
	}
	// The failover owner must be what Owner returns when the primary dies.
	primary := owners[0]
	failover, _ := r.Owner("some-key", func(n string) bool { return n != primary })
	if failover != owners[1] {
		t.Errorf("failover owner %s, want Owners()[1] = %s", failover, owners[1])
	}
}

func TestRingEmptyAndAllDead(t *testing.T) {
	if _, ok := NewRing(nil, 8).Owner("k", nil); ok {
		t.Error("empty ring must have no owner")
	}
	r := NewRing([]string{"n1"}, 8)
	if _, ok := r.Owner("k", func(string) bool { return false }); ok {
		t.Error("all-dead ring must have no owner")
	}
}
