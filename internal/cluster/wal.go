package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The write-ahead log extends the artifact store's restart-surviving
// property to in-flight work: every accepted job or session turn is
// appended (and fsynced) before it is enqueued, state transitions
// follow as the work starts and finishes, and on startup the unfinished
// suffix is replayed into the queue so a crash loses no accepted work.
//
// On-disk format, one segment file ("wal.log"), records back to back:
//
//	uint32  payload length (big endian)
//	uint32  CRC-32 (IEEE) of the payload
//	[]byte  payload: one JSON-encoded Record
//
// A torn tail (crash mid-append) fails the length or checksum read and
// is discarded; everything before it replays. Completed entries are
// dropped when the segment is compacted — at open, and whenever enough
// terminal records have accumulated during normal operation.

// RecordKind distinguishes one-shot jobs from session turns.
type RecordKind string

// Record kinds.
const (
	KindJob  RecordKind = "job"
	KindTurn RecordKind = "turn"
)

// RecordState is one WAL lifecycle transition.
type RecordState string

// Record states. Accepted and Started entries without a matching
// terminal entry are replayed after a crash; Completed and Failed are
// terminal.
const (
	StateAccepted  RecordState = "accepted"
	StateStarted   RecordState = "started"
	StateCompleted RecordState = "completed"
	StateFailed    RecordState = "failed"
)

// Record is one WAL entry. Accepted records carry the full request so
// replay can re-submit without any other state; transition records
// carry just the identity.
type Record struct {
	Kind  RecordKind  `json:"kind"`
	State RecordState `json:"state"`
	// ID is the job ID (KindJob) or turn ID (KindTurn).
	ID string `json:"id"`
	// Session scopes turn IDs (turn IDs repeat across sessions).
	Session string `json:"session,omitempty"`
	// Key is the coalescing key the work was accepted under.
	Key string `json:"key,omitempty"`
	// Request is the accepted submission body (JSON), replayed verbatim.
	Request json.RawMessage `json:"request,omitempty"`
	Error   string          `json:"error,omitempty"`
	Time    time.Time       `json:"time"`
}

// walIdentity scopes pending-entry bookkeeping: turn IDs are only
// unique within a session.
func walIdentity(kind RecordKind, session, id string) string {
	return string(kind) + "\x00" + session + "\x00" + id
}

// pendingEntry tracks one accepted-but-unfinished piece of work.
type pendingEntry struct {
	accepted Record
	started  bool
}

// WAL is a per-node durable log of accepted work. All methods are safe
// for concurrent use. Appends fsync before returning, so an accepted
// submission acknowledged to a client survives power loss.
type WAL struct {
	dir  string
	path string

	mu        sync.Mutex
	f         *os.File
	closed    bool
	pending   map[string]*pendingEntry
	order     []string // pending identities in accept order
	recovered []Record
	terminal  int // terminal records in the current segment
}

// walSegment is the segment file name inside the WAL directory.
const walSegment = "wal.log"

// compactAfterTerminal triggers segment compaction once this many
// terminal records have accumulated; pending records are rewritten into
// a fresh segment and history is dropped.
const compactAfterTerminal = 512

// OpenWAL opens (creating if needed) the log under dir, replays the
// existing segment, and compacts it down to the unfinished entries.
// Recovered() then lists exactly the accepted-but-unfinished records a
// crash left behind, in accept order.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: creating wal dir: %w", err)
	}
	w := &WAL{
		dir:     dir,
		path:    filepath.Join(dir, walSegment),
		pending: map[string]*pendingEntry{},
	}
	if err := w.replay(); err != nil {
		return nil, err
	}
	for _, id := range w.order {
		e := w.pending[id]
		rec := e.accepted
		if e.started {
			rec.State = StateStarted
		}
		w.recovered = append(w.recovered, rec)
	}
	// Rewrite the segment to just the unfinished entries, dropping the
	// completed history a long-lived node accumulates.
	if err := w.compactLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// replay reads the segment, building the pending table. A short or
// corrupt tail ends the replay (torn final append from a crash).
func (w *WAL) replay() error {
	f, err := os.Open(w.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: opening wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		var header [8]byte
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return nil // clean EOF or torn header: stop
		}
		n := binary.BigEndian.Uint32(header[:4])
		sum := binary.BigEndian.Uint32(header[4:])
		if n == 0 || n > 1<<20 {
			return nil // implausible frame: torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil
		}
		var rec Record
		if json.Unmarshal(payload, &rec) != nil || rec.ID == "" {
			continue // valid frame, bad record: skip it
		}
		w.applyLocked(rec)
	}
}

// applyLocked folds one record into the pending table.
func (w *WAL) applyLocked(rec Record) {
	id := walIdentity(rec.Kind, rec.Session, rec.ID)
	switch rec.State {
	case StateAccepted:
		if _, dup := w.pending[id]; !dup {
			w.pending[id] = &pendingEntry{accepted: rec}
			w.order = append(w.order, id)
		}
	case StateStarted:
		if e, ok := w.pending[id]; ok {
			e.started = true
		}
	case StateCompleted, StateFailed:
		if _, ok := w.pending[id]; ok {
			delete(w.pending, id)
			for i, o := range w.order {
				if o == id {
					w.order = append(w.order[:i], w.order[i+1:]...)
					break
				}
			}
		}
	}
}

// Recovered returns the unfinished records found at open, in accept
// order — what the queue replays at daemon start.
func (w *WAL) Recovered() []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Record, len(w.recovered))
	copy(out, w.recovered)
	return out
}

// Backlog counts entries accepted but not yet finished.
func (w *WAL) Backlog() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// encode frames one record.
func encode(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf, nil
}

// append writes one record durably and folds it into the pending table.
func (w *WAL) append(rec Record) error {
	rec.Time = time.Now()
	buf, err := encode(rec)
	if err != nil {
		return fmt.Errorf("cluster: encoding wal record: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("cluster: wal is closed")
	}
	if w.f == nil {
		if err := w.openSegmentLocked(); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("cluster: appending wal record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("cluster: syncing wal: %w", err)
	}
	w.applyLocked(rec)
	if rec.State == StateCompleted || rec.State == StateFailed {
		w.terminal++
		if w.terminal >= compactAfterTerminal {
			return w.compactLocked()
		}
	}
	return nil
}

// openSegmentLocked opens the segment for appending.
func (w *WAL) openSegmentLocked() error {
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: opening wal segment: %w", err)
	}
	w.f = f
	return nil
}

// compactLocked rewrites the segment with only the pending entries
// (their accepted records, plus a started marker where execution had
// begun), dropping terminal history. Callers hold w.mu.
func (w *WAL) compactLocked() error {
	tmp, err := os.CreateTemp(w.dir, ".wal-*")
	if err != nil {
		return fmt.Errorf("cluster: compacting wal: %w", err)
	}
	for _, id := range w.order {
		e := w.pending[id]
		recs := []Record{e.accepted}
		if e.started {
			started := e.accepted
			started.State = StateStarted
			started.Request = nil
			recs = append(recs, started)
		}
		for _, rec := range recs {
			buf, err := encode(rec)
			if err != nil {
				continue
			}
			if _, err := tmp.Write(buf); err != nil {
				tmp.Close()
				os.Remove(tmp.Name())
				return fmt.Errorf("cluster: compacting wal: %w", err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cluster: compacting wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cluster: compacting wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cluster: compacting wal: %w", err)
	}
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.terminal = 0
	return w.openSegmentLocked()
}

// Accepted logs a new piece of work durably. It must be called before
// the work is enqueued: the ack a client receives is only honest once
// the record has hit disk.
func (w *WAL) Accepted(kind RecordKind, session, id, key string, request any) error {
	blob, err := json.Marshal(request)
	if err != nil {
		return fmt.Errorf("cluster: encoding wal request: %w", err)
	}
	return w.append(Record{Kind: kind, State: StateAccepted, ID: id, Session: session, Key: key, Request: blob})
}

// Started marks execution as begun.
func (w *WAL) Started(kind RecordKind, session, id string) error {
	return w.append(Record{Kind: kind, State: StateStarted, ID: id, Session: session})
}

// Completed marks work delivered; it will never replay.
func (w *WAL) Completed(kind RecordKind, session, id string) error {
	return w.append(Record{Kind: kind, State: StateCompleted, ID: id, Session: session})
}

// Failed marks work terminally failed; it will never replay.
func (w *WAL) Failed(kind RecordKind, session, id, msg string) error {
	return w.append(Record{Kind: kind, State: StateFailed, ID: id, Session: session, Error: msg})
}

// Superseded retires a recovered record after its work has been
// re-submitted under a new ID. If the process crashes between the
// re-submission's Accepted record and this call, the next replay
// re-submits both — and the queue's key coalescing collapses them back
// to one execution, so the duplicate is harmless.
func (w *WAL) Superseded(old Record, newID string) error {
	return w.append(Record{
		Kind: old.Kind, State: StateCompleted, ID: old.ID, Session: old.Session,
		Error: "superseded by " + newID,
	})
}

// Sync forces the segment to disk. Appends already sync individually;
// Sync exists for drain paths that want an explicit final barrier.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Close syncs and closes the segment; later appends fail. Tests use it
// to simulate a crash point — nothing after Close reaches disk.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
