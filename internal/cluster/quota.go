package cluster

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// QuotaConfig bounds one tenant's front-door traffic. Zero values
// disable the corresponding limit.
type QuotaConfig struct {
	// RPS is the token-bucket refill rate (submissions per second).
	RPS float64
	// Burst is the bucket depth (default: ceil(RPS), at least 1).
	Burst int
	// MaxInflight caps a tenant's accepted-but-unfinished work.
	MaxInflight int
}

// enabled reports whether any limit is active.
func (c QuotaConfig) enabled() bool { return c.RPS > 0 || c.MaxInflight > 0 }

// tenantBucket is one tenant's token bucket + inflight count.
type tenantBucket struct {
	tokens   float64
	last     time.Time
	inflight int
}

// Quotas enforces per-tenant rate limits and inflight caps at the
// front door, before any work is enqueued. All tenants share one
// QuotaConfig; the accounting is per tenant key.
type Quotas struct {
	cfg QuotaConfig

	mu      sync.Mutex
	tenants map[string]*tenantBucket

	throttled atomic.Int64
	now       func() time.Time // test hook
}

// NewQuotas builds a quota table; nil config values disable limits
// (Admit always succeeds, cheaply).
func NewQuotas(cfg QuotaConfig) *Quotas {
	if cfg.RPS > 0 && cfg.Burst < 1 {
		cfg.Burst = int(math.Ceil(cfg.RPS))
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &Quotas{cfg: cfg, tenants: map[string]*tenantBucket{}, now: time.Now}
}

// Enabled reports whether any limit is configured.
func (q *Quotas) Enabled() bool { return q != nil && q.cfg.enabled() }

// Throttled counts rejected admissions since process start.
func (q *Quotas) Throttled() int64 { return q.throttled.Load() }

// Admit charges one submission against the tenant. On success it
// returns a release callback that MUST be called exactly once when the
// admitted work finishes (it frees the inflight slot; calling it more
// than once is safe). On rejection ok is false and retryAfter is how
// long the tenant should wait before retrying.
func (q *Quotas) Admit(tenant string) (release func(), retryAfter time.Duration, ok bool) {
	if !q.Enabled() {
		return func() {}, 0, true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.tenants[tenant]
	if b == nil {
		b = &tenantBucket{tokens: float64(q.cfg.Burst), last: q.now()}
		q.tenants[tenant] = b
	}
	if q.cfg.RPS > 0 {
		now := q.now()
		b.tokens = math.Min(float64(q.cfg.Burst), b.tokens+now.Sub(b.last).Seconds()*q.cfg.RPS)
		b.last = now
		if b.tokens < 1 {
			q.throttled.Add(1)
			wait := time.Duration((1 - b.tokens) / q.cfg.RPS * float64(time.Second))
			return nil, wait, false
		}
	}
	if q.cfg.MaxInflight > 0 && b.inflight >= q.cfg.MaxInflight {
		q.throttled.Add(1)
		return nil, time.Second, false
	}
	if q.cfg.RPS > 0 {
		b.tokens--
	}
	b.inflight++
	var once sync.Once
	return func() {
		once.Do(func() {
			q.mu.Lock()
			defer q.mu.Unlock()
			if bb := q.tenants[tenant]; bb != nil && bb.inflight > 0 {
				bb.inflight--
			}
		})
	}, 0, true
}

// Inflight returns a tenant's current accepted-but-unfinished count.
func (q *Quotas) Inflight(tenant string) int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if b := q.tenants[tenant]; b != nil {
		return b.inflight
	}
	return 0
}
