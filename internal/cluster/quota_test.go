package cluster

import (
	"testing"
	"time"
)

func TestQuotasTokenBucket(t *testing.T) {
	q := NewQuotas(QuotaConfig{RPS: 1, Burst: 2})
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	rel1, _, ok := q.Admit("acme")
	if !ok {
		t.Fatal("first admit must pass (burst)")
	}
	rel2, _, ok := q.Admit("acme")
	if !ok {
		t.Fatal("second admit must pass (burst=2)")
	}
	_, retry, ok := q.Admit("acme")
	if ok {
		t.Fatal("third immediate admit must throttle")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retryAfter = %v, want (0, 1s]", retry)
	}
	if q.Throttled() != 1 {
		t.Errorf("throttled = %d, want 1", q.Throttled())
	}

	// Other tenants have their own bucket.
	if _, _, ok := q.Admit("globex"); !ok {
		t.Error("independent tenant must not be throttled")
	}

	// Refill after a second.
	now = now.Add(1100 * time.Millisecond)
	rel3, _, ok := q.Admit("acme")
	if !ok {
		t.Fatal("admit after refill must pass")
	}
	rel1()
	rel2()
	rel3()
}

func TestQuotasInflightCap(t *testing.T) {
	q := NewQuotas(QuotaConfig{MaxInflight: 2})
	rel1, _, ok := q.Admit("acme")
	if !ok {
		t.Fatal("admit 1")
	}
	rel2, _, ok := q.Admit("acme")
	if !ok {
		t.Fatal("admit 2")
	}
	if _, retry, ok := q.Admit("acme"); ok || retry <= 0 {
		t.Fatalf("third admit must hit the inflight cap (ok=%v retry=%v)", ok, retry)
	}
	if got := q.Inflight("acme"); got != 2 {
		t.Errorf("inflight = %d, want 2", got)
	}
	rel1()
	rel1() // release is idempotent
	if got := q.Inflight("acme"); got != 1 {
		t.Errorf("inflight after release = %d, want 1", got)
	}
	if _, _, ok := q.Admit("acme"); !ok {
		t.Error("slot freed by release must admit again")
	}
	rel2()
}

func TestQuotasDisabled(t *testing.T) {
	q := NewQuotas(QuotaConfig{})
	if q.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	for i := 0; i < 100; i++ {
		rel, _, ok := q.Admit("anyone")
		if !ok {
			t.Fatal("disabled quotas must always admit")
		}
		rel()
	}
	var nilQ *Quotas
	if nilQ.Enabled() {
		t.Error("nil quotas must read as disabled")
	}
}
