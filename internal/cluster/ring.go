// Package cluster turns chatvisd into an N-node fleet: a consistent-hash
// shard ring (virtual nodes, rendezvous tiebreak) over a static
// membership list with health-probe-driven liveness, a durable
// write-ahead job/turn log so accepted work survives a node crash, and
// per-tenant front-door quotas (token bucket + max-inflight).
//
// The package is deliberately free of any dependency on the serving
// layer: internal/service composes these pieces (forwarding proxy,
// WAL-backed queue, cross-node coalescing) on top.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// point is one virtual node's position on the ring.
type point struct {
	h    uint64
	node string
}

// Ring is an immutable consistent-hash ring over a static node set.
// Each node contributes vnodes virtual points so ownership spreads
// evenly; a key's owner is the first point clockwise from the key's
// hash. Nodes whose points collide on the same position are ordered by
// rendezvous hash of (node, key), so ties break deterministically and
// per-key rather than by node name.
type Ring struct {
	points []point
	nodes  []string
}

// DefaultVirtualNodes is the per-node vnode count when NewRing is given
// zero or a negative value.
const DefaultVirtualNodes = 64

// hash64 is the ring's position hash (FNV-1a, 64-bit).
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// rendezvous scores a (node, key) pair for collision tiebreaks.
func rendezvous(node, key string) uint64 {
	return hash64(node + "\x00" + key)
}

// NewRing builds a ring over the node IDs. Duplicate IDs collapse to
// one membership; the input order does not matter.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := map[string]bool{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq}
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{h: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring membership (sorted, deduplicated).
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Owners returns up to n distinct nodes in preference order for key:
// the clockwise walk from the key's ring position, with same-position
// collisions ordered by rendezvous score. The first entry is the key's
// owner; later entries are the successive failover owners a caller
// should try as nodes die.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	kh := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= kh })

	out := make([]string, 0, n)
	taken := map[string]bool{}
	add := func(node string) {
		if !taken[node] {
			taken[node] = true
			out = append(out, node)
		}
	}
	for i := 0; i < len(r.points) && len(out) < n; {
		p := r.points[(start+i)%len(r.points)]
		// Gather the run of points sharing this position (hash
		// collisions between vnodes of different nodes) and order the
		// run by rendezvous score so the tiebreak is keyed, not
		// alphabetical.
		run := []string{p.node}
		j := i + 1
		for j < len(r.points) && r.points[(start+j)%len(r.points)].h == p.h {
			run = append(run, r.points[(start+j)%len(r.points)].node)
			j++
		}
		if len(run) > 1 {
			sort.Slice(run, func(a, b int) bool {
				return rendezvous(run[a], key) > rendezvous(run[b], key)
			})
		}
		for _, node := range run {
			if len(out) < n {
				add(node)
			}
		}
		i = j
	}
	return out
}

// Owner returns the first node in the key's preference order that the
// alive predicate accepts (nil accepts everything). ok is false when
// the ring is empty or every member is down.
func (r *Ring) Owner(key string, alive func(string) bool) (string, bool) {
	for _, node := range r.Owners(key, len(r.nodes)) {
		if alive == nil || alive(node) {
			return node, true
		}
	}
	return "", false
}
