// Package vmath provides the small linear-algebra toolkit used throughout
// the visualization engine: 3-vectors, 4x4 homogeneous matrices, planes and
// axis-aligned bounding boxes.
//
// Conventions: column vectors, right-handed coordinates, matrices stored
// row-major. Angles are in degrees at API boundaries (matching ParaView)
// and radians internally.
package vmath

import (
	"fmt"
	"math"
)

// Vec3 is a 3-component vector of float64.
type Vec3 struct{ X, Y, Z float64 }

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Mul returns the component-wise scaling of a by s.
func (a Vec3) Mul(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Hadamard returns the component-wise product a*b.
func (a Vec3) Hadamard(b Vec3) Vec3 { return Vec3{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Dot returns the dot product a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a×b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean norm.
func (a Vec3) Len() float64 { return math.Sqrt(a.Dot(a)) }

// Len2 returns the squared Euclidean norm.
func (a Vec3) Len2() float64 { return a.Dot(a) }

// Dist returns the distance between a and b.
func (a Vec3) Dist(b Vec3) float64 { return a.Sub(b).Len() }

// Norm returns a unit vector in the direction of a. The zero vector is
// returned unchanged.
func (a Vec3) Norm() Vec3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Mul(1 / l)
}

// Neg returns -a.
func (a Vec3) Neg() Vec3 { return Vec3{-a.X, -a.Y, -a.Z} }

// Lerp returns a + t*(b-a).
func (a Vec3) Lerp(b Vec3, t float64) Vec3 { return a.Add(b.Sub(a).Mul(t)) }

// Min returns the component-wise minimum of a and b.
func (a Vec3) Min(b Vec3) Vec3 {
	return Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)}
}

// Max returns the component-wise maximum of a and b.
func (a Vec3) Max(b Vec3) Vec3 {
	return Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)}
}

// Abs returns the component-wise absolute value.
func (a Vec3) Abs() Vec3 {
	return Vec3{math.Abs(a.X), math.Abs(a.Y), math.Abs(a.Z)}
}

// Comp returns component i (0=X, 1=Y, 2=Z).
func (a Vec3) Comp(i int) float64 {
	switch i {
	case 0:
		return a.X
	case 1:
		return a.Y
	case 2:
		return a.Z
	}
	panic(fmt.Sprintf("vmath: component index %d out of range", i))
}

// SetComp returns a copy of a with component i replaced by v.
func (a Vec3) SetComp(i int, v float64) Vec3 {
	switch i {
	case 0:
		a.X = v
	case 1:
		a.Y = v
	case 2:
		a.Z = v
	default:
		panic(fmt.Sprintf("vmath: component index %d out of range", i))
	}
	return a
}

// Array returns the components as a [3]float64.
func (a Vec3) Array() [3]float64 { return [3]float64{a.X, a.Y, a.Z} }

// Slice returns the components as a []float64.
func (a Vec3) Slice() []float64 { return []float64{a.X, a.Y, a.Z} }

// FromSlice builds a Vec3 from the first three entries of s.
func FromSlice(s []float64) Vec3 {
	var v Vec3
	if len(s) > 0 {
		v.X = s[0]
	}
	if len(s) > 1 {
		v.Y = s[1]
	}
	if len(s) > 2 {
		v.Z = s[2]
	}
	return v
}

// NearEq reports whether a and b agree within eps per component.
func (a Vec3) NearEq(b Vec3, eps float64) bool {
	return math.Abs(a.X-b.X) <= eps && math.Abs(a.Y-b.Y) <= eps && math.Abs(a.Z-b.Z) <= eps
}

func (a Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", a.X, a.Y, a.Z) }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Mat4 is a 4x4 matrix in row-major order.
type Mat4 [16]float64

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// MulM returns the matrix product m*n.
func (m Mat4) MulM(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[i*4+k] * n[k*4+j]
			}
			r[i*4+j] = s
		}
	}
	return r
}

// MulPoint transforms p as a point (w=1) and performs the perspective divide.
func (m Mat4) MulPoint(p Vec3) Vec3 {
	x := m[0]*p.X + m[1]*p.Y + m[2]*p.Z + m[3]
	y := m[4]*p.X + m[5]*p.Y + m[6]*p.Z + m[7]
	z := m[8]*p.X + m[9]*p.Y + m[10]*p.Z + m[11]
	w := m[12]*p.X + m[13]*p.Y + m[14]*p.Z + m[15]
	if w != 0 && w != 1 {
		inv := 1 / w
		return Vec3{x * inv, y * inv, z * inv}
	}
	return Vec3{x, y, z}
}

// MulPointW transforms p as a point and returns the homogeneous result
// before the perspective divide.
func (m Mat4) MulPointW(p Vec3) (Vec3, float64) {
	x := m[0]*p.X + m[1]*p.Y + m[2]*p.Z + m[3]
	y := m[4]*p.X + m[5]*p.Y + m[6]*p.Z + m[7]
	z := m[8]*p.X + m[9]*p.Y + m[10]*p.Z + m[11]
	w := m[12]*p.X + m[13]*p.Y + m[14]*p.Z + m[15]
	return Vec3{x, y, z}, w
}

// MulDir transforms d as a direction (w=0, no translation).
func (m Mat4) MulDir(d Vec3) Vec3 {
	return Vec3{
		m[0]*d.X + m[1]*d.Y + m[2]*d.Z,
		m[4]*d.X + m[5]*d.Y + m[6]*d.Z,
		m[8]*d.X + m[9]*d.Y + m[10]*d.Z,
	}
}

// Translate returns a translation matrix.
func Translate(t Vec3) Mat4 {
	m := Identity()
	m[3], m[7], m[11] = t.X, t.Y, t.Z
	return m
}

// Scale returns a scaling matrix.
func Scale(s Vec3) Mat4 {
	m := Identity()
	m[0], m[5], m[10] = s.X, s.Y, s.Z
	return m
}

// RotateAxis returns a rotation of angle radians about the unit axis.
func RotateAxis(axis Vec3, angle float64) Mat4 {
	a := axis.Norm()
	c, s := math.Cos(angle), math.Sin(angle)
	t := 1 - c
	return Mat4{
		t*a.X*a.X + c, t*a.X*a.Y - s*a.Z, t*a.X*a.Z + s*a.Y, 0,
		t*a.X*a.Y + s*a.Z, t*a.Y*a.Y + c, t*a.Y*a.Z - s*a.X, 0,
		t*a.X*a.Z - s*a.Y, t*a.Y*a.Z + s*a.X, t*a.Z*a.Z + c, 0,
		0, 0, 0, 1,
	}
}

// LookAt builds a view matrix placing the camera at eye, looking at center,
// with up approximating the vertical.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Norm()
	s := f.Cross(up.Norm()).Norm()
	u := s.Cross(f)
	return Mat4{
		s.X, s.Y, s.Z, -s.Dot(eye),
		u.X, u.Y, u.Z, -u.Dot(eye),
		-f.X, -f.Y, -f.Z, f.Dot(eye),
		0, 0, 0, 1,
	}
}

// Perspective builds a perspective projection. fovY is the vertical field of
// view in radians; aspect is width/height.
func Perspective(fovY, aspect, near, far float64) Mat4 {
	f := 1 / math.Tan(fovY/2)
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// Ortho builds an orthographic projection.
func Ortho(left, right, bottom, top, near, far float64) Mat4 {
	return Mat4{
		2 / (right - left), 0, 0, -(right + left) / (right - left),
		0, 2 / (top - bottom), 0, -(top + bottom) / (top - bottom),
		0, 0, -2 / (far - near), -(far + near) / (far - near),
		0, 0, 0, 1,
	}
}

// Transpose returns the transpose of m.
func (m Mat4) Transpose() Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[j*4+i] = m[i*4+j]
		}
	}
	return r
}

// Plane is an oriented plane following VTK's origin+normal convention.
type Plane struct {
	Normal Vec3
	Origin Vec3
}

// NewPlane builds a plane from an origin point and a (not necessarily unit)
// normal.
func NewPlane(origin, normal Vec3) Plane {
	return Plane{Normal: normal.Norm(), Origin: origin}
}

// Eval returns the signed distance of p from the plane (positive on the
// normal side).
func (pl Plane) Eval(p Vec3) float64 {
	return pl.Normal.Dot(p.Sub(pl.Origin))
}

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns a box that contains nothing; extend it with Extend.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Extend grows the box to include p.
func (b *AABB) Extend(p Vec3) {
	b.Min = b.Min.Min(p)
	b.Max = b.Max.Max(p)
}

// Union grows the box to include o.
func (b *AABB) Union(o AABB) {
	if o.IsEmpty() {
		return
	}
	b.Extend(o.Min)
	b.Extend(o.Max)
}

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Center returns the box center.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Mul(0.5) }

// Size returns the box extents per axis.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Diagonal returns the length of the main diagonal.
func (b AABB) Diagonal() float64 { return b.Size().Len() }

// Contains reports whether p lies inside or on the box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Expanded returns the box grown by pad on every side.
func (b AABB) Expanded(pad float64) AABB {
	d := Vec3{pad, pad, pad}
	return AABB{Min: b.Min.Sub(d), Max: b.Max.Add(d)}
}
