package vmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVecBasics(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(2); got != V(2, 4, 6) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Dot(b); got != 1*4+2*-5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Hadamard(b); got != V(4, -10, 18) {
		t.Errorf("Hadamard = %v", got)
	}
	if got := V(3, 4, 0).Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		// Keep magnitudes sane so float error stays bounded.
		if a.Len() > 1e6 || b.Len() > 1e6 {
			return true
		}
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.Len()*b.Len())
		return almostEq(c.Dot(a), 0, tol) && almostEq(c.Dot(b), 0, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossRightHanded(t *testing.T) {
	if got := V(1, 0, 0).Cross(V(0, 1, 0)); !got.NearEq(V(0, 0, 1), 1e-15) {
		t.Errorf("x cross y = %v, want z", got)
	}
}

func TestNormUnitLength(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := V(x, y, z)
		if v.Len() == 0 || math.IsInf(v.Len(), 0) || math.IsNaN(v.Len()) {
			return true
		}
		return almostEq(v.Norm().Len(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := V(1, 2, 3), V(-4, 0, 9)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.NearEq(b, 1e-15) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.NearEq(V(-1.5, 1, 6), 1e-15) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestCompAccessors(t *testing.T) {
	v := V(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Comp(i); got != want {
			t.Errorf("Comp(%d) = %v, want %v", i, got, want)
		}
	}
	if got := v.SetComp(1, 42); got != V(7, 42, 9) {
		t.Errorf("SetComp = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Comp(3) should panic")
		}
	}()
	v.Comp(3)
}

func TestFromSlice(t *testing.T) {
	if got := FromSlice([]float64{1, 2, 3}); got != V(1, 2, 3) {
		t.Errorf("FromSlice = %v", got)
	}
	if got := FromSlice([]float64{1}); got != V(1, 0, 0) {
		t.Errorf("FromSlice short = %v", got)
	}
	if got := FromSlice(nil); got != V(0, 0, 0) {
		t.Errorf("FromSlice nil = %v", got)
	}
}

func TestMatIdentity(t *testing.T) {
	p := V(3, -2, 5)
	if got := Identity().MulPoint(p); got != p {
		t.Errorf("I*p = %v", got)
	}
	if got := Identity().MulDir(p); got != p {
		t.Errorf("I*d = %v", got)
	}
}

func TestMatMulAssociatesWithPoint(t *testing.T) {
	a := Translate(V(1, 2, 3))
	b := Scale(V(2, 2, 2))
	p := V(1, 1, 1)
	// (a*b)p == a(b p)
	lhs := a.MulM(b).MulPoint(p)
	rhs := a.MulPoint(b.MulPoint(p))
	if !lhs.NearEq(rhs, 1e-12) {
		t.Errorf("(ab)p=%v a(bp)=%v", lhs, rhs)
	}
	if !lhs.NearEq(V(3, 4, 5), 1e-12) {
		t.Errorf("T*S*p = %v, want (3,4,5)", lhs)
	}
}

func TestRotateAxisPreservesLength(t *testing.T) {
	f := func(ax, ay, az, angle, px, py, pz float64) bool {
		axis := V(ax, ay, az)
		if axis.Len() < 1e-9 || axis.Len() > 1e6 {
			return true
		}
		p := V(px, py, pz)
		if p.Len() > 1e6 {
			return true
		}
		q := RotateAxis(axis, angle).MulPoint(p)
		return almostEq(q.Len(), p.Len(), 1e-6*(1+p.Len()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateZQuarterTurn(t *testing.T) {
	m := RotateAxis(V(0, 0, 1), math.Pi/2)
	got := m.MulPoint(V(1, 0, 0))
	if !got.NearEq(V(0, 1, 0), 1e-12) {
		t.Errorf("Rz(90)·x = %v, want y", got)
	}
}

func TestLookAtMapsEyeToOrigin(t *testing.T) {
	eye := V(5, 6, 7)
	m := LookAt(eye, V(0, 0, 0), V(0, 1, 0))
	if got := m.MulPoint(eye); !got.NearEq(V(0, 0, 0), 1e-9) {
		t.Errorf("view(eye) = %v, want origin", got)
	}
	// Center should map onto the -Z axis.
	c := m.MulPoint(V(0, 0, 0))
	if !almostEq(c.X, 0, 1e-9) || !almostEq(c.Y, 0, 1e-9) || c.Z >= 0 {
		t.Errorf("view(center) = %v, want on -Z axis", c)
	}
}

func TestPerspectiveDepthRange(t *testing.T) {
	m := Perspective(Radians(60), 16.0/9, 1, 100)
	near := m.MulPoint(V(0, 0, -1))
	far := m.MulPoint(V(0, 0, -100))
	if !almostEq(near.Z, -1, 1e-9) {
		t.Errorf("near plane maps to z=%v, want -1", near.Z)
	}
	if !almostEq(far.Z, 1, 1e-9) {
		t.Errorf("far plane maps to z=%v, want 1", far.Z)
	}
}

func TestOrthoMapsBoxToNDC(t *testing.T) {
	m := Ortho(-2, 2, -1, 1, 0, 10)
	got := m.MulPoint(V(2, 1, -10))
	if !got.NearEq(V(1, 1, 1), 1e-12) {
		t.Errorf("ortho corner = %v", got)
	}
	got = m.MulPoint(V(-2, -1, 0))
	if !got.NearEq(V(-1, -1, -1), 1e-12) {
		t.Errorf("ortho corner = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	m := Mat4{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	tt := m.Transpose()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if tt[i*4+j] != m[j*4+i] {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestPlaneEval(t *testing.T) {
	pl := NewPlane(V(0, 0, 0), V(0, 0, 2)) // normal normalized internally
	if got := pl.Eval(V(0, 0, 3)); !almostEq(got, 3, 1e-12) {
		t.Errorf("Eval above = %v", got)
	}
	if got := pl.Eval(V(5, -2, -4)); !almostEq(got, -4, 1e-12) {
		t.Errorf("Eval below = %v", got)
	}
	if got := pl.Eval(V(1, 1, 0)); !almostEq(got, 0, 1e-12) {
		t.Errorf("Eval on plane = %v", got)
	}
}

func TestAABB(t *testing.T) {
	b := EmptyAABB()
	if !b.IsEmpty() {
		t.Fatal("new box should be empty")
	}
	b.Extend(V(1, 2, 3))
	b.Extend(V(-1, 5, 0))
	if b.IsEmpty() {
		t.Fatal("box with points should not be empty")
	}
	if b.Min != V(-1, 2, 0) || b.Max != V(1, 5, 3) {
		t.Errorf("bounds = %v..%v", b.Min, b.Max)
	}
	if got := b.Center(); !got.NearEq(V(0, 3.5, 1.5), 1e-15) {
		t.Errorf("center = %v", got)
	}
	if !b.Contains(V(0, 3, 1)) || b.Contains(V(2, 3, 1)) {
		t.Error("contains misbehaves")
	}
	exp := b.Expanded(1)
	if exp.Min != V(-2, 1, -1) || exp.Max != V(2, 6, 4) {
		t.Errorf("expanded = %v..%v", exp.Min, exp.Max)
	}
	var u AABB = EmptyAABB()
	u.Union(b)
	if u.Min != b.Min || u.Max != b.Max {
		t.Error("union with empty lhs should equal rhs")
	}
	u.Union(EmptyAABB())
	if u.Min != b.Min || u.Max != b.Max {
		t.Error("union with empty rhs should be a no-op")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestDegreesRadiansRoundTrip(t *testing.T) {
	f := func(d float64) bool {
		if math.Abs(d) > 1e9 {
			return true
		}
		return almostEq(Degrees(Radians(d)), d, 1e-9*(1+math.Abs(d)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
