package data

import (
	"testing"

	"chatvis/internal/vmath"
)

// TestSlabCellsDoNotOverlap pins the slab-carving invariant: cells
// returned by AddTriangle/NewPoly/NewLine/NewCell are independent —
// writing or appending to one never corrupts a neighbor.
func TestSlabCellsDoNotOverlap(t *testing.T) {
	p := NewPolyData()
	for i := 0; i < 3000; i++ { // cross several block boundaries
		p.AddTriangle(i, i+1, i+2)
	}
	for i, tri := range p.Polys {
		if tri[0] != i || tri[1] != i+1 || tri[2] != i+2 {
			t.Fatalf("triangle %d corrupted: %v", i, tri)
		}
		if cap(tri) != 3 {
			t.Fatalf("triangle %d cap = %d, want 3 (full-slice capped)", i, cap(tri))
		}
	}

	a := p.NewPoly(4)
	b := p.NewPoly(4)
	copy(a, []int{1, 2, 3, 4})
	copy(b, []int{5, 6, 7, 8})
	_ = append(a, 99) // must reallocate, not clobber b
	if b[0] != 5 {
		t.Fatalf("append to one poly clobbered the next: %v", b)
	}

	l := p.NewLine(2)
	l[0], l[1] = 7, 9
	if got := p.Lines[len(p.Lines)-1]; got[0] != 7 || got[1] != 9 {
		t.Fatalf("NewLine slice not registered: %v", got)
	}

	p.AddVert(42)
	if got := p.Verts[len(p.Verts)-1]; len(got) != 1 || got[0] != 42 {
		t.Fatalf("AddVert = %v, want [42]", got)
	}

	u := NewUnstructuredGrid()
	c0 := u.NewCell(CellTetra, 4)
	c1 := u.NewCell(CellTriangle, 3)
	copy(c0, []int{1, 2, 3, 4})
	copy(c1, []int{9, 8, 7})
	if u.Cells[0].IDs[3] != 4 || u.Cells[1].IDs[0] != 9 {
		t.Fatalf("NewCell slices overlap: %v %v", u.Cells[0], u.Cells[1])
	}
}

// TestSlabReserveSingleBlock checks that an exact-size reservation is
// honored without a mid-merge block switch losing data.
func TestSlabReserveSingleBlock(t *testing.T) {
	p := NewPolyData()
	const n = 10000
	p.ReserveConn(3 * n)
	for i := 0; i < n; i++ {
		p.AddTriangle(i, i, i)
	}
	for i, tri := range p.Polys {
		if tri[0] != i {
			t.Fatalf("triangle %d corrupted after reserve: %v", i, tri)
		}
	}
}

// TestCloneIndependence: mutating a clone's connectivity or points must
// not affect the original (the flat-backing clone still deep-copies).
func TestCloneIndependence(t *testing.T) {
	p := NewPolyData()
	p.AddPoint(vmath.V(0, 0, 0))
	p.AddPoint(vmath.V(1, 0, 0))
	p.AddPoint(vmath.V(0, 1, 0))
	p.AddTriangle(0, 1, 2)
	p.AddLine(0, 1)
	c := p.Clone()
	c.Polys[0][0] = 99
	c.Lines[0][1] = 99
	c.Pts[0] = vmath.V(9, 9, 9)
	if p.Polys[0][0] != 0 || p.Lines[0][1] != 1 || p.Pts[0].X != 0 {
		t.Fatal("clone shares storage with original")
	}
}
