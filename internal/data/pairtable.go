package data

// PairTable is an open-addressing hash table from a packed point-id
// pair to a dense int32 id. It replaces the map[[2]int]int used by the
// canonical-edge merges in the contour and clip filters: no per-entry
// allocation, and Reset is O(1) via a generation stamp, so one table
// can be arena-pooled across sweeps without churning the allocator.
//
// Keys are built with PackPair, which canonicalizes the pair order, so
// (i,j) and (j,i) address the same slot — the canonical-edge property
// the deterministic merges rely on.
type PairTable struct {
	keys []uint64
	vals []int32
	gens []uint32 // slot is live iff gens[i] == gen
	gen  uint32
	n    int // live entries
}

// NewPairTable returns an empty table. Storage is allocated lazily on
// first insert and retained across Resets.
func NewPairTable() *PairTable { return &PairTable{gen: 1} }

// PackPair canonicalizes (i, j) into a single uint64 key: the smaller
// id in the high half. Point ids must fit in 32 bits (far beyond any
// dataset this engine renders).
func PackPair(i, j int) uint64 {
	if j < i {
		i, j = j, i
	}
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// UnpackPair inverts PackPair, returning (lo, hi).
func UnpackPair(key uint64) (lo, hi int) {
	return int(key >> 32), int(uint32(key))
}

// Len returns the number of live entries.
func (t *PairTable) Len() int { return t.n }

// Reset empties the table in O(1) by bumping the generation stamp,
// keeping the slot arrays for reuse.
func (t *PairTable) Reset() {
	t.n = 0
	t.gen++
	if t.gen == 0 { // generation counter wrapped: clear stamps once
		for i := range t.gens {
			t.gens[i] = 0
		}
		t.gen = 1
	}
}

// mix is a 64-bit finalizer (splitmix64-style) spreading packed pair
// bits across the table's power-of-two slot space.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// GetOrPut returns the id stored for key, inserting id if absent.
// added reports whether the insert happened (i.e. key was new).
func (t *PairTable) GetOrPut(key uint64, id int32) (got int32, added bool) {
	if len(t.keys) == 0 || t.n >= (len(t.keys)*3)/4 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	for i := mix(key) & mask; ; i = (i + 1) & mask {
		if t.gens[i] != t.gen {
			t.keys[i] = key
			t.vals[i] = id
			t.gens[i] = t.gen
			t.n++
			return id, true
		}
		if t.keys[i] == key {
			return t.vals[i], false
		}
	}
}

// Get returns the id stored for key, if present.
func (t *PairTable) Get(key uint64) (int32, bool) {
	if t.n == 0 {
		return 0, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := mix(key) & mask; ; i = (i + 1) & mask {
		if t.gens[i] != t.gen {
			return 0, false
		}
		if t.keys[i] == key {
			return t.vals[i], true
		}
	}
}

// grow doubles the slot arrays (min 1024) and rehashes live entries.
func (t *PairTable) grow() {
	newCap := 1024
	if len(t.keys) > 0 {
		newCap = len(t.keys) * 2
	}
	oldKeys, oldVals, oldGens, oldGen := t.keys, t.vals, t.gens, t.gen
	t.keys = make([]uint64, newCap)
	t.vals = make([]int32, newCap)
	t.gens = make([]uint32, newCap)
	t.gen = 1
	t.n = 0
	mask := uint64(newCap - 1)
	for i, g := range oldGens {
		if g != oldGen {
			continue
		}
		k, v := oldKeys[i], oldVals[i]
		for j := mix(k) & mask; ; j = (j + 1) & mask {
			if t.gens[j] != t.gen {
				t.keys[j] = k
				t.vals[j] = v
				t.gens[j] = t.gen
				t.n++
				break
			}
		}
	}
}
