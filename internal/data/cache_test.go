package data

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"chatvis/internal/vmath"
)

func cachePoly(n int) *PolyData {
	pd := NewPolyData()
	for i := 0; i < n; i++ {
		pd.AddPoint(vmath.V(float64(i), 0, 0))
	}
	return pd
}

func TestCacheGetOrComputeSingleflight(t *testing.T) {
	c := NewCache(0)
	var computes atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	const n = 16
	results := make([]Dataset, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			ds, _, err := c.GetOrCompute(context.Background(), "k", func() (Dataset, error) {
				computes.Add(1)
				return cachePoly(10), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = ds
		}(i)
	}
	close(start)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers should share one dataset instance")
		}
	}
	if st := c.Stats(); st.Entries != 1 || st.Hits < n-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(0)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(context.Background(), "k", func() (Dataset, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	ds, hit, err := c.GetOrCompute(context.Background(), "k", func() (Dataset, error) { return cachePoly(3), nil })
	if err != nil || hit || ds == nil {
		t.Fatalf("retry after error: ds=%v hit=%v err=%v", ds, hit, err)
	}
}

// TestCacheLeaderCancellationDoesNotPoisonWaiters is the regression
// test for cross-job cancellation poisoning: job A wins the inflight
// slot for a content key and is then canceled; job B, waiting on the
// shared computation with a live context, must retry (and succeed)
// rather than inherit A's context.Canceled.
func TestCacheLeaderCancellationDoesNotPoisonWaiters(t *testing.T) {
	c := NewCache(0)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.GetOrCompute(context.Background(), "k", func() (Dataset, error) {
			close(leaderIn)
			<-leaderGo
			return nil, context.Canceled // the leader's own job was canceled
		})
	}()
	<-leaderIn // waiter joins only once the leader holds the inflight slot
	waiterDone := make(chan struct{})
	var waiterDS Dataset
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterDS, _, waiterErr = c.GetOrCompute(context.Background(), "k", func() (Dataset, error) {
			return cachePoly(5), nil
		})
	}()
	close(leaderGo)
	wg.Wait()
	<-waiterDone
	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", leaderErr)
	}
	if waiterErr != nil || waiterDS == nil {
		t.Fatalf("waiter must retry past the leader's cancellation: ds=%v err=%v", waiterDS, waiterErr)
	}
}

// TestCacheWaiterHonorsOwnCancellation: a waiter blocked on someone
// else's in-flight computation must return when its own ctx dies.
func TestCacheWaiterHonorsOwnCancellation(t *testing.T) {
	c := NewCache(0)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	defer close(leaderGo)
	go func() {
		c.GetOrCompute(context.Background(), "k", func() (Dataset, error) {
			close(leaderIn)
			<-leaderGo
			return cachePoly(2), nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrCompute(ctx, "k", func() (Dataset, error) { return cachePoly(2), nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCacheEvictsLRUUnderByteBound(t *testing.T) {
	one := ApproxSize(cachePoly(100))
	c := NewCache(3 * one)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprintf("k%d", i), cachePoly(100))
	}
	st := c.Stats()
	if st.Bytes > 3*one {
		t.Fatalf("bytes = %d over bound %d", st.Bytes, 3*one)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// Oldest keys evicted, newest retained.
	if _, ok := c.Get("k0"); ok {
		t.Error("k0 should be evicted")
	}
	if _, ok := c.Get("k4"); !ok {
		t.Error("k4 should be retained")
	}
}

// TestCacheRefusesOversizedEntry: a dataset larger than the whole
// cache must not be inserted — it could never be evicted (the loop
// keeps one survivor) and would pin bytes above the configured bound
// for the process lifetime while flushing every smaller entry.
func TestCacheRefusesOversizedEntry(t *testing.T) {
	small := ApproxSize(cachePoly(10))
	c := NewCache(2 * small)
	c.Add("small", cachePoly(10))
	c.Add("huge", cachePoly(10_000)) // far over the whole bound
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes = %d exceeds bound %d", st.Bytes, st.MaxBytes)
	}
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized dataset must not be cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("oversized insert must not flush smaller entries")
	}
}

func TestCacheGetMovesToFront(t *testing.T) {
	one := ApproxSize(cachePoly(100))
	c := NewCache(2 * one)
	c.Add("a", cachePoly(100))
	c.Add("b", cachePoly(100))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Add("c", cachePoly(100)) // evicts b, not the freshly-touched a
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should be evicted")
	}
}

func TestApproxSizeCoversTypes(t *testing.T) {
	im := NewImageData(4, 4, 4, vmath.V(0, 0, 0), vmath.V(1, 1, 1))
	im.Points.Add(NewField("s", 1, 64))
	if ApproxSize(im) < 64*8 {
		t.Error("image size underestimates field data")
	}
	ug := NewUnstructuredGrid()
	for i := 0; i < 4; i++ {
		ug.AddPoint(vmath.V(float64(i), 0, 0))
	}
	ug.AddCell(CellTetra, 0, 1, 2, 3)
	if ApproxSize(ug) <= 0 {
		t.Error("grid size must be positive")
	}
	if ApproxSize(nil) != 0 {
		t.Error("nil dataset has zero size")
	}
}
