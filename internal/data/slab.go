package data

// Connectivity slab: the Add*/New* cell constructors on PolyData and
// UnstructuredGrid carve their per-cell index slices out of shared
// append-only blocks instead of allocating one tiny []int per cell.
// BENCH_substrate.json showed the per-triangle allocation in
// PolyData.AddTriangle dominating the marching-tet and clip kernels
// (~78% of all objects in Substrate_Isosurface64), so the slab turns
// millions of 3-int allocations into a handful of block allocations.
//
// The outer [][]int connectivity fields keep their exact shape and
// semantics — readers (vtkio) and merges (pvsim) that assign or append
// whole outer slices are unaffected. Each carved slice is full-slice-
// expression capped, so appending to a returned cell slice can never
// bleed into a neighboring cell.

// slabBlock is the minimum block size (in ints) carved by an intSlab.
// Big enough to amortize allocation, small enough that sparse outputs
// don't hold pathological slack.
const slabBlock = 4096

// intSlab is a bump allocator over []int blocks. The zero value is
// ready to use.
type intSlab struct {
	block []int // current block; len = used, cap = block size
}

// take returns a zeroed slice of n ints carved from the slab. The
// result has cap == n so appends never overlap the next cell.
func (s *intSlab) take(n int) []int {
	if n <= 0 {
		return nil
	}
	if cap(s.block)-len(s.block) < n {
		c := slabBlock
		if n > c {
			c = n
		}
		s.block = make([]int, 0, c)
	}
	off := len(s.block)
	s.block = s.block[:off+n]
	return s.block[off : off+n : off+n]
}

// reserve sizes the next block to hold at least n more ints, so a
// merge that knows its exact output size pays one allocation.
func (s *intSlab) reserve(n int) {
	if cap(s.block)-len(s.block) < n {
		s.block = make([]int, 0, n)
	}
}

// ReserveConn pre-sizes PolyData's connectivity slab for at least n
// more cell indices (e.g. 3×triangles for a triangle-only merge).
func (p *PolyData) ReserveConn(n int) { p.conn.reserve(n) }

// NewPoly appends an n-gon backed by the connectivity slab and returns
// its id slice for the caller to fill.
func (p *PolyData) NewPoly(n int) []int {
	ids := p.conn.take(n)
	p.Polys = append(p.Polys, ids)
	return ids
}

// NewLine appends an n-point polyline backed by the connectivity slab
// and returns its id slice for the caller to fill.
func (p *PolyData) NewLine(n int) []int {
	ids := p.conn.take(n)
	p.Lines = append(p.Lines, ids)
	return ids
}

// ReserveConn pre-sizes the grid's connectivity slab for at least n
// more cell indices.
func (u *UnstructuredGrid) ReserveConn(n int) { u.conn.reserve(n) }

// NewCell appends a cell of type t with n slab-backed point ids and
// returns the id slice for the caller to fill.
func (u *UnstructuredGrid) NewCell(t CellType, n int) []int {
	ids := u.conn.take(n)
	u.Cells = append(u.Cells, Cell{Type: t, IDs: ids})
	return ids
}
