package data

import (
	"math"
	"testing"
	"testing/quick"

	"chatvis/internal/vmath"
)

func TestFieldBasics(t *testing.T) {
	f := NewField("var0", 1, 4)
	if f.NumTuples() != 4 {
		t.Fatalf("NumTuples = %d", f.NumTuples())
	}
	f.SetScalar(2, 3.5)
	if f.Scalar(2) != 3.5 {
		t.Errorf("Scalar(2) = %v", f.Scalar(2))
	}
	lo, hi := f.Range()
	if lo != 0 || hi != 3.5 {
		t.Errorf("Range = %v..%v", lo, hi)
	}
}

func TestFieldVec3(t *testing.T) {
	f := NewField("V", 3, 2)
	f.SetVec3(1, vmath.V(1, 2, 3))
	if got := f.Vec3(1); got != vmath.V(1, 2, 3) {
		t.Errorf("Vec3 = %v", got)
	}
	if got := f.Vec3(0); got != vmath.V(0, 0, 0) {
		t.Errorf("Vec3(0) = %v", got)
	}
	lo, hi := f.MagnitudeRange()
	if lo != 0 || math.Abs(hi-math.Sqrt(14)) > 1e-12 {
		t.Errorf("MagnitudeRange = %v..%v", lo, hi)
	}
}

func TestFieldAppendPanicsOnWrongArity(t *testing.T) {
	f := NewField("V", 3, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong tuple size")
		}
	}()
	f.Append(1, 2)
}

func TestFieldEmptyRangeDefaults(t *testing.T) {
	f := NewField("x", 1, 0)
	lo, hi := f.Range()
	if lo != 0 || hi != 1 {
		t.Errorf("empty Range = %v..%v, want 0..1", lo, hi)
	}
	lo, hi = f.MagnitudeRange()
	if lo != 0 || hi != 1 {
		t.Errorf("empty MagnitudeRange = %v..%v, want 0..1", lo, hi)
	}
}

func TestFieldClone(t *testing.T) {
	f := NewField("x", 1, 2)
	f.SetScalar(0, 1)
	g := f.Clone()
	g.SetScalar(0, 99)
	if f.Scalar(0) != 1 {
		t.Error("Clone should deep-copy data")
	}
}

func TestFieldSetOrderAndReplace(t *testing.T) {
	fs := NewFieldSet()
	fs.Add(NewField("b", 1, 1))
	fs.Add(NewField("a", 3, 1))
	fs.Add(NewField("c", 1, 1))
	names := fs.Names()
	if len(names) != 3 || names[0] != "b" || names[1] != "a" || names[2] != "c" {
		t.Errorf("Names = %v", names)
	}
	replacement := NewField("a", 1, 5)
	fs.Add(replacement)
	if fs.Len() != 3 {
		t.Errorf("Len after replace = %d", fs.Len())
	}
	if fs.Get("a") != replacement {
		t.Error("replace should swap field in place")
	}
	if fs.FirstScalar() == nil || fs.FirstScalar().Name != "b" {
		t.Errorf("FirstScalar = %v", fs.FirstScalar())
	}
	if !fs.Has("c") || fs.Has("zzz") {
		t.Error("Has misbehaves")
	}
	if fs.First().Name != "b" {
		t.Errorf("First = %q", fs.First().Name)
	}
}

func TestFieldSetFirstVector(t *testing.T) {
	fs := NewFieldSet()
	fs.Add(NewField("t", 1, 1))
	fs.Add(NewField("V", 3, 1))
	if fs.FirstVector() == nil || fs.FirstVector().Name != "V" {
		t.Error("FirstVector should find V")
	}
}

func TestImageDataIndexRoundTrip(t *testing.T) {
	im := NewImageData(5, 7, 3, vmath.V(0, 0, 0), vmath.V(1, 1, 1))
	f := func(raw uint32) bool {
		idx := int(raw) % im.NumPoints()
		i, j, k := im.IJK(idx)
		return im.Index(i, j, k) == idx &&
			i >= 0 && i < 5 && j >= 0 && j < 7 && k >= 0 && k < 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImageDataPointAndBounds(t *testing.T) {
	im := NewImageData(3, 3, 3, vmath.V(-1, -1, -1), vmath.V(1, 1, 1))
	if got := im.Point(im.Index(2, 2, 2)); got != vmath.V(1, 1, 1) {
		t.Errorf("corner = %v", got)
	}
	b := im.Bounds()
	if b.Min != vmath.V(-1, -1, -1) || b.Max != vmath.V(1, 1, 1) {
		t.Errorf("bounds = %v..%v", b.Min, b.Max)
	}
}

func TestImageDataTrilinearSample(t *testing.T) {
	im := NewImageData(2, 2, 2, vmath.V(0, 0, 0), vmath.V(1, 1, 1))
	f := NewField("s", 1, 8)
	// s = x + 10y + 100z at corners; trilinear interpolation is exact for
	// multilinear functions.
	for idx := 0; idx < 8; idx++ {
		p := im.Point(idx)
		f.SetScalar(idx, p.X+10*p.Y+100*p.Z)
	}
	im.Points.Add(f)
	check := func(x, y, z float64) {
		got, ok := im.SampleScalar(f, vmath.V(x, y, z))
		if !ok {
			t.Fatalf("sample at (%v,%v,%v) out of bounds", x, y, z)
		}
		want := x + 10*y + 100*z
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("sample(%v,%v,%v) = %v, want %v", x, y, z, got, want)
		}
	}
	check(0.5, 0.5, 0.5)
	check(0.25, 0.75, 0.1)
	check(0, 0, 0)
	check(1, 1, 1)
	if _, ok := im.SampleScalar(f, vmath.V(1.01, 0, 0)); ok {
		t.Error("sample outside volume should fail")
	}
	if _, ok := im.SampleScalar(f, vmath.V(-0.01, 0, 0)); ok {
		t.Error("sample outside volume should fail")
	}
}

func TestImageDataSampleVector(t *testing.T) {
	im := NewImageData(2, 2, 2, vmath.V(0, 0, 0), vmath.V(1, 1, 1))
	f := NewField("V", 3, 8)
	for idx := 0; idx < 8; idx++ {
		p := im.Point(idx)
		f.SetVec3(idx, vmath.V(p.X, p.Y, p.Z))
	}
	im.Points.Add(f)
	got, ok := im.SampleVector(f, vmath.V(0.5, 0.25, 0.75))
	if !ok || !got.NearEq(vmath.V(0.5, 0.25, 0.75), 1e-12) {
		t.Errorf("SampleVector = %v ok=%v", got, ok)
	}
}

func TestImageDataGradient(t *testing.T) {
	im := NewImageData(5, 5, 5, vmath.V(0, 0, 0), vmath.V(1, 1, 1))
	f := NewField("s", 1, im.NumPoints())
	for idx := 0; idx < im.NumPoints(); idx++ {
		p := im.Point(idx)
		f.SetScalar(idx, 2*p.X-3*p.Y+4*p.Z)
	}
	im.Points.Add(f)
	g := im.Gradient(f, 2, 2, 2)
	if !g.NearEq(vmath.V(2, -3, 4), 1e-12) {
		t.Errorf("interior gradient = %v", g)
	}
	// One-sided difference at the boundary is still exact for linear fields.
	g = im.Gradient(f, 0, 0, 0)
	if !g.NearEq(vmath.V(2, -3, 4), 1e-12) {
		t.Errorf("boundary gradient = %v", g)
	}
}

func TestCellTypeCorners(t *testing.T) {
	cases := map[CellType]int{
		CellVertex: 1, CellLine: 2, CellTriangle: 3, CellQuad: 4,
		CellTetra: 4, CellPyramid: 5, CellWedge: 6, CellHexahedron: 8,
		CellVoxel: 8, CellPolyLine: 0, CellPolygon: 0,
	}
	for ct, want := range cases {
		if got := ct.NumCorners(); got != want {
			t.Errorf("%v corners = %d, want %d", ct, got, want)
		}
	}
	if CellTetra.String() != "tetra" {
		t.Errorf("String = %q", CellTetra.String())
	}
}

func TestUnstructuredGridBasics(t *testing.T) {
	u := NewUnstructuredGrid()
	a := u.AddPoint(vmath.V(0, 0, 0))
	b := u.AddPoint(vmath.V(1, 0, 0))
	c := u.AddPoint(vmath.V(0, 1, 0))
	d := u.AddPoint(vmath.V(0, 0, 1))
	u.AddCell(CellTetra, a, b, c, d)
	if u.NumPoints() != 4 || u.NumCells() != 1 {
		t.Fatalf("counts = %d pts %d cells", u.NumPoints(), u.NumCells())
	}
	if u.TypeName() != "vtkUnstructuredGrid" {
		t.Errorf("TypeName = %q", u.TypeName())
	}
	bb := u.Bounds()
	if bb.Min != vmath.V(0, 0, 0) || bb.Max != vmath.V(1, 1, 1) {
		t.Errorf("bounds = %v..%v", bb.Min, bb.Max)
	}
}

func TestPolyDataTriangleIteration(t *testing.T) {
	p := NewPolyData()
	for _, pt := range []vmath.Vec3{
		{X: 0}, {X: 1}, {X: 1, Y: 1}, {Y: 1},
	} {
		p.AddPoint(pt)
	}
	p.AddPoly(0, 1, 2, 3) // quad -> 2 triangles
	p.AddTriangle(0, 1, 2)
	if p.NumTriangles() != 3 {
		t.Errorf("NumTriangles = %d", p.NumTriangles())
	}
	var tris [][3]int
	p.EachTriangle(func(a, b, c int) { tris = append(tris, [3]int{a, b, c}) })
	if len(tris) != 3 {
		t.Fatalf("EachTriangle visited %d", len(tris))
	}
	if tris[0] != [3]int{0, 1, 2} || tris[1] != [3]int{0, 2, 3} {
		t.Errorf("fan triangulation = %v", tris[:2])
	}
}

func TestPolyDataClone(t *testing.T) {
	p := NewPolyData()
	p.AddPoint(vmath.V(1, 2, 3))
	p.AddVert(0)
	p.AddLine(0, 0)
	f := NewField("s", 1, 1)
	f.SetScalar(0, 7)
	p.Points.Add(f)
	q := p.Clone()
	q.Pts[0] = vmath.V(9, 9, 9)
	q.Points.Get("s").SetScalar(0, -1)
	q.Lines[0][0] = 42
	if p.Pts[0] != vmath.V(1, 2, 3) || p.Points.Get("s").Scalar(0) != 7 || p.Lines[0][0] != 0 {
		t.Error("Clone must be deep")
	}
	if q.NumCells() != 2 {
		t.Errorf("clone NumCells = %d", q.NumCells())
	}
}

func TestFieldRangeHelper(t *testing.T) {
	p := NewPolyData()
	p.AddPoint(vmath.V(0, 0, 0))
	f := NewField("T", 1, 1)
	f.SetScalar(0, 5)
	p.Points.Add(f)
	lo, hi := FieldRange(p, "T")
	if lo != 5 || hi != 5 {
		t.Errorf("FieldRange = %v..%v", lo, hi)
	}
	lo, hi = FieldRange(p, "missing")
	if lo != 0 || hi != 1 {
		t.Errorf("missing FieldRange = %v..%v, want default 0..1", lo, hi)
	}
}
