// Package data defines the VTK-like dataset model the engine operates on:
// attribute arrays (Field), structured volumes (ImageData), polygonal data
// (PolyData), and unstructured cell meshes (UnstructuredGrid).
//
// The model follows VTK conventions closely — datasets own points, named
// point-data and cell-data arrays, and cells indexing into the point list —
// so the ParaView simulation layer above maps one-to-one onto it.
package data

import (
	"fmt"
	"math"

	"chatvis/internal/vmath"
)

// Field is a named attribute array with a fixed number of components per
// tuple (1 for scalars, 3 for vectors). Data is stored interleaved.
type Field struct {
	Name          string
	NumComponents int
	Data          []float64
}

// NewField allocates a field of n tuples with comps components, zero-filled.
func NewField(name string, comps, n int) *Field {
	return &Field{Name: name, NumComponents: comps, Data: make([]float64, comps*n)}
}

// NumTuples returns the number of tuples in the field.
func (f *Field) NumTuples() int {
	if f.NumComponents == 0 {
		return 0
	}
	return len(f.Data) / f.NumComponents
}

// Value returns component c of tuple i.
func (f *Field) Value(i, c int) float64 { return f.Data[i*f.NumComponents+c] }

// SetValue sets component c of tuple i.
func (f *Field) SetValue(i, c int, v float64) { f.Data[i*f.NumComponents+c] = v }

// Scalar returns tuple i of a 1-component field.
func (f *Field) Scalar(i int) float64 { return f.Data[i*f.NumComponents] }

// SetScalar sets tuple i of a 1-component field.
func (f *Field) SetScalar(i int, v float64) { f.Data[i*f.NumComponents] = v }

// Vec3 returns tuple i of a 3-component field as a vector.
func (f *Field) Vec3(i int) vmath.Vec3 {
	b := i * f.NumComponents
	return vmath.Vec3{X: f.Data[b], Y: f.Data[b+1], Z: f.Data[b+2]}
}

// SetVec3 sets tuple i of a 3-component field from a vector.
func (f *Field) SetVec3(i int, v vmath.Vec3) {
	b := i * f.NumComponents
	f.Data[b], f.Data[b+1], f.Data[b+2] = v.X, v.Y, v.Z
}

// Append adds one tuple to the field.
func (f *Field) Append(tuple ...float64) {
	if len(tuple) != f.NumComponents {
		panic(fmt.Sprintf("data: field %q expects %d components, got %d",
			f.Name, f.NumComponents, len(tuple)))
	}
	f.Data = append(f.Data, tuple...)
}

// Range returns the min and max over all components (for scalars this is the
// scalar range; for vectors, the per-component range as VTK reports when a
// single component is selected). An empty field returns (0, 1) like VTK's
// default transfer-function range.
func (f *Field) Range() (lo, hi float64) {
	if len(f.Data) == 0 {
		return 0, 1
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range f.Data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// MagnitudeRange returns the min and max tuple magnitude (the L2 norm of
// each tuple). For scalar fields this is the range of absolute values.
func (f *Field) MagnitudeRange() (lo, hi float64) {
	n := f.NumTuples()
	if n == 0 {
		return 0, 1
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		s := 0.0
		for c := 0; c < f.NumComponents; c++ {
			v := f.Value(i, c)
			s += v * v
		}
		m := math.Sqrt(s)
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	return lo, hi
}

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	d := make([]float64, len(f.Data))
	copy(d, f.Data)
	return &Field{Name: f.Name, NumComponents: f.NumComponents, Data: d}
}

// FieldSet is an ordered collection of named fields (point data or cell
// data). Order is preserved so file output is deterministic.
type FieldSet struct {
	fields []*Field
	index  map[string]int
}

// NewFieldSet returns an empty field set.
func NewFieldSet() *FieldSet {
	return &FieldSet{index: make(map[string]int)}
}

// Add inserts or replaces a field by name.
func (fs *FieldSet) Add(f *Field) {
	if fs.index == nil {
		fs.index = make(map[string]int)
	}
	if i, ok := fs.index[f.Name]; ok {
		fs.fields[i] = f
		return
	}
	fs.index[f.Name] = len(fs.fields)
	fs.fields = append(fs.fields, f)
}

// Get returns the field with the given name, or nil.
func (fs *FieldSet) Get(name string) *Field {
	if fs == nil || fs.index == nil {
		return nil
	}
	if i, ok := fs.index[name]; ok {
		return fs.fields[i]
	}
	return nil
}

// Has reports whether a field with the given name exists.
func (fs *FieldSet) Has(name string) bool { return fs.Get(name) != nil }

// Names returns the field names in insertion order.
func (fs *FieldSet) Names() []string {
	out := make([]string, len(fs.fields))
	for i, f := range fs.fields {
		out[i] = f.Name
	}
	return out
}

// Len returns the number of fields.
func (fs *FieldSet) Len() int { return len(fs.fields) }

// At returns the i-th field in insertion order.
func (fs *FieldSet) At(i int) *Field { return fs.fields[i] }

// First returns the first field, or nil if the set is empty. ParaView uses
// the first array as the default coloring array.
func (fs *FieldSet) First() *Field {
	if len(fs.fields) == 0 {
		return nil
	}
	return fs.fields[0]
}

// FirstScalar returns the first 1-component field, or nil.
func (fs *FieldSet) FirstScalar() *Field {
	for _, f := range fs.fields {
		if f.NumComponents == 1 {
			return f
		}
	}
	return nil
}

// FirstVector returns the first 3-component field, or nil.
func (fs *FieldSet) FirstVector() *Field {
	for _, f := range fs.fields {
		if f.NumComponents == 3 {
			return f
		}
	}
	return nil
}

// Clone returns a deep copy of the set.
func (fs *FieldSet) Clone() *FieldSet {
	out := NewFieldSet()
	for _, f := range fs.fields {
		out.Add(f.Clone())
	}
	return out
}
