package data

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Cache is a process-wide, size-bounded, content-keyed dataset cache.
// Concurrent lookups of the same key are singleflight-guarded: one
// caller computes, the rest wait and share the result — the same
// discipline the chatvisd request coalescer applies one layer up, so
// N jobs reading the same VTK file cost one parse and share one
// in-memory Dataset.
//
// Cached datasets are shared across goroutines and MUST be treated as
// immutable by every consumer (the filters all allocate fresh outputs;
// nothing in the execution path mutates its input dataset).
type Cache struct {
	maxBytes int64

	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	bytes    int64
	inflight map[string]*cacheCall

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	ds   Dataset
	size int64
}

type cacheCall struct {
	done chan struct{}
	ds   Dataset
	err  error
}

// NewCache builds a cache bounded to maxBytes of (approximate) dataset
// memory. maxBytes <= 0 disables bounding (cache grows without limit).
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*cacheCall{},
	}
}

// Get returns the cached dataset for key, marking it recently used.
func (c *Cache) Get(key string) (Dataset, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).ds, true
	}
	c.misses.Add(1)
	return nil, false
}

// GetOrCompute returns the dataset for key, computing it with fn on a
// miss. Concurrent calls for the same key share one fn execution.
// Non-cancellation errors are returned to every waiter and never
// cached; if the computing caller fails with a context cancellation
// (its OWN job being canceled says nothing about the waiters'), each
// waiter retries the computation instead of failing spuriously. A
// waiter blocked on a shared in-flight computation honors its own ctx.
// The hit result reports whether the value came from the cache (or a
// shared in-flight computation) rather than this caller's own fn run.
func (c *Cache) GetOrCompute(ctx context.Context, key string, fn func() (Dataset, error)) (ds Dataset, hit bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			return el.Value.(*cacheEntry).ds, true, nil
		}
		if call, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, false, ctx.Err()
			case <-call.done:
			}
			if call.err != nil {
				if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
					continue // leader's job was canceled, not ours: retry
				}
				return nil, false, call.err
			}
			c.hits.Add(1)
			return call.ds, true, nil
		}
		call := &cacheCall{done: make(chan struct{})}
		c.inflight[key] = call
		c.mu.Unlock()
		c.misses.Add(1)

		call.ds, call.err = fn()

		c.mu.Lock()
		delete(c.inflight, key)
		if call.err == nil {
			c.addLocked(key, call.ds)
		}
		c.mu.Unlock()
		close(call.done)
		return call.ds, false, call.err
	}
}

// Add inserts a dataset under key, evicting least-recently-used entries
// to stay under the byte bound.
func (c *Cache) Add(key string, ds Dataset) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(key, ds)
}

func (c *Cache) addLocked(key string, ds Dataset) {
	if ds == nil {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	size := ApproxSize(ds)
	if c.maxBytes > 0 && size > c.maxBytes {
		// Larger than the whole cache: inserting it would pin bytes
		// above the bound forever (the eviction loop never evicts the
		// sole survivor) and flush every useful smaller entry on the
		// way. Serve it to the caller uncached instead.
		return
	}
	el := c.lru.PushFront(&cacheEntry{key: key, ds: ds, size: size})
	c.entries[key] = el
	c.bytes += size
	for c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 1 {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.lru.Remove(oldest)
		delete(c.entries, ent.key)
		c.bytes -= ent.size
		c.evictions.Add(1)
	}
}

// CacheStats is a point-in-time snapshot of cache behaviour (surfaced
// at chatvisd's /metrics endpoint).
type CacheStats struct {
	Entries   int
	Bytes     int64
	MaxBytes  int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := len(c.entries), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// ApproxSize estimates the in-memory footprint of a dataset in bytes:
// geometry plus attribute arrays plus connectivity. It is the unit the
// cache's byte bound is enforced in.
func ApproxSize(ds Dataset) int64 {
	if ds == nil {
		return 0
	}
	const vecBytes = 24 // three float64s
	var n int64
	fieldBytes := func(fs *FieldSet) int64 {
		if fs == nil {
			return 0
		}
		var b int64
		for i := 0; i < fs.Len(); i++ {
			b += int64(len(fs.At(i).Data)) * 8
		}
		return b
	}
	connBytes := func(conn [][]int) int64 {
		var b int64
		for _, c := range conn {
			b += int64(len(c)) * 8
		}
		return b
	}
	switch t := ds.(type) {
	case *ImageData:
		n = fieldBytes(t.Points)
	case *PolyData:
		n = int64(len(t.Pts))*vecBytes +
			fieldBytes(t.Points) + fieldBytes(t.CellD) +
			connBytes(t.Verts) + connBytes(t.Lines) + connBytes(t.Polys)
	case *UnstructuredGrid:
		n = int64(len(t.Pts)) * vecBytes
		for _, c := range t.Cells {
			n += int64(len(c.IDs))*8 + 16
		}
		n += fieldBytes(t.Points) + fieldBytes(t.CellD)
	default:
		n = int64(ds.NumPoints()) * vecBytes
	}
	// Floor so zero-sized datasets still occupy an accounting slot.
	if n < 64 {
		n = 64
	}
	return n
}
