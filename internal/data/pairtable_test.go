package data

import (
	"math/rand"
	"testing"
)

func TestPackPairCanonical(t *testing.T) {
	if PackPair(3, 7) != PackPair(7, 3) {
		t.Fatal("PackPair must canonicalize order")
	}
	lo, hi := UnpackPair(PackPair(7, 3))
	if lo != 3 || hi != 7 {
		t.Fatalf("UnpackPair = (%d,%d), want (3,7)", lo, hi)
	}
	if PackPair(5, 5) != PackPair(5, 5) {
		t.Fatal("self-pair must be stable")
	}
}

// TestPairTableAgainstMap drives the table with random insert/lookup
// traffic, including duplicate keys and resets, mirrored against a Go
// map as the reference.
func TestPairTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := NewPairTable()
	for round := 0; round < 3; round++ {
		ref := map[uint64]int32{}
		next := int32(0)
		for op := 0; op < 20000; op++ {
			i, j := rng.Intn(3000), rng.Intn(3000)
			key := PackPair(i, j)
			want, seen := ref[key]
			got, added := tbl.GetOrPut(key, next)
			if seen {
				if added || got != want {
					t.Fatalf("round %d: GetOrPut(%d,%d) = (%d,%v), want (%d,false)", round, i, j, got, added, want)
				}
			} else {
				if !added || got != next {
					t.Fatalf("round %d: GetOrPut(%d,%d) = (%d,%v), want (%d,true)", round, i, j, got, added, next)
				}
				ref[key] = next
				next++
			}
			if v, ok := tbl.Get(key); !ok || v != ref[key] {
				t.Fatalf("round %d: Get(%d,%d) = (%d,%v), want (%d,true)", round, i, j, v, ok, ref[key])
			}
		}
		if tbl.Len() != len(ref) {
			t.Fatalf("round %d: Len = %d, want %d", round, tbl.Len(), len(ref))
		}
		tbl.Reset()
		if tbl.Len() != 0 {
			t.Fatal("Len after Reset != 0")
		}
		if _, ok := tbl.Get(PackPair(1, 2)); ok {
			t.Fatal("Reset table still returns entries")
		}
	}
}

// TestPairTableGenerationWrap forces the uint32 generation counter to
// wrap and checks stale stamps cannot resurrect old entries.
func TestPairTableGenerationWrap(t *testing.T) {
	tbl := NewPairTable()
	tbl.GetOrPut(PackPair(1, 2), 7)
	tbl.gen = ^uint32(0) // next Reset wraps
	tbl.Reset()
	if _, ok := tbl.Get(PackPair(1, 2)); ok {
		t.Fatal("entry survived generation wrap")
	}
	if got, added := tbl.GetOrPut(PackPair(1, 2), 9); !added || got != 9 {
		t.Fatalf("post-wrap insert = (%d,%v), want (9,true)", got, added)
	}
}

func BenchmarkPairTableInsert(b *testing.B) {
	tbl := NewPairTable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Reset()
		for k := 0; k < 1024; k++ {
			tbl.GetOrPut(PackPair(k, k+1), int32(k))
		}
	}
}
