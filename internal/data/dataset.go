package data

import (
	"fmt"
	"math"

	"chatvis/internal/vmath"
)

// Dataset is the interface shared by all dataset types. It exposes the
// pieces the filters and renderer need: geometry (points, bounds) and
// attributes.
type Dataset interface {
	// NumPoints returns the number of points in the dataset.
	NumPoints() int
	// Point returns point i.
	Point(i int) vmath.Vec3
	// Bounds returns the axis-aligned bounding box of the geometry.
	Bounds() vmath.AABB
	// PointData returns the point-centered attribute arrays.
	PointData() *FieldSet
	// TypeName returns the VTK-style dataset class name, e.g.
	// "vtkImageData"; it appears in reader output and error messages.
	TypeName() string
}

// ImageData is a regular structured grid (VTK structured points): Dims
// samples per axis positioned at Origin + index*Spacing.
type ImageData struct {
	Dims    [3]int
	Origin  vmath.Vec3
	Spacing vmath.Vec3
	Points  *FieldSet
}

// NewImageData allocates an image dataset with the given dimensions.
func NewImageData(nx, ny, nz int, origin, spacing vmath.Vec3) *ImageData {
	return &ImageData{
		Dims:    [3]int{nx, ny, nz},
		Origin:  origin,
		Spacing: spacing,
		Points:  NewFieldSet(),
	}
}

// TypeName implements Dataset.
func (im *ImageData) TypeName() string { return "vtkImageData" }

// NumPoints implements Dataset.
func (im *ImageData) NumPoints() int { return im.Dims[0] * im.Dims[1] * im.Dims[2] }

// Index converts (i,j,k) to a flat point index.
func (im *ImageData) Index(i, j, k int) int {
	return i + im.Dims[0]*(j+im.Dims[1]*k)
}

// IJK converts a flat point index back to (i,j,k).
func (im *ImageData) IJK(idx int) (i, j, k int) {
	i = idx % im.Dims[0]
	j = (idx / im.Dims[0]) % im.Dims[1]
	k = idx / (im.Dims[0] * im.Dims[1])
	return
}

// Point implements Dataset.
func (im *ImageData) Point(idx int) vmath.Vec3 {
	i, j, k := im.IJK(idx)
	return vmath.Vec3{
		X: im.Origin.X + float64(i)*im.Spacing.X,
		Y: im.Origin.Y + float64(j)*im.Spacing.Y,
		Z: im.Origin.Z + float64(k)*im.Spacing.Z,
	}
}

// Bounds implements Dataset.
func (im *ImageData) Bounds() vmath.AABB {
	max := vmath.Vec3{
		X: im.Origin.X + float64(im.Dims[0]-1)*im.Spacing.X,
		Y: im.Origin.Y + float64(im.Dims[1]-1)*im.Spacing.Y,
		Z: im.Origin.Z + float64(im.Dims[2]-1)*im.Spacing.Z,
	}
	return vmath.AABB{Min: im.Origin.Min(max), Max: im.Origin.Max(max)}
}

// PointData implements Dataset.
func (im *ImageData) PointData() *FieldSet { return im.Points }

// SampleScalar trilinearly interpolates a 1-component field at world
// position p. The second return is false when p is outside the volume.
func (im *ImageData) SampleScalar(f *Field, p vmath.Vec3) (float64, bool) {
	vals, ok := im.sample(f, p)
	if !ok {
		return 0, false
	}
	return vals[0], true
}

// SampleVector trilinearly interpolates a 3-component field at world
// position p.
func (im *ImageData) SampleVector(f *Field, p vmath.Vec3) (vmath.Vec3, bool) {
	vals, ok := im.sample(f, p)
	if !ok {
		return vmath.Vec3{}, false
	}
	return vmath.Vec3{X: vals[0], Y: vals[1], Z: vals[2]}, true
}

func (im *ImageData) sample(f *Field, p vmath.Vec3) ([3]float64, bool) {
	var out [3]float64
	// Continuous index coordinates.
	fx := (p.X - im.Origin.X) / nonzero(im.Spacing.X)
	fy := (p.Y - im.Origin.Y) / nonzero(im.Spacing.Y)
	fz := (p.Z - im.Origin.Z) / nonzero(im.Spacing.Z)
	if fx < 0 || fy < 0 || fz < 0 ||
		fx > float64(im.Dims[0]-1) || fy > float64(im.Dims[1]-1) || fz > float64(im.Dims[2]-1) {
		return out, false
	}
	i0, j0, k0 := int(fx), int(fy), int(fz)
	clampIdx := func(v, hi int) int {
		if v > hi {
			return hi
		}
		return v
	}
	i1 := clampIdx(i0+1, im.Dims[0]-1)
	j1 := clampIdx(j0+1, im.Dims[1]-1)
	k1 := clampIdx(k0+1, im.Dims[2]-1)
	tx, ty, tz := fx-float64(i0), fy-float64(j0), fz-float64(k0)

	nc := f.NumComponents
	for c := 0; c < nc && c < 3; c++ {
		v000 := f.Value(im.Index(i0, j0, k0), c)
		v100 := f.Value(im.Index(i1, j0, k0), c)
		v010 := f.Value(im.Index(i0, j1, k0), c)
		v110 := f.Value(im.Index(i1, j1, k0), c)
		v001 := f.Value(im.Index(i0, j0, k1), c)
		v101 := f.Value(im.Index(i1, j0, k1), c)
		v011 := f.Value(im.Index(i0, j1, k1), c)
		v111 := f.Value(im.Index(i1, j1, k1), c)
		v00 := v000 + tx*(v100-v000)
		v10 := v010 + tx*(v110-v010)
		v01 := v001 + tx*(v101-v001)
		v11 := v011 + tx*(v111-v011)
		v0 := v00 + ty*(v10-v00)
		v1 := v01 + ty*(v11-v01)
		out[c] = v0 + tz*(v1-v0)
	}
	return out, true
}

// Gradient estimates the central-difference gradient of a scalar field at
// grid point (i,j,k). Used for volume-rendering shading and surface normals.
func (im *ImageData) Gradient(f *Field, i, j, k int) vmath.Vec3 {
	diff := func(axis, lo, hi int, h float64) float64 {
		return (f.Scalar(hi) - f.Scalar(lo)) / h
	}
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	xi0, xi1 := clamp(i-1, im.Dims[0]-1), clamp(i+1, im.Dims[0]-1)
	yj0, yj1 := clamp(j-1, im.Dims[1]-1), clamp(j+1, im.Dims[1]-1)
	zk0, zk1 := clamp(k-1, im.Dims[2]-1), clamp(k+1, im.Dims[2]-1)
	gx := diff(0, im.Index(xi0, j, k), im.Index(xi1, j, k), float64(xi1-xi0)*nonzero(im.Spacing.X))
	gy := diff(1, im.Index(i, yj0, k), im.Index(i, yj1, k), float64(yj1-yj0)*nonzero(im.Spacing.Y))
	gz := diff(2, im.Index(i, j, zk0), im.Index(i, j, zk1), float64(zk1-zk0)*nonzero(im.Spacing.Z))
	return vmath.Vec3{X: gx, Y: gy, Z: gz}
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// CellType identifies the shape of an unstructured cell, using VTK's
// numbering so files and error messages match VTK conventions.
type CellType int

// VTK cell type identifiers (subset used by this engine).
const (
	CellVertex     CellType = 1
	CellLine       CellType = 3
	CellPolyLine   CellType = 4
	CellTriangle   CellType = 5
	CellPolygon    CellType = 7
	CellQuad       CellType = 9
	CellTetra      CellType = 10
	CellVoxel      CellType = 11
	CellHexahedron CellType = 12
	CellWedge      CellType = 13
	CellPyramid    CellType = 14
)

// NumCorners returns the point count for fixed-size cell types and 0 for
// variable-size ones (polyline, polygon).
func (c CellType) NumCorners() int {
	switch c {
	case CellVertex:
		return 1
	case CellLine:
		return 2
	case CellTriangle:
		return 3
	case CellQuad, CellTetra:
		return 4
	case CellPyramid:
		return 5
	case CellWedge:
		return 6
	case CellVoxel, CellHexahedron:
		return 8
	}
	return 0
}

func (c CellType) String() string {
	switch c {
	case CellVertex:
		return "vertex"
	case CellLine:
		return "line"
	case CellPolyLine:
		return "polyline"
	case CellTriangle:
		return "triangle"
	case CellPolygon:
		return "polygon"
	case CellQuad:
		return "quad"
	case CellTetra:
		return "tetra"
	case CellVoxel:
		return "voxel"
	case CellHexahedron:
		return "hexahedron"
	case CellWedge:
		return "wedge"
	case CellPyramid:
		return "pyramid"
	}
	return fmt.Sprintf("cellType(%d)", int(c))
}

// Cell is one unstructured cell: a type plus indices into the point array.
type Cell struct {
	Type CellType
	IDs  []int
}

// UnstructuredGrid is an explicit mesh of cells over a shared point list.
type UnstructuredGrid struct {
	Pts    []vmath.Vec3
	Cells  []Cell
	Points *FieldSet
	CellD  *FieldSet

	conn intSlab // backs NewCell id slices (see slab.go)
}

// NewUnstructuredGrid returns an empty grid.
func NewUnstructuredGrid() *UnstructuredGrid {
	return &UnstructuredGrid{Points: NewFieldSet(), CellD: NewFieldSet()}
}

// TypeName implements Dataset.
func (u *UnstructuredGrid) TypeName() string { return "vtkUnstructuredGrid" }

// NumPoints implements Dataset.
func (u *UnstructuredGrid) NumPoints() int { return len(u.Pts) }

// Point implements Dataset.
func (u *UnstructuredGrid) Point(i int) vmath.Vec3 { return u.Pts[i] }

// Bounds implements Dataset.
func (u *UnstructuredGrid) Bounds() vmath.AABB {
	b := vmath.EmptyAABB()
	for _, p := range u.Pts {
		b.Extend(p)
	}
	return b
}

// PointData implements Dataset.
func (u *UnstructuredGrid) PointData() *FieldSet { return u.Points }

// CellData returns the cell-centered attribute arrays.
func (u *UnstructuredGrid) CellData() *FieldSet { return u.CellD }

// AddPoint appends a point and returns its index.
func (u *UnstructuredGrid) AddPoint(p vmath.Vec3) int {
	u.Pts = append(u.Pts, p)
	return len(u.Pts) - 1
}

// AddCell appends a cell.
func (u *UnstructuredGrid) AddCell(t CellType, ids ...int) {
	u.Cells = append(u.Cells, Cell{Type: t, IDs: ids})
}

// NumCells returns the number of cells.
func (u *UnstructuredGrid) NumCells() int { return len(u.Cells) }

// PolyData holds polygonal geometry: vertices, polylines and polygons over
// a shared point list, in VTK's connectivity style.
type PolyData struct {
	Pts    []vmath.Vec3
	Verts  [][]int // each entry: point ids rendered as points
	Lines  [][]int // each entry: a polyline (>=2 point ids)
	Polys  [][]int // each entry: a polygon (>=3 point ids)
	Points *FieldSet
	CellD  *FieldSet

	conn intSlab // backs AddTriangle/AddVert/New* id slices (see slab.go)
}

// NewPolyData returns empty polygonal data.
func NewPolyData() *PolyData {
	return &PolyData{Points: NewFieldSet(), CellD: NewFieldSet()}
}

// TypeName implements Dataset.
func (p *PolyData) TypeName() string { return "vtkPolyData" }

// NumPoints implements Dataset.
func (p *PolyData) NumPoints() int { return len(p.Pts) }

// Point implements Dataset.
func (p *PolyData) Point(i int) vmath.Vec3 { return p.Pts[i] }

// Bounds implements Dataset.
func (p *PolyData) Bounds() vmath.AABB {
	b := vmath.EmptyAABB()
	for _, pt := range p.Pts {
		b.Extend(pt)
	}
	return b
}

// PointData implements Dataset.
func (p *PolyData) PointData() *FieldSet { return p.Points }

// CellData returns the cell-centered attribute arrays.
func (p *PolyData) CellData() *FieldSet { return p.CellD }

// AddPoint appends a point and returns its index.
func (p *PolyData) AddPoint(pt vmath.Vec3) int {
	p.Pts = append(p.Pts, pt)
	return len(p.Pts) - 1
}

// AddTriangle appends a triangle polygon. The id slice is carved from
// the shared connectivity slab rather than individually allocated.
func (p *PolyData) AddTriangle(a, b, c int) {
	t := p.conn.take(3)
	t[0], t[1], t[2] = a, b, c
	p.Polys = append(p.Polys, t)
}

// AddPoly appends a polygon with the given point ids.
func (p *PolyData) AddPoly(ids ...int) { p.Polys = append(p.Polys, ids) }

// AddLine appends a polyline with the given point ids.
func (p *PolyData) AddLine(ids ...int) { p.Lines = append(p.Lines, ids) }

// AddVert appends a vertex cell.
func (p *PolyData) AddVert(id int) {
	v := p.conn.take(1)
	v[0] = id
	p.Verts = append(p.Verts, v)
}

// NumCells returns the total number of cells of all kinds.
func (p *PolyData) NumCells() int { return len(p.Verts) + len(p.Lines) + len(p.Polys) }

// NumTriangles counts triangles after fan-triangulating every polygon.
func (p *PolyData) NumTriangles() int {
	n := 0
	for _, poly := range p.Polys {
		if len(poly) >= 3 {
			n += len(poly) - 2
		}
	}
	return n
}

// EachTriangle invokes fn for every triangle of the fan triangulation of
// every polygon. It is the renderer's iteration primitive.
func (p *PolyData) EachTriangle(fn func(a, b, c int)) {
	for _, poly := range p.Polys {
		for i := 2; i < len(poly); i++ {
			fn(poly[0], poly[i-1], poly[i])
		}
	}
}

// Clone returns a deep copy of the polydata.
func (p *PolyData) Clone() *PolyData {
	out := NewPolyData()
	out.Pts = append([]vmath.Vec3(nil), p.Pts...)
	out.Verts = cloneConn(p.Verts)
	out.Lines = cloneConn(p.Lines)
	out.Polys = cloneConn(p.Polys)
	out.Points = p.Points.Clone()
	out.CellD = p.CellD.Clone()
	return out
}

func cloneConn(conn [][]int) [][]int {
	out := make([][]int, len(conn))
	total := 0
	for _, c := range conn {
		total += len(c)
	}
	// One flat backing array for every cloned cell instead of one
	// allocation per cell.
	flat := make([]int, 0, total)
	for i, c := range conn {
		off := len(flat)
		flat = append(flat, c...)
		out[i] = flat[off:len(flat):len(flat)]
	}
	return out
}

// FieldRange returns the range of the named point-data field of ds, or
// (0, 1) when missing — matching VTK's default lookup-table range.
func FieldRange(ds Dataset, name string) (lo, hi float64) {
	f := ds.PointData().Get(name)
	if f == nil {
		return 0, 1
	}
	lo, hi = f.Range()
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return 0, 1
	}
	return lo, hi
}
