package eval

import (
	"context"
	"strings"
	"testing"
)

// TestMultiTurnScenariosScoreHigh runs the full conversational track:
// every scenario's every turn must complete error-free, with per-turn
// plan similarity at (or extremely near) 1.0 against that turn's
// ground-truth plan — the conversational counterpart of the one-shot
// plan-accuracy table. This is the acceptance criterion: ≥ 3 multi-turn
// scenarios, scored per turn.
func TestMultiTurnScenariosScoreHigh(t *testing.T) {
	c := testConfig(t)
	mt, err := c.RunMultiTurn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(mt.Results) < 3 {
		t.Fatalf("only %d multi-turn scenarios, want >= 3", len(mt.Results))
	}
	for _, r := range mt.Results {
		if len(r.Turns) < 2 {
			t.Errorf("%s: only %d turns", r.ID, len(r.Turns))
			continue
		}
		for i, tr := range r.Turns {
			if !tr.ErrorFree {
				t.Errorf("%s turn %d: not error-free", r.ID, i+1)
			}
			if tr.PlanScore.Overall < 0.95 {
				t.Errorf("%s turn %d: plan similarity %.2f, want >= 0.95 (%s)",
					r.ID, i+1, tr.PlanScore.Overall, tr.PlanScore)
			}
		}
	}
}

// TestMultiTurnEditTurnsAreIncremental: edit turns must recompute fewer
// pipeline stages than the whole plan — the session-engine memoization
// observed through the eval track.
func TestMultiTurnEditTurnsAreIncremental(t *testing.T) {
	c := testConfig(t).withDefaults()
	if err := EnsureData(c.DataDir, c.DataSize); err != nil {
		t.Fatal(err)
	}
	mts, ok := MultiTurnScenarioByID("iso-touchup")
	if !ok {
		t.Fatal("iso-touchup scenario missing")
	}
	res, err := c.runMultiTurnScenario(context.Background(), mts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Turns) != 2 {
		t.Fatalf("turns = %d", len(res.Turns))
	}
	// Turn 1 seeds the engine with the full pipeline (2 stages); the
	// value edit recomputes exactly the contour.
	if res.Turns[0].ExecutionsDelta != 2 {
		t.Errorf("turn 1 executions = %d, want 2", res.Turns[0].ExecutionsDelta)
	}
	if res.Turns[1].ExecutionsDelta != 1 {
		t.Errorf("turn 2 executions = %d, want 1 (incremental)", res.Turns[1].ExecutionsDelta)
	}
}

// TestMultiTurnFormatHasPerTurnColumns pins the report layout the
// acceptance criterion names.
func TestMultiTurnFormatHasPerTurnColumns(t *testing.T) {
	c := testConfig(t)
	mt, err := c.RunMultiTurn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := mt.Format()
	for _, want := range []string{"turn 1 plan-sim", "turn 2 plan-sim", "re-exec"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}
