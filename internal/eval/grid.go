package eval

import (
	"context"
	"fmt"
	"image"
	"path/filepath"
	"sync"

	"chatvis/internal/llm"
)

// groundTruthCache renders each scenario's reference image at most once
// and shares it across grid cells. Safe for concurrent use: concurrent
// requests for the same scenario block on a single render (sync.Once per
// entry) instead of duplicating it.
type groundTruthCache struct {
	mu      sync.Mutex
	entries map[string]*gtEntry
}

type gtEntry struct {
	once sync.Once
	img  image.Image
	err  error
}

func newGroundTruthCache() *groundTruthCache {
	return &groundTruthCache{entries: map[string]*gtEntry{}}
}

// get returns the scenario's ground-truth image, rendering it on first
// use.
func (g *groundTruthCache) get(c Config, scn Scenario) (image.Image, error) {
	g.mu.Lock()
	e, ok := g.entries[scn.ID]
	if !ok {
		e = &gtEntry{}
		g.entries[scn.ID] = e
	}
	g.mu.Unlock()
	e.once.Do(func() {
		e.img, e.err = c.groundTruth(scn)
	})
	return e.img, e.err
}

// GridOptions tunes a grid sweep.
type GridOptions struct {
	// Workers is the size of the cell worker pool; values <= 1 run the
	// cells serially.
	Workers int
	// ShareGroundTruth renders each scenario's reference image once for
	// the whole sweep instead of once per cell (the paper-style serial
	// baseline re-renders per cell; see RunTable2).
	ShareGroundTruth bool
	// Models are the unassisted comparison columns; nil means the
	// paper's five (llm.PaperModels). The assisted ChatVis column always
	// runs first.
	Models []string
	// Scenarios are the grid rows; nil means the paper's five
	// (PaperScenarios — the extended scenarios are opt-in rows).
	Scenarios []Scenario
}

func (o GridOptions) withDefaults() GridOptions {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Models == nil {
		o.Models = llm.PaperModels()
	}
	if o.Scenarios == nil {
		o.Scenarios = PaperScenarios()
	}
	return o
}

// gridJob is one (scenario, model) cell of the sweep.
type gridJob struct {
	scn   Scenario
	model string
}

// RunGrid sweeps scenarios × models concurrently with `workers`
// goroutines, a shared ground-truth cache and per-cell isolated output
// directories. Cancelling the context aborts in-flight sessions and
// drains the queue.
func (c Config) RunGrid(ctx context.Context, workers int) (*Table2, error) {
	return c.RunGridOpts(ctx, GridOptions{Workers: workers, ShareGroundTruth: true})
}

// RunGridOpts is RunGrid with full control over the sweep shape.
func (c Config) RunGridOpts(ctx context.Context, opts GridOptions) (*Table2, error) {
	c = c.withDefaults()
	opts = opts.withDefaults()
	// Datasets are written once, before any worker starts, so the
	// stat-then-write inside EnsureData never races.
	if err := EnsureData(c.DataDir, c.DataSize); err != nil {
		return nil, err
	}

	t2 := &Table2{
		Models: append([]string{ChatVisModel}, opts.Models...),
		Cells:  map[string]map[string]CellResult{},
	}
	var jobs []gridJob
	for _, scn := range opts.Scenarios {
		t2.Tasks = append(t2.Tasks, scn.Row)
		t2.Cells[scn.Row] = map[string]CellResult{}
		for _, m := range t2.Models {
			jobs = append(jobs, gridJob{scn: scn, model: m})
		}
	}

	shared := newGroundTruthCache()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	jobCh := make(chan gridJob)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				if ctx.Err() != nil {
					continue // drain: a failure or cancellation is pending
				}
				outDir := filepath.Join(c.OutDir, "grid", job.model, job.scn.ID)
				cfg, gts := c, shared
				if !opts.ShareGroundTruth {
					// Baseline mode: a throwaway cache per cell (one
					// render per cell, like the original serial sweep),
					// scoped to the cell's own output dir so concurrent
					// renders of the same scenario never share files.
					cfg.OutDir = outDir
					gts = newGroundTruthCache()
				}
				cell, _, err := cfg.runCell(ctx, job.scn, job.model, gts, outDir)
				if err != nil {
					fail(fmt.Errorf("eval: %s on %s: %w", job.model, job.scn.ID, err))
					continue
				}
				mu.Lock()
				t2.Cells[job.scn.Row][job.model] = cell
				mu.Unlock()
			}
		}()
	}
	for _, job := range jobs {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t2, nil
}
