package eval

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		DataDir:  t.TempDir(),
		OutDir:   t.TempDir(),
		Width:    320,
		Height:   180,
		DataSize: DataSmall,
	}
}

func TestScenariosComplete(t *testing.T) {
	scns := Scenarios()
	if len(scns) != 12 {
		t.Fatalf("scenarios = %d", len(scns))
	}
	ids := map[string]bool{}
	for _, s := range scns {
		ids[s.ID] = true
		p := s.UserPrompt(1920, 1080)
		if !strings.Contains(p, "1920 x 1080 pixels") {
			t.Errorf("%s: prompt missing resolution", s.ID)
		}
		if !strings.Contains(p, s.Screenshot) {
			t.Errorf("%s: prompt does not name its screenshot", s.ID)
		}
		gt := s.GroundTruthScript(640, 360)
		if !strings.Contains(gt, "from paraview.simple import *") {
			t.Errorf("%s: ground truth not a pvpython script", s.ID)
		}
		if !strings.Contains(gt, "[640, 360]") {
			t.Errorf("%s: ground truth ignores resolution", s.ID)
		}
	}
	for _, want := range []string{"iso", "slice", "volume", "delaunay", "stream",
		"clip", "threshold", "glyph", "sliceclip", "isovalues",
		"glyphslice", "threshcontour"} {
		if !ids[want] {
			t.Errorf("missing scenario %q", want)
		}
	}
	if _, ok := ScenarioByID("stream"); !ok {
		t.Error("ScenarioByID failed")
	}
	if _, ok := ScenarioByID("nope"); ok {
		t.Error("unknown id should fail")
	}
	// The paper subset keeps Table II's shape and ordering.
	paper := PaperScenarios()
	if len(paper) != 5 {
		t.Fatalf("paper scenarios = %d", len(paper))
	}
	for i, want := range []string{"iso", "slice", "volume", "delaunay", "stream"} {
		if paper[i].ID != want {
			t.Errorf("paper scenario %d = %q, want %q", i, paper[i].ID, want)
		}
	}
}

// TestExtendedScenariosRunChatVis drives the assistant end-to-end on the
// three extended scenarios: each must execute cleanly and reproduce its
// ground-truth image, like the paper five.
func TestExtendedScenariosRunChatVis(t *testing.T) {
	for _, id := range []string{"clip", "threshold", "glyph", "sliceclip", "isovalues",
		"glyphslice", "threshcontour"} {
		t.Run(id, func(t *testing.T) {
			c := testConfig(t)
			scn, ok := ScenarioByID(id)
			if !ok {
				t.Fatalf("scenario %q not registered", id)
			}
			cell, art, err := c.RunChatVis(context.Background(), scn)
			if err != nil {
				t.Fatal(err)
			}
			if !cell.ErrorFree {
				t.Fatalf("ChatVis failed on %s: first error %q\nscript:\n%s",
					id, cell.FirstError, art.FinalScript)
			}
			if !cell.Screenshot {
				t.Errorf("%s screenshot should match ground truth: %s", id, cell.Metrics)
			}
		})
	}
}

func TestEnsureDataWritesOnceAndSkips(t *testing.T) {
	dir := t.TempDir()
	if err := EnsureData(dir, DataSmall); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"ml-100.vtk", "can_points.ex2", "disk.ex2"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s missing: %v", f, err)
		}
	}
	info1, _ := os.Stat(filepath.Join(dir, "ml-100.vtk"))
	if err := EnsureData(dir, DataSmall); err != nil {
		t.Fatal(err)
	}
	info2, _ := os.Stat(filepath.Join(dir, "ml-100.vtk"))
	if !info1.ModTime().Equal(info2.ModTime()) {
		t.Error("EnsureData should not rewrite existing files")
	}
}

func TestRunChatVisOnIso(t *testing.T) {
	c := testConfig(t)
	scn, _ := ScenarioByID("iso")
	cell, art, err := c.RunChatVis(context.Background(), scn)
	if err != nil {
		t.Fatal(err)
	}
	if !cell.ErrorFree {
		t.Fatalf("ChatVis failed on iso: %+v", cell)
	}
	if !cell.Screenshot {
		t.Errorf("screenshot should match ground truth: %s", cell.Metrics)
	}
	if art.FinalScript == "" {
		t.Error("artifact missing final script")
	}
	// ChatVis uses the same engine and canonical calls as ground truth:
	// images should be essentially identical.
	if cell.Metrics.RMSE > 0.02 {
		t.Errorf("iso image diverges from ground truth: %s", cell.Metrics)
	}
}

func TestRunUnassistedGPT4VolumeIsBlank(t *testing.T) {
	c := testConfig(t)
	scn, _ := ScenarioByID("volume")
	cell, _, err := c.RunUnassisted(context.Background(), "gpt-4", scn)
	if err != nil {
		t.Fatal(err)
	}
	if !cell.ErrorFree {
		t.Fatalf("paper: GPT-4 volume script runs without error; got %+v", cell)
	}
	if cell.Screenshot {
		t.Error("paper: GPT-4 volume screenshot is wrong (blank); judge must reject it")
	}
}

func TestRunTable2ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is slow")
	}
	c := testConfig(t)
	t2, err := c.RunTable2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Tasks) != 5 || len(t2.Models) != 6 {
		t.Fatalf("grid = %d tasks x %d models", len(t2.Tasks), len(t2.Models))
	}
	// ChatVis: No error / SS yes on all tasks.
	for _, task := range t2.Tasks {
		cv := t2.Cells[task]["ChatVis"]
		if !cv.ErrorFree || !cv.Screenshot {
			t.Errorf("ChatVis on %s: error-free=%v ss=%v (want true/true)",
				task, cv.ErrorFree, cv.Screenshot)
		}
	}
	// GPT-4: error-free only on isosurfacing + volume; SS only on
	// isosurfacing.
	g4Want := map[string][2]bool{
		"Isosurfacing":            {true, true},
		"Slicing then contouring": {false, false},
		"Volume rendering":        {true, false},
		"Delaunay triangulation":  {false, false},
		"Streamline tracing":      {false, false},
	}
	for task, want := range g4Want {
		got := t2.Cells[task]["gpt-4"]
		if got.ErrorFree != want[0] || got.Screenshot != want[1] {
			t.Errorf("gpt-4 on %s: error-free=%v ss=%v, want %v/%v",
				task, got.ErrorFree, got.Screenshot, want[0], want[1])
		}
	}
	// All weaker models: error on everything, no screenshots.
	for _, m := range []string{"gpt-3.5-turbo", "llama3-8b", "codellama-7b", "codegemma"} {
		for _, task := range t2.Tasks {
			cell := t2.Cells[task][m]
			if cell.ErrorFree || cell.Screenshot {
				t.Errorf("%s on %s: error-free=%v ss=%v (want false/false)",
					m, task, cell.ErrorFree, cell.Screenshot)
			}
		}
	}
	// The formatted table mentions every model and task.
	text := t2.Format()
	for _, m := range t2.Models {
		if !strings.Contains(text, m) {
			t.Errorf("formatted table missing %s", m)
		}
	}
}

func TestRunTable1(t *testing.T) {
	c := testConfig(t)
	t1, err := c.RunTable1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !t1.ChatVisOK {
		t.Error("ChatVis streamline script must execute cleanly")
	}
	if !strings.Contains(t1.GPT4Script, "glyph.Scalars") {
		t.Error("GPT-4 script should contain the hallucinated attributes")
	}
	if !strings.Contains(t1.GPT4Error, "AttributeError") {
		t.Errorf("GPT4Error = %q", t1.GPT4Error)
	}
	text := t1.Format()
	if !strings.Contains(text, "ChatVis") || !strings.Contains(text, "GPT-4") {
		t.Error("Format output incomplete")
	}
}

func TestRunFigureIso(t *testing.T) {
	c := testConfig(t)
	scn, _ := ScenarioByID("iso")
	fr, err := c.RunFigure(context.Background(), scn)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.ChatVisMatches {
		t.Errorf("ChatVis figure should match GT: %s", fr.ChatVis)
	}
	if fr.GPT4 == nil {
		t.Fatal("GPT-4 produces an image for Fig. 2")
	}
	// The paper: GPT-4's image shows the right geometry but a gray
	// background and different zoom — so it should differ more from GT
	// than ChatVis's does.
	if fr.GPT4.RMSE <= fr.ChatVis.RMSE {
		t.Errorf("expected GPT-4 image (gray bg) to differ more: gpt4=%s chatvis=%s",
			fr.GPT4, &fr.ChatVis)
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c := testConfig(t)
	t2, err := c.RunTable2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t1, err := c.RunTable1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	scn, _ := ScenarioByID("iso")
	fig, err := c.RunFigure(context.Background(), scn)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := c.RunMultiTurn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.md")
	routing := &RoutingTable{Rows: []RoutingRow{{
		Task: "edit-intent", Model: "codegemma", Score: 1.0, Bar: 0.90,
		CostWeight: 0.04, Decisions: 3, Ladder: []string{"codegemma", "gpt-4"},
	}}}
	if err := WriteReport(path, t2, t1, []*FigureResult{fig}, mt, routing); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"Table II", "Table I", "Fig. 2", "ChatVis",
		"Multi-turn conversations", "turn 2 plan-sim",
		"Model routing", "codegemma | 1.00 | 0.90"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestScriptScoreRanksModels(t *testing.T) {
	c := testConfig(t)
	scn, _ := ScenarioByID("stream")
	cv, _, err := c.RunChatVis(context.Background(), scn)
	if err != nil {
		t.Fatal(err)
	}
	g4, _, err := c.RunUnassisted(context.Background(), "gpt-4", scn)
	if err != nil {
		t.Fatal(err)
	}
	weak, _, err := c.RunUnassisted(context.Background(), "llama3-8b", scn)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's proposed code-level metric should rank ChatVis above
	// unassisted GPT-4 above a model that emits unparsable output.
	if cv.ScriptScore.Overall <= g4.ScriptScore.Overall {
		t.Errorf("ChatVis %.2f should beat gpt-4 %.2f",
			cv.ScriptScore.Overall, g4.ScriptScore.Overall)
	}
	if g4.ScriptScore.Overall <= weak.ScriptScore.Overall {
		t.Errorf("gpt-4 %.2f should beat llama3 %.2f",
			g4.ScriptScore.Overall, weak.ScriptScore.Overall)
	}
	if weak.ScriptScore.Overall != 0 {
		t.Errorf("unparsable script should score 0, got %.2f", weak.ScriptScore.Overall)
	}
	if cv.ScriptScore.Overall < 0.8 {
		t.Errorf("ChatVis stream script score %.2f suspiciously low: %s",
			cv.ScriptScore.Overall, cv.ScriptScore)
	}
}
