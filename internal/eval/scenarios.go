// Package eval defines the paper's five evaluation scenarios and the
// harness that regenerates its artifacts: Table I (generated scripts),
// Table II (LLM comparison), and the image pairs behind Figures 2-6.
package eval

import (
	"fmt"
	"os"
	"path/filepath"

	"chatvis/internal/datagen"
	"chatvis/internal/plan"
	"chatvis/internal/vtkio"
)

// Scenario is one evaluation task: the paper's five plus the extended
// set ("clip", "threshold", "glyph", "sliceclip", "isovalues") built on
// the same datasets and filters, and two plan-native scenarios
// ("glyphslice", "threshcontour") whose ground truth is expressed
// directly in the plan IR.
type Scenario struct {
	// ID is the short machine name ("iso", "slice", "volume", "delaunay",
	// "stream", "clip", "threshold", "glyph", "sliceclip", "isovalues",
	// "glyphslice", "threshcontour").
	ID string
	// Row is the paper's Table II row label.
	Row string
	// Figure is the paper figure the scenario's images reproduce.
	Figure string
	// Screenshot is the output image filename the prompt requests.
	Screenshot string
	// prompt renders the user prompt for a given resolution.
	prompt func(w, h int) string
	// groundTruth renders the manually-constructed script (standing in
	// for the paper's ParaView GUI session) for a given resolution. For
	// plan-native scenarios it is rendered from planIR.
	groundTruth func(w, h int) string
	// planIR, when set, is the scenario's native plan-IR ground truth.
	planIR func(w, h int) *plan.Plan
}

// PlanIR returns the scenario's native IR ground truth (nil for
// scenarios whose ground truth is a hand-written script).
func (s Scenario) PlanIR(w, h int) *plan.Plan {
	if s.planIR == nil {
		return nil
	}
	return s.planIR(w, h)
}

// UserPrompt returns the natural-language request at the given
// resolution. At 1920x1080 the text is verbatim from the paper.
func (s Scenario) UserPrompt(w, h int) string { return s.prompt(w, h) }

// GroundTruthScript returns the reference script.
func (s Scenario) GroundTruthScript(w, h int) string { return s.groundTruth(w, h) }

// PaperScenarios returns the paper's five scenarios in Table II order.
// Grid sweeps that reproduce the paper default to this set.
func PaperScenarios() []Scenario {
	return Scenarios()[:5]
}

// Scenarios returns every registered scenario: the paper's five first
// (in Table II order), then the extended set served by chatvisd's
// GET /v1/scenarios ("clip", "threshold", "glyph", "sliceclip",
// "isovalues"), then the plan-native pair ("glyphslice",
// "threshcontour") whose ground truth lives in the plan IR.
func Scenarios() []Scenario {
	scns := []Scenario{
		{
			ID: "iso", Row: "Isosurfacing", Figure: "Fig. 2",
			Screenshot: "ml-iso-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named ml-100.vtk. Generate an isosurface of the variable var0 at value 0.5. Save a screenshot of the result in the filename ml-iso-screenshot.png. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			groundTruth: func(w, h int) string {
				return fmt.Sprintf(`from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

ml100vtk = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

contour1 = Contour(registrationName='Contour1', Input=ml100vtk)
contour1.ContourBy = ['POINTS', 'var0']
contour1.Isosurfaces = [0.5]

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [%d, %d]

contour1Display = Show(contour1, renderView1)
renderView1.ResetCamera()

SaveScreenshot('ml-iso-screenshot.png', renderView1,
    ImageResolution=[%d, %d],
    OverrideColorPalette='WhiteBackground')
`, w, h, w, h)
			},
		},
		{
			ID: "slice", Row: "Slicing then contouring", Figure: "Fig. 3",
			Screenshot: "ml-slice-iso-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'ml-100.vtk'. Slice the volume in a plane parallel to the y-z plane at x=0. Take a contour through the slice at the value 0.5. Color the contour red. Rotate the view to look at the +x direction. Save a screenshot of the result in the filename 'ml-slice-iso-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			groundTruth: func(w, h int) string {
				return fmt.Sprintf(`from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

ml100vtk = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

slice1 = Slice(registrationName='Slice1', Input=ml100vtk, SliceType='Plane')
slice1.SliceType.Origin = [0.0, 0.0, 0.0]
slice1.SliceType.Normal = [1.0, 0.0, 0.0]

contour1 = Contour(registrationName='Contour1', Input=slice1)
contour1.ContourBy = ['POINTS', 'var0']
contour1.Isosurfaces = [0.5]

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [%d, %d]

contour1Display = Show(contour1, renderView1)
ColorBy(contour1Display, None)
contour1Display.DiffuseColor = [1.0, 0.0, 0.0]
contour1Display.LineWidth = 2.0

renderView1.ResetActiveCameraToPositiveX()
renderView1.ResetCamera()

SaveScreenshot('ml-slice-iso-screenshot.png', renderView1,
    ImageResolution=[%d, %d],
    OverrideColorPalette='WhiteBackground')
`, w, h, w, h)
			},
		},
		{
			ID: "volume", Row: "Volume rendering", Figure: "Fig. 4",
			Screenshot: "ml-dvr-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'ml-100.vtk'. Generate a volume rendering using the default transfer function. Rotate the view to an isometric direction. Save a screenshot of the result in the filename 'ml-dvr-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			groundTruth: func(w, h int) string {
				return fmt.Sprintf(`from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

ml100vtk = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [%d, %d]

ml100vtkDisplay = Show(ml100vtk, renderView1)
ml100vtkDisplay.SetRepresentationType('Volume')
ColorBy(ml100vtkDisplay, ['POINTS', 'var0'])
ml100vtkDisplay.RescaleTransferFunctionToDataRange(True)

renderView1.ApplyIsometricView()
renderView1.ResetCamera()

SaveScreenshot('ml-dvr-screenshot.png', renderView1,
    ImageResolution=[%d, %d],
    OverrideColorPalette='WhiteBackground')
`, w, h, w, h)
			},
		},
		{
			ID: "delaunay", Row: "Delaunay triangulation", Figure: "Fig. 5",
			Screenshot: "points-surf-clip-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'can_points.ex2'. Generate a 3d Delaunay triangulation of the dataset. Clip the data with a y-z plane at x=0, keeping the -x half of the data and removing the +x half. Render the image as a wireframe. View the result in an isometric view. Save a screenshot of the result in the filename 'points-surf-clip-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			groundTruth: func(w, h int) string {
				return fmt.Sprintf(`from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

canpointsex2 = ExodusIIReader(registrationName='can_points.ex2', FileName='can_points.ex2')

delaunay3D1 = Delaunay3D(registrationName='Delaunay3D1', Input=canpointsex2)

clip1 = Clip(registrationName='Clip1', Input=delaunay3D1, ClipType='Plane')
clip1.ClipType.Origin = [0.0, 0.0, 0.0]
clip1.ClipType.Normal = [1.0, 0.0, 0.0]
clip1.Invert = 1

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [%d, %d]

clip1Display = Show(clip1, renderView1)
clip1Display.SetRepresentationType('Wireframe')

renderView1.ApplyIsometricView()
renderView1.ResetCamera()

SaveScreenshot('points-surf-clip-screenshot.png', renderView1,
    ImageResolution=[%d, %d],
    OverrideColorPalette='WhiteBackground')
`, w, h, w, h)
			},
		},
		{
			ID: "stream", Row: "Streamline tracing", Figure: "Fig. 6",
			Screenshot: "stream-glyph-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'disk.ex2'. Trace streamlines of the V data array seeded from a default point cloud. Render the streamlines with tubes. Add cone glyphs to the streamlines. Color the streamlines and glyphs by the Temp data array. View the result in the +X direction. Save a screenshot of the result in the filename 'stream-glyph-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			groundTruth: func(w, h int) string {
				return fmt.Sprintf(`from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

reader = ExodusIIReader(FileName='disk.ex2')
reader.UpdatePipeline()

streamTracer = StreamTracer(registrationName='StreamTracer1', Input=reader,
                            SeedType='Point Cloud')

tube = Tube(registrationName='Tube1', Input=streamTracer)
tube.Radius = 0.075

glyph = Glyph(registrationName='Glyph1', Input=streamTracer, GlyphType='Cone')
glyph.OrientationArray = ['POINTS', 'V']
glyph.ScaleArray = ['POINTS', 'V']
glyph.ScaleFactor = 0.2

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [%d, %d]

tubeDisplay = Show(tube, renderView1)
glyphDisplay = Show(glyph, renderView1)
ColorBy(tubeDisplay, ('POINTS', 'Temp'))
ColorBy(glyphDisplay, ('POINTS', 'Temp'))
tubeDisplay.RescaleTransferFunctionToDataRange(True)
glyphDisplay.RescaleTransferFunctionToDataRange(True)

renderView1.ResetActiveCameraToPositiveX()
renderView1.ResetCamera()

SaveScreenshot('stream-glyph-screenshot.png', renderView1,
    ImageResolution=[%d, %d],
    OverrideColorPalette='WhiteBackground')
`, w, h, w, h)
			},
		},
		{
			ID: "clip", Row: "Plane clipping", Figure: "extended",
			Screenshot: "ml-clip-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'ml-100.vtk'. Clip the data with a y-z plane at x=0, keeping the -x half of the data and removing the +x half. Color the result by the var0 data array. Rotate the view to an isometric direction. Save a screenshot of the result in the filename 'ml-clip-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			groundTruth: func(w, h int) string {
				return fmt.Sprintf(`from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

ml100vtk = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

clip1 = Clip(registrationName='Clip1', Input=ml100vtk, ClipType='Plane')
clip1.ClipType.Origin = [0.0, 0.0, 0.0]
clip1.ClipType.Normal = [1.0, 0.0, 0.0]
clip1.Invert = 1

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [%d, %d]

clip1Display = Show(clip1, renderView1)
ColorBy(clip1Display, ('POINTS', 'var0'))
clip1Display.RescaleTransferFunctionToDataRange(True)

renderView1.ApplyIsometricView()
renderView1.ResetCamera()

SaveScreenshot('ml-clip-screenshot.png', renderView1,
    ImageResolution=[%d, %d],
    OverrideColorPalette='WhiteBackground')
`, w, h, w, h)
			},
		},
		{
			ID: "threshold", Row: "Scalar thresholding", Figure: "extended",
			Screenshot: "disk-threshold-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'disk.ex2'. Threshold the data by the Temp array between 500 and 900. Color the result by the Temp data array. View the result in the +X direction. Save a screenshot of the result in the filename 'disk-threshold-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			groundTruth: func(w, h int) string {
				return fmt.Sprintf(`from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

reader = ExodusIIReader(FileName='disk.ex2')
reader.UpdatePipeline()

threshold1 = Threshold(registrationName='Threshold1', Input=reader)
threshold1.Scalars = ['POINTS', 'Temp']
threshold1.LowerThreshold = 500
threshold1.UpperThreshold = 900

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [%d, %d]

threshold1Display = Show(threshold1, renderView1)
ColorBy(threshold1Display, ('POINTS', 'Temp'))
threshold1Display.RescaleTransferFunctionToDataRange(True)

renderView1.ResetActiveCameraToPositiveX()
renderView1.ResetCamera()

SaveScreenshot('disk-threshold-screenshot.png', renderView1,
    ImageResolution=[%d, %d],
    OverrideColorPalette='WhiteBackground')
`, w, h, w, h)
			},
		},
		{
			ID: "glyph", Row: "Oriented glyphs", Figure: "extended",
			Screenshot: "disk-glyph-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'disk.ex2'. Add arrow glyphs oriented along the V data array to the dataset. Color the result by the Temp data array. Rotate the view to an isometric direction. Save a screenshot of the result in the filename 'disk-glyph-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			groundTruth: func(w, h int) string {
				return fmt.Sprintf(`from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

reader = ExodusIIReader(FileName='disk.ex2')
reader.UpdatePipeline()

glyph = Glyph(registrationName='Glyph1', Input=reader, GlyphType='Arrow')
glyph.OrientationArray = ['POINTS', 'V']
glyph.ScaleArray = ['POINTS', 'V']
glyph.ScaleFactor = 0.2

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [%d, %d]

readerDisplay = Show(reader, renderView1)
glyphDisplay = Show(glyph, renderView1)
ColorBy(readerDisplay, ('POINTS', 'Temp'))
ColorBy(glyphDisplay, ('POINTS', 'Temp'))
readerDisplay.RescaleTransferFunctionToDataRange(True)
glyphDisplay.RescaleTransferFunctionToDataRange(True)

renderView1.ApplyIsometricView()
renderView1.ResetCamera()

SaveScreenshot('disk-glyph-screenshot.png', renderView1,
    ImageResolution=[%d, %d],
    OverrideColorPalette='WhiteBackground')
`, w, h, w, h)
			},
		},
		{
			ID: "sliceclip", Row: "Slice of clip composition", Figure: "extended",
			Screenshot: "ml-clip-slice-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'ml-100.vtk'. Clip the data with a y-z plane at x=0, keeping the -x half of the data and removing the +x half. Slice the clipped data in a plane parallel to the x-y plane at z=0. Color the result by the var0 data array. View the result in the +z direction. Save a screenshot of the result in the filename 'ml-clip-slice-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			groundTruth: func(w, h int) string {
				return fmt.Sprintf(`from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

ml100vtk = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

clip1 = Clip(registrationName='Clip1', Input=ml100vtk, ClipType='Plane')
clip1.ClipType.Origin = [0.0, 0.0, 0.0]
clip1.ClipType.Normal = [1.0, 0.0, 0.0]
clip1.Invert = 1

slice1 = Slice(registrationName='Slice1', Input=clip1, SliceType='Plane')
slice1.SliceType.Origin = [0.0, 0.0, 0.0]
slice1.SliceType.Normal = [0.0, 0.0, 1.0]

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [%d, %d]

slice1Display = Show(slice1, renderView1)
ColorBy(slice1Display, ('POINTS', 'var0'))
slice1Display.RescaleTransferFunctionToDataRange(True)

renderView1.ResetActiveCameraToPositiveZ()
renderView1.ResetCamera()

SaveScreenshot('ml-clip-slice-screenshot.png', renderView1,
    ImageResolution=[%d, %d],
    OverrideColorPalette='WhiteBackground')
`, w, h, w, h)
			},
		},
		{
			ID: "isovalues", Row: "Multi-value contour", Figure: "extended",
			Screenshot: "ml-multi-iso-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'ml-100.vtk'. Generate isosurfaces of the variable var0 at the values 0.3 and 0.7. Color the result by the var0 data array. Rotate the view to an isometric direction. Save a screenshot of the result in the filename 'ml-multi-iso-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			groundTruth: func(w, h int) string {
				return fmt.Sprintf(`from paraview.simple import *
paraview.simple._DisableFirstRenderCameraReset()

ml100vtk = LegacyVTKReader(registrationName='ml-100.vtk', FileNames=['ml-100.vtk'])

contour1 = Contour(registrationName='Contour1', Input=ml100vtk)
contour1.ContourBy = ['POINTS', 'var0']
contour1.Isosurfaces = [0.3, 0.7]

renderView1 = GetActiveViewOrCreate('RenderView')
renderView1.ViewSize = [%d, %d]

contour1Display = Show(contour1, renderView1)
ColorBy(contour1Display, ('POINTS', 'var0'))
contour1Display.RescaleTransferFunctionToDataRange(True)

renderView1.ApplyIsometricView()
renderView1.ResetCamera()

SaveScreenshot('ml-multi-iso-screenshot.png', renderView1,
    ImageResolution=[%d, %d],
    OverrideColorPalette='WhiteBackground')
`, w, h, w, h)
			},
		},
		{
			ID: "glyphslice", Row: "Glyphs on a slice", Figure: "extended",
			Screenshot: "disk-slice-glyph-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'disk.ex2'. Slice the volume in a plane parallel to the x-y plane at z=1. Add arrow glyphs oriented along the V data array to the slice. Color the result by the Temp data array. Rotate the view to an isometric direction. Save a screenshot of the result in the filename 'disk-slice-glyph-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			planIR: func(w, h int) *plan.Plan {
				p := plan.New()
				reader := p.Add(sourceStage("reader", "ExodusIIReader",
					props{"FileName": plan.StrV("disk.ex2")}))
				slice := p.Add(filterStage("slice1", "Slice", reader, props{
					"SliceType": plan.HelperV("Plane").
						WithObj("Origin", plan.NumsV(0, 0, 1)).
						WithObj("Normal", plan.NumsV(0, 0, 1)),
				}))
				glyph := p.Add(filterStage("glyph", "Glyph", slice, props{
					"GlyphType":        plan.StrV("Arrow"),
					"OrientationArray": plan.AssocV("POINTS", "V"),
					"ScaleArray":       plan.AssocV("POINTS", "V"),
					"ScaleFactor":      plan.NumV(0.2),
				}))
				view := p.Add(viewStage(w, h, "ApplyIsometricView", "ResetCamera"))
				p.Add(colorDisplay(p, slice, view, "Temp"))
				p.Add(colorDisplay(p, glyph, view, "Temp"))
				p.Add(screenshotStage(view, "disk-slice-glyph-screenshot.png", w, h))
				return p
			},
		},
		{
			ID: "threshcontour", Row: "Contour of thresholded data", Figure: "extended",
			Screenshot: "disk-thresh-contour-screenshot.png",
			prompt: func(w, h int) string {
				return fmt.Sprintf(`Please generate a ParaView Python script for the following operations. Read in the file named 'disk.ex2'. Threshold the data by the Temp array between 400 and 800. Take a contour of the variable Temp at the value 600 through the thresholded data. Color the result by the Temp data array. View the result in the +X direction. Save a screenshot of the result in the filename 'disk-thresh-contour-screenshot.png'. The rendered view and saved screenshot should be %d x %d pixels.`, w, h)
			},
			planIR: func(w, h int) *plan.Plan {
				p := plan.New()
				reader := p.Add(sourceStage("reader", "ExodusIIReader",
					props{"FileName": plan.StrV("disk.ex2")}))
				thr := p.Add(filterStage("threshold1", "Threshold", reader, props{
					"Scalars":        plan.AssocV("POINTS", "Temp"),
					"LowerThreshold": plan.NumV(400),
					"UpperThreshold": plan.NumV(800),
				}))
				contour := p.Add(filterStage("contour1", "Contour", thr, props{
					"ContourBy":   plan.AssocV("POINTS", "Temp"),
					"Isosurfaces": plan.NumsV(600),
				}))
				view := p.Add(viewStage(w, h, "ResetActiveCameraToPositiveX", "ResetCamera"))
				p.Add(colorDisplay(p, contour, view, "Temp"))
				p.Add(screenshotStage(view, "disk-thresh-contour-screenshot.png", w, h))
				return p
			},
		},
	}
	// Plan-native scenarios render their ground-truth script from the IR.
	for i := range scns {
		if scns[i].planIR != nil && scns[i].groundTruth == nil {
			ir := scns[i].planIR
			scns[i].groundTruth = func(w, h int) string { return ir(w, h).Script() }
		}
	}
	return scns
}

// Plan-IR stage builders for scenario definitions.

type props map[string]plan.Value

func sourceStage(id, class string, pp props) *plan.Stage {
	return &plan.Stage{Kind: plan.StageSource, ID: id, Class: class, Props: pp}
}

func filterStage(id, class string, input int, pp props) *plan.Stage {
	return &plan.Stage{Kind: plan.StageFilter, ID: id, Class: class, Inputs: []int{input}, Props: pp}
}

func viewStage(w, h int, camera ...string) *plan.Stage {
	return &plan.Stage{
		Kind: plan.StageView, ID: "renderView1", Class: plan.ViewClass,
		Props:  props{"ViewSize": plan.NumsV(float64(w), float64(h))},
		Camera: camera,
	}
}

func colorDisplay(p *plan.Plan, src, view int, array string) *plan.Stage {
	return &plan.Stage{
		Kind: plan.StageDisplay, ID: p.Stages[src].ID + "Display",
		Class: plan.DisplayClass, Inputs: []int{src, view},
		Props: props{
			plan.PropColorArray: plan.AssocV("POINTS", array),
			plan.PropRescaleTF:  plan.BoolV(true),
		},
	}
}

func screenshotStage(view int, file string, w, h int) *plan.Stage {
	return &plan.Stage{
		Kind: plan.StageScreenshot, ID: "screenshot1", Class: plan.ScreenshotClass,
		Inputs: []int{view},
		Props: props{
			plan.PropFilename:        plan.StrV(file),
			plan.PropImageResolution: plan.NumsV(float64(w), float64(h)),
			plan.PropOverridePalette: plan.StrV("WhiteBackground"),
		},
	}
}

// ScenarioByID looks a scenario up by its short name.
func ScenarioByID(id string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.ID == id {
			return s, true
		}
	}
	return Scenario{}, false
}

// DataSize selects dataset resolution.
type DataSize int

// Dataset size presets.
const (
	// DataSmall keeps tests and benchmarks fast.
	DataSmall DataSize = iota
	// DataFull approximates the paper's dataset sizes (ml-100 is the
	// 100^3 Marschner-Lobb volume).
	DataFull
)

// EnsureData writes the three input datasets into dir (skipping files
// that already exist).
func EnsureData(dir string, size DataSize) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	mlN, canT, canZ := 24, 24, 10
	diskR, diskT, diskZ := 6, 24, 6
	if size == DataFull {
		mlN, canT, canZ = 100, 64, 28
		diskR, diskT, diskZ = 10, 48, 10
	}
	mlPath := filepath.Join(dir, "ml-100.vtk")
	if _, err := os.Stat(mlPath); os.IsNotExist(err) {
		if err := vtkio.SaveLegacyVTK(mlPath, datagen.MarschnerLobb(mlN), "Marschner-Lobb benchmark"); err != nil {
			return fmt.Errorf("eval: writing %s: %w", mlPath, err)
		}
	}
	canPath := filepath.Join(dir, "can_points.ex2")
	if _, err := os.Stat(canPath); os.IsNotExist(err) {
		if err := vtkio.SaveExodus(canPath, datagen.CanPoints(canT, canZ), "can point cloud"); err != nil {
			return fmt.Errorf("eval: writing %s: %w", canPath, err)
		}
	}
	diskPath := filepath.Join(dir, "disk.ex2")
	if _, err := os.Stat(diskPath); os.IsNotExist(err) {
		if err := vtkio.SaveExodus(diskPath, datagen.DiskFlow(diskR, diskT, diskZ), "disk flow"); err != nil {
			return fmt.Errorf("eval: writing %s: %w", diskPath, err)
		}
	}
	return nil
}
