package eval

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"chatvis/internal/llm"
	"chatvis/internal/plan"
	"chatvis/internal/pvsim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden plan fixtures")

// roundTripRes is the fixed resolution the round-trip suite runs at.
const rtW, rtH = 480, 270

// cleanProfile is a defect-free writer profile.
var cleanProfile = llm.Profile{Name: "clean", RepairSkill: 2}

// TestIntendedPlanMatchesWriterAllScenarios pins the acceptance
// invariant: for every scenario, compile(WriteScript(spec)) under a
// clean, fully grounded profile equals normalize(WritePlan(spec)) — the
// writer's text and its intended IR never drift apart.
func TestIntendedPlanMatchesWriterAllScenarios(t *testing.T) {
	schema := pvsim.PlanSchema()
	for _, scn := range Scenarios() {
		t.Run(scn.ID, func(t *testing.T) {
			spec := llm.ParseIntent(scn.UserPrompt(rtW, rtH))
			script := llm.WriteScript(spec, cleanProfile, llm.FullGrounding())
			compiled, err := plan.Compile(script, schema)
			if err != nil {
				t.Fatalf("writer script does not compile: %v\n%s", err, script)
			}
			if plan.HasErrors(compiled.Diags) {
				t.Fatalf("clean writer script has diagnostics:\n%s", plan.FormatDiagnostics(compiled.Diags))
			}
			got := plan.Normalize(compiled.Plan, schema)
			want := plan.Normalize(llm.WritePlan(spec), schema)
			if !got.Equal(want) {
				gb, _ := got.Encode()
				wb, _ := want.Encode()
				t.Errorf("intended plan diverges from compiled script:\n--- compiled ---\n%s\n--- intended ---\n%s\nscript:\n%s", gb, wb, script)
			}
		})
	}
}

// TestScriptPlanScriptRoundTripAllProfiles: across every scenario ×
// writer profile (grounded and ungrounded), the compiled plan of the
// regenerated script equals the original normalized plan. Defective
// plans round-trip too — hallucinated properties survive both
// directions. Profiles whose syntax defect makes the script unparsable
// must fail compilation, not round-trip wrongly.
func TestScriptPlanScriptRoundTripAllProfiles(t *testing.T) {
	schema := pvsim.PlanSchema()
	groundings := map[string]llm.Grounding{
		"grounded":   llm.FullGrounding(),
		"ungrounded": {},
	}
	for _, scn := range Scenarios() {
		spec := llm.ParseIntent(scn.UserPrompt(rtW, rtH))
		for _, profile := range llm.SimProfiles() {
			for gname, g := range groundings {
				name := scn.ID + "/" + profile.Name + "/" + gname
				t.Run(name, func(t *testing.T) {
					script := llm.WriteScript(spec, profile, g)
					compiled, err := plan.Compile(script, schema)
					if profile.SyntaxDefect != "" && profile.SyntaxDefect != "string" {
						// paren/fence/indent defects break the parse; the
						// "string" defect survives lexing in some scripts.
						if err == nil && profile.SyntaxDefect != "paren" {
							t.Fatalf("expected %s defect to break compilation", profile.SyntaxDefect)
						}
						return
					}
					if err != nil {
						// A defect landed in this particular script shape.
						return
					}
					p1 := plan.Normalize(compiled.Plan, schema)
					script2 := p1.Script()
					compiled2, err := plan.Compile(script2, schema)
					if err != nil {
						t.Fatalf("rendered script does not parse: %v\n%s", err, script2)
					}
					p2 := plan.Normalize(compiled2.Plan, schema)
					if !p1.Equal(p2) {
						b1, _ := p1.Encode()
						b2, _ := p2.Encode()
						t.Errorf("round trip diverges:\n--- original ---\n%s\n--- regenerated ---\n%s\nscript:\n%s\nrendered:\n%s",
							b1, b2, script, script2)
					}
				})
			}
		}
	}
}

// TestGroundTruthGoldenPlans compares every scenario's normalized
// reference plan against its committed JSON fixture (testdata/plans).
// Run with -update to regenerate after intentional IR changes.
func TestGroundTruthGoldenPlans(t *testing.T) {
	for _, scn := range Scenarios() {
		t.Run(scn.ID, func(t *testing.T) {
			ref := scn.referencePlan(rtW, rtH)
			if ref == nil {
				t.Fatal("scenario has no reference plan")
			}
			got, err := ref.Encode()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "plans", scn.ID+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run go test ./internal/eval -run TestGroundTruthGoldenPlans -update): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("normalized reference plan drifted from golden fixture %s:\n%s", path, got)
			}
			// The fixture decodes and its hash is stable.
			decoded, err := plan.Decode(want)
			if err != nil {
				t.Fatal(err)
			}
			if decoded.Hash() != ref.Hash() {
				t.Error("fixture hash mismatch")
			}
		})
	}
}

// TestPlanNativeScenariosValidate: the IR-expressed scenarios validate
// cleanly against the engine schema and round-trip through rendering.
func TestPlanNativeScenariosValidate(t *testing.T) {
	schema := pvsim.PlanSchema()
	for _, id := range []string{"glyphslice", "threshcontour"} {
		scn, ok := ScenarioByID(id)
		if !ok {
			t.Fatalf("scenario %q missing", id)
		}
		ir := scn.PlanIR(rtW, rtH)
		if ir == nil {
			t.Fatalf("%s is not plan-native", id)
		}
		if diags := plan.Errors(plan.Validate(ir, schema)); len(diags) > 0 {
			t.Fatalf("%s IR invalid:\n%s", id, plan.FormatDiagnostics(diags))
		}
		compiled, err := plan.Compile(ir.Script(), schema)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Normalize(ir, schema).Equal(plan.Normalize(compiled.Plan, schema)) {
			t.Errorf("%s IR does not round-trip through its rendered script", id)
		}
	}
}
