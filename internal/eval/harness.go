package eval

import (
	"context"
	"fmt"
	"image"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/imgcmp"
	"chatvis/internal/llm"
	"chatvis/internal/plan"
	"chatvis/internal/pvpython"
	"chatvis/internal/pvsim"
	"chatvis/internal/render"
	"chatvis/internal/scriptcmp"
)

// ChatVisModel is the grid column name for the assisted condition (the
// paper's own system, backed by gpt-4).
const ChatVisModel = "ChatVis"

// Config drives a harness run.
type Config struct {
	// DataDir holds (or will receive) the input datasets.
	DataDir string
	// OutDir receives screenshots and reports.
	OutDir string
	// Width, Height of rendered views (the paper uses 1920x1080; tests
	// and benchmarks use smaller).
	Width, Height int
	// DataSize selects dataset resolution.
	DataSize DataSize
	// MaxIterations for the ChatVis loop (default 5).
	MaxIterations int
	// FewShot truncates the assistant's example library (0 = full,
	// negative = none); used by the ablation benchmarks.
	FewShot int
	// NoRewrite disables the prompt-generation stage (ablation).
	NoRewrite bool
	// NewClient overrides how cells obtain the client for a named model
	// (default llm.NewModel) — middleware or stub injection.
	NewClient func(model string) (llm.Client, error)
	// PipelineClient overrides the client of the *assisted* cells (the
	// ChatVis column and the multi-turn track), where the model is the
	// system's choice rather than the experiment's variable — this is
	// where a routing client plugs in. The argument is the pipeline's
	// default base model ("gpt-4"). Default: NewClient.
	PipelineClient func(defaultModel string) (llm.Client, error)
}

// clientFor resolves a named model through the NewClient hook.
func (c Config) clientFor(model string) (llm.Client, error) {
	if c.NewClient != nil {
		return c.NewClient(model)
	}
	return llm.NewModel(model)
}

// pipelineClient resolves the assisted pipeline's client.
func (c Config) pipelineClient(defaultModel string) (llm.Client, error) {
	if c.PipelineClient != nil {
		return c.PipelineClient(defaultModel)
	}
	return c.clientFor(defaultModel)
}

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width, c.Height = 480, 270
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 5
	}
	return c
}

// CellResult is one (model, task) evaluation outcome — one cell pair of
// the paper's Table II.
type CellResult struct {
	Model string
	Task  string
	// ErrorFree: the script executed without syntax or runtime errors
	// (Table II "Error" column, inverted).
	ErrorFree bool
	// Screenshot: a screenshot was produced AND matches ground truth
	// (Table II "SS" column; the paper judges correctness visually, we
	// judge by image comparison).
	Screenshot bool
	// Iterations the ChatVis loop used (1 for unassisted models).
	Iterations int
	// Metrics of the final screenshot vs ground truth (zero value when no
	// screenshot).
	Metrics imgcmp.Metrics
	// ScriptScore is the structural similarity of the final script to the
	// reference script — the paper's proposed code-level evaluation that
	// works "even without visual output" (§V future work).
	ScriptScore scriptcmp.Score
	// PlanScore is the plan-graph similarity of the final script's
	// compiled plan against the reference plan: the same idea lifted onto
	// the typed IR, insensitive to variable naming and statement order.
	PlanScore plan.Score
	// FirstError summarizes the first extracted error, if any.
	FirstError string
	// Duration is the session's summed stage wall-clock time, from the
	// artifact trace.
	Duration time.Duration
	// Usage is the session's summed LLM usage, from the artifact trace.
	Usage llm.Usage
	// LLMCalls counts model invocations the session consumed.
	LLMCalls int
	// Models are the distinct serving models of the session's stages in
	// first-use order. One entry when a single model served everything;
	// several when a router split the stages by task.
	Models []string
}

// groundTruth runs the reference script for a scenario and returns the
// rendered image. Output goes to a per-scenario directory so concurrent
// renders of different scenarios never share a working dir.
func (c Config) groundTruth(scn Scenario) (image.Image, error) {
	gtOut := filepath.Join(c.OutDir, "ground_truth", scn.ID)
	runner := &pvpython.Runner{DataDir: c.DataDir, OutDir: gtOut}
	res := runner.Exec(scn.GroundTruthScript(c.Width, c.Height))
	if !res.OK() {
		return nil, fmt.Errorf("eval: ground truth for %s failed:\n%s", scn.ID, res.Output)
	}
	if len(res.Screenshots) == 0 {
		return nil, fmt.Errorf("eval: ground truth for %s produced no screenshot", scn.ID)
	}
	path := res.Screenshots[len(res.Screenshots)-1]
	img := res.Engine.Rendered[path]
	if img == nil {
		return render.LoadPNG(path)
	}
	return img, nil
}

// judge compares a produced screenshot against ground truth.
func judge(gt image.Image, screenshots []string, rendered map[string]*image.RGBA) (bool, imgcmp.Metrics) {
	if len(screenshots) == 0 {
		return false, imgcmp.Metrics{}
	}
	path := screenshots[len(screenshots)-1]
	var img image.Image = rendered[path]
	if rendered[path] == nil {
		loaded, err := render.LoadPNG(path)
		if err != nil {
			return false, imgcmp.Metrics{}
		}
		img = loaded
	}
	m, err := imgcmp.Compare(gt, img)
	if err != nil {
		return false, imgcmp.Metrics{}
	}
	return imgcmp.MatchesGroundTruth(m, gt, img), m
}

// fillFromArtifact copies the outcome and trace totals of one session
// into a cell.
func (cell *CellResult) fillFromArtifact(c Config, scn Scenario, gt image.Image, art *chatvis.Artifact) {
	cell.ErrorFree = art.Success
	cell.Iterations = art.NumIterations()
	cell.Duration = art.Trace.TotalDuration()
	cell.Usage = art.Trace.TotalUsage()
	cell.LLMCalls = art.Trace.LLMCalls()
	cell.Models = art.Trace.Models()
	if len(art.Screenshots) > 0 {
		cell.Screenshot, cell.Metrics = judge(gt, art.Screenshots, nil)
	}
	if !art.Success && len(art.Iterations) > 0 {
		last := art.Iterations[len(art.Iterations)-1]
		if len(last.Errors) > 0 {
			cell.FirstError = last.Errors[0].Kind
		}
	}
	if score, err := scriptcmp.Compare(art.FinalScript, scn.GroundTruthScript(c.Width, c.Height)); err == nil {
		cell.ScriptScore = score
	}
	if art.Plan != nil {
		if ref := scn.referencePlan(c.Width, c.Height); ref != nil {
			cell.PlanScore = plan.Similarity(art.Plan, ref)
		}
	}
}

// refPlanCache shares reference plans across grid cells (like the
// ground-truth image cache, but process-wide: plans are tiny, immutable
// and purely derived from scenario + resolution).
var refPlanCache sync.Map // "id@WxH" -> *plan.Plan

// referencePlan returns the scenario's normalized reference plan: the
// native IR when the scenario is plan-native, the compiled ground-truth
// script otherwise.
func (s Scenario) referencePlan(w, h int) *plan.Plan {
	key := fmt.Sprintf("%s@%dx%d", s.ID, w, h)
	if cached, ok := refPlanCache.Load(key); ok {
		return cached.(*plan.Plan)
	}
	schema := pvsim.PlanSchema()
	var ref *plan.Plan
	if p := s.PlanIR(w, h); p != nil {
		ref = plan.Normalize(p, schema)
	} else {
		compiled, err := plan.Compile(s.GroundTruthScript(w, h), schema)
		if err != nil {
			return nil
		}
		ref = plan.Normalize(compiled.Plan, schema)
	}
	refPlanCache.Store(key, ref)
	return ref
}

// runCell evaluates one (model, scenario) grid cell: ChatVisModel runs
// the assistant, any other name runs the bare model. The ground truth
// comes from the shared cache; outDir isolates the cell's screenshots.
func (c Config) runCell(ctx context.Context, scn Scenario, modelName string, gts *groundTruthCache, outDir string) (CellResult, *chatvis.Artifact, error) {
	gt, err := gts.get(c, scn)
	if err != nil {
		return CellResult{}, nil, err
	}
	cell := CellResult{Model: modelName, Task: scn.Row}
	var model llm.Client
	if modelName == ChatVisModel {
		model, err = c.pipelineClient("gpt-4")
	} else {
		model, err = c.clientFor(modelName)
	}
	if err != nil {
		return CellResult{}, nil, err
	}
	art, err := c.runScenario(ctx, scn, model, modelName == ChatVisModel, outDir)
	if err != nil {
		return CellResult{}, nil, err
	}
	cell.fillFromArtifact(c, scn, gt, art)
	return cell, art, nil
}

// runScenario executes one scenario against an explicit client.
func (c Config) runScenario(ctx context.Context, scn Scenario, model llm.Client, assisted bool, outDir string) (*chatvis.Artifact, error) {
	runner := &pvpython.Runner{DataDir: c.DataDir, OutDir: outDir}
	if !assisted {
		return chatvis.Unassisted(ctx, model, runner, scn.UserPrompt(c.Width, c.Height))
	}
	assistant, err := chatvis.NewAssistant(model, runner,
		chatvis.WithMaxIterations(c.MaxIterations),
		chatvis.WithFewShot(c.FewShot),
		chatvis.WithRewrite(!c.NoRewrite))
	if err != nil {
		return nil, err
	}
	return assistant.Run(ctx, scn.UserPrompt(c.Width, c.Height))
}

// RunScenario evaluates one scenario with an explicit client — the
// probe entry point of the route calibrator (assisted exercises the
// full loop, unassisted the bare model). Datasets are prepared on
// demand; the scenario's ground truth renders into OutDir.
func (c Config) RunScenario(ctx context.Context, scn Scenario, model llm.Client, assisted bool) (CellResult, *chatvis.Artifact, error) {
	c = c.withDefaults()
	if err := EnsureData(c.DataDir, c.DataSize); err != nil {
		return CellResult{}, nil, err
	}
	gt, err := c.groundTruth(scn)
	if err != nil {
		return CellResult{}, nil, err
	}
	cell := CellResult{Model: model.Name(), Task: scn.Row}
	art, err := c.runScenario(ctx, scn, model, assisted,
		filepath.Join(c.OutDir, "probe", model.Name(), scn.ID))
	if err != nil {
		return CellResult{}, nil, err
	}
	cell.fillFromArtifact(c, scn, gt, art)
	return cell, art, nil
}

// RunChatVis evaluates the assistant (base model gpt-4) on one scenario.
func (c Config) RunChatVis(ctx context.Context, scn Scenario) (CellResult, *chatvis.Artifact, error) {
	c = c.withDefaults()
	if err := EnsureData(c.DataDir, c.DataSize); err != nil {
		return CellResult{}, nil, err
	}
	return c.runCell(ctx, scn, ChatVisModel, newGroundTruthCache(),
		filepath.Join(c.OutDir, "chatvis", scn.ID))
}

// RunUnassisted evaluates a bare model on one scenario.
func (c Config) RunUnassisted(ctx context.Context, modelName string, scn Scenario) (CellResult, *chatvis.Artifact, error) {
	c = c.withDefaults()
	if err := EnsureData(c.DataDir, c.DataSize); err != nil {
		return CellResult{}, nil, err
	}
	return c.runCell(ctx, scn, modelName, newGroundTruthCache(),
		filepath.Join(c.OutDir, modelName, scn.ID))
}

// Table2 holds the full comparison grid of the paper's Table II.
type Table2 struct {
	// Models in column order (ChatVis first, like the paper).
	Models []string
	// Tasks in row order.
	Tasks []string
	// Cells indexed [task][model].
	Cells map[string]map[string]CellResult
}

// RunTable2 evaluates ChatVis plus every unassisted model on every task
// with the paper's original serial sweep: one cell at a time, ground
// truth re-rendered per cell. It is the baseline the concurrent grid
// runner (RunGrid) is benchmarked against.
func (c Config) RunTable2(ctx context.Context) (*Table2, error) {
	return c.RunGridOpts(ctx, GridOptions{Workers: 1, ShareGroundTruth: false})
}

// Format renders the grid in the paper's layout: per model, an Error
// column ("No" is good) and an SS column ("Yes" is good).
func (t *Table2) Format() string {
	var b strings.Builder
	yn := func(v bool) string {
		if v {
			return "Yes"
		}
		return "No"
	}
	fmt.Fprintf(&b, "%-26s", "Visualizations")
	for _, m := range t.Models {
		fmt.Fprintf(&b, "| %-22s", m)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-26s", "")
	for range t.Models {
		fmt.Fprintf(&b, "| %-10s %-11s", "Error", "SS")
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 26+len(t.Models)*24) + "\n")
	for _, task := range t.Tasks {
		fmt.Fprintf(&b, "%-26s", task)
		for _, m := range t.Models {
			cell := t.Cells[task][m]
			fmt.Fprintf(&b, "| %-10s %-11s", yn(!cell.ErrorFree), yn(cell.Screenshot))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatStats renders the per-cell session traces: duration, LLM calls
// and token usage for every grid cell.
func (t *Table2) FormatStats() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-14s %12s %6s %8s %6s\n",
		"task", "model", "duration", "calls", "tokens", "iters")
	for _, task := range t.Tasks {
		for _, m := range t.Models {
			cell := t.Cells[task][m]
			fmt.Fprintf(&b, "%-26s %-14s %12s %6d %8d %6d",
				task, m, cell.Duration.Round(time.Microsecond),
				cell.LLMCalls, cell.Usage.TotalTokens(), cell.Iterations)
			// Annotate only routed cells (several serving models), so the
			// output is byte-identical to earlier builds when routing is off.
			if len(cell.Models) > 1 {
				fmt.Fprintf(&b, "  models=%s", strings.Join(cell.Models, ","))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Table1 pairs the ChatVis and unassisted GPT-4 streamline scripts, as in
// the paper's Table I.
type Table1 struct {
	ChatVisScript string
	GPT4Script    string
	// ChatVisOK / GPT4Error summarize the execution outcomes.
	ChatVisOK bool
	GPT4Error string
}

// RunTable1 regenerates Table I: both generated scripts for the
// streamline-tracing task.
func (c Config) RunTable1(ctx context.Context) (*Table1, error) {
	c = c.withDefaults()
	scn, _ := ScenarioByID("stream")
	t1 := &Table1{}
	cvCell, cvArt, err := c.RunChatVis(ctx, scn)
	if err != nil {
		return nil, err
	}
	t1.ChatVisScript = cvArt.FinalScript
	t1.ChatVisOK = cvCell.ErrorFree
	g4Cell, g4Art, err := c.RunUnassisted(ctx, "gpt-4", scn)
	if err != nil {
		return nil, err
	}
	t1.GPT4Script = g4Art.FinalScript
	if !g4Cell.ErrorFree {
		t1.GPT4Error = g4Cell.FirstError
		if len(g4Art.Iterations) > 0 && len(g4Art.Iterations[0].Errors) > 0 {
			e := g4Art.Iterations[0].Errors[0]
			t1.GPT4Error = e.Kind + ": " + e.Message
		}
	}
	return t1, nil
}

// Format renders the two scripts side by side (stacked, for plain text).
func (t *Table1) Format() string {
	var b strings.Builder
	b.WriteString("=== ChatVis (left column of Table I) ===\n")
	b.WriteString(t.ChatVisScript)
	fmt.Fprintf(&b, "\n[executes cleanly: %v]\n\n", t.ChatVisOK)
	b.WriteString("=== GPT-4 unassisted (right column of Table I) ===\n")
	b.WriteString(t.GPT4Script)
	fmt.Fprintf(&b, "\n[fails with: %s]\n", t.GPT4Error)
	return b.String()
}

// FigureResult is one reproduced figure: ground truth vs ChatVis (and for
// Fig. 2, GPT-4's image as well).
type FigureResult struct {
	Figure  string
	Task    string
	ChatVis imgcmp.Metrics
	// ChatVisMatches is the SS judgement vs ground truth.
	ChatVisMatches bool
	// GPT4 metrics are only populated for scenarios where unassisted
	// GPT-4 produces an image (isosurfacing, volume rendering).
	GPT4        *imgcmp.Metrics
	GPT4Matches bool
}

// RunFigure reproduces one figure's image set. Both conditions share one
// ground-truth render.
func (c Config) RunFigure(ctx context.Context, scn Scenario) (*FigureResult, error) {
	c = c.withDefaults()
	if err := EnsureData(c.DataDir, c.DataSize); err != nil {
		return nil, err
	}
	gts := newGroundTruthCache()
	fr := &FigureResult{Figure: scn.Figure, Task: scn.Row}
	cell, _, err := c.runCell(ctx, scn, ChatVisModel, gts,
		filepath.Join(c.OutDir, "chatvis", scn.ID))
	if err != nil {
		return nil, err
	}
	fr.ChatVis = cell.Metrics
	fr.ChatVisMatches = cell.Screenshot
	g4, _, err := c.runCell(ctx, scn, "gpt-4", gts,
		filepath.Join(c.OutDir, "gpt-4", scn.ID))
	if err != nil {
		return nil, err
	}
	if g4.ErrorFree && g4.Metrics != (imgcmp.Metrics{}) {
		m := g4.Metrics
		fr.GPT4 = &m
		fr.GPT4Matches = g4.Screenshot
	}
	return fr, nil
}

// WriteReport renders a Table II grid, per-figure metrics, the
// multi-turn conversational track and the routing table into a
// markdown file. Any section may be nil.
func WriteReport(path string, t2 *Table2, t1 *Table1, figs []*FigureResult, mt *MultiTurnTable, routing *RoutingTable) error {
	var b strings.Builder
	b.WriteString("# ChatVis reproduction — measured results\n\n")
	b.WriteString("## Table II: LLM comparison (Error = syntax/runtime error, SS = correct screenshot)\n\n```\n")
	b.WriteString(t2.Format())
	b.WriteString("```\n\n")
	b.WriteString("## Session traces (duration, LLM calls, token usage per cell)\n\n```\n")
	b.WriteString(t2.FormatStats())
	b.WriteString("```\n\n")
	if t1 != nil {
		b.WriteString("## Table I: generated streamline scripts\n\n```\n")
		b.WriteString(t1.Format())
		b.WriteString("```\n\n")
	}
	if len(figs) > 0 {
		b.WriteString("## Figures 2-6: image comparison vs ground truth\n\n")
		b.WriteString("| Figure | Task | ChatVis vs GT | match | GPT-4 vs GT | match |\n")
		b.WriteString("|---|---|---|---|---|---|\n")
		for _, f := range figs {
			gpt := "no image"
			gptMatch := "-"
			if f.GPT4 != nil {
				gpt = f.GPT4.String()
				gptMatch = fmt.Sprintf("%v", f.GPT4Matches)
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %v | %s | %s |\n",
				f.Figure, f.Task, f.ChatVis.String(), f.ChatVisMatches, gpt, gptMatch)
		}
	}
	if t2 != nil {
		b.WriteString("\n## Script-level accuracy (structural similarity to reference, no rendering)\n\n")
		b.WriteString("| Task |")
		for _, m := range t2.Models {
			fmt.Fprintf(&b, " %s |", m)
		}
		b.WriteString("\n|---|")
		for range t2.Models {
			b.WriteString("---|")
		}
		b.WriteString("\n")
		for _, task := range t2.Tasks {
			fmt.Fprintf(&b, "| %s |", task)
			for _, m := range t2.Models {
				fmt.Fprintf(&b, " %.2f |", t2.Cells[task][m].ScriptScore.Overall)
			}
			b.WriteString("\n")
		}
		b.WriteString("\n## Plan-graph accuracy (typed pipeline-DAG similarity to reference)\n\n")
		b.WriteString("| Task |")
		for _, m := range t2.Models {
			fmt.Fprintf(&b, " %s |", m)
		}
		b.WriteString("\n|---|")
		for range t2.Models {
			b.WriteString("---|")
		}
		b.WriteString("\n")
		for _, task := range t2.Tasks {
			fmt.Fprintf(&b, "| %s |", task)
			for _, m := range t2.Models {
				fmt.Fprintf(&b, " %.2f |", t2.Cells[task][m].PlanScore.Overall)
			}
			b.WriteString("\n")
		}
	}
	if mt != nil && len(mt.Results) > 0 {
		b.WriteString("\n## Multi-turn conversations (per-turn plan similarity; re-exec = stages recomputed per edit turn)\n\n")
		b.WriteString("| Conversation |")
		for i := 1; i <= mt.MaxTurns; i++ {
			fmt.Fprintf(&b, " turn %d plan-sim |", i)
		}
		b.WriteString(" turn 2+ re-exec | screenshots |\n|---|")
		for i := 0; i < mt.MaxTurns; i++ {
			b.WriteString("---|")
		}
		b.WriteString("---|---|\n")
		for _, r := range mt.Results {
			fmt.Fprintf(&b, "| %s |", r.Title)
			for i := 0; i < mt.MaxTurns; i++ {
				if i < len(r.Turns) {
					fmt.Fprintf(&b, " %.2f |", r.Turns[i].PlanScore.Overall)
				} else {
					b.WriteString(" - |")
				}
			}
			var deltas, shots []string
			for _, tr := range r.Turns[1:] {
				deltas = append(deltas, fmt.Sprintf("%d", tr.ExecutionsDelta))
			}
			for _, tr := range r.Turns {
				shots = append(shots, fmt.Sprintf("%v", tr.Screenshot))
			}
			fmt.Fprintf(&b, " %s | %s |\n", strings.Join(deltas, ","), strings.Join(shots, ","))
		}
	}
	if routing != nil && len(routing.Rows) > 0 {
		b.WriteString("\n## Model routing (per-task primary, measured score vs. bar, escalations)\n\n")
		b.WriteString(routing.Format())
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
