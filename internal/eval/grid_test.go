package eval

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestGridMatchesSerialSweep: the concurrent grid must produce the same
// Table II judgements as the serial per-cell baseline. Run with -race
// (the CI target does) this also exercises the worker pool and shared
// ground-truth cache for data races.
func TestGridMatchesSerialSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is slow")
	}
	c := testConfig(t)
	serial, err := c.RunTable2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c2 := testConfig(t)
	grid, err := c2.RunGrid(context.Background(), 2*runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Tasks) != len(serial.Tasks) || len(grid.Models) != len(serial.Models) {
		t.Fatalf("grid shape %dx%d, serial %dx%d",
			len(grid.Tasks), len(grid.Models), len(serial.Tasks), len(serial.Models))
	}
	for _, task := range serial.Tasks {
		for _, m := range serial.Models {
			s, g := serial.Cells[task][m], grid.Cells[task][m]
			if s.ErrorFree != g.ErrorFree || s.Screenshot != g.Screenshot {
				t.Errorf("%s/%s: serial (err-free=%v ss=%v) != grid (err-free=%v ss=%v)",
					task, m, s.ErrorFree, s.Screenshot, g.ErrorFree, g.Screenshot)
			}
			if s.Iterations != g.Iterations {
				t.Errorf("%s/%s: iterations %d != %d", task, m, s.Iterations, g.Iterations)
			}
			if g.Duration == 0 || g.LLMCalls == 0 || g.Usage.TotalTokens() == 0 {
				t.Errorf("%s/%s: grid cell missing trace stats: %+v", task, m, g)
			}
		}
	}
}

// TestGridSmallConcurrent: a 2x3 sub-grid under a wide worker pool — the
// everyday-sized concurrency test that runs even in -short mode.
func TestGridSmallConcurrent(t *testing.T) {
	c := testConfig(t)
	iso, _ := ScenarioByID("iso")
	volume, _ := ScenarioByID("volume")
	t2, err := c.RunGridOpts(context.Background(), GridOptions{
		Workers:          8,
		ShareGroundTruth: true,
		Models:           []string{"gpt-4", "llama3-8b"},
		Scenarios:        []Scenario{iso, volume},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Tasks) != 2 || len(t2.Models) != 3 {
		t.Fatalf("grid shape = %d tasks x %d models", len(t2.Tasks), len(t2.Models))
	}
	cv := t2.Cells["Isosurfacing"][ChatVisModel]
	if !cv.ErrorFree || !cv.Screenshot {
		t.Errorf("ChatVis iso cell = %+v", cv)
	}
	weak := t2.Cells["Volume rendering"]["llama3-8b"]
	if weak.ErrorFree {
		t.Error("llama3-8b should fail volume rendering")
	}
}

// TestGridCancellation: cancelling the context aborts the sweep promptly
// with the context's error.
func TestGridCancellation(t *testing.T) {
	c := testConfig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.RunGrid(ctx, 4)
	if err == nil {
		t.Fatal("cancelled grid should error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestGroundTruthCacheRendersOnce: concurrent cells asking for the same
// scenario share one render.
func TestGroundTruthCacheRendersOnce(t *testing.T) {
	c := testConfig(t).withDefaults()
	if err := EnsureData(c.DataDir, c.DataSize); err != nil {
		t.Fatal(err)
	}
	scn, _ := ScenarioByID("iso")
	cache := newGroundTruthCache()
	const callers = 8
	imgs := make([]interface{}, callers)
	errs := make([]error, callers)
	done := make(chan int, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			img, err := cache.get(c, scn)
			imgs[i], errs[i] = img, err
			done <- i
		}(i)
	}
	for i := 0; i < callers; i++ {
		<-done
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if imgs[i] != imgs[0] {
			t.Error("all callers should share the single rendered image")
		}
	}
}

// TestGridFasterThanSerial is an illustrative timing check, skipped in
// -short; the rigorous comparison is BenchmarkGridThroughput at the repo
// root. The grid with shared ground truth does strictly less rendering
// work than the serial baseline (5 reference renders instead of 30), so
// even single-core machines should see a clear win.
func TestGridFasterThanSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison is slow")
	}
	c := testConfig(t)
	start := time.Now()
	if _, err := c.RunTable2(context.Background()); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(start)

	c2 := testConfig(t)
	start = time.Now()
	if _, err := c2.RunGrid(context.Background(), 2*runtime.NumCPU()); err != nil {
		t.Fatal(err)
	}
	grid := time.Since(start)
	t.Logf("serial sweep: %v, concurrent grid: %v (%.1fx)",
		serial.Round(time.Millisecond), grid.Round(time.Millisecond),
		float64(serial)/float64(grid))
	if grid > serial {
		t.Errorf("grid (%v) slower than serial sweep (%v)", grid, serial)
	}
}
