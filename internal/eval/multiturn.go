package eval

import (
	"context"
	"fmt"
	"image"
	"path/filepath"
	"strings"
	"time"

	"chatvis/internal/chatvis"
	"chatvis/internal/imgcmp"
	"chatvis/internal/plan"
	"chatvis/internal/pvpython"
	"chatvis/internal/pvsim"
)

// The multi-turn evaluation track: conversational scenarios where each
// turn has its own ground-truth plan, scored per turn with plan-graph
// similarity and image comparison. The scenarios are seeded from
// existing one-shot scenario pairs (iso→isovalues, clip→sliceclip,
// glyph→glyphslice): turn 1 builds the first scenario's pipeline, turn
// 2's utterance edits it into the second one's.

// TurnSpec is one turn of a multi-turn scenario.
type TurnSpec struct {
	// Utterance renders the turn's prompt at a resolution (a full
	// request on turn 1, an edit afterwards).
	Utterance func(w, h int) string
	// RefScenario names the one-shot scenario whose reference plan (and
	// ground-truth image) is this turn's ground truth.
	RefScenario string
	// RefPlan builds the ground-truth plan directly (used when no
	// one-shot scenario matches the turn).
	RefPlan func(w, h int) *plan.Plan
}

// MultiTurnScenario is one conversational evaluation case.
type MultiTurnScenario struct {
	// ID is the short machine name.
	ID string
	// Title is the report row label.
	Title string
	// Turns in conversation order.
	Turns []TurnSpec
}

// refPlanFor resolves the turn's normalized ground-truth plan.
func (ts TurnSpec) refPlanFor(w, h int) *plan.Plan {
	if ts.RefScenario != "" {
		if scn, ok := ScenarioByID(ts.RefScenario); ok {
			return scn.referencePlan(w, h)
		}
		return nil
	}
	if ts.RefPlan != nil {
		return plan.Normalize(ts.RefPlan(w, h), pvsim.PlanSchema())
	}
	return nil
}

// MultiTurnScenarios returns the registered conversational scenarios.
func MultiTurnScenarios() []MultiTurnScenario {
	isoPrompt := func(w, h int) string {
		scn, _ := ScenarioByID("iso")
		return scn.UserPrompt(w, h)
	}
	return []MultiTurnScenario{
		{
			ID: "iso-isovalues", Title: "Isosurface, then multi-value",
			Turns: []TurnSpec{
				{Utterance: isoPrompt, RefScenario: "iso"},
				{
					Utterance: func(w, h int) string {
						return "Change the isosurfaces to the values 0.3 and 0.7. Color the result by the var0 data array. Rotate the view to an isometric direction. Save the screenshot as 'ml-multi-iso-screenshot.png'."
					},
					RefScenario: "isovalues",
				},
			},
		},
		{
			ID: "clip-sliceclip", Title: "Clip, then slice the clip",
			Turns: []TurnSpec{
				{
					Utterance: func(w, h int) string {
						scn, _ := ScenarioByID("clip")
						return scn.UserPrompt(w, h)
					},
					RefScenario: "clip",
				},
				{
					Utterance: func(w, h int) string {
						return "Slice the clipped data in a plane parallel to the x-y plane at z=0. View the result in the +z direction. Save the screenshot as 'ml-clip-slice-screenshot.png'."
					},
					RefScenario: "sliceclip",
				},
			},
		},
		{
			ID: "glyph-glyphslice", Title: "Glyphs, then glyphs on a slice",
			Turns: []TurnSpec{
				{
					Utterance: func(w, h int) string {
						scn, _ := ScenarioByID("glyph")
						return scn.UserPrompt(w, h)
					},
					RefScenario: "glyph",
				},
				{
					Utterance: func(w, h int) string {
						return "Slice the volume in a plane parallel to the x-y plane at z=1. Put the glyphs on the slice. Save the screenshot as 'disk-slice-glyph-screenshot.png'."
					},
					RefScenario: "glyphslice",
				},
			},
		},
		{
			ID: "iso-touchup", Title: "Isosurface, then raise the value",
			Turns: []TurnSpec{
				{Utterance: isoPrompt, RefScenario: "iso"},
				{
					Utterance: func(w, h int) string {
						return "Raise the isovalue to 0.7."
					},
					RefPlan: func(w, h int) *plan.Plan {
						p := plan.New()
						reader := p.Add(sourceStage("reader", "LegacyVTKReader",
							props{"FileNames": plan.ListV(plan.StrV("ml-100.vtk"))}))
						contour := p.Add(filterStage("contour1", "Contour", reader, props{
							"ContourBy":   plan.AssocV("POINTS", "var0"),
							"Isosurfaces": plan.NumsV(0.7),
						}))
						view := p.Add(viewStage(w, h, "ResetCamera"))
						p.Add(&plan.Stage{
							Kind: plan.StageDisplay, ID: "contour1Display",
							Class: plan.DisplayClass, Inputs: []int{contour, view},
						})
						p.Add(screenshotStage(view, "ml-iso-screenshot.png", w, h))
						return p
					},
				},
			},
		},
	}
}

// MultiTurnScenarioByID looks a conversational scenario up by ID.
func MultiTurnScenarioByID(id string) (MultiTurnScenario, bool) {
	for _, s := range MultiTurnScenarios() {
		if s.ID == id {
			return s, true
		}
	}
	return MultiTurnScenario{}, false
}

// TurnResult scores one turn of a conversational run.
type TurnResult struct {
	// ErrorFree: the turn completed with a working pipeline.
	ErrorFree bool
	// PlanScore is the plan-graph similarity vs the turn's ground truth.
	PlanScore plan.Score
	// Screenshot: the turn's image matches the turn's ground truth.
	Screenshot bool
	// Metrics of the turn's screenshot vs ground truth.
	Metrics imgcmp.Metrics
	// ChangedStages counts the stages the turn's plan changed vs its
	// parent.
	ChangedStages int
	// ExecutionsDelta counts the pipeline stages the session engine
	// recomputed for the turn — the incremental-execution observable.
	ExecutionsDelta int64
	// Duration is the turn's summed stage wall-clock time.
	Duration time.Duration
}

// MultiTurnResult is one scenario's full conversation outcome.
type MultiTurnResult struct {
	ID    string
	Title string
	Turns []TurnResult
}

// MultiTurnTable collects the conversational evaluation results.
type MultiTurnTable struct {
	Results  []MultiTurnResult
	MaxTurns int
}

// RunMultiTurn evaluates the assistant (base model gpt-4, plan
// validation on — the serving configuration) on every conversational
// scenario: one session per scenario, one turn per utterance, scored
// per turn against that turn's ground-truth plan and image.
func (c Config) RunMultiTurn(ctx context.Context) (*MultiTurnTable, error) {
	c = c.withDefaults()
	if err := EnsureData(c.DataDir, c.DataSize); err != nil {
		return nil, err
	}
	table := &MultiTurnTable{}
	for _, mts := range MultiTurnScenarios() {
		res, err := c.runMultiTurnScenario(ctx, mts)
		if err != nil {
			return nil, fmt.Errorf("eval: multi-turn %s: %w", mts.ID, err)
		}
		table.Results = append(table.Results, res)
		if len(res.Turns) > table.MaxTurns {
			table.MaxTurns = len(res.Turns)
		}
	}
	return table, nil
}

func (c Config) runMultiTurnScenario(ctx context.Context, mts MultiTurnScenario) (MultiTurnResult, error) {
	outDir := filepath.Join(c.OutDir, "multiturn", mts.ID)
	runner := &pvpython.Runner{DataDir: c.DataDir, OutDir: outDir}
	model, err := c.pipelineClient("gpt-4")
	if err != nil {
		return MultiTurnResult{}, err
	}
	sess, err := chatvis.NewSession(model, runner,
		chatvis.WithMaxIterations(c.MaxIterations),
		chatvis.WithFewShot(c.FewShot),
		chatvis.WithRewrite(!c.NoRewrite),
		chatvis.WithPlanValidation(true))
	if err != nil {
		return MultiTurnResult{}, err
	}
	res := MultiTurnResult{ID: mts.ID, Title: mts.Title}
	for i, ts := range mts.Turns {
		turn, err := sess.Turn(ctx, ts.Utterance(c.Width, c.Height))
		if err != nil {
			return MultiTurnResult{}, fmt.Errorf("turn %d: %w", i+1, err)
		}
		tr := TurnResult{
			ErrorFree:       turn.Artifact.Success,
			ChangedStages:   len(turn.ChangedStages),
			ExecutionsDelta: turn.ExecutionsDelta,
			Duration:        turn.Artifact.Trace.TotalDuration(),
		}
		if ref := ts.refPlanFor(c.Width, c.Height); ref != nil && turn.Artifact.Plan != nil {
			tr.PlanScore = plan.Similarity(turn.Artifact.Plan, ref)
		}
		if gt, err := c.turnGroundTruth(mts.ID, i+1, ts); err == nil && len(turn.Artifact.Screenshots) > 0 {
			tr.Screenshot, tr.Metrics = judge(gt, turn.Artifact.Screenshots, nil)
		}
		res.Turns = append(res.Turns, tr)
	}
	return res, nil
}

// turnGroundTruth renders the turn's reference image: the one-shot
// scenario's ground truth when the turn references one, else a render of
// the turn's reference plan.
func (c Config) turnGroundTruth(id string, turnNo int, ts TurnSpec) (image.Image, error) {
	if ts.RefScenario != "" {
		if scn, ok := ScenarioByID(ts.RefScenario); ok {
			return c.groundTruth(scn)
		}
	}
	ref := ts.refPlanFor(c.Width, c.Height)
	if ref == nil {
		return nil, fmt.Errorf("eval: turn has no ground truth")
	}
	gtOut := filepath.Join(c.OutDir, "ground_truth", fmt.Sprintf("%s-t%d", id, turnNo))
	runner := &pvpython.Runner{DataDir: c.DataDir, OutDir: gtOut}
	res := runner.Exec(ref.Script())
	if !res.OK() || len(res.Screenshots) == 0 {
		return nil, fmt.Errorf("eval: turn ground truth failed:\n%s", res.Output)
	}
	path := res.Screenshots[len(res.Screenshots)-1]
	if img := res.Engine.Rendered[path]; img != nil {
		return img, nil
	}
	return nil, fmt.Errorf("eval: turn ground truth rendered nothing")
}

// Format renders the multi-turn table with per-turn plan-similarity
// columns (the report's conversational accuracy view).
func (t *MultiTurnTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s", "Conversation")
	for i := 1; i <= t.MaxTurns; i++ {
		fmt.Fprintf(&b, "| turn %d plan-sim  ", i)
	}
	b.WriteString("| re-exec (t2+)\n")
	b.WriteString(strings.Repeat("-", 34+t.MaxTurns*19+15) + "\n")
	for _, r := range t.Results {
		fmt.Fprintf(&b, "%-34s", r.Title)
		for i := 0; i < t.MaxTurns; i++ {
			if i < len(r.Turns) {
				fmt.Fprintf(&b, "| %-16.2f ", r.Turns[i].PlanScore.Overall)
			} else {
				fmt.Fprintf(&b, "| %-16s ", "-")
			}
		}
		var deltas []string
		for _, tr := range r.Turns[1:] {
			deltas = append(deltas, fmt.Sprintf("%d", tr.ExecutionsDelta))
		}
		fmt.Fprintf(&b, "| %s\n", strings.Join(deltas, ","))
	}
	return b.String()
}
