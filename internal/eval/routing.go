package eval

import (
	"fmt"
	"strings"
)

// RoutingRow is one task's routing outcome during an eval run: which
// model the router chose as the task's primary, the measured score it
// cleared the bar with, and how often the run escalated above it.
//
// The types are pure data so the harness stays decoupled from the
// route package (which itself drives the harness during calibration);
// runners fill them from route.Router.Routes().
type RoutingRow struct {
	Task string
	// Model is the primary (rung 0) serving model.
	Model string
	// Score is the model's measured probe score, Bar the task's minimum.
	Score float64
	Bar   float64
	// CostWeight is the primary's relative per-call cost.
	CostWeight float64
	// Decisions counts completions the router profile-routed for this
	// task; Escalations counts how many were served above rung 0.
	Decisions   int64
	Escalations int64
	// Ladder lists the escalation order (primary first).
	Ladder []string
}

// RoutingTable is the routing section of an eval report.
type RoutingTable struct {
	// ProfilesPath is the calibration store the router was built from.
	ProfilesPath string
	Rows         []RoutingRow
}

// Format renders the routing table as markdown.
func (t *RoutingTable) Format() string {
	var b strings.Builder
	if t.ProfilesPath != "" {
		fmt.Fprintf(&b, "Profiles: `%s`\n\n", t.ProfilesPath)
	}
	b.WriteString("| Task | Model | Score | Bar | Cost | Decisions | Escalations | Ladder |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s | %s | %.2f | %.2f | %.2f | %d | %d | %s |\n",
			r.Task, r.Model, r.Score, r.Bar, r.CostWeight,
			r.Decisions, r.Escalations, strings.Join(r.Ladder, " → "))
	}
	return b.String()
}
