package filters

import (
	"math"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/datagen"
	"chatvis/internal/vmath"
)

// uniformFlowImage builds a volume with constant velocity (1,0,0) and a
// linear temperature field.
func uniformFlowImage() *data.ImageData {
	im := data.NewImageData(11, 11, 11, vmath.V(0, 0, 0), vmath.V(1, 1, 1))
	v := data.NewField("V", 3, im.NumPoints())
	temp := data.NewField("Temp", 1, im.NumPoints())
	for i := 0; i < im.NumPoints(); i++ {
		v.SetVec3(i, vmath.V(1, 0, 0))
		temp.SetScalar(i, im.Point(i).X)
	}
	im.Points.Add(v)
	im.Points.Add(temp)
	return im
}

func TestImageSamplerErrors(t *testing.T) {
	im := uniformFlowImage()
	if _, err := NewImageSampler(im, "missing"); err == nil {
		t.Error("missing vector should error")
	}
	if _, err := NewImageSampler(im, "Temp"); err == nil {
		t.Error("scalar array should error")
	}
}

func TestStreamTracerStraightLine(t *testing.T) {
	im := uniformFlowImage()
	s, err := NewImageSampler(im, "V")
	if err != nil {
		t.Fatal(err)
	}
	seeds := []vmath.Vec3{{X: 5, Y: 5, Z: 5}}
	lines := StreamTracer(s, seeds, StreamTracerOptions{Both: true})
	if len(lines.Lines) != 1 {
		t.Fatalf("lines = %d", len(lines.Lines))
	}
	line := lines.Lines[0]
	if len(line) < 10 {
		t.Fatalf("line too short: %d points", len(line))
	}
	// In uniform +x flow the streamline is the horizontal line y=z=5.
	for _, id := range line {
		p := lines.Pts[id]
		if math.Abs(p.Y-5) > 1e-6 || math.Abs(p.Z-5) > 1e-6 {
			t.Fatalf("streamline deviates: %v", p)
		}
	}
	// Integrating both directions should span most of the domain in x.
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, id := range line {
		minX = math.Min(minX, lines.Pts[id].X)
		maxX = math.Max(maxX, lines.Pts[id].X)
	}
	if minX > 1 || maxX < 9 {
		t.Errorf("streamline spans [%v, %v], want most of [0,10]", minX, maxX)
	}
	// Temp = x must be interpolated along the line.
	f := lines.Points.Get("Temp")
	if f == nil {
		t.Fatal("Temp not interpolated")
	}
	for _, id := range line {
		if math.Abs(f.Scalar(id)-lines.Pts[id].X) > 1e-6 {
			t.Fatalf("Temp=%v at x=%v", f.Scalar(id), lines.Pts[id].X)
		}
	}
	// IntegrationTime exists and is monotone along the line.
	tf := lines.Points.Get("IntegrationTime")
	if tf == nil {
		t.Fatal("IntegrationTime missing")
	}
	for i := 1; i < len(line); i++ {
		if tf.Scalar(line[i]) < tf.Scalar(line[i-1]) {
			t.Fatal("IntegrationTime not monotone along joined line")
		}
	}
}

func TestStreamTracerCircularField(t *testing.T) {
	// Rotational field v = (-y, x, 0) around the center: streamlines are
	// circles; check radius conservation.
	im := data.NewImageData(21, 21, 3, vmath.V(-1, -1, -0.1), vmath.V(0.1, 0.1, 0.1))
	v := data.NewField("V", 3, im.NumPoints())
	for i := 0; i < im.NumPoints(); i++ {
		p := im.Point(i)
		v.SetVec3(i, vmath.V(-p.Y, p.X, 0))
	}
	im.Points.Add(v)
	s, err := NewImageSampler(im, "V")
	if err != nil {
		t.Fatal(err)
	}
	seed := vmath.V(0.5, 0, 0)
	lines := StreamTracer(s, []vmath.Vec3{seed}, StreamTracerOptions{
		Both: false, MaxSteps: 400, StepFraction: 1.0 / 1000, MaxLength: 1.2,
	})
	if len(lines.Lines) != 1 {
		t.Fatalf("lines = %d", len(lines.Lines))
	}
	for _, id := range lines.Lines[0] {
		p := lines.Pts[id]
		r := math.Hypot(p.X, p.Y)
		if math.Abs(r-0.5) > 0.01 {
			t.Fatalf("radius drift: %v at %v", r, p)
		}
	}
}

func TestStreamTracerStopsAtBoundary(t *testing.T) {
	im := uniformFlowImage()
	s, _ := NewImageSampler(im, "V")
	lines := StreamTracer(s, []vmath.Vec3{{X: 9.5, Y: 5, Z: 5}},
		StreamTracerOptions{Both: false, MaxSteps: 100000, MaxLength: 100})
	if len(lines.Lines) != 1 {
		t.Fatalf("lines = %d", len(lines.Lines))
	}
	for _, id := range lines.Lines[0] {
		if lines.Pts[id].X > 10+1e-9 {
			t.Fatal("integration escaped the domain")
		}
	}
}

func TestStreamTracerSeedOutsideDomain(t *testing.T) {
	im := uniformFlowImage()
	s, _ := NewImageSampler(im, "V")
	lines := StreamTracer(s, []vmath.Vec3{{X: -5, Y: -5, Z: -5}}, StreamTracerOptions{})
	if len(lines.Lines) != 0 {
		t.Error("outside seed should produce no line")
	}
}

func TestGridSamplerDiskFlow(t *testing.T) {
	ug := datagen.DiskFlow(8, 32, 8)
	s, err := NewGridSampler(ug, "V")
	if err != nil {
		t.Fatal(err)
	}
	// Sample at a node-adjacent location and compare against the analytic
	// field; barycentric interpolation over a fine mesh should be close.
	p := vmath.V(1.2, 0.3, 1.0)
	got, ok := s.Velocity(p)
	if !ok {
		t.Fatal("point should be inside the annulus")
	}
	want, _, _ := datagen.DiskFlowField(p)
	if got.Sub(want).Len() > 0.15*want.Len() {
		t.Errorf("velocity = %v, want ~%v", got, want)
	}
	// A point in the annulus hole must report outside.
	if _, ok := s.Velocity(vmath.V(0, 0, 1)); ok {
		t.Error("hub hole should be outside the mesh")
	}
	if _, ok := s.Velocity(vmath.V(50, 0, 0)); ok {
		t.Error("far point should be outside")
	}
	// Fields interpolation returns all arrays.
	dst := map[string][]float64{}
	if !s.Fields(p, dst) {
		t.Fatal("Fields failed inside mesh")
	}
	for _, name := range []string{"V", "Temp", "Pres"} {
		if len(dst[name]) == 0 {
			t.Errorf("field %s not interpolated", name)
		}
	}
	_, wantTemp, _ := datagen.DiskFlowField(p)
	if math.Abs(dst["Temp"][0]-wantTemp) > 20 {
		t.Errorf("Temp = %v, want ~%v", dst["Temp"][0], wantTemp)
	}
}

func TestGridSamplerErrors(t *testing.T) {
	ug := datagen.DiskFlow(4, 8, 4)
	if _, err := NewGridSampler(ug, "nope"); err == nil {
		t.Error("missing array should error")
	}
	if _, err := NewGridSampler(ug, "Temp"); err == nil {
		t.Error("scalar array should error")
	}
	cloud := datagen.CanPoints(8, 4)
	vec := data.NewField("V", 3, cloud.NumPoints())
	cloud.Points.Add(vec)
	if _, err := NewGridSampler(cloud, "V"); err == nil {
		t.Error("point cloud (no volume cells) should error")
	}
}

func TestStreamTracerOnDisk(t *testing.T) {
	ug := datagen.DiskFlow(8, 32, 8)
	s, err := NewGridSampler(ug, "V")
	if err != nil {
		t.Fatal(err)
	}
	seeds := DefaultPointCloudSeeds(ug.Bounds(), 50)
	lines := StreamTracer(s, seeds, StreamTracerOptions{})
	// The default seed ball is centred on the annulus hole, so most seeds
	// fall outside the mesh — exactly like ParaView's default point cloud
	// on disk_out_ref. A handful of lines is the expected outcome.
	if len(lines.Lines) < 5 {
		t.Fatalf("only %d streamlines from 50 seeds", len(lines.Lines))
	}
	// Swirling flow: lines should wind around the axis — check that some
	// line covers a decent azimuthal range.
	best := 0.0
	for _, line := range lines.Lines {
		if len(line) < 2 {
			continue
		}
		total := 0.0
		prev := math.Atan2(lines.Pts[line[0]].Y, lines.Pts[line[0]].X)
		for _, id := range line[1:] {
			cur := math.Atan2(lines.Pts[id].Y, lines.Pts[id].X)
			d := cur - prev
			for d > math.Pi {
				d -= 2 * math.Pi
			}
			for d < -math.Pi {
				d += 2 * math.Pi
			}
			total += d
			prev = cur
		}
		best = math.Max(best, math.Abs(total))
	}
	if best < math.Pi/2 {
		t.Errorf("no streamline winds more than %v rad", best)
	}
	// Temp must be present for downstream color mapping.
	if lines.Points.Get("Temp") == nil {
		t.Error("Temp missing on streamlines")
	}
}

func TestDefaultPointCloudSeeds(t *testing.T) {
	b := vmath.AABB{Min: vmath.V(-1, -1, -1), Max: vmath.V(1, 1, 1)}
	seeds := DefaultPointCloudSeeds(b, 100)
	if len(seeds) != 100 {
		t.Fatalf("seeds = %d", len(seeds))
	}
	radius := b.Diagonal() * 0.1
	c := b.Center()
	for _, s := range seeds {
		if s.Sub(c).Len() > radius+1e-9 {
			t.Fatalf("seed %v outside the default sphere", s)
		}
	}
	// Deterministic.
	again := DefaultPointCloudSeeds(b, 100)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("seeds must be deterministic")
		}
	}
	if got := DefaultPointCloudSeeds(b, 0); len(got) != 100 {
		t.Errorf("default count = %d, want 100", len(got))
	}
}
