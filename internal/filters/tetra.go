// Package filters implements the visualization algorithms behind the
// ParaView filter proxies: isosurfacing, slicing, clipping, Delaunay
// triangulation, streamline tracing, tube and glyph generation, and surface
// extraction. All filters consume and produce the dataset model in
// internal/data.
package filters

import (
	"chatvis/internal/data"
	"chatvis/internal/vmath"
)

// kuhnTets lists the six tetrahedra of the Kuhn subdivision of a cube whose
// corners are indexed by bitmask (bit0→+x, bit1→+y, bit2→+z). Every tet is
// a monotone path 0→7; neighbouring cubes that use the same subdivision
// share face diagonals, so marching the tets produces crack-free surfaces.
var kuhnTets = [6][4]int{
	{0, 1, 3, 7}, // +x +y +z
	{0, 1, 5, 7}, // +x +z +y
	{0, 2, 3, 7}, // +y +x +z
	{0, 2, 6, 7}, // +y +z +x
	{0, 4, 5, 7}, // +z +x +y
	{0, 4, 6, 7}, // +z +y +x
}

// hexToBitmask maps bitmask corner order to VTK hexahedron connectivity
// order (bottom quad counter-clockwise, then top quad).
var hexToBitmask = [8]int{0, 1, 3, 2, 4, 5, 7, 6}

// CellTets appends the tetra decomposition of one unstructured cell to dst
// as 4-tuples of point ids. Supported: tetra (identity), voxel and
// hexahedron (6 Kuhn tets), wedge (3 tets), pyramid (2 tets). Unsupported
// cell types contribute nothing.
func CellTets(c data.Cell, dst [][4]int) [][4]int {
	switch c.Type {
	case data.CellTetra:
		if len(c.IDs) >= 4 {
			dst = append(dst, [4]int{c.IDs[0], c.IDs[1], c.IDs[2], c.IDs[3]})
		}
	case data.CellVoxel:
		if len(c.IDs) >= 8 {
			for _, t := range kuhnTets {
				dst = append(dst, [4]int{c.IDs[t[0]], c.IDs[t[1]], c.IDs[t[2]], c.IDs[t[3]]})
			}
		}
	case data.CellHexahedron:
		if len(c.IDs) >= 8 {
			for _, t := range kuhnTets {
				dst = append(dst, [4]int{
					c.IDs[hexToBitmask[t[0]]], c.IDs[hexToBitmask[t[1]]],
					c.IDs[hexToBitmask[t[2]]], c.IDs[hexToBitmask[t[3]]],
				})
			}
		}
	case data.CellWedge:
		if len(c.IDs) >= 6 {
			// Wedge corners: triangle 0,1,2 bottom; 3,4,5 top.
			dst = append(dst,
				[4]int{c.IDs[0], c.IDs[1], c.IDs[2], c.IDs[3]},
				[4]int{c.IDs[1], c.IDs[2], c.IDs[3], c.IDs[4]},
				[4]int{c.IDs[2], c.IDs[3], c.IDs[4], c.IDs[5]})
		}
	case data.CellPyramid:
		if len(c.IDs) >= 5 {
			dst = append(dst,
				[4]int{c.IDs[0], c.IDs[1], c.IDs[2], c.IDs[4]},
				[4]int{c.IDs[0], c.IDs[2], c.IDs[3], c.IDs[4]})
		}
	}
	return dst
}

// GridTets returns the tetra decomposition of every volumetric cell of ug.
func GridTets(ug *data.UnstructuredGrid) [][4]int {
	var out [][4]int
	for _, c := range ug.Cells {
		out = CellTets(c, out)
	}
	return out
}

// ImageTets enumerates the Kuhn tetrahedra of every cube of an ImageData
// without materializing them: fn is called with the 4 flat point indices of
// each tet.
func ImageTets(im *data.ImageData, fn func(t [4]int)) {
	imageTetsRange(im, 0, imageCubeCount(im), fn)
}

// imageCubeCount returns the number of cells (cubes) of an ImageData —
// the unit the parallel marching sweep chunks over.
func imageCubeCount(im *data.ImageData) int {
	nx, ny, nz := im.Dims[0], im.Dims[1], im.Dims[2]
	if nx < 2 || ny < 2 || nz < 2 {
		return 0
	}
	return (nx - 1) * (ny - 1) * (nz - 1)
}

// imageTetsRange enumerates the Kuhn tetrahedra of the cubes with flat
// cube index in [start, end), in the same i-fastest order as a full
// sweep — so concatenating ranges in order reproduces ImageTets exactly.
func imageTetsRange(im *data.ImageData, start, end int, fn func(t [4]int)) {
	nx, ny := im.Dims[0], im.Dims[1]
	cx, cy := nx-1, ny-1
	var corner [8]int
	for c := start; c < end; c++ {
		i := c % cx
		j := (c / cx) % cy
		k := c / (cx * cy)
		for b := 0; b < 8; b++ {
			corner[b] = im.Index(i+b&1, j+(b>>1)&1, k+(b>>2)&1)
		}
		for _, t := range kuhnTets {
			fn([4]int{corner[t[0]], corner[t[1]], corner[t[2]], corner[t[3]]})
		}
	}
}

// TetVolume returns the signed volume of the tetrahedron (a,b,c,d).
func TetVolume(a, b, c, d vmath.Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a)) / 6
}

// Barycentric computes the barycentric coordinates of p in tet (a,b,c,d).
// ok is false for degenerate tets.
func Barycentric(p, a, b, c, d vmath.Vec3) (l [4]float64, ok bool) {
	vol := TetVolume(a, b, c, d)
	if vol == 0 {
		return l, false
	}
	inv := 1 / vol
	l[0] = TetVolume(p, b, c, d) * inv
	l[1] = TetVolume(a, p, c, d) * inv
	l[2] = TetVolume(a, b, p, d) * inv
	l[3] = TetVolume(a, b, c, p) * inv
	return l, true
}

// InsideTet reports whether barycentric coordinates describe a point inside
// the tet, within tolerance eps.
func InsideTet(l [4]float64, eps float64) bool {
	return l[0] >= -eps && l[1] >= -eps && l[2] >= -eps && l[3] >= -eps
}
