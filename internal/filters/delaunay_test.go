package filters

import (
	"math"
	"math/rand"
	"testing"

	"chatvis/internal/data"
	"chatvis/internal/datagen"
	"chatvis/internal/vmath"
)

func randomCloud(n int, seed int64) *data.UnstructuredGrid {
	rng := rand.New(rand.NewSource(seed))
	ug := data.NewUnstructuredGrid()
	for i := 0; i < n; i++ {
		id := ug.AddPoint(vmath.V(rng.Float64(), rng.Float64(), rng.Float64()))
		ug.AddCell(data.CellVertex, id)
	}
	return ug
}

func TestDelaunay3DSingleTet(t *testing.T) {
	ug := data.NewUnstructuredGrid()
	ug.AddPoint(vmath.V(0, 0, 0))
	ug.AddPoint(vmath.V(1, 0, 0))
	ug.AddPoint(vmath.V(0, 1, 0))
	ug.AddPoint(vmath.V(0, 0, 1))
	out, err := Delaunay3D(ug)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCells() != 1 {
		t.Fatalf("4 points -> %d tets, want 1", out.NumCells())
	}
	if out.Cells[0].Type != data.CellTetra {
		t.Error("wrong cell type")
	}
}

func TestDelaunay3DErrors(t *testing.T) {
	ug := data.NewUnstructuredGrid()
	ug.AddPoint(vmath.V(0, 0, 0))
	if _, err := Delaunay3D(ug); err == nil {
		t.Error("too few points should error")
	}
	// Coincident points: degenerate cloud.
	ug2 := data.NewUnstructuredGrid()
	for i := 0; i < 5; i++ {
		ug2.AddPoint(vmath.V(1, 1, 1))
	}
	if _, err := Delaunay3D(ug2); err == nil {
		t.Error("degenerate cloud should error")
	}
}

// delaunayInvariants checks the two defining properties on a triangulation:
// (1) total tet volume equals the convex hull volume (here: points include
// the cube corners so hull volume is 1), and (2) the empty-circumsphere
// property holds for every tet against every input point.
func delaunayInvariants(t *testing.T, ug *data.UnstructuredGrid, out *data.UnstructuredGrid, hullVol float64) {
	t.Helper()
	vol := 0.0
	for _, c := range out.Cells {
		v := TetVolume(out.Pts[c.IDs[0]], out.Pts[c.IDs[1]], out.Pts[c.IDs[2]], out.Pts[c.IDs[3]])
		if v < -1e-12 {
			t.Fatalf("negative tet volume %v", v)
		}
		vol += math.Abs(v)
	}
	if hullVol > 0 && math.Abs(vol-hullVol)/hullVol > 0.02 {
		t.Errorf("tet volume sum = %v, hull = %v", vol, hullVol)
	}
	// Empty circumsphere (with slack for the jittered predicates).
	diag := out.Bounds().Diagonal()
	slack := diag * 1e-5
	for _, c := range out.Cells {
		ctr, r2, ok := circumsphere(out.Pts[c.IDs[0]], out.Pts[c.IDs[1]], out.Pts[c.IDs[2]], out.Pts[c.IDs[3]])
		if !ok {
			continue
		}
		r := math.Sqrt(r2)
		for pi, p := range ug.Pts {
			if pi == c.IDs[0] || pi == c.IDs[1] || pi == c.IDs[2] || pi == c.IDs[3] {
				continue
			}
			if p.Sub(ctr).Len() < r-slack {
				t.Fatalf("point %d strictly inside circumsphere of tet %v", pi, c.IDs)
			}
		}
	}
}

func TestDelaunay3DCubeWithInteriorPoints(t *testing.T) {
	ug := data.NewUnstructuredGrid()
	// Cube corners pin the hull.
	for i := 0; i < 8; i++ {
		ug.AddPoint(vmath.V(float64(i&1), float64(i>>1&1), float64(i>>2&1)))
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 40; i++ {
		ug.AddPoint(vmath.V(rng.Float64(), rng.Float64(), rng.Float64()))
	}
	out, err := Delaunay3D(ug)
	if err != nil {
		t.Fatal(err)
	}
	delaunayInvariants(t, ug, out, 1)
}

func TestDelaunay3DRandomCloudsSeveralSeeds(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		ug := randomCloud(60, seed)
		out, err := Delaunay3D(ug)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.NumCells() < 60 {
			t.Errorf("seed %d: suspiciously few tets: %d", seed, out.NumCells())
		}
		delaunayInvariants(t, ug, out, 0) // hull volume unknown; skip volume check
	}
}

func TestDelaunay3DPreservesPointsAndData(t *testing.T) {
	ug := randomCloud(30, 9)
	f := data.NewField("DISPL", 1, 30)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	ug.Points.Add(f)
	out, err := Delaunay3D(ug)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumPoints() != 30 {
		t.Fatalf("output points = %d", out.NumPoints())
	}
	for i := 0; i < 30; i++ {
		if !out.Pts[i].NearEq(ug.Pts[i], 0) {
			t.Fatal("point order/coords changed")
		}
	}
	g := out.Points.Get("DISPL")
	if g == nil || g.Scalar(17) != 17 {
		t.Error("point data not carried through")
	}
}

func TestDelaunay3DCanPoints(t *testing.T) {
	// The actual experiment dataset: must triangulate without error and
	// yield a mesh whose surface is plausible.
	ug := datagen.CanPoints(24, 10)
	out, err := Delaunay3D(ug)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCells() < ug.NumPoints() {
		t.Errorf("tets = %d for %d points", out.NumCells(), ug.NumPoints())
	}
	surf := ExtractSurface(out)
	if surf.NumTriangles() < 100 {
		t.Errorf("hull surface too small: %d triangles", surf.NumTriangles())
	}
}
